// Observability demo: partition a 3-constraint mesh with tracing enabled
// and write every machine-readable artifact the instrumentation layer
// offers:
//
//   trace_demo [out_prefix]     (default prefix: "trace_demo")
//
//   <prefix>.trace.json    open in chrome://tracing or https://ui.perfetto.dev
//   <prefix>.events.jsonl  one JSON object per span/instant event
//   <prefix>.report.json   JSON PartitionReport (per-part stats) with a
//                          "timeline" section of flight-recorder samples
//   <prefix>.counters.json pipeline counters + gain histogram
#include <cstdio>
#include <fstream>
#include <string>

#include "core/partitioner.hpp"
#include "gen/mesh_gen.hpp"
#include "gen/weight_gen.hpp"
#include "graph/part_report.hpp"
#include "support/flight_recorder.hpp"
#include "support/trace.hpp"

int main(int argc, char** argv) {
  using namespace mcgp;
  const std::string prefix = argc > 1 ? argv[1] : "trace_demo";

  Graph g = grid2d(120, 120);
  apply_type_s_weights(g, /*m=*/3, /*nregions=*/16, 0, 19, 42);

  TraceRecorder recorder;
  FlightRecorder flight;
  Options opts;
  opts.nparts = 16;
  opts.trace = &recorder;
  opts.flight = &flight;
  const PartitionResult r = partition(g, opts);

  std::printf("partitioned %d vertices into %d parts: cut=%lld "
              "max-imbalance=%.4f (%.3fs)\n",
              g.nvtxs, opts.nparts, static_cast<long long>(r.cut),
              r.max_imbalance, r.seconds);

  std::printf("\npipeline counters:\n");
  for (const auto& [name, value] : r.counters.counters()) {
    std::printf("  %-24s %lld\n", name.c_str(),
                static_cast<long long>(value));
  }
  if (const Histogram* h = r.counters.find_hist("gain.histogram")) {
    std::printf("  gain.histogram          n=%llu mean=%.2f min=%lld "
                "max=%lld\n",
                static_cast<unsigned long long>(h->count()), h->mean(),
                static_cast<long long>(h->min()),
                static_cast<long long>(h->max()));
  }

  int spans = 0;
  for (const TraceEvent& ev : recorder.events()) {
    if (ev.type == TraceEvent::Type::kBegin) ++spans;
  }
  std::printf("\nrecorded %zu events (%d spans)\n", recorder.events().size(),
              spans);
  std::printf("flight recorder: %llu samples, peak rss %.1f MB\n",
              static_cast<unsigned long long>(flight.total_recorded()),
              static_cast<double>(flight.peak_rss_bytes()) / (1024.0 * 1024.0));

  bool ok = recorder.save_chrome_trace(prefix + ".trace.json");
  ok = recorder.save_jsonl(prefix + ".events.jsonl") && ok;
  std::ofstream report(prefix + ".report.json");
  if (report) {
    PartitionReport rep = analyze_partition(g, r.part, opts.nparts);
    rep.feasible = r.feasible ? 1 : 0;
    rep.ubvec_used = r.ubvec_used;
    write_report_json(report, rep, &flight);
  }
  ok = static_cast<bool>(report) && ok;
  std::ofstream counters(prefix + ".counters.json");
  if (counters) r.counters.write_json(counters);
  ok = static_cast<bool>(counters) && ok;
  if (!ok) {
    std::fprintf(stderr, "error: could not write artifacts with prefix '%s'\n",
                 prefix.c_str());
    return 1;
  }

  std::printf("wrote %s.trace.json (open in chrome://tracing), "
              "%s.events.jsonl, %s.report.json, %s.counters.json\n",
              prefix.c_str(), prefix.c_str(), prefix.c_str(), prefix.c_str());
  return 0;
}
