// End-to-end finite-element workflow: mesh -> dual graph -> multi-phase
// weights -> multi-constraint partition -> element decomposition report.
//
// This is the paper's target use case in one program: decompose an FE
// mesh by elements for a multi-phase solver so that every phase is
// balanced and the halo exchange (edge-cut) is small.
//
// Usage: fe_workflow [nx] [ny] [nz] [phases] [k]
#include <cstdlib>
#include <iostream>

#include "core/partitioner.hpp"
#include "gen/phase_sim.hpp"
#include "gen/weight_gen.hpp"
#include "graph/part_report.hpp"
#include "mesh/mesh.hpp"

int main(int argc, char** argv) {
  using namespace mcgp;
  const idx_t nx = argc > 1 ? std::atoi(argv[1]) : 30;
  const idx_t ny = argc > 2 ? std::atoi(argv[2]) : 30;
  const idx_t nz = argc > 3 ? std::atoi(argv[3]) : 12;
  const int m = argc > 4 ? std::atoi(argv[4]) : 3;
  const idx_t k = argc > 5 ? std::atoi(argv[5]) : 12;

  // 1. The mesh (a structured hex mesh stands in for an unstructured one;
  //    read_metis_mesh_file() loads real meshes the same way).
  const Mesh mesh = hex_mesh(nx, ny, nz);
  std::cout << "mesh: " << mesh.nelems << " hexahedra, " << mesh.nnodes
            << " nodes\n";

  // 2. Element adjacency = dual graph (shared face -> 4 common nodes).
  Graph dual = mesh_to_dual(mesh, 4);
  std::cout << "dual graph: " << dual.nvtxs << " vertices, " << dual.nedges()
            << " edges\n";

  // 3. Multi-phase element costs: phase p active on contiguous regions.
  const PhaseActivity activity = apply_type_p_weights(dual, m, 32, 2024);
  std::cout << m << " phases, activity fractions:";
  for (const double f : activity.fraction) std::cout << ' ' << f;
  std::cout << "\n\n";

  // 4. Partition with every phase balanced.
  Options opts;
  opts.nparts = k;
  const PartitionResult r = partition(dual, opts);

  // 5. Inspect the decomposition.
  PartitionReport rep = analyze_partition(dual, r.part, k);
  rep.feasible = r.feasible ? 1 : 0;
  rep.ubvec_used = r.ubvec_used;
  print_report(std::cout, rep);

  const PhaseSimResult sim = simulate_phases(dual, r.part, k);
  std::cout << "\nbulk-synchronous step slowdown vs ideal: " << sim.slowdown()
            << "\npartitioning took " << r.seconds << "s ("
            << r.coarsen_levels << " coarsening levels, coarsest "
            << r.coarsest_nvtxs << " vertices)\n";
  return 0;
}
