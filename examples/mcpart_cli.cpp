// mcpart — command-line multi-constraint graph partitioner.
//
// Reads a METIS-format .graph file (optionally with ncon vertex weights
// and edge weights), partitions it, writes <graph>.part.<k>, and reports
// quality metrics. A drop-in, minimal analogue of the pmetis/kmetis
// command-line tools for multi-constraint inputs.
//
// Usage:
//   mcpart <graph-file> <nparts> [options]
// Options:
//   --alg=rb|kway        algorithm (default kway)
//   --ub=<f>             balance tolerance for all constraints (default
//                        1.05, clamped up to the instance's provable
//                        minimum; an explicit infeasible value is an error)
//   --seed=<n>           random seed (default 1)
//   --threads=<n>        worker threads (default 1; same result any value)
//   --match=rm|hem|hembal  matching scheme (default hembal)
//   --out=<path>         partition output path (default <graph>.part.<k>)
//   --no-write           skip writing the partition file
//   --mesh               input is a METIS .mesh file; partition its dual
//   --ncommon=<n>        dual-graph adjacency threshold (default 2)
//   --report             print the full per-part report
//   --audit=<level>      runtime invariant auditing: off|boundaries|paranoid
//   --refine=<partfile>  refine an existing partition instead of partitioning
//   --progress           live per-level progress lines on stderr
//   --ledger=<path>      append one JSONL run record to <path>
//   --profile            hardware-counter profiling (perf_event_open)
//   --report-json=<path> write the machine-readable run report to <path>
//   --metrics-out=<path> write the process metrics snapshot to <path>
//                        (.json -> JSON document, else OpenMetrics text)
//   --metrics-interval=<s>      rewrite --metrics-out every <s> seconds
//   --metrics-stall-timeout=<s> flag a stall (mcgp_stalled gauge +
//                        postmortem dump) after <s> seconds without
//                        pipeline progress (default off)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "core/audit.hpp"
#include "core/partitioner.hpp"
#include "graph/graph_io.hpp"
#include "graph/metrics.hpp"
#include "graph/part_report.hpp"
#include "mesh/mesh.hpp"
#include "support/flight_recorder.hpp"
#include "support/metrics.hpp"
#include "support/perf_counters.hpp"
#include "support/run_ledger.hpp"

namespace {

/// --progress sink: one line per hierarchy-level sample (refinement-pass
/// samples are recorded but not printed — per-level keeps the output to a
/// few dozen lines). Runs under the recorder lock, so stays cheap.
void print_progress(const mcgp::FlightSample& s) {
  using Stage = mcgp::FlightSample::Stage;
  if (s.stage == Stage::kFmPass || s.stage == Stage::kKWayPass) return;
  std::fprintf(stderr, "[%7.3fs] %-14s", static_cast<double>(s.ts_ns) * 1e-9,
               mcgp::flight_stage_name(s.stage));
  if (s.level >= 0) std::fprintf(stderr, " level=%-3d", s.level);
  std::fprintf(stderr, " nvtxs=%-9lld nedges=%-9lld",
               static_cast<long long>(s.nvtxs),
               static_cast<long long>(s.nedges));
  if (s.cut >= 0) std::fprintf(stderr, " cut=%-8lld",
                               static_cast<long long>(s.cut));
  if (s.ncon > 0) std::fprintf(stderr, " lb=%.3f", s.worst_imbalance);
  if (s.rss_bytes >= 0) {
    std::fprintf(stderr, " rss=%.1fMB",
                 static_cast<double>(s.rss_bytes) / (1024.0 * 1024.0));
  }
  std::fprintf(stderr, "\n");
}

void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " <graph-file> <nparts> [options]\n"
      << "  --alg=rb|kway       algorithm (default kway)\n"
      << "  --ub=<f>            balance tolerance (default 1.05, clamped\n"
      << "                      to the instance's provable minimum)\n"
      << "  --seed=<n>          random seed (default 1)\n"
      << "  --threads=<n>       worker threads (default 1; the partition\n"
      << "                      is identical for every thread count)\n"
      << "  --match=rm|hem|hembal  matching scheme (default hembal)\n"
      << "  --out=<path>        output path (default <graph>.part.<k>)\n"
      << "  --no-write          skip writing the partition file\n"
      << "  --mesh              input is a METIS .mesh file (partition dual)\n"
      << "  --ncommon=<n>       dual adjacency threshold (default 2)\n"
      << "  --report            print the full per-part report\n"
      << "  --audit=<level>     invariant auditing: off|boundaries|paranoid\n"
      << "                      (default off; MCGP_AUDIT env overrides)\n"
      << "  --refine=<partfile> refine an existing partition in place\n"
      << "                      instead of partitioning from scratch\n"
      << "  --progress          live per-level progress lines on stderr\n"
      << "  --ledger=<path>     append one JSONL run record to <path>\n"
      << "  --profile           per-phase hardware counters via\n"
      << "                      perf_event_open (degrades gracefully when\n"
      << "                      the kernel refuses; see README Profiling)\n"
      << "  --report-json=<path> write the machine-readable run report\n"
      << "                      (with timeline/profile sections when\n"
      << "                      attached) to <path>\n"
      << "  --metrics-out=<path> write the process metrics snapshot to\n"
      << "                      <path> (.json suffix selects the JSON\n"
      << "                      document, anything else OpenMetrics text)\n"
      << "  --metrics-interval=<s>  rewrite --metrics-out every <s>\n"
      << "                      seconds while running (atomic replace)\n"
      << "  --metrics-stall-timeout=<s>  raise the mcgp_stalled gauge and\n"
      << "                      dump a postmortem after <s> seconds\n"
      << "                      without pipeline progress (default off)\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mcgp;
  if (argc < 3) {
    usage(argv[0]);
    return 2;
  }
  const std::string graph_path = argv[1];
  const idx_t nparts = std::atoi(argv[2]);
  if (nparts < 1) {
    std::cerr << "error: nparts must be >= 1\n";
    return 2;
  }

  Options opts;
  opts.nparts = nparts;
  double ub = 0.0;  // 0 = not given: leave ubvec empty so infeasibly
                    // tight defaults clamp to the provable bound
  std::string out_path;
  bool write_out = true;
  bool is_mesh = false;
  bool report = false;
  idx_t ncommon = 2;
  std::string refine_path;
  bool progress = false;
  std::string ledger_path;
  bool profile = false;
  std::string report_json_path;
  std::string metrics_out;
  double metrics_interval = 0.0;
  double metrics_stall_timeout = 0.0;

  for (int i = 3; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--alg=rb") {
      opts.algorithm = Algorithm::kRecursiveBisection;
    } else if (a == "--alg=kway") {
      opts.algorithm = Algorithm::kKWay;
    } else if (a.rfind("--ub=", 0) == 0) {
      ub = std::atof(a.c_str() + 5);
    } else if (a.rfind("--seed=", 0) == 0) {
      opts.seed = static_cast<std::uint64_t>(std::atoll(a.c_str() + 7));
    } else if (a.rfind("--threads=", 0) == 0) {
      opts.num_threads = std::max(1, std::atoi(a.c_str() + 10));
    } else if (a == "--match=rm") {
      opts.matching = MatchScheme::kRandom;
    } else if (a == "--match=hem") {
      opts.matching = MatchScheme::kHeavyEdge;
    } else if (a == "--match=hembal") {
      opts.matching = MatchScheme::kHeavyEdgeBalanced;
    } else if (a.rfind("--out=", 0) == 0) {
      out_path = a.substr(6);
    } else if (a == "--no-write") {
      write_out = false;
    } else if (a == "--mesh") {
      is_mesh = true;
    } else if (a.rfind("--ncommon=", 0) == 0) {
      ncommon = std::atoi(a.c_str() + 10);
    } else if (a == "--report") {
      report = true;
    } else if (a.rfind("--audit=", 0) == 0) {
      if (!parse_audit_level(a.substr(8), opts.audit_level)) {
        std::cerr << "error: --audit expects off|boundaries|paranoid, got \""
                  << a.substr(8) << "\"\n";
        return 2;
      }
    } else if (a.rfind("--refine=", 0) == 0) {
      refine_path = a.substr(9);
      if (refine_path.empty()) {
        std::cerr << "error: --refine needs a partition file path\n";
        return 2;
      }
    } else if (a == "--progress") {
      progress = true;
    } else if (a.rfind("--ledger=", 0) == 0) {
      ledger_path = a.substr(9);
      if (ledger_path.empty()) {
        std::cerr << "error: --ledger needs a file path\n";
        return 2;
      }
    } else if (a == "--profile") {
      profile = true;
    } else if (a.rfind("--report-json=", 0) == 0) {
      report_json_path = a.substr(14);
      if (report_json_path.empty()) {
        std::cerr << "error: --report-json needs a file path\n";
        return 2;
      }
    } else if (a.rfind("--metrics-out=", 0) == 0) {
      metrics_out = a.substr(14);
      if (metrics_out.empty()) {
        std::cerr << "error: --metrics-out needs a file path\n";
        return 2;
      }
    } else if (a.rfind("--metrics-interval=", 0) == 0) {
      metrics_interval = std::atof(a.c_str() + 19);
    } else if (a.rfind("--metrics-stall-timeout=", 0) == 0) {
      metrics_stall_timeout = std::atof(a.c_str() + 24);
    } else {
      std::cerr << "unknown option: " << a << "\n";
      usage(argv[0]);
      return 2;
    }
  }

  try {
    Graph g;
    if (is_mesh) {
      const Mesh mesh = read_metis_mesh_file(graph_path);
      g = mesh_to_dual(mesh, ncommon);
      std::cout << "mesh:    " << graph_path << " (" << mesh.nelems
                << " elements, " << mesh.nnodes << " nodes) -> dual graph\n";
    } else {
      g = read_metis_graph_file(graph_path);
    }
    if (ub > 0.0) opts.ubvec.assign(to_size(g.ncon), ub);

    std::cout << "graph:   " << graph_path << " (" << g.nvtxs << " vertices, "
              << g.nedges() << " edges, " << g.ncon << " constraint"
              << (g.ncon > 1 ? "s" : "") << ")\n";

    // The recorder is attached whenever progress or a ledger wants it; it
    // observes only, so the partition is unchanged either way.
    FlightRecorder flight;
    if (progress || !ledger_path.empty()) opts.flight = &flight;
    if (progress) flight.set_on_sample(&print_progress);

    // The profiler likewise only observes; partitions are bit-identical
    // with or without it. When the kernel refuses the counters it stays
    // attached and reports "available": false instead of failing the run.
    std::optional<Profiler> prof;
    if (profile) {
      prof.emplace();
      opts.profile = &*prof;
      if (!prof->counters_available()) {
        std::cerr << "mcpart: hardware counters unavailable ("
                  << prof->status() << "); profiling degrades to "
                  << "wall-clock only\n";
      }
    }

    // Process-lifetime metrics: attached for --metrics-* and, so the
    // ledger record can point at its snapshot sidecar, for --ledger too.
    // Observe-only like the recorder and profiler.
    std::optional<MetricsRegistry> metrics;
    std::optional<MetricsFlusher> flusher;
    if (!metrics_out.empty() || metrics_stall_timeout > 0 ||
        !ledger_path.empty()) {
      metrics.emplace();
      opts.metrics = &*metrics;
    }
    if (!metrics_out.empty() || metrics_stall_timeout > 0) {
      MetricsFlusher::Config mcfg;
      mcfg.out_path = metrics_out;
      // Without --metrics-interval only the final stop() snapshot is
      // written; 1h stands in for "never" during the run itself.
      mcfg.interval_s = metrics_interval > 0 ? metrics_interval : 3600.0;
      mcfg.stall_timeout_s = metrics_stall_timeout;
      flusher.emplace(*metrics, mcfg);
    }

    PartitionResult r;
    if (!refine_path.empty()) {
      // Validated load: exactly one entry per vertex, every id in range —
      // a bad file fails here with a precise message instead of crashing
      // (or silently mis-refining) deep inside the refiner.
      std::vector<idx_t> part =
          read_partition_file(refine_path, g.nvtxs, nparts);
      r = refine_partition(g, std::move(part), opts);
    } else {
      r = partition(g, opts);
    }

    std::cout << "nparts:  " << nparts << "  ("
              << (!refine_path.empty()
                      ? "refine existing"
                      : opts.algorithm == Algorithm::kKWay
                            ? "multilevel k-way"
                            : "recursive bisection")
              << ")\n";
    std::cout << "edgecut: " << r.cut << "\n";
    std::cout << "commvol: " << communication_volume(g, r.part, nparts) << "\n";
    std::cout << "balance:";
    for (const real_t lb : r.imbalance) std::cout << ' ' << lb;
    std::cout << "\n";
    std::cout << "feasible: " << (r.feasible ? "yes" : "NO")
              << "  (held to";
    for (const real_t u : r.ubvec_used) std::cout << ' ' << u;
    std::cout << ")\n";
    std::cout << "time:    " << r.seconds << "s";
    for (const auto& [phase, secs] : r.phases.entries()) {
      std::cout << "  " << phase << "=" << secs << "s";
    }
    std::cout << "\n";

    if (prof.has_value() && prof->counters_available()) {
      const ProfBucket run = prof->phase_total("run");
      std::cout << "profile:";
      const std::int64_t cycles =
          run.counters[static_cast<int>(PerfCounter::kCycles)];
      const std::int64_t instr =
          run.counters[static_cast<int>(PerfCounter::kInstructions)];
      if (prof->counter_open(PerfCounter::kCycles)) {
        std::cout << " cycles=" << cycles;
      }
      if (prof->counter_open(PerfCounter::kInstructions)) {
        std::cout << " instructions=" << instr;
      }
      if (cycles > 0 && prof->counter_open(PerfCounter::kInstructions)) {
        std::cout << " ipc="
                  << static_cast<double>(instr) / static_cast<double>(cycles);
      }
      if (prof->counter_open(PerfCounter::kTaskClock)) {
        std::cout << " task_clock="
                  << static_cast<double>(run.counters[static_cast<int>(
                         PerfCounter::kTaskClock)]) *
                         1e-9
                  << "s";
      }
      std::cout << "\n";
    }

    if (report) {
      std::cout << "\n";
      PartitionReport rep = analyze_partition(g, r.part, nparts);
      rep.feasible = r.feasible ? 1 : 0;
      rep.ubvec_used = r.ubvec_used;
      print_report(std::cout, rep);
      std::cout << "\n";
    }

    if (!report_json_path.empty()) {
      std::ofstream rj(report_json_path);
      if (!rj) {
        std::cerr << "error: cannot write report to " << report_json_path
                  << "\n";
        return 1;
      }
      PartitionReport rep = analyze_partition(g, r.part, nparts);
      rep.feasible = r.feasible ? 1 : 0;
      rep.ubvec_used = r.ubvec_used;
      write_report_json(rj, rep, opts.flight, opts.profile);
      std::cout << "report:  wrote " << report_json_path << "\n";
    }

    if (write_out) {
      if (out_path.empty()) {
        out_path = graph_path + ".part." + std::to_string(nparts);
      }
      write_partition_file(out_path, r.part);
      std::cout << "wrote:   " << out_path << "\n";
    }

    if (flusher.has_value()) {
      flusher->stop();
      if (!metrics_out.empty()) {
        std::cout << "metrics: wrote " << metrics_out << "\n";
      }
    }

    if (!ledger_path.empty()) {
      RunRecord rec =
          make_run_record("mcpart", graph_path, g, opts, r, opts.profile);
      // Final snapshot sidecar next to the ledger; the record points at
      // it so a ledger reader can find the cross-run aggregates.
      if (metrics.has_value()) {
        const std::string sidecar = ledger_path + ".metrics.json";
        std::ofstream ms(sidecar);
        if (ms) {
          metrics->write_json(ms);
          rec.metrics_snapshot = sidecar;
          std::cout << "metrics: wrote " << sidecar << "\n";
        }
      }
      if (append_run_record(ledger_path, rec)) {
        std::cout << "ledger:  appended to " << ledger_path << "\n";
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
