// Multi-phase simulation walkthrough — the scenario that motivates
// multi-constraint partitioning.
//
// Models a particle-in-mesh style computation: every time step runs m
// synchronized phases (e.g. field solve on the whole mesh, particle push
// on the particle-bearing region, chemistry on the burning region). Each
// phase ends with a barrier, so the step time is the SUM over phases of
// the per-phase maximum processor load.
//
// The example decomposes the mesh three ways and simulates T time steps:
//   1. "naive"  — balance vertex counts only (weight-blind),
//   2. "summed" — balance the sum of the phase costs (the traditional
//                  single-constraint formulation),
//   3. "multi"  — balance every phase individually (this library).
//
// Usage: multiphase_sim [side] [phases] [k]
#include <cstdlib>
#include <iostream>

#include "core/partitioner.hpp"
#include "gen/mesh_gen.hpp"
#include "gen/phase_sim.hpp"
#include "gen/weight_gen.hpp"
#include "graph/metrics.hpp"
#include "support/check.hpp"

int main(int argc, char** argv) {
  using namespace mcgp;
  const idx_t side = argc > 1 ? std::atoi(argv[1]) : 160;
  const int m = argc > 2 ? std::atoi(argv[2]) : 3;
  const idx_t k = argc > 3 ? std::atoi(argv[3]) : 16;
  const int steps = 100;

  Graph mesh = grid2d(side, side);
  const PhaseActivity activity = apply_type_p_weights(mesh, m, 32, 77);

  std::cout << "mesh: " << mesh.nvtxs << " cells, " << m
            << " computation phases, " << k << " processors\n";
  std::cout << "phase activity fractions:";
  for (const double f : activity.fraction) std::cout << ' ' << f;
  std::cout << "\n\n";

  struct Candidate {
    const char* name;
    std::vector<idx_t> part;
    sum_t cut;
  };
  std::vector<Candidate> candidates;

  {  // 1. weight-blind
    Graph bare = grid2d(side, side);
    Options o;
    o.nparts = k;
    PartitionResult r = partition(bare, o);
    candidates.push_back({"naive (vertex count)", std::move(r.part), 0});
    candidates.back().cut = edge_cut(mesh, candidates.back().part);
  }
  {  // 2. summed single-constraint
    Graph collapsed = sum_collapse_constraints(mesh);
    Options o;
    o.nparts = k;
    PartitionResult r = partition(collapsed, o);
    candidates.push_back({"summed (1 constraint)", std::move(r.part), 0});
    candidates.back().cut = edge_cut(mesh, candidates.back().part);
  }
  {  // 3. multi-constraint
    Options o;
    o.nparts = k;
    PartitionResult r = partition(mesh, o);
    candidates.push_back({"multi (m constraints)", std::move(r.part), 0});
    candidates.back().cut = edge_cut(mesh, candidates.back().part);
  }

  std::cout << "simulating " << steps
            << " time steps (barrier after every phase):\n\n";
  for (const auto& c : candidates) {
    const PhaseSimResult sim = simulate_phases(mesh, c.part, k);
    std::cout << c.name << ":\n";
    std::cout << "  per-phase imbalance:";
    for (int p = 0; p < m; ++p) {
      std::cout << ' '
                << static_cast<double>(sim.phase_makespan[to_size(p)]) /
                       static_cast<double>(sim.phase_ideal[to_size(p)]);
    }
    std::cout << "\n  step time: " << sim.total_makespan
              << " (ideal " << sim.total_ideal << ")"
              << "  total for " << steps
              << " steps: " << checked_mul(sim.total_makespan, steps)
              << "\n  slowdown vs ideal: " << sim.slowdown()
              << "  communication (edge-cut): " << c.cut << "\n\n";
  }
  return 0;
}
