// Quickstart: build a mesh, attach multi-constraint weights, partition it
// both ways (MC-RB and MC-KW), and print quality metrics.
//
// Usage: quickstart [n] [m] [k]
//   n: grid side length (default 120 -> 14400 vertices)
//   m: number of balance constraints (default 3)
//   k: number of parts (default 16)
#include <cstdlib>
#include <iostream>

#include "core/partitioner.hpp"
#include "gen/mesh_gen.hpp"
#include "gen/weight_gen.hpp"
#include "graph/metrics.hpp"

int main(int argc, char** argv) {
  const mcgp::idx_t n = argc > 1 ? std::atoi(argv[1]) : 120;
  const int m = argc > 2 ? std::atoi(argv[2]) : 3;
  const mcgp::idx_t k = argc > 3 ? std::atoi(argv[3]) : 16;

  // 1. A well-shaped mesh (stand-in for an FE mesh read from disk).
  mcgp::Graph g = mcgp::grid2d(n, n);

  // 2. SC'98-style structured multi-constraint weights: 16 contiguous
  //    regions, each with its own random weight vector in [0, 19]^m.
  mcgp::apply_type_s_weights(g, m, /*nregions=*/16, 0, 19, /*seed=*/42);

  std::cout << "graph: " << g.nvtxs << " vertices, " << g.nedges()
            << " edges, " << g.ncon << " constraints\n";

  for (const auto alg : {mcgp::Algorithm::kRecursiveBisection,
                         mcgp::Algorithm::kKWay}) {
    mcgp::Options opts;
    opts.nparts = k;
    opts.algorithm = alg;
    opts.seed = 1;

    const mcgp::PartitionResult r = mcgp::partition(g, opts);

    std::cout << (alg == mcgp::Algorithm::kKWay ? "MC-KW" : "MC-RB")
              << ": cut=" << r.cut << " commvol="
              << mcgp::communication_volume(g, r.part, k)
              << " time=" << r.seconds << "s\n  imbalance per constraint:";
    for (const double lb : r.imbalance) std::cout << ' ' << lb;
    std::cout << "  (tolerance 1.05)\n";
  }
  return 0;
}
