// Adaptive computation walkthrough: repeated load balancing as the
// workload evolves, comparing the two strategies a solver has —
//
//  * repartition from scratch each epoch (best cut, but every vertex may
//    migrate to a different processor), or
//  * refine the existing decomposition in place (refine_partition():
//    restores balance with few migrations, preserving data locality).
//
// Each epoch the active regions of the phases drift across the mesh
// (re-rolled from a fresh seed, as after adaptive refinement or a moving
// front); both strategies are evaluated on balance, cut, migration volume
// and time — the trade-off that motivated the paper's follow-up work on
// (re)partitioning inside the simulation.
//
// Usage: adaptive_remesh [side] [phases] [k] [epochs]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/partitioner.hpp"
#include "gen/mesh_gen.hpp"
#include "gen/phase_sim.hpp"
#include "gen/weight_gen.hpp"
#include "graph/metrics.hpp"

int main(int argc, char** argv) {
  using namespace mcgp;
  const idx_t side = argc > 1 ? std::atoi(argv[1]) : 140;
  const int m = argc > 2 ? std::atoi(argv[2]) : 3;
  const idx_t k = argc > 3 ? std::atoi(argv[3]) : 16;
  const int epochs = argc > 4 ? std::atoi(argv[4]) : 6;

  std::cout << "adaptive " << m << "-phase run on a " << side << "x" << side
            << " mesh, " << k << " processors, " << epochs << " epochs\n\n";

  Options opts;
  opts.nparts = k;

  // Epoch 0: initial decomposition.
  Graph mesh = grid2d(side, side);
  apply_type_p_weights(mesh, m, 32, 1000);
  PartitionResult current = partition(mesh, opts);

  std::cout << "epoch  strategy     cut     max-imb  slowdown  migrated  time(s)\n";
  auto report = [&](int e, const char* strategy, const PartitionResult& r,
                    idx_t migrated) {
    const PhaseSimResult sim = simulate_phases(mesh, r.part, k);
    std::printf("%-6d %-12s %-7lld %-8.3f %-9.3f %-9d %.3f\n", e, strategy,
                static_cast<long long>(r.cut), r.max_imbalance,
                sim.slowdown(), migrated, r.seconds);
  };
  report(0, "initial", current, mesh.nvtxs);

  for (int e = 1; e < epochs; ++e) {
    // The workload drifts: new contiguous active sets for every phase.
    apply_type_p_weights(mesh, m, 32, 1000 + static_cast<std::uint64_t>(e));

    // Strategy A: repartition from scratch.
    Options scratch_opts = opts;
    scratch_opts.seed = static_cast<std::uint64_t>(e + 1);
    const PartitionResult scratch = partition(mesh, scratch_opts);
    report(e, "scratch", scratch, moved_vertices(current.part, scratch.part));

    // Strategy B: refine the existing decomposition in place.
    const PartitionResult refined = refine_partition(mesh, current.part, opts);
    report(e, "refine", refined, moved_vertices(current.part, refined.part));

    // The simulation keeps the refined decomposition (locality wins).
    current = refined;
  }

  std::cout << "\nrefine_partition() restores balance with a fraction of the\n"
               "migration volume; from-scratch repartitioning buys a lower\n"
               "cut at the price of moving most of the mesh between\n"
               "processors every epoch.\n";
  return 0;
}
