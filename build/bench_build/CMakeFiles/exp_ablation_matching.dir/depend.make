# Empty dependencies file for exp_ablation_matching.
# This may be replaced when dependencies are built.
