file(REMOVE_RECURSE
  "../bench/exp_ablation_matching"
  "../bench/exp_ablation_matching.pdb"
  "CMakeFiles/exp_ablation_matching.dir/bench_common.cpp.o"
  "CMakeFiles/exp_ablation_matching.dir/bench_common.cpp.o.d"
  "CMakeFiles/exp_ablation_matching.dir/exp_ablation_matching.cpp.o"
  "CMakeFiles/exp_ablation_matching.dir/exp_ablation_matching.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_ablation_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
