# Empty dependencies file for exp_multiphase.
# This may be replaced when dependencies are built.
