file(REMOVE_RECURSE
  "../bench/exp_multiphase"
  "../bench/exp_multiphase.pdb"
  "CMakeFiles/exp_multiphase.dir/bench_common.cpp.o"
  "CMakeFiles/exp_multiphase.dir/bench_common.cpp.o.d"
  "CMakeFiles/exp_multiphase.dir/exp_multiphase.cpp.o"
  "CMakeFiles/exp_multiphase.dir/exp_multiphase.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_multiphase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
