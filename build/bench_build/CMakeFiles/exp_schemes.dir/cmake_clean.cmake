file(REMOVE_RECURSE
  "../bench/exp_schemes"
  "../bench/exp_schemes.pdb"
  "CMakeFiles/exp_schemes.dir/bench_common.cpp.o"
  "CMakeFiles/exp_schemes.dir/bench_common.cpp.o.d"
  "CMakeFiles/exp_schemes.dir/exp_schemes.cpp.o"
  "CMakeFiles/exp_schemes.dir/exp_schemes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
