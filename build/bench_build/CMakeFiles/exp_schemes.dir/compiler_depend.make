# Empty compiler generated dependencies file for exp_schemes.
# This may be replaced when dependencies are built.
