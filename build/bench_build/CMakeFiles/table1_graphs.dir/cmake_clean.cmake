file(REMOVE_RECURSE
  "../bench/table1_graphs"
  "../bench/table1_graphs.pdb"
  "CMakeFiles/table1_graphs.dir/bench_common.cpp.o"
  "CMakeFiles/table1_graphs.dir/bench_common.cpp.o.d"
  "CMakeFiles/table1_graphs.dir/table1_graphs.cpp.o"
  "CMakeFiles/table1_graphs.dir/table1_graphs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_graphs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
