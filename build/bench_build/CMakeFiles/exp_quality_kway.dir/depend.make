# Empty dependencies file for exp_quality_kway.
# This may be replaced when dependencies are built.
