file(REMOVE_RECURSE
  "../bench/exp_quality_kway"
  "../bench/exp_quality_kway.pdb"
  "CMakeFiles/exp_quality_kway.dir/bench_common.cpp.o"
  "CMakeFiles/exp_quality_kway.dir/bench_common.cpp.o.d"
  "CMakeFiles/exp_quality_kway.dir/exp_quality_kway.cpp.o"
  "CMakeFiles/exp_quality_kway.dir/exp_quality_kway.cpp.o.d"
  "CMakeFiles/exp_quality_kway.dir/quality_experiment.cpp.o"
  "CMakeFiles/exp_quality_kway.dir/quality_experiment.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_quality_kway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
