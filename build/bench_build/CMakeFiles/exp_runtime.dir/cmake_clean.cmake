file(REMOVE_RECURSE
  "../bench/exp_runtime"
  "../bench/exp_runtime.pdb"
  "CMakeFiles/exp_runtime.dir/bench_common.cpp.o"
  "CMakeFiles/exp_runtime.dir/bench_common.cpp.o.d"
  "CMakeFiles/exp_runtime.dir/exp_runtime.cpp.o"
  "CMakeFiles/exp_runtime.dir/exp_runtime.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
