# Empty compiler generated dependencies file for exp_runtime.
# This may be replaced when dependencies are built.
