# Empty compiler generated dependencies file for exp_ablation_multilevel.
# This may be replaced when dependencies are built.
