file(REMOVE_RECURSE
  "../bench/exp_ablation_multilevel"
  "../bench/exp_ablation_multilevel.pdb"
  "CMakeFiles/exp_ablation_multilevel.dir/bench_common.cpp.o"
  "CMakeFiles/exp_ablation_multilevel.dir/bench_common.cpp.o.d"
  "CMakeFiles/exp_ablation_multilevel.dir/exp_ablation_multilevel.cpp.o"
  "CMakeFiles/exp_ablation_multilevel.dir/exp_ablation_multilevel.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_ablation_multilevel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
