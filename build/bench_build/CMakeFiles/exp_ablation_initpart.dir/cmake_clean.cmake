file(REMOVE_RECURSE
  "../bench/exp_ablation_initpart"
  "../bench/exp_ablation_initpart.pdb"
  "CMakeFiles/exp_ablation_initpart.dir/bench_common.cpp.o"
  "CMakeFiles/exp_ablation_initpart.dir/bench_common.cpp.o.d"
  "CMakeFiles/exp_ablation_initpart.dir/exp_ablation_initpart.cpp.o"
  "CMakeFiles/exp_ablation_initpart.dir/exp_ablation_initpart.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_ablation_initpart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
