# Empty dependencies file for exp_ablation_initpart.
# This may be replaced when dependencies are built.
