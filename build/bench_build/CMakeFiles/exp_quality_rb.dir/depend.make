# Empty dependencies file for exp_quality_rb.
# This may be replaced when dependencies are built.
