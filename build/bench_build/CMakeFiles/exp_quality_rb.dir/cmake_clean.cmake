file(REMOVE_RECURSE
  "../bench/exp_quality_rb"
  "../bench/exp_quality_rb.pdb"
  "CMakeFiles/exp_quality_rb.dir/bench_common.cpp.o"
  "CMakeFiles/exp_quality_rb.dir/bench_common.cpp.o.d"
  "CMakeFiles/exp_quality_rb.dir/exp_quality_rb.cpp.o"
  "CMakeFiles/exp_quality_rb.dir/exp_quality_rb.cpp.o.d"
  "CMakeFiles/exp_quality_rb.dir/quality_experiment.cpp.o"
  "CMakeFiles/exp_quality_rb.dir/quality_experiment.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_quality_rb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
