# Empty compiler generated dependencies file for exp_ablation_kwayref.
# This may be replaced when dependencies are built.
