file(REMOVE_RECURSE
  "../bench/exp_ablation_kwayref"
  "../bench/exp_ablation_kwayref.pdb"
  "CMakeFiles/exp_ablation_kwayref.dir/bench_common.cpp.o"
  "CMakeFiles/exp_ablation_kwayref.dir/bench_common.cpp.o.d"
  "CMakeFiles/exp_ablation_kwayref.dir/exp_ablation_kwayref.cpp.o"
  "CMakeFiles/exp_ablation_kwayref.dir/exp_ablation_kwayref.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_ablation_kwayref.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
