file(REMOVE_RECURSE
  "../bench/exp_ablation_refine"
  "../bench/exp_ablation_refine.pdb"
  "CMakeFiles/exp_ablation_refine.dir/bench_common.cpp.o"
  "CMakeFiles/exp_ablation_refine.dir/bench_common.cpp.o.d"
  "CMakeFiles/exp_ablation_refine.dir/exp_ablation_refine.cpp.o"
  "CMakeFiles/exp_ablation_refine.dir/exp_ablation_refine.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_ablation_refine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
