# Empty compiler generated dependencies file for exp_ablation_refine.
# This may be replaced when dependencies are built.
