file(REMOVE_RECURSE
  "CMakeFiles/test_drivers.dir/test_kway_driver.cpp.o"
  "CMakeFiles/test_drivers.dir/test_kway_driver.cpp.o.d"
  "CMakeFiles/test_drivers.dir/test_partitioner.cpp.o"
  "CMakeFiles/test_drivers.dir/test_partitioner.cpp.o.d"
  "CMakeFiles/test_drivers.dir/test_rb_driver.cpp.o"
  "CMakeFiles/test_drivers.dir/test_rb_driver.cpp.o.d"
  "CMakeFiles/test_drivers.dir/test_refine_api.cpp.o"
  "CMakeFiles/test_drivers.dir/test_refine_api.cpp.o.d"
  "CMakeFiles/test_drivers.dir/test_tpwgts.cpp.o"
  "CMakeFiles/test_drivers.dir/test_tpwgts.cpp.o.d"
  "test_drivers"
  "test_drivers.pdb"
  "test_drivers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_drivers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
