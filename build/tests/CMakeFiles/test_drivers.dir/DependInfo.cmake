
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_kway_driver.cpp" "tests/CMakeFiles/test_drivers.dir/test_kway_driver.cpp.o" "gcc" "tests/CMakeFiles/test_drivers.dir/test_kway_driver.cpp.o.d"
  "/root/repo/tests/test_partitioner.cpp" "tests/CMakeFiles/test_drivers.dir/test_partitioner.cpp.o" "gcc" "tests/CMakeFiles/test_drivers.dir/test_partitioner.cpp.o.d"
  "/root/repo/tests/test_rb_driver.cpp" "tests/CMakeFiles/test_drivers.dir/test_rb_driver.cpp.o" "gcc" "tests/CMakeFiles/test_drivers.dir/test_rb_driver.cpp.o.d"
  "/root/repo/tests/test_refine_api.cpp" "tests/CMakeFiles/test_drivers.dir/test_refine_api.cpp.o" "gcc" "tests/CMakeFiles/test_drivers.dir/test_refine_api.cpp.o.d"
  "/root/repo/tests/test_tpwgts.cpp" "tests/CMakeFiles/test_drivers.dir/test_tpwgts.cpp.o" "gcc" "tests/CMakeFiles/test_drivers.dir/test_tpwgts.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mcgp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
