
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_csr_graph.cpp" "tests/CMakeFiles/test_graph.dir/test_csr_graph.cpp.o" "gcc" "tests/CMakeFiles/test_graph.dir/test_csr_graph.cpp.o.d"
  "/root/repo/tests/test_graph_io.cpp" "tests/CMakeFiles/test_graph.dir/test_graph_io.cpp.o" "gcc" "tests/CMakeFiles/test_graph.dir/test_graph_io.cpp.o.d"
  "/root/repo/tests/test_graph_ops.cpp" "tests/CMakeFiles/test_graph.dir/test_graph_ops.cpp.o" "gcc" "tests/CMakeFiles/test_graph.dir/test_graph_ops.cpp.o.d"
  "/root/repo/tests/test_mesh.cpp" "tests/CMakeFiles/test_graph.dir/test_mesh.cpp.o" "gcc" "tests/CMakeFiles/test_graph.dir/test_mesh.cpp.o.d"
  "/root/repo/tests/test_metrics.cpp" "tests/CMakeFiles/test_graph.dir/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/test_graph.dir/test_metrics.cpp.o.d"
  "/root/repo/tests/test_part_report.cpp" "tests/CMakeFiles/test_graph.dir/test_part_report.cpp.o" "gcc" "tests/CMakeFiles/test_graph.dir/test_part_report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mcgp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
