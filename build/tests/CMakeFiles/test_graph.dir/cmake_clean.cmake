file(REMOVE_RECURSE
  "CMakeFiles/test_graph.dir/test_csr_graph.cpp.o"
  "CMakeFiles/test_graph.dir/test_csr_graph.cpp.o.d"
  "CMakeFiles/test_graph.dir/test_graph_io.cpp.o"
  "CMakeFiles/test_graph.dir/test_graph_io.cpp.o.d"
  "CMakeFiles/test_graph.dir/test_graph_ops.cpp.o"
  "CMakeFiles/test_graph.dir/test_graph_ops.cpp.o.d"
  "CMakeFiles/test_graph.dir/test_mesh.cpp.o"
  "CMakeFiles/test_graph.dir/test_mesh.cpp.o.d"
  "CMakeFiles/test_graph.dir/test_metrics.cpp.o"
  "CMakeFiles/test_graph.dir/test_metrics.cpp.o.d"
  "CMakeFiles/test_graph.dir/test_part_report.cpp.o"
  "CMakeFiles/test_graph.dir/test_part_report.cpp.o.d"
  "test_graph"
  "test_graph.pdb"
  "test_graph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
