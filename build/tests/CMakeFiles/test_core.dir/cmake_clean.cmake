file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/test_balance2way.cpp.o"
  "CMakeFiles/test_core.dir/test_balance2way.cpp.o.d"
  "CMakeFiles/test_core.dir/test_bisection.cpp.o"
  "CMakeFiles/test_core.dir/test_bisection.cpp.o.d"
  "CMakeFiles/test_core.dir/test_coarsen.cpp.o"
  "CMakeFiles/test_core.dir/test_coarsen.cpp.o.d"
  "CMakeFiles/test_core.dir/test_config.cpp.o"
  "CMakeFiles/test_core.dir/test_config.cpp.o.d"
  "CMakeFiles/test_core.dir/test_initpart.cpp.o"
  "CMakeFiles/test_core.dir/test_initpart.cpp.o.d"
  "CMakeFiles/test_core.dir/test_kway_refine.cpp.o"
  "CMakeFiles/test_core.dir/test_kway_refine.cpp.o.d"
  "CMakeFiles/test_core.dir/test_matching.cpp.o"
  "CMakeFiles/test_core.dir/test_matching.cpp.o.d"
  "CMakeFiles/test_core.dir/test_project.cpp.o"
  "CMakeFiles/test_core.dir/test_project.cpp.o.d"
  "CMakeFiles/test_core.dir/test_refine2way.cpp.o"
  "CMakeFiles/test_core.dir/test_refine2way.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
