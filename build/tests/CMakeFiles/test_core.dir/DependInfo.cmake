
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_balance2way.cpp" "tests/CMakeFiles/test_core.dir/test_balance2way.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/test_balance2way.cpp.o.d"
  "/root/repo/tests/test_bisection.cpp" "tests/CMakeFiles/test_core.dir/test_bisection.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/test_bisection.cpp.o.d"
  "/root/repo/tests/test_coarsen.cpp" "tests/CMakeFiles/test_core.dir/test_coarsen.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/test_coarsen.cpp.o.d"
  "/root/repo/tests/test_config.cpp" "tests/CMakeFiles/test_core.dir/test_config.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/test_config.cpp.o.d"
  "/root/repo/tests/test_initpart.cpp" "tests/CMakeFiles/test_core.dir/test_initpart.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/test_initpart.cpp.o.d"
  "/root/repo/tests/test_kway_refine.cpp" "tests/CMakeFiles/test_core.dir/test_kway_refine.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/test_kway_refine.cpp.o.d"
  "/root/repo/tests/test_matching.cpp" "tests/CMakeFiles/test_core.dir/test_matching.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/test_matching.cpp.o.d"
  "/root/repo/tests/test_project.cpp" "tests/CMakeFiles/test_core.dir/test_project.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/test_project.cpp.o.d"
  "/root/repo/tests/test_refine2way.cpp" "tests/CMakeFiles/test_core.dir/test_refine2way.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/test_refine2way.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mcgp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
