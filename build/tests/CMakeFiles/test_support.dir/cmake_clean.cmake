file(REMOVE_RECURSE
  "CMakeFiles/test_support.dir/test_bucket_queue.cpp.o"
  "CMakeFiles/test_support.dir/test_bucket_queue.cpp.o.d"
  "CMakeFiles/test_support.dir/test_indexed_heap.cpp.o"
  "CMakeFiles/test_support.dir/test_indexed_heap.cpp.o.d"
  "CMakeFiles/test_support.dir/test_random.cpp.o"
  "CMakeFiles/test_support.dir/test_random.cpp.o.d"
  "CMakeFiles/test_support.dir/test_timer.cpp.o"
  "CMakeFiles/test_support.dir/test_timer.cpp.o.d"
  "CMakeFiles/test_support.dir/test_union_find.cpp.o"
  "CMakeFiles/test_support.dir/test_union_find.cpp.o.d"
  "test_support"
  "test_support.pdb"
  "test_support[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
