file(REMOVE_RECURSE
  "CMakeFiles/mcpart.dir/mcpart_cli.cpp.o"
  "CMakeFiles/mcpart.dir/mcpart_cli.cpp.o.d"
  "mcpart"
  "mcpart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcpart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
