# Empty compiler generated dependencies file for mcpart.
# This may be replaced when dependencies are built.
