file(REMOVE_RECURSE
  "CMakeFiles/multiphase_sim.dir/multiphase_sim.cpp.o"
  "CMakeFiles/multiphase_sim.dir/multiphase_sim.cpp.o.d"
  "multiphase_sim"
  "multiphase_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiphase_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
