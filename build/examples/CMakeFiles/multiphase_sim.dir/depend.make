# Empty dependencies file for multiphase_sim.
# This may be replaced when dependencies are built.
