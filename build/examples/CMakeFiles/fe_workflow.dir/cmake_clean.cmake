file(REMOVE_RECURSE
  "CMakeFiles/fe_workflow.dir/fe_workflow.cpp.o"
  "CMakeFiles/fe_workflow.dir/fe_workflow.cpp.o.d"
  "fe_workflow"
  "fe_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fe_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
