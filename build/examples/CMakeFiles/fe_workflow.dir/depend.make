# Empty dependencies file for fe_workflow.
# This may be replaced when dependencies are built.
