# Empty compiler generated dependencies file for adaptive_remesh.
# This may be replaced when dependencies are built.
