file(REMOVE_RECURSE
  "CMakeFiles/adaptive_remesh.dir/adaptive_remesh.cpp.o"
  "CMakeFiles/adaptive_remesh.dir/adaptive_remesh.cpp.o.d"
  "adaptive_remesh"
  "adaptive_remesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_remesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
