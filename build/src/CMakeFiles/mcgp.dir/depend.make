# Empty dependencies file for mcgp.
# This may be replaced when dependencies are built.
