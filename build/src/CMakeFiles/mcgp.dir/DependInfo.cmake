
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/balance2way.cpp" "src/CMakeFiles/mcgp.dir/core/balance2way.cpp.o" "gcc" "src/CMakeFiles/mcgp.dir/core/balance2way.cpp.o.d"
  "/root/repo/src/core/coarsen.cpp" "src/CMakeFiles/mcgp.dir/core/coarsen.cpp.o" "gcc" "src/CMakeFiles/mcgp.dir/core/coarsen.cpp.o.d"
  "/root/repo/src/core/initpart.cpp" "src/CMakeFiles/mcgp.dir/core/initpart.cpp.o" "gcc" "src/CMakeFiles/mcgp.dir/core/initpart.cpp.o.d"
  "/root/repo/src/core/kway_driver.cpp" "src/CMakeFiles/mcgp.dir/core/kway_driver.cpp.o" "gcc" "src/CMakeFiles/mcgp.dir/core/kway_driver.cpp.o.d"
  "/root/repo/src/core/kway_refine.cpp" "src/CMakeFiles/mcgp.dir/core/kway_refine.cpp.o" "gcc" "src/CMakeFiles/mcgp.dir/core/kway_refine.cpp.o.d"
  "/root/repo/src/core/matching.cpp" "src/CMakeFiles/mcgp.dir/core/matching.cpp.o" "gcc" "src/CMakeFiles/mcgp.dir/core/matching.cpp.o.d"
  "/root/repo/src/core/partitioner.cpp" "src/CMakeFiles/mcgp.dir/core/partitioner.cpp.o" "gcc" "src/CMakeFiles/mcgp.dir/core/partitioner.cpp.o.d"
  "/root/repo/src/core/project.cpp" "src/CMakeFiles/mcgp.dir/core/project.cpp.o" "gcc" "src/CMakeFiles/mcgp.dir/core/project.cpp.o.d"
  "/root/repo/src/core/rb_driver.cpp" "src/CMakeFiles/mcgp.dir/core/rb_driver.cpp.o" "gcc" "src/CMakeFiles/mcgp.dir/core/rb_driver.cpp.o.d"
  "/root/repo/src/core/refine2way.cpp" "src/CMakeFiles/mcgp.dir/core/refine2way.cpp.o" "gcc" "src/CMakeFiles/mcgp.dir/core/refine2way.cpp.o.d"
  "/root/repo/src/gen/mesh_gen.cpp" "src/CMakeFiles/mcgp.dir/gen/mesh_gen.cpp.o" "gcc" "src/CMakeFiles/mcgp.dir/gen/mesh_gen.cpp.o.d"
  "/root/repo/src/gen/phase_sim.cpp" "src/CMakeFiles/mcgp.dir/gen/phase_sim.cpp.o" "gcc" "src/CMakeFiles/mcgp.dir/gen/phase_sim.cpp.o.d"
  "/root/repo/src/gen/weight_gen.cpp" "src/CMakeFiles/mcgp.dir/gen/weight_gen.cpp.o" "gcc" "src/CMakeFiles/mcgp.dir/gen/weight_gen.cpp.o.d"
  "/root/repo/src/graph/csr_graph.cpp" "src/CMakeFiles/mcgp.dir/graph/csr_graph.cpp.o" "gcc" "src/CMakeFiles/mcgp.dir/graph/csr_graph.cpp.o.d"
  "/root/repo/src/graph/graph_io.cpp" "src/CMakeFiles/mcgp.dir/graph/graph_io.cpp.o" "gcc" "src/CMakeFiles/mcgp.dir/graph/graph_io.cpp.o.d"
  "/root/repo/src/graph/graph_ops.cpp" "src/CMakeFiles/mcgp.dir/graph/graph_ops.cpp.o" "gcc" "src/CMakeFiles/mcgp.dir/graph/graph_ops.cpp.o.d"
  "/root/repo/src/graph/metrics.cpp" "src/CMakeFiles/mcgp.dir/graph/metrics.cpp.o" "gcc" "src/CMakeFiles/mcgp.dir/graph/metrics.cpp.o.d"
  "/root/repo/src/graph/part_report.cpp" "src/CMakeFiles/mcgp.dir/graph/part_report.cpp.o" "gcc" "src/CMakeFiles/mcgp.dir/graph/part_report.cpp.o.d"
  "/root/repo/src/mesh/mesh.cpp" "src/CMakeFiles/mcgp.dir/mesh/mesh.cpp.o" "gcc" "src/CMakeFiles/mcgp.dir/mesh/mesh.cpp.o.d"
  "/root/repo/src/support/bucket_queue.cpp" "src/CMakeFiles/mcgp.dir/support/bucket_queue.cpp.o" "gcc" "src/CMakeFiles/mcgp.dir/support/bucket_queue.cpp.o.d"
  "/root/repo/src/support/random.cpp" "src/CMakeFiles/mcgp.dir/support/random.cpp.o" "gcc" "src/CMakeFiles/mcgp.dir/support/random.cpp.o.d"
  "/root/repo/src/support/timer.cpp" "src/CMakeFiles/mcgp.dir/support/timer.cpp.o" "gcc" "src/CMakeFiles/mcgp.dir/support/timer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
