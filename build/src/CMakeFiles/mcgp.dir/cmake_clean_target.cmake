file(REMOVE_RECURSE
  "libmcgp.a"
)
