#!/usr/bin/env python3
"""Reader and lint for mcgp metrics snapshots (support/metrics.hpp).

Consumes the JSON snapshot a metrics-attached process writes (mcpart
--metrics-out=*.json, a bench's <ledger>.metrics.json sidecar, or a
stall postmortem whose "metrics" member embeds one) and renders the
views a service investigation starts from:

  top   histogram series ranked by total time (sum), with count, mean,
        and conservative p50/p90/p99 derived from the log2 buckets
  hist  the full bucket table of one histogram series
        (le, own count, cumulative, share of observations)
  diff  A/B comparison of two snapshots from the same registry:
        counter and histogram deltas (what happened in between),
        gauges before -> after

  lint  OpenMetrics text-format checker for the exposition files
        (mcpart --metrics-out=*.prom): metadata present and typed,
        counters `_total`-suffixed, histogram buckets cumulative and
        closed by a `+Inf` bucket equal to `_count`, label syntax,
        `# EOF` terminator. CI runs this over a live mcpart exposition.

Dependency-free by design: stdlib only, same as tools/mcgp_prof.

Exit codes: 0 = ok / lint clean, 1 = lint findings, 2 = bad input.
"""

from __future__ import annotations

import argparse
import json
import re
import sys

# Snapshot schema this reader understands (kMcgpSchemaVersion in
# src/support/schema.hpp). Newer majors fail loudly instead of silently
# misreading fields whose meaning may have changed.
SUPPORTED_SCHEMA = 1

# The last histogram bucket is +Inf (kHistBuckets-1 in metrics.hpp);
# every finite bucket b has inclusive upper bound 2^b.
HIST_BUCKETS = 64


def bucket_le(b):
    """Finite upper bound of bucket b; the +Inf bucket reports the
    largest finite bound, matching HistogramData::quantile."""
    return float(2 ** min(b, HIST_BUCKETS - 2))


def load_snapshot(path):
    """Read a metrics snapshot (or a postmortem document embedding one)
    and return it, or raise SystemExit with a precise message."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as e:
        raise SystemExit(f"error: cannot read {path}: {e}")
    except json.JSONDecodeError as e:
        raise SystemExit(f"error: {path}: not valid JSON: {e}")
    if isinstance(doc, dict) and isinstance(doc.get("metrics"), dict):
        doc = doc["metrics"]  # a stall postmortem wrapping the snapshot
    if not (isinstance(doc, dict) and doc.get("kind") == "mcgp_metrics"):
        raise SystemExit(
            f"error: {path}: not a metrics snapshot — produce one with "
            "mcpart --metrics-out=<path>.json")
    schema = doc.get("schema_version")
    if schema is None or schema > SUPPORTED_SCHEMA:
        raise SystemExit(
            f"error: {path}: snapshot schema_version {schema!r} not "
            f"supported (this reader understands <= {SUPPORTED_SCHEMA})")
    return doc


def label_str(family, values):
    keys = family.get("labels", [])
    pairs = [f'{k}="{v}"' for k, v in zip(keys, values)]
    return "{" + ",".join(pairs) + "}" if pairs else ""


def hist_quantile(series, q):
    """Conservative quantile from the sparse [bucket, own_count] pairs:
    the upper bound of the first bucket whose cumulative count reaches
    q*count — never underestimates. None for an empty histogram."""
    count = series.get("count", 0)
    if count <= 0:
        return None
    target = q * count
    cum = 0
    for b, own in sorted(series.get("buckets", [])):
        cum += own
        if cum >= target:
            return bucket_le(b)
    return bucket_le(HIST_BUCKETS - 1)


def fmt(v):
    if v is None:
        return "-"
    if isinstance(v, float):
        return f"{v:.4g}"
    return f"{v:,}"


def each_series(snap, kind=None, family=None):
    for fam in snap.get("families", []):
        if kind is not None and fam.get("kind") != kind:
            continue
        if family is not None and fam.get("name") != family:
            continue
        for s in fam.get("series", []):
            yield fam, s


def cmd_top(args):
    snap = load_snapshot(args.snapshot)
    rows = []
    for fam, s in each_series(snap, kind="histogram"):
        name = fam["name"] + label_str(fam, s.get("labels", []))
        count, total = s.get("count", 0), s.get("sum", 0)
        if count <= 0:
            continue
        rows.append((total, count, name, s))
    rows.sort(key=lambda t: (-t[0], t[2]))
    print(f"top {min(args.n, len(rows))} histogram series by sum "
          f"({args.snapshot})")
    header = (f"{'series':<48} {'count':>8} {'sum':>16} {'mean':>10} "
              f"{'p50':>10} {'p90':>10} {'p99':>10}")
    print(header)
    print("-" * len(header))
    for total, count, name, s in rows[:args.n]:
        mean = total / count
        p50, p90, p99 = (hist_quantile(s, q) for q in (0.5, 0.9, 0.99))
        print(f"{name:<48} {count:>8,} {total:>16,} {fmt(mean):>10} "
              f"{fmt(p50):>10} {fmt(p90):>10} {fmt(p99):>10}")
    return 0


def cmd_hist(args):
    snap = load_snapshot(args.snapshot)
    want = args.labels.split(",") if args.labels else None
    matches = [(fam, s) for fam, s in
               each_series(snap, kind="histogram", family=args.family)
               if want is None or s.get("labels", []) == want]
    if not matches:
        have = sorted({fam["name"] + label_str(fam, s.get("labels", []))
                       for fam, s in each_series(snap, kind="histogram")})
        raise SystemExit(
            f"error: no histogram series {args.family!r}"
            f"{'/' + args.labels if args.labels else ''} in "
            f"{args.snapshot} (have: {', '.join(have) or 'none'})")
    for fam, s in matches:
        name = fam["name"] + label_str(fam, s.get("labels", []))
        count = s.get("count", 0)
        print(f"{name}: count={fmt(count)} sum={fmt(s.get('sum', 0))}"
              f"{' unit=' + fam['unit'] if fam.get('unit') else ''}"
              f"{' SATURATED' if s.get('saturated') else ''}")
        header = f"{'le':>22} {'own':>10} {'cumulative':>12} {'share':>7}"
        print(header)
        print("-" * len(header))
        cum = 0
        for b, own in sorted(s.get("buckets", [])):
            cum += own
            le = "+Inf" if b == HIST_BUCKETS - 1 else f"{2 ** b:,}"
            share = f"{cum / count:7.1%}" if count else "      -"
            print(f"{le:>22} {own:>10,} {cum:>12,} {share}")
    return 0


def cmd_diff(args):
    before = load_snapshot(args.before)
    after = load_snapshot(args.after)

    def index(snap):
        return {(fam["name"], tuple(s.get("labels", []))): (fam, s)
                for fam, s in each_series(snap, family=args.family)}

    idx_b, idx_a = index(before), index(after)
    print(f"{args.before} -> {args.after}")
    header = f"{'series':<48} {'kind':<10} {'before':>14} {'after':>14} " \
             f"{'delta':>14}"
    print(header)
    print("-" * len(header))
    for key in sorted(set(idx_b) | set(idx_a)):
        fam, s_a = idx_a.get(key, idx_b.get(key))
        name = fam["name"] + label_str(fam, list(key[1]))
        kind = fam.get("kind", "?")
        s_b = idx_b.get(key, (None, None))[1]
        s_a = idx_a.get(key, (None, None))[1]
        if kind == "counter":
            vb = s_b.get("value", 0) if s_b else 0
            va = s_a.get("value", 0) if s_a else 0
            if va == vb and not args.all:
                continue
            print(f"{name:<48} {kind:<10} {fmt(vb):>14} {fmt(va):>14} "
                  f"{fmt(va - vb):>14}")
        elif kind == "histogram":
            cb = s_b.get("count", 0) if s_b else 0
            ca = s_a.get("count", 0) if s_a else 0
            if ca == cb and not args.all:
                continue
            sb = s_b.get("sum", 0) if s_b else 0
            sa = s_a.get("sum", 0) if s_a else 0
            print(f"{name + ' (count)':<48} {kind:<10} {fmt(cb):>14} "
                  f"{fmt(ca):>14} {fmt(ca - cb):>14}")
            print(f"{name + ' (sum)':<48} {'':<10} {fmt(sb):>14} "
                  f"{fmt(sa):>14} {fmt(sa - sb):>14}")
        else:  # gauges: last-observed values, a delta has no meaning
            vb = s_b.get("value") if s_b else None
            va = s_a.get("value") if s_a else None
            if va == vb and not args.all:
                continue
            print(f"{name:<48} {kind:<10} {fmt(vb):>14} {fmt(va):>14} "
                  f"{'-':>14}")
    return 0


# --- OpenMetrics lint ----------------------------------------------------

METRIC_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
LABEL_RE = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\\n]|\\\\|\\"|\\n)*)"')
KNOWN_TYPES = ("counter", "gauge", "histogram", "summary", "info",
               "stateset", "gaugehistogram", "unknown")
SAMPLE_SUFFIXES = ("_total", "_bucket", "_sum", "_count", "_created")


def parse_sample(body):
    """Split `name{labels} value` / `name value` into
    (name, [(k, v)...], value_text) or None on syntax error."""
    m = METRIC_NAME_RE.match(body)
    if not m:
        return None
    name, rest = m.group(), body[m.end():]
    labels = []
    if rest.startswith("{"):
        pos = 1
        while pos < len(rest) and rest[pos] != "}":
            lm = LABEL_RE.match(rest, pos)
            if not lm:
                return None
            labels.append((lm.group(1), lm.group(2)))
            pos = lm.end()
            if pos < len(rest) and rest[pos] == ",":
                pos += 1
        if pos >= len(rest) or rest[pos] != "}":
            return None
        rest = rest[pos + 1:]
    if not rest.startswith(" "):
        return None
    value = rest[1:].strip()
    return name, labels, value


def lint_text(text, path="<input>"):
    """Check one OpenMetrics exposition. Returns a list of
    `path:line: message` findings (empty = clean)."""
    findings = []
    lines = text.splitlines()

    def bad(lineno, msg):
        findings.append(f"{path}:{lineno}: {msg}")

    if not text:
        return [f"{path}:1: empty exposition (no # EOF)"]
    if not text.endswith("\n"):
        bad(len(lines), "exposition must end with a newline")
    if not lines or lines[-1] != "# EOF":
        bad(len(lines) or 1, "last line must be exactly '# EOF'")

    types = {}       # family name -> declared type
    units = {}       # family name -> declared unit
    seen_samples = set()
    # (family, frozenset(labels-minus-le)) -> list of (le, value, lineno)
    hist_buckets = {}
    hist_scalar = {}  # (family, labels, "sum"|"count") -> value

    def family_of(name):
        """Resolve a sample name to its declared family, honoring the
        structured suffixes."""
        if name in types:
            return name, ""
        for suffix in SAMPLE_SUFFIXES:
            if name.endswith(suffix) and name[:-len(suffix)] in types:
                return name[:-len(suffix)], suffix
        return None, ""

    for lineno, line in enumerate(lines, 1):
        if line == "# EOF":
            if lineno != len(lines):
                bad(lineno, "'# EOF' before the end of the exposition")
            continue
        if line.startswith("#"):
            parts = line.split(" ", 3)
            if len(parts) < 3 or parts[0] != "#" or \
                    parts[1] not in ("TYPE", "UNIT", "HELP"):
                bad(lineno, f"unparseable metadata line: {line!r}")
                continue
            keyword, name = parts[1], parts[2]
            if keyword == "TYPE":
                mtype = parts[3] if len(parts) > 3 else ""
                if mtype not in KNOWN_TYPES:
                    bad(lineno, f"unknown metric type {mtype!r} for {name}")
                if name in types:
                    bad(lineno, f"duplicate # TYPE for {name}")
                types[name] = mtype
            elif keyword == "UNIT":
                unit = parts[3] if len(parts) > 3 else ""
                if name not in types:
                    bad(lineno, f"# UNIT for {name} before its # TYPE")
                if unit and not name.endswith("_" + unit):
                    bad(lineno, f"metric {name} should end with its unit "
                                f"suffix _{unit}")
                units[name] = unit
            else:  # HELP
                if name not in types:
                    bad(lineno, f"# HELP for {name} before its # TYPE")
            continue
        if not line.strip():
            bad(lineno, "blank line (not allowed in OpenMetrics)")
            continue

        parsed = parse_sample(line)
        if parsed is None:
            bad(lineno, f"unparseable sample line: {line!r}")
            continue
        name, labels, value_text = parsed
        try:
            value = float(value_text.split(" ")[0])  # optional timestamp
        except ValueError:
            bad(lineno, f"sample value {value_text!r} is not a number")
            continue

        family, suffix = family_of(name)
        if family is None:
            bad(lineno, f"sample {name} has no preceding # TYPE")
            continue
        mtype = types[family]
        if mtype == "counter":
            if suffix == "_total":
                if value < 0:
                    bad(lineno, f"counter {name} is negative")
            elif suffix != "_created":
                bad(lineno, f"counter sample must be {family}_total, "
                            f"got {name}")
        elif mtype == "gauge":
            if suffix:
                bad(lineno, f"gauge sample must be bare {family}, "
                            f"got {name}")
        elif mtype == "histogram":
            bare = tuple(sorted((k, v) for k, v in labels if k != "le"))
            if suffix == "_bucket":
                le = dict(labels).get("le")
                if le is None:
                    bad(lineno, f"{name} bucket lacks the le label")
                    continue
                le_num = float("inf") if le == "+Inf" else None
                if le_num is None:
                    try:
                        le_num = float(le)
                    except ValueError:
                        bad(lineno, f"{name} has unparseable le={le!r}")
                        continue
                hist_buckets.setdefault((family, bare), []).append(
                    (le_num, value, lineno))
            elif suffix in ("_sum", "_count"):
                if value < 0:
                    bad(lineno, f"{name} is negative")
                hist_scalar[(family, bare, suffix[1:])] = value
            else:
                bad(lineno, f"histogram sample must be {family}_bucket/"
                            f"_sum/_count, got {name}")
        key = (name, tuple(sorted(labels)))
        if key in seen_samples:
            bad(lineno, f"duplicate sample for {name}"
                        f"{dict(labels) if labels else ''}")
        seen_samples.add(key)

    for (family, bare), buckets in sorted(hist_buckets.items()):
        where = buckets[-1][2]
        les = [le for le, _, _ in buckets]
        if les != sorted(les):
            bad(where, f"{family} buckets not in increasing le order")
        values = [v for _, v, _ in buckets]
        if any(b > a for b, a in zip(values, values[1:])):
            bad(where, f"{family} bucket values not cumulative "
                       f"(must be non-decreasing)")
        if not les or les[-1] != float("inf"):
            bad(where, f"{family} lacks the mandatory le=\"+Inf\" bucket")
        else:
            count = hist_scalar.get((family, bare, "count"))
            if count is None:
                bad(where, f"{family} lacks a _count sample")
            elif values[-1] != count:
                bad(where, f"{family} +Inf bucket ({values[-1]:g}) != "
                           f"_count ({count:g})")
        if (family, bare, "sum") not in hist_scalar:
            bad(where, f"{family} lacks a _sum sample")
    return findings


def cmd_lint(args):
    try:
        with open(args.exposition, "r", encoding="utf-8") as f:
            text = f.read()
    except OSError as e:
        raise SystemExit(f"error: cannot read {args.exposition}: {e}")
    findings = lint_text(text, args.exposition)
    for finding in findings:
        print(finding)
    if findings:
        print(f"{args.exposition}: {len(findings)} finding(s)")
        return 1
    print(f"{args.exposition}: OpenMetrics lint clean")
    return 0


def main(argv=None):
    p = argparse.ArgumentParser(
        description="read and lint mcgp metrics snapshots")
    sub = p.add_subparsers(dest="cmd", required=True)

    p_top = sub.add_parser("top", help="histogram series ranked by sum")
    p_top.add_argument("snapshot", help="metrics snapshot JSON")
    p_top.add_argument("--n", type=int, default=10,
                       help="rows to show (default 10)")
    p_top.set_defaults(fn=cmd_top)

    p_hist = sub.add_parser("hist", help="bucket table of one histogram")
    p_hist.add_argument("snapshot")
    p_hist.add_argument("family", help="histogram family name "
                                       "(e.g. mcgp_run_ns)")
    p_hist.add_argument("--labels", default=None,
                        help="comma-separated label values to select one "
                             "series (default: all series of the family)")
    p_hist.set_defaults(fn=cmd_hist)

    p_df = sub.add_parser("diff", help="A/B compare two snapshots")
    p_df.add_argument("before")
    p_df.add_argument("after")
    p_df.add_argument("--family", default=None,
                      help="restrict to one family (default: all)")
    p_df.add_argument("--all", action="store_true",
                      help="also show unchanged series")
    p_df.set_defaults(fn=cmd_diff)

    p_lint = sub.add_parser("lint", help="check an OpenMetrics exposition")
    p_lint.add_argument("exposition", help="OpenMetrics text file "
                                           "(mcpart --metrics-out=*.prom)")
    p_lint.set_defaults(fn=cmd_lint)

    args = p.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
