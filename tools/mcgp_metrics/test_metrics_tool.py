#!/usr/bin/env python3
"""Self-test for the metrics reader and OpenMetrics lint (metrics.py).

Drives the tool in-process over the committed fixtures:

1. `top` on snapshot_b ranks the kway run-time histogram (9ms summed)
   above the rb one and derives conservative p50/p99 upper bounds from
   the log2 buckets (p50 = 2^21 for 2+2+1 observations in buckets
   20/21/22).
2. `hist` renders the bucket table of one series (cumulative counts,
   100.0% share at the last bucket) and errors precisely on an unknown
   family.
3. `diff a b` reports counter deltas (kway +3, the new rb series +1),
   histogram count/sum deltas, and gauges before -> after; unchanged
   series stay hidden without --all.
4. `lint` passes the good exposition and flags exactly the six injected
   violations in the bad one (counter without _total, non-cumulative
   buckets, +Inf != _count, sample without # TYPE, unit-suffix
   mismatch, missing # EOF).
5. A stall postmortem embedding a snapshot under "metrics" loads
   transparently; non-snapshot JSON and future schema versions fail
   loudly, naming the file.

Run directly (`python3 tools/mcgp_metrics/test_metrics_tool.py`) or via
ctest (`mcgp_metrics_selftest`). Exits nonzero on any mismatch.
"""

from __future__ import annotations

import contextlib
import io
import json
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import metrics  # noqa: E402

FIXTURES = Path(__file__).resolve().parent / "fixtures"
SNAP_A = str(FIXTURES / "snapshot_a.json")
SNAP_B = str(FIXTURES / "snapshot_b.json")
GOOD = str(FIXTURES / "good.prom")
BAD = str(FIXTURES / "bad.prom")


def run_tool(argv):
    out = io.StringIO()
    try:
        with contextlib.redirect_stdout(out):
            code = metrics.main(argv)
    except SystemExit as e:  # load_snapshot raises SystemExit on bad input
        return 2, out.getvalue() + str(e)
    return code, out.getvalue()


def main():
    errors = []

    # 1. top: ranking by sum, quantiles from the log2 buckets.
    code, out = run_tool(["top", SNAP_B])
    if code != 0:
        errors.append(f"top: expected exit 0, got {code}\n{out}")
    rows = [ln for ln in out.splitlines()[3:] if ln.strip()]
    if not rows or not rows[0].startswith('mcgp_run_ns{alg="kway"}'):
        errors.append(f"top: kway run histogram (9ms summed) must rank "
                      f"first\n{out}")
    elif "9,000,000" not in rows[0] or "2.097e+06" not in rows[0]:
        # p50: 5 observations in buckets 20/21/22 -> the cumulative count
        # reaches 2.5 in bucket 21, upper bound 2^21 = 2097152.
        errors.append(f"top: expected sum 9,000,000 and p50 2.097e+06 "
                      f"for the kway series, got: {rows[0]!r}")
    if len(rows) != 2 or not rows[1].startswith('mcgp_run_ns{alg="rb"}'):
        errors.append(f"top: expected the rb series ranked second\n{out}")

    # 2. hist: bucket table plus precise error for unknown families.
    code, out = run_tool(["hist", SNAP_B, "mcgp_run_ns",
                          "--labels", "kway"])
    if code != 0:
        errors.append(f"hist: expected exit 0, got {code}\n{out}")
    body = [ln.split() for ln in out.splitlines()[3:] if ln.strip()]
    if len(body) != 3 or [r[2] for r in body] != ["2", "4", "5"]:
        errors.append(f"hist: expected cumulative counts 2,4,5\n{out}")
    elif body[-1][0] != "4,194,304" or body[-1][-1] != "100.0%":
        errors.append(f"hist: last bucket should be le=4,194,304 at "
                      f"100.0% share, got {body[-1]}\n{out}")
    code, out = run_tool(["hist", SNAP_B, "no_such_family"])
    if code == 0 or "no histogram series" not in out:
        errors.append(f"hist unknown family: expected a loud error, "
                      f"got exit {code}\n{out}")

    # 3. diff: counter and histogram deltas, gauges before -> after.
    code, out = run_tool(["diff", SNAP_A, SNAP_B])
    if code != 0:
        errors.append(f"diff: expected exit 0, got {code}\n{out}")

    def row(prefix):
        return next((ln.split() for ln in out.splitlines()
                     if ln.startswith(prefix)), [])

    kway = row('mcgp_partitions{alg="kway"}')
    if not kway or kway[-1] != "3":
        errors.append(f"diff: kway partitions delta should be 3, "
                      f"got {kway}\n{out}")
    rb = row('mcgp_partitions{alg="rb"}')
    if not rb or rb[-3:] != ["0", "1", "1"]:
        errors.append(f"diff: the new rb series should delta from 0, "
                      f"got {rb}\n{out}")
    hist_count = row('mcgp_run_ns{alg="kway"} (count)')
    if not hist_count or hist_count[-1] != "3":
        errors.append(f"diff: run_ns count delta should be 3, "
                      f"got {hist_count}\n{out}")
    cut = row('mcgp_last_cut{alg="kway"}')
    if not cut or cut[-3:] != ["120", "95", "-"]:
        errors.append(f"diff: gauge must show 120 -> 95 with no delta, "
                      f"got {cut}\n{out}")

    # 4. lint: clean fixture passes, bad fixture flags each violation.
    code, out = run_tool(["lint", GOOD])
    if code != 0 or "lint clean" not in out:
        errors.append(f"lint good: expected clean exit 0, got {code}\n{out}")
    code, out = run_tool(["lint", BAD])
    if code != 1:
        errors.append(f"lint bad: expected exit 1, got {code}\n{out}")
    findings = [ln for ln in out.splitlines() if ":" in ln
                and not ln.endswith("finding(s)")]
    if len(findings) != 6:
        errors.append(f"lint bad: expected exactly 6 findings, "
                      f"got {len(findings)}:\n{out}")
    for needle in ("_total", "not cumulative", "+Inf", "# TYPE",
                   "unit", "# EOF"):
        if not any(needle in f for f in findings):
            errors.append(f"lint bad: no finding mentions {needle!r}\n{out}")

    # 5. postmortem wrapper loads; bad input fails loudly.
    with tempfile.NamedTemporaryFile("w", suffix=".json",
                                     delete=False) as tmp:
        json.dump({"schema_version": 1, "error": "stall",
                   "metrics": json.loads(Path(SNAP_B).read_text())}, tmp)
        postmortem = tmp.name
    code, out = run_tool(["top", postmortem])
    if code != 0 or "mcgp_run_ns" not in out:
        errors.append(f"postmortem: embedded snapshot must load, "
                      f"got exit {code}\n{out}")
    with tempfile.NamedTemporaryFile("w", suffix=".json",
                                     delete=False) as tmp:
        json.dump({"schema_version": 1, "edge_cut": 7}, tmp)
        not_snap = tmp.name
    code, out = run_tool(["top", not_snap])
    if code == 0 or "not a metrics snapshot" not in out:
        errors.append(f"non-snapshot input: expected a loud failure\n{out}")
    with tempfile.NamedTemporaryFile("w", suffix=".json",
                                     delete=False) as tmp:
        json.dump({"schema_version": 999, "kind": "mcgp_metrics",
                   "families": []}, tmp)
        future = tmp.name
    code, out = run_tool(["top", future])
    if code == 0 or "schema_version" not in out:
        errors.append(f"future schema: expected a loud failure\n{out}")

    if errors:
        for e in errors:
            print(f"FAIL: {e}", file=sys.stderr)
        return 1
    print("mcgp_metrics self-test: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
