// Documented false negatives of the token-level sum-arith rule: sum_t
// laundered through `auto` or hidden behind members/templates carries no
// `sum_t` token near the arithmetic, so declaration tracking cannot see
// it. Each LINT-MISS line asserts the linter stays SILENT there — if a
// future lint.py change starts reporting one, this fixture fails so the
// DELEGATED note in lint.py and the mcgp-tidy overlap get re-examined.
// The AST check mcgp-sum-arith (tools/mcgp_tidy/) flags every line below;
// see tools/mcgp_tidy/fixtures/src/sum_arith.cpp for the positive twins.
#include <cstdint>
#include <vector>

using sum_t = std::int64_t;

sum_t checked_add(sum_t a, sum_t b);

// Totals is defined in another header (not included here): its `cut`
// member is sum_t, but no `sum_t cut` declaration is visible in this
// file, so the per-file declaration tracker never learns the type.
struct Totals;

sum_t auto_laundered(sum_t a) {
  auto laundered = a;    // declaration tracking loses the type here
  return laundered + 1;  // LINT-MISS: sum-arith
}

void member_from_elsewhere(Totals* t);
void bump_cut(Totals* t) {
  t->cut += 2;  // LINT-MISS: sum-arith
  member_from_elsewhere(t);
}

// Parameter names deliberately avoid every identifier declared as sum_t
// in this file: declaration tracking is file-cumulative, so reusing
// `a`/`b` here would inherit their sum_t classification from above.
template <class T>
T generic_sum(T lhs, T rhs) {
  return lhs + rhs;  // LINT-MISS: sum-arith
}
template sum_t generic_sum<sum_t>(sum_t, sum_t);

sum_t value_type_hidden(const std::vector<sum_t>& xs) {
  sum_t total = 0;
  for (const auto& x : xs) {
    total = checked_add(total, x);  // disciplined: no finding either way
  }
  return total;
}

sum_t declared_here_is_seen(sum_t a, sum_t b) {
  return a + b;  // LINT-EXPECT: sum-arith
}
