// mcgp-lint fixture: unordered-iter.
//
// Iterating a hash container yields an unspecified order — any
// algorithmic decision derived from it breaks bit-reproducibility.
// Lookups (find / count / operator[] / end() comparisons) are fine.
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace mcgp {

int bad_range_for(const std::unordered_map<int, int>& index, int* out) {
  for (const auto& kv : index) {  // LINT-EXPECT: unordered-iter
    *out += kv.second;
  }
  return *out;
}

int bad_explicit_begin(std::unordered_set<int>& seen) {
  int n = 0;
  for (auto it = seen.begin(); it != seen.end(); ++it) {  // LINT-EXPECT: unordered-iter
    ++n;
  }
  return n;
}

// --- Negative cases: none of these may be flagged. ---

int ok_lookup(const std::unordered_map<int, int>& index, int key) {
  const auto it = index.find(key);
  return it == index.end() ? -1 : it->second;
}

bool ok_membership(const std::unordered_set<int>& seen, int v) {
  return seen.count(v) > 0;
}

void ok_insert(std::unordered_set<int>& seen, int v) { seen.insert(v); }

// Iterating an *ordered* container is fine.
int ok_vector_iteration(const std::vector<int>& xs) {
  int s = 0;
  for (const int x : xs) s += x;
  return s;
}

}  // namespace mcgp
