// mcgp-lint fixture: rng-source.
//
// All randomness must flow through mcgp::Rng with an explicit seed so a
// whole partitioning run is reproducible from one 64-bit value. Ambient
// entropy (C rand, std::random_device, raw engines, wall clocks) is
// banned outside src/support/random.cpp.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace mcgp {

unsigned bad_engine() {
  std::random_device rd;                   // LINT-EXPECT: rng-source
  std::mt19937 gen(42);                    // LINT-EXPECT: rng-source
  return gen() + rd();
}

int bad_c_rand() {
  return std::rand();  // LINT-EXPECT: rng-source
}

void bad_c_seed() {
  std::srand(42);  // LINT-EXPECT: rng-source
}

long bad_wall_clock_seed() {
  return std::chrono::system_clock::now().time_since_epoch().count();  // LINT-EXPECT: rng-source
}

long bad_time_seed() {
  return time(nullptr);  // LINT-EXPECT: rng-source
}

// --- Negative cases: none of these may be flagged. ---

// steady_clock is allowed: it is used for *timing*, never for seeding,
// and is monotonic (timings do not feed back into algorithm decisions).
double ok_steady_timer() {
  const auto t0 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Member functions named like the banned C functions are fine.
struct Source {
  int rand() { return 4; }
};
int ok_member_rand(Source& s) { return s.rand(); }

}  // namespace mcgp
