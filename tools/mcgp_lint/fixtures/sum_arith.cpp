// mcgp-lint fixture: sum-arith.
//
// Each tagged line must produce exactly one sum-arith finding; untagged
// lines must produce none. The file is not
// compiled — it only needs to tokenize like real project code.
#include <vector>

namespace mcgp {

using sum_t = long long;
using wgt_t = int;

sum_t checked_add(sum_t a, sum_t b);
sum_t checked_sub(sum_t a, sum_t b);

sum_t bad_accumulate(const std::vector<wgt_t>& w) {
  sum_t total = 0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    total += w[i];  // LINT-EXPECT: sum-arith
  }
  return total;
}

sum_t bad_binary_add(sum_t a, sum_t b) {
  return a + b;  // LINT-EXPECT: sum-arith
}

sum_t bad_binary_sub(sum_t cut, sum_t delta) {
  return cut - delta;  // LINT-EXPECT: sum-arith
}

sum_t bad_binary_mul(sum_t a) {
  return a * 2;  // LINT-EXPECT: sum-arith
}

void bad_increment(sum_t n) {
  ++n;  // LINT-EXPECT: sum-arith
  n--;  // LINT-EXPECT: sum-arith
}

void bad_vector_element(std::vector<sum_t>& pwgts, wgt_t w) {
  pwgts[0] += w;  // LINT-EXPECT: sum-arith
  pwgts[1] -= w;  // LINT-EXPECT: sum-arith
}

void bad_array_element(wgt_t w) {
  sum_t fresh[4] = {};
  fresh[2] += w;  // LINT-EXPECT: sum-arith
}

// --- Negative cases: none of these may be flagged. ---

sum_t ok_checked(sum_t a, sum_t b) { return checked_add(a, b); }

sum_t ok_checked_element(std::vector<sum_t>& pwgts, wgt_t w) {
  pwgts[0] = checked_add(pwgts[0], w);
  return pwgts[0];
}

// Mixed floating arithmetic promotes to double: no int64 overflow.
double ok_float_product(sum_t a, double inv) {
  return static_cast<double>(a) * inv;
}

double ok_float_operand(sum_t a, double f) { return a * f; }

// Arithmetic on narrower types is outside this rule's scope.
wgt_t ok_wgt_arith(wgt_t wa, wgt_t wb) { return wa + wb; }

// Comparison and division are allowed on sum_t.
bool ok_compare(sum_t a, sum_t b) { return a < b; }
sum_t ok_halve(sum_t cut) { return cut / 2; }

}  // namespace mcgp
