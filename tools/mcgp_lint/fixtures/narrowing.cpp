// mcgp-lint fixture: narrowing.
//
// sum_t -> idx_t/wgt_t narrowing must go through checked_narrow<>.
#include <vector>

namespace mcgp {

using sum_t = long long;
using wgt_t = int;
using idx_t = int;

template <typename To>
To checked_narrow(sum_t v);
idx_t helper(sum_t v);

idx_t bad_cast(sum_t total) {
  return static_cast<idx_t>(total);  // LINT-EXPECT: narrowing
}

wgt_t bad_cast_element(const std::vector<sum_t>& pwgts) {
  return static_cast<wgt_t>(pwgts[2]);  // LINT-EXPECT: narrowing
}

idx_t bad_initializer(sum_t total) {
  idx_t n = total;  // LINT-EXPECT: narrowing
  return n;
}

wgt_t bad_initializer_element(const std::vector<sum_t>& pwgts) {
  wgt_t w = pwgts[0];  // LINT-EXPECT: narrowing
  return w;
}

// --- Negative cases: none of these may be flagged. ---

wgt_t ok_checked(sum_t total) { return checked_narrow<wgt_t>(total); }

idx_t ok_checked_init(sum_t total) {
  idx_t n = checked_narrow<idx_t>(total);
  return n;
}

// A sum_t var inside a call's argument list says nothing about the type
// of the initializer (out-params, accessors returning narrow types).
idx_t ok_call_argument(sum_t total) {
  idx_t n = helper(total);
  return n;
}

// Widening and same-width conversions are fine.
sum_t ok_widen(wgt_t w) {
  sum_t s = w;
  return s;
}

// Casting a non-sum expression to idx_t is fine.
idx_t ok_size_cast(const std::vector<idx_t>& xs) {
  return static_cast<idx_t>(xs.size());
}

}  // namespace mcgp
