#!/usr/bin/env python3
"""Self-test for mcgp-lint.

Two parts:

1. Fixture round-trip: every fixture under fixtures/ is linted with
   --all-rules semantics, and the set of (line, rule) findings must equal
   the set of `// LINT-EXPECT: <rule>` markers in the file — the linter
   must fire on every tagged line and stay silent on every untagged one.
   Every rule must be exercised by at least one marker.

   A `// LINT-MISS: <rule>` marker documents a known, deliberate false
   negative (a case delegated to the AST-accurate mcgp-tidy plugin — see
   the "Division of labor" note in lint.py): the linter must stay SILENT
   on that line. If a lint.py change starts reporting a LINT-MISS line,
   this test fails so the delegation documentation gets re-examined.

2. Scope checks: the path-based rule scoping (check.hpp exemption for
   sum-arith/narrowing, src/core/ restriction for unordered-iter, the
   random.cpp exemption for rng-source) is verified on synthetic paths.

Run directly (`python3 tools/mcgp_lint/test_lint.py`) or via ctest
(`mcgp_lint_fixtures`). Exits nonzero on any mismatch.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import lint  # noqa: E402

FIXTURES = Path(__file__).resolve().parent / "fixtures"

_EXPECT_RE = re.compile(r"//\s*LINT-EXPECT:\s*([a-z0-9-]+(?:\s*,\s*[a-z0-9-]+)*)")
_MISS_RE = re.compile(r"//\s*LINT-MISS:\s*([a-z0-9-]+(?:\s*,\s*[a-z0-9-]+)*)")


def parse_expectations(path: Path) -> tuple:
    expected = set()
    misses = set()
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        m = _EXPECT_RE.search(line)
        if m:
            for rule in re.split(r"\s*,\s*", m.group(1)):
                expected.add((lineno, rule))
        m = _MISS_RE.search(line)
        if m:
            for rule in re.split(r"\s*,\s*", m.group(1)):
                misses.add((lineno, rule))
    return expected, misses


def check_fixtures() -> list:
    errors = []
    fixture_files = sorted(FIXTURES.glob("*.cpp"))
    if not fixture_files:
        return [f"no fixtures found under {FIXTURES}"]
    exercised = set()
    for path in fixture_files:
        expected, documented_misses = parse_expectations(path)
        if not expected:
            errors.append(f"{path.name}: fixture has no LINT-EXPECT markers")
        overlap = expected & documented_misses
        for line, rule in sorted(overlap):
            errors.append(
                f"{path.name}:{line}: `{rule}` marked both LINT-EXPECT and "
                "LINT-MISS — pick one")
        findings = lint.lint_file(path, all_rules=True)
        actual = {(f.line, f.rule) for f in findings}
        for miss in sorted(expected - actual):
            errors.append(
                f"{path.name}:{miss[0]}: expected a `{miss[1]}` finding, "
                "linter was silent")
        for extra in sorted(actual - expected):
            if extra in documented_misses:
                errors.append(
                    f"{path.name}:{extra[0]}: documented false negative "
                    f"`{extra[1]}` now fires — the case is no longer "
                    "delegated to mcgp-tidy; update the DELEGATED note in "
                    "lint.py and retag this line LINT-EXPECT")
            else:
                errors.append(
                    f"{path.name}:{extra[0]}: unexpected `{extra[1]}` "
                    "finding (line has no LINT-EXPECT marker)")
        exercised |= {rule for (_, rule) in expected}
    for rule in lint._RULES:
        if rule not in exercised:
            errors.append(f"rule `{rule}` has no fixture coverage")
    return errors


SUM_SNIPPET = "sum_t f(sum_t a, sum_t b) { return a + b; }\n"
ITER_SNIPPET = (
    "#include <unordered_map>\n"
    "int f(const std::unordered_map<int, int>& m, int* o) {\n"
    "  for (const auto& kv : m) *o += kv.second;\n"
    "  return *o;\n"
    "}\n")
RNG_SNIPPET = "int f() { return std::rand(); }\n"


def check_scoping() -> list:
    errors = []

    def expect(path, text, rule, should_fire):
        findings = [f for f in lint.lint_text(path, text) if f.rule == rule]
        if should_fire and not findings:
            errors.append(f"scope: `{rule}` should fire for {path}")
        if not should_fire and findings:
            errors.append(f"scope: `{rule}` must not fire for {path}")

    # check.hpp is the one home of raw sum_t arithmetic.
    expect("src/support/check.hpp", SUM_SNIPPET, "sum-arith", False)
    expect("src/core/foo.cpp", SUM_SNIPPET, "sum-arith", True)
    expect("src/graph/foo.cpp", SUM_SNIPPET, "sum-arith", True)

    # unordered-iter only polices src/core/.
    expect("src/core/foo.cpp", ITER_SNIPPET, "unordered-iter", True)
    expect("src/graph/foo.cpp", ITER_SNIPPET, "unordered-iter", False)
    expect("src/support/trace.cpp", ITER_SNIPPET, "unordered-iter", False)

    # random.cpp implements the sanctioned RNG; everything else is policed.
    expect("src/support/random.cpp", RNG_SNIPPET, "rng-source", False)
    expect("src/core/foo.cpp", RNG_SNIPPET, "rng-source", True)
    expect("src/gen/foo.cpp", RNG_SNIPPET, "rng-source", True)
    return errors


def main() -> int:
    errors = check_fixtures() + check_scoping()
    if errors:
        for e in errors:
            print(f"FAIL: {e}")
        print(f"test_lint: {len(errors)} failure(s)")
        return 1
    nfix = len(list(FIXTURES.glob('*.cpp')))
    print(f"test_lint: OK ({nfix} fixtures, {len(lint._RULES)} rules, "
          "scoping verified)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
