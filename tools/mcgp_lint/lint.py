#!/usr/bin/env python3
"""mcgp-lint: project-specific static checks for the mcgp codebase.

A dependency-free, token-level linter (stdlib only; the container has no
libclang, so this deliberately avoids it) that enforces the project's
type- and determinism-discipline rules:

  sum-arith       Raw arithmetic (+, -, *, +=, -=, *=, ++, --) on sum_t
                  lvalues. All 64-bit accumulation must go through
                  checked_add / checked_sub / checked_mul from
                  src/support/check.hpp so overflow is diagnosed, never
                  silent. (src/support/check.hpp itself is exempt: it is
                  the one place allowed to touch raw sum_t arithmetic,
                  via __builtin_*_overflow.)

  narrowing       sum_t -> idx_t/wgt_t narrowing, either through
                  static_cast or through a narrowing declaration
                  initializer. Must use checked_narrow<> from
                  src/support/check.hpp, which range-checks the value.

  unordered-iter  Iteration over std::unordered_map / std::unordered_set
                  inside src/core/. Hash-container iteration order is
                  unspecified and varies across standard libraries, so
                  any algorithmic decision derived from it breaks the
                  bit-reproducibility guarantee. Lookups are fine;
                  iteration is the hazard.

  rng-source      Nondeterministic randomness or wall-clock-seeded
                  entropy (std::rand, srand, std::random_device, raw
                  <random> engines, system_clock/high_resolution_clock)
                  outside src/support/random.cpp. All randomness must
                  flow through mcgp::Rng, seeded explicitly.

The checker works on a comment/string-stripped token stream with
per-file declaration tracking (sum_t scalars, std::vector<sum_t> /
std::array<sum_t, N> element accesses, floating-point operands). It is a
heuristic, not a compiler: it cannot see through auto, typedefs it does
not know, or cross-file aliasing. False negatives are possible by
design; the rules are tuned so that the shipped tree has zero findings
with zero suppressions (enforced by ctest `mcgp_lint_src`).

Division of labor with mcgp-tidy (tools/mcgp_tidy/, the clang-tidy
plugin): each rule here has an AST-accurate counterpart that closes the
type-visibility gaps on purpose left open below. The regex rules stay as
the seconds-fast, dependency-free first line (they run everywhere, the
plugin needs a clang toolchain); the plugin is the authority on anything
requiring type information. Specifically DELEGATED to mcgp-tidy, and
deliberately NOT reported here so the two tools never double-report:

  sum-arith       -> mcgp-sum-arith      sum_t reached through `auto`,
                     template parameters, container value_types, or
                     members declared in another file (see
                     fixtures/sum_arith_auto.cpp, LINT-MISS markers).
  narrowing       -> mcgp-narrowing      casts whose operand is sum_t
                     only behind sugar; implicit narrowing.
  unordered-iter  -> mcgp-unordered-iter containers reached through
                     `auto`, member typedefs, or aliases.
  rng-source      -> mcgp-rng-hygiene    engine aliases resolved to
                     canonical <random> templates.
  (no regex rule) -> mcgp-pointer-order  raw-pointer ordering cannot be
                     expressed at token level at all.

Usage:
  python3 tools/mcgp_lint/lint.py [--all-rules] PATH...
Exit status is 0 when no findings, 1 otherwise. --all-rules disables the
path scoping (used by the fixture tests).
"""

from __future__ import annotations

import argparse
import re
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Set, Tuple

# ---------------------------------------------------------------------------
# Tokenization
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
      (?P<id>[A-Za-z_]\w*)
    | (?P<num>\.?\d(?:['\w.]|[eEpP][+-])*)
    | (?P<op><<=|>>=|\.\.\.|\+\+|--|\+=|-=|\*=|/=|%=|&=|\|=|\^=|&&|\|\||==|!=|<=|>=|->|::|<<|>>|[-+*/%=<>!&|^~?:;,.()\[\]{}#])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    kind: str  # "id" | "num" | "op"
    text: str
    line: int


def strip_comments_and_strings(src: str) -> str:
    """Replace comments and string/char literal *contents* with spaces,
    preserving every newline so token line numbers stay exact."""
    out: List[str] = []
    i, n = 0, len(src)
    while i < n:
        c = src[i]
        nxt = src[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and src[i] != "\n":
                i += 1
        elif c == "/" and nxt == "*":
            i += 2
            while i + 1 < n and not (src[i] == "*" and src[i + 1] == "/"):
                if src[i] == "\n":
                    out.append("\n")
                i += 1
            i += 2
        elif c == '"':
            # String literal (raw strings are not used in this codebase).
            i += 1
            while i < n and src[i] != '"':
                if src[i] == "\\":
                    i += 1
                elif src[i] == "\n":
                    out.append("\n")
                i += 1
            i += 1
            out.append(" ")
        elif c == "'":
            # Digit separator (1'000) vs char literal: a separator is
            # always sandwiched between alphanumerics.
            prev = out[-1] if out else ""
            if prev.isalnum() and i + 1 < n and (src[i + 1].isalnum()):
                out.append(c)
                i += 1
            else:
                i += 1
                while i < n and src[i] != "'":
                    if src[i] == "\\":
                        i += 1
                    i += 1
                i += 1
                out.append(" ")
        else:
            out.append(c)
            i += 1
    return "".join(out)


def tokenize(src: str) -> List[Token]:
    clean = strip_comments_and_strings(src)
    toks: List[Token] = []
    line = 1
    pos = 0
    for m in _TOKEN_RE.finditer(clean):
        line += clean.count("\n", pos, m.start())
        pos = m.start()
        kind = m.lastgroup or "op"
        toks.append(Token(kind, m.group(), line))
    return toks


# ---------------------------------------------------------------------------
# Declaration tracking
# ---------------------------------------------------------------------------

_FLOAT_TYPES = {"double", "float", "real_t"}
_SUM_CONTAINERS = {"vector", "array"}
_UNORDERED = {"unordered_map", "unordered_set", "unordered_multimap",
              "unordered_multiset"}


@dataclass
class Decls:
    sum_vars: Set[str]
    sum_vecs: Set[str]      # subscript / front / back yields a sum_t lvalue
    float_vars: Set[str]
    float_vecs: Set[str]
    unordered: Set[str]


def _match_forward(toks: Sequence[Token], i: int, open_: str,
                   close: str) -> int:
    """Index of the token closing the bracket opened at toks[i]."""
    depth = 0
    for j in range(i, len(toks)):
        t = toks[j].text
        if t == open_:
            depth += 1
        elif t == close:
            depth -= 1
            if depth == 0:
                return j
    return len(toks) - 1


def _close_angle(toks: Sequence[Token], i: int) -> int:
    """Index of the `>` matching `<` at toks[i] (no shift operators appear
    inside the template argument lists we scan)."""
    depth = 0
    for j in range(i, len(toks)):
        t = toks[j].text
        if t == "<":
            depth += 1
        elif t in (">", ">>"):
            depth -= 2 if t == ">>" else 1
            if depth <= 0:
                return j
    return len(toks) - 1


def _declared_names(toks: Sequence[Token], i: int) -> Tuple[List[str], int]:
    """Collect declarator names starting after a type that ends at toks[i-1].
    Skips cv/ref/pointer tokens; follows `name = init, name2 = init2`
    chains at bracket depth 0. Returns (names, resume_index)."""
    names: List[str] = []
    j = i
    while j < len(toks) and toks[j].text in ("const", "&", "*", "&&"):
        j += 1
    if j >= len(toks) or toks[j].kind != "id":
        return names, j
    names.append(toks[j].text)
    j += 1
    # `sum_t name(` is a function declarator: keep the name (a call to it
    # yields sum_t) but stop here so the scanner descends into the
    # parameter list and tracks the parameters as declarations too.
    if j < len(toks) and toks[j].text == "(":
        return names, j
    # Walk to ; ) or a depth-0 comma; a comma followed by `name [=,;)]`
    # continues the declarator list (covers `sum_t a = 0, b = 0;`). A
    # depth-0 `{` ends the walk: it is a function body (the "declarator"
    # was a function name) or a brace initializer — either way the names
    # are already collected and the tokens inside must be scanned normally.
    depth = 0
    while j < len(toks):
        t = toks[j].text
        if t == "{" and depth == 0:
            break
        if t in "([{":
            depth += 1
        elif t in ")]}":
            if depth == 0:
                break
            depth -= 1
        elif depth == 0 and t == ";":
            break
        elif depth == 0 and t == ",":
            if (j + 1 < len(toks) and toks[j + 1].kind == "id"
                    and j + 2 < len(toks)
                    and toks[j + 2].text in ("=", ",", ";", ")")):
                names.append(toks[j + 1].text)
                j += 2
                continue
            break
        j += 1
    return names, j


def collect_decls(toks: Sequence[Token]) -> Decls:
    d = Decls(set(), set(), set(), set(), set())
    i = 0
    n = len(toks)
    while i < n:
        t = toks[i]
        if t.kind != "id":
            i += 1
            continue
        # Scalar declarations:  [const] sum_t [const|&|*] name ...
        if t.text == "sum_t" or t.text in _FLOAT_TYPES:
            # Not a template argument (vector<sum_t>): that is preceded
            # by `<`. A `(` or `,` before the type is a function
            # parameter, which declares a name like any other.
            prev = toks[i - 1].text if i > 0 else ""
            if prev not in ("<", "<<"):
                names, j = _declared_names(toks, i + 1)
                target = d.sum_vars if t.text == "sum_t" else d.float_vars
                # Casts (`static_cast<...>`, `(sum_t)x`, `sum_t(x)`)
                # yield no declarator name and are skipped.
                for name in names:
                    target.add(name)
                if names:
                    i = j
                    continue
        # Container declarations: [std::]vector<sum_t> name,
        # [std::]array<sum_t, N> name, unordered_map<...> name.
        if t.text in _SUM_CONTAINERS or t.text in _UNORDERED:
            j = i + 1
            if j < n and toks[j].text == "<":
                close = _close_angle(toks, j)
                inner = [x.text for x in toks[j + 1:close]]
                names, k = _declared_names(toks, close + 1)
                if t.text in _UNORDERED:
                    for name in names:
                        d.unordered.add(name)
                elif inner[:1] == ["sum_t"]:
                    for name in names:
                        d.sum_vecs.add(name)
                elif inner[:1] and inner[0] in ("double", "float", "real_t"):
                    for name in names:
                        d.float_vecs.add(name)
                if names:
                    i = k
                    continue
        i += 1
    return d


# ---------------------------------------------------------------------------
# Operand classification
# ---------------------------------------------------------------------------

def _match_back(toks: Sequence[Token], i: int, close: str, open_: str) -> int:
    depth = 0
    for j in range(i, -1, -1):
        t = toks[j].text
        if t == close:
            depth += 1
        elif t == open_:
            depth -= 1
            if depth == 0:
                return j
    return 0


def _is_float_literal(text: str) -> bool:
    if text.startswith(("0x", "0X")):
        return "p" in text or "P" in text
    return ("." in text or "e" in text or "E" in text
            or text.rstrip("lL").endswith(("f", "F")))


class Classifier:
    def __init__(self, toks: Sequence[Token], decls: Decls):
        self.toks = toks
        self.d = decls

    def _subscript_base(self, i: int) -> Optional[str]:
        """toks[i] == `]`: name of the subscripted variable, if simple."""
        open_i = _match_back(self.toks, i, "]", "[")
        if open_i > 0 and self.toks[open_i - 1].kind == "id":
            return self.toks[open_i - 1].text
        return None

    def sum_ending_at(self, i: int) -> bool:
        t = self.toks[i]
        if t.kind == "id":
            return t.text in self.d.sum_vars
        if t.text == "]":
            # A subscript on a tracked sum container — or on a tracked
            # scalar name, which can only compile if the declaration was
            # actually a C array of sum_t (e.g. `sum_t fresh[2 * N]`).
            base = self._subscript_base(i)
            return base is not None and (base in self.d.sum_vecs
                                         or base in self.d.sum_vars)
        return False

    def sum_starting_at(self, i: int) -> bool:
        t = self.toks[i]
        if t.kind != "id":
            return False
        if t.text in self.d.sum_vars:
            return True
        nxt = self.toks[i + 1].text if i + 1 < len(self.toks) else ""
        return t.text in self.d.sum_vecs and nxt == "["

    def float_ending_at(self, i: int) -> bool:
        t = self.toks[i]
        if t.kind == "num":
            return _is_float_literal(t.text)
        if t.kind == "id":
            return t.text in self.d.float_vars
        if t.text == ")":
            open_i = _match_back(self.toks, i, ")", "(")
            # static_cast<double>( ... )  /  double( ... )
            k = open_i - 1
            if k >= 0 and self.toks[k].text in (">", ">>"):
                lt = _match_back(self.toks, k, ">", "<")
                inner = [x.text for x in self.toks[lt + 1:k]]
                head = self.toks[lt - 1].text if lt > 0 else ""
                return (head == "static_cast"
                        and bool(inner)
                        and inner[0] in ("double", "float", "real_t"))
            if k >= 0 and self.toks[k].text in ("double", "float", "real_t"):
                return True
        if t.text == "]":
            base = self._subscript_base(i)
            return base is not None and (base in self.d.float_vecs
                                         or base in self.d.float_vars)
        return False

    def float_starting_at(self, i: int) -> bool:
        t = self.toks[i]
        if t.kind == "num":
            return _is_float_literal(t.text)
        if t.kind == "id":
            if t.text in self.d.float_vars:
                return True
            if t.text in ("static_cast",) and i + 2 < len(self.toks):
                if (self.toks[i + 1].text == "<"
                        and self.toks[i + 2].text in ("double", "float",
                                                      "real_t")):
                    return True
            nxt = self.toks[i + 1].text if i + 1 < len(self.toks) else ""
            if t.text in self.d.float_vecs and nxt == "[":
                return True
            if t.text in ("double", "float", "real_t") and nxt == "(":
                return True
        return False


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Finding:
    path: str
    line: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


_NARROW_TARGETS = {"idx_t", "wgt_t"}

_BANNED_RNG_IDS = {
    "random_device": "std::random_device is nondeterministic entropy",
    "mt19937": "raw <random> engine",
    "mt19937_64": "raw <random> engine",
    "minstd_rand": "raw <random> engine",
    "minstd_rand0": "raw <random> engine",
    "default_random_engine": "raw <random> engine",
    "knuth_b": "raw <random> engine",
    "ranlux24": "raw <random> engine",
    "ranlux48": "raw <random> engine",
    "srand": "global C RNG seeding",
    "system_clock": "wall clock is nondeterministic across runs",
    "high_resolution_clock": "unspecified clock (may alias system_clock)",
}


_TYPE_NAMES = {
    "idx_t", "wgt_t", "sum_t", "real_t", "size_t", "int", "char", "bool",
    "double", "float", "long", "short", "unsigned", "signed", "auto",
    "void", "int32_t", "int64_t", "uint32_t", "uint64_t", "uint8_t",
    "Graph", "Workspace", "Rng", "InvariantAuditor", "TraceRecorder",
}


def _binary_context(toks: Sequence[Token], i: int) -> bool:
    """Whether the +, -, * at toks[i] is a binary arithmetic operator (as
    opposed to unary sign, dereference, or pointer declaration)."""
    if i == 0:
        return False
    p = toks[i - 1]
    # `wgt_t* w` / `Graph& g`: a type name directly before * is a
    # declarator, not multiplication.
    if toks[i].text == "*" and p.text in _TYPE_NAMES:
        return False
    return p.kind in ("id", "num") or p.text in (")", "]")


def rule_sum_arith(path: str, toks: Sequence[Token], decls: Decls,
                   cls: Classifier) -> List[Finding]:
    out: List[Finding] = []

    def flag(line: int, what: str) -> None:
        out.append(Finding(
            path, line, "sum-arith",
            f"raw {what} on a sum_t lvalue; use checked_add/checked_sub/"
            "checked_mul from support/check.hpp"))

    n = len(toks)
    for i, t in enumerate(toks):
        if t.text in ("+=", "-=", "*="):
            if i > 0 and cls.sum_ending_at(i - 1):
                # float RHS still accumulates into an integer; always flag.
                flag(t.line, f"`{t.text}`")
        elif t.text in ("++", "--"):
            if i > 0 and cls.sum_ending_at(i - 1):
                flag(t.line, f"`{t.text}`")
            elif i + 1 < n and cls.sum_starting_at(i + 1):
                flag(t.line, f"`{t.text}`")
        elif t.text in ("+", "-", "*") and _binary_context(toks, i):
            if i + 1 >= n:
                continue
            lhs_sum = cls.sum_ending_at(i - 1)
            rhs_sum = cls.sum_starting_at(i + 1)
            if not (lhs_sum or rhs_sum):
                continue
            # Mixed float arithmetic promotes to double: no int64 overflow.
            if cls.float_ending_at(i - 1) or cls.float_starting_at(i + 1):
                continue
            flag(t.line, f"binary `{t.text}`")
    return out


def _depth0_indices(toks: Sequence[Token], lo: int, hi: int) -> List[int]:
    """Token indices in [lo, hi) at bracket depth 0 relative to lo. A sum
    var nested inside a call's argument list says nothing about the type
    of the enclosing expression, so narrowing checks ignore it."""
    out: List[int] = []
    depth = 0
    for k in range(lo, min(hi, len(toks))):
        tx = toks[k].text
        if tx in ")]}":
            depth -= 1
        if depth == 0:
            out.append(k)
        if tx in "([{":
            depth += 1
    return out


def rule_narrowing(path: str, toks: Sequence[Token], decls: Decls,
                   cls: Classifier) -> List[Finding]:
    out: List[Finding] = []
    n = len(toks)
    i = 0
    while i < n:
        t = toks[i]
        # static_cast<idx_t|wgt_t>( ...sum... )
        if (t.text == "static_cast" and i + 1 < n
                and toks[i + 1].text == "<"):
            close = _close_angle(toks, i + 1)
            inner = [x.text for x in toks[i + 2:close]
                     if x.text not in ("::", "mcgp", "const")]
            if inner and inner[0] in _NARROW_TARGETS and close + 1 < n \
                    and toks[close + 1].text == "(":
                rp = _match_forward(toks, close + 1, "(", ")")
                # Only depth-0 sum primaries: a sum_t var buried inside a
                # nested call's argument list (`static_cast<idx_t>(f(s))`)
                # says nothing about the casted value's type.
                if any(cls.sum_starting_at(k)
                       for k in _depth0_indices(toks, close + 2, rp)):
                    out.append(Finding(
                        path, t.line, "narrowing",
                        f"static_cast<{inner[0]}> of a sum_t value; use "
                        "checked_narrow from support/check.hpp"))
                i = rp + 1
                continue
        # idx_t name = ...sum...;   (narrowing declaration initializer)
        if (t.kind == "id" and t.text in _NARROW_TARGETS
                and (i == 0 or toks[i - 1].text not in ("<", ",", "::",
                                                        "<<"))):
            j = i + 1
            while j < n and toks[j].text in ("const", "&", "*"):
                j += 1
            if (j + 1 < n and toks[j].kind == "id"
                    and toks[j + 1].text == "="):
                k = j + 2
                depth = 0
                body_idx: List[int] = []
                depth0_idx: List[int] = []
                while k < n:
                    tx = toks[k].text
                    if tx in "([{":
                        depth += 1
                    elif tx in ")]}":
                        if depth == 0:
                            break
                        depth -= 1
                    elif depth == 0 and tx in (";", ","):
                        break
                    body_idx.append(k)
                    # Depth 0 *and* subscript heads: `pwgts[i]` is a sum
                    # element even though `i` sits at depth 1, while a sum
                    # var passed as a call argument proves nothing about
                    # the initializer's type (out-params, accessors).
                    if depth == 0 or (depth == 1 and k > 0
                                      and toks[k - 1].text == "["):
                        depth0_idx.append(k)
                    k += 1
                texts = {toks[b].text for b in body_idx}
                if ("checked_narrow" not in texts
                        and "static_cast" not in texts
                        and any(cls.sum_starting_at(b) for b in depth0_idx)):
                    out.append(Finding(
                        path, t.line, "narrowing",
                        f"implicit sum_t -> {t.text} narrowing in "
                        "initializer; use checked_narrow from "
                        "support/check.hpp"))
                i = k
                continue
        i += 1
    return out


# begin()-family only: `m.find(k) != m.end()` is a *lookup* — the
# determinism hazard is starting an iteration, not comparing against end.
_ITER_MEMBERS = {"begin", "cbegin", "rbegin"}


def rule_unordered_iter(path: str, toks: Sequence[Token], decls: Decls,
                        cls: Classifier) -> List[Finding]:
    out: List[Finding] = []
    n = len(toks)
    for i, t in enumerate(toks):
        if t.kind != "id" or t.text not in decls.unordered:
            continue
        nxt = toks[i + 1].text if i + 1 < n else ""
        if nxt in (".",) and i + 2 < n and toks[i + 2].text in _ITER_MEMBERS:
            out.append(Finding(
                path, t.line, "unordered-iter",
                f"`{t.text}.{toks[i + 2].text}()` iterates an unordered "
                "container in src/core/; iteration order is unspecified "
                "and breaks determinism"))
        elif i > 0 and toks[i - 1].text == ":":
            # `for (auto& kv : name)` — confirm we are inside a for-range.
            j = _match_back(toks, i, ")", "(")
            # find the `(`, then check the id before it
            k = i
            depth = 0
            while k >= 0:
                tx = toks[k].text
                if tx == ")":
                    depth += 1
                elif tx == "(":
                    if depth == 0:
                        break
                    depth -= 1
                k -= 1
            if k > 0 and toks[k - 1].text == "for":
                out.append(Finding(
                    path, t.line, "unordered-iter",
                    f"range-for over unordered container `{t.text}` in "
                    "src/core/; iteration order is unspecified and breaks "
                    "determinism"))
    return out


def rule_rng_source(path: str, toks: Sequence[Token], decls: Decls,
                    cls: Classifier) -> List[Finding]:
    out: List[Finding] = []
    n = len(toks)
    for i, t in enumerate(toks):
        if t.kind != "id":
            continue
        if t.text in _BANNED_RNG_IDS:
            out.append(Finding(
                path, t.line, "rng-source",
                f"`{t.text}`: {_BANNED_RNG_IDS[t.text]}; all randomness "
                "must flow through mcgp::Rng (support/random.hpp) with an "
                "explicit seed"))
        elif t.text in ("rand", "time"):
            prev = toks[i - 1] if i > 0 else None
            nxt = toks[i + 1].text if i + 1 < n else ""
            # A *call*: `std::rand()`, `return time(0)`, `x = rand()` —
            # but not a member access (`s.rand()`) nor a declaration of
            # an unrelated function (`int rand()`, preceded by a type).
            is_call = (prev is not None and nxt == "("
                       and (prev.text in ("::", "return")
                            or (prev.kind == "op"
                                and prev.text not in (".", "->"))))
            if is_call:
                out.append(Finding(
                    path, t.line, "rng-source",
                    f"`{t.text}()`: nondeterministic C source; all "
                    "randomness must flow through mcgp::Rng "
                    "(support/random.hpp) with an explicit seed"))
    return out


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def _posix(p: Path) -> str:
    return p.as_posix()


def _rule_applies(rule: str, rel: str, all_rules: bool) -> bool:
    if all_rules:
        return True
    if rule in ("sum-arith", "narrowing"):
        return not rel.endswith("support/check.hpp")
    if rule == "unordered-iter":
        return "/core/" in rel or rel.startswith("core/")
    if rule == "rng-source":
        return not rel.endswith("support/random.cpp")
    return True


_RULES = {
    "sum-arith": rule_sum_arith,
    "narrowing": rule_narrowing,
    "unordered-iter": rule_unordered_iter,
    "rng-source": rule_rng_source,
}


def lint_text(path: str, text: str, all_rules: bool = False) -> List[Finding]:
    toks = tokenize(text)
    decls = collect_decls(toks)
    cls = Classifier(toks, decls)
    findings: List[Finding] = []
    for name, fn in _RULES.items():
        if _rule_applies(name, path, all_rules):
            findings.extend(fn(path, toks, decls, cls))
    findings.sort(key=lambda f: (f.line, f.rule))
    return findings


def lint_file(path: Path, root: Optional[Path] = None,
              all_rules: bool = False) -> List[Finding]:
    rel = _posix(path if root is None else path.relative_to(root))
    return lint_text(rel, path.read_text(encoding="utf-8"), all_rules)


_EXTS = {".cpp", ".cc", ".cxx", ".hpp", ".hh", ".h"}


def gather(paths: Sequence[str]) -> List[Path]:
    files: List[Path] = []
    for p in paths:
        pp = Path(p)
        if pp.is_dir():
            files.extend(sorted(x for x in pp.rglob("*")
                                if x.suffix in _EXTS and x.is_file()
                                and "CMakeFiles" not in x.parts))
        elif pp.is_file():
            files.append(pp)
        else:
            print(f"mcgp-lint: no such path: {p}", file=sys.stderr)
            sys.exit(2)
    return files


def main(argv: Sequence[str]) -> int:
    ap = argparse.ArgumentParser(
        prog="mcgp-lint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("paths", nargs="+", help="files or directories to lint")
    ap.add_argument("--all-rules", action="store_true",
                    help="apply every rule to every file (ignore the "
                         "path-based scoping; used by the fixture tests)")
    ap.add_argument("--list-rules", action="store_true",
                    help="print rule names and exit")
    args = ap.parse_args(argv)

    if args.list_rules:
        for r in _RULES:
            print(r)
        return 0

    total = 0
    nfiles = 0
    for f in gather(args.paths):
        findings = lint_file(f, all_rules=args.all_rules)
        nfiles += 1
        for fi in findings:
            print(fi)
        total += len(findings)
    if total:
        print(f"mcgp-lint: {total} finding(s) in {nfiles} file(s)",
              file=sys.stderr)
        return 1
    print(f"mcgp-lint: OK ({nfiles} file(s), 0 findings)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
