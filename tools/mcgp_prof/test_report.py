#!/usr/bin/env python3
"""Self-test for the profile reader (report.py).

Drives the reader in-process over the committed fixtures:

1. `top` on the before-report ranks kway_refine's 15.3M summed cycles
   above initpart's 2M, shows the whole-run total, and leaves the "run"
   row out of the ranking itself.
2. `levels` renders the per-level cycles-per-edge trend of
   coarsen.matching (level 0 = 120 cycles/edge in the fixture) and
   errors precisely on a phase with no leveled rows.
3. `diff before after --metric=llc_miss_rate` reports the injected
   LLC-miss-rate improvement as a negative delta for coarsen.matching.
4. Every subcommand exits 0 on the counters-unavailable fixture and
   says why — unavailability is a fact, not an error.
5. Bad input (no profile section, unsupported schema) exits nonzero
   with a message naming the file.

Run directly (`python3 tools/mcgp_prof/test_report.py`) or via ctest
(`mcgp_prof_selftest`). Exits nonzero on any mismatch.
"""

from __future__ import annotations

import contextlib
import io
import json
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import report  # noqa: E402

FIXTURES = Path(__file__).resolve().parent / "fixtures"
BEFORE = str(FIXTURES / "report_before.json")
AFTER = str(FIXTURES / "report_after.json")
UNAVAILABLE = str(FIXTURES / "report_unavailable.json")


def run_tool(argv):
    out = io.StringIO()
    try:
        with contextlib.redirect_stdout(out):
            code = report.main(argv)
    except SystemExit as e:  # load_profile raises SystemExit on bad input
        return 2, out.getvalue() + str(e)
    return code, out.getvalue()


def main():
    errors = []

    # 1. top: ranking, whole-run total, no "run" row inside the ranking.
    code, out = run_tool(["top", BEFORE, "--n", "3"])
    if code != 0:
        errors.append(f"top: expected exit 0, got {code}\n{out}")
    lines = out.splitlines()
    ranked = [ln.split()[0] for ln in lines[3:] if ln and
              not ln.startswith("(")]
    if ranked[:2] != ["coarsen.matching", "kway_refine"]:
        errors.append(f"top: expected coarsen.matching (18.2M cycles) then "
                      f"kway_refine (15.3M), got {ranked[:2]}\n{out}")
    if "run" in ranked:
        errors.append(f"top: the all-enclosing run row must not be ranked "
                      f"against the phases it contains\n{out}")
    if "(whole run)" not in out or "44,000,000" not in out:
        errors.append(f"top: whole-run cycle total missing\n{out}")
    # Parallel-efficiency columns: kway_refine ran on 4 threads with
    # 16.4M ns on-CPU over 6.1M ns wall -> parallelism 2.689; the serial
    # phases show thr 1 and par <= 1. `threads` aggregates by max, not sum.
    if " thr " not in lines[1] or " par " not in lines[1]:
        errors.append(f"top: header lacks the thr/par columns\n{out}")
    kway = next((ln.split() for ln in lines[3:]
                 if ln.startswith("kway_refine")), [])
    if len(kway) < 5 or kway[3] != "4" or kway[4] != "2.689":
        errors.append(f"top: kway_refine should show thr=4 par=2.689, "
                      f"got {kway}\n{out}")
    match = next((ln.split() for ln in lines[3:]
                  if ln.startswith("coarsen.matching")), [])
    if len(match) < 5 or match[3] != "1":
        errors.append(f"top: coarsen.matching should show thr=1, "
                      f"got {match}\n{out}")

    # parallelism is a first-class metric: rankable and diffable.
    code, out = run_tool(["top", BEFORE, "--by", "parallelism"])
    lines = out.splitlines()
    ranked = [ln.split()[0] for ln in lines[3:] if ln and
              not ln.startswith("(")]
    if code != 0 or ranked[:1] != ["kway_refine"]:
        errors.append(f"top --by=parallelism: expected kway_refine (2.689) "
                      f"first, got {ranked[:1]}\n{out}")

    # Explicit ranking field.
    code, out = run_tool(["top", BEFORE, "--by", "llc_misses"])
    if code != 0 or "llc_misses" not in out.splitlines()[0]:
        errors.append(f"top --by: expected llc_misses ranking, got\n{out}")
    code, out = run_tool(["top", BEFORE, "--by", "nonsense"])
    if code == 0:
        errors.append("top --by=nonsense: expected nonzero exit")

    # 2. levels: per-level trend plus precise error for unleveled phases.
    code, out = run_tool(["levels", BEFORE, "--phase", "coarsen.matching",
                          "--metric", "cycles_per_edge"])
    if code != 0:
        errors.append(f"levels: expected exit 0, got {code}\n{out}")
    rows = [ln.split() for ln in out.splitlines()[3:] if ln.strip()]
    if len(rows) != 2 or rows[0][0] != "0" or rows[1][0] != "1":
        errors.append(f"levels: expected rows for levels 0 and 1\n{out}")
    elif float(rows[0][-1]) != 120.0:  # 12e6 cycles / 1e5 edges
        errors.append(f"levels: level-0 cycles_per_edge should be 120, "
                      f"got {rows[0][-1]}")
    code, out = run_tool(["levels", BEFORE, "--phase", "initpart"])
    if code == 0 or "no per-level rows" not in out:
        errors.append(f"levels initpart: expected a no-leveled-rows error, "
                      f"got exit {code}\n{out}")

    # 3. diff: the injected LLC improvement shows as a negative delta.
    code, out = run_tool(["diff", BEFORE, AFTER,
                          "--metric", "llc_miss_rate"])
    if code != 0:
        errors.append(f"diff: expected exit 0, got {code}\n{out}")
    match_line = next((ln for ln in out.splitlines()
                       if ln.startswith("coarsen.matching")), "")
    if "-" not in match_line.split()[-1] or "%" not in match_line:
        errors.append(f"diff: coarsen.matching llc_miss_rate should improve "
                      f"(negative % delta), got: {match_line!r}")
    code, out = run_tool(["diff", BEFORE, AFTER, "--phase", "run",
                          "--metric", "cycles"])
    if code != 0 or "run" not in out:
        errors.append(f"diff --phase=run: expected the run row\n{out}")
    body = [ln for ln in out.splitlines()[3:] if ln.strip()]
    if len(body) != 1:
        errors.append(f"diff --phase=run: expected exactly one row\n{out}")

    # 4. counters-unavailable: every subcommand reports and exits 0.
    for argv in (["top", UNAVAILABLE],
                 ["levels", UNAVAILABLE],
                 ["diff", UNAVAILABLE, AFTER]):
        code, out = run_tool(argv)
        if code != 0:
            errors.append(f"{argv[0]} unavailable: expected exit 0, "
                          f"got {code}\n{out}")
        if "unavailable" not in out or "perf_event_paranoid" not in out:
            errors.append(f"{argv[0]} unavailable: must surface the "
                          f"recorded status\n{out}")

    # 5. bad input fails loudly, naming the file.
    with tempfile.NamedTemporaryFile("w", suffix=".json",
                                     delete=False) as tmp:
        json.dump({"schema_version": 1, "edge_cut": 7}, tmp)
        no_profile = tmp.name
    code, out = run_tool(["top", no_profile])
    if code == 0 or "profile" not in out:
        errors.append(f"no-profile input: expected a loud failure\n{out}")
    with tempfile.NamedTemporaryFile("w", suffix=".json",
                                     delete=False) as tmp:
        json.dump({"profile": {"schema_version": 999, "available": True,
                               "phases": []}}, tmp)
        future = tmp.name
    code, out = run_tool(["top", future])
    if code == 0 or "schema_version" not in out:
        errors.append(f"future schema: expected a loud failure\n{out}")

    if errors:
        for e in errors:
            print(f"FAIL: {e}", file=sys.stderr)
        return 1
    print("mcgp_prof self-test: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
