#!/usr/bin/env python3
"""Hardware-counter profile reader for mcgp run reports.

Consumes the "profile" section a profiler-attached run embeds in its JSON
run report (mcpart --profile --report-json=..., or a bench --trace-dir
report.json) and renders the three views a performance investigation
actually starts from:

  top     the phases that ate the run, ranked by a counter
          (top-N by cycles, with each phase's share of the whole run)
  levels  the per-hierarchy-level trend of one derived metric for one
          phase (e.g. cycles-per-edge of coarsen.matching by level —
          the curve the ROADMAP-5 memory-layout work wants as baseline)
  diff    A/B comparison of two reports, per matching phase
          (report.py diff before.json after.json --metric=llc_miss_rate)

Reports where the kernel refused the counters carry
"available": false; every subcommand then says so and exits 0 — an
unavailable profile is a fact, not an error.

Dependency-free by design: stdlib only, same as tools/mcgp_bench_diff.

Exit codes: 0 = ok (including counters-unavailable), 2 = bad input.
"""

from __future__ import annotations

import argparse
import json
import sys

# Profile schema this reader understands (kMcgpSchemaVersion in
# src/support/schema.hpp). Newer majors fail loudly instead of silently
# misreading fields whose meaning may have changed.
SUPPORTED_SCHEMA = 1

# Raw per-phase fields (multiplexing-scaled counter sums plus the scope
# bookkeeping the C++ side always writes).
RAW_FIELDS = ("scopes", "edges", "vtxs", "wall_ns", "cycles", "instructions",
              "task_clock_ns", "llc_loads", "llc_misses", "branches",
              "branch_misses")

# metric name -> (numerator field, denominator field). Recomputed here
# from the raw sums rather than trusting the report's per-phase derived
# values, so diff ratios aggregate correctly across levels.
DERIVED = {
    "ipc": ("instructions", "cycles"),
    "llc_miss_rate": ("llc_misses", "llc_loads"),
    "branch_miss_rate": ("branch_misses", "branches"),
    "cycles_per_edge": ("cycles", "edges"),
    "cycles_per_vtx": ("cycles", "vtxs"),
    "branches_per_vtx": ("branches", "vtxs"),
    "instructions_per_edge": ("instructions", "edges"),
    "wall_ns_per_edge": ("wall_ns", "edges"),
    "task_clock_per_edge": ("task_clock_ns", "edges"),
    # On-CPU time over wall time: 1.0 = one busy core, `threads` = perfect
    # scaling. Aux (worker-side) rows contribute task_clock but no wall
    # time, so the aggregated ratio is the phase's effective occupancy.
    "parallelism": ("task_clock_ns", "wall_ns"),
}

METRICS = tuple(RAW_FIELDS) + tuple(DERIVED)


def load_profile(path):
    """Read a run report (or a bare profile object) and return the
    profile dict, or raise SystemExit with a precise message."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as e:
        raise SystemExit(f"error: cannot read {path}: {e}")
    except json.JSONDecodeError as e:
        raise SystemExit(f"error: {path}: not valid JSON: {e}")
    if isinstance(doc, dict) and isinstance(doc.get("profile"), dict):
        prof = doc["profile"]
    elif isinstance(doc, dict) and "available" in doc and "phases" in doc:
        prof = doc  # a bare profile object
    else:
        raise SystemExit(
            f"error: {path}: no \"profile\" section — produce one with "
            "mcpart --profile --report-json=<path>")
    schema = prof.get("schema_version")
    if schema is None or schema > SUPPORTED_SCHEMA:
        raise SystemExit(
            f"error: {path}: profile schema_version {schema!r} not "
            f"supported (this reader understands <= {SUPPORTED_SCHEMA})")
    return prof


def check_available(prof, path):
    """True when the profile carries counters; otherwise explain why not."""
    if prof.get("available"):
        return True
    print(f"{path}: hardware counters unavailable "
          f"({prof.get('status', 'no status recorded')})")
    return False


def metric_value(row, metric):
    """Evaluate a raw or derived metric on one aggregated row.
    Returns None when an input is absent or a denominator is zero."""
    if metric in DERIVED:
        num_field, den_field = DERIVED[metric]
        num, den = row.get(num_field), row.get(den_field)
        if num is None or den is None or den == 0:
            return None
        return num / den
    return row.get(metric)


def merge_rows(acc, row):
    for field in RAW_FIELDS:
        if field in row:
            acc[field] = acc.get(field, 0) + row[field]
    # `threads` counts distinct worker ordinals seen by a bucket — an
    # occupancy, not an accumulating sum, so aggregation takes the max
    # across a phase's per-level rows.
    if "threads" in row:
        acc["threads"] = max(acc.get("threads", 0), row["threads"])


def by_phase(prof):
    """Aggregate the per-(phase, level) rows into {phase: summed_row},
    excluding the all-enclosing "run" row (returned separately)."""
    phases = {}
    run = None
    for row in prof.get("phases", []):
        name = row.get("phase", "?")
        if name == "run":
            run = dict(run or {})
            merge_rows(run, row)
            continue
        acc = phases.setdefault(name, {})
        merge_rows(acc, row)
    return phases, run


def fmt(v):
    if v is None:
        return "-"
    if isinstance(v, float):
        return f"{v:.4g}"
    return f"{v:,}"


def pick_rank_field(prof, requested):
    """The field `top` ranks by: the requested one if the report carries
    it, else the first of cycles / task_clock_ns / wall_ns present."""
    counters = set(prof.get("counters", [])) | {"wall_ns"}
    if requested:
        if requested not in METRICS:
            raise SystemExit(
                f"error: unknown metric {requested!r} (choose from "
                f"{', '.join(METRICS)})")
        return requested
    for cand in ("cycles", "task_clock_ns", "wall_ns"):
        if cand in counters:
            return cand
    return "wall_ns"


def cmd_top(args):
    prof = load_profile(args.report)
    if not check_available(prof, args.report):
        return 0
    rank = pick_rank_field(prof, args.by)
    phases, run = by_phase(prof)
    rows = []
    for name, acc in phases.items():
        v = metric_value(acc, rank)
        if v is not None:
            rows.append((v, name, acc))
    rows.sort(key=lambda t: (-t[0], t[1]))
    total = metric_value(run, rank) if run else None
    print(f"top {min(args.n, len(rows))} phases by {rank} "
          f"({args.report})")
    header = (f"{'phase':<22} {rank:>16} {'share':>7}  "
              f"{'thr':>3} {'par':>5}  ipc     llc_miss")
    print(header)
    print("-" * len(header))
    for v, name, acc in rows[:args.n]:
        share = f"{v / total:7.1%}" if total else "      -"
        thr = acc.get("threads")
        par = metric_value(acc, "parallelism")
        ipc = fmt(metric_value(acc, "ipc"))
        llc = fmt(metric_value(acc, "llc_miss_rate"))
        print(f"{name:<22} {fmt(v):>16} {share}  "
              f"{fmt(thr):>3} {fmt(par):>5}  {ipc:<7} {llc}")
    if total is not None:
        print(f"{'(whole run)':<22} {fmt(total):>16}")
    return 0


def cmd_levels(args):
    prof = load_profile(args.report)
    if not check_available(prof, args.report):
        return 0
    if args.metric not in METRICS:
        raise SystemExit(
            f"error: unknown metric {args.metric!r} (choose from "
            f"{', '.join(METRICS)})")
    rows = [r for r in prof.get("phases", [])
            if r.get("phase") == args.phase and "level" in r]
    if not rows:
        leveled = sorted({r["phase"] for r in prof.get("phases", [])
                          if "level" in r})
        raise SystemExit(
            f"error: no per-level rows for phase {args.phase!r} "
            f"(phases with levels: {', '.join(leveled) or 'none'})")
    rows.sort(key=lambda r: r["level"])
    print(f"{args.phase}: {args.metric} by hierarchy level ({args.report})")
    header = f"{'level':>5} {'edges':>12} {'vtxs':>12} {args.metric:>16}"
    print(header)
    print("-" * len(header))
    for r in rows:
        v = metric_value(r, args.metric)
        print(f"{r['level']:>5} {fmt(r.get('edges')):>12} "
              f"{fmt(r.get('vtxs')):>12} {fmt(v):>16}")
    return 0


def cmd_diff(args):
    before = load_profile(args.before)
    after = load_profile(args.after)
    ok_b = check_available(before, args.before)
    ok_a = check_available(after, args.after)
    if not (ok_b and ok_a):
        return 0
    if args.metric not in METRICS:
        raise SystemExit(
            f"error: unknown metric {args.metric!r} (choose from "
            f"{', '.join(METRICS)})")
    phases_b, run_b = by_phase(before)
    phases_a, run_a = by_phase(after)
    if run_b:
        phases_b["run"] = run_b
    if run_a:
        phases_a["run"] = run_a
    names = sorted(set(phases_b) | set(phases_a))
    if args.phase:
        if args.phase not in names:
            raise SystemExit(
                f"error: phase {args.phase!r} in neither report "
                f"(have: {', '.join(names)})")
        names = [args.phase]
    print(f"{args.metric}: {args.before} -> {args.after}")
    header = (f"{'phase':<22} {'before':>14} {'after':>14} {'delta':>9}")
    print(header)
    print("-" * len(header))
    for name in names:
        vb = metric_value(phases_b.get(name, {}), args.metric)
        va = metric_value(phases_a.get(name, {}), args.metric)
        if vb is None and va is None:
            continue
        if vb is None or va is None or vb == 0:
            delta = "-"
        else:
            delta = f"{(va - vb) / vb:+.1%}"
        print(f"{name:<22} {fmt(vb):>14} {fmt(va):>14} {delta:>9}")
    return 0


def main(argv=None):
    p = argparse.ArgumentParser(
        description="read the profile section of mcgp run reports")
    sub = p.add_subparsers(dest="cmd", required=True)

    p_top = sub.add_parser("top", help="phases ranked by a counter")
    p_top.add_argument("report", help="run report JSON with a profile "
                                      "section")
    p_top.add_argument("--n", type=int, default=10,
                       help="rows to show (default 10)")
    p_top.add_argument("--by", default=None,
                       help="ranking field (default: cycles, falling back "
                            "to task_clock_ns then wall_ns)")
    p_top.set_defaults(fn=cmd_top)

    p_lv = sub.add_parser("levels", help="per-level trend of one metric")
    p_lv.add_argument("report")
    p_lv.add_argument("--phase", default="coarsen.matching",
                      help="leveled phase (default coarsen.matching)")
    p_lv.add_argument("--metric", default="cycles_per_edge",
                      help="metric to trend (default cycles_per_edge)")
    p_lv.set_defaults(fn=cmd_levels)

    p_df = sub.add_parser("diff", help="A/B compare two reports")
    p_df.add_argument("before")
    p_df.add_argument("after")
    p_df.add_argument("--metric", default="cycles",
                      help="metric to compare (default cycles)")
    p_df.add_argument("--phase", default=None,
                      help="restrict to one phase (default: all)")
    p_df.set_defaults(fn=cmd_diff)

    args = p.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
