#!/usr/bin/env python3
"""Run-ledger regression gate.

Compares a current run-ledger (JSONL, one record per partition call —
see src/support/run_ledger.hpp) against a committed baseline ledger and
exits nonzero when any tracked metric regressed beyond its threshold:

  cut        relative increase  > --cut-tol   (quality regression)
  seconds    relative increase  > --time-tol  (runtime regression;
             skipped when the baseline time is below --min-time, where
             scheduler noise dominates)
  peak RSS   relative increase  > --rss-tol   (memory regression;
             skipped when either side lacks the metric)
  feasible   baseline true -> current false   (with --feasibility; a
             balance-contract regression. Skipped when either side
             lacks the field, so old ledgers keep comparing)

Records are joined on the identity tuple
(experiment, algorithm, graph, nparts, ncon, threads, seed); at a fixed
seed the partitioner is deterministic, so the baseline cut is exact, not
statistical. When a ledger holds several records for one key (appended
across invocations), the cut of the last record is used and the
best-of-N (minimum) is used for time and RSS — reruns only add noise
upward.

Dependency-free by design: stdlib only, so the CI gate needs nothing but
a Python interpreter.

Exit codes: 0 = no regression, 1 = regression (or, with --require-all,
a baseline key missing from the current ledger), 2 = bad input.
"""

from __future__ import annotations

import argparse
import json
import sys

# Ledger schema this gate understands (mirrors kMcgpSchemaVersion in
# src/support/schema.hpp). Newer majors fail loudly instead of silently
# comparing fields whose meaning may have changed.
SUPPORTED_SCHEMA = 1

KEY_FIELDS = ("experiment", "algorithm", "graph", "nparts", "ncon",
              "threads", "seed")


def read_ledger(path):
    """Parse a JSONL ledger into {key_tuple: merged_record}."""
    merged = {}
    try:
        with open(path, "r", encoding="utf-8") as f:
            lines = f.readlines()
    except OSError as e:
        raise SystemExit(f"error: cannot read ledger {path}: {e}")
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as e:
            raise SystemExit(f"error: {path}:{lineno}: not valid JSON: {e}")
        schema = rec.get("schema_version")
        if schema is None or schema > SUPPORTED_SCHEMA:
            raise SystemExit(
                f"error: {path}:{lineno}: ledger schema_version {schema!r} "
                f"not supported (this gate understands <= {SUPPORTED_SCHEMA})")
        missing = [k for k in KEY_FIELDS if k not in rec]
        if missing:
            raise SystemExit(
                f"error: {path}:{lineno}: record lacks key fields {missing}")
        key = tuple(rec[k] for k in KEY_FIELDS)
        prev = merged.get(key)
        if prev is None:
            merged[key] = rec
        else:
            # Re-runs of the same configuration: deterministic metrics take
            # the latest record, noisy ones the best observation.
            best = dict(rec)
            best["seconds"] = min(prev.get("seconds", 0.0),
                                  rec.get("seconds", 0.0))
            if "peak_rss_bytes" in prev and "peak_rss_bytes" in rec:
                best["peak_rss_bytes"] = min(prev["peak_rss_bytes"],
                                             rec["peak_rss_bytes"])
            merged[key] = best
    if not merged:
        raise SystemExit(f"error: ledger {path} holds no records")
    return merged


def key_name(key):
    return ("{0}/{1} {2} k={3} m={4} t={5} seed={6}".format(*key))


def relative_increase(base, cur):
    if base <= 0:
        return 0.0 if cur <= 0 else float("inf")
    return (cur - base) / base


def main(argv=None):
    p = argparse.ArgumentParser(
        description="compare a run ledger against a committed baseline")
    p.add_argument("--baseline", required=True,
                   help="committed baseline ledger (JSONL)")
    p.add_argument("--current", required=True,
                   help="freshly produced ledger (JSONL)")
    p.add_argument("--cut-tol", type=float, default=0.02,
                   help="allowed relative cut increase (default 0.02)")
    p.add_argument("--time-tol", type=float, default=0.50,
                   help="allowed relative time increase (default 0.50)")
    p.add_argument("--rss-tol", type=float, default=0.50,
                   help="allowed relative peak-RSS increase (default 0.50)")
    p.add_argument("--min-time", type=float, default=0.05,
                   help="skip time comparison when the baseline run is "
                        "shorter than this many seconds (default 0.05)")
    p.add_argument("--feasibility", action="store_true",
                   help="fail when a configuration that was feasible in "
                        "the baseline is infeasible in the current ledger "
                        "(records lacking the field are skipped)")
    p.add_argument("--require-all", action="store_true",
                   help="fail when a baseline key is missing from the "
                        "current ledger (default: warn)")
    args = p.parse_args(argv)

    baseline = read_ledger(args.baseline)
    current = read_ledger(args.current)

    regressions = []
    compared = 0
    skipped_time = 0
    missing = []

    for key in sorted(baseline):
        if key not in current:
            missing.append(key)
            continue
        base, cur = baseline[key], current[key]
        compared += 1
        name = key_name(key)

        d_cut = relative_increase(base["cut"], cur["cut"])
        if d_cut > args.cut_tol:
            regressions.append(
                f"{name}: cut {base['cut']} -> {cur['cut']} "
                f"(+{d_cut:.1%} > {args.cut_tol:.1%})")

        if base.get("seconds", 0.0) < args.min_time:
            skipped_time += 1
        else:
            d_t = relative_increase(base["seconds"], cur["seconds"])
            if d_t > args.time_tol:
                regressions.append(
                    f"{name}: time {base['seconds']:.3f}s -> "
                    f"{cur['seconds']:.3f}s (+{d_t:.1%} > {args.time_tol:.1%})")

        if args.feasibility:
            base_feas = base.get("feasible")
            cur_feas = cur.get("feasible")
            if base_feas is True and cur_feas is False:
                regressions.append(
                    f"{name}: feasible -> infeasible (balance contract "
                    f"regression)")

        base_rss = base.get("peak_rss_bytes", -1)
        cur_rss = cur.get("peak_rss_bytes", -1)
        if base_rss > 0 and cur_rss > 0:
            d_rss = relative_increase(base_rss, cur_rss)
            if d_rss > args.rss_tol:
                regressions.append(
                    f"{name}: peak rss {base_rss} -> {cur_rss} "
                    f"(+{d_rss:.1%} > {args.rss_tol:.1%})")

    for key in sorted(missing):
        print(f"missing from current ledger: {key_name(key)}")
    new_keys = sorted(set(current) - set(baseline))
    for key in new_keys:
        print(f"not in baseline (ignored): {key_name(key)}")

    print(f"compared {compared} configuration(s) "
          f"({skipped_time} below the {args.min_time}s time floor, "
          f"{len(missing)} missing, {len(new_keys)} new)")

    for r in regressions:
        print(f"REGRESSION: {r}")
    if regressions:
        print(f"FAIL: {len(regressions)} regression(s)")
        return 1
    if missing and args.require_all:
        print(f"FAIL: {len(missing)} baseline configuration(s) missing "
              "(--require-all)")
        return 1
    if compared == 0:
        print("FAIL: no overlapping configurations to compare")
        return 1
    print("OK: no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
