#!/usr/bin/env python3
"""Self-test for the run-ledger regression gate (diff.py).

Drives the gate in-process over the committed fixtures:

1. baseline vs current_ok must pass (small improvements and noise-level
   drift stay under every threshold; the extra current-only key is
   ignored).
2. baseline vs current_regressed must exit nonzero and flag exactly the
   injected regressions: a >2% cut increase, a >50% time increase, and a
   >50% peak-RSS increase — while the sub-floor timing blowup of the
   0.01s quality run stays exempt (scheduler noise, not signal).
3. Duplicate baseline records for one key merge best-of (min time/RSS).
4. --require-all turns a missing baseline key into a failure.
5. Records carrying keys the gate does not know (host identity, profile
   sections from profiler-attached runs, metrics_snapshot sidecar
   pointers) compare cleanly against an old baseline that lacks them,
   even with the .metrics.json sidecar sitting next to the ledger — new
   telemetry must never invalidate committed baselines.
6. --feasibility flags a feasible->infeasible flip as a regression, stays
   quiet without the flag, and skips records lacking the field (old
   baselines keep gating new binaries).

Run directly (`python3 tools/mcgp_bench_diff/test_diff.py`) or via ctest
(`mcgp_bench_diff_selftest`). Exits nonzero on any mismatch.
"""

from __future__ import annotations

import contextlib
import io
import json
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import diff  # noqa: E402

FIXTURES = Path(__file__).resolve().parent / "fixtures"
BASELINE = str(FIXTURES / "baseline.jsonl")


def run_gate(argv):
    out = io.StringIO()
    try:
        with contextlib.redirect_stdout(out):
            code = diff.main(argv)
    except SystemExit as e:  # read_ledger raises SystemExit on bad input
        return 2, out.getvalue() + str(e)
    return code, out.getvalue()


def main():
    errors = []

    code, out = run_gate(["--baseline", BASELINE,
                          "--current", str(FIXTURES / "current_ok.jsonl")])
    if code != 0:
        errors.append(f"current_ok: expected exit 0, got {code}\n{out}")
    if "not in baseline (ignored)" not in out:
        errors.append("current_ok: extra key was not reported as ignored")

    code, out = run_gate(["--baseline", BASELINE,
                          "--current",
                          str(FIXTURES / "current_regressed.jsonl")])
    if code == 0:
        errors.append("current_regressed: expected nonzero exit, got 0")
    flagged = [line for line in out.splitlines()
               if line.startswith("REGRESSION:")]
    if len(flagged) != 3:
        errors.append(
            f"current_regressed: expected exactly 3 regressions "
            f"(cut, time, rss), got {len(flagged)}:\n{out}")
    for metric in ("cut", "time", "peak rss"):
        if not any(f" {metric} " in line for line in flagged):
            errors.append(f"current_regressed: no {metric} regression flagged")
    if any("mgen1-grid2d" in line for line in flagged):
        errors.append(
            "current_regressed: sub-floor timing of the 0.01s baseline run "
            "must not be compared")

    merged = diff.read_ledger(BASELINE)
    key = ("runtime", "MC-RB", "grid-60x60", 64, 1, 1, 1)
    if key not in merged:
        errors.append("merge: expected key missing from parsed baseline")
    else:
        rec = merged[key]
        if rec["seconds"] != 0.200 or rec["peak_rss_bytes"] != 50000000:
            errors.append(
                f"merge: duplicate records should keep best-of time/RSS, "
                f"got seconds={rec['seconds']} rss={rec['peak_rss_bytes']}")

    with tempfile.NamedTemporaryFile("w", suffix=".jsonl",
                                     delete=False) as tmp:
        # A current ledger holding only one of the baseline keys.
        tmp.write(Path(FIXTURES / "current_ok.jsonl").read_text()
                  .splitlines(keepends=True)[0])
        partial = tmp.name
    code, _ = run_gate(["--baseline", BASELINE, "--current", partial])
    if code != 0:
        errors.append(f"partial without --require-all: expected 0, got {code}")
    code, _ = run_gate(["--baseline", BASELINE, "--current", partial,
                        "--require-all"])
    if code == 0:
        errors.append("partial with --require-all: expected nonzero exit")

    # Newer ledgers stamp host identity, (with --profile) a profile
    # object, and (with a metrics registry attached) a metrics_snapshot
    # sidecar pointer onto every record; the gate must ignore keys it
    # does not know so old baselines keep gating new binaries.
    enriched_lines = []
    for line in Path(FIXTURES / "current_ok.jsonl").read_text().splitlines():
        rec = json.loads(line)
        rec["host"] = "ci-runner"
        rec["cpu"] = "Fixture CPU @ 2.70GHz"
        rec["cores"] = 8
        rec["profile"] = {"available": True, "status": "ok",
                          "cycles": 123456789, "task_clock_ns": 42000000}
        enriched_lines.append(json.dumps(rec))
    with tempfile.NamedTemporaryFile("w", suffix=".jsonl",
                                     delete=False) as tmp:
        tmp.write("\n".join(enriched_lines) + "\n")
        enriched = tmp.name
    # The benches drop a <ledger>.metrics.json aggregate next to the
    # ledger and point every record at it; neither the sidecar file nor
    # the pointer key may perturb the gate.
    sidecar = enriched + ".metrics.json"
    Path(sidecar).write_text(json.dumps(
        {"schema_version": 1, "kind": "mcgp_metrics", "families": []}))
    enriched_lines = [json.dumps({**json.loads(line),
                                  "metrics_snapshot": sidecar})
                      for line in enriched_lines]
    Path(enriched).write_text("\n".join(enriched_lines) + "\n")
    code, out = run_gate(["--baseline", BASELINE, "--current", enriched])
    if code != 0:
        errors.append(f"extra keys: records with host/profile/"
                      f"metrics_snapshot fields must compare cleanly "
                      f"against an old baseline, got exit {code}\n{out}")

    # Feasibility gate: a baseline-feasible key turning infeasible must
    # fail under --feasibility, pass without it, and records lacking the
    # field on either side must be skipped rather than compared.
    def write_ledger(records):
        with tempfile.NamedTemporaryFile("w", suffix=".jsonl",
                                         delete=False) as tmp:
            for rec in records:
                tmp.write(json.dumps(rec) + "\n")
            return tmp.name

    def feas_rec(graph, feasible):
        rec = {"schema_version": 1, "git": "fixture",
               "experiment": "quality_kway", "algorithm": "MC-KW",
               "graph": graph, "nparts": 64, "ncon": 3, "threads": 1,
               "seed": 1, "cut": 100, "imbalance": [1.02],
               "max_imbalance": 1.02, "seconds": 0.2}
        if feasible is not None:
            rec["feasible"] = feasible
        return rec

    feas_base = write_ledger([feas_rec("g-flips", True),
                              feas_rec("g-stays", True),
                              feas_rec("g-legacy", None)])
    feas_cur = write_ledger([feas_rec("g-flips", False),
                             feas_rec("g-stays", True),
                             feas_rec("g-legacy", False)])
    code, out = run_gate(["--baseline", feas_base, "--current", feas_cur,
                          "--feasibility"])
    if code == 0:
        errors.append("feasibility: feasible->infeasible flip must fail "
                      "under --feasibility")
    flagged = [line for line in out.splitlines()
               if line.startswith("REGRESSION:")]
    if len(flagged) != 1 or "g-flips" not in flagged[0] \
            or "infeasible" not in flagged[0]:
        errors.append(
            f"feasibility: expected exactly the g-flips flip flagged "
            f"(g-legacy lacks the baseline field), got:\n{out}")
    code, out = run_gate(["--baseline", feas_base, "--current", feas_cur])
    if code != 0:
        errors.append(f"feasibility: without --feasibility the flip must "
                      f"not gate, got exit {code}\n{out}")

    if errors:
        for e in errors:
            print(f"FAIL: {e}", file=sys.stderr)
        return 1
    print("mcgp_bench_diff self-test: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
