#include "SumArithCheck.hpp"

#include <string>

#include "McgpTidyUtils.hpp"
#include "clang/AST/Expr.h"
#include "clang/ASTMatchers/ASTMatchers.h"

namespace mcgp_tidy {

using clang::BinaryOperator;
using clang::Expr;
using clang::QualType;
using clang::SourceLocation;
using clang::SourceManager;
using clang::UnaryOperator;
using clang::ast_matchers::binaryOperator;
using clang::ast_matchers::hasAnyOperatorName;
using clang::ast_matchers::MatchFinder;
using clang::ast_matchers::unaryOperator;

namespace {

// support/check.hpp implements the checked_* helpers and is the one file
// allowed to perform raw sum_t arithmetic. Suffix matching keeps the
// fixture stand-in (fixtures/src/support/check.hpp) exempt as well.
bool exemptFile(const SourceManager& sm, SourceLocation loc) {
  const std::string file = fileOf(sm, loc);
  return file.empty() || endsWith(file, "support/check.hpp");
}

// An operand proves the arithmetic is sum_t arithmetic when its type sugar
// (behind parens and implicit conversions) reaches sum_t.
bool isSumOperand(const Expr* e) {
  return e != nullptr && isSumT(e->IgnoreParenImpCasts()->getType());
}

}  // namespace

void SumArithCheck::registerMatchers(MatchFinder* Finder) {
  Finder->addMatcher(
      binaryOperator(hasAnyOperatorName("+", "-", "*", "+=", "-=", "*="))
          .bind("bin"),
      this);
  Finder->addMatcher(unaryOperator(hasAnyOperatorName("++", "--")).bind("un"),
                     this);
}

void SumArithCheck::check(const MatchFinder::MatchResult& Result) {
  const SourceManager& sm = *Result.SourceManager;
  if (const auto* bin = Result.Nodes.getNodeAs<BinaryOperator>("bin")) {
    if (exemptFile(sm, bin->getOperatorLoc())) return;
    // Require the result (for compound assignment: the target) to still be
    // an integer, so floating-point accumulation of a sum_t
    // (`double d = s * scale`) and pointer arithmetic stay out of scope.
    const QualType resTy = bin->getType();
    if (resTy.isNull() || !resTy->isIntegerType()) return;
    if (bin->getLHS()->getType()->isAnyPointerType() ||
        bin->getRHS()->getType()->isAnyPointerType()) {
      return;
    }
    if (!isSumOperand(bin->getLHS()) && !isSumOperand(bin->getRHS())) return;
    diag(bin->getOperatorLoc(),
         "raw '%0' on sum_t; use checked_add/checked_sub/checked_mul from "
         "support/check.hpp")
        << BinaryOperator::getOpcodeStr(bin->getOpcode());
    return;
  }
  if (const auto* un = Result.Nodes.getNodeAs<UnaryOperator>("un")) {
    if (exemptFile(sm, un->getOperatorLoc())) return;
    if (!isSumOperand(un->getSubExpr())) return;
    diag(un->getOperatorLoc(),
         "raw '%0' on sum_t; use checked_add/checked_sub from "
         "support/check.hpp")
        << UnaryOperator::getOpcodeStr(un->getOpcode());
  }
}

}  // namespace mcgp_tidy
