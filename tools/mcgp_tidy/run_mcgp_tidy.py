#!/usr/bin/env python3
"""Sweep the project with the mcgp-tidy plugin or the Clang Static Analyzer.

Runs clang-tidy over every translation unit recorded in a build
directory's compile_commands.json that lives under the requested source
directories, and exits nonzero on any finding. Two modes:

  plugin (default)   -load mcgp_tidy.so --checks=-*,mcgp-*
                     The project's AST checks: sum_t arithmetic and
                     narrowing discipline, unordered iteration in the
                     core, pointer-order hazards, RNG hygiene.
  --analyzer         --checks=-*,clang-analyzer-core*,
                     clang-analyzer-deadcode*,clang-analyzer-unix*
                     The Clang Static Analyzer's path-sensitive core,
                     dead-store, and POSIX-API checks. No plugin needed.

Findings in project headers are reported too (--header-filter covers
src/ bench/ tests/ examples/ under the source root). --forbid-nolint
additionally rejects any NOLINT marker in the swept sources: the project
has no suppression mechanism on purpose — a false positive is fixed by
improving the check, not by silencing it at the use site.

Typical local use (after a cmake configure that found the clang dev
headers, e.g. `cmake --preset tidy-plugin && cmake --build build-clang
--target mcgp_tidy`):

  python3 tools/mcgp_tidy/run_mcgp_tidy.py \
      -p build-clang --plugin build-clang/tools/mcgp_tidy/mcgp_tidy.so
  python3 tools/mcgp_tidy/run_mcgp_tidy.py -p build-clang --analyzer
"""

import argparse
import concurrent.futures
import json
import os
import re
import shutil
import subprocess
import sys

DEFAULT_PATHS = ["src", "bench", "tests", "examples"]
ANALYZER_CHECKS = (
    "-*,clang-analyzer-core*,clang-analyzer-deadcode*,clang-analyzer-unix*"
)
PLUGIN_CHECKS = "-*,mcgp-*"
FINDING_RE = re.compile(r": (?:warning|error): .*\[[A-Za-z0-9.,\-]+\]\s*$",
                        re.MULTILINE)
SOURCE_SUFFIXES = (".cpp", ".cc", ".cxx", ".hpp", ".h")


def find_clang_tidy(explicit):
    if explicit:
        return explicit
    names = ["clang-tidy"]
    names += ["clang-tidy-%d" % v for v in range(21, 13, -1)]
    for name in names:
        path = shutil.which(name)
        if path:
            return path
    return None


def load_compile_db(build_dir):
    db_path = os.path.join(build_dir, "compile_commands.json")
    try:
        with open(db_path, encoding="utf-8") as f:
            return json.load(f)
    except OSError as e:
        sys.exit("error: cannot read %s (%s); configure with "
                 "CMAKE_EXPORT_COMPILE_COMMANDS=ON first" % (db_path, e))


def select_files(db, source_root, paths):
    roots = [os.path.join(source_root, p) + os.sep for p in paths]
    selected = []
    for entry in db:
        f = entry["file"]
        if not os.path.isabs(f):
            f = os.path.normpath(os.path.join(entry["directory"], f))
        if any(f.startswith(root) for root in roots):
            selected.append(f)
    return sorted(set(selected))


def scan_nolint(source_root, paths):
    hits = []
    for p in paths:
        for dirpath, _dirnames, filenames in os.walk(
                os.path.join(source_root, p)):
            for name in filenames:
                if not name.endswith(SOURCE_SUFFIXES):
                    continue
                path = os.path.join(dirpath, name)
                with open(path, encoding="utf-8", errors="replace") as f:
                    for lineno, line in enumerate(f, start=1):
                        if "NOLINT" in line:
                            hits.append("%s:%d: %s" %
                                        (path, lineno, line.strip()))
    return hits


def run_one(tidy, build_dir, header_filter, checks, plugin, path):
    cmd = [tidy, "-p", build_dir, "--quiet",
           "--header-filter=" + header_filter,
           "--warnings-as-errors=*", "--checks=" + checks]
    if plugin:
        cmd += ["-load", plugin]
    cmd.append(path)
    proc = subprocess.run(cmd, stdout=subprocess.PIPE,
                          stderr=subprocess.PIPE, text=True)
    return path, proc.returncode, proc.stdout, proc.stderr


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("paths", nargs="*", default=None,
                    help="source dirs to sweep (default: %s)"
                         % " ".join(DEFAULT_PATHS))
    ap.add_argument("-p", "--build-dir", required=True,
                    help="build dir holding compile_commands.json")
    ap.add_argument("--plugin", default=None,
                    help="path to mcgp_tidy.so (required unless --analyzer)")
    ap.add_argument("--clang-tidy", default=None,
                    help="clang-tidy binary (default: first found on PATH)")
    ap.add_argument("--analyzer", action="store_true",
                    help="run the Clang Static Analyzer checks instead of "
                         "the mcgp-* plugin checks")
    ap.add_argument("--checks", default=None,
                    help="override the clang-tidy -checks= value")
    ap.add_argument("--source-root", default=None,
                    help="project root (default: this script's repo)")
    ap.add_argument("-j", "--jobs", type=int, default=os.cpu_count() or 2)
    ap.add_argument("--forbid-nolint", action="store_true",
                    help="fail if any swept source contains a NOLINT marker")
    ap.add_argument("--list", action="store_true", dest="list_only",
                    help="print the selected files and exit")
    args = ap.parse_args()

    source_root = os.path.abspath(
        args.source_root
        or os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        os.pardir, os.pardir))
    paths = args.paths or DEFAULT_PATHS

    # --list only consults the compile database, so it works (and is
    # testable) on machines with no clang-tidy installed.
    files = select_files(load_compile_db(args.build_dir), source_root, paths)
    if args.list_only:
        print("\n".join(files))
        return

    tidy = find_clang_tidy(args.clang_tidy)
    if tidy is None:
        sys.exit("error: no clang-tidy on PATH; pass --clang-tidy")
    if not args.analyzer and not args.plugin:
        sys.exit("error: --plugin is required unless --analyzer is given")

    checks = args.checks or (ANALYZER_CHECKS if args.analyzer
                             else PLUGIN_CHECKS)
    plugin = None if args.analyzer else os.path.abspath(args.plugin)
    if not files:
        sys.exit("error: compile_commands.json has no entries under %s"
                 % ", ".join(paths))

    if args.forbid_nolint:
        hits = scan_nolint(source_root, paths)
        if hits:
            print("NOLINT markers are not permitted (fix the code or the "
                  "check, do not suppress):", file=sys.stderr)
            print("\n".join(hits), file=sys.stderr)
            sys.exit(1)

    header_filter = "%s/(%s)/.*" % (re.escape(source_root), "|".join(paths))
    failures = 0
    with concurrent.futures.ThreadPoolExecutor(max_workers=args.jobs) as ex:
        futures = [ex.submit(run_one, tidy, args.build_dir, header_filter,
                             checks, plugin, f) for f in files]
        for fut in concurrent.futures.as_completed(futures):
            path, rc, out, err = fut.result()
            has_findings = bool(FINDING_RE.search(out))
            if rc != 0 or has_findings:
                failures += 1
                rel = os.path.relpath(path, source_root)
                print("== %s (exit %d)" % (rel, rc))
                if out.strip():
                    print(out.strip())
                # stderr carries clang-tidy's own errors (bad plugin path,
                # compile db problems) but also noise like the suppressed-
                # warnings count; only surface it when the run itself broke.
                if rc != 0 and err.strip():
                    print(err.strip(), file=sys.stderr)

    mode = "clang-analyzer" if args.analyzer else "mcgp-tidy"
    if failures:
        print("%s: FAIL (%d of %d translation units with findings)"
              % (mode, failures, len(files)))
        sys.exit(1)
    print("%s: OK (%d translation units, 0 findings)" % (mode, len(files)))


if __name__ == "__main__":
    try:
        main()
    except BrokenPipeError:  # e.g. `--list | head`
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
