// mcgp-narrowing: conversions (implicit, static_cast, C-style, or
// functional) from sum_t down to a narrower integer type — idx_t, wgt_t,
// or any other sub-64-bit integer — outside support/check.hpp.
//
// checked_narrow<To>() is the sanctioned route: it range-checks before
// truncating and raises an audit failure on loss. -Wconversion already
// rejects *implicit* narrowing in the normal build, so the interesting
// cases here are the explicit casts that silence the compiler without
// adding the range check.
#ifndef MCGP_TOOLS_MCGP_TIDY_NARROWING_CHECK_HPP
#define MCGP_TOOLS_MCGP_TIDY_NARROWING_CHECK_HPP

#include "clang-tidy/ClangTidyCheck.h"

namespace mcgp_tidy {

class NarrowingCheck : public clang::tidy::ClangTidyCheck {
 public:
  NarrowingCheck(clang::StringRef Name, clang::tidy::ClangTidyContext* Context)
      : ClangTidyCheck(Name, Context) {}
  void registerMatchers(clang::ast_matchers::MatchFinder* Finder) override;
  void check(
      const clang::ast_matchers::MatchFinder::MatchResult& Result) override;
};

}  // namespace mcgp_tidy

#endif  // MCGP_TOOLS_MCGP_TIDY_NARROWING_CHECK_HPP
