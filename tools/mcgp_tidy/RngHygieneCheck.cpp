#include "RngHygieneCheck.hpp"

#include <string>

#include "McgpTidyUtils.hpp"
#include "clang/AST/ASTContext.h"
#include "clang/AST/ASTTypeTraits.h"
#include "clang/AST/Decl.h"
#include "clang/AST/DeclCXX.h"
#include "clang/AST/Expr.h"
#include "clang/AST/ExprCXX.h"
#include "clang/AST/ParentMapContext.h"
#include "clang/ASTMatchers/ASTMatchers.h"

namespace mcgp_tidy {

using clang::CXXRecordDecl;
using clang::CXXTemporaryObjectExpr;
using clang::DeclaratorDecl;
using clang::DynTypedNode;
using clang::SourceLocation;
using clang::SourceManager;
using clang::Stmt;
using clang::VarDecl;
using clang::ast_matchers::cxxTemporaryObjectExpr;
using clang::ast_matchers::fieldDecl;
using clang::ast_matchers::isImplicit;
using clang::ast_matchers::MatchFinder;
using clang::ast_matchers::unless;
using clang::ast_matchers::varDecl;

namespace {

const char* const kStdRngClasses[] = {
    "mersenne_twister_engine",    "linear_congruential_engine",
    "subtract_with_carry_engine", "discard_block_engine",
    "independent_bits_engine",    "shuffle_order_engine",
    "philox_engine",              "random_device"};

bool exemptFile(const SourceManager& sm, SourceLocation loc) {
  const std::string file = fileOf(sm, loc);
  return file.empty() || endsWith(file, "support/random.cpp") ||
         endsWith(file, "support/random.hpp");
}

const CXXRecordDecl* stdRngClass(clang::QualType t) {
  const CXXRecordDecl* rd = classOf(t);
  return isStdClassNamed(rd, kStdRngClasses) ? rd : nullptr;
}

// A temporary like `std::mt19937{seed}` that directly initializes an
// engine variable would be reported twice (once for the expression, once
// for the declaration); walk up through the initializer plumbing and let
// the declaration report alone in that case. A non-engine enclosing
// declaration (`std::uint64_t x = std::mt19937_64{7}();`) does not
// suppress: there the temporary is the only reportable node.
bool initializesRngVarDecl(clang::ASTContext& ctx, const Stmt* s) {
  DynTypedNode node = DynTypedNode::create(*s);
  for (int depth = 0; depth < 8; ++depth) {
    const auto parents = ctx.getParents(node);
    if (parents.empty()) return false;
    const DynTypedNode& parent = parents[0];
    if (const auto* vd = parent.get<VarDecl>()) {
      return stdRngClass(vd->getType()) != nullptr;
    }
    if (parent.get<Stmt>() == nullptr) return false;
    node = parent;
  }
  return false;
}

}  // namespace

void RngHygieneCheck::registerMatchers(MatchFinder* Finder) {
  Finder->addMatcher(varDecl(unless(isImplicit())).bind("decl"), this);
  Finder->addMatcher(fieldDecl().bind("decl"), this);
  Finder->addMatcher(cxxTemporaryObjectExpr().bind("tmp"), this);
}

void RngHygieneCheck::check(const MatchFinder::MatchResult& Result) {
  const SourceManager& sm = *Result.SourceManager;
  if (const auto* decl = Result.Nodes.getNodeAs<DeclaratorDecl>("decl")) {
    if (exemptFile(sm, decl->getLocation())) return;
    if (const CXXRecordDecl* rd = stdRngClass(decl->getType())) {
      diag(decl->getLocation(),
           "'std::%0' outside support/random.cpp breaks the fixed-seed "
           "reproducibility contract; draw from the deterministic streams "
           "in support/random.hpp")
          << rd->getName();
    }
    return;
  }
  const auto* tmp = Result.Nodes.getNodeAs<CXXTemporaryObjectExpr>("tmp");
  if (tmp == nullptr || exemptFile(sm, tmp->getBeginLoc())) return;
  const CXXRecordDecl* rd = stdRngClass(tmp->getType());
  if (rd == nullptr) return;
  if (initializesRngVarDecl(*Result.Context, tmp)) return;
  diag(tmp->getBeginLoc(),
       "'std::%0' outside support/random.cpp breaks the fixed-seed "
       "reproducibility contract; draw from the deterministic streams in "
       "support/random.hpp")
      << rd->getName();
}

}  // namespace mcgp_tidy
