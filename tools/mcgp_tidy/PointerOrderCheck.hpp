// mcgp-pointer-order: ordering decisions keyed by raw pointer value
// anywhere under src/ — relational comparisons of two raw pointers, and
// std::set/std::map (and multi- variants) declared with a pointer key.
//
// Pointer values vary run to run under ASLR and across allocators, so any
// order derived from them is nondeterministic even on one machine. The
// regex linter cannot express this rule at all (it has no notion of a
// pointer-typed expression); equality tests and hashing by pointer
// identity remain fine and are not matched.
#ifndef MCGP_TOOLS_MCGP_TIDY_POINTER_ORDER_CHECK_HPP
#define MCGP_TOOLS_MCGP_TIDY_POINTER_ORDER_CHECK_HPP

#include "clang-tidy/ClangTidyCheck.h"

namespace mcgp_tidy {

class PointerOrderCheck : public clang::tidy::ClangTidyCheck {
 public:
  PointerOrderCheck(clang::StringRef Name,
                    clang::tidy::ClangTidyContext* Context)
      : ClangTidyCheck(Name, Context) {}
  void registerMatchers(clang::ast_matchers::MatchFinder* Finder) override;
  void check(
      const clang::ast_matchers::MatchFinder::MatchResult& Result) override;
};

}  // namespace mcgp_tidy

#endif  // MCGP_TOOLS_MCGP_TIDY_POINTER_ORDER_CHECK_HPP
