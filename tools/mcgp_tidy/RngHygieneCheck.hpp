// mcgp-rng-hygiene: standard RNG machinery — the <random> engine templates
// and std::random_device — declared or constructed anywhere outside
// support/random.cpp.
//
// Reproducibility (fixed-seed bit-identity across runs and thread counts)
// requires every random stream to come from the project's deterministic
// SplitMix generator in support/random.{hpp,cpp}. Matching the *canonical*
// engine class names means every alias is covered: std::mt19937 is
// mersenne_twister_engine, std::knuth_b is shuffle_order_engine,
// std::default_random_engine is whatever the library picked — all
// rejected. Clock-derived seeds are covered transitively: a clock seed is
// only useful feeding an engine constructor, and the engine itself is
// flagged wherever it appears.
#ifndef MCGP_TOOLS_MCGP_TIDY_RNG_HYGIENE_CHECK_HPP
#define MCGP_TOOLS_MCGP_TIDY_RNG_HYGIENE_CHECK_HPP

#include "clang-tidy/ClangTidyCheck.h"

namespace mcgp_tidy {

class RngHygieneCheck : public clang::tidy::ClangTidyCheck {
 public:
  RngHygieneCheck(clang::StringRef Name,
                  clang::tidy::ClangTidyContext* Context)
      : ClangTidyCheck(Name, Context) {}
  void registerMatchers(clang::ast_matchers::MatchFinder* Finder) override;
  void check(
      const clang::ast_matchers::MatchFinder::MatchResult& Result) override;
};

}  // namespace mcgp_tidy

#endif  // MCGP_TOOLS_MCGP_TIDY_RNG_HYGIENE_CHECK_HPP
