// mcgp-sum-arith: raw additive/multiplicative arithmetic on expressions
// whose type sugar reaches sum_t, anywhere outside support/check.hpp.
//
// The overflow-safety contract (DESIGN §"overflow") routes every sum_t
// add/sub/mul through checked_add/checked_sub/checked_mul. The regex rule
// in tools/mcgp_lint only sees variables *declared* `sum_t ...` in the
// same file; this check sees the type behind `auto`, template parameters,
// container value_types, and struct members declared in other headers.
#ifndef MCGP_TOOLS_MCGP_TIDY_SUM_ARITH_CHECK_HPP
#define MCGP_TOOLS_MCGP_TIDY_SUM_ARITH_CHECK_HPP

#include "clang-tidy/ClangTidyCheck.h"

namespace mcgp_tidy {

class SumArithCheck : public clang::tidy::ClangTidyCheck {
 public:
  SumArithCheck(clang::StringRef Name, clang::tidy::ClangTidyContext* Context)
      : ClangTidyCheck(Name, Context) {}
  void registerMatchers(clang::ast_matchers::MatchFinder* Finder) override;
  void check(
      const clang::ast_matchers::MatchFinder::MatchResult& Result) override;
};

}  // namespace mcgp_tidy

#endif  // MCGP_TOOLS_MCGP_TIDY_SUM_ARITH_CHECK_HPP
