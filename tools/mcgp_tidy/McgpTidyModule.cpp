// Registration of the mcgp-* checks as an out-of-tree clang-tidy module.
//
// The resulting shared object is loaded with `clang-tidy -load
// mcgp_tidy.so`; it links against no clang/LLVM libraries and resolves
// every symbol from the hosting clang-tidy process, which guarantees a
// single ClangTidyModuleRegistry instance (linking our own copy of the
// clang libraries would register into a second, invisible registry).
#include "NarrowingCheck.hpp"
#include "PointerOrderCheck.hpp"
#include "RngHygieneCheck.hpp"
#include "SumArithCheck.hpp"
#include "UnorderedIterCheck.hpp"
#include "clang-tidy/ClangTidyModule.h"
#include "clang-tidy/ClangTidyModuleRegistry.h"

namespace mcgp_tidy {

class McgpTidyModule : public clang::tidy::ClangTidyModule {
 public:
  void addCheckFactories(
      clang::tidy::ClangTidyCheckFactories& CheckFactories) override {
    CheckFactories.registerCheck<SumArithCheck>("mcgp-sum-arith");
    CheckFactories.registerCheck<NarrowingCheck>("mcgp-narrowing");
    CheckFactories.registerCheck<UnorderedIterCheck>("mcgp-unordered-iter");
    CheckFactories.registerCheck<PointerOrderCheck>("mcgp-pointer-order");
    CheckFactories.registerCheck<RngHygieneCheck>("mcgp-rng-hygiene");
  }
};

}  // namespace mcgp_tidy

namespace clang {
namespace tidy {

static ClangTidyModuleRegistry::Add<::mcgp_tidy::McgpTidyModule> kRegister(
    "mcgp-module",
    "Project checks for the mcgp determinism and overflow-safety "
    "contracts.");

// Referenced symbol keeping the registration object file alive under
// aggressive linkers.
volatile int McgpTidyModuleAnchorSource = 0;

}  // namespace tidy
}  // namespace clang
