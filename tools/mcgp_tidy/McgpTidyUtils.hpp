// Shared helpers for the mcgp-tidy checks.
//
// Two deliberate constraints shape this file:
//  - String work happens on std::string, not llvm::StringRef, because the
//    StringRef predicate surface changed across the LLVM majors we support
//    (endswith was removed in favor of ends_with in LLVM 18).
//  - Type questions are answered by walking the sugar chain one
//    desugaring step at a time instead of jumping to the canonical type,
//    so `auto`, template substitution, elaborated types, and nested
//    typedefs all stay visible. That per-step walk is the whole point of
//    these checks: the regex linter (tools/mcgp_lint) only sees spelled
//    declarations, while `sum_t` reaches most use sites through sugar.
#ifndef MCGP_TOOLS_MCGP_TIDY_MCGP_TIDY_UTILS_HPP
#define MCGP_TOOLS_MCGP_TIDY_MCGP_TIDY_UTILS_HPP

#include <string>

#include "clang/AST/Decl.h"
#include "clang/AST/DeclCXX.h"
#include "clang/AST/Type.h"
#include "clang/Basic/IdentifierTable.h"
#include "clang/Basic/SourceLocation.h"
#include "clang/Basic/SourceManager.h"

namespace mcgp_tidy {

inline bool endsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// True when `dir` appears as a directory prefix somewhere in `path`
// ("src/core/" matches both "/repo/src/core/x.cpp" and "src/core/x.cpp").
// The fixture tree mimics the real layout (fixtures/src/core/...), so the
// same predicate scopes both production code and the fixture suite.
inline bool pathHasDir(const std::string& path, const std::string& dir) {
  return ("/" + path).find("/" + dir) != std::string::npos;
}

// Path of the file holding `loc` (expansion location), or "" when invalid.
inline std::string fileOf(const clang::SourceManager& sm,
                          clang::SourceLocation loc) {
  if (loc.isInvalid()) return std::string();
  return sm.getFilename(sm.getExpansionLoc(loc)).str();
}

// Does the sugar chain of `t` pass through a typedef spelled `name`?
// Deduced `auto` is stepped into explicitly; everything else (typedefs,
// elaborated types, template parameter substitution) is peeled with
// single-step desugaring until the canonical type is reached.
inline bool typeIsTypedefNamed(clang::QualType t, const char* name) {
  t = t.getNonReferenceType();
  for (int depth = 0; depth < 64 && !t.isNull(); ++depth) {
    const clang::Type* ty = t.getTypePtr();
    if (const auto* td = llvm::dyn_cast<clang::TypedefType>(ty)) {
      const clang::TypedefNameDecl* decl = td->getDecl();
      if (decl != nullptr && decl->getName() == name) return true;
    } else if (const auto* at = llvm::dyn_cast<clang::AutoType>(ty)) {
      if (!at->isDeduced() || at->getDeducedType().isNull()) return false;
      t = at->getDeducedType().getNonReferenceType();
      continue;
    }
    const clang::QualType next =
        ty->getLocallyUnqualifiedSingleStepDesugaredType();
    if (next.getTypePtr() == ty) return false;  // canonical: no sugar left
    t = next;
  }
  return false;
}

// The project's 64-bit accumulator type (src/support/types.hpp).
inline bool isSumT(clang::QualType t) {
  return typeIsTypedefNamed(t, "sum_t");
}

// Canonical class behind `t`, looking through references and one level of
// pointer (so `m->begin()` resolves the same as `m.begin()`).
inline const clang::CXXRecordDecl* classOf(clang::QualType t) {
  if (t.isNull()) return nullptr;
  t = t.getNonReferenceType();
  if (t->isPointerType()) t = t->getPointeeType();
  return t.getCanonicalType()->getAsCXXRecordDecl();
}

// Is `rd` a class in namespace std whose (canonical) name is in `names`?
// Matching canonical names means every alias is covered for free:
// std::mt19937 is mersenne_twister_engine, knuth_b is shuffle_order_engine.
template <std::size_t N>
bool isStdClassNamed(const clang::CXXRecordDecl* rd,
                     const char* const (&names)[N]) {
  if (rd == nullptr || !rd->isInStdNamespace()) return false;
  const clang::IdentifierInfo* id = rd->getIdentifier();
  if (id == nullptr) return false;
  for (const char* name : names) {
    if (id->getName() == name) return true;
  }
  return false;
}

}  // namespace mcgp_tidy

#endif  // MCGP_TOOLS_MCGP_TIDY_MCGP_TIDY_UTILS_HPP
