#include "NarrowingCheck.hpp"

#include <string>

#include "McgpTidyUtils.hpp"
#include "clang/AST/ASTContext.h"
#include "clang/AST/Expr.h"
#include "clang/ASTMatchers/ASTMatchers.h"

namespace mcgp_tidy {

using clang::CastExpr;
using clang::QualType;
using clang::SourceLocation;
using clang::SourceManager;
using clang::ast_matchers::explicitCastExpr;
using clang::ast_matchers::hasCastKind;
using clang::ast_matchers::implicitCastExpr;
using clang::ast_matchers::MatchFinder;

namespace {

bool exemptFile(const SourceManager& sm, SourceLocation loc) {
  const std::string file = fileOf(sm, loc);
  return file.empty() || endsWith(file, "support/check.hpp");
}

}  // namespace

void NarrowingCheck::registerMatchers(MatchFinder* Finder) {
  Finder->addMatcher(explicitCastExpr().bind("cast"), this);
  // Implicit narrowing cannot survive the -Wconversion -Werror build, but
  // the check still rejects it so the contract holds in exploratory
  // builds configured with MCGP_WERROR=OFF.
  Finder->addMatcher(
      implicitCastExpr(hasCastKind(clang::CK_IntegralCast)).bind("cast"),
      this);
}

void NarrowingCheck::check(const MatchFinder::MatchResult& Result) {
  const auto* cast = Result.Nodes.getNodeAs<CastExpr>("cast");
  if (cast == nullptr) return;
  if (exemptFile(*Result.SourceManager, cast->getBeginLoc())) return;

  // The conversion's immediate source must carry sum_t sugar; the
  // destination must be a strictly narrower integer. Width comparison on
  // the canonical types keeps bool, floating, and same-width conversions
  // (e.g. sum_t -> std::int64_t, sum_t -> double) out of scope.
  const QualType src = cast->getSubExpr()->getType();
  const QualType dst = cast->getType();
  if (!isSumT(src)) return;
  if (dst.isNull() || !dst->isIntegerType() || dst->isBooleanType()) return;
  const clang::ASTContext& ctx = *Result.Context;
  if (ctx.getTypeSize(dst) >= ctx.getTypeSize(src)) return;
  diag(cast->getBeginLoc(),
       "narrowing %0 to %1 discards sum_t range; use checked_narrow from "
       "support/check.hpp")
      << src << dst;
}

}  // namespace mcgp_tidy
