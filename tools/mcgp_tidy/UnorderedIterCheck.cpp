#include "UnorderedIterCheck.hpp"

#include <string>

#include "McgpTidyUtils.hpp"
#include "clang/AST/DeclCXX.h"
#include "clang/AST/Expr.h"
#include "clang/AST/ExprCXX.h"
#include "clang/AST/StmtCXX.h"
#include "clang/ASTMatchers/ASTMatchers.h"

namespace mcgp_tidy {

using clang::CXXForRangeStmt;
using clang::CXXMemberCallExpr;
using clang::CXXMethodDecl;
using clang::CXXRecordDecl;
using clang::Expr;
using clang::SourceLocation;
using clang::SourceManager;
using clang::VarDecl;
using clang::ast_matchers::cxxForRangeStmt;
using clang::ast_matchers::hasInitializer;
using clang::ast_matchers::isImplicit;
using clang::ast_matchers::MatchFinder;
using clang::ast_matchers::unless;
using clang::ast_matchers::varDecl;

namespace {

const char* const kUnorderedContainers[] = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

bool inScope(const SourceManager& sm, SourceLocation loc) {
  return pathHasDir(fileOf(sm, loc), "src/core/");
}

// The unordered container behind `e`, or nullptr.
const CXXRecordDecl* unorderedClassOf(const Expr* e) {
  if (e == nullptr) return nullptr;
  const CXXRecordDecl* rd = classOf(e->getType());
  return isStdClassNamed(rd, kUnorderedContainers) ? rd : nullptr;
}

}  // namespace

void UnorderedIterCheck::registerMatchers(MatchFinder* Finder) {
  Finder->addMatcher(cxxForRangeStmt().bind("range"), this);
  // Explicit iterator loops announce themselves with a declaration
  // initialized from begin()/end(); matching the declaration (and not the
  // member call itself) keeps the desugared begin/end of a range-for from
  // reporting the same loop twice.
  Finder->addMatcher(
      varDecl(unless(isImplicit()), hasInitializer(clang::ast_matchers::expr()))
          .bind("iter"),
      this);
}

void UnorderedIterCheck::check(const MatchFinder::MatchResult& Result) {
  const SourceManager& sm = *Result.SourceManager;
  if (const auto* range = Result.Nodes.getNodeAs<CXXForRangeStmt>("range")) {
    if (!inScope(sm, range->getForLoc())) return;
    if (const CXXRecordDecl* rd = unorderedClassOf(range->getRangeInit())) {
      diag(range->getForLoc(),
           "iteration order of 'std::%0' is nondeterministic; src/core/ "
           "must traverse ordered containers or sorted snapshots")
          << rd->getName();
    }
    return;
  }
  const auto* iter = Result.Nodes.getNodeAs<VarDecl>("iter");
  if (iter == nullptr || !inScope(sm, iter->getLocation())) return;
  const Expr* init = iter->getInit();
  if (init == nullptr) return;
  const auto* call =
      llvm::dyn_cast<CXXMemberCallExpr>(init->IgnoreParenImpCasts());
  if (call == nullptr) return;
  const CXXMethodDecl* method = call->getMethodDecl();
  if (method == nullptr) return;
  // getIdentifier() is null for operators and conversion functions, whose
  // names are not plain identifiers.
  const clang::IdentifierInfo* id = method->getIdentifier();
  if (id == nullptr) return;
  const llvm::StringRef name = id->getName();
  if (name != "begin" && name != "cbegin" && name != "end" && name != "cend") {
    return;
  }
  if (const CXXRecordDecl* rd =
          unorderedClassOf(call->getImplicitObjectArgument())) {
    diag(iter->getLocation(),
         "iterator over 'std::%0' visits elements in nondeterministic "
         "order; src/core/ must traverse ordered containers or sorted "
         "snapshots")
        << rd->getName();
  }
}

}  // namespace mcgp_tidy
