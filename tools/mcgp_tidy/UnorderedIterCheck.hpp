// mcgp-unordered-iter: traversal of std unordered containers inside
// src/core/ — range-for over the container, or iterators obtained from
// begin()/cbegin()/end()/cend().
//
// Hash-bucket iteration order depends on libstdc++/libc++ internals, the
// insertion history, and the allocator, so any partitioning decision fed
// by such a traversal breaks the bit-identical determinism contract
// (DESIGN §determinism). Point lookups (find/count/contains) are fine and
// are not matched. Scope is the algorithmic core only; tooling and tests
// outside src/core/ may iterate unordered containers freely.
#ifndef MCGP_TOOLS_MCGP_TIDY_UNORDERED_ITER_CHECK_HPP
#define MCGP_TOOLS_MCGP_TIDY_UNORDERED_ITER_CHECK_HPP

#include "clang-tidy/ClangTidyCheck.h"

namespace mcgp_tidy {

class UnorderedIterCheck : public clang::tidy::ClangTidyCheck {
 public:
  UnorderedIterCheck(clang::StringRef Name,
                     clang::tidy::ClangTidyContext* Context)
      : ClangTidyCheck(Name, Context) {}
  void registerMatchers(clang::ast_matchers::MatchFinder* Finder) override;
  void check(
      const clang::ast_matchers::MatchFinder::MatchResult& Result) override;
};

}  // namespace mcgp_tidy

#endif  // MCGP_TOOLS_MCGP_TIDY_UNORDERED_ITER_CHECK_HPP
