// Stand-in for src/support/random.cpp, the one translation unit allowed
// to touch standard RNG machinery. mcgp-rng-hygiene keys its exemption on
// the "support/random.cpp" path suffix, so every line here must stay
// silent.
#include <random>

unsigned hardware_entropy() {
  std::random_device rd;  // exempt here
  return rd();
}

std::mt19937 reference_engine(unsigned seed) {
  std::mt19937 gen(seed);  // exempt here
  return gen;
}
