// Stand-in for src/support/check.hpp, the one file allowed to perform raw
// sum_t arithmetic and raw narrowing (it implements the checked_*
// helpers). mcgp-sum-arith and mcgp-narrowing key their exemption on the
// "support/check.hpp" path suffix, so every line here must stay silent.
#pragma once

#include <cstdint>

using idx_t = std::int32_t;
using sum_t = std::int64_t;

inline sum_t raw_add(sum_t a, sum_t b) {
  return a + b;  // exempt: this is where checked_add would live
}

inline sum_t raw_increment(sum_t a) {
  ++a;  // exempt
  return a;
}

inline idx_t raw_narrow(sum_t v) {
  return static_cast<idx_t>(v);  // exempt: checked_narrow's truncation
}
