// mcgp-pointer-order fixtures: ordering decisions keyed by raw pointer
// value — relational comparisons and pointer-keyed std::set/std::map —
// are address-dependent under ASLR and therefore nondeterministic.
#include <map>
#include <set>

#include "mcgp_fixture_types.hpp"

struct Node {
  idx_t id;
};

bool bad_relational(const Node* a, const Node* b) {
  return a < b;  // TIDY-EXPECT: mcgp-pointer-order
}

struct Scratch {
  std::set<Node*> by_address;  // TIDY-EXPECT: mcgp-pointer-order
};

void bad_map_key() {
  std::map<const Node*, int> ranks;  // TIDY-EXPECT: mcgp-pointer-order
  (void)ranks;
}

bool ok_identity(const Node* a, const Node* b) {
  return a == b;  // identity tests are deterministic
}

bool ok_stable_id(const Node& a, const Node& b) {
  return a.id < b.id;  // keying by stable id is the sanctioned pattern
}

void ok_value_keys() {
  std::set<idx_t> ids;
  std::map<idx_t, int> ranks;
  (void)ids;
  (void)ranks;
}
