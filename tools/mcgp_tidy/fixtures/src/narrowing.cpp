// mcgp-narrowing fixtures: any conversion that truncates sum_t to a
// narrower integer without going through checked_narrow is flagged,
// whether it is an explicit cast or an implicit conversion.
#include <cstdint>

#include "mcgp_fixture_types.hpp"

idx_t bad_static(sum_t v) {
  return static_cast<idx_t>(v);  // TIDY-EXPECT: mcgp-narrowing
}

wgt_t bad_cstyle(sum_t v) {
  return (wgt_t)v;  // TIDY-EXPECT: mcgp-narrowing
}

int bad_implicit(sum_t v) {
  int truncated = v;  // TIDY-EXPECT: mcgp-narrowing
  return truncated;
}

idx_t bad_through_auto(sum_t v) {
  auto laundered = v;                    // still sum_t behind the sugar
  return static_cast<idx_t>(laundered);  // TIDY-EXPECT: mcgp-narrowing
}

sum_t negatives(sum_t v, idx_t i) {
  const wgt_t w = checked_narrow<wgt_t>(v);  // sanctioned route
  const double d = static_cast<double>(v);   // floating: not narrowing
  const sum_t widened = i;                   // widening: fine
  const auto same = static_cast<std::int64_t>(v);  // same width: fine
  if (d > 0.0 && w > 0) return checked_add(widened, same);
  return v;
}
