// mcgp-rng-hygiene fixtures: standard RNG engines and std::random_device
// must not appear outside support/random.cpp. Canonical-name matching
// covers every alias (mt19937 is mersenne_twister_engine, knuth_b is
// shuffle_order_engine, default_random_engine is library-defined).
#include <cstdint>
#include <random>

#include "mcgp_fixture_types.hpp"

unsigned bad_device() {
  std::random_device rd;  // TIDY-EXPECT: mcgp-rng-hygiene
  return rd();
}

std::uint32_t bad_engine(unsigned seed) {
  std::mt19937 gen(seed);  // TIDY-EXPECT: mcgp-rng-hygiene
  return gen();
}

struct Sampler {
  std::default_random_engine engine;  // TIDY-EXPECT: mcgp-rng-hygiene
};

std::uint64_t bad_temporary() {
  return std::mt19937_64{7}();  // TIDY-EXPECT: mcgp-rng-hygiene
}

std::uint32_t bad_alias(unsigned seed) {
  std::knuth_b gen(seed);  // TIDY-EXPECT: mcgp-rng-hygiene
  return gen();
}

idx_t ok_no_engine(idx_t raw) {
  return raw ^ 0x5bd1;  // plain integer mixing involves no std engine
}
