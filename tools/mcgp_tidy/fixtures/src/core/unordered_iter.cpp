// mcgp-unordered-iter fixtures: this file lives under src/core/ (the
// fixture tree mimics the real layout), so traversals of unordered
// containers must be flagged — including through type aliases, member
// typedefs, and explicit iterators. Point lookups and ordered containers
// stay silent.
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "mcgp_fixture_types.hpp"

using Cache = std::unordered_map<int, int>;

int range_for(const std::unordered_map<int, int>& m) {
  int s = 0;
  for (const auto& kv : m) {  // TIDY-EXPECT: mcgp-unordered-iter
    s += kv.second;
  }
  return s;
}

int through_alias(const Cache& c) {
  int s = 0;
  for (const auto& kv : c) {  // TIDY-EXPECT: mcgp-unordered-iter
    s += kv.second;
  }
  return s;
}

struct Holder {
  using Live = std::unordered_set<int>;
  Live live;
};

int member_typedef(const Holder& h) {
  int s = 0;
  for (const int v : h.live) {  // TIDY-EXPECT: mcgp-unordered-iter
    s += v;
  }
  return s;
}

int explicit_iterator(const std::unordered_map<int, int>& m) {
  int s = 0;
  // TIDY-EXPECT: mcgp-unordered-iter
  for (auto it = m.cbegin(); it != m.cend(); ++it) {
    s += it->second;
  }
  return s;
}

bool point_lookup(const std::unordered_map<int, int>& m, int k) {
  return m.find(k) != m.end();  // lookups do not observe bucket order
}

int ordered_is_fine(const std::map<int, int>& m) {
  int s = 0;
  for (const auto& kv : m) {  // deterministic order
    s += kv.second;
  }
  return s;
}
