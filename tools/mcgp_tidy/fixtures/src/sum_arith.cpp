// mcgp-sum-arith fixtures: raw arithmetic on sum_t must be flagged even
// when the type arrives through auto, a template parameter, or a
// container value_type — the cases the regex linter provably misses.
#include <vector>

#include "mcgp_fixture_types.hpp"

sum_t plain(sum_t a, sum_t b) {
  return a + b;  // TIDY-EXPECT: mcgp-sum-arith
}

sum_t mixed_operand(sum_t a, int n) {
  return a * n;  // TIDY-EXPECT: mcgp-sum-arith
}

sum_t through_auto(sum_t a) {
  auto laundered = a;     // still sum_t behind the sugar
  return laundered - 1;   // TIDY-EXPECT: mcgp-sum-arith
}

template <class T>
T generic_sum(T a, T b) {
  return a + b;  // TIDY-EXPECT: mcgp-sum-arith
}
template sum_t generic_sum<sum_t>(sum_t, sum_t);

sum_t through_container(const std::vector<sum_t>& xs) {
  sum_t total = 0;
  for (const auto& x : xs) {
    total += x;  // TIDY-EXPECT: mcgp-sum-arith
  }
  ++total;  // TIDY-EXPECT: mcgp-sum-arith
  return total;
}

sum_t negatives(sum_t a, sum_t b, idx_t i, double scale) {
  const sum_t ok = checked_add(a, b);               // sanctioned route
  const bool cmp = a < b;                           // comparison: fine
  const double f = static_cast<double>(a) * scale;  // floating arithmetic
  i += 1;                                           // idx_t, not sum_t
  if (cmp && f > 0.0 && i > 0) return ok;
  return checked_sub(a, static_cast<sum_t>(i));
}
