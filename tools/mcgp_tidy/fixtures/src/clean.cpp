// Negative fixture: disciplined code produces zero findings from every
// mcgp-* check. Also pins two scoping decisions: unordered iteration is
// permitted outside src/core/, and checked_* routing satisfies both the
// arithmetic and the narrowing rules.
#include <unordered_map>
#include <vector>

#include "mcgp_fixture_types.hpp"

int unordered_outside_core(const std::unordered_map<int, int>& m) {
  int s = 0;
  for (const auto& kv : m) {  // not src/core/: tooling may iterate freely
    s += kv.second;
  }
  return s;
}

sum_t disciplined_total(const std::vector<wgt_t>& ws) {
  sum_t total = 0;
  for (const wgt_t w : ws) {
    total = checked_add(total, w);
  }
  return total;
}

wgt_t disciplined_narrow(sum_t v) { return checked_narrow<wgt_t>(v); }
