// Minimal stand-ins for src/support/types.hpp and src/support/check.hpp
// so the fixtures compile standalone (clang-tidy parses each fixture as a
// real translation unit). Only declarations: the fixtures are parsed,
// never linked.
//
// The directory layout under fixtures/ mimics the real tree on purpose —
// the checks scope themselves by path suffix (support/check.hpp,
// support/random.cpp) and directory (src/core/), so the fixtures exercise
// the exact same scoping logic as production code.
#pragma once

#include <cstdint>

using idx_t = std::int32_t;
using wgt_t = std::int32_t;
using sum_t = std::int64_t;

sum_t checked_add(sum_t a, sum_t b);
sum_t checked_sub(sum_t a, sum_t b);
sum_t checked_mul(sum_t a, sum_t b);
template <class To>
To checked_narrow(sum_t v);
