#!/usr/bin/env python3
"""Fixture round-trip and driver self-test for the mcgp-tidy plugin.

Default mode mirrors tools/mcgp_lint/test_lint.py: every fixture file
under fixtures/src/ is processed with only the mcgp-* checks enabled, and
the exact set of (line, check) findings must equal the TIDY-EXPECT
markers in the file. A marker sits either on the flagged line itself:

    return a + b;  // TIDY-EXPECT: mcgp-sum-arith

or, when the flagged line has no room, alone on the preceding line, in
which case it binds to the next non-marker line:

    // TIDY-EXPECT: mcgp-unordered-iter
    for (auto it = m.cbegin(); it != m.cend(); ++it) {

Files without markers (the support/ stand-ins, clean.cpp) must produce
zero findings — that is what proves the path-scoped exemptions hold.

--selftest instead verifies the sweep driver end to end: a scratch
compile_commands.json with one violating TU must make run_mcgp_tidy.py
exit nonzero, and a clean TU must make it exit zero.
"""

import argparse
import json
import os
import re
import subprocess
import sys
import tempfile

HERE = os.path.dirname(os.path.abspath(__file__))
FIXTURES = os.path.join(HERE, "fixtures")
MARKER_RE = re.compile(r"//\s*TIDY-EXPECT:\s*([a-z0-9,\s\-]+)")
FINDING_RE = re.compile(r"^(.*?):(\d+):\d+: (?:warning|error): .*\[(.*)\]\s*$")


def find_clang_tidy(explicit):
    import shutil
    if explicit:
        return explicit
    for name in (["clang-tidy"] +
                 ["clang-tidy-%d" % v for v in range(21, 13, -1)]):
        path = shutil.which(name)
        if path:
            return path
    return None


def expected_findings(path):
    """Parse TIDY-EXPECT markers into a set of (line, check)."""
    expected = set()
    pending = []  # checks from marker-only lines awaiting their target
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            m = MARKER_RE.search(line)
            checks = []
            if m:
                checks = [c.strip() for c in m.group(1).split(",")
                          if c.strip()]
            if m and line.strip().startswith("//"):
                pending.extend(checks)
                continue
            for check in pending:
                expected.add((lineno, check))
            pending = []
            for check in checks:
                expected.add((lineno, check))
    return expected


def run_fixture(tidy, plugin, path):
    extra = ["-std=c++17", "-w", "-I", FIXTURES]
    if path.endswith((".hpp", ".h")):
        extra = ["-x", "c++"] + extra  # parse headers as C++ TUs
    cmd = [tidy, "-load", plugin, "--quiet", "--checks=-*,mcgp-*", path,
           "--"] + extra
    proc = subprocess.run(cmd, stdout=subprocess.PIPE,
                          stderr=subprocess.PIPE, text=True)
    found = set()
    hard_error = False
    for line in proc.stdout.splitlines():
        m = FINDING_RE.match(line)
        if not m:
            continue
        if os.path.abspath(m.group(1)) != os.path.abspath(path):
            # Finding in another file (stub header): attribute it to the
            # sentinel line 0 so the comparison fails loudly — fixtures
            # are written so this never happens.
            found.add((0, m.group(3)))
            continue
        for check in m.group(3).split(","):
            check = check.strip()
            if check.startswith("mcgp-"):
                found.add((int(m.group(2)), check))
    if "error: " in proc.stderr and "clang-diagnostic" not in proc.stderr:
        hard_error = True
    return found, hard_error, proc


def fixture_mode(tidy, plugin):
    fixture_root = os.path.join(FIXTURES, "src")
    files = []
    for dirpath, _dirnames, filenames in os.walk(fixture_root):
        for name in sorted(filenames):
            if name.endswith((".cpp", ".hpp")):
                files.append(os.path.join(dirpath, name))
    if not files:
        sys.exit("error: no fixtures under %s" % fixture_root)

    failures = 0
    for path in sorted(files):
        rel = os.path.relpath(path, FIXTURES)
        expected = expected_findings(path)
        found, hard_error, proc = run_fixture(tidy, plugin, path)
        if hard_error:
            failures += 1
            print("FAIL %s: clang-tidy reported a hard error" % rel)
            print(proc.stdout.strip())
            print(proc.stderr.strip(), file=sys.stderr)
            continue
        if found != expected:
            failures += 1
            print("FAIL %s" % rel)
            for line, check in sorted(expected - found):
                print("  missing: line %d [%s]" % (line, check))
            for line, check in sorted(found - expected):
                print("  unexpected: line %d [%s]" % (line, check))
        else:
            print("ok   %s (%d expected findings)" % (rel, len(expected)))
    if failures:
        print("mcgp-tidy fixtures: FAIL (%d file(s))" % failures)
        sys.exit(1)
    print("mcgp-tidy fixtures: OK (%d file(s))" % len(files))


BAD_TU = """using sum_t = long long;
sum_t f(sum_t a, sum_t b) { return a + b; }
"""

CLEAN_TU = """using sum_t = long long;
sum_t checked_add(sum_t a, sum_t b);
sum_t f(sum_t a, sum_t b) { return checked_add(a, b); }
"""


def selftest_mode(tidy, plugin):
    driver = os.path.join(HERE, "run_mcgp_tidy.py")
    failures = 0
    for label, code, want_nonzero in (("violation", BAD_TU, True),
                                      ("clean", CLEAN_TU, False)):
        with tempfile.TemporaryDirectory() as tmp:
            src_dir = os.path.join(tmp, "src")
            os.makedirs(src_dir)
            tu = os.path.join(src_dir, "case.cpp")
            with open(tu, "w", encoding="utf-8") as f:
                f.write(code)
            db = [{"directory": tmp,
                   "command": "c++ -std=c++17 -c %s" % tu,
                   "file": tu}]
            with open(os.path.join(tmp, "compile_commands.json"), "w",
                      encoding="utf-8") as f:
                json.dump(db, f)
            proc = subprocess.run(
                [sys.executable, driver, "-p", tmp, "--plugin", plugin,
                 "--clang-tidy", tidy, "--source-root", tmp, "src"],
                stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
            nonzero = proc.returncode != 0
            if nonzero != want_nonzero:
                failures += 1
                print("FAIL selftest %s: exit %d (want %s)"
                      % (label, proc.returncode,
                         "nonzero" if want_nonzero else "zero"))
                print(proc.stdout.strip())
            else:
                print("ok   selftest %s: exit %d" % (label, proc.returncode))
    if failures:
        print("mcgp-tidy driver selftest: FAIL")
        sys.exit(1)
    print("mcgp-tidy driver selftest: OK")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--clang-tidy", default=None)
    ap.add_argument("--plugin", required=True,
                    help="path to the built mcgp_tidy.so")
    ap.add_argument("--selftest", action="store_true",
                    help="run the driver exit-code self-test instead of "
                         "the fixture round-trip")
    args = ap.parse_args()

    tidy = find_clang_tidy(args.clang_tidy)
    if tidy is None:
        sys.exit("error: no clang-tidy on PATH; pass --clang-tidy")
    plugin = os.path.abspath(args.plugin)
    if not os.path.exists(plugin):
        sys.exit("error: plugin not found: %s" % plugin)

    if args.selftest:
        selftest_mode(tidy, plugin)
    else:
        fixture_mode(tidy, plugin)


if __name__ == "__main__":
    main()
