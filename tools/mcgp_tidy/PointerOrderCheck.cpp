#include "PointerOrderCheck.hpp"

#include <string>

#include "McgpTidyUtils.hpp"
#include "clang/AST/Decl.h"
#include "clang/AST/DeclCXX.h"
#include "clang/AST/DeclTemplate.h"
#include "clang/AST/Expr.h"
#include "clang/ASTMatchers/ASTMatchers.h"

namespace mcgp_tidy {

using clang::BinaryOperator;
using clang::ClassTemplateSpecializationDecl;
using clang::CXXRecordDecl;
using clang::DeclaratorDecl;
using clang::QualType;
using clang::SourceLocation;
using clang::SourceManager;
using clang::TemplateArgument;
using clang::ast_matchers::binaryOperator;
using clang::ast_matchers::fieldDecl;
using clang::ast_matchers::hasAnyOperatorName;
using clang::ast_matchers::isImplicit;
using clang::ast_matchers::MatchFinder;
using clang::ast_matchers::unless;
using clang::ast_matchers::varDecl;

namespace {

const char* const kOrderedContainers[] = {"set", "map", "multiset",
                                          "multimap"};

bool inScope(const SourceManager& sm, SourceLocation loc) {
  return pathHasDir(fileOf(sm, loc), "src/");
}

bool isRawPointer(QualType t) {
  return !t.isNull() && t.getCanonicalType()->isPointerType();
}

// The std ordered container behind `t` whose key template argument is a
// raw pointer (default std::less<T*> → address order), or nullptr.
const CXXRecordDecl* pointerKeyedContainer(QualType t) {
  const CXXRecordDecl* rd = classOf(t);
  if (!isStdClassNamed(rd, kOrderedContainers)) return nullptr;
  const auto* spec = llvm::dyn_cast<ClassTemplateSpecializationDecl>(rd);
  if (spec == nullptr || spec->getTemplateArgs().size() == 0) return nullptr;
  const TemplateArgument& key = spec->getTemplateArgs().get(0);
  if (key.getKind() != TemplateArgument::Type) return nullptr;
  return isRawPointer(key.getAsType()) ? rd : nullptr;
}

}  // namespace

void PointerOrderCheck::registerMatchers(MatchFinder* Finder) {
  Finder->addMatcher(
      binaryOperator(hasAnyOperatorName("<", ">", "<=", ">=")).bind("cmp"),
      this);
  Finder->addMatcher(varDecl(unless(isImplicit())).bind("decl"), this);
  Finder->addMatcher(fieldDecl().bind("decl"), this);
}

void PointerOrderCheck::check(const MatchFinder::MatchResult& Result) {
  const SourceManager& sm = *Result.SourceManager;
  if (const auto* cmp = Result.Nodes.getNodeAs<BinaryOperator>("cmp")) {
    if (!inScope(sm, cmp->getOperatorLoc())) return;
    if (!isRawPointer(cmp->getLHS()->getType()) ||
        !isRawPointer(cmp->getRHS()->getType())) {
      return;
    }
    diag(cmp->getOperatorLoc(),
         "relational comparison of raw pointers orders by address "
         "(ASLR-dependent); compare indices or stable ids instead");
    return;
  }
  const auto* decl = Result.Nodes.getNodeAs<DeclaratorDecl>("decl");
  if (decl == nullptr || !inScope(sm, decl->getLocation())) return;
  if (const CXXRecordDecl* rd = pointerKeyedContainer(decl->getType())) {
    diag(decl->getLocation(),
         "'std::%0' keyed by a raw pointer orders elements by address "
         "(ASLR-dependent); key by index or stable id instead")
        << rd->getName();
  }
}

}  // namespace mcgp_tidy
