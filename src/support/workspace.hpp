// Reusable scratch buffers for the multilevel pipeline.
//
// Every level of coarsening and every recursive-bisection split used to
// allocate its own permutation / dense-map / selection vectors; a
// Workspace owns those buffers once and the pipeline reuses them down the
// hierarchy, turning per-level allocations into amortized O(1) capacity
// reuse. The dense maps (`pos`, `global_to_local`) follow the classic
// sparse-reset discipline: they are all -1 between uses and every user
// restores the entries it touched, so growing them is the only cost ever
// paid.
//
// A Workspace is single-threaded state. Concurrent tasks each acquire
// their own from a WorkspacePool (mutex-guarded free list, grows on
// demand); the pool hands a buffer to one task at a time, so workspace
// contents never cross threads. Workspace reuse is invisible to results —
// buffers carry no information between uses.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "support/thread_annotations.hpp"
#include "support/types.hpp"

namespace mcgp {

struct Workspace {
  std::vector<idx_t> perm;    ///< matching visit order
  std::vector<idx_t> match;   ///< matching scratch of coarsen_graph
  std::vector<idx_t> first;   ///< constituent lists of contract_graph
  std::vector<idx_t> second;
  std::vector<char> select;   ///< side mask of the RB driver
  std::vector<idx_t> proj;    ///< uncoarsening projection ping-pong buffer

  /// Dense coarse-neighbor position map (contract_graph). All -1 between
  /// uses; users restore the entries they touch.
  std::vector<idx_t>& pos_map(std::size_t n) {
    if (pos_.size() < n) pos_.resize(n, idx_t{-1});
    return pos_;
  }

  /// Dense global-to-local vertex map (induced_subgraph). Same all--1
  /// discipline as pos_map().
  std::vector<idx_t>& g2l_map(std::size_t n) {
    if (g2l_.size() < n) g2l_.resize(n, idx_t{-1});
    return g2l_;
  }

  /// Bytes of scratch capacity this workspace currently holds (telemetry;
  /// only meaningful while no task is mutating the workspace).
  std::int64_t footprint_bytes() const {
    const std::size_t b = perm.capacity() * sizeof(idx_t) +
                          match.capacity() * sizeof(idx_t) +
                          first.capacity() * sizeof(idx_t) +
                          second.capacity() * sizeof(idx_t) +
                          select.capacity() * sizeof(char) +
                          proj.capacity() * sizeof(idx_t) +
                          pos_.capacity() * sizeof(idx_t) +
                          g2l_.capacity() * sizeof(idx_t);
    return static_cast<std::int64_t>(b);
  }

 private:
  std::vector<idx_t> pos_;
  std::vector<idx_t> g2l_;
};

/// Thread-safe grow-on-demand pool of Workspaces. Acquire returns an RAII
/// lease that returns the workspace to the free list on destruction.
class WorkspacePool {
 public:
  class Lease {
   public:
    Lease(WorkspacePool* pool, Workspace* ws) : pool_(pool), ws_(ws) {}
    ~Lease() {
      if (pool_ != nullptr) pool_->release(ws_);
    }

    Lease(Lease&& o) noexcept : pool_(o.pool_), ws_(o.ws_) {
      o.pool_ = nullptr;
      o.ws_ = nullptr;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    Lease& operator=(Lease&&) = delete;

    Workspace& operator*() const { return *ws_; }
    Workspace* operator->() const { return ws_; }
    Workspace* get() const { return ws_; }

   private:
    WorkspacePool* pool_;
    Workspace* ws_;
  };

  Lease acquire() {
    MutexLock lk(mu_);
    if (free_.empty()) {
      owned_.push_back(std::make_unique<Workspace>());
      free_.push_back(owned_.back().get());
    }
    Workspace* ws = free_.back();
    free_.pop_back();
    return Lease(this, ws);
  }

  /// Number of workspaces ever created by this pool.
  std::int64_t size() const {
    MutexLock lk(mu_);
    return static_cast<std::int64_t>(owned_.size());
  }

  /// Total scratch capacity across all pooled workspaces (telemetry).
  /// Only meaningful once every lease has been returned — the lock
  /// protects the pool's lists, not the leased workspaces themselves.
  std::int64_t footprint_bytes() const {
    MutexLock lk(mu_);
    std::int64_t total = 0;
    for (const std::unique_ptr<Workspace>& ws : owned_) {
      total += ws->footprint_bytes();
    }
    return total;
  }

 private:
  friend class Lease;

  void release(Workspace* ws) {
    MutexLock lk(mu_);
    free_.push_back(ws);
  }

  mutable Mutex mu_;
  std::vector<std::unique_ptr<Workspace>> owned_ MCGP_GUARDED_BY(mu_);
  std::vector<Workspace*> free_ MCGP_GUARDED_BY(mu_);
};

}  // namespace mcgp
