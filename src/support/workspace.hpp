// Reusable scratch buffers for the multilevel pipeline.
//
// Every level of coarsening and every recursive-bisection split used to
// allocate its own permutation / dense-map / selection vectors; a
// Workspace owns those buffers once and the pipeline reuses them down the
// hierarchy, turning per-level allocations into amortized O(1) capacity
// reuse. The dense maps (`pos`, `global_to_local`) follow the classic
// sparse-reset discipline: they are all -1 between uses and every user
// restores the entries it touched, so growing them is the only cost ever
// paid.
//
// A Workspace is single-threaded state. Concurrent tasks each acquire
// their own from a WorkspacePool (mutex-guarded free list, grows on
// demand); the pool hands a buffer to one task at a time, so workspace
// contents never cross threads. Workspace reuse is invisible to results —
// buffers carry no information between uses.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "support/thread_annotations.hpp"
#include "support/types.hpp"

namespace mcgp {

struct Workspace {
  std::vector<idx_t> perm;    ///< matching visit order
  std::vector<idx_t> match;   ///< matching scratch of coarsen_graph
  std::vector<idx_t> first;   ///< constituent lists of contract_graph
  std::vector<idx_t> second;
  std::vector<char> select;   ///< side mask of the RB driver
  std::vector<idx_t> proj;    ///< uncoarsening projection ping-pong buffer
  std::vector<idx_t> proposal;  ///< handshake-matching proposal slots
  std::vector<sum_t> kconn;     ///< per-task k-way connectivity scratch
  std::vector<idx_t> ktouched;  ///< parts touched by the kconn gather

  /// Dense coarse-neighbor position map (contract_graph). All -1 between
  /// uses; users restore the entries they touch.
  std::vector<idx_t>& pos_map(std::size_t n) {
    if (pos_.size() < n) pos_.resize(n, idx_t{-1});
    return pos_;
  }

  /// Dense global-to-local vertex map (induced_subgraph). Same all--1
  /// discipline as pos_map().
  std::vector<idx_t>& g2l_map(std::size_t n) {
    if (g2l_.size() < n) g2l_.resize(n, idx_t{-1});
    return g2l_;
  }

  /// Bytes of scratch capacity this workspace currently holds (telemetry;
  /// only meaningful while no task is mutating the workspace).
  std::int64_t footprint_bytes() const {
    const std::size_t b = perm.capacity() * sizeof(idx_t) +
                          match.capacity() * sizeof(idx_t) +
                          first.capacity() * sizeof(idx_t) +
                          second.capacity() * sizeof(idx_t) +
                          select.capacity() * sizeof(char) +
                          proj.capacity() * sizeof(idx_t) +
                          proposal.capacity() * sizeof(idx_t) +
                          kconn.capacity() * sizeof(sum_t) +
                          ktouched.capacity() * sizeof(idx_t) +
                          pos_.capacity() * sizeof(idx_t) +
                          g2l_.capacity() * sizeof(idx_t);
    return static_cast<std::int64_t>(b);
  }

 private:
  friend class WorkspacePool;

  std::vector<idx_t> pos_;
  std::vector<idx_t> g2l_;
  /// This workspace's footprint as last accounted by its WorkspacePool
  /// (updated on every lease return; pool bookkeeping only).
  std::int64_t pool_noted_bytes_ = 0;
};

/// Thread-safe grow-on-demand pool of Workspaces. Acquire returns an RAII
/// lease that returns the workspace to the free list on destruction.
class WorkspacePool {
 public:
  class Lease {
   public:
    Lease(WorkspacePool* pool, Workspace* ws) : pool_(pool), ws_(ws) {}
    ~Lease() {
      if (pool_ != nullptr) pool_->release(ws_);
    }

    Lease(Lease&& o) noexcept : pool_(o.pool_), ws_(o.ws_) {
      o.pool_ = nullptr;
      o.ws_ = nullptr;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    Lease& operator=(Lease&&) = delete;

    Workspace& operator*() const { return *ws_; }
    Workspace* operator->() const { return ws_; }
    Workspace* get() const { return ws_; }

   private:
    WorkspacePool* pool_;
    Workspace* ws_;
  };

  Lease acquire() {
    MutexLock lk(mu_);
    if (free_.empty()) {
      owned_.push_back(std::make_unique<Workspace>());
      free_.push_back(owned_.back().get());
    }
    Workspace* ws = free_.back();
    free_.pop_back();
    return Lease(this, ws);
  }

  /// Number of workspaces ever created by this pool.
  std::int64_t size() const {
    MutexLock lk(mu_);
    return static_cast<std::int64_t>(owned_.size());
  }

  /// Total scratch capacity across all pooled workspaces (telemetry).
  /// Accounted at lease-return time: every release() folds the returning
  /// workspace's footprint into a running total, so the value is accurate
  /// for every workspace that has ever been returned — including while
  /// OTHER leases (e.g. parallel matching / contraction chunk tasks) are
  /// still out, which are counted at their last-returned size.
  std::int64_t footprint_bytes() const {
    MutexLock lk(mu_);
    return footprint_;
  }

 private:
  friend class Lease;

  void release(Workspace* ws) {
    // Reading the workspace outside the lock is safe: until the lease is
    // handed back below, the releasing thread still owns it exclusively.
    const std::int64_t fp = ws->footprint_bytes();
    MutexLock lk(mu_);
    footprint_ += fp - ws->pool_noted_bytes_;
    ws->pool_noted_bytes_ = fp;
    free_.push_back(ws);
  }

  mutable Mutex mu_;
  std::vector<std::unique_ptr<Workspace>> owned_ MCGP_GUARDED_BY(mu_);
  std::vector<Workspace*> free_ MCGP_GUARDED_BY(mu_);
  std::int64_t footprint_ MCGP_GUARDED_BY(mu_) = 0;
};

}  // namespace mcgp
