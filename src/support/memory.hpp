// Process memory telemetry: resident-set size (current and peak).
//
// The multilevel pipeline's footprint is dominated by the coarse-graph
// hierarchy plus the workspace pool, both of which grow with the input in
// ways no single counter inside the library can see (the allocator, the
// OS page cache, and test harness overhead all contribute). Reading the
// kernel's own accounting is the only honest number, so these helpers
// parse /proc/self/status (VmRSS / VmHWM) on Linux and fall back to
// getrusage(RUSAGE_SELF) elsewhere. Platforms with neither report -1;
// every consumer treats a negative value as "unavailable" and omits the
// field rather than recording a lie.
#pragma once

#include <cstdint>

namespace mcgp {

/// Current resident-set size in bytes, or -1 when unavailable.
std::int64_t current_rss_bytes();

/// Peak (high-water) resident-set size in bytes since process start, or
/// -1 when unavailable. Monotone over the process lifetime: a record
/// taken mid-run reflects the largest footprint reached so far, not the
/// footprint of the current phase.
std::int64_t peak_rss_bytes();

}  // namespace mcgp
