// Deterministic, seedable pseudo-random number generation.
//
// Every randomized component of the partitioner (matching order, initial
// partition seeds, tie-breaking, refinement visit order) draws from an
// explicitly passed Rng so that a whole partitioning run is reproducible
// from a single 64-bit seed.
#pragma once

#include <cstdint>
#include <vector>

#include "support/types.hpp"

namespace mcgp {

/// xoshiro256** generator seeded via SplitMix64. Small, fast, and good
/// enough statistically for combinatorial randomization (not for crypto).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initialize the state from a 64-bit seed (SplitMix64 expansion).
  void reseed(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound). Requires bound > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform idx_t in [lo, hi] inclusive. Requires lo <= hi.
  idx_t next_in(idx_t lo, idx_t hi);

  /// Uniform real in [0, 1).
  double next_real();

  /// True with probability p (clamped to [0,1]).
  bool next_bool(double p = 0.5);

  /// Derive an independent child generator (for per-component streams).
  Rng split();

 private:
  std::uint64_t s_[4];
};

/// Combine two 64-bit words into a well-mixed derived seed (SplitMix64
/// finalizer over a golden-ratio combination). Used to give every
/// independent subproblem of a run its own deterministic RNG stream:
/// seeding Rng(mix_seed(root, structural_id)) yields identical streams
/// regardless of how many threads execute the subproblems or in which
/// order, because the derivation depends only on the subproblem's
/// position, never on a shared generator's consumption history.
std::uint64_t mix_seed(std::uint64_t a, std::uint64_t b);

/// Fill `perm` with the identity permutation of size n and Fisher-Yates
/// shuffle it in place.
void random_permutation(idx_t n, std::vector<idx_t>& perm, Rng& rng);

/// Shuffle an existing vector in place.
void shuffle(std::vector<idx_t>& v, Rng& rng);

}  // namespace mcgp
