// Lightweight wall-clock timers and a named phase-timing accumulator.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "support/thread_annotations.hpp"
#include "support/types.hpp"

namespace mcgp {

/// Nanoseconds on the process-wide monotonic clock. Every wall-clock
/// consumer (WallTimer/PhaseTimes, the profiler's ProfScope, the flight
/// recorder's sample timestamps, the metrics registry) reads this one
/// helper, so their numbers are subtractable against each other: a phase
/// duration in a histogram and the same phase in a ledger record come
/// from the same clock by construction.
inline std::int64_t monotonic_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_ns_(monotonic_now_ns()) {}

  void restart() { start_ns_ = monotonic_now_ns(); }

  /// Seconds elapsed since construction or last restart().
  double seconds() const {
    return static_cast<double>(monotonic_now_ns() - start_ns_) * 1e-9;
  }

  /// Nanoseconds elapsed since construction or last restart().
  std::int64_t elapsed_ns() const { return monotonic_now_ns() - start_ns_; }

 private:
  std::int64_t start_ns_;
};

/// Accumulates per-phase timings (coarsening / initial / refinement / ...)
/// across a partitioning run. add()/get() are thread-safe so concurrent
/// subproblems of the task-parallel drivers can share one accumulator; the
/// totals then sum CPU-side time across threads, which can exceed wall
/// time. entries() is unsynchronized — read it only after parallel work
/// has been joined.
class PhaseTimes {
 public:
  PhaseTimes() = default;
  PhaseTimes(const PhaseTimes& o);
  PhaseTimes& operator=(const PhaseTimes& o);

  /// Add `seconds` to the named phase, creating it on first use.
  void add(const std::string& phase, double seconds);

  /// Total accumulated for the named phase (0 if never recorded).
  double get(const std::string& phase) const;

  /// All (phase, seconds) pairs in first-use order. Unsynchronized by
  /// contract (see class comment): callers read it only after parallel
  /// work has been joined, and a returned reference could not stay
  /// protected past the accessor anyway — hence the analysis opt-out.
  const std::vector<std::pair<std::string, double>>& entries() const
      MCGP_NO_THREAD_SAFETY_ANALYSIS {
    return entries_;
  }

  void clear() {
    MutexLock lk(mu_);
    entries_.clear();
    index_.clear();
  }

 private:
  mutable Mutex mu_;
  std::vector<std::pair<std::string, double>> entries_ MCGP_GUARDED_BY(mu_);
  /// Phase name -> position in entries_ (O(1) add/get; entries_ keeps
  /// first-use order for reporting).
  std::unordered_map<std::string, std::size_t> index_ MCGP_GUARDED_BY(mu_);
};

/// RAII helper that adds its lifetime to a PhaseTimes entry.
class ScopedPhase {
 public:
  ScopedPhase(PhaseTimes& times, std::string phase)
      : times_(times), phase_(std::move(phase)) {}
  ~ScopedPhase() { times_.add(phase_, timer_.seconds()); }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseTimes& times_;
  std::string phase_;
  WallTimer timer_;
};

}  // namespace mcgp
