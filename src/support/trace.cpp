#include "support/trace.hpp"

#include <fstream>
#include <ostream>

#include "support/json_writer.hpp"
#include "support/schema.hpp"

namespace mcgp {

TraceRecorder::ThreadLog& TraceRecorder::local_log() {
  if (std::this_thread::get_id() == home_id_) return home_;
  MutexLock lk(mu_);
  ThreadLog*& slot = aux_index_[std::this_thread::get_id()];
  if (slot == nullptr) {
    aux_.push_back(std::make_unique<ThreadLog>());
    slot = aux_.back().get();
  }
  return *slot;
}

void TraceRecorder::append_begin(ThreadLog& log, const char* name) {
  TraceEvent ev;
  ev.type = TraceEvent::Type::kBegin;
  ev.depth = log.depth;
  ev.name = name;
  ev.ts_ns = now_ns();
  log.events.push_back(std::move(ev));
  ++log.depth;
}

void TraceRecorder::append_end(ThreadLog& log, const TraceArg* args,
                               int nargs) {
  if (log.depth == 0) return;  // unmatched end: drop rather than corrupt
  --log.depth;
  TraceEvent ev;
  ev.type = TraceEvent::Type::kEnd;
  ev.depth = log.depth;
  // Name of the innermost open span (for JSONL readability).
  for (auto it = log.events.rbegin(); it != log.events.rend(); ++it) {
    if (it->type == TraceEvent::Type::kBegin && it->depth == log.depth) {
      ev.name = it->name;
      break;
    }
  }
  ev.ts_ns = now_ns();
  ev.args.assign(args, args + nargs);
  log.events.push_back(std::move(ev));
}

void TraceRecorder::begin(const char* name) { append_begin(local_log(), name); }

void TraceRecorder::end(std::initializer_list<TraceArg> args) {
  end(args.begin(), static_cast<int>(args.size()));
}

void TraceRecorder::end(const TraceArg* args, int nargs) {
  append_end(local_log(), args, nargs);
}

void TraceRecorder::instant(const char* name,
                            std::initializer_list<TraceArg> args) {
  ThreadLog& log = local_log();
  TraceEvent ev;
  ev.type = TraceEvent::Type::kInstant;
  ev.depth = log.depth;
  ev.name = name;
  ev.ts_ns = now_ns();
  ev.args.assign(args.begin(), args.end());
  log.events.push_back(std::move(ev));
}

void TraceRecorder::count(std::string_view name, std::int64_t delta) {
  local_log().counters.incr(name, delta);
}

Histogram& TraceRecorder::hist(std::string_view name) {
  return local_log().counters.hist(name);
}

CounterRegistry TraceRecorder::merged_counters() const {
  CounterRegistry merged = home_.counters;
  MutexLock lk(mu_);
  for (const auto& log : aux_) merged.merge_from(log->counters);
  return merged;
}

std::size_t TraceRecorder::num_thread_logs() const {
  MutexLock lk(mu_);
  return 1 + aux_.size();
}

void TraceRecorder::clear() {
  home_.events.clear();
  home_.counters.clear();
  home_.depth = 0;
  MutexLock lk(mu_);
  aux_.clear();
  aux_index_.clear();
}

namespace {

void write_args_object(JsonWriter& w, const std::vector<TraceArg>& args) {
  w.begin_object();
  for (const TraceArg& a : args) {
    if (a.is_float) {
      w.member(a.key, a.f);
    } else {
      w.member(a.key, a.i);
    }
  }
  w.end_object();
}

}  // namespace

void TraceRecorder::write_chrome_trace(std::ostream& out) const {
  JsonWriter w(out);
  w.begin_object();
  // Chrome's trace viewer ignores unknown top-level members, so the
  // schema stamp rides along without breaking the consumer.
  w.member("schema_version", kMcgpSchemaVersion);
  w.member("displayTimeUnit", "ms");
  w.key("traceEvents");
  w.begin_array();
  // One tid per thread log: the home thread is tid 1, auxiliary threads
  // tid 2+ in registration order. Events within a log are in emission
  // order, so every tid's B/E stream is properly nested on its own.
  MutexLock lk(mu_);
  std::int64_t tid = 1;
  const ThreadLog* home = &home_;
  auto write_log = [&](const ThreadLog& log) {
    for (const TraceEvent& ev : log.events) {
      w.begin_object();
      w.member("name", ev.name);
      w.member("cat", "mcgp");
      switch (ev.type) {
        case TraceEvent::Type::kBegin: w.member("ph", "B"); break;
        case TraceEvent::Type::kEnd: w.member("ph", "E"); break;
        case TraceEvent::Type::kInstant:
          w.member("ph", "i");
          w.member("s", "t");
          break;
      }
      // Chrome trace timestamps are microseconds (fractions allowed).
      w.member("ts", static_cast<double>(ev.ts_ns) / 1000.0);
      w.member("pid", std::int64_t{1});
      w.member("tid", tid);
      if (!ev.args.empty()) {
        w.key("args");
        write_args_object(w, ev.args);
      }
      w.end_object();
    }
    ++tid;
  };
  write_log(*home);
  for (const auto& log : aux_) write_log(*log);
  w.end_array();
  w.end_object();
  out << '\n';
}

void TraceRecorder::write_jsonl(std::ostream& out) const {
  MutexLock lk(mu_);
  std::int64_t tid = 1;
  auto write_log = [&](const ThreadLog& log) {
    for (const TraceEvent& ev : log.events) {
      JsonWriter w(out);
      w.begin_object();
      switch (ev.type) {
        case TraceEvent::Type::kBegin: w.member("type", "begin"); break;
        case TraceEvent::Type::kEnd: w.member("type", "end"); break;
        case TraceEvent::Type::kInstant: w.member("type", "instant"); break;
      }
      w.member("name", ev.name);
      w.member("ts_ns", ev.ts_ns);
      w.member("depth", std::int64_t{ev.depth});
      w.member("tid", tid);
      if (!ev.args.empty()) {
        w.key("args");
        write_args_object(w, ev.args);
      }
      w.end_object();
      out << '\n';
    }
    ++tid;
  };
  write_log(home_);
  for (const auto& log : aux_) write_log(*log);
}

bool TraceRecorder::save_chrome_trace(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write_chrome_trace(out);
  return static_cast<bool>(out);
}

bool TraceRecorder::save_jsonl(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write_jsonl(out);
  return static_cast<bool>(out);
}

}  // namespace mcgp
