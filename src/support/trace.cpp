#include "support/trace.hpp"

#include <fstream>
#include <ostream>

#include "support/json_writer.hpp"

namespace mcgp {

void TraceRecorder::begin(const char* name) {
  TraceEvent ev;
  ev.type = TraceEvent::Type::kBegin;
  ev.depth = depth_;
  ev.name = name;
  ev.ts_ns = now_ns();
  events_.push_back(std::move(ev));
  ++depth_;
}

void TraceRecorder::end(std::initializer_list<TraceArg> args) {
  end(args.begin(), static_cast<int>(args.size()));
}

void TraceRecorder::end(const TraceArg* args, int nargs) {
  if (depth_ == 0) return;  // unmatched end: drop rather than corrupt
  --depth_;
  TraceEvent ev;
  ev.type = TraceEvent::Type::kEnd;
  ev.depth = depth_;
  // Name of the innermost open span (for JSONL readability).
  for (auto it = events_.rbegin(); it != events_.rend(); ++it) {
    if (it->type == TraceEvent::Type::kBegin && it->depth == depth_) {
      ev.name = it->name;
      break;
    }
  }
  ev.ts_ns = now_ns();
  ev.args.assign(args, args + nargs);
  events_.push_back(std::move(ev));
}

void TraceRecorder::instant(const char* name,
                            std::initializer_list<TraceArg> args) {
  TraceEvent ev;
  ev.type = TraceEvent::Type::kInstant;
  ev.depth = depth_;
  ev.name = name;
  ev.ts_ns = now_ns();
  ev.args.assign(args.begin(), args.end());
  events_.push_back(std::move(ev));
}

namespace {

void write_args_object(JsonWriter& w, const std::vector<TraceArg>& args) {
  w.begin_object();
  for (const TraceArg& a : args) {
    if (a.is_float) {
      w.member(a.key, a.f);
    } else {
      w.member(a.key, a.i);
    }
  }
  w.end_object();
}

}  // namespace

void TraceRecorder::write_chrome_trace(std::ostream& out) const {
  JsonWriter w(out);
  w.begin_object();
  w.member("displayTimeUnit", "ms");
  w.key("traceEvents");
  w.begin_array();
  for (const TraceEvent& ev : events_) {
    w.begin_object();
    w.member("name", ev.name);
    w.member("cat", "mcgp");
    switch (ev.type) {
      case TraceEvent::Type::kBegin: w.member("ph", "B"); break;
      case TraceEvent::Type::kEnd: w.member("ph", "E"); break;
      case TraceEvent::Type::kInstant:
        w.member("ph", "i");
        w.member("s", "t");
        break;
    }
    // Chrome trace timestamps are microseconds (fractions allowed).
    w.member("ts", static_cast<double>(ev.ts_ns) / 1000.0);
    w.member("pid", std::int64_t{1});
    w.member("tid", std::int64_t{1});
    if (!ev.args.empty()) {
      w.key("args");
      write_args_object(w, ev.args);
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << '\n';
}

void TraceRecorder::write_jsonl(std::ostream& out) const {
  for (const TraceEvent& ev : events_) {
    JsonWriter w(out);
    w.begin_object();
    switch (ev.type) {
      case TraceEvent::Type::kBegin: w.member("type", "begin"); break;
      case TraceEvent::Type::kEnd: w.member("type", "end"); break;
      case TraceEvent::Type::kInstant: w.member("type", "instant"); break;
    }
    w.member("name", ev.name);
    w.member("ts_ns", ev.ts_ns);
    w.member("depth", std::int64_t{ev.depth});
    if (!ev.args.empty()) {
      w.key("args");
      write_args_object(w, ev.args);
    }
    w.end_object();
    out << '\n';
  }
}

bool TraceRecorder::save_chrome_trace(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write_chrome_trace(out);
  return static_cast<bool>(out);
}

bool TraceRecorder::save_jsonl(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write_jsonl(out);
  return static_cast<bool>(out);
}

}  // namespace mcgp
