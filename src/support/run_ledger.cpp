#include "support/run_ledger.hpp"

#include <fstream>
#include <iostream>
#include <ostream>

#include "core/config.hpp"
#include "graph/csr_graph.hpp"
#include "support/json_writer.hpp"
#include "support/memory.hpp"
#include "support/perf_counters.hpp"
#include "support/schema.hpp"
#include "support/sysinfo.hpp"

namespace mcgp {

const char* build_git_describe() {
#ifdef MCGP_GIT_DESCRIBE
  return MCGP_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

const char* algorithm_ledger_name(const Options& opts) {
  return opts.algorithm == Algorithm::kKWay ? "MC-KW" : "MC-RB";
}

RunRecord make_run_record(std::string experiment, std::string graph_name,
                          const Graph& g, const Options& opts,
                          const PartitionResult& r, const Profiler* prof) {
  RunRecord rec;
  rec.experiment = std::move(experiment);
  rec.algorithm = algorithm_ledger_name(opts);
  rec.graph = std::move(graph_name);
  rec.nparts = opts.nparts;
  rec.ncon = g.ncon;
  rec.threads = opts.num_threads;
  rec.seed = opts.seed;
  rec.cut = r.cut;
  rec.imbalance = r.imbalance;
  rec.max_imbalance = r.max_imbalance;
  rec.feasible = r.feasible;
  rec.seconds = r.seconds;
  rec.phases = r.phases.entries();
  rec.peak_rss_bytes = peak_rss_bytes();
  const HostInfo& hi = host_info();
  rec.host = hi.hostname;
  rec.cpu = hi.cpu_model;
  rec.cores = hi.cores;
  if (prof != nullptr) {
    rec.profile_attached = true;
    rec.profile_available = prof->counters_available();
    rec.profile_status = prof->status();
    if (rec.profile_available) {
      const ProfBucket run = prof->phase_total("run");
      for (int c = 0; c < kNumPerfCounters; ++c) {
        const auto pc = static_cast<PerfCounter>(c);
        if (!prof->counter_open(pc)) continue;
        rec.profile_counters.emplace_back(perf_counter_name(pc),
                                          run.counters[c]);
      }
    }
  }
  return rec;
}

void write_run_record(std::ostream& out, const RunRecord& rec) {
  JsonWriter w(out);
  w.begin_object();
  w.member("schema_version", kMcgpSchemaVersion);
  w.member("git", build_git_describe());
  w.member("experiment", rec.experiment);
  w.member("algorithm", rec.algorithm);
  w.member("graph", rec.graph);
  w.member("nparts", rec.nparts);
  w.member("ncon", static_cast<std::int64_t>(rec.ncon));
  w.member("threads", static_cast<std::int64_t>(rec.threads));
  w.member("seed", rec.seed);
  w.member("cut", rec.cut);
  w.key("imbalance");
  w.begin_array();
  for (const real_t lb : rec.imbalance) w.value(lb);
  w.end_array();
  w.member("max_imbalance", rec.max_imbalance);
  w.member("feasible", rec.feasible);
  w.member("seconds", rec.seconds);
  w.key("phases");
  w.begin_object();
  for (const auto& [phase, secs] : rec.phases) w.member(phase, secs);
  w.end_object();
  if (rec.peak_rss_bytes >= 0) {
    w.member("peak_rss_bytes", rec.peak_rss_bytes);
  }
  if (!rec.metrics_snapshot.empty()) {
    w.member("metrics_snapshot", rec.metrics_snapshot);
  }
  if (!rec.host.empty()) w.member("host", rec.host);
  if (!rec.cpu.empty()) w.member("cpu", rec.cpu);
  if (rec.cores > 0) w.member("cores", static_cast<std::int64_t>(rec.cores));
  if (rec.profile_attached) {
    w.key("profile");
    w.begin_object();
    w.member("available", rec.profile_available);
    w.member("status", rec.profile_status);
    for (const auto& [name, value] : rec.profile_counters) {
      w.member(name, value);
    }
    w.end_object();
  }
  w.end_object();
  out << '\n';
}

bool append_run_record(const std::string& path, const RunRecord& rec) {
  std::ofstream out(path, std::ios::app);
  if (out) write_run_record(out, rec);
  if (!out) {
    std::cerr << "warning: could not append run record to " << path << "\n";
    return false;
  }
  return true;
}

}  // namespace mcgp
