// Host identity for telemetry records: hostname, CPU model, core count.
//
// Run-ledger lines and profile baselines are only comparable within one
// machine; stamping each record with the host that produced it keeps a
// ledger that accumulated lines from a laptop and a CI runner honest
// (mcgp_bench_diff joins on run identity and ignores these keys, so old
// baselines keep working).
#pragma once

#include <string>

namespace mcgp {

struct HostInfo {
  std::string hostname;   ///< gethostname(); "unknown" when unavailable
  std::string cpu_model;  ///< /proc/cpuinfo "model name"; "unknown" elsewhere
  int cores = 0;          ///< hardware_concurrency(); 0 = unknown
};

/// Read once per process (the values cannot change mid-run), then cached.
const HostInfo& host_info();

}  // namespace mcgp
