#include "support/metrics.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <limits>
#include <ostream>
#include <utility>

#include "support/check.hpp"
#include "support/flight_recorder.hpp"
#include "support/json_writer.hpp"
#include "support/schema.hpp"
#include "support/timer.hpp"

namespace mcgp {

const char* metric_kind_name(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

int hist_bucket_index(std::int64_t v) {
  // Bucket 0 absorbs everything <= 1 (including zero and negatives, which
  // instrumentation never produces but a caller bug might); above that,
  // bit_width(v-1) is the smallest b with v <= 2^b because
  // 2^(b-1) < v <= 2^b  <=>  2^(b-1) <= v-1 < 2^b.
  if (v <= 1) return 0;
  const int b =
      static_cast<int>(std::bit_width(static_cast<std::uint64_t>(v) - 1u));
  return b < kHistBuckets - 1 ? b : kHistBuckets - 1;
}

std::int64_t hist_bucket_le(int b) {
  if (b <= 0) return 1;
  if (b >= kHistBuckets - 1) return std::numeric_limits<std::int64_t>::max();
  return std::int64_t{1} << b;
}

void HistogramData::observe(std::int64_t v) {
  buckets[static_cast<std::size_t>(hist_bucket_index(v))] += 1u;
  count = saturating_add(count, 1, saturated);
  sum = saturating_add(sum, v, saturated);
}

double HistogramData::quantile(double q) const {
  if (count <= 0) return 0.0;
  const double target = std::clamp(q, 0.0, 1.0) * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (int b = 0; b < kHistBuckets; ++b) {
    cumulative += buckets[static_cast<std::size_t>(b)];
    if (static_cast<double>(cumulative) >= target) {
      // The +Inf bucket has no finite bound; report the largest one.
      const int capped = std::min(b, kHistBuckets - 2);
      return static_cast<double>(hist_bucket_le(capped));
    }
  }
  return static_cast<double>(hist_bucket_le(kHistBuckets - 2));
}

const MetricPoint* MetricFamily::find(
    const std::vector<std::string>& labels) const {
  const auto it = series.find(labels);
  return it != series.end() ? &it->second : nullptr;
}

const MetricFamily* MetricsSnapshot::find(std::string_view name) const {
  for (const MetricFamily& f : families) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

MetricsSnapshot MetricsSnapshot::delta_since(
    const MetricsSnapshot& earlier) const {
  MetricsSnapshot out = *this;
  for (MetricFamily& f : out.families) {
    const MetricFamily* prev = earlier.find(f.name);
    if (prev == nullptr || prev->kind != f.kind) continue;
    if (f.kind == MetricKind::kGauge) continue;  // gauges: current value
    for (auto& [labels, point] : f.series) {
      const MetricPoint* old = prev->find(labels);
      if (old == nullptr) continue;
      if (f.kind == MetricKind::kCounter) {
        point.counter =
            std::max<sum_t>(saturating_sub(point.counter, old->counter), 0);
      } else {
        for (std::size_t b = 0; b < point.hist.buckets.size(); ++b) {
          const std::uint64_t cur = point.hist.buckets[b];
          const std::uint64_t was = old->hist.buckets[b];
          point.hist.buckets[b] = cur >= was ? cur - was : 0u;
        }
        point.hist.count =
            std::max<sum_t>(saturating_sub(point.hist.count, old->hist.count),
                            0);
        point.hist.sum = saturating_sub(point.hist.sum, old->hist.sum);
      }
    }
  }
  return out;
}

MetricsRegistry::MetricsRegistry() {
  // Standard pipeline families, declared up front so exposition carries
  // curated help text and the service gauges scrape as zero before the
  // first run. Instrumentation may still auto-declare ad-hoc families.
  declare("mcgp_partitions", MetricKind::kCounter, {"alg"},
          "Completed partition()/refine_partition() calls.");
  declare("mcgp_partitions_failed", MetricKind::kCounter, {"alg"},
          "Calls aborted by an invariant AuditFailure.");
  declare("mcgp_partitions_infeasible", MetricKind::kCounter, {"alg"},
          "Completed calls whose result violated a balance tolerance.");
  declare("mcgp_pipeline_events", MetricKind::kCounter, {"stage"},
          "Flight-recorder samples by pipeline stage (rebalance "
          "escalations appear as stage=\"rebalance\").");
  declare("mcgp_audit_checks", MetricKind::kCounter, {"category"},
          "Invariant-audit checks executed, by check category.");
  declare("mcgp_metrics_errors", MetricKind::kCounter, {"reason"},
          "Registry-internal instrumentation errors (kind or label-arity "
          "mismatch, negative counter delta).");
  declare("mcgp_run_ns", MetricKind::kHistogram, {"alg"},
          "End-to-end wall time of one partition() call.", "ns");
  declare("mcgp_phase_ns", MetricKind::kHistogram, {"phase", "alg"},
          "Per-run wall time of one pipeline phase (PhaseTimes view; "
          "thread-summed CPU time can exceed wall time).",
          "ns");
  declare("mcgp_level_wall_ns", MetricKind::kHistogram, {"phase", "level"},
          "Per-run wall time of one phase at one hierarchy level "
          "(profiler view; requires Options::profile).",
          "ns");
  declare("mcgp_phase_cycles", MetricKind::kHistogram, {"phase"},
          "Per-run CPU cycles of one pipeline phase (requires "
          "Options::profile with the cycles counter available).",
          "cycles");
  declare("mcgp_last_cut", MetricKind::kGauge, {"alg"},
          "Edge cut of the most recent completed partition.");
  declare("mcgp_last_imbalance", MetricKind::kGauge, {"constraint"},
          "Per-constraint load imbalance of the most recent partition.");
  declare("mcgp_last_feasible", MetricKind::kGauge, {},
          "1 if the most recent partition met every balance tolerance.");
  declare("mcgp_peak_rss_bytes", MetricKind::kGauge, {},
          "Peak resident set size observed by memory telemetry.", "bytes");
  declare("mcgp_workspace_bytes", MetricKind::kGauge, {},
          "Workspace-pool scratch high-water mark.", "bytes");
  declare("mcgp_workspace_count", MetricKind::kGauge, {},
          "Workspace-pool lease-count high-water mark.");
  declare("mcgp_runs_inflight", MetricKind::kGauge, {},
          "partition() calls currently executing in this process.");
  declare("mcgp_stalled", MetricKind::kGauge, {},
          "1 while the heartbeat sees runs in flight but no pipeline "
          "progress for longer than the stall timeout.");
  gauge_set("mcgp_runs_inflight", {}, 0.0);
  gauge_set("mcgp_stalled", {}, 0.0);
}

void MetricsRegistry::declare(std::string name, MetricKind kind,
                              std::vector<std::string> label_keys,
                              std::string help, std::string unit) {
  MutexLock lk(mu_);
  if (index_.find(name) != index_.end()) return;
  MetricFamily f;
  f.name = name;
  f.help = std::move(help);
  f.unit = std::move(unit);
  f.kind = kind;
  f.label_keys = std::move(label_keys);
  index_.emplace(std::move(name), families_.size());
  families_.push_back(std::move(f));
}

MetricFamily& MetricsRegistry::family_at(std::string_view name,
                                         MetricKind kind, std::size_t arity) {
  const auto it = index_.find(std::string(name));
  if (it != index_.end()) return families_[it->second];
  // Auto-declare: synthesized label keys, no help text. Deliberate —
  // exploratory instrumentation must not require a registration dance.
  MetricFamily f;
  f.name = std::string(name);
  f.kind = kind;
  for (std::size_t i = 0; i < arity; ++i) {
    f.label_keys.push_back("l" + std::to_string(i));
  }
  index_.emplace(f.name, families_.size());
  families_.push_back(std::move(f));
  return families_.back();
}

MetricPoint* MetricsRegistry::point(std::string_view name, MetricKind kind,
                                    std::vector<std::string>&& labels) {
  MetricFamily& f = family_at(name, kind, labels.size());
  const char* reason = nullptr;
  if (f.kind != kind) {
    reason = "kind_mismatch";
  } else if (f.label_keys.size() != labels.size()) {
    reason = "label_arity";
  }
  if (reason != nullptr) {
    // mcgp_metrics_errors is declared in the constructor with matching
    // kind and arity, so this nested call cannot recurse further.
    MetricFamily& err =
        family_at("mcgp_metrics_errors", MetricKind::kCounter, 1);
    MetricPoint& p = err.series[std::vector<std::string>{reason}];
    p.counter = saturating_add(p.counter, 1, p.saturated);
    return nullptr;
  }
  return &f.series[std::move(labels)];
}

void MetricsRegistry::counter_add(std::string_view name,
                                  std::vector<std::string> labels,
                                  sum_t delta) {
  MutexLock lk(mu_);
  if (delta < 0) {
    MetricFamily& err =
        family_at("mcgp_metrics_errors", MetricKind::kCounter, 1);
    MetricPoint& p = err.series[std::vector<std::string>{"negative_delta"}];
    p.counter = saturating_add(p.counter, 1, p.saturated);
    return;
  }
  MetricPoint* p = point(name, MetricKind::kCounter, std::move(labels));
  if (p != nullptr) p->counter = saturating_add(p->counter, delta, p->saturated);
}

void MetricsRegistry::gauge_set(std::string_view name,
                                std::vector<std::string> labels,
                                double value) {
  MutexLock lk(mu_);
  MetricPoint* p = point(name, MetricKind::kGauge, std::move(labels));
  if (p != nullptr) p->gauge = value;
}

void MetricsRegistry::observe(std::string_view name,
                              std::vector<std::string> labels,
                              std::int64_t value) {
  MutexLock lk(mu_);
  MetricPoint* p = point(name, MetricKind::kHistogram, std::move(labels));
  if (p != nullptr) p->hist.observe(value);
}

void MetricsRegistry::note_progress(std::string_view stage) {
  progress_seq_.fetch_add(1, std::memory_order_relaxed);
  last_progress_ns_.store(monotonic_now_ns(), std::memory_order_relaxed);
  counter_add("mcgp_pipeline_events", {std::string(stage)});
}

void MetricsRegistry::run_begin() {
  const int now = runs_inflight_.fetch_add(1, std::memory_order_relaxed) + 1;
  // A stall immediately after entry is measured from run start, not from
  // whenever the previous run last made progress.
  last_progress_ns_.store(monotonic_now_ns(), std::memory_order_relaxed);
  gauge_set("mcgp_runs_inflight", {}, static_cast<double>(now));
}

void MetricsRegistry::run_end() {
  const int now = runs_inflight_.fetch_sub(1, std::memory_order_relaxed) - 1;
  gauge_set("mcgp_runs_inflight", {}, static_cast<double>(now));
}

void MetricsRegistry::set_stalled(bool stalled) {
  stalled_.store(stalled, std::memory_order_relaxed);
  gauge_set("mcgp_stalled", {}, stalled ? 1.0 : 0.0);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  snap.schema_version = kMcgpSchemaVersion;
  snap.taken_ns = monotonic_now_ns();
  snap.progress_seq = progress_seq();
  snap.last_progress_ns = last_progress_ns();
  snap.runs_inflight = runs_inflight();
  snap.stalled = stalled();
  MutexLock lk(mu_);
  snap.families = families_;
  return snap;
}

void MetricsRegistry::write_openmetrics(std::ostream& out) const {
  write_metrics_openmetrics(out, snapshot());
}

void MetricsRegistry::write_json(std::ostream& out) const {
  write_metrics_json(out, snapshot());
}

namespace {

/// OpenMetrics label-value escaping: backslash, quote, newline.
void write_escaped_label(std::ostream& out, const std::string& v) {
  for (const char c : v) {
    switch (c) {
      case '\\': out << "\\\\"; break;
      case '"': out << "\\\""; break;
      case '\n': out << "\\n"; break;
      default: out << c;
    }
  }
}

/// `{k1="v1",k2="v2"}`, or nothing for a label-free series. `extra` is an
/// optional pre-rendered pair appended last (the histogram `le`).
void write_label_set(std::ostream& out, const MetricFamily& f,
                     const std::vector<std::string>& values,
                     const std::string& extra = std::string()) {
  if (values.empty() && extra.empty()) return;
  out << '{';
  bool first = true;
  for (std::size_t i = 0; i < values.size() && i < f.label_keys.size(); ++i) {
    if (!first) out << ',';
    first = false;
    out << f.label_keys[i] << "=\"";
    write_escaped_label(out, values[i]);
    out << '"';
  }
  if (!extra.empty()) {
    if (!first) out << ',';
    out << extra;
  }
  out << '}';
}

void write_gauge_value(std::ostream& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out << buf;
}

void write_openmetrics_family(std::ostream& out, const MetricFamily& f) {
  if (f.series.empty()) return;
  out << "# TYPE " << f.name << ' ' << metric_kind_name(f.kind) << '\n';
  if (!f.unit.empty()) out << "# UNIT " << f.name << ' ' << f.unit << '\n';
  if (!f.help.empty()) out << "# HELP " << f.name << ' ' << f.help << '\n';
  for (const auto& [labels, p] : f.series) {
    switch (f.kind) {
      case MetricKind::kCounter: {
        out << f.name << "_total";
        write_label_set(out, f, labels);
        out << ' ' << p.counter << '\n';
        break;
      }
      case MetricKind::kGauge: {
        out << f.name;
        write_label_set(out, f, labels);
        out << ' ';
        write_gauge_value(out, p.gauge);
        out << '\n';
        break;
      }
      case MetricKind::kHistogram: {
        // Cumulative buckets, sparse: a boundary is emitted when its own
        // bucket is non-empty (the cumulative value changed there) plus
        // the mandatory +Inf closing bucket, which equals _count.
        std::uint64_t cumulative = 0;
        for (int b = 0; b < kHistBuckets; ++b) {
          const std::uint64_t own = p.hist.buckets[static_cast<std::size_t>(b)];
          cumulative += own;
          const bool is_inf = b == kHistBuckets - 1;
          if (own == 0 && !is_inf) continue;
          std::string le = "le=\"";
          le += is_inf ? "+Inf" : std::to_string(hist_bucket_le(b));
          le += '"';
          out << f.name << "_bucket";
          write_label_set(out, f, labels, le);
          out << ' ' << cumulative << '\n';
        }
        out << f.name << "_sum";
        write_label_set(out, f, labels);
        out << ' ' << p.hist.sum << '\n';
        out << f.name << "_count";
        write_label_set(out, f, labels);
        out << ' ' << p.hist.count << '\n';
        break;
      }
    }
  }
}

}  // namespace

void write_metrics_openmetrics(std::ostream& out,
                               const MetricsSnapshot& snap) {
  for (const MetricFamily& f : snap.families) {
    write_openmetrics_family(out, f);
  }
  out << "# EOF\n";
}

void write_metrics_json_value(JsonWriter& w, const MetricsSnapshot& snap) {
  w.begin_object();
  w.member("schema_version", static_cast<std::int64_t>(snap.schema_version));
  w.member("kind", "mcgp_metrics");
  w.member("taken_ns", snap.taken_ns);
  w.member("progress_seq", snap.progress_seq);
  w.member("last_progress_ns", snap.last_progress_ns);
  w.member("runs_inflight", static_cast<std::int64_t>(snap.runs_inflight));
  w.member("stalled", snap.stalled);
  w.key("families");
  w.begin_array();
  for (const MetricFamily& f : snap.families) {
    if (f.series.empty()) continue;
    w.begin_object();
    w.member("name", f.name);
    w.member("kind", metric_kind_name(f.kind));
    if (!f.help.empty()) w.member("help", f.help);
    if (!f.unit.empty()) w.member("unit", f.unit);
    w.key("labels");
    w.begin_array();
    for (const std::string& k : f.label_keys) w.value(k);
    w.end_array();
    w.key("series");
    w.begin_array();
    for (const auto& [labels, p] : f.series) {
      w.begin_object();
      w.key("labels");
      w.begin_array();
      for (const std::string& v : labels) w.value(v);
      w.end_array();
      switch (f.kind) {
        case MetricKind::kCounter:
          w.member("value", p.counter);
          if (p.saturated) w.member("saturated", true);
          break;
        case MetricKind::kGauge: w.member("value", p.gauge); break;
        case MetricKind::kHistogram: {
          w.member("count", p.hist.count);
          w.member("sum", p.hist.sum);
          if (p.hist.saturated) w.member("saturated", true);
          // Sparse [bucket_index, own_count] pairs; `le` of an index is
          // 2^index (the reader recomputes it, +Inf for the last index).
          w.key("buckets");
          w.begin_array();
          for (int b = 0; b < kHistBuckets; ++b) {
            const std::uint64_t own =
                p.hist.buckets[static_cast<std::size_t>(b)];
            if (own == 0) continue;
            w.begin_array();
            w.value(static_cast<std::int64_t>(b));
            w.value(own);
            w.end_array();
          }
          w.end_array();
          break;
        }
      }
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

void write_metrics_json(std::ostream& out, const MetricsSnapshot& snap) {
  JsonWriter w(out);
  write_metrics_json_value(w, snap);
  out << '\n';
}

MetricsFlusher::MetricsFlusher(MetricsRegistry& registry, Config cfg)
    : reg_(registry), cfg_(std::move(cfg)) {
  {
    // Interval semantics are "every interval_s after start", so a short
    // process with a long interval writes only the final stop() snapshot.
    MutexLock lk(mu_);
    last_flush_ns_ = monotonic_now_ns();
  }
  thread_ = std::thread([this] { thread_main(); });
}

MetricsFlusher::~MetricsFlusher() { stop(); }

void MetricsFlusher::thread_main() {
  // Tick fast enough to honor both periods; the flush itself still waits
  // for interval_s via last_flush_ns_, so a short tick only affects how
  // promptly stalls and stop() are noticed.
  double period_s = 1.0;
  if (cfg_.interval_s > 0) period_s = std::min(period_s, cfg_.interval_s);
  if (cfg_.stall_timeout_s > 0) {
    period_s = std::min(period_s, cfg_.stall_timeout_s / 4.0);
  }
  period_s = std::max(period_s, 0.01);

  MutexLock lk(mu_);
  while (!stop_requested_) {
    cv_.wait_for(mu_, std::chrono::duration<double>(period_s));
    if (stop_requested_) break;
    tick(monotonic_now_ns());
  }
}

void MetricsFlusher::tick(std::int64_t now_ns) {
  if (cfg_.stall_timeout_s > 0) {
    const std::int64_t timeout_ns =
        static_cast<std::int64_t>(cfg_.stall_timeout_s * 1e9);
    const std::int64_t last = reg_.last_progress_ns();
    const bool stalled_now =
        reg_.runs_inflight() > 0 && last > 0 && now_ns - last > timeout_ns;
    if (stalled_now && !stall_latched_) {
      stall_latched_ = true;
      stall_events_.fetch_add(1, std::memory_order_relaxed);
      reg_.set_stalled(true);
      // One postmortem per stall event: the frozen run cannot write its
      // own artifacts, so the heartbeat does it from outside.
      if (!cfg_.postmortem_path.empty()) {
        std::ofstream pm(resolve_postmortem_path(cfg_.postmortem_path));
        if (pm) {
          const double waited_s =
              static_cast<double>(now_ns - last) * 1e-9;
          JsonWriter w(pm);
          w.begin_object();
          w.member("schema_version", kMcgpSchemaVersion);
          char msg[160];
          std::snprintf(msg, sizeof(msg),
                        "stall: %d run(s) in flight, no pipeline progress "
                        "for %.3f s (timeout %.3f s)",
                        reg_.runs_inflight(), waited_s, cfg_.stall_timeout_s);
          w.member("error", msg);
          w.key("metrics");
          write_metrics_json_value(w, reg_.snapshot());
          w.end_object();
          pm << '\n';
        }
      }
    } else if (!stalled_now && stall_latched_) {
      stall_latched_ = false;
      reg_.set_stalled(false);
    }
  }

  if (!cfg_.out_path.empty()) {
    const std::int64_t interval_ns =
        cfg_.interval_s > 0 ? static_cast<std::int64_t>(cfg_.interval_s * 1e9)
                            : 0;
    if (now_ns - last_flush_ns_ >= interval_ns) {
      if (write_out_file()) last_flush_ns_ = now_ns;
    }
  }
}

bool MetricsFlusher::write_out_file() {
  // tmp + rename: a scraper reading out_path never sees a torn file.
  const std::string tmp = cfg_.out_path + ".tmp";
  {
    std::ofstream out(tmp);
    if (!out) return false;
    const bool json = cfg_.out_path.size() >= 5 &&
                      cfg_.out_path.compare(cfg_.out_path.size() - 5, 5,
                                            ".json") == 0;
    const MetricsSnapshot snap = reg_.snapshot();
    if (json) {
      write_metrics_json(out, snap);
    } else {
      write_metrics_openmetrics(out, snap);
    }
    if (!out) return false;
  }
  if (std::rename(tmp.c_str(), cfg_.out_path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  flushes_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void MetricsFlusher::poll_now() {
  MutexLock lk(mu_);
  tick(monotonic_now_ns());
}

bool MetricsFlusher::stalled() const {
  MutexLock lk(mu_);
  return stall_latched_;
}

void MetricsFlusher::stop() {
  {
    MutexLock lk(mu_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  MutexLock lk(mu_);
  if (stopped_) return;
  stopped_ = true;
  if (!cfg_.out_path.empty()) {
    if (write_out_file()) last_flush_ns_ = monotonic_now_ns();
  }
}

}  // namespace mcgp
