#include "support/thread_pool.hpp"

#include <algorithm>

namespace mcgp {

ThreadPool::ThreadPool(int num_threads) {
  const int workers = std::clamp(num_threads - 1, 0, 256);
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
    if (stop_) return;  // pool is destroyed only after all groups joined
    Task task = std::move(queue_.back());
    queue_.pop_back();
    lk.unlock();
    execute(std::move(task));
    lk.lock();
  }
}

void ThreadPool::execute(Task task) {
  std::exception_ptr err;
  try {
    task.fn();
  } catch (...) {
    err = std::current_exception();
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (err != nullptr && task.group->error_ == nullptr) {
      task.group->error_ = err;
    }
    --task.group->pending_;
  }
  // Wake both idle workers and any thread blocked in TaskGroup::wait().
  cv_.notify_all();
}

TaskGroup::~TaskGroup() {
  try {
    wait();
  } catch (...) {
    // Destructor join: errors were abandoned by not calling wait().
  }
}

void TaskGroup::run(std::function<void()> fn) {
  if (pool_ == nullptr) {
    // Serial mode: execute inline, surface errors at wait() like the
    // pooled mode does.
    try {
      fn();
    } catch (...) {
      if (error_ == nullptr) error_ = std::current_exception();
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lk(pool_->mu_);
    ++pending_;
    pool_->queue_.push_back(ThreadPool::Task{std::move(fn), this});
  }
  pool_->cv_.notify_one();
}

void TaskGroup::wait() {
  if (pool_ == nullptr) {
    if (error_ != nullptr) {
      std::exception_ptr err = error_;
      error_ = nullptr;
      std::rethrow_exception(err);
    }
    return;
  }
  std::unique_lock<std::mutex> lk(pool_->mu_);
  while (pending_ > 0) {
    if (!pool_->queue_.empty()) {
      ThreadPool::Task task = std::move(pool_->queue_.back());
      pool_->queue_.pop_back();
      lk.unlock();
      pool_->execute(std::move(task));
      lk.lock();
      continue;
    }
    pool_->cv_.wait(lk);
  }
  std::exception_ptr err = error_;
  error_ = nullptr;
  lk.unlock();
  if (err != nullptr) std::rethrow_exception(err);
}

}  // namespace mcgp
