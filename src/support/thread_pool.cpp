#include "support/thread_pool.hpp"

#include <algorithm>
#include <utility>

#include "support/types.hpp"

namespace mcgp {

ThreadPool::ThreadPool(int num_threads) {
  const int workers = std::clamp(num_threads - 1, 0, 256);
  workers_.reserve(to_size(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

ThreadPool::Task ThreadPool::pop_task() {
  Task task = std::move(queue_.back());
  queue_.pop_back();
  return task;
}

void ThreadPool::worker_loop() {
  // Hand-over-hand locking: hold mu_ while inspecting the queue, drop it
  // around the task body. The spurious-wakeup loop is written out so the
  // reads of stop_/queue_ it tests stay visible to the static analysis.
  mu_.lock();
  for (;;) {
    while (!stop_ && queue_.empty()) cv_.wait(mu_);
    if (stop_) break;  // pool is destroyed only after all groups joined
    Task task = pop_task();
    mu_.unlock();
    execute(std::move(task));
    mu_.lock();
  }
  mu_.unlock();
}

void ThreadPool::execute(Task task) {
  std::exception_ptr err;
  try {
    task.fn();
  } catch (...) {
    err = std::current_exception();
  }
  {
    MutexLock lk(mu_);
    // Tasks only ever enter their own pool's queue, so the group behind
    // this task was built on this pool: holding mu_ IS holding
    // task.group->pool_->mu_. Spell that out for the analysis.
    task.group->pool_->mu_.AssertHeld();
    if (err != nullptr && task.group->error_ == nullptr) {
      task.group->error_ = err;
    }
    --task.group->pending_;
  }
  // Wake both idle workers and any thread blocked in TaskGroup::wait().
  cv_.notify_all();
}

TaskGroup::~TaskGroup() {
  try {
    wait();
  } catch (...) {
    // Destructor join: errors were abandoned by not calling wait().
  }
}

void TaskGroup::run_serial(std::function<void()> fn) {
  // Serial mode: execute inline, surface errors at wait() like the
  // pooled mode does.
  try {
    fn();
  } catch (...) {
    if (error_ == nullptr) error_ = std::current_exception();
  }
}

void TaskGroup::wait_serial() {
  if (error_ != nullptr) {
    std::exception_ptr err = error_;
    error_ = nullptr;
    std::rethrow_exception(err);
  }
}

void TaskGroup::run(std::function<void()> fn) {
  if (pool_ == nullptr) {
    run_serial(std::move(fn));
    return;
  }
  {
    MutexLock lk(pool_->mu_);
    ++pending_;
    pool_->queue_.push_back(ThreadPool::Task{std::move(fn), this});
  }
  pool_->cv_.notify_one();
}

void parallel_chunks(ThreadPool* pool, idx_t n, idx_t grain,
                     const std::function<void(idx_t, idx_t)>& fn) {
  if (n <= 0) return;
  grain = std::max<idx_t>(grain, 1);
  if (pool == nullptr || n <= grain) {
    // Inline execution, same chunk boundaries as the pooled path.
    for (idx_t b = 0; b < n; b += grain) fn(b, std::min<idx_t>(n, b + grain));
    return;
  }
  TaskGroup group(pool);
  for (idx_t b = 0; b < n; b += grain) {
    const idx_t e = std::min<idx_t>(n, b + grain);
    group.run([&fn, b, e] { fn(b, e); });
  }
  group.wait();
}

void TaskGroup::wait() {
  if (pool_ == nullptr) {
    wait_serial();
    return;
  }
  pool_->mu_.lock();
  while (pending_ > 0) {
    if (!pool_->queue_.empty()) {
      ThreadPool::Task task = pool_->pop_task();
      pool_->mu_.unlock();
      pool_->execute(std::move(task));
      pool_->mu_.lock();
      continue;
    }
    pool_->cv_.wait(pool_->mu_);
  }
  std::exception_ptr err = error_;
  error_ = nullptr;
  pool_->mu_.unlock();
  if (err != nullptr) std::rethrow_exception(err);
}

}  // namespace mcgp
