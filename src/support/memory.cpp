#include "support/memory.hpp"

#if defined(__linux__)
#include <cstdio>
#include <cstring>
#elif defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace mcgp {

#if defined(__linux__)

namespace {

/// Read one "Vm...: <n> kB" field out of /proc/self/status. The file is
/// tiny and the read is a handful of microseconds — cheap enough for
/// per-level sampling, far too slow for per-move sampling.
std::int64_t proc_status_kb(const char* field) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return -1;
  const std::size_t field_len = std::strlen(field);
  char line[256];
  std::int64_t kb = -1;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, field, field_len) != 0) continue;
    long long value = 0;
    if (std::sscanf(line + field_len, ": %lld", &value) == 1) {
      kb = static_cast<std::int64_t>(value);
    }
    break;
  }
  std::fclose(f);
  return kb;
}

}  // namespace

std::int64_t current_rss_bytes() {
  const std::int64_t kb = proc_status_kb("VmRSS");
  return kb < 0 ? -1 : kb * 1024;
}

std::int64_t peak_rss_bytes() {
  const std::int64_t kb = proc_status_kb("VmHWM");
  return kb < 0 ? -1 : kb * 1024;
}

#elif defined(__unix__) || defined(__APPLE__)

std::int64_t current_rss_bytes() {
  // No portable "current RSS" outside /proc; report the high-water mark,
  // which is the quantity the telemetry consumers actually gate on.
  return peak_rss_bytes();
}

std::int64_t peak_rss_bytes() {
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return -1;
#if defined(__APPLE__)
  return static_cast<std::int64_t>(ru.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::int64_t>(ru.ru_maxrss) * 1024;  // kB elsewhere
#endif
}

#else

std::int64_t current_rss_bytes() { return -1; }
std::int64_t peak_rss_bytes() { return -1; }

#endif

}  // namespace mcgp
