// Fundamental scalar types and limits shared by every module.
#pragma once

#include <cstddef>
#include <cstdint>

namespace mcgp {

/// Vertex / edge index type. 32-bit indices cover graphs up to ~2 billion
/// vertices/edges which is far beyond the laptop-scale instances this
/// library targets, while halving the memory traffic of the hot loops.
using idx_t = std::int32_t;

/// Integer vertex/edge weight as stored in the graph.
using wgt_t = std::int32_t;

/// Wide accumulator for sums of weights (cut values, subdomain weights).
using sum_t = std::int64_t;

/// Floating point type for normalized weights and imbalance ratios.
using real_t = double;

/// Maximum number of balance constraints (weights per vertex) supported.
/// The SC'98 evaluation uses up to 5; 8 leaves headroom for extensions.
inline constexpr int kMaxNcon = 8;

/// Cast a non-negative signed index (idx_t, int, sum_t position, ...) to
/// std::size_t for container subscripts. The library stores indices signed
/// (sentinel -1, cheaper arithmetic) but the standard containers take
/// size_t; this helper makes every such crossing explicit and keeps the
/// tree clean under -Wsign-conversion. Callers guarantee i >= 0.
template <typename I>
constexpr std::size_t to_size(I i) {
  return static_cast<std::size_t>(i);
}

}  // namespace mcgp
