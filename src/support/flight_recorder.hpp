// Flight recorder: a bounded, thread-safe ring of per-level pipeline
// samples.
//
// The trace layer (support/trace.hpp) answers "where did the time go";
// the flight recorder answers "how did the solution evolve": one compact
// sample per coarsening level, per uncoarsening level, and per refinement
// pass, carrying the graph size, the current cut, the per-constraint load
// imbalances, and the process memory high-water mark at that moment. The
// ring is bounded (oldest samples are overwritten), so a recorder can stay
// attached to an arbitrarily long run — including a differential-fuzz
// campaign — at fixed memory cost, and when an AuditFailure aborts the
// run the most recent window of samples is exactly the postmortem a
// debugger wants (see dump_on_failure()).
//
// Like Options::trace, a null Options::flight costs one pointer test per
// instrumentation point. The recorder only observes: attaching it never
// changes partitions, which stay bit-identical across thread counts.
// Samples from concurrent tasks interleave in arrival order under one
// mutex (recording is per-level, not per-move, so the lock is cold).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "support/thread_annotations.hpp"
#include "support/types.hpp"

namespace mcgp {

class JsonWriter;

/// One telemetry sample. Producers fill the pipeline fields; record()
/// stamps seq / ts_ns / rss_bytes.
struct FlightSample {
  /// Which instrumentation point produced the sample.
  enum class Stage : std::uint8_t {
    kCoarsenLevel = 0,  ///< one contraction (coarse graph just built)
    kUncoarsen2Way,     ///< one RB uncoarsening level after 2-way refine
    kUncoarsenKWay,     ///< one k-way uncoarsening level after refine
    kFmPass,            ///< one 2-way FM pass
    kKWayPass,          ///< one k-way greedy/pq sweep
    kRebalance,         ///< one rebalance_partition escalation
    kFinal,             ///< end-of-run summary sample
  };

  Stage stage = Stage::kFinal;
  int level = -1;  ///< hierarchy level (0 = finest); -1 when n/a
  int pass = -1;   ///< refinement pass index; -1 when n/a
  int ncon = 0;    ///< entries of imbalance[] that are meaningful
  idx_t nvtxs = 0;
  idx_t nedges = 0;
  std::int64_t moves = 0;  ///< committed moves (refinement stages)
  sum_t cut = -1;          ///< current cut; -1 = not computed here
  sum_t gain = 0;          ///< cut improvement of the pass
  /// Level stages: worst per-constraint load imbalance. Pass stages: the
  /// refiner's balance scalar (FM potential / k-way max overload).
  real_t worst_imbalance = 0.0;
  real_t imbalance[kMaxNcon] = {};  ///< per-constraint load imbalance
  /// Balance-contract verdict at this point: 1 = every constraint of
  /// every part within ubvec, 0 = residual overload, -1 = not evaluated
  /// at this stage.
  int feasible = -1;

  // Stamped by FlightRecorder::record():
  std::uint64_t seq = 0;        ///< global arrival index (0-based)
  std::int64_t ts_ns = 0;       ///< nanoseconds since recorder creation
  std::int64_t rss_bytes = -1;  ///< last sampled RSS; -1 = unknown
};

/// Stable name of a sample stage (JSON exports and tests).
const char* flight_stage_name(FlightSample::Stage s);

/// Resolve a postmortem artifact path against the MCGP_POSTMORTEM_DIR
/// environment variable: relative paths are prefixed with the directory
/// when it is set and non-empty (falling back to the working directory),
/// absolute paths pass through as-is. Shared by the flight recorder's
/// failure dump and the metrics flusher's stall dump so one variable
/// redirects every postmortem artifact.
std::string resolve_postmortem_path(const std::string& path);

class MetricsRegistry;

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

  /// Append a sample, overwriting the oldest once the ring is full.
  /// Thread-safe; the optional on_sample callback runs under the lock.
  void record(FlightSample s);

  /// Read the process RSS counters now and fold them into the memory
  /// high-water marks; subsequently recorded samples carry the refreshed
  /// value. Called by the pipeline at level granularity (one small
  /// /proc read per level, never per move).
  void sample_memory();

  /// Fold a workspace footprint observation into the workspace high-water
  /// marks (bytes of scratch capacity, number of pooled workspaces).
  void note_workspace(std::int64_t bytes, std::int64_t count);

  /// The retained window, oldest first. Call after parallel work joined
  /// for a stable view (safe, but a moving target, while recording).
  std::vector<FlightSample> snapshot() const;

  std::size_t capacity() const { return capacity_; }
  /// Samples ever recorded / overwritten-and-lost to the bound.
  std::uint64_t total_recorded() const;
  std::uint64_t dropped() const;

  std::int64_t peak_rss_bytes() const {
    return peak_rss_.load(std::memory_order_relaxed);
  }
  std::int64_t workspace_bytes() const {
    return ws_bytes_.load(std::memory_order_relaxed);
  }
  std::int64_t workspace_count() const {
    return ws_count_.load(std::memory_order_relaxed);
  }

  /// Live-progress hook: invoked for every record() with the stamped
  /// sample, under the recorder lock (keep it cheap; do not re-enter the
  /// recorder). Set before the run starts; null disables.
  void set_on_sample(std::function<void(const FlightSample&)> cb);

  /// Heartbeat bridge: every record() additionally calls
  /// registry->note_progress(stage name), making each pipeline sample a
  /// liveness proof for the metrics stall detector. Null detaches. The
  /// registry must not call back into this recorder (lock order is
  /// recorder -> registry).
  void set_metrics(MetricsRegistry* registry);

  /// Where dump_on_failure() writes its postmortem JSON. Relative paths
  /// (the default is one) are resolved against the MCGP_POSTMORTEM_DIR
  /// environment variable at dump time when it is set and non-empty,
  /// falling back to the working directory; absolute paths are used
  /// as-is.
  void set_dump_path(std::string path);
  const std::string& dump_path() const { return dump_path_; }
  /// dump_path() after MCGP_POSTMORTEM_DIR resolution — the file
  /// dump_on_failure() would write right now.
  std::string resolved_dump_path() const;

  /// Serialize the retained window plus memory high-water marks as one
  /// JSON object: {"schema_version", "capacity", "total_recorded",
  /// "dropped", "memory": {...}, "samples": [...]}.
  void write_json(std::ostream& out) const;

  /// Same object written as a value of an enclosing document (the run
  /// report's "timeline" section, the postmortem's "flight" section).
  void write_json_value(JsonWriter& w) const;

  /// Write the postmortem artifact for an aborted run: the write_json()
  /// document plus the failure message, to dump_path(). Returns false if
  /// the file cannot be written (the caller is already unwinding an
  /// exception — this must not throw).
  bool dump_on_failure(const std::string& what) const noexcept;

  /// Drop all samples and counters (capacity and dump path kept). Only
  /// valid while no other thread is recording.
  void clear();

 private:
  /// Atomic running-maximum (relaxed; the exact publication order of two
  /// racing maxima is irrelevant — the final value is the true max).
  static void fold_max(std::atomic<std::int64_t>& slot, std::int64_t value);

  const std::size_t capacity_;
  /// monotonic_now_ns() at construction; sample ts_ns are offsets from it.
  std::int64_t origin_ns_;
  std::string dump_path_ = "mcgp_flight_postmortem.json";

  std::atomic<std::int64_t> last_rss_{-1};
  std::atomic<std::int64_t> peak_rss_{-1};
  std::atomic<std::int64_t> ws_bytes_{-1};
  std::atomic<std::int64_t> ws_count_{-1};

  mutable Mutex mu_;
  std::vector<FlightSample> ring_ MCGP_GUARDED_BY(mu_);
  std::uint64_t next_seq_ MCGP_GUARDED_BY(mu_) = 0;
  std::function<void(const FlightSample&)> on_sample_ MCGP_GUARDED_BY(mu_);
  MetricsRegistry* metrics_ MCGP_GUARDED_BY(mu_) = nullptr;
};

/// Null-safe one-line helpers, mirroring trace_instant()/trace_count().
inline void flight_record(FlightRecorder* fr, const FlightSample& s) {
  if (fr != nullptr) fr->record(s);
}
inline void flight_sample_memory(FlightRecorder* fr) {
  if (fr != nullptr) fr->sample_memory();
}

}  // namespace mcgp
