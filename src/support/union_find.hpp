// Disjoint-set forest with path halving and union by size.
#pragma once

#include <numeric>
#include <vector>

#include "support/types.hpp"

namespace mcgp {

class UnionFind {
 public:
  explicit UnionFind(idx_t n = 0) { reset(n); }

  void reset(idx_t n) {
    parent_.resize(to_size(n));
    std::iota(parent_.begin(), parent_.end(), idx_t{0});
    size_.assign(to_size(n), 1);
    num_sets_ = n;
  }

  idx_t find(idx_t x) {
    while (parent_[to_size(x)] != x) {
      auto& p = parent_[to_size(x)];
      p = parent_[to_size(p)];
      x = p;
    }
    return x;
  }

  /// Merge the sets containing a and b; returns false if already merged.
  bool unite(idx_t a, idx_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (size_[to_size(a)] < size_[to_size(b)]) {
      std::swap(a, b);
    }
    parent_[to_size(b)] = a;
    size_[to_size(a)] += size_[to_size(b)];
    --num_sets_;
    return true;
  }

  bool same(idx_t a, idx_t b) { return find(a) == find(b); }

  idx_t set_size(idx_t x) { return size_[to_size(find(x))]; }
  idx_t num_sets() const { return num_sets_; }

 private:
  std::vector<idx_t> parent_;
  std::vector<idx_t> size_;
  idx_t num_sets_ = 0;
};

}  // namespace mcgp
