// Structured trace instrumentation for the multilevel pipeline.
//
// A TraceRecorder captures timestamped hierarchical span events
// (run -> RB bisection -> coarsen level -> FM pass) with typed numeric
// payloads, plus a CounterRegistry of named counters/histograms. The
// pipeline is instrumented through `Options::trace`: a null pointer
// disables everything and costs one pointer test per instrumentation
// point — no allocation, no clock read, no branch into library code.
//
// Exporters:
//   * write_chrome_trace() — chrome://tracing / Perfetto "trace event"
//     JSON (B/E pairs, microsecond timestamps, args on the end event)
//   * write_jsonl()        — one JSON object per event, for ad-hoc tooling
//
// Span names and arg keys must be string literals (or otherwise outlive
// the recorder); events store the pointers, never copies. A recorder is
// single-threaded, matching the pipeline. It accumulates across runs —
// call clear() between runs for per-run artifacts.
#pragma once

#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

#include "support/counters.hpp"

namespace mcgp {

/// One typed key/value payload entry attached to an event.
struct TraceArg {
  constexpr TraceArg() = default;
  constexpr TraceArg(const char* k, std::int64_t v)
      : key(k), is_float(false), i(v) {}
  constexpr TraceArg(const char* k, std::int32_t v)
      : TraceArg(k, static_cast<std::int64_t>(v)) {}
  constexpr TraceArg(const char* k, std::uint64_t v)
      : TraceArg(k, static_cast<std::int64_t>(v)) {}
  constexpr TraceArg(const char* k, double v)
      : key(k), is_float(true), f(v) {}

  const char* key = "";
  bool is_float = false;
  std::int64_t i = 0;
  double f = 0.0;
};

struct TraceEvent {
  enum class Type : std::uint8_t { kBegin, kEnd, kInstant };

  Type type = Type::kInstant;
  int depth = 0;          ///< nesting depth at emission (begin: of the span)
  const char* name = "";  ///< span/event name (static lifetime)
  std::int64_t ts_ns = 0; ///< nanoseconds since recorder construction
  std::vector<TraceArg> args;
};

class TraceRecorder {
 public:
  TraceRecorder() : origin_(clock::now()) {}

  /// Open a span. Every begin() must be matched by one end().
  void begin(const char* name);
  /// Close the innermost span, attaching `args` to the end event.
  void end(std::initializer_list<TraceArg> args = {});
  void end(const TraceArg* args, int nargs);
  /// Zero-duration event at the current depth.
  void instant(const char* name, std::initializer_list<TraceArg> args = {});

  int depth() const { return depth_; }
  const std::vector<TraceEvent>& events() const { return events_; }

  CounterRegistry& counters() { return counters_; }
  const CounterRegistry& counters() const { return counters_; }

  /// Drop all events and counters; the time origin is kept.
  void clear() {
    events_.clear();
    counters_.clear();
    depth_ = 0;
  }

  void write_chrome_trace(std::ostream& out) const;
  void write_jsonl(std::ostream& out) const;

  /// File-path conveniences; return false if the file cannot be opened.
  bool save_chrome_trace(const std::string& path) const;
  bool save_jsonl(const std::string& path) const;

 private:
  using clock = std::chrono::steady_clock;

  std::int64_t now_ns() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                                origin_)
        .count();
  }

  clock::time_point origin_;
  std::vector<TraceEvent> events_;
  int depth_ = 0;
  CounterRegistry counters_;
};

/// RAII span that is a no-op (and allocation-free) on a null recorder.
/// Payload values observed mid-span are attached with arg() and emitted on
/// the span's end event.
class TraceSpan {
 public:
  TraceSpan(TraceRecorder* tr, const char* name) : tr_(tr) {
    if (tr_ != nullptr) tr_->begin(name);
  }
  ~TraceSpan() { finish(); }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attach a payload entry to the end event (capped at kMaxArgs).
  void arg(TraceArg a) {
    if (tr_ != nullptr && nargs_ < kMaxArgs) args_[nargs_++] = a;
  }

  /// True when tracing is live — guard for payload computations that are
  /// not worth doing on an untraced run.
  bool enabled() const { return tr_ != nullptr; }

  /// End the span now (idempotent; the destructor becomes a no-op).
  void finish() {
    if (tr_ == nullptr) return;
    tr_->end(args_, nargs_);
    tr_ = nullptr;
  }

 private:
  static constexpr int kMaxArgs = 12;

  TraceRecorder* tr_;
  TraceArg args_[kMaxArgs];
  int nargs_ = 0;
};

/// Null-safe free helpers for one-line instrumentation points.
inline void trace_instant(TraceRecorder* tr, const char* name,
                          std::initializer_list<TraceArg> args = {}) {
  if (tr != nullptr) tr->instant(name, args);
}
inline void trace_count(TraceRecorder* tr, std::string_view name,
                        std::int64_t delta = 1) {
  if (tr != nullptr) tr->counters().incr(name, delta);
}
inline void trace_hist(TraceRecorder* tr, std::string_view name,
                       std::int64_t value) {
  if (tr != nullptr) tr->counters().hist(name).record(value);
}

}  // namespace mcgp
