// Structured trace instrumentation for the multilevel pipeline.
//
// A TraceRecorder captures timestamped hierarchical span events
// (run -> RB bisection -> coarsen level -> FM pass) with typed numeric
// payloads, plus a CounterRegistry of named counters/histograms. The
// pipeline is instrumented through `Options::trace`: a null pointer
// disables everything and costs one pointer test per instrumentation
// point — no allocation, no clock read, no branch into library code.
//
// Concurrency: the recorder keeps one event log and one counter registry
// PER THREAD. The thread that constructed the recorder writes to its log
// lock-free (the common single-threaded path is unchanged); any other
// thread registers a log of its own on first use and then also appends
// lock-free. Spans therefore nest correctly within each thread no matter
// how the task pool schedules work, and the exporters emit each thread's
// log under its own `tid`, so Chrome traces stay well-formed under
// concurrency. Counters are merged across threads with merged_counters().
//
// Exporters:
//   * write_chrome_trace() — chrome://tracing / Perfetto "trace event"
//     JSON (B/E pairs, microsecond timestamps, args on the end event)
//   * write_jsonl()        — one JSON object per event, for ad-hoc tooling
//
// Span names and arg keys must be string literals (or otherwise outlive
// the recorder); events store the pointers, never copies. A recorder
// accumulates across runs — call clear() between runs for per-run
// artifacts (only while no other thread is tracing).
#pragma once

#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "support/counters.hpp"
#include "support/thread_annotations.hpp"

namespace mcgp {

/// One typed key/value payload entry attached to an event.
struct TraceArg {
  constexpr TraceArg() = default;
  constexpr TraceArg(const char* k, std::int64_t v)
      : key(k), is_float(false), i(v) {}
  constexpr TraceArg(const char* k, std::int32_t v)
      : TraceArg(k, static_cast<std::int64_t>(v)) {}
  constexpr TraceArg(const char* k, std::uint64_t v)
      : TraceArg(k, static_cast<std::int64_t>(v)) {}
  constexpr TraceArg(const char* k, double v)
      : key(k), is_float(true), f(v) {}

  const char* key = "";
  bool is_float = false;
  std::int64_t i = 0;
  double f = 0.0;
};

struct TraceEvent {
  enum class Type : std::uint8_t { kBegin, kEnd, kInstant };

  Type type = Type::kInstant;
  int depth = 0;          ///< nesting depth at emission (begin: of the span)
  const char* name = "";  ///< span/event name (static lifetime)
  std::int64_t ts_ns = 0; ///< nanoseconds since recorder construction
  std::vector<TraceArg> args;
};

class TraceRecorder {
 public:
  TraceRecorder()
      : origin_(clock::now()), home_id_(std::this_thread::get_id()) {}

  /// Open a span on the calling thread's log. Every begin() must be
  /// matched by one end() on the same thread.
  void begin(const char* name);
  /// Close the calling thread's innermost span, attaching `args` to the
  /// end event.
  void end(std::initializer_list<TraceArg> args = {});
  void end(const TraceArg* args, int nargs);
  /// Zero-duration event at the calling thread's current depth.
  void instant(const char* name, std::initializer_list<TraceArg> args = {});

  /// Add `delta` to the named counter on the calling thread's registry.
  void count(std::string_view name, std::int64_t delta = 1);
  /// Histogram by name on the calling thread's registry. The reference
  /// stays valid for the thread's lifetime within the run; callers may
  /// cache it across a serial stretch of work.
  Histogram& hist(std::string_view name);

  /// Depth / events / counters of the HOME thread (the thread that
  /// constructed the recorder) — the full view of any single-threaded run.
  int depth() const { return home_.depth; }
  const std::vector<TraceEvent>& events() const { return home_.events; }
  CounterRegistry& counters() { return home_.counters; }
  const CounterRegistry& counters() const { return home_.counters; }

  /// Counters of all thread logs folded together. Call after parallel
  /// work has been joined.
  CounterRegistry merged_counters() const;

  /// Number of per-thread logs (1 = only the home thread ever traced).
  std::size_t num_thread_logs() const;

  /// Drop all events and counters on every thread log; the time origin is
  /// kept. Only valid while no other thread is tracing.
  void clear();

  void write_chrome_trace(std::ostream& out) const;
  void write_jsonl(std::ostream& out) const;

  /// File-path conveniences; return false if the file cannot be opened.
  bool save_chrome_trace(const std::string& path) const;
  bool save_jsonl(const std::string& path) const;

 private:
  using clock = std::chrono::steady_clock;

  struct ThreadLog {
    std::vector<TraceEvent> events;
    int depth = 0;
    CounterRegistry counters;
  };

  std::int64_t now_ns() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                                origin_)
        .count();
  }

  /// The calling thread's log: the home log lock-free, or an auxiliary
  /// log registered under the mutex on first use.
  ThreadLog& local_log();

  void append_begin(ThreadLog& log, const char* name);
  void append_end(ThreadLog& log, const TraceArg* args, int nargs);

  clock::time_point origin_;
  std::thread::id home_id_;
  ThreadLog home_;

  /// Guards registration and enumeration of auxiliary logs. The logs'
  /// *contents* are not guarded: each ThreadLog is written only by its
  /// owning thread and read only after parallel work has been joined.
  mutable Mutex mu_;
  std::vector<std::unique_ptr<ThreadLog>> aux_ MCGP_GUARDED_BY(mu_);
  std::unordered_map<std::thread::id, ThreadLog*> aux_index_
      MCGP_GUARDED_BY(mu_);
};

/// RAII span that is a no-op (and allocation-free) on a null recorder.
/// Payload values observed mid-span are attached with arg() and emitted on
/// the span's end event. Must begin and end on the same thread.
class TraceSpan {
 public:
  TraceSpan(TraceRecorder* tr, const char* name) : tr_(tr) {
    if (tr_ != nullptr) tr_->begin(name);
  }
  ~TraceSpan() { finish(); }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attach a payload entry to the end event (capped at kMaxArgs).
  void arg(TraceArg a) {
    if (tr_ != nullptr && nargs_ < kMaxArgs) args_[nargs_++] = a;
  }

  /// True when tracing is live — guard for payload computations that are
  /// not worth doing on an untraced run.
  bool enabled() const { return tr_ != nullptr; }

  /// End the span now (idempotent; the destructor becomes a no-op).
  void finish() {
    if (tr_ == nullptr) return;
    tr_->end(args_, nargs_);
    tr_ = nullptr;
  }

 private:
  static constexpr int kMaxArgs = 12;

  TraceRecorder* tr_;
  TraceArg args_[kMaxArgs];
  int nargs_ = 0;
};

/// Null-safe free helpers for one-line instrumentation points.
inline void trace_instant(TraceRecorder* tr, const char* name,
                          std::initializer_list<TraceArg> args = {}) {
  if (tr != nullptr) tr->instant(name, args);
}
inline void trace_count(TraceRecorder* tr, std::string_view name,
                        std::int64_t delta = 1) {
  if (tr != nullptr) tr->count(name, delta);
}
inline void trace_hist(TraceRecorder* tr, std::string_view name,
                       std::int64_t value) {
  if (tr != nullptr) tr->hist(name).record(value);
}

}  // namespace mcgp
