// Named counter / histogram registry for per-run pipeline statistics
// (fm.moves, fm.rollbacks, match.failed, gain.histogram, ...).
//
// Counters are plain int64 accumulators; histograms bucket integer samples
// by sign-aware powers of two (bucket k holds magnitudes [2^(k-1), 2^k)),
// which keeps FM gain distributions compact no matter how heavy the tails.
// Both live in first-use order so reports are stable across runs.
//
// The registry is owned by a TraceRecorder and only ever touched through a
// non-null `Options::trace`, so a disabled run pays nothing.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace mcgp {

/// Power-of-two bucketed histogram of signed integer samples.
class Histogram {
 public:
  void record(std::int64_t v);

  /// Fold another histogram's samples into this one.
  void merge(const Histogram& other);

  std::uint64_t count() const { return count_; }
  std::int64_t min() const { return count_ > 0 ? min_ : 0; }
  std::int64_t max() const { return count_ > 0 ? max_ : 0; }
  std::int64_t sum() const { return sum_; }
  double mean() const {
    return count_ > 0 ? static_cast<double>(sum_) / static_cast<double>(count_)
                      : 0.0;
  }

  struct Bucket {
    std::int64_t lo = 0;  ///< inclusive lower bound of the value range
    std::int64_t hi = 0;  ///< inclusive upper bound
    std::uint64_t count = 0;
  };
  /// Non-empty buckets in increasing value order.
  std::vector<Bucket> buckets() const;

 private:
  // Bucket index: 0 for v == 0, +k / -k for positive / negative magnitudes
  // in [2^(k-1), 2^k). Stored sparse; at most ~128 distinct indices exist.
  std::unordered_map<int, std::uint64_t> sparse_;
  std::uint64_t count_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
  std::int64_t sum_ = 0;
};

/// Named counters and histograms, first-use ordered.
class CounterRegistry {
 public:
  /// Add `delta` to the named counter, creating it at 0 on first use.
  void incr(std::string_view name, std::int64_t delta = 1);

  /// Current value (0 if the counter was never touched).
  std::int64_t get(std::string_view name) const;

  /// Histogram by name, created empty on first use.
  Histogram& hist(std::string_view name);

  /// Histogram by name, or nullptr if never created.
  const Histogram* find_hist(std::string_view name) const;

  /// Fold another registry into this one: counters add, histograms merge.
  /// Names new to this registry keep the other's relative order.
  void merge_from(const CounterRegistry& other);

  /// (name, value) pairs in first-use order.
  const std::vector<std::pair<std::string, std::int64_t>>& counters() const {
    return counters_;
  }
  /// (name, histogram) pairs in first-use order.
  const std::vector<std::pair<std::string, Histogram>>& histograms() const {
    return hists_;
  }

  bool empty() const { return counters_.empty() && hists_.empty(); }
  void clear();

  /// Serialize as {"counters": {...}, "histograms": {...}}.
  void write_json(std::ostream& out) const;

 private:
  std::vector<std::pair<std::string, std::int64_t>> counters_;
  std::unordered_map<std::string, std::size_t> counter_index_;
  std::vector<std::pair<std::string, Histogram>> hists_;
  std::unordered_map<std::string, std::size_t> hist_index_;
};

}  // namespace mcgp
