#include "support/flight_recorder.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <utility>

#include "support/json_writer.hpp"
#include "support/memory.hpp"
#include "support/metrics.hpp"
#include "support/schema.hpp"
#include "support/timer.hpp"

namespace mcgp {

const char* flight_stage_name(FlightSample::Stage s) {
  switch (s) {
    case FlightSample::Stage::kCoarsenLevel: return "coarsen_level";
    case FlightSample::Stage::kUncoarsen2Way: return "uncoarsen_2way";
    case FlightSample::Stage::kUncoarsenKWay: return "uncoarsen_kway";
    case FlightSample::Stage::kFmPass: return "fm_pass";
    case FlightSample::Stage::kKWayPass: return "kway_pass";
    case FlightSample::Stage::kRebalance: return "rebalance";
    case FlightSample::Stage::kFinal: return "final";
  }
  return "?";
}

std::string resolve_postmortem_path(const std::string& path) {
  // Relative paths land in whatever directory the process happens to be
  // in, which for a test harness or daemon is rarely where anyone looks.
  // MCGP_POSTMORTEM_DIR redirects them without code changes; absolute
  // paths are honored as-is. Resolved at dump time so the environment
  // can change after the artifact path is configured.
  if (!path.empty() && path.front() == '/') return path;
  const char* dir = std::getenv("MCGP_POSTMORTEM_DIR");
  if (dir == nullptr || *dir == '\0') return path;
  std::string out(dir);
  if (out.back() != '/') out += '/';
  out += path;
  return out;
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)),
      origin_ns_(monotonic_now_ns()) {}

void FlightRecorder::fold_max(std::atomic<std::int64_t>& slot,
                              std::int64_t value) {
  std::int64_t seen = slot.load(std::memory_order_relaxed);
  while (value > seen &&
         !slot.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

void FlightRecorder::record(FlightSample s) {
  s.ts_ns = monotonic_now_ns() - origin_ns_;
  s.rss_bytes = last_rss_.load(std::memory_order_relaxed);

  MutexLock lk(mu_);
  s.seq = next_seq_++;
  if (ring_.size() < capacity_) {
    ring_.push_back(s);
  } else {
    // Overwrite in place: slot seq % capacity keeps the ring ordered by a
    // single rotation (oldest = next_seq_ % capacity), so snapshot() can
    // restore chronological order without sorting.
    ring_[static_cast<std::size_t>(s.seq) % capacity_] = s;
  }
  if (on_sample_) on_sample_(s);
  if (metrics_ != nullptr) metrics_->note_progress(flight_stage_name(s.stage));
}

void FlightRecorder::sample_memory() {
  const std::int64_t cur = current_rss_bytes();
  if (cur >= 0) {
    last_rss_.store(cur, std::memory_order_relaxed);
    fold_max(peak_rss_, cur);
  }
  const std::int64_t peak = mcgp::peak_rss_bytes();
  if (peak >= 0) fold_max(peak_rss_, peak);
}

void FlightRecorder::note_workspace(std::int64_t bytes, std::int64_t count) {
  fold_max(ws_bytes_, bytes);
  fold_max(ws_count_, count);
}

std::vector<FlightSample> FlightRecorder::snapshot() const {
  MutexLock lk(mu_);
  std::vector<FlightSample> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    const std::size_t oldest = static_cast<std::size_t>(next_seq_) % capacity_;
    for (std::size_t i = 0; i < capacity_; ++i) {
      out.push_back(ring_[(oldest + i) % capacity_]);
    }
  }
  return out;
}

std::uint64_t FlightRecorder::total_recorded() const {
  MutexLock lk(mu_);
  return next_seq_;
}

std::uint64_t FlightRecorder::dropped() const {
  MutexLock lk(mu_);
  return next_seq_ > ring_.size() ? next_seq_ - ring_.size() : 0;
}

void FlightRecorder::set_on_sample(
    std::function<void(const FlightSample&)> cb) {
  MutexLock lk(mu_);
  on_sample_ = std::move(cb);
}

void FlightRecorder::set_metrics(MetricsRegistry* registry) {
  MutexLock lk(mu_);
  metrics_ = registry;
}

void FlightRecorder::set_dump_path(std::string path) {
  dump_path_ = std::move(path);
}

std::string FlightRecorder::resolved_dump_path() const {
  return resolve_postmortem_path(dump_path_);
}

void FlightRecorder::clear() {
  MutexLock lk(mu_);
  ring_.clear();
  next_seq_ = 0;
  last_rss_.store(-1, std::memory_order_relaxed);
  peak_rss_.store(-1, std::memory_order_relaxed);
  ws_bytes_.store(-1, std::memory_order_relaxed);
  ws_count_.store(-1, std::memory_order_relaxed);
}

namespace {

void write_sample(JsonWriter& w, const FlightSample& s) {
  w.begin_object();
  w.member("seq", s.seq);
  w.member("ts_ns", s.ts_ns);
  w.member("stage", flight_stage_name(s.stage));
  if (s.level >= 0) w.member("level", static_cast<std::int64_t>(s.level));
  if (s.pass >= 0) w.member("pass", static_cast<std::int64_t>(s.pass));
  w.member("nvtxs", s.nvtxs);
  w.member("nedges", s.nedges);
  if (s.cut >= 0) w.member("cut", s.cut);
  if (s.moves != 0) w.member("moves", s.moves);
  if (s.gain != 0) w.member("gain", s.gain);
  // Pass-stage samples carry a balance scalar (FM: the exploration
  // potential; k-way: max tolerance-relative overload) without the
  // per-constraint breakdown, so the two fields gate independently.
  if (s.ncon > 0 || s.worst_imbalance > 0) {
    w.member("worst_imbalance", s.worst_imbalance);
  }
  if (s.ncon > 0) {
    w.key("imbalance");
    w.begin_array();
    const int n = std::min(s.ncon, kMaxNcon);
    for (int i = 0; i < n; ++i) w.value(s.imbalance[i]);
    w.end_array();
  }
  if (s.feasible >= 0) w.member("feasible", s.feasible != 0);
  if (s.rss_bytes >= 0) w.member("rss_bytes", s.rss_bytes);
  w.end_object();
}

}  // namespace

void FlightRecorder::write_json_value(JsonWriter& w) const {
  w.begin_object();
  w.member("schema_version", kMcgpSchemaVersion);
  w.member("capacity", static_cast<std::uint64_t>(capacity_));
  w.member("total_recorded", total_recorded());
  w.member("dropped", dropped());
  w.key("memory");
  w.begin_object();
  w.member("peak_rss_bytes", peak_rss_bytes());
  w.member("workspace_bytes", workspace_bytes());
  w.member("workspace_count", workspace_count());
  w.end_object();
  w.key("samples");
  w.begin_array();
  for (const FlightSample& s : snapshot()) write_sample(w, s);
  w.end_array();
  w.end_object();
}

void FlightRecorder::write_json(std::ostream& out) const {
  JsonWriter w(out);
  write_json_value(w);
  out << '\n';
}

bool FlightRecorder::dump_on_failure(const std::string& what) const noexcept {
  try {
    std::ofstream out(resolved_dump_path());
    if (!out) return false;
    JsonWriter w(out);
    w.begin_object();
    w.member("schema_version", kMcgpSchemaVersion);
    w.member("error", what);
    w.key("flight");
    write_json_value(w);
    w.end_object();
    out << '\n';
    return static_cast<bool>(out);
  } catch (...) {
    return false;
  }
}

}  // namespace mcgp
