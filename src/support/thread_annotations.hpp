// Clang thread-safety annotations and annotated synchronization wrappers.
//
// The library's shared mutable state (the thread pool's task queue, the
// workspace free list, trace-log registration, phase-time accumulators)
// is guarded by mutexes whose locking discipline is encoded in the types
// below. Under clang, `-Wthread-safety -Werror` then proves at compile
// time that every access to a MCGP_GUARDED_BY member happens with its
// mutex held — a static complement to the TSan CI job, which can only
// observe the interleavings a particular run happens to execute. GCC
// compiles the annotations away to nothing.
//
// Usage rules (enforced by the clang CI build):
//  * shared mutable members are declared MCGP_GUARDED_BY(mu_);
//  * private helpers that expect the caller to hold the lock are
//    declared MCGP_REQUIRES(mu_) — never "locked" naming conventions;
//  * scopes hold locks via MutexLock (never raw lock()/unlock() except
//    in hand-over-hand code like the worker loop);
//  * condition waits go through CondVar, whose wait() requires the lock;
//  * MCGP_NO_THREAD_SAFETY_ANALYSIS is an escape hatch of last resort
//    and must carry a comment proving why the access is safe.
//
// The macro set mirrors the clang documentation's mutex.h reference
// header (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) with an
// MCGP_ prefix.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__) && !defined(SWIG)
#define MCGP_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define MCGP_THREAD_ANNOTATION__(x)  // GCC and others: annotations vanish
#endif

/// Marks a class as a lockable capability (mutexes).
#define MCGP_CAPABILITY(x) MCGP_THREAD_ANNOTATION__(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases.
#define MCGP_SCOPED_CAPABILITY MCGP_THREAD_ANNOTATION__(scoped_lockable)

/// Data member readable/writable only with the given mutex held.
#define MCGP_GUARDED_BY(x) MCGP_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the given mutex.
#define MCGP_PT_GUARDED_BY(x) MCGP_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Function that must be called with the mutex(es) already held.
#define MCGP_REQUIRES(...) \
  MCGP_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/// Function that acquires the mutex(es) and returns holding them.
#define MCGP_ACQUIRE(...) \
  MCGP_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

/// Function that releases the mutex(es).
#define MCGP_RELEASE(...) \
  MCGP_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

/// Function that acquires the mutex only when it returns `s`.
#define MCGP_TRY_ACQUIRE(s, ...) \
  MCGP_THREAD_ANNOTATION__(try_acquire_capability(s, __VA_ARGS__))

/// Function that must NOT be called with the mutex(es) held (deadlock
/// prevention for non-reentrant locks).
#define MCGP_EXCLUDES(...) MCGP_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Asserts (at runtime, for the analysis) that the capability is held.
#define MCGP_ASSERT_CAPABILITY(x) \
  MCGP_THREAD_ANNOTATION__(assert_capability(x))

/// Function returning a reference to the given capability.
#define MCGP_RETURN_CAPABILITY(x) MCGP_THREAD_ANNOTATION__(lock_returned(x))

/// Last-resort opt-out; every use must justify itself in a comment.
#define MCGP_NO_THREAD_SAFETY_ANALYSIS \
  MCGP_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace mcgp {

/// std::mutex wrapped as an annotated capability. Satisfies BasicLockable
/// so CondVar (condition_variable_any) can release and reacquire it
/// across waits.
class MCGP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() MCGP_ACQUIRE() { mu_.lock(); }
  void unlock() MCGP_RELEASE() { mu_.unlock(); }
  bool try_lock() MCGP_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Declare to the analysis that the calling thread holds this mutex.
  /// Needed where aliasing hides the fact (two expressions naming the
  /// same mutex object); each call site must prove the alias in a
  /// comment. No runtime effect — std::mutex cannot check ownership.
  void AssertHeld() const MCGP_ASSERT_CAPABILITY(this) {}

 private:
  std::mutex mu_;
};

/// RAII lock over Mutex — the annotated analogue of std::lock_guard.
class MCGP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) MCGP_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() MCGP_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable over Mutex. Waits release and reacquire the mutex,
/// so the caller must hold it — expressed as MCGP_REQUIRES, which is the
/// annotation for "held on entry and on return".
///
/// Waits are deliberately predicate-free: the spurious-wakeup loop
/// belongs in the caller, where reads of the guarded state it tests are
/// visible to the analysis (a predicate lambda would be analyzed as an
/// unannotated function and flagged).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) MCGP_REQUIRES(mu) { cv_.wait(mu); }

  /// Timed wait; returns false on timeout. Same predicate-free contract
  /// as wait(): the caller re-tests its guarded condition in a loop.
  template <typename Rep, typename Period>
  bool wait_for(Mutex& mu, const std::chrono::duration<Rep, Period>& d)
      MCGP_REQUIRES(mu) {
    return cv_.wait_for(mu, d) == std::cv_status::no_timeout;
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace mcgp
