#include "support/bucket_queue.hpp"

#include <algorithm>
#include <cassert>

namespace mcgp {

void BucketQueue::reset(idx_t n, wgt_t expected_max_gain) {
  const auto un = to_size(n);
  next_.assign(un, kNil);
  prev_.assign(un, kNil);
  keys_.assign(un, 0);
  in_queue_.assign(un, 0);
  const long long span = 2LL * std::max<wgt_t>(expected_max_gain, 1) + 1;
  buckets_.assign(to_size(span), kNil);
  offset_ = span / 2;
  max_bucket_ = -1;
  count_ = 0;
}

void BucketQueue::grow_range(wgt_t gain) {
  // Double the range until `gain` fits, preserving bucket contents.
  long long lo = -offset_;
  long long hi = static_cast<long long>(buckets_.size()) - offset_ - 1;
  long long span = static_cast<long long>(buckets_.size());
  while (gain < lo || gain > hi) {
    span *= 2;
    lo = -span / 2;
    hi = span - span / 2 - 1;
  }
  std::vector<idx_t> nb(to_size(span), kNil);
  const long long new_offset = span / 2;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    if (buckets_[b] == kNil) continue;
    const long long g = static_cast<long long>(b) - offset_;
    nb[to_size(g + new_offset)] = buckets_[b];
  }
  buckets_ = std::move(nb);
  if (max_bucket_ >= 0) max_bucket_ += new_offset - offset_;
  offset_ = new_offset;
}

void BucketQueue::link(idx_t id, wgt_t gain) {
  const long long lo = -offset_;
  const long long hi = static_cast<long long>(buckets_.size()) - offset_ - 1;
  if (gain < lo || gain > hi) grow_range(gain);
  const std::size_t b = bucket_of(gain);
  const idx_t head = buckets_[b];
  next_[to_size(id)] = head;
  prev_[to_size(id)] = kNil;
  if (head != kNil) prev_[to_size(head)] = id;
  buckets_[b] = id;
  keys_[to_size(id)] = gain;
  max_bucket_ = std::max(max_bucket_, static_cast<long long>(b));
}

void BucketQueue::unlink(idx_t id) {
  const std::size_t uid = to_size(id);
  const idx_t nx = next_[uid];
  const idx_t pv = prev_[uid];
  if (pv != kNil) {
    next_[to_size(pv)] = nx;
  } else {
    buckets_[bucket_of(keys_[uid])] = nx;
  }
  if (nx != kNil) prev_[to_size(nx)] = pv;
}

void BucketQueue::insert(idx_t id, wgt_t gain) {
  assert(!contains(id));
  link(id, gain);
  in_queue_[to_size(id)] = 1;
  ++count_;
}

void BucketQueue::remove(idx_t id) {
  assert(contains(id));
  unlink(id);
  in_queue_[to_size(id)] = 0;
  --count_;
}

void BucketQueue::update(idx_t id, wgt_t new_gain) {
  assert(contains(id));
  if (keys_[to_size(id)] == new_gain) return;
  unlink(id);
  link(id, new_gain);
}

wgt_t BucketQueue::max_key() {
  assert(!empty());
  while (buckets_[to_size(max_bucket_)] == kNil) --max_bucket_;
  return static_cast<wgt_t>(max_bucket_ - offset_);
}

idx_t BucketQueue::pop_max() {
  assert(!empty());
  while (buckets_[to_size(max_bucket_)] == kNil) --max_bucket_;
  const idx_t id = buckets_[to_size(max_bucket_)];
  remove(id);
  return id;
}

}  // namespace mcgp
