// Indexed binary max-heap with real-valued keys.
//
// Used where gains are fractional (e.g. greedy graph growing scores that mix
// edge-cut gain with balance terms) and a bucket queue does not apply.
// Supports O(log n) insert / remove / update by element id.
#pragma once

#include <cassert>
#include <vector>

#include "support/types.hpp"

namespace mcgp {

class IndexedMaxHeap {
 public:
  /// Prepare for elements with ids in [0, n). Clears contents.
  void reset(idx_t n) {
    pos_.assign(to_size(n), kNil);
    heap_.clear();
    keys_.resize(to_size(n));
  }

  idx_t size() const { return static_cast<idx_t>(heap_.size()); }
  bool empty() const { return heap_.empty(); }
  bool contains(idx_t id) const { return pos_[to_size(id)] != kNil; }

  real_t key(idx_t id) const {
    assert(contains(id));
    return keys_[to_size(id)];
  }

  void insert(idx_t id, real_t key) {
    assert(!contains(id));
    keys_[to_size(id)] = key;
    pos_[to_size(id)] = static_cast<idx_t>(heap_.size());
    heap_.push_back(id);
    sift_up(heap_.size() - 1);
  }

  void update(idx_t id, real_t key) {
    assert(contains(id));
    const real_t old = keys_[to_size(id)];
    keys_[to_size(id)] = key;
    const auto p = to_size(pos_[to_size(id)]);
    if (key > old) {
      sift_up(p);
    } else if (key < old) {
      sift_down(p);
    }
  }

  void remove(idx_t id) {
    assert(contains(id));
    const auto p = to_size(pos_[to_size(id)]);
    swap_nodes(p, heap_.size() - 1);
    heap_.pop_back();
    pos_[to_size(id)] = kNil;
    if (p < heap_.size()) {
      // Re-heapify the element that replaced position p. If sift_up moves
      // it, the element left at p is a former ancestor that already
      // dominates this subtree, so the subsequent sift_down is a no-op.
      sift_up(p);
      sift_down(p);
    }
  }

  idx_t top() const {
    assert(!empty());
    return heap_[0];
  }

  real_t top_key() const {
    assert(!empty());
    return keys_[to_size(heap_[0])];
  }

  idx_t pop_max() {
    const idx_t id = top();
    remove(id);
    return id;
  }

 private:
  static constexpr idx_t kNil = -1;

  void swap_nodes(std::size_t a, std::size_t b) {
    if (a == b) return;
    std::swap(heap_[a], heap_[b]);
    pos_[to_size(heap_[a])] = static_cast<idx_t>(a);
    pos_[to_size(heap_[b])] = static_cast<idx_t>(b);
  }

  void sift_up(std::size_t i) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (keys_[to_size(heap_[i])] <=
          keys_[to_size(heap_[parent])]) {
        break;
      }
      swap_nodes(i, parent);
      i = parent;
    }
  }

  void sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    for (;;) {
      std::size_t best = i;
      const std::size_t l = 2 * i + 1;
      const std::size_t r = 2 * i + 2;
      if (l < n && keys_[to_size(heap_[l])] >
                       keys_[to_size(heap_[best])]) {
        best = l;
      }
      if (r < n && keys_[to_size(heap_[r])] >
                       keys_[to_size(heap_[best])]) {
        best = r;
      }
      if (best == i) break;
      swap_nodes(i, best);
      i = best;
    }
  }

  std::vector<idx_t> heap_;  // heap order -> id
  std::vector<idx_t> pos_;   // id -> heap position or kNil
  std::vector<real_t> keys_;
};

}  // namespace mcgp
