#include "support/random.hpp"

#include <algorithm>
#include <numeric>

namespace mcgp {

namespace {

inline std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
  // Guard against an all-zero state (never happens with splitmix64, but
  // keep the invariant explicit).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  // Lemire's nearly-divisionless bounded generation with rejection.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

idx_t Rng::next_in(idx_t lo, idx_t hi) {
  return lo + static_cast<idx_t>(
                  next_below(static_cast<std::uint64_t>(hi - lo) + 1));
}

double Rng::next_real() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) { return next_real() < p; }

Rng Rng::split() { return Rng(next_u64()); }

std::uint64_t mix_seed(std::uint64_t a, std::uint64_t b) {
  // Golden-ratio combine, then one SplitMix64 finalizer round on each
  // word so low-entropy inputs (small structural ids) diffuse fully.
  std::uint64_t x = b + 0x9e3779b97f4a7c15ULL;
  const std::uint64_t mixed_b = splitmix64(x);
  std::uint64_t y = a ^ mixed_b;
  return splitmix64(y);
}

void random_permutation(idx_t n, std::vector<idx_t>& perm, Rng& rng) {
  perm.resize(to_size(n));
  std::iota(perm.begin(), perm.end(), idx_t{0});
  shuffle(perm, rng);
}

void shuffle(std::vector<idx_t>& v, Rng& rng) {
  for (std::size_t i = v.size(); i > 1; --i) {
    const std::size_t j = rng.next_below(i);
    std::swap(v[i - 1], v[j]);
  }
}

}  // namespace mcgp
