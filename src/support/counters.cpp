#include "support/counters.hpp"

#include <algorithm>
#include <ostream>

#include "support/json_writer.hpp"
#include "support/schema.hpp"

namespace mcgp {

namespace {

int bucket_index(std::int64_t v) {
  if (v == 0) return 0;
  const std::uint64_t mag =
      v > 0 ? static_cast<std::uint64_t>(v)
            : static_cast<std::uint64_t>(-(v + 1)) + 1;  // safe for INT64_MIN
  int k = 1;
  std::uint64_t hi = 1;  // bucket k covers magnitudes [2^(k-1), 2^k)
  while (mag >= hi * 2 && k < 63) {
    hi *= 2;
    ++k;
  }
  return v > 0 ? k : -k;
}

/// Inclusive magnitude range of bucket |index| = k: [2^(k-1), 2^k - 1].
std::pair<std::int64_t, std::int64_t> bucket_range(int index) {
  if (index == 0) return {0, 0};
  const int k = index > 0 ? index : -index;
  const std::int64_t lo = std::int64_t{1} << (k - 1);
  const std::int64_t hi = (std::int64_t{1} << k) - 1;
  if (index > 0) return {lo, hi};
  return {-hi, -lo};
}

}  // namespace

void Histogram::record(std::int64_t v) {
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
  ++sparse_[bucket_index(v)];
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (const auto& [index, count] : other.sparse_) sparse_[index] += count;
}

std::vector<Histogram::Bucket> Histogram::buckets() const {
  std::vector<std::pair<int, std::uint64_t>> items(sparse_.begin(),
                                                   sparse_.end());
  std::sort(items.begin(), items.end());
  std::vector<Bucket> out;
  out.reserve(items.size());
  for (const auto& [index, count] : items) {
    const auto [lo, hi] = bucket_range(index);
    out.push_back(Bucket{lo, hi, count});
  }
  return out;
}

void CounterRegistry::incr(std::string_view name, std::int64_t delta) {
  const auto it = counter_index_.find(std::string(name));
  if (it != counter_index_.end()) {
    counters_[it->second].second += delta;
    return;
  }
  counter_index_.emplace(std::string(name), counters_.size());
  counters_.emplace_back(std::string(name), delta);
}

std::int64_t CounterRegistry::get(std::string_view name) const {
  const auto it = counter_index_.find(std::string(name));
  return it != counter_index_.end() ? counters_[it->second].second : 0;
}

Histogram& CounterRegistry::hist(std::string_view name) {
  const auto it = hist_index_.find(std::string(name));
  if (it != hist_index_.end()) return hists_[it->second].second;
  hist_index_.emplace(std::string(name), hists_.size());
  hists_.emplace_back(std::string(name), Histogram{});
  return hists_.back().second;
}

const Histogram* CounterRegistry::find_hist(std::string_view name) const {
  const auto it = hist_index_.find(std::string(name));
  return it != hist_index_.end() ? &hists_[it->second].second : nullptr;
}

void CounterRegistry::merge_from(const CounterRegistry& other) {
  for (const auto& [name, value] : other.counters_) incr(name, value);
  for (const auto& [name, h] : other.hists_) hist(name).merge(h);
}

void CounterRegistry::clear() {
  counters_.clear();
  counter_index_.clear();
  hists_.clear();
  hist_index_.clear();
}

void CounterRegistry::write_json(std::ostream& out) const {
  JsonWriter w(out);
  w.begin_object();
  w.member("schema_version", kMcgpSchemaVersion);
  w.key("counters");
  w.begin_object();
  for (const auto& [name, value] : counters_) w.member(name, value);
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const auto& [name, h] : hists_) {
    w.key(name);
    w.begin_object();
    w.member("count", static_cast<std::uint64_t>(h.count()));
    w.member("min", h.min());
    w.member("max", h.max());
    w.member("sum", h.sum());
    w.member("mean", h.mean());
    w.key("buckets");
    w.begin_array();
    for (const auto& b : h.buckets()) {
      w.begin_object();
      w.member("lo", b.lo);
      w.member("hi", b.hi);
      w.member("count", static_cast<std::uint64_t>(b.count));
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

}  // namespace mcgp
