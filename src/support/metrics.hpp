// Process-lifetime metrics registry with OpenMetrics exposition and a
// stall-detecting heartbeat.
//
// Every other observer (trace, flight recorder, profiler, run ledger) is
// scoped to one partition() call and read after the fact. The metrics
// registry is the opposite: one process-lifetime object that aggregates
// across many partition() calls — the ops surface a long-running
// `mcpartd` service scrapes live. It holds three metric kinds under
// labeled families:
//
//  * counters   — monotone event counts (runs, audit checks, rebalance
//                 escalations), saturating at the sum_t rails instead of
//                 throwing (telemetry must never abort the observed run);
//  * gauges     — last-observed values (cut, per-constraint imbalance,
//                 peak RSS, workspace footprint, runs in flight);
//  * histograms — log2-bucketed int64 distributions (latency in ns,
//                 cycles); p50/p90/p99 are derivable from the buckets.
//
// Like Options::trace/flight/profile, a null Options::metrics costs one
// pointer test per instrumentation point, and attaching a registry never
// changes partitions (bit-identical across thread counts, test-enforced).
//
// snapshot() copies the whole state under one lock, so a scraper sees a
// consistent view mid-run; exposition (OpenMetrics text or JSON) then
// serializes the snapshot without holding the lock. MetricsFlusher adds
// the service heartbeat: a background thread that periodically writes
// snapshots to a file and raises the `mcgp_stalled` gauge (plus an
// optional postmortem dump via MCGP_POSTMORTEM_DIR) when runs are in
// flight but the pipeline has made no progress for longer than the
// configured timeout. Progress is stamped from the flight-recorder hook
// (FlightRecorder::set_metrics), so any recorded sample counts as life.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "support/thread_annotations.hpp"
#include "support/types.hpp"

namespace mcgp {

class JsonWriter;

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

/// Stable kind name ("counter"/"gauge"/"histogram") for exposition.
const char* metric_kind_name(MetricKind k);

/// Histograms bucket by log2: bucket b < kHistBuckets-1 counts values
/// v <= 2^b (bucket 0 also absorbs zero and negatives, which the
/// pipeline never produces but a caller bug might); the last bucket is
/// +Inf. 64 buckets cover the whole int64 range, so nanosecond
/// latencies from sub-microsecond to centuries land somewhere exact.
inline constexpr int kHistBuckets = 64;

/// Bucket index for an observed value (see kHistBuckets).
int hist_bucket_index(std::int64_t v);

/// Inclusive upper bound (`le`) of bucket b: 2^b for b < kHistBuckets-1;
/// the +Inf bucket returns the int64 maximum as a sentinel.
std::int64_t hist_bucket_le(int b);

/// One log2-bucketed distribution. `buckets` are per-bucket counts (not
/// cumulative); count/sum saturate at the sum_t rails with `saturated`
/// recording that the rail was hit.
struct HistogramData {
  std::array<std::uint64_t, kHistBuckets> buckets{};
  sum_t count = 0;
  sum_t sum = 0;
  bool saturated = false;

  void observe(std::int64_t v);

  /// Quantile estimate from the buckets: the `le` upper bound of the
  /// first bucket whose cumulative count reaches q*count (conservative —
  /// never underestimates). Returns 0 for an empty histogram; the +Inf
  /// bucket reports the largest finite bound.
  double quantile(double q) const;
};

/// One labeled series inside a family. Only the field matching the
/// family's kind is meaningful.
struct MetricPoint {
  sum_t counter = 0;
  bool saturated = false;
  double gauge = 0.0;
  HistogramData hist;
};

/// A named metric family: one kind, one label-key list, many series
/// keyed by their label values (ordered map — exposition is
/// deterministic).
struct MetricFamily {
  std::string name;
  std::string help;
  std::string unit;  ///< OpenMetrics unit; empty = none
  MetricKind kind = MetricKind::kCounter;
  std::vector<std::string> label_keys;
  std::map<std::vector<std::string>, MetricPoint> series;

  const MetricPoint* find(const std::vector<std::string>& labels) const;
};

/// A consistent copy of the registry at one instant, plus the heartbeat
/// scalars. Safe to serialize, diff, and ship across threads.
struct MetricsSnapshot {
  int schema_version = 0;
  std::int64_t taken_ns = 0;  ///< monotonic_now_ns() at capture
  std::uint64_t progress_seq = 0;
  std::int64_t last_progress_ns = 0;  ///< monotonic clock; 0 = never
  int runs_inflight = 0;
  bool stalled = false;
  std::vector<MetricFamily> families;

  const MetricFamily* find(std::string_view name) const;

  /// This snapshot minus `earlier`: counters and histogram buckets
  /// subtract (clamped at zero for series the earlier snapshot lacks);
  /// gauges keep their current value. The delta of two snapshots from
  /// one registry is exactly what happened in between — the scrape-
  /// interval view a rate() query wants.
  MetricsSnapshot delta_since(const MetricsSnapshot& earlier) const;
};

/// OpenMetrics text exposition (the Prometheus scrape format):
/// `# TYPE`/`# HELP`/`# UNIT` metadata per family, `_total`-suffixed
/// counter samples, cumulative `_bucket{le=...}` histogram samples with
/// a closing `+Inf` bucket equal to `_count`, and the `# EOF` terminator.
/// `tools/mcgp_metrics/metrics.py lint` checks these properties.
void write_metrics_openmetrics(std::ostream& out, const MetricsSnapshot& snap);

/// Schema-versioned JSON document of the snapshot (complete: includes
/// per-bucket histogram counts and saturation flags, which the text
/// format cannot carry).
void write_metrics_json(std::ostream& out, const MetricsSnapshot& snap);

/// Same JSON object written as a value of an enclosing document.
void write_metrics_json_value(JsonWriter& w, const MetricsSnapshot& snap);

class MetricsRegistry {
 public:
  /// The constructor pre-declares the pipeline's standard families (see
  /// metrics.cpp) so exposition carries curated help text and the
  /// zero-valued service gauges are scrapable before the first run.
  MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Register a family up front. Idempotent: re-declaring an existing
  /// name is a no-op (first declaration wins), so library defaults and
  /// caller declarations cannot fight.
  void declare(std::string name, MetricKind kind,
               std::vector<std::string> label_keys, std::string help,
               std::string unit = "");

  /// Add to a counter series (creating family/series on first use).
  /// Negative deltas are dropped and reported via mcgp_metrics_errors —
  /// counters are monotone by contract.
  void counter_add(std::string_view name, std::vector<std::string> labels,
                   sum_t delta = 1);

  /// Set a gauge series to `value`.
  void gauge_set(std::string_view name, std::vector<std::string> labels,
                 double value);

  /// Record one observation into a histogram series.
  void observe(std::string_view name, std::vector<std::string> labels,
               std::int64_t value);

  /// Heartbeat: bump the progress sequence, stamp the progress time, and
  /// count the event under mcgp_pipeline_events{stage}. Invoked from the
  /// flight-recorder record() hook, so every pipeline sample is a
  /// liveness proof.
  void note_progress(std::string_view stage);

  /// Bracket one partition() call: maintains runs_inflight (atomic and
  /// the mcgp_runs_inflight gauge) and stamps progress so a stall right
  /// after entry is measured from run start.
  void run_begin();
  void run_end();

  /// Heartbeat scalars for the flusher (lock-free reads).
  std::uint64_t progress_seq() const {
    return progress_seq_.load(std::memory_order_relaxed);
  }
  std::int64_t last_progress_ns() const {
    return last_progress_ns_.load(std::memory_order_relaxed);
  }
  int runs_inflight() const {
    return runs_inflight_.load(std::memory_order_relaxed);
  }
  bool stalled() const { return stalled_.load(std::memory_order_relaxed); }

  /// Stall verdict, set by the flusher; mirrored as the mcgp_stalled
  /// gauge so scrapes see it.
  void set_stalled(bool stalled);

  /// Consistent copy of everything (one lock hold, no serialization).
  MetricsSnapshot snapshot() const;

  /// snapshot() + write_metrics_openmetrics / write_metrics_json.
  void write_openmetrics(std::ostream& out) const;
  void write_json(std::ostream& out) const;

 private:
  /// Locate (or auto-create) the series for a mutation. Returns null —
  /// after bumping mcgp_metrics_errors{reason} — when the call disagrees
  /// with the family's declared kind or label arity: instrumentation
  /// bugs surface as a scrapable counter, never as an exception into
  /// the observed run.
  MetricPoint* point(std::string_view name, MetricKind kind,
                     std::vector<std::string>&& labels)
      MCGP_REQUIRES(mu_);

  MetricFamily& family_at(std::string_view name, MetricKind kind,
                          std::size_t arity) MCGP_REQUIRES(mu_);

  std::atomic<std::uint64_t> progress_seq_{0};
  std::atomic<std::int64_t> last_progress_ns_{0};
  std::atomic<int> runs_inflight_{0};
  std::atomic<bool> stalled_{false};

  mutable Mutex mu_;
  std::vector<MetricFamily> families_ MCGP_GUARDED_BY(mu_);
  /// Family name -> position in families_ (exposition keeps declaration
  /// order; the map is lookup-only, never iterated).
  std::unordered_map<std::string, std::size_t> index_ MCGP_GUARDED_BY(mu_);
};

/// Background flusher + stall detector for a long-lived registry.
///
/// A dedicated thread wakes every tick to (a) rewrite `out_path` with a
/// fresh snapshot every `interval_s` seconds (atomically: tmp + rename;
/// `.json` suffix selects the JSON document, anything else OpenMetrics
/// text), and (b) compare now against the registry's last progress
/// stamp: runs in flight with no progress for `stall_timeout_s` seconds
/// latches the stall — mcgp_stalled gauge up, one postmortem JSON dump
/// to `postmortem_path` (resolved through MCGP_POSTMORTEM_DIR like the
/// flight recorder's) — and progress resuming clears it. stop() (also
/// run by the destructor) joins the thread and writes one final
/// snapshot, so `--metrics-out` without `--metrics-interval` still gets
/// its end-of-process file.
class MetricsFlusher {
 public:
  struct Config {
    std::string out_path;           ///< empty: no periodic file
    double interval_s = 10.0;       ///< <=0: rewrite on every tick
    double stall_timeout_s = 30.0;  ///< <=0: stall detection off
    std::string postmortem_path = "mcgp_metrics_postmortem.json";
  };

  MetricsFlusher(MetricsRegistry& registry, Config cfg);
  ~MetricsFlusher();

  MetricsFlusher(const MetricsFlusher&) = delete;
  MetricsFlusher& operator=(const MetricsFlusher&) = delete;

  /// Join the thread and write the final snapshot. Idempotent.
  void stop();

  /// Run one detector+flush tick synchronously (deterministic tests).
  void poll_now();

  bool stalled() const;
  std::uint64_t flushes() const {
    return flushes_.load(std::memory_order_relaxed);
  }
  std::uint64_t stall_events() const {
    return stall_events_.load(std::memory_order_relaxed);
  }

 private:
  void thread_main();
  void tick(std::int64_t now_ns) MCGP_REQUIRES(mu_);
  bool write_out_file() MCGP_REQUIRES(mu_);

  MetricsRegistry& reg_;
  const Config cfg_;

  std::atomic<std::uint64_t> flushes_{0};
  std::atomic<std::uint64_t> stall_events_{0};

  mutable Mutex mu_;
  CondVar cv_;
  bool stop_requested_ MCGP_GUARDED_BY(mu_) = false;
  bool stopped_ MCGP_GUARDED_BY(mu_) = false;
  bool stall_latched_ MCGP_GUARDED_BY(mu_) = false;
  std::int64_t last_flush_ns_ MCGP_GUARDED_BY(mu_) = 0;

  std::thread thread_;
};

/// Null-safe helpers, mirroring trace_count()/flight_record().
inline void metrics_counter_add(MetricsRegistry* m, std::string_view name,
                                std::vector<std::string> labels,
                                sum_t delta = 1) {
  if (m != nullptr) m->counter_add(name, std::move(labels), delta);
}
inline void metrics_gauge_set(MetricsRegistry* m, std::string_view name,
                              std::vector<std::string> labels, double value) {
  if (m != nullptr) m->gauge_set(name, std::move(labels), value);
}
inline void metrics_observe(MetricsRegistry* m, std::string_view name,
                            std::vector<std::string> labels,
                            std::int64_t value) {
  if (m != nullptr) m->observe(name, std::move(labels), value);
}

}  // namespace mcgp
