// Minimal task-based thread pool for the fork/join parallelism of the
// recursive-bisection driver.
//
// One shared LIFO task queue (newest-first keeps the working set of a
// deep recursion hot), N-1 worker threads, and the submitting thread as
// the N-th executor: TaskGroup::wait() does not block idly — it pops and
// runs queued tasks until its own tasks are done ("work helping"), so
// nested fork/join from inside a task can never deadlock the pool.
//
// Determinism contract: the pool makes NO ordering guarantees between
// tasks of a group. Callers that need reproducible results must make each
// task's output independent of execution order (the partitioner does this
// by deriving every task's RNG stream from the structural position of its
// subproblem, never from a shared generator).
//
// A TaskGroup constructed with a null pool runs every task inline in
// run(), which is the serial mode: identical code path, no threads, no
// queue, exceptions still surfaced at wait().
//
// Lock discipline (statically checked under clang -Wthread-safety): the
// queue, the stop flag, and every group's pending/error bookkeeping are
// guarded by the pool's one mutex. Group state is declared guarded by
// pool_->mu_; tasks only ever enter their own pool's queue, so the pool
// executing a task holds exactly that mutex.
#pragma once

#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "support/thread_annotations.hpp"
#include "support/types.hpp"

namespace mcgp {

class TaskGroup;

class ThreadPool {
 public:
  /// Spawns num_threads - 1 workers; the caller is the remaining executor.
  /// num_threads <= 1 yields a pool with no workers (still correct: every
  /// task runs inside TaskGroup::wait() on the submitting thread).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Threads that can execute tasks: workers plus the caller in wait().
  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

 private:
  friend class TaskGroup;

  struct Task {
    std::function<void()> fn;
    TaskGroup* group;
  };

  void worker_loop();
  /// Pop the newest queued task. Caller must hold mu_ and have checked
  /// that the queue is non-empty.
  Task pop_task() MCGP_REQUIRES(mu_);
  /// Run the task and do the group completion bookkeeping.
  void execute(Task task) MCGP_EXCLUDES(mu_);

  Mutex mu_;
  CondVar cv_;  ///< queue activity + task completions
  std::deque<Task> queue_ MCGP_GUARDED_BY(mu_);
  bool stop_ MCGP_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

/// A set of forked tasks joined with wait(). Must not be destroyed with
/// tasks still pending (the destructor joins, swallowing errors — call
/// wait() to observe them). Groups may nest freely: a task may create its
/// own group and wait on it.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Fork a task (or run it inline when the pool is null). The first
  /// exception thrown by any task of the group is rethrown from wait().
  void run(std::function<void()> fn);

  /// Join: executes queued tasks on the calling thread while this group
  /// has tasks in flight elsewhere.
  void wait();

 private:
  friend class ThreadPool;

  /// Serial-mode bodies of run()/wait(). pool_ == nullptr means this
  /// group never leaves the constructing thread, so there is no mutex to
  /// hold over pending_/error_ — invisible to the static analysis, hence
  /// the opt-out.
  void run_serial(std::function<void()> fn) MCGP_NO_THREAD_SAFETY_ANALYSIS;
  void wait_serial() MCGP_NO_THREAD_SAFETY_ANALYSIS;

  ThreadPool* pool_;
  int pending_ MCGP_GUARDED_BY(pool_->mu_) = 0;  ///< serial mode: unused
  std::exception_ptr error_ MCGP_GUARDED_BY(pool_->mu_);  ///< first failure
};

/// Split [0, n) into fixed-size chunks of `grain` and run fn(begin, end)
/// for each — on the pool when one is supplied, inline otherwise. The
/// chunk boundaries depend only on n and grain, NEVER on the pool or the
/// thread count, so a caller whose chunk outputs land at positions derived
/// from the chunk index gets thread-count-independent results for free.
/// Blocks until every chunk has completed; the first exception thrown by
/// any chunk is rethrown here.
void parallel_chunks(ThreadPool* pool, idx_t n, idx_t grain,
                     const std::function<void(idx_t, idx_t)>& fn);

}  // namespace mcgp
