#include "support/timer.hpp"

namespace mcgp {

PhaseTimes::PhaseTimes(const PhaseTimes& o) {
  std::lock_guard<std::mutex> lk(o.mu_);
  entries_ = o.entries_;
  index_ = o.index_;
}

PhaseTimes& PhaseTimes::operator=(const PhaseTimes& o) {
  if (this == &o) return *this;
  // Consistent order not needed: distinct locks, self-assign handled above.
  std::lock_guard<std::mutex> lo(o.mu_);
  std::lock_guard<std::mutex> lt(mu_);
  entries_ = o.entries_;
  index_ = o.index_;
  return *this;
}

void PhaseTimes::add(const std::string& phase, double seconds) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = index_.find(phase);
  if (it != index_.end()) {
    entries_[it->second].second += seconds;
    return;
  }
  index_.emplace(phase, entries_.size());
  entries_.emplace_back(phase, seconds);
}

double PhaseTimes::get(const std::string& phase) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = index_.find(phase);
  return it != index_.end() ? entries_[it->second].second : 0.0;
}

}  // namespace mcgp
