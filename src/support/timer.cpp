#include "support/timer.hpp"

namespace mcgp {

PhaseTimes::PhaseTimes(const PhaseTimes& o) {
  MutexLock lk(o.mu_);
  // Construction: no other thread can reference *this yet, so writing
  // our members without our own lock is safe; clang models constructors
  // the same way, so no opt-out is needed.
  entries_ = o.entries_;
  index_ = o.index_;
}

PhaseTimes& PhaseTimes::operator=(const PhaseTimes& o) {
  if (this == &o) return *this;
  // Consistent order not needed: distinct locks, self-assign handled above.
  MutexLock lo(o.mu_);
  MutexLock lt(mu_);
  entries_ = o.entries_;
  index_ = o.index_;
  return *this;
}

void PhaseTimes::add(const std::string& phase, double seconds) {
  MutexLock lk(mu_);
  const auto it = index_.find(phase);
  if (it != index_.end()) {
    entries_[it->second].second += seconds;
    return;
  }
  index_.emplace(phase, entries_.size());
  entries_.emplace_back(phase, seconds);
}

double PhaseTimes::get(const std::string& phase) const {
  MutexLock lk(mu_);
  const auto it = index_.find(phase);
  return it != index_.end() ? entries_[it->second].second : 0.0;
}

}  // namespace mcgp
