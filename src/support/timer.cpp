#include "support/timer.hpp"

namespace mcgp {

void PhaseTimes::add(const std::string& phase, double seconds) {
  for (auto& [name, total] : entries_) {
    if (name == phase) {
      total += seconds;
      return;
    }
  }
  entries_.emplace_back(phase, seconds);
}

double PhaseTimes::get(const std::string& phase) const {
  for (const auto& [name, total] : entries_) {
    if (name == phase) return total;
  }
  return 0.0;
}

}  // namespace mcgp
