#include "support/timer.hpp"

namespace mcgp {

void PhaseTimes::add(const std::string& phase, double seconds) {
  const auto it = index_.find(phase);
  if (it != index_.end()) {
    entries_[it->second].second += seconds;
    return;
  }
  index_.emplace(phase, entries_.size());
  entries_.emplace_back(phase, seconds);
}

double PhaseTimes::get(const std::string& phase) const {
  const auto it = index_.find(phase);
  return it != index_.end() ? entries_[it->second].second : 0.0;
}

}  // namespace mcgp
