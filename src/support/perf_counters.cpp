#include "support/perf_counters.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <string_view>
#include <system_error>

#include "support/json_writer.hpp"
#include "support/schema.hpp"
#include "support/timer.hpp"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace mcgp {

const char* perf_counter_name(PerfCounter c) {
  switch (c) {
    case PerfCounter::kCycles: return "cycles";
    case PerfCounter::kInstructions: return "instructions";
    case PerfCounter::kTaskClock: return "task_clock_ns";
    case PerfCounter::kLlcLoads: return "llc_loads";
    case PerfCounter::kLlcMisses: return "llc_misses";
    case PerfCounter::kBranches: return "branches";
    case PerfCounter::kBranchMisses: return "branch_misses";
  }
  return "?";
}

std::int64_t perf_scale(std::uint64_t raw, std::uint64_t enabled,
                        std::uint64_t running) {
  if (running == 0) return 0;  // never scheduled: no basis for an estimate
  if (running >= enabled) return static_cast<std::int64_t>(raw);
  const long double scaled = static_cast<long double>(raw) *
                             static_cast<long double>(enabled) /
                             static_cast<long double>(running);
  return static_cast<std::int64_t>(scaled);
}

namespace {

#if defined(__linux__)

struct EventSpec {
  std::uint32_t type;
  std::uint64_t config;
};

constexpr std::uint64_t hw_cache_config(std::uint64_t cache, std::uint64_t op,
                                        std::uint64_t result) {
  return cache | (op << 8) | (result << 16);
}

EventSpec event_spec(PerfCounter c) {
  switch (c) {
    case PerfCounter::kCycles:
      return {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES};
    case PerfCounter::kInstructions:
      return {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS};
    case PerfCounter::kTaskClock:
      return {PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK};
    case PerfCounter::kLlcLoads:
      return {PERF_TYPE_HW_CACHE,
              hw_cache_config(PERF_COUNT_HW_CACHE_LL, PERF_COUNT_HW_CACHE_OP_READ,
                              PERF_COUNT_HW_CACHE_RESULT_ACCESS)};
    case PerfCounter::kLlcMisses:
      return {PERF_TYPE_HW_CACHE,
              hw_cache_config(PERF_COUNT_HW_CACHE_LL, PERF_COUNT_HW_CACHE_OP_READ,
                              PERF_COUNT_HW_CACHE_RESULT_MISS)};
    case PerfCounter::kBranches:
      return {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_INSTRUCTIONS};
    case PerfCounter::kBranchMisses:
      return {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES};
  }
  return {PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK};
}

#endif  // defined(__linux__)

}  // namespace

PerfCounterGroup::PerfCounterGroup() {
  for (int i = 0; i < kNumPerfCounters; ++i) fd_[i] = -1;
}

PerfCounterGroup::~PerfCounterGroup() { close(); }

int PerfCounterGroup::open() {
  close();
  open_errno_ = 0;
#if defined(__linux__)
  for (int i = 0; i < kNumPerfCounters; ++i) {
    perf_event_attr attr{};
    attr.size = static_cast<std::uint32_t>(sizeof(attr));
    const EventSpec spec = event_spec(static_cast<PerfCounter>(i));
    attr.type = spec.type;
    attr.config = spec.config;
    // Counting starts at open; user space only (perf_event_paranoid <= 2
    // suffices — no kernel or hypervisor profiling requested).
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    attr.read_format =
        PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING;
    // pid=0, cpu=-1: count the calling thread wherever it runs.
    const long fd = ::syscall(SYS_perf_event_open, &attr, 0, -1, -1, 0UL);
    if (fd < 0) {
      if (open_errno_ == 0) open_errno_ = errno;
      continue;
    }
    fd_[i] = static_cast<int>(fd);
    ++num_open_;
  }
#else
  open_errno_ = ENOSYS;
#endif
  return num_open_;
}

void PerfCounterGroup::close() {
#if defined(__linux__)
  for (int i = 0; i < kNumPerfCounters; ++i) {
    if (fd_[i] >= 0) ::close(fd_[i]);
    fd_[i] = -1;
  }
#endif
  num_open_ = 0;
}

bool PerfCounterGroup::read(PerfReading& out) const {
  out = PerfReading{};
#if defined(__linux__)
  bool any = false;
  for (int i = 0; i < kNumPerfCounters; ++i) {
    if (fd_[i] < 0) continue;
    // {value, time_enabled, time_running} per the read_format above.
    std::uint64_t buf[3] = {};
    if (::read(fd_[i], buf, sizeof(buf)) !=
        static_cast<ssize_t>(sizeof(buf))) {
      continue;
    }
    out.value[i] = perf_scale(buf[0], buf[1], buf[2]);
    out.enabled_ns += static_cast<std::int64_t>(buf[1]);
    out.running_ns += static_cast<std::int64_t>(buf[2]);
    any = true;
  }
  return any;
#else
  return false;
#endif
}

bool PerfCounterGroup::is_open(PerfCounter c) const {
  return fd_[static_cast<int>(c)] >= 0;
}

namespace {

std::atomic<std::uint64_t> g_profiler_ids{1};

/// One-entry per-thread cache binding this thread's counter group to the
/// profiler that owns it. Keyed by a process-unique profiler id (never a
/// reused address or thread::id), so a stale entry can only miss, never
/// alias into a dangling group. `depth` counts the live non-aux ProfScopes
/// of that profiler on this thread — the signal aux scopes use to detect
/// an enclosing scope already measuring the thread.
struct TlsSlot {
  std::uint64_t profiler_id = 0;
  PerfCounterGroup* grp = nullptr;
  int depth = 0;
};

TlsSlot& tls_slot() {
  static thread_local TlsSlot slot;
  return slot;
}

/// Small process-unique ordinal for the calling thread; cheaper and more
/// readable than std::thread::id for the per-bucket distinct-thread sets.
std::uint64_t thread_ordinal() {
  static std::atomic<std::uint64_t> next{1};
  static thread_local const std::uint64_t ord =
      next.fetch_add(1, std::memory_order_relaxed);
  return ord;
}

bool perf_disabled_by_env() {
  const char* s = std::getenv("MCGP_PERF_DISABLE");
  return s != nullptr && *s != '\0' && std::string_view(s) != "0";
}

std::string open_failure_status(int err) {
  std::string msg =
      "perf_event_open failed: " + std::generic_category().message(err);
  if (err == EACCES || err == EPERM) {
    msg += " (check /proc/sys/kernel/perf_event_paranoid)";
  }
  return msg;
}

}  // namespace

Profiler::Profiler()
    : id_(g_profiler_ids.fetch_add(1, std::memory_order_relaxed)) {
  if (perf_disabled_by_env()) {
    status_ = "disabled (MCGP_PERF_DISABLE)";
    return;
  }
  auto probe = std::make_unique<PerfCounterGroup>();
  const int opened = probe->open();
  for (int i = 0; i < kNumPerfCounters; ++i) {
    counter_open_[i] = probe->is_open(static_cast<PerfCounter>(i));
  }
  if (opened == 0) {
    status_ = open_failure_status(probe->open_errno());
    return;
  }
  available_ = true;
  status_ = "ok";
  // The probe doubles as the constructing thread's group — the common
  // single-threaded run never opens a second set of fds.
  PerfCounterGroup* raw = probe.get();
  {
    MutexLock lk(mu_);
    groups_.push_back(std::move(probe));
  }
  tls_slot() = TlsSlot{id_, raw};
}

Profiler::~Profiler() = default;

bool Profiler::counter_open(PerfCounter c) const {
  return counter_open_[static_cast<int>(c)];
}

PerfCounterGroup* Profiler::thread_group() {
  if (!available_) return nullptr;
  TlsSlot& slot = tls_slot();
  if (slot.profiler_id == id_) return slot.grp;
  auto grp = std::make_unique<PerfCounterGroup>();
  grp->open();  // 0 opened leaves read() returning false: wall-time only
  PerfCounterGroup* raw = grp.get();
  {
    MutexLock lk(mu_);
    groups_.push_back(std::move(grp));
  }
  slot = TlsSlot{id_, raw};
  return raw;
}

void Profiler::fold(const char* phase, int level, const ProfBucket& delta) {
  const std::uint64_t ord = thread_ordinal();
  MutexLock lk(mu_);
  const auto key = std::make_pair(std::string(phase), level);
  ProfBucket& b = buckets_[key];
  b.scopes += delta.scopes;
  b.edges += delta.edges;
  b.vtxs += delta.vtxs;
  b.wall_ns += delta.wall_ns;
  for (int i = 0; i < kNumPerfCounters; ++i) {
    b.counters[i] += delta.counters[i];
  }
  b.enabled_ns += delta.enabled_ns;
  b.running_ns += delta.running_ns;
  bucket_threads_[key].insert(ord);
}

void Profiler::set_threads(int n) {
  MutexLock lk(mu_);
  threads_ = n > 0 ? n : 1;
}

std::vector<ProfPhase> Profiler::snapshot() const {
  MutexLock lk(mu_);
  std::vector<ProfPhase> out;
  out.reserve(buckets_.size());
  for (const auto& [key, stats] : buckets_) {
    const auto it = bucket_threads_.find(key);
    const int nthreads =
        it == bucket_threads_.end() ? 0 : static_cast<int>(it->second.size());
    out.push_back(ProfPhase{key.first, key.second, nthreads, stats});
  }
  return out;
}

ProfBucket Profiler::phase_total(const std::string& phase) const {
  MutexLock lk(mu_);
  ProfBucket total;
  for (const auto& [key, stats] : buckets_) {
    if (key.first != phase) continue;
    total.scopes += stats.scopes;
    total.edges += stats.edges;
    total.vtxs += stats.vtxs;
    total.wall_ns += stats.wall_ns;
    for (int i = 0; i < kNumPerfCounters; ++i) {
      total.counters[i] += stats.counters[i];
    }
    total.enabled_ns += stats.enabled_ns;
    total.running_ns += stats.running_ns;
  }
  return total;
}

void Profiler::clear() {
  MutexLock lk(mu_);
  buckets_.clear();
  bucket_threads_.clear();
}

namespace {

double ratio(std::int64_t num, std::int64_t den) {
  return static_cast<double>(num) / static_cast<double>(den);
}

}  // namespace

void Profiler::write_json_value(JsonWriter& w) const {
  const auto open = [this](PerfCounter c) { return counter_open(c); };
  const auto idx = [](PerfCounter c) { return static_cast<int>(c); };

  int run_threads = 1;
  {
    MutexLock lk(mu_);
    run_threads = threads_;
  }

  w.begin_object();
  w.member("schema_version", kMcgpSchemaVersion);
  w.member("available", available_);
  w.member("status", status_);
  w.member("threads", static_cast<std::int64_t>(run_threads));
  w.key("counters");
  w.begin_array();
  for (int i = 0; i < kNumPerfCounters; ++i) {
    if (counter_open_[i]) w.value(perf_counter_name(static_cast<PerfCounter>(i)));
  }
  w.end_array();
  w.key("phases");
  w.begin_array();
  for (const ProfPhase& p : snapshot()) {
    const ProfBucket& b = p.stats;
    w.begin_object();
    w.member("phase", p.phase);
    if (p.level >= 0) w.member("level", static_cast<std::int64_t>(p.level));
    w.member("scopes", b.scopes);
    w.member("edges", b.edges);
    w.member("vtxs", b.vtxs);
    w.member("threads", static_cast<std::int64_t>(p.threads));
    w.member("wall_ns", b.wall_ns);
    for (int i = 0; i < kNumPerfCounters; ++i) {
      if (counter_open_[i]) {
        w.member(perf_counter_name(static_cast<PerfCounter>(i)),
                 b.counters[i]);
      }
    }
    if (available_) {
      w.member("enabled_ns", b.enabled_ns);
      w.member("running_ns", b.running_ns);
    }
    // Derived metrics, emitted only when their inputs are measured and
    // the denominator is meaningful.
    const std::int64_t cycles = b.counters[idx(PerfCounter::kCycles)];
    const std::int64_t instr = b.counters[idx(PerfCounter::kInstructions)];
    const std::int64_t loads = b.counters[idx(PerfCounter::kLlcLoads)];
    const std::int64_t branches = b.counters[idx(PerfCounter::kBranches)];
    if (open(PerfCounter::kCycles) && open(PerfCounter::kInstructions) &&
        cycles > 0) {
      w.member("ipc", ratio(instr, cycles));
    }
    if (open(PerfCounter::kLlcLoads) && open(PerfCounter::kLlcMisses) &&
        loads > 0) {
      w.member("llc_miss_rate",
               ratio(b.counters[idx(PerfCounter::kLlcMisses)], loads));
    }
    if (open(PerfCounter::kBranches) && open(PerfCounter::kBranchMisses) &&
        branches > 0) {
      w.member("branch_miss_rate",
               ratio(b.counters[idx(PerfCounter::kBranchMisses)], branches));
    }
    if (open(PerfCounter::kCycles) && b.edges > 0) {
      w.member("cycles_per_edge", ratio(cycles, b.edges));
    }
    if (open(PerfCounter::kBranches) && b.vtxs > 0) {
      w.member("branches_per_vtx", ratio(branches, b.vtxs));
    }
    // On-CPU time over wall time: the per-phase parallel-efficiency
    // headline (1.0 = one busy core, num_threads = perfect scaling).
    if (open(PerfCounter::kTaskClock) && b.wall_ns > 0) {
      w.member("parallelism",
               ratio(b.counters[idx(PerfCounter::kTaskClock)], b.wall_ns));
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

void ProfScope::begin() {
  t0_ns_ = monotonic_now_ns();
  grp_ = p_->thread_group();  // binds the TLS slot to this profiler
  TlsSlot& slot = tls_slot();
  if (aux_) {
    // Work helping: when an enclosing non-aux scope of this profiler is
    // live on this thread, that scope already measures the chunk — a
    // second interval here would double-count it.
    if (slot.profiler_id == p_->id_ && slot.depth > 0) {
      p_ = nullptr;
      grp_ = nullptr;
      return;
    }
  } else if (slot.profiler_id == p_->id_) {
    ++slot.depth;
  }
  if (grp_ != nullptr) have_begin_ = grp_->read(begin_reading_);
}

void ProfScope::end() {
  Profiler* p = p_;
  p_ = nullptr;
  TlsSlot& slot = tls_slot();
  if (!aux_ && slot.profiler_id == p->id_ && slot.depth > 0) --slot.depth;
  ProfBucket d;
  // Aux scopes contribute only on-CPU counters and their thread identity;
  // the enclosing scope on the submitting thread owns the wall time and
  // the scope count.
  d.scopes = aux_ ? 0 : 1;
  d.edges = edges_;
  d.vtxs = vtxs_;
  d.wall_ns = aux_ ? 0 : monotonic_now_ns() - t0_ns_;
  if (grp_ != nullptr && have_begin_) {
    PerfReading now;
    if (grp_->read(now)) {
      // Clamp: multiplexing scaling is an estimate, so a delta can come
      // out marginally negative when the scale factor shifts between
      // reads; a bucket must never count backwards.
      for (int i = 0; i < kNumPerfCounters; ++i) {
        d.counters[i] =
            std::max<std::int64_t>(0, now.value[i] - begin_reading_.value[i]);
      }
      d.enabled_ns = std::max<std::int64_t>(
          0, now.enabled_ns - begin_reading_.enabled_ns);
      d.running_ns = std::max<std::int64_t>(
          0, now.running_ns - begin_reading_.running_ns);
    }
  }
  p->fold(phase_, level_, d);
}

}  // namespace mcgp
