// Hardware performance-counter profiling via perf_event_open(2).
//
// The trace layer answers "where did the wall time go" and the flight
// recorder "how did the solution evolve"; this layer answers "why is a
// phase slow": cycles, instructions (IPC), last-level-cache behavior, and
// branch mispredicts, aggregated per pipeline phase AND per hierarchy
// level. That is the instrument the ROADMAP-5 memory-layout work needs —
// a cycles-per-edge or LLC-miss-rate regression is hardware evidence,
// where wall time alone is scheduler noise.
//
// Three layers:
//
//  * PerfCounterGroup — one perf_event fd per counter for the calling
//    thread. Each counter opens independently, so a kernel that lacks a
//    PMU (common in containers/VMs: hardware events fail with ENOENT
//    while software events like task-clock still work) degrades counter
//    by counter instead of all-or-nothing. Every fd requests
//    PERF_FORMAT_TOTAL_TIME_{ENABLED,RUNNING} so multiplexed readings
//    are scaled to estimates (see perf_scale).
//
//  * Profiler — the object a run attaches through Options::profile,
//    following the trace/flight/audit pattern exactly: a null pointer
//    costs one test per hook, and attaching never changes the partition.
//    Worker threads lazily open their own counter groups (perf counters
//    are per-thread); deltas fold into (phase, level) buckets under one
//    cold mutex (folds happen per level, never per move). When
//    perf_event_open is unavailable (EPERM from perf_event_paranoid,
//    ENOSYS, ENOENT, or the MCGP_PERF_DISABLE env override) the profiler
//    still aggregates wall time and work items per bucket and reports
//    "available": false — an explicit record, not an error.
//
//  * ProfScope — RAII measurement interval used at the existing
//    ScopedPhase/TraceSpan seams. Nested scopes each count their full
//    interval (inclusive semantics, like a sampling profiler's call
//    stack): the "run" scope contains everything once, so it is the
//    denominator for per-phase percentages and the ledger headline.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "support/thread_annotations.hpp"

namespace mcgp {

class JsonWriter;

/// The fixed counter set. Hardware events may be individually
/// unavailable; kTaskClock is a software event and works almost anywhere.
enum class PerfCounter : int {
  kCycles = 0,
  kInstructions,
  kTaskClock,  ///< software event; value is nanoseconds on-CPU
  kLlcLoads,
  kLlcMisses,
  kBranches,
  kBranchMisses,
};
inline constexpr int kNumPerfCounters = 7;

/// Stable JSON/report name of a counter ("cycles", "task_clock_ns", ...).
const char* perf_counter_name(PerfCounter c);

/// Multiplexing correction: the kernel time-shares the PMU, so a counter
/// may only have been running for part of the time it was enabled. The
/// standard estimate scales the raw count by enabled/running; running == 0
/// (never scheduled) yields 0. Pure function, unit-tested directly.
std::int64_t perf_scale(std::uint64_t raw, std::uint64_t enabled,
                        std::uint64_t running);

/// One cumulative reading of a thread's counter group, already
/// multiplexing-scaled. Counters that failed to open read as 0.
struct PerfReading {
  std::int64_t value[kNumPerfCounters] = {};
  std::int64_t enabled_ns = 0;  ///< summed over open counters
  std::int64_t running_ns = 0;  ///< summed over open counters
};

/// Per-thread set of perf_event fds (pid=0, cpu=-1: this thread, any
/// CPU). open() must be called by the thread being measured.
class PerfCounterGroup {
 public:
  PerfCounterGroup();
  ~PerfCounterGroup();
  PerfCounterGroup(const PerfCounterGroup&) = delete;
  PerfCounterGroup& operator=(const PerfCounterGroup&) = delete;

  /// Open every counter that the kernel supports for the calling thread.
  /// Returns the number that opened; 0 means counters are unavailable
  /// here (see open_errno() for the first failure's errno).
  int open();
  void close();

  /// Read cumulative scaled values. False when no counter is open.
  bool read(PerfReading& out) const;

  bool is_open(PerfCounter c) const;
  int num_open() const { return num_open_; }
  int open_errno() const { return open_errno_; }

 private:
  int fd_[kNumPerfCounters];
  int num_open_ = 0;
  int open_errno_ = 0;
};

/// One (phase, level) aggregation bucket. All additive, so buckets from
/// concurrent scopes merge by summation.
struct ProfBucket {
  std::int64_t scopes = 0;   ///< measurement intervals folded in
  std::int64_t edges = 0;    ///< work items: edges of the graphs measured
  std::int64_t vtxs = 0;     ///< work items: vertices of the graphs measured
  std::int64_t wall_ns = 0;  ///< summed wall time of the intervals
  std::int64_t counters[kNumPerfCounters] = {};
  std::int64_t enabled_ns = 0;  ///< multiplexing diagnostic (summed)
  std::int64_t running_ns = 0;
};

/// Snapshot entry: one bucket plus its identity.
struct ProfPhase {
  std::string phase;
  int level = -1;  ///< hierarchy level (0 = finest); -1 = not level-scoped
  int threads = 0;  ///< distinct threads that folded into this bucket
  ProfBucket stats;
};

class Profiler {
 public:
  /// Probes counter availability on the constructing thread. The
  /// MCGP_PERF_DISABLE environment variable (any value but "0") forces
  /// the unavailable path — read per construction so tests can toggle it.
  Profiler();
  ~Profiler();
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// True when at least one hardware/software counter opened. When false
  /// the profiler still aggregates wall time and work items, and its JSON
  /// reports "available": false with the reason in status().
  bool counters_available() const { return available_; }
  /// "ok", or why counters are unavailable ("disabled (MCGP_PERF_DISABLE)",
  /// "perf_event_open failed: ...").
  const std::string& status() const { return status_; }
  /// Whether a specific counter opened during the construction probe.
  bool counter_open(PerfCounter c) const;

  /// The calling thread's counter group, opened lazily and registered
  /// under the mutex (mirrors TraceRecorder's aux-log registration).
  /// Null when counters are unavailable. Groups live until the profiler
  /// is destroyed.
  PerfCounterGroup* thread_group();

  /// Merge one measured interval into the (phase, level) bucket. The
  /// calling thread is registered in the bucket's distinct-thread set, so
  /// per-phase reports can show how many threads contributed.
  void fold(const char* phase, int level, const ProfBucket& delta);

  /// Record the run's configured thread count (Options::num_threads);
  /// emitted as the top-level "threads" member of the profile section.
  void set_threads(int n);

  /// All buckets, ordered by (phase, level).
  std::vector<ProfPhase> snapshot() const;
  /// Sum of one phase's buckets across levels (e.g. phase_total("run")
  /// is the ledger headline: the whole-run scope counts everything once).
  ProfBucket phase_total(const std::string& phase) const;

  /// The run report's "profile" section: {"schema_version", "available",
  /// "status", "counters": [names of open counters], "phases": [...]}.
  /// Each phase object carries the raw counters plus derived metrics
  /// (ipc, llc_miss_rate, branch_miss_rate, cycles_per_edge,
  /// branches_per_vtx) where the inputs are meaningful.
  void write_json_value(JsonWriter& w) const;

  /// Drop all buckets (thread groups and availability kept). Only valid
  /// while no scope is live.
  void clear();

 private:
  friend class ProfScope;

  bool available_ = false;
  bool counter_open_[kNumPerfCounters] = {};
  std::string status_;
  const std::uint64_t id_;  ///< process-unique; keys the thread-local cache

  mutable Mutex mu_;
  std::vector<std::unique_ptr<PerfCounterGroup>> groups_ MCGP_GUARDED_BY(mu_);
  std::map<std::pair<std::string, int>, ProfBucket> buckets_
      MCGP_GUARDED_BY(mu_);
  /// Distinct thread ordinals that folded into each bucket (kept beside
  /// buckets_ so ProfBucket itself stays plain additive data).
  std::map<std::pair<std::string, int>, std::set<std::uint64_t>>
      bucket_threads_ MCGP_GUARDED_BY(mu_);
  int threads_ MCGP_GUARDED_BY(mu_) = 1;
};

/// RAII measurement interval. Detached (null profiler) is one pointer
/// test in the constructor and one in the destructor. Attached, it reads
/// the thread's counters at entry and exit and folds the delta — cheap
/// enough for per-level seams, not meant for per-move granularity.
///
/// An `aux` scope measures a parallel task's slice of a phase whose
/// enclosing scope lives on the submitting thread. It contributes on-CPU
/// counters (and its thread identity) but neither wall time nor a scope
/// count — the enclosing scope already supplies both — and it disarms
/// itself when a non-aux scope of the same profiler is already live on
/// the current thread (work helping: the enclosing scope is counting this
/// thread, a second interval would double-count the chunk).
class ProfScope {
 public:
  ProfScope(Profiler* p, const char* phase, int level = -1, bool aux = false)
      : p_(p), phase_(phase), level_(level), aux_(aux) {
    if (p_ == nullptr) return;
    begin();
  }
  ~ProfScope() { finish(); }

  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

  /// Attach work-item counts (the measured graph's edges and vertices)
  /// so the bucket can report cycles-per-edge and branches-per-vertex.
  void work(std::int64_t edges, std::int64_t vtxs) {
    edges_ = edges;
    vtxs_ = vtxs;
  }

  /// Fold now instead of at scope exit; idempotent.
  void finish() {
    if (p_ == nullptr) return;
    end();
  }

 private:
  void begin();
  void end();

  Profiler* p_;
  const char* phase_;
  int level_;
  bool aux_ = false;
  std::int64_t edges_ = 0;
  std::int64_t vtxs_ = 0;
  PerfCounterGroup* grp_ = nullptr;
  bool have_begin_ = false;
  PerfReading begin_reading_;
  /// monotonic_now_ns() at begin() (support/timer.hpp: one shared clock
  /// for profiler, PhaseTimes, flight recorder, and metrics).
  std::int64_t t0_ns_ = 0;
};

}  // namespace mcgp
