// Run ledger: append-only JSONL records of partitioning runs.
//
// Every bench executable and the mcpart CLI can append one line per
// partition() call to a ledger file (BENCH_runtime.json,
// BENCH_quality.json, or a user-chosen path). Each line is a
// self-contained JSON object — schema-versioned, stamped with the build's
// `git describe` — so the files accumulate a longitudinal performance /
// quality trajectory across commits that tools/mcgp_bench_diff/diff.py
// can gate on. Appending (never truncating) is the point: a ledger is a
// log, and two runs of the same binary extend the same history.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "support/types.hpp"

namespace mcgp {

struct Graph;
struct Options;
struct PartitionResult;
class Profiler;

/// One ledger line. The (experiment, algorithm, graph, nparts, ncon,
/// threads, seed) tuple is the identity diff.py joins baseline and
/// current records on; everything else is a measured metric.
struct RunRecord {
  std::string experiment;  ///< e.g. "runtime", "quality_rb", "mcpart"
  std::string algorithm;   ///< "MC-RB" or "MC-KW"
  std::string graph;       ///< graph name / input path
  idx_t nparts = 0;
  int ncon = 0;
  int threads = 1;
  std::uint64_t seed = 0;

  sum_t cut = 0;
  std::vector<real_t> imbalance;  ///< per constraint
  real_t max_imbalance = 0.0;
  /// Whether the run satisfied every constraint's tolerance (the balance
  /// contract, see PartitionResult::feasible). diff.py's --feasibility
  /// gate fails any record that regresses from feasible to infeasible.
  bool feasible = false;
  double seconds = 0.0;
  std::vector<std::pair<std::string, double>> phases;  ///< (name, seconds)
  std::int64_t peak_rss_bytes = -1;  ///< process high-water; -1 = unknown

  // Machine identity, so longitudinal ledgers spanning hosts stay
  // interpretable. diff.py ignores keys it does not know, so records
  // carrying these remain comparable against pre-existing baselines.
  std::string host;       ///< hostname; empty = unknown
  std::string cpu;        ///< CPU model string; empty = unknown
  int cores = 0;          ///< logical cores; 0 = unknown

  /// Path of the process-lifetime metrics snapshot written next to this
  /// ledger (see support/metrics.hpp); empty = none. A sidecar pointer,
  /// not a metric: diff.py ignores unknown keys, so old baselines stay
  /// comparable.
  std::string metrics_snapshot;

  // Headline hardware counters for the whole run (the profiler's "run"
  // phase), present only when a profiler was attached.
  bool profile_attached = false;
  bool profile_available = false;
  std::string profile_status;
  /// (counter name, multiplexing-scaled value) for every open counter.
  std::vector<std::pair<std::string, std::int64_t>> profile_counters;
};

/// The `git describe --always --dirty` of the build (baked in at
/// configure time), or "unknown" for builds outside a git checkout.
const char* build_git_describe();

/// Stable name of an Options::algorithm value ("MC-RB" / "MC-KW").
const char* algorithm_ledger_name(const Options& opts);

/// Assemble a record from a finished run: identity fields from
/// (experiment, graph_name, g, opts), metrics (cut, imbalances, wall and
/// phase times) from `r`, peak RSS read from the kernel now, host identity
/// from support/sysinfo. A non-null `prof` additionally stamps the record
/// with the run's headline hardware counters (or its unavailability
/// status when the kernel refused the counters).
RunRecord make_run_record(std::string experiment, std::string graph_name,
                          const Graph& g, const Options& opts,
                          const PartitionResult& r,
                          const Profiler* prof = nullptr);

/// Serialize one record as a single JSON line (newline-terminated).
void write_run_record(std::ostream& out, const RunRecord& rec);

/// Append one record to the ledger at `path`. Returns false (after a
/// warning on stderr) when the file cannot be opened — telemetry must
/// never fail the run it observes.
bool append_run_record(const std::string& path, const RunRecord& rec);

}  // namespace mcgp
