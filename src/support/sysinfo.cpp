#include "support/sysinfo.hpp"

#include <fstream>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace mcgp {

namespace {

std::string read_hostname() {
#if defined(__unix__) || defined(__APPLE__)
  char buf[256] = {};
  if (::gethostname(buf, sizeof(buf) - 1) == 0 && buf[0] != '\0') {
    return std::string(buf);
  }
#endif
  return "unknown";
}

std::string read_cpu_model() {
  // Linux: the first "model name" line of /proc/cpuinfo. Other systems
  // (or ARM kernels without the field) fall through to "unknown".
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("model name", 0) != 0) continue;
    const std::string::size_type colon = line.find(':');
    if (colon == std::string::npos) break;
    std::string::size_type start = colon + 1;
    while (start < line.size() && line[start] == ' ') ++start;
    if (start < line.size()) return line.substr(start);
    break;
  }
  return "unknown";
}

HostInfo read_host_info() {
  HostInfo info;
  info.hostname = read_hostname();
  info.cpu_model = read_cpu_model();
  info.cores = static_cast<int>(std::thread::hardware_concurrency());
  return info;
}

}  // namespace

const HostInfo& host_info() {
  static const HostInfo info = read_host_info();
  return info;
}

}  // namespace mcgp
