// Minimal streaming JSON writer shared by the trace/counter/report
// exporters. Emits syntactically valid JSON (correct escaping, no
// trailing commas) without building an in-memory document tree.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string_view>
#include <vector>

namespace mcgp {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  void begin_object() {
    separate();
    out_ << '{';
    stack_.push_back(State{false, true});
  }
  void end_object() {
    out_ << '}';
    stack_.pop_back();
  }
  void begin_array() {
    separate();
    out_ << '[';
    stack_.push_back(State{false, false});
  }
  void end_array() {
    out_ << ']';
    stack_.pop_back();
  }

  /// Key of the next object member.
  void key(std::string_view k) {
    separate();
    write_string(k);
    out_ << ':';
    pending_key_ = true;
  }

  void value(std::string_view v) {
    separate();
    write_string(v);
  }
  void value(const char* v) { value(std::string_view(v)); }
  void value(bool v) {
    separate();
    out_ << (v ? "true" : "false");
  }
  void value(std::int64_t v) {
    separate();
    out_ << v;
  }
  void value(std::uint64_t v) {
    separate();
    out_ << v;
  }
  void value(std::int32_t v) { value(static_cast<std::int64_t>(v)); }
  void value(double v) {
    separate();
    if (!std::isfinite(v)) {  // JSON has no Inf/NaN
      out_ << "null";
      return;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    out_ << buf;
  }

  template <typename T>
  void member(std::string_view k, T v) {
    key(k);
    value(v);
  }

 private:
  struct State {
    bool has_items;
    bool is_object;
  };

  /// Emit the comma between siblings; a value directly after key() never
  /// needs one.
  void separate() {
    if (pending_key_) {
      pending_key_ = false;
      return;
    }
    if (!stack_.empty()) {
      if (stack_.back().has_items) out_ << ',';
      stack_.back().has_items = true;
    }
  }

  void write_string(std::string_view s) {
    out_ << '"';
    for (const char c : s) {
      switch (c) {
        case '"': out_ << "\\\""; break;
        case '\\': out_ << "\\\\"; break;
        case '\n': out_ << "\\n"; break;
        case '\r': out_ << "\\r"; break;
        case '\t': out_ << "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(static_cast<unsigned char>(c)));
            out_ << buf;
          } else {
            out_ << c;
          }
      }
    }
    out_ << '"';
  }

  std::ostream& out_;
  std::vector<State> stack_;
  bool pending_key_ = false;
};

}  // namespace mcgp
