// Checked arithmetic and invariant-assertion macros for the audit layer.
//
// The partitioner's bookkeeping (part weights, cut values, FM gains) is
// maintained incrementally for speed and therefore drifts silently when a
// code path forgets an update. The audit layer (core/audit.hpp) recomputes
// those quantities from scratch at pipeline seams and compares; this
// header supplies its two building blocks:
//
//  * checked sum_t arithmetic — recomputations over adversarial inputs
//    (huge weights from a fuzzer or a hostile file) must report overflow
//    as a diagnosable failure instead of wrapping into silently-wrong
//    "expected" values that mask or fabricate violations;
//
//  * MCGP_AUDIT / MCGP_AUDIT_MSG — assertion macros that compile to a
//    null-pointer test when auditing is off and raise AuditFailure with
//    file/line/expression context when an invariant does not hold.
#pragma once

#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <type_traits>

#include "support/types.hpp"

namespace mcgp {

/// Thrown when a runtime invariant audit fails (or when a checked
/// recomputation overflows). Deriving from logic_error rather than
/// runtime_error: a violation is a bug in the partitioner, not bad input.
class AuditFailure : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// a + b with overflow detection.
inline sum_t checked_add(sum_t a, sum_t b) {
  sum_t r;
  if (__builtin_add_overflow(a, b, &r)) {
    throw AuditFailure("sum_t overflow in checked_add(" + std::to_string(a) +
                       ", " + std::to_string(b) + ")");
  }
  return r;
}

/// a - b with overflow detection.
inline sum_t checked_sub(sum_t a, sum_t b) {
  sum_t r;
  if (__builtin_sub_overflow(a, b, &r)) {
    throw AuditFailure("sum_t overflow in checked_sub(" + std::to_string(a) +
                       ", " + std::to_string(b) + ")");
  }
  return r;
}

/// a * b with overflow detection.
inline sum_t checked_mul(sum_t a, sum_t b) {
  sum_t r;
  if (__builtin_mul_overflow(a, b, &r)) {
    throw AuditFailure("sum_t overflow in checked_mul(" + std::to_string(a) +
                       ", " + std::to_string(b) + ")");
  }
  return r;
}

/// a + b clamped to the sum_t range instead of throwing. For telemetry
/// accumulators (metrics counters, histogram sums) that must never abort
/// the run they observe: on overflow the result pins at the numeric rail
/// and the caller records the saturation as an explicit fact (the metrics
/// registry raises a `saturated` flag on the affected series).
inline sum_t saturating_add(sum_t a, sum_t b) {
  sum_t r;
  if (__builtin_add_overflow(a, b, &r)) {
    return b >= 0 ? std::numeric_limits<sum_t>::max()
                  : std::numeric_limits<sum_t>::min();
  }
  return r;
}

/// saturating_add that additionally latches `saturated` to true when the
/// rail was hit (never resets it — callers accumulate the flag).
inline sum_t saturating_add(sum_t a, sum_t b, bool& saturated) {
  sum_t r;
  if (__builtin_add_overflow(a, b, &r)) {
    saturated = true;
    return b >= 0 ? std::numeric_limits<sum_t>::max()
                  : std::numeric_limits<sum_t>::min();
  }
  return r;
}

/// a - b clamped to the sum_t range instead of throwing; see saturating_add.
inline sum_t saturating_sub(sum_t a, sum_t b) {
  sum_t r;
  if (__builtin_sub_overflow(a, b, &r)) {
    return b < 0 ? std::numeric_limits<sum_t>::max()
                 : std::numeric_limits<sum_t>::min();
  }
  return r;
}

/// Narrow a wide accumulator to a smaller integer type (idx_t, wgt_t) with
/// a range check. This is the only sanctioned way to go from sum_t back to
/// the narrow graph types — mcgp-lint's `narrowing` rule rejects raw
/// static_casts of sum_t expressions so that every narrowing either proves
/// its range or fails loudly instead of wrapping.
template <typename To>
inline To checked_narrow(sum_t v) {
  static_assert(std::is_integral_v<To> && sizeof(To) < sizeof(sum_t),
                "checked_narrow targets a strictly narrower integer type");
  To r = static_cast<To>(v);
  if (static_cast<sum_t>(r) != v) {
    throw AuditFailure("value " + std::to_string(v) +
                       " does not fit the narrow type in checked_narrow");
  }
  return r;
}

namespace detail {

/// Stream-concatenate arbitrary values into the audit message.
template <typename... Args>
std::string audit_msg(const Args&... args) {
  std::ostringstream oss;
  (oss << ... << args);
  return oss.str();
}

/// Null test for the audit macros. Routing the comparison through a
/// function keeps `MCGP_AUDIT(this, ...)` inside InvariantAuditor methods
/// free of -Wnonnull-compare (a literal `this != nullptr` is flagged).
inline bool audit_on(const void* aud) { return aud != nullptr; }

}  // namespace detail

}  // namespace mcgp

/// Assert `cond` under a (possibly null) auditor. `aud` must point to an
/// object with `fail(file, line, expr, msg)`; a null auditor makes the
/// whole statement one pointer test. The message expression is evaluated
/// only on failure.
#define MCGP_AUDIT_MSG(aud, cond, ...)                                      \
  do {                                                                      \
    if (::mcgp::detail::audit_on(aud) && !(cond)) {                         \
      (aud)->fail(__FILE__, __LINE__, #cond,                                \
                  ::mcgp::detail::audit_msg(__VA_ARGS__));                  \
    }                                                                       \
  } while (0)

/// Message-free form: the stringified condition is the diagnosis.
#define MCGP_AUDIT(aud, cond) MCGP_AUDIT_MSG(aud, cond, "")
