// Gain-bucket priority queue for FM/KL-style refinement.
//
// Classic Fiduccia–Mattheyses data structure: vertices keyed by an integer
// gain, stored in doubly linked lists (one per distinct gain value) over
// preallocated node storage, with a moving "max gain" pointer. All core
// operations are O(1); pop-max is amortized O(1) over a refinement pass.
//
// The gain range grows on demand (the structure rebuilds its bucket array
// when a key outside the current range is inserted), so callers do not need
// to bound gains a priori even on coarse graphs with large edge weights.
#pragma once

#include <vector>

#include "support/types.hpp"

namespace mcgp {

class BucketQueue {
 public:
  BucketQueue() = default;

  /// Prepare for elements with ids in [0, n). Clears contents.
  /// `expected_max_gain` sizes the initial bucket array (it may grow later).
  void reset(idx_t n, wgt_t expected_max_gain = 64);

  /// Number of elements currently queued.
  idx_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// True if element id is currently in the queue.
  bool contains(idx_t id) const { return in_queue_[to_size(id)]; }

  /// Current key of a queued element. Precondition: contains(id).
  wgt_t key(idx_t id) const {
    return keys_[to_size(id)];
  }

  /// Insert element with the given gain. Precondition: !contains(id).
  void insert(idx_t id, wgt_t gain);

  /// Remove a queued element. Precondition: contains(id).
  void remove(idx_t id);

  /// Change the key of a queued element. Precondition: contains(id).
  void update(idx_t id, wgt_t new_gain);

  /// Maximum key among queued elements. Precondition: !empty().
  wgt_t max_key();

  /// Remove and return an element with maximum key. Precondition: !empty().
  idx_t pop_max();

 private:
  std::size_t bucket_of(wgt_t gain) const {
    return to_size(static_cast<long long>(gain) + offset_);
  }
  void grow_range(wgt_t gain);
  void unlink(idx_t id);
  void link(idx_t id, wgt_t gain);

  static constexpr idx_t kNil = -1;

  // Per-element intrusive list nodes.
  std::vector<idx_t> next_;
  std::vector<idx_t> prev_;
  std::vector<wgt_t> keys_;
  std::vector<char> in_queue_;

  // buckets_[g + offset_] is the head of the list for gain g.
  std::vector<idx_t> buckets_;
  long long offset_ = 0;
  long long max_bucket_ = -1;  // index of highest non-empty bucket, -1 if none
  idx_t count_ = 0;
};

}  // namespace mcgp
