// Shared schema version of every machine-readable artifact the library
// emits: Chrome traces, JSON run reports, flight-recorder timelines, and
// run-ledger records. Consumers (tools/mcgp_bench_diff, external
// dashboards) key their parsers on this number; bump it whenever a field
// is removed or changes meaning — adding fields is backward compatible
// and does not require a bump.
#pragma once

#include <cstdint>

namespace mcgp {

inline constexpr std::int64_t kMcgpSchemaVersion = 1;

}  // namespace mcgp
