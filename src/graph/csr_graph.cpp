#include "graph/csr_graph.hpp"

#include "support/check.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <stdexcept>

namespace mcgp {

sum_t Graph::weighted_degree(idx_t v) const {
  sum_t s = 0;
  for (idx_t e = xadj[to_size(v)]; e < xadj[to_size(v + 1)]; ++e) {
    s = checked_add(s, adjwgt[to_size(e)]);
  }
  return s;
}

void Graph::finalize() {
  tvwgt.assign(to_size(ncon), 0);
  for (idx_t v = 0; v < nvtxs; ++v) {
    const wgt_t* w = weights(v);
    for (int i = 0; i < ncon; ++i) {
      tvwgt[to_size(i)] = checked_add(tvwgt[to_size(i)], w[i]);
    }
  }
  invtvwgt.assign(to_size(ncon), 0.0);
  for (int i = 0; i < ncon; ++i) {
    if (tvwgt[to_size(i)] > 0) {
      invtvwgt[to_size(i)] =
          1.0 / static_cast<real_t>(tvwgt[to_size(i)]);
    }
  }
}

namespace {

std::string err(const std::string& msg) { return msg; }

}  // namespace

std::string Graph::validate() const {
  std::ostringstream oss;
  if (nvtxs < 0) return err("negative nvtxs");
  if (ncon < 1 || ncon > kMaxNcon) return err("ncon out of range");
  if (xadj.size() != to_size(nvtxs) + 1)
    return err("xadj size != nvtxs+1");
  if (xadj[0] != 0) return err("xadj[0] != 0");
  for (idx_t v = 0; v < nvtxs; ++v) {
    if (xadj[to_size(v + 1)] < xadj[to_size(v)]) {
      oss << "xadj not monotone at vertex " << v;
      return oss.str();
    }
  }
  if (to_size(xadj[to_size(nvtxs)]) != adjncy.size())
    return err("xadj[nvtxs] != adjncy.size()");
  if (adjwgt.size() != adjncy.size()) return err("adjwgt size mismatch");
  if (vwgt.size() != to_size(nvtxs) * to_size(ncon))
    return err("vwgt size mismatch");
  for (idx_t v = 0; v < nvtxs; ++v) {
    for (idx_t e = xadj[to_size(v)]; e < xadj[to_size(v + 1)]; ++e) {
      const idx_t u = adjncy[to_size(e)];
      if (u < 0 || u >= nvtxs) {
        oss << "edge target out of range at vertex " << v;
        return oss.str();
      }
      if (u == v) {
        oss << "self loop at vertex " << v;
        return oss.str();
      }
    }
  }
  // Symmetry check with equal weights: count directed edges per unordered
  // pair via a sorted scan of each adjacency list pair. O(E * avg_deg) in
  // the worst case; acceptable for a validation routine.
  for (idx_t v = 0; v < nvtxs; ++v) {
    for (idx_t e = xadj[to_size(v)]; e < xadj[to_size(v + 1)]; ++e) {
      const idx_t u = adjncy[to_size(e)];
      bool found = false;
      for (idx_t f = xadj[to_size(u)]; f < xadj[to_size(u + 1)]; ++f) {
        if (adjncy[to_size(f)] == v && adjwgt[to_size(f)] == adjwgt[to_size(e)]) {
          found = true;
          break;
        }
      }
      if (!found) {
        oss << "asymmetric edge (" << v << "," << u << ")";
        return oss.str();
      }
    }
  }
  return std::string();
}

GraphBuilder::GraphBuilder(idx_t nvtxs, int ncon) : nvtxs_(nvtxs), ncon_(ncon) {
  if (nvtxs < 0) throw std::invalid_argument("GraphBuilder: negative nvtxs");
  if (ncon < 1 || ncon > kMaxNcon)
    throw std::invalid_argument("GraphBuilder: ncon out of range");
  vwgt_.assign(to_size(nvtxs) * to_size(ncon), 1);
}

void GraphBuilder::add_edge(idx_t u, idx_t v, wgt_t w) {
  if (u < 0 || u >= nvtxs_ || v < 0 || v >= nvtxs_)
    throw std::out_of_range("GraphBuilder::add_edge: vertex out of range");
  if (u == v) return;
  eu_.push_back(u);
  ev_.push_back(v);
  ew_.push_back(w);
}

void GraphBuilder::set_weights(idx_t v, const std::vector<wgt_t>& w) {
  if (static_cast<int>(w.size()) != ncon_)
    throw std::invalid_argument("GraphBuilder::set_weights: wrong arity");
  for (int i = 0; i < ncon_; ++i) set_weight(v, i, w[to_size(i)]);
}

void GraphBuilder::set_weight(idx_t v, int i, wgt_t w) {
  if (v < 0 || v >= nvtxs_)
    throw std::out_of_range("GraphBuilder::set_weight: vertex out of range");
  if (i < 0 || i >= ncon_)
    throw std::out_of_range("GraphBuilder::set_weight: constraint out of range");
  vwgt_[to_size(v) * to_size(ncon_) + to_size(i)] = w;
}

Graph GraphBuilder::build() {
  const std::size_t m = eu_.size();
  // Count both directions, bucket by source, then dedup per vertex.
  std::vector<idx_t> deg(to_size(nvtxs_) + 1, 0);
  for (std::size_t e = 0; e < m; ++e) {
    ++deg[to_size(eu_[e]) + 1];
    ++deg[to_size(ev_[e]) + 1];
  }
  for (idx_t v = 0; v < nvtxs_; ++v) deg[to_size(v) + 1] += deg[to_size(v)];

  std::vector<idx_t> dst(2 * m);
  std::vector<wgt_t> wdst(2 * m);
  {
    std::vector<idx_t> fill(deg.begin(), deg.end() - 1);
    for (std::size_t e = 0; e < m; ++e) {
      const idx_t u = eu_[e];
      const idx_t v = ev_[e];
      const wgt_t w = ew_[e];
      dst[to_size(fill[to_size(u)])] = v;
      wdst[to_size(fill[to_size(u)]++)] = w;
      dst[to_size(fill[to_size(v)])] = u;
      wdst[to_size(fill[to_size(v)]++)] = w;
    }
  }

  Graph g;
  g.nvtxs = nvtxs_;
  g.ncon = ncon_;
  g.xadj.assign(to_size(nvtxs_) + 1, 0);
  g.adjncy.reserve(2 * m);
  g.adjwgt.reserve(2 * m);

  // Dedup each vertex's list by sorting (index, weight) pairs and merging
  // runs with equal targets.
  std::vector<std::pair<idx_t, wgt_t>> row;
  for (idx_t v = 0; v < nvtxs_; ++v) {
    row.clear();
    for (idx_t e = deg[to_size(v)]; e < deg[to_size(v) + 1]; ++e) {
      row.emplace_back(dst[to_size(e)], wdst[to_size(e)]);
    }
    std::sort(row.begin(), row.end());
    for (std::size_t i = 0; i < row.size();) {
      idx_t target = row[i].first;
      sum_t w = 0;
      std::size_t j = i;
      while (j < row.size() && row[j].first == target) {
        w = checked_add(w, row[j].second);
        ++j;
      }
      g.adjncy.push_back(target);
      g.adjwgt.push_back(checked_narrow<wgt_t>(w));
      i = j;
    }
    g.xadj[to_size(v) + 1] = static_cast<idx_t>(g.adjncy.size());
  }

  g.vwgt = std::move(vwgt_);
  g.finalize();

  eu_.clear();
  ev_.clear();
  ew_.clear();
  vwgt_.assign(to_size(nvtxs_) * to_size(ncon_), 1);
  return g;
}

Graph make_graph(idx_t nvtxs, int ncon, std::vector<idx_t> xadj,
                 std::vector<idx_t> adjncy, std::vector<wgt_t> adjwgt,
                 std::vector<wgt_t> vwgt) {
  Graph g;
  g.nvtxs = nvtxs;
  g.ncon = ncon;
  g.xadj = std::move(xadj);
  g.adjncy = std::move(adjncy);
  g.adjwgt = std::move(adjwgt);
  g.vwgt = std::move(vwgt);
  if (g.adjwgt.empty()) g.adjwgt.assign(g.adjncy.size(), 1);
  if (g.vwgt.empty()) g.vwgt.assign(to_size(nvtxs) * to_size(ncon), 1);
  g.finalize();
  return g;
}

}  // namespace mcgp
