#include "graph/part_report.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "graph/metrics.hpp"
#include "support/check.hpp"
#include "support/flight_recorder.hpp"
#include "support/json_writer.hpp"
#include "support/perf_counters.hpp"
#include "support/schema.hpp"

namespace mcgp {

PartitionReport analyze_partition(const Graph& g,
                                  const std::vector<idx_t>& part,
                                  idx_t nparts) {
  PartitionReport rep;
  rep.nparts = nparts;
  rep.edge_cut = edge_cut(g, part);
  rep.communication_volume = communication_volume(g, part, nparts);
  rep.imbalance = imbalance(g, part, nparts);
  rep.parts.assign(to_size(nparts), PartStats{});
  for (auto& ps : rep.parts) {
    ps.weights.assign(to_size(g.ncon), 0);
    ps.shares.assign(to_size(g.ncon), 0.0);
  }

  // Adjacency between parts, deduplicated with a timestamped marker.
  std::vector<std::vector<char>> adj(
      to_size(nparts),
      std::vector<char>(to_size(nparts), 0));

  for (idx_t v = 0; v < g.nvtxs; ++v) {
    const idx_t p = part[to_size(v)];
    PartStats& ps = rep.parts[to_size(p)];
    ++ps.vertices;
    const wgt_t* w = g.weights(v);
    for (int i = 0; i < g.ncon; ++i) {
      ps.weights[to_size(i)] = checked_add(ps.weights[to_size(i)], w[i]);
    }

    bool on_boundary = false;
    for (idx_t e = g.xadj[to_size(v)]; e < g.xadj[to_size(v + 1)]; ++e) {
      const idx_t q = part[to_size(g.adjncy[to_size(e)])];
      if (q != p) {
        on_boundary = true;
        ps.external_edge_weight =
            checked_add(ps.external_edge_weight, g.adjwgt[to_size(e)]);
        adj[to_size(p)][to_size(q)] = 1;
      }
    }
    if (on_boundary) ++ps.boundary_vertices;
  }

  for (idx_t p = 0; p < nparts; ++p) {
    PartStats& ps = rep.parts[to_size(p)];
    for (int i = 0; i < g.ncon; ++i) {
      if (g.tvwgt[to_size(i)] > 0) {
        ps.shares[to_size(i)] =
            static_cast<real_t>(ps.weights[to_size(i)]) *
            g.invtvwgt[to_size(i)];
      }
    }
    idx_t deg = 0;
    for (idx_t q = 0; q < nparts; ++q) {
      deg += adj[to_size(p)][to_size(q)];
    }
    ps.adjacent_parts = deg;
    rep.max_adjacent_parts = std::max(rep.max_adjacent_parts, deg);
  }
  return rep;
}

void print_report(std::ostream& out, const PartitionReport& rep) {
  out << "edge-cut: " << rep.edge_cut
      << "   comm-volume: " << rep.communication_volume
      << "   max subdomain connectivity: " << rep.max_adjacent_parts << "\n";
  out << "imbalance per constraint:";
  for (const real_t lb : rep.imbalance) out << ' ' << lb;
  out << "\n";
  if (rep.feasible >= 0) {
    out << "feasible: " << (rep.feasible != 0 ? "yes" : "NO")
        << "  (held to";
    for (const real_t u : rep.ubvec_used) out << ' ' << u;
    out << ")\n";
  }
  out << std::left << std::setw(6) << "part" << std::setw(10) << "vertices"
      << std::setw(10) << "boundary" << std::setw(8) << "nadj"
      << std::setw(10) << "ext-wgt" << "shares\n";
  for (idx_t p = 0; p < rep.nparts; ++p) {
    const PartStats& ps = rep.parts[to_size(p)];
    out << std::left << std::setw(6) << p << std::setw(10) << ps.vertices
        << std::setw(10) << ps.boundary_vertices << std::setw(8)
        << ps.adjacent_parts << std::setw(10) << ps.external_edge_weight;
    for (const real_t s : ps.shares) out << ' ' << std::setprecision(4) << s;
    out << "\n";
  }
}

void write_report_json(std::ostream& out, const PartitionReport& rep,
                       const FlightRecorder* flight, const Profiler* prof) {
  JsonWriter w(out);
  w.begin_object();
  w.member("schema_version", kMcgpSchemaVersion);
  w.member("nparts", rep.nparts);
  w.member("edge_cut", rep.edge_cut);
  w.member("communication_volume", rep.communication_volume);
  w.member("max_adjacent_parts", rep.max_adjacent_parts);
  w.key("imbalance");
  w.begin_array();
  for (const real_t lb : rep.imbalance) w.value(lb);
  w.end_array();
  if (rep.feasible >= 0) {
    w.member("feasible", rep.feasible != 0);
    w.key("ubvec_used");
    w.begin_array();
    for (const real_t u : rep.ubvec_used) w.value(u);
    w.end_array();
  }
  w.key("parts");
  w.begin_array();
  for (const PartStats& ps : rep.parts) {
    w.begin_object();
    w.member("vertices", ps.vertices);
    w.member("boundary_vertices", ps.boundary_vertices);
    w.member("adjacent_parts", ps.adjacent_parts);
    w.member("external_edge_weight", ps.external_edge_weight);
    w.key("weights");
    w.begin_array();
    for (const sum_t wt : ps.weights) w.value(wt);
    w.end_array();
    w.key("shares");
    w.begin_array();
    for (const real_t s : ps.shares) w.value(s);
    w.end_array();
    w.end_object();
  }
  w.end_array();
  if (flight != nullptr) {
    w.key("timeline");
    flight->write_json_value(w);
  }
  if (prof != nullptr) {
    w.key("profile");
    prof->write_json_value(w);
  }
  w.end_object();
  out << '\n';
}

std::string report_to_json(const PartitionReport& rep,
                           const FlightRecorder* flight,
                           const Profiler* prof) {
  std::ostringstream out;
  write_report_json(out, rep, flight, prof);
  return out.str();
}

}  // namespace mcgp
