// Human-readable partition quality reports: per-part weight shares,
// boundary sizes, subdomain connectivity — the kind of summary a user
// inspects before trusting a decomposition.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "graph/csr_graph.hpp"

namespace mcgp {

class FlightRecorder;
class Profiler;

struct PartStats {
  idx_t vertices = 0;
  std::vector<sum_t> weights;    ///< per-constraint weight
  std::vector<real_t> shares;    ///< weight / total, per constraint
  idx_t boundary_vertices = 0;   ///< vertices with a cut edge
  idx_t adjacent_parts = 0;      ///< distinct neighboring subdomains
  sum_t external_edge_weight = 0;///< cut weight incident to this part
};

struct PartitionReport {
  idx_t nparts = 0;
  sum_t edge_cut = 0;
  sum_t communication_volume = 0;
  std::vector<real_t> imbalance;     ///< per constraint
  std::vector<PartStats> parts;
  idx_t max_adjacent_parts = 0;      ///< worst subdomain connectivity
  /// Balance-contract verdict, when the caller has one (analyze_partition
  /// cannot compute it — the tolerances live in the run, not the graph):
  /// -1 unknown, else PartitionResult::feasible with the tolerances the
  /// run was held to in `ubvec_used`.
  int feasible = -1;
  std::vector<real_t> ubvec_used;
};

/// Compute the full report in one pass over the graph.
PartitionReport analyze_partition(const Graph& g,
                                  const std::vector<idx_t>& part,
                                  idx_t nparts);

/// Pretty-print (fixed-width table plus summary lines).
void print_report(std::ostream& out, const PartitionReport& report);

/// Machine-readable counterpart of print_report: serialize every report
/// field as one JSON object (stamped with "schema_version"). A non-null
/// `flight` additionally embeds its retained sample window plus memory
/// high-water marks as a "timeline" section; a non-null `prof` embeds its
/// per-phase hardware-counter aggregates as a "profile" section (emitted
/// with "available": false when the kernel refused the counters).
void write_report_json(std::ostream& out, const PartitionReport& report,
                       const FlightRecorder* flight = nullptr,
                       const Profiler* prof = nullptr);
std::string report_to_json(const PartitionReport& report,
                           const FlightRecorder* flight = nullptr,
                           const Profiler* prof = nullptr);

}  // namespace mcgp
