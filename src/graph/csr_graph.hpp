// CSR graph with multi-constraint (vector) vertex weights.
//
// This is the central data structure of the library: an undirected graph
// stored in compressed-sparse-row form, where every vertex carries `ncon`
// integer weights (one per balance constraint) and every edge carries an
// integer weight. Both directions of each undirected edge are stored.
#pragma once

#include <string>
#include <vector>

#include "support/types.hpp"

namespace mcgp {

struct Graph {
  idx_t nvtxs = 0;  ///< number of vertices
  int ncon = 1;     ///< number of weights (constraints) per vertex

  /// CSR row pointers, size nvtxs+1. Edges of v: adjncy[xadj[v]..xadj[v+1]).
  std::vector<idx_t> xadj{0};
  /// CSR column indices, size 2*|E| (both directions stored).
  std::vector<idx_t> adjncy;
  /// Edge weights, parallel to adjncy. Symmetric: w(u,v) == w(v,u).
  std::vector<wgt_t> adjwgt;
  /// Vertex weights, row-major: weight i of vertex v is vwgt[v*ncon + i].
  std::vector<wgt_t> vwgt;

  /// Per-constraint totals (cached by finalize()).
  std::vector<sum_t> tvwgt;
  /// 1 / tvwgt[i] as real, or 0 if tvwgt[i] == 0 (cached by finalize()).
  std::vector<real_t> invtvwgt;

  /// Number of undirected edges.
  idx_t nedges() const { return static_cast<idx_t>(adjncy.size() / 2); }

  /// Degree of vertex v.
  idx_t degree(idx_t v) const {
    return xadj[to_size(v) + 1] - xadj[to_size(v)];
  }

  /// Weight i of vertex v.
  wgt_t weight(idx_t v, int i) const {
    return vwgt[to_size(v) * to_size(ncon) + to_size(i)];
  }

  /// Pointer to the ncon-vector of weights of vertex v.
  const wgt_t* weights(idx_t v) const {
    return vwgt.data() + to_size(v) * to_size(ncon);
  }
  wgt_t* weights(idx_t v) {
    return vwgt.data() + to_size(v) * to_size(ncon);
  }

  /// Sum of adjwgt over all stored (directed) edges of v.
  sum_t weighted_degree(idx_t v) const;

  /// Recompute cached totals (tvwgt, invtvwgt). Must be called after any
  /// change to vwgt or ncon. Builders and generators call this for you.
  void finalize();

  /// Verify structural invariants (sorted CSR not required): xadj monotone,
  /// targets in range, no self loops, adjacency symmetric with equal
  /// weights, vwgt/adjwgt sizes consistent. Returns an empty string when
  /// valid, else a description of the first problem found.
  std::string validate() const;
};

/// Incremental builder: collect undirected edges (u, v, w), then build a
/// deduplicated symmetric CSR graph. Parallel edges are merged by summing
/// their weights; self loops are dropped.
class GraphBuilder {
 public:
  GraphBuilder(idx_t nvtxs, int ncon);

  idx_t nvtxs() const { return nvtxs_; }
  int ncon() const { return ncon_; }

  /// Record an undirected edge. Self loops are ignored.
  void add_edge(idx_t u, idx_t v, wgt_t w = 1);

  /// Set all ncon weights of a vertex.
  void set_weights(idx_t v, const std::vector<wgt_t>& w);
  /// Set one weight of a vertex.
  void set_weight(idx_t v, int i, wgt_t w);

  /// Build the graph. The builder is left empty afterwards.
  Graph build();

 private:
  idx_t nvtxs_;
  int ncon_;
  std::vector<idx_t> eu_, ev_;
  std::vector<wgt_t> ew_;
  std::vector<wgt_t> vwgt_;
};

/// Convenience: build a graph directly from CSR arrays (both directions
/// already present and symmetric). Weights default to 1 when empty.
Graph make_graph(idx_t nvtxs, int ncon, std::vector<idx_t> xadj,
                 std::vector<idx_t> adjncy, std::vector<wgt_t> adjwgt = {},
                 std::vector<wgt_t> vwgt = {});

}  // namespace mcgp
