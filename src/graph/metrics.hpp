// Partition quality metrics: edge-cut, per-constraint load imbalance,
// communication volume, boundary statistics, and validation.
#pragma once

#include <string>
#include <vector>

#include "graph/csr_graph.hpp"

namespace mcgp {

/// Weighted edge-cut: total weight of edges whose endpoints lie in
/// different parts (each undirected edge counted once).
sum_t edge_cut(const Graph& g, const std::vector<idx_t>& part);

/// Per-part, per-constraint weight sums: result[p*ncon + i].
std::vector<sum_t> part_weights(const Graph& g, const std::vector<idx_t>& part,
                                idx_t nparts);

/// Per-constraint load imbalance: lb[i] = nparts * max_p ŵ_i(V_p), the
/// paper's definition (1.0 = perfect balance; 1.05 = 5% over average).
/// A constraint with zero total weight reports 1.0 (trivially balanced).
std::vector<real_t> imbalance(const Graph& g, const std::vector<idx_t>& part,
                              idx_t nparts);

/// Worst imbalance over all constraints.
real_t max_imbalance(const Graph& g, const std::vector<idx_t>& part,
                     idx_t nparts);

/// Per-constraint load imbalance against explicit per-part target
/// fractions: lb[i] = max_p ŵ_i(V_p) / tpwgts[p]. With uniform targets
/// (tpwgts[p] = 1/nparts) this equals imbalance(). `tpwgts` must have
/// size nparts and sum to ~1.
std::vector<real_t> target_imbalance(const Graph& g,
                                     const std::vector<idx_t>& part,
                                     idx_t nparts,
                                     const std::vector<real_t>& tpwgts);

/// Total communication volume: for every vertex, the number of distinct
/// remote parts among its neighbors (METIS "totalv" definition).
sum_t communication_volume(const Graph& g, const std::vector<idx_t>& part,
                           idx_t nparts);

/// Number of boundary vertices (vertices with at least one cut edge).
idx_t boundary_vertices(const Graph& g, const std::vector<idx_t>& part);

/// Total number of connected components summed over all parts (equals
/// nparts when every subdomain is contiguous — a property FE solvers
/// often prefer but multilevel partitioners do not guarantee).
idx_t count_part_components(const Graph& g, const std::vector<idx_t>& part,
                            idx_t nparts);

/// Number of vertices whose part differs between two assignments (the
/// migration volume of a repartitioning step).
idx_t moved_vertices(const std::vector<idx_t>& a, const std::vector<idx_t>& b);

/// Check that `part` is a structurally valid nparts-way partition of g:
/// right size, all ids in range. If `require_nonempty`, every part must
/// contain at least one vertex. Returns "" when valid, else a description.
std::string validate_partition(const Graph& g, const std::vector<idx_t>& part,
                               idx_t nparts, bool require_nonempty = false);

}  // namespace mcgp
