#include "graph/metrics.hpp"

#include <algorithm>
#include <sstream>

#include "support/check.hpp"

namespace mcgp {

sum_t edge_cut(const Graph& g, const std::vector<idx_t>& part) {
  sum_t cut = 0;
  for (idx_t v = 0; v < g.nvtxs; ++v) {
    const idx_t pv = part[to_size(v)];
    for (idx_t e = g.xadj[to_size(v)]; e < g.xadj[to_size(v + 1)]; ++e) {
      if (part[to_size(g.adjncy[to_size(e)])] != pv) {
        cut = checked_add(cut, g.adjwgt[to_size(e)]);
      }
    }
  }
  return cut / 2;
}

std::vector<sum_t> part_weights(const Graph& g, const std::vector<idx_t>& part,
                                idx_t nparts) {
  std::vector<sum_t> pwgts(to_size(nparts) * to_size(g.ncon), 0);
  for (idx_t v = 0; v < g.nvtxs; ++v) {
    const idx_t p = part[to_size(v)];
    const wgt_t* w = g.weights(v);
    for (int i = 0; i < g.ncon; ++i) {
      sum_t& slot = pwgts[to_size(p) * to_size(g.ncon) + to_size(i)];
      slot = checked_add(slot, w[i]);
    }
  }
  return pwgts;
}

std::vector<real_t> imbalance(const Graph& g, const std::vector<idx_t>& part,
                              idx_t nparts) {
  const std::vector<sum_t> pwgts = part_weights(g, part, nparts);
  std::vector<real_t> lb(to_size(g.ncon), 1.0);
  for (int i = 0; i < g.ncon; ++i) {
    if (g.tvwgt[to_size(i)] <= 0) continue;
    sum_t maxw = 0;
    for (idx_t p = 0; p < nparts; ++p) {
      maxw = std::max(maxw, pwgts[to_size(p) * to_size(g.ncon) + to_size(i)]);
    }
    lb[to_size(i)] = static_cast<real_t>(maxw) * nparts *
                                      g.invtvwgt[to_size(i)];
  }
  return lb;
}

real_t max_imbalance(const Graph& g, const std::vector<idx_t>& part,
                     idx_t nparts) {
  const std::vector<real_t> lb = imbalance(g, part, nparts);
  return *std::max_element(lb.begin(), lb.end());
}

std::vector<real_t> target_imbalance(const Graph& g,
                                     const std::vector<idx_t>& part,
                                     idx_t nparts,
                                     const std::vector<real_t>& tpwgts) {
  const std::vector<sum_t> pwgts = part_weights(g, part, nparts);
  std::vector<real_t> lb(to_size(g.ncon), 1.0);
  for (int i = 0; i < g.ncon; ++i) {
    if (g.tvwgt[to_size(i)] <= 0) continue;
    real_t worst = 0.0;
    for (idx_t p = 0; p < nparts; ++p) {
      const real_t share =
          static_cast<real_t>(pwgts[to_size(p) * to_size(g.ncon) + to_size(i)]) *
          g.invtvwgt[to_size(i)];
      worst = std::max(worst, share / tpwgts[to_size(p)]);
    }
    lb[to_size(i)] = worst;
  }
  return lb;
}

sum_t communication_volume(const Graph& g, const std::vector<idx_t>& part,
                           idx_t nparts) {
  sum_t total = 0;
  std::vector<idx_t> marker(to_size(nparts), -1);
  for (idx_t v = 0; v < g.nvtxs; ++v) {
    const idx_t pv = part[to_size(v)];
    for (idx_t e = g.xadj[to_size(v)]; e < g.xadj[to_size(v + 1)]; ++e) {
      const idx_t pu = part[to_size(g.adjncy[to_size(e)])];
      if (pu != pv && marker[to_size(pu)] != v) {
        marker[to_size(pu)] = v;
        total = checked_add(total, 1);
      }
    }
  }
  return total;
}

idx_t boundary_vertices(const Graph& g, const std::vector<idx_t>& part) {
  idx_t count = 0;
  for (idx_t v = 0; v < g.nvtxs; ++v) {
    const idx_t pv = part[to_size(v)];
    for (idx_t e = g.xadj[to_size(v)]; e < g.xadj[to_size(v + 1)]; ++e) {
      if (part[to_size(g.adjncy[to_size(e)])] != pv) {
        ++count;
        break;
      }
    }
  }
  return count;
}

idx_t count_part_components(const Graph& g, const std::vector<idx_t>& part,
                            idx_t nparts) {
  (void)nparts;
  std::vector<char> seen(to_size(g.nvtxs), 0);
  std::vector<idx_t> stack;
  idx_t components = 0;
  for (idx_t s = 0; s < g.nvtxs; ++s) {
    if (seen[to_size(s)]) continue;
    ++components;
    const idx_t p = part[to_size(s)];
    seen[to_size(s)] = 1;
    stack.assign(1, s);
    while (!stack.empty()) {
      const idx_t v = stack.back();
      stack.pop_back();
      for (idx_t e = g.xadj[to_size(v)]; e < g.xadj[to_size(v + 1)]; ++e) {
        const idx_t u = g.adjncy[to_size(e)];
        if (!seen[to_size(u)] &&
            part[to_size(u)] == p) {
          seen[to_size(u)] = 1;
          stack.push_back(u);
        }
      }
    }
  }
  return components;
}

idx_t moved_vertices(const std::vector<idx_t>& a, const std::vector<idx_t>& b) {
  idx_t moved = 0;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t v = 0; v < n; ++v) {
    if (a[v] != b[v]) ++moved;
  }
  return moved;
}

std::string validate_partition(const Graph& g, const std::vector<idx_t>& part,
                               idx_t nparts, bool require_nonempty) {
  std::ostringstream oss;
  if (part.size() != to_size(g.nvtxs))
    return "partition size != nvtxs";
  if (nparts < 1) return "nparts < 1";
  std::vector<idx_t> count(to_size(nparts), 0);
  for (idx_t v = 0; v < g.nvtxs; ++v) {
    const idx_t p = part[to_size(v)];
    if (p < 0 || p >= nparts) {
      oss << "part id " << p << " of vertex " << v << " out of range";
      return oss.str();
    }
    ++count[to_size(p)];
  }
  if (require_nonempty && g.nvtxs >= nparts) {
    for (idx_t p = 0; p < nparts; ++p) {
      if (count[to_size(p)] == 0) {
        oss << "part " << p << " is empty";
        return oss.str();
      }
    }
  }
  return std::string();
}

}  // namespace mcgp
