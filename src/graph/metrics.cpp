#include "graph/metrics.hpp"

#include <algorithm>
#include <sstream>

namespace mcgp {

sum_t edge_cut(const Graph& g, const std::vector<idx_t>& part) {
  sum_t cut = 0;
  for (idx_t v = 0; v < g.nvtxs; ++v) {
    const idx_t pv = part[static_cast<std::size_t>(v)];
    for (idx_t e = g.xadj[v]; e < g.xadj[v + 1]; ++e) {
      if (part[static_cast<std::size_t>(g.adjncy[e])] != pv) cut += g.adjwgt[e];
    }
  }
  return cut / 2;
}

std::vector<sum_t> part_weights(const Graph& g, const std::vector<idx_t>& part,
                                idx_t nparts) {
  std::vector<sum_t> pwgts(static_cast<std::size_t>(nparts) * g.ncon, 0);
  for (idx_t v = 0; v < g.nvtxs; ++v) {
    const idx_t p = part[static_cast<std::size_t>(v)];
    const wgt_t* w = g.weights(v);
    for (int i = 0; i < g.ncon; ++i) {
      pwgts[static_cast<std::size_t>(p) * g.ncon + i] += w[i];
    }
  }
  return pwgts;
}

std::vector<real_t> imbalance(const Graph& g, const std::vector<idx_t>& part,
                              idx_t nparts) {
  const std::vector<sum_t> pwgts = part_weights(g, part, nparts);
  std::vector<real_t> lb(static_cast<std::size_t>(g.ncon), 1.0);
  for (int i = 0; i < g.ncon; ++i) {
    if (g.tvwgt[static_cast<std::size_t>(i)] <= 0) continue;
    sum_t maxw = 0;
    for (idx_t p = 0; p < nparts; ++p) {
      maxw = std::max(maxw, pwgts[static_cast<std::size_t>(p) * g.ncon + i]);
    }
    lb[static_cast<std::size_t>(i)] = static_cast<real_t>(maxw) * nparts *
                                      g.invtvwgt[static_cast<std::size_t>(i)];
  }
  return lb;
}

real_t max_imbalance(const Graph& g, const std::vector<idx_t>& part,
                     idx_t nparts) {
  const std::vector<real_t> lb = imbalance(g, part, nparts);
  return *std::max_element(lb.begin(), lb.end());
}

std::vector<real_t> target_imbalance(const Graph& g,
                                     const std::vector<idx_t>& part,
                                     idx_t nparts,
                                     const std::vector<real_t>& tpwgts) {
  const std::vector<sum_t> pwgts = part_weights(g, part, nparts);
  std::vector<real_t> lb(static_cast<std::size_t>(g.ncon), 1.0);
  for (int i = 0; i < g.ncon; ++i) {
    if (g.tvwgt[static_cast<std::size_t>(i)] <= 0) continue;
    real_t worst = 0.0;
    for (idx_t p = 0; p < nparts; ++p) {
      const real_t share =
          static_cast<real_t>(pwgts[static_cast<std::size_t>(p) * g.ncon + i]) *
          g.invtvwgt[static_cast<std::size_t>(i)];
      worst = std::max(worst, share / tpwgts[static_cast<std::size_t>(p)]);
    }
    lb[static_cast<std::size_t>(i)] = worst;
  }
  return lb;
}

sum_t communication_volume(const Graph& g, const std::vector<idx_t>& part,
                           idx_t nparts) {
  sum_t total = 0;
  std::vector<idx_t> marker(static_cast<std::size_t>(nparts), -1);
  for (idx_t v = 0; v < g.nvtxs; ++v) {
    const idx_t pv = part[static_cast<std::size_t>(v)];
    for (idx_t e = g.xadj[v]; e < g.xadj[v + 1]; ++e) {
      const idx_t pu = part[static_cast<std::size_t>(g.adjncy[e])];
      if (pu != pv && marker[static_cast<std::size_t>(pu)] != v) {
        marker[static_cast<std::size_t>(pu)] = v;
        ++total;
      }
    }
  }
  return total;
}

idx_t boundary_vertices(const Graph& g, const std::vector<idx_t>& part) {
  idx_t count = 0;
  for (idx_t v = 0; v < g.nvtxs; ++v) {
    const idx_t pv = part[static_cast<std::size_t>(v)];
    for (idx_t e = g.xadj[v]; e < g.xadj[v + 1]; ++e) {
      if (part[static_cast<std::size_t>(g.adjncy[e])] != pv) {
        ++count;
        break;
      }
    }
  }
  return count;
}

idx_t count_part_components(const Graph& g, const std::vector<idx_t>& part,
                            idx_t nparts) {
  (void)nparts;
  std::vector<char> seen(static_cast<std::size_t>(g.nvtxs), 0);
  std::vector<idx_t> stack;
  idx_t components = 0;
  for (idx_t s = 0; s < g.nvtxs; ++s) {
    if (seen[static_cast<std::size_t>(s)]) continue;
    ++components;
    const idx_t p = part[static_cast<std::size_t>(s)];
    seen[static_cast<std::size_t>(s)] = 1;
    stack.assign(1, s);
    while (!stack.empty()) {
      const idx_t v = stack.back();
      stack.pop_back();
      for (idx_t e = g.xadj[v]; e < g.xadj[v + 1]; ++e) {
        const idx_t u = g.adjncy[e];
        if (!seen[static_cast<std::size_t>(u)] &&
            part[static_cast<std::size_t>(u)] == p) {
          seen[static_cast<std::size_t>(u)] = 1;
          stack.push_back(u);
        }
      }
    }
  }
  return components;
}

idx_t moved_vertices(const std::vector<idx_t>& a, const std::vector<idx_t>& b) {
  idx_t moved = 0;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t v = 0; v < n; ++v) {
    if (a[v] != b[v]) ++moved;
  }
  return moved;
}

std::string validate_partition(const Graph& g, const std::vector<idx_t>& part,
                               idx_t nparts, bool require_nonempty) {
  std::ostringstream oss;
  if (part.size() != static_cast<std::size_t>(g.nvtxs))
    return "partition size != nvtxs";
  if (nparts < 1) return "nparts < 1";
  std::vector<idx_t> count(static_cast<std::size_t>(nparts), 0);
  for (idx_t v = 0; v < g.nvtxs; ++v) {
    const idx_t p = part[static_cast<std::size_t>(v)];
    if (p < 0 || p >= nparts) {
      oss << "part id " << p << " of vertex " << v << " out of range";
      return oss.str();
    }
    ++count[static_cast<std::size_t>(p)];
  }
  if (require_nonempty && g.nvtxs >= nparts) {
    for (idx_t p = 0; p < nparts; ++p) {
      if (count[static_cast<std::size_t>(p)] == 0) {
        oss << "part " << p << " is empty";
        return oss.str();
      }
    }
  }
  return std::string();
}

}  // namespace mcgp
