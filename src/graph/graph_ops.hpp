// Structural graph algorithms used throughout the partitioner: traversal,
// connected components, induced subgraphs, and permutation.
#pragma once

#include <vector>

#include "graph/csr_graph.hpp"
#include "support/workspace.hpp"

namespace mcgp {

/// BFS distances from `source` (-1 for unreachable vertices).
std::vector<idx_t> bfs_distances(const Graph& g, idx_t source);

/// Connected component labels in [0, count). Returns component count.
idx_t connected_components(const Graph& g, std::vector<idx_t>& comp);

/// Number of connected components.
idx_t count_components(const Graph& g);

/// Induced subgraph on the vertices v with select[v] != 0. Edges to
/// non-selected vertices are dropped (their weight is lost — callers that
/// care about the cut account for it separately, as recursive bisection
/// does). `local_to_global[i]` maps subgraph vertex i back to g's ids.
/// A non-null `ws` supplies the dense global-to-local scratch map so
/// repeated extractions allocate only the subgraph itself.
Graph induced_subgraph(const Graph& g, const std::vector<char>& select,
                       std::vector<idx_t>& local_to_global,
                       Workspace* ws = nullptr);

/// Relabel vertices: vertex v of g becomes vertex perm[v] of the result.
/// `perm` must be a permutation of [0, nvtxs).
Graph permute_graph(const Graph& g, const std::vector<idx_t>& perm);

/// Multi-source BFS region growing: grows `nregions` contiguous regions
/// from random seeds until every reachable vertex is labeled; vertices in
/// components not containing a seed are swept up afterwards (assigned to a
/// fresh BFS from an arbitrary unlabeled vertex, reusing region labels
/// round-robin). Regions are approximately vertex-balanced because growth
/// proceeds in lockstep (one frontier layer per region per round).
/// Used by the synthetic weight generators to create contiguous
/// equal-weight regions, mirroring the SC'98 test-problem construction.
std::vector<idx_t> grow_regions(const Graph& g, idx_t nregions,
                                std::uint64_t seed);

}  // namespace mcgp
