#include "graph/graph_ops.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

#include "support/random.hpp"

namespace mcgp {

std::vector<idx_t> bfs_distances(const Graph& g, idx_t source) {
  std::vector<idx_t> dist(static_cast<std::size_t>(g.nvtxs), -1);
  if (source < 0 || source >= g.nvtxs) return dist;
  std::vector<idx_t> frontier{source};
  dist[static_cast<std::size_t>(source)] = 0;
  idx_t d = 0;
  std::vector<idx_t> next;
  while (!frontier.empty()) {
    next.clear();
    for (const idx_t v : frontier) {
      for (idx_t e = g.xadj[v]; e < g.xadj[v + 1]; ++e) {
        const idx_t u = g.adjncy[e];
        if (dist[static_cast<std::size_t>(u)] < 0) {
          dist[static_cast<std::size_t>(u)] = d + 1;
          next.push_back(u);
        }
      }
    }
    frontier.swap(next);
    ++d;
  }
  return dist;
}

idx_t connected_components(const Graph& g, std::vector<idx_t>& comp) {
  comp.assign(static_cast<std::size_t>(g.nvtxs), -1);
  idx_t count = 0;
  std::vector<idx_t> stack;
  for (idx_t s = 0; s < g.nvtxs; ++s) {
    if (comp[static_cast<std::size_t>(s)] >= 0) continue;
    comp[static_cast<std::size_t>(s)] = count;
    stack.assign(1, s);
    while (!stack.empty()) {
      const idx_t v = stack.back();
      stack.pop_back();
      for (idx_t e = g.xadj[v]; e < g.xadj[v + 1]; ++e) {
        const idx_t u = g.adjncy[e];
        if (comp[static_cast<std::size_t>(u)] < 0) {
          comp[static_cast<std::size_t>(u)] = count;
          stack.push_back(u);
        }
      }
    }
    ++count;
  }
  return count;
}

idx_t count_components(const Graph& g) {
  std::vector<idx_t> comp;
  return connected_components(g, comp);
}

Graph induced_subgraph(const Graph& g, const std::vector<char>& select,
                       std::vector<idx_t>& local_to_global, Workspace* ws) {
  if (select.size() != static_cast<std::size_t>(g.nvtxs))
    throw std::invalid_argument("induced_subgraph: select size mismatch");

  std::vector<idx_t> local_g2l;
  if (ws == nullptr) local_g2l.assign(static_cast<std::size_t>(g.nvtxs), -1);
  std::vector<idx_t>& global_to_local =
      ws != nullptr ? ws->g2l_map(static_cast<std::size_t>(g.nvtxs))
                    : local_g2l;
  local_to_global.clear();
  std::size_t sel_degree = 0;  // upper bound on the subgraph's edge count
  for (idx_t v = 0; v < g.nvtxs; ++v) {
    if (select[static_cast<std::size_t>(v)]) {
      global_to_local[static_cast<std::size_t>(v)] =
          static_cast<idx_t>(local_to_global.size());
      local_to_global.push_back(v);
      sel_degree += static_cast<std::size_t>(g.xadj[v + 1] - g.xadj[v]);
    }
  }

  Graph s;
  s.nvtxs = static_cast<idx_t>(local_to_global.size());
  s.ncon = g.ncon;
  s.xadj.assign(static_cast<std::size_t>(s.nvtxs) + 1, 0);
  s.vwgt.resize(static_cast<std::size_t>(s.nvtxs) * s.ncon);
  s.adjncy.reserve(sel_degree);
  s.adjwgt.reserve(sel_degree);

  for (idx_t lv = 0; lv < s.nvtxs; ++lv) {
    const idx_t v = local_to_global[static_cast<std::size_t>(lv)];
    for (int i = 0; i < s.ncon; ++i) {
      s.vwgt[static_cast<std::size_t>(lv) * s.ncon + i] = g.weight(v, i);
    }
    for (idx_t e = g.xadj[v]; e < g.xadj[v + 1]; ++e) {
      const idx_t lu = global_to_local[static_cast<std::size_t>(g.adjncy[e])];
      if (lu >= 0) {
        s.adjncy.push_back(lu);
        s.adjwgt.push_back(g.adjwgt[e]);
      }
    }
    s.xadj[static_cast<std::size_t>(lv) + 1] = static_cast<idx_t>(s.adjncy.size());
  }
  // Sparse reset restores the workspace map's all minus-one invariant.
  if (ws != nullptr) {
    for (const idx_t v : local_to_global) {
      global_to_local[static_cast<std::size_t>(v)] = -1;
    }
  }
  s.finalize();
  return s;
}

Graph permute_graph(const Graph& g, const std::vector<idx_t>& perm) {
  if (perm.size() != static_cast<std::size_t>(g.nvtxs))
    throw std::invalid_argument("permute_graph: perm size mismatch");
  std::vector<idx_t> inv(static_cast<std::size_t>(g.nvtxs), -1);
  for (idx_t v = 0; v < g.nvtxs; ++v) {
    const idx_t p = perm[static_cast<std::size_t>(v)];
    if (p < 0 || p >= g.nvtxs || inv[static_cast<std::size_t>(p)] != -1)
      throw std::invalid_argument("permute_graph: not a permutation");
    inv[static_cast<std::size_t>(p)] = v;
  }

  Graph r;
  r.nvtxs = g.nvtxs;
  r.ncon = g.ncon;
  r.xadj.assign(static_cast<std::size_t>(g.nvtxs) + 1, 0);
  r.adjncy.reserve(g.adjncy.size());
  r.adjwgt.reserve(g.adjwgt.size());
  r.vwgt.resize(g.vwgt.size());

  for (idx_t nv = 0; nv < r.nvtxs; ++nv) {
    const idx_t v = inv[static_cast<std::size_t>(nv)];
    for (int i = 0; i < r.ncon; ++i) {
      r.vwgt[static_cast<std::size_t>(nv) * r.ncon + i] = g.weight(v, i);
    }
    for (idx_t e = g.xadj[v]; e < g.xadj[v + 1]; ++e) {
      r.adjncy.push_back(perm[static_cast<std::size_t>(g.adjncy[e])]);
      r.adjwgt.push_back(g.adjwgt[e]);
    }
    r.xadj[static_cast<std::size_t>(nv) + 1] = static_cast<idx_t>(r.adjncy.size());
  }
  r.finalize();
  return r;
}

std::vector<idx_t> grow_regions(const Graph& g, idx_t nregions,
                                std::uint64_t seed) {
  if (nregions < 1) throw std::invalid_argument("grow_regions: nregions < 1");
  std::vector<idx_t> label(static_cast<std::size_t>(g.nvtxs), -1);
  if (g.nvtxs == 0) return label;
  nregions = std::min(nregions, g.nvtxs);

  Rng rng(seed);
  std::vector<idx_t> perm;
  random_permutation(g.nvtxs, perm, rng);

  // Pick distinct seeds; lockstep BFS: each round, every region expands by
  // one frontier layer, so regions end up with comparable vertex counts.
  std::vector<std::vector<idx_t>> frontier(static_cast<std::size_t>(nregions));
  for (idx_t r = 0; r < nregions; ++r) {
    const idx_t s = perm[static_cast<std::size_t>(r)];
    label[static_cast<std::size_t>(s)] = r;
    frontier[static_cast<std::size_t>(r)].push_back(s);
  }

  std::vector<idx_t> next;
  bool grew = true;
  while (grew) {
    grew = false;
    for (idx_t r = 0; r < nregions; ++r) {
      auto& f = frontier[static_cast<std::size_t>(r)];
      if (f.empty()) continue;
      next.clear();
      for (const idx_t v : f) {
        for (idx_t e = g.xadj[v]; e < g.xadj[v + 1]; ++e) {
          const idx_t u = g.adjncy[e];
          if (label[static_cast<std::size_t>(u)] < 0) {
            label[static_cast<std::size_t>(u)] = r;
            next.push_back(u);
          }
        }
      }
      f.swap(next);
      grew = grew || !f.empty();
    }
  }

  // Sweep components that contained no seed: BFS each from an unlabeled
  // vertex, cycling region ids so leftover components spread across regions.
  idx_t next_region = 0;
  std::vector<idx_t> stack;
  for (idx_t s = 0; s < g.nvtxs; ++s) {
    if (label[static_cast<std::size_t>(s)] >= 0) continue;
    const idx_t r = next_region;
    next_region = (next_region + 1) % nregions;
    label[static_cast<std::size_t>(s)] = r;
    stack.assign(1, s);
    while (!stack.empty()) {
      const idx_t v = stack.back();
      stack.pop_back();
      for (idx_t e = g.xadj[v]; e < g.xadj[v + 1]; ++e) {
        const idx_t u = g.adjncy[e];
        if (label[static_cast<std::size_t>(u)] < 0) {
          label[static_cast<std::size_t>(u)] = r;
          stack.push_back(u);
        }
      }
    }
  }
  return label;
}

}  // namespace mcgp
