#include "graph/graph_ops.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

#include "support/random.hpp"

namespace mcgp {

std::vector<idx_t> bfs_distances(const Graph& g, idx_t source) {
  std::vector<idx_t> dist(to_size(g.nvtxs), -1);
  if (source < 0 || source >= g.nvtxs) return dist;
  std::vector<idx_t> frontier{source};
  dist[to_size(source)] = 0;
  idx_t d = 0;
  std::vector<idx_t> next;
  while (!frontier.empty()) {
    next.clear();
    for (const idx_t v : frontier) {
      for (idx_t e = g.xadj[to_size(v)]; e < g.xadj[to_size(v + 1)]; ++e) {
        const idx_t u = g.adjncy[to_size(e)];
        if (dist[to_size(u)] < 0) {
          dist[to_size(u)] = d + 1;
          next.push_back(u);
        }
      }
    }
    frontier.swap(next);
    ++d;
  }
  return dist;
}

idx_t connected_components(const Graph& g, std::vector<idx_t>& comp) {
  comp.assign(to_size(g.nvtxs), -1);
  idx_t count = 0;
  std::vector<idx_t> stack;
  for (idx_t s = 0; s < g.nvtxs; ++s) {
    if (comp[to_size(s)] >= 0) continue;
    comp[to_size(s)] = count;
    stack.assign(1, s);
    while (!stack.empty()) {
      const idx_t v = stack.back();
      stack.pop_back();
      for (idx_t e = g.xadj[to_size(v)]; e < g.xadj[to_size(v + 1)]; ++e) {
        const idx_t u = g.adjncy[to_size(e)];
        if (comp[to_size(u)] < 0) {
          comp[to_size(u)] = count;
          stack.push_back(u);
        }
      }
    }
    ++count;
  }
  return count;
}

idx_t count_components(const Graph& g) {
  std::vector<idx_t> comp;
  return connected_components(g, comp);
}

Graph induced_subgraph(const Graph& g, const std::vector<char>& select,
                       std::vector<idx_t>& local_to_global, Workspace* ws) {
  if (select.size() != to_size(g.nvtxs))
    throw std::invalid_argument("induced_subgraph: select size mismatch");

  std::vector<idx_t> local_g2l;
  if (ws == nullptr) local_g2l.assign(to_size(g.nvtxs), -1);
  std::vector<idx_t>& global_to_local =
      ws != nullptr ? ws->g2l_map(to_size(g.nvtxs))
                    : local_g2l;
  local_to_global.clear();
  std::size_t sel_degree = 0;  // upper bound on the subgraph's edge count
  for (idx_t v = 0; v < g.nvtxs; ++v) {
    if (select[to_size(v)]) {
      global_to_local[to_size(v)] =
          static_cast<idx_t>(local_to_global.size());
      local_to_global.push_back(v);
      sel_degree += to_size(g.xadj[to_size(v + 1)] - g.xadj[to_size(v)]);
    }
  }

  Graph s;
  s.nvtxs = static_cast<idx_t>(local_to_global.size());
  s.ncon = g.ncon;
  s.xadj.assign(to_size(s.nvtxs) + 1, 0);
  s.vwgt.resize(to_size(s.nvtxs) * to_size(s.ncon));
  s.adjncy.reserve(sel_degree);
  s.adjwgt.reserve(sel_degree);

  for (idx_t lv = 0; lv < s.nvtxs; ++lv) {
    const idx_t v = local_to_global[to_size(lv)];
    for (int i = 0; i < s.ncon; ++i) {
      s.vwgt[to_size(lv) * to_size(s.ncon) + to_size(i)] = g.weight(v, i);
    }
    for (idx_t e = g.xadj[to_size(v)]; e < g.xadj[to_size(v + 1)]; ++e) {
      const idx_t lu = global_to_local[to_size(g.adjncy[to_size(e)])];
      if (lu >= 0) {
        s.adjncy.push_back(lu);
        s.adjwgt.push_back(g.adjwgt[to_size(e)]);
      }
    }
    s.xadj[to_size(lv) + 1] = static_cast<idx_t>(s.adjncy.size());
  }
  // Sparse reset restores the workspace map's all minus-one invariant.
  if (ws != nullptr) {
    for (const idx_t v : local_to_global) {
      global_to_local[to_size(v)] = -1;
    }
  }
  s.finalize();
  return s;
}

Graph permute_graph(const Graph& g, const std::vector<idx_t>& perm) {
  if (perm.size() != to_size(g.nvtxs))
    throw std::invalid_argument("permute_graph: perm size mismatch");
  std::vector<idx_t> inv(to_size(g.nvtxs), -1);
  for (idx_t v = 0; v < g.nvtxs; ++v) {
    const idx_t p = perm[to_size(v)];
    if (p < 0 || p >= g.nvtxs || inv[to_size(p)] != -1)
      throw std::invalid_argument("permute_graph: not a permutation");
    inv[to_size(p)] = v;
  }

  Graph r;
  r.nvtxs = g.nvtxs;
  r.ncon = g.ncon;
  r.xadj.assign(to_size(g.nvtxs) + 1, 0);
  r.adjncy.reserve(g.adjncy.size());
  r.adjwgt.reserve(g.adjwgt.size());
  r.vwgt.resize(g.vwgt.size());

  for (idx_t nv = 0; nv < r.nvtxs; ++nv) {
    const idx_t v = inv[to_size(nv)];
    for (int i = 0; i < r.ncon; ++i) {
      r.vwgt[to_size(nv) * to_size(r.ncon) + to_size(i)] = g.weight(v, i);
    }
    for (idx_t e = g.xadj[to_size(v)]; e < g.xadj[to_size(v + 1)]; ++e) {
      r.adjncy.push_back(perm[to_size(g.adjncy[to_size(e)])]);
      r.adjwgt.push_back(g.adjwgt[to_size(e)]);
    }
    r.xadj[to_size(nv) + 1] = static_cast<idx_t>(r.adjncy.size());
  }
  r.finalize();
  return r;
}

std::vector<idx_t> grow_regions(const Graph& g, idx_t nregions,
                                std::uint64_t seed) {
  if (nregions < 1) throw std::invalid_argument("grow_regions: nregions < 1");
  std::vector<idx_t> label(to_size(g.nvtxs), -1);
  if (g.nvtxs == 0) return label;
  nregions = std::min(nregions, g.nvtxs);

  Rng rng(seed);
  std::vector<idx_t> perm;
  random_permutation(g.nvtxs, perm, rng);

  // Pick distinct seeds; lockstep BFS: each round, every region expands by
  // one frontier layer, so regions end up with comparable vertex counts.
  std::vector<std::vector<idx_t>> frontier(to_size(nregions));
  for (idx_t r = 0; r < nregions; ++r) {
    const idx_t s = perm[to_size(r)];
    label[to_size(s)] = r;
    frontier[to_size(r)].push_back(s);
  }

  std::vector<idx_t> next;
  bool grew = true;
  while (grew) {
    grew = false;
    for (idx_t r = 0; r < nregions; ++r) {
      auto& f = frontier[to_size(r)];
      if (f.empty()) continue;
      next.clear();
      for (const idx_t v : f) {
        for (idx_t e = g.xadj[to_size(v)]; e < g.xadj[to_size(v + 1)]; ++e) {
          const idx_t u = g.adjncy[to_size(e)];
          if (label[to_size(u)] < 0) {
            label[to_size(u)] = r;
            next.push_back(u);
          }
        }
      }
      f.swap(next);
      grew = grew || !f.empty();
    }
  }

  // Sweep components that contained no seed: BFS each from an unlabeled
  // vertex, cycling region ids so leftover components spread across regions.
  idx_t next_region = 0;
  std::vector<idx_t> stack;
  for (idx_t s = 0; s < g.nvtxs; ++s) {
    if (label[to_size(s)] >= 0) continue;
    const idx_t r = next_region;
    next_region = (next_region + 1) % nregions;
    label[to_size(s)] = r;
    stack.assign(1, s);
    while (!stack.empty()) {
      const idx_t v = stack.back();
      stack.pop_back();
      for (idx_t e = g.xadj[to_size(v)]; e < g.xadj[to_size(v + 1)]; ++e) {
        const idx_t u = g.adjncy[to_size(e)];
        if (label[to_size(u)] < 0) {
          label[to_size(u)] = r;
          stack.push_back(u);
        }
      }
    }
  }
  return label;
}

}  // namespace mcgp
