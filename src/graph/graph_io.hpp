// METIS-compatible graph and partition file I/O.
//
// The .graph format (METIS 4/5 manual):
//   header:  <nvtxs> <nedges> [fmt [ncon]]
//   fmt is a 3-digit flag string "abc": a = vertex sizes present (ignored
//   here), b = vertex weights present, c = edge weights present.
//   Each following non-comment line i lists vertex i's [ncon weights]
//   followed by (neighbor, [edge weight]) pairs with 1-based neighbor ids.
//   Lines starting with '%' are comments.
//
// Partition files contain one 0-based part id per line.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "graph/csr_graph.hpp"

namespace mcgp {

/// Parse a METIS-format graph from a stream. Throws std::runtime_error on
/// malformed input (with a line number in the message).
Graph read_metis_graph(std::istream& in);

/// Parse a METIS-format graph from a file. Throws on I/O or parse errors.
Graph read_metis_graph_file(const std::string& path);

/// Write a graph in METIS format. Vertex weights are emitted whenever
/// ncon > 1 or any weight differs from 1; edge weights whenever any edge
/// weight differs from 1.
void write_metis_graph(std::ostream& out, const Graph& g);
void write_metis_graph_file(const std::string& path, const Graph& g);

/// Read / write a partition vector (one part id per line).
std::vector<idx_t> read_partition(std::istream& in);
std::vector<idx_t> read_partition_file(const std::string& path);

/// Validating variants: throw std::runtime_error unless the file holds
/// exactly `nvtxs` entries, every one inside [0, nparts). Use these when
/// the partition feeds refine_partition or metrics for a known graph.
std::vector<idx_t> read_partition(std::istream& in, idx_t nvtxs,
                                  idx_t nparts);
std::vector<idx_t> read_partition_file(const std::string& path, idx_t nvtxs,
                                       idx_t nparts);
void write_partition(std::ostream& out, const std::vector<idx_t>& part);
void write_partition_file(const std::string& path,
                          const std::vector<idx_t>& part);

}  // namespace mcgp
