#include "graph/graph_io.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace mcgp {

namespace {

[[noreturn]] void parse_error(std::size_t line_no, const std::string& what) {
  std::ostringstream oss;
  oss << "METIS graph parse error at line " << line_no << ": " << what;
  throw std::runtime_error(oss.str());
}

/// Fetch the next non-comment, non-blank line. Returns false on EOF.
bool next_data_line(std::istream& in, std::string& line, std::size_t& line_no) {
  while (std::getline(in, line)) {
    ++line_no;
    std::size_t i = 0;
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t' || line[i] == '\r')) ++i;
    if (i == line.size()) continue;  // blank
    if (line[i] == '%') continue;    // comment
    return true;
  }
  return false;
}

}  // namespace

Graph read_metis_graph(std::istream& in) {
  std::string line;
  std::size_t line_no = 0;
  if (!next_data_line(in, line, line_no)) parse_error(line_no, "missing header");

  long long nvtxs = 0, nedges = 0;
  std::string fmt = "000";
  int ncon = 0;
  {
    std::istringstream hs(line);
    if (!(hs >> nvtxs >> nedges)) parse_error(line_no, "bad header");
    std::string tok;
    if (hs >> tok) {
      if (tok.size() > 3 || tok.find_first_not_of("01") != std::string::npos) {
        parse_error(line_no,
                    "fmt must be at most three 0/1 flags (got \"" + tok +
                        "\")");
      }
      fmt = tok;
    }
    if (hs >> ncon) {
      if (ncon < 1 || ncon > kMaxNcon) parse_error(line_no, "ncon out of range");
    }
    if (nvtxs < 0 || nedges < 0) parse_error(line_no, "negative counts");
  }
  while (fmt.size() < 3) fmt.insert(fmt.begin(), '0');
  const bool has_vsize = fmt[fmt.size() - 3] == '1';
  const bool has_vwgt = fmt[fmt.size() - 2] == '1';
  const bool has_ewgt = fmt[fmt.size() - 1] == '1';
  if (ncon == 0) ncon = has_vwgt ? 1 : 1;

  Graph g;
  g.nvtxs = static_cast<idx_t>(nvtxs);
  g.ncon = ncon;
  g.xadj.assign(to_size(nvtxs) + 1, 0);
  g.adjncy.reserve(to_size(2 * nedges));
  g.adjwgt.reserve(to_size(2 * nedges));
  g.vwgt.assign(to_size(nvtxs) * to_size(ncon), 1);

  for (long long v = 0; v < nvtxs; ++v) {
    if (!next_data_line(in, line, line_no))
      parse_error(line_no, "unexpected EOF (fewer vertex lines than nvtxs)");
    std::istringstream ls(line);
    if (has_vsize) {
      long long vs;
      if (!(ls >> vs)) parse_error(line_no, "missing vertex size");
      if (vs < 0) parse_error(line_no, "negative vertex size");
    }
    if (has_vwgt) {
      for (int i = 0; i < ncon; ++i) {
        long long w;
        if (!(ls >> w)) parse_error(line_no, "missing vertex weight");
        if (w < 0) parse_error(line_no, "negative vertex weight");
        g.vwgt[to_size(v) * to_size(ncon) + to_size(i)] = static_cast<wgt_t>(w);
      }
    }
    long long u;
    while (ls >> u) {
      if (u < 1 || u > nvtxs) parse_error(line_no, "neighbor id out of range");
      wgt_t w = 1;
      if (has_ewgt) {
        long long ew;
        if (!(ls >> ew)) parse_error(line_no, "missing edge weight");
        if (ew < 1) parse_error(line_no, "edge weight must be >= 1");
        w = static_cast<wgt_t>(ew);
      }
      g.adjncy.push_back(static_cast<idx_t>(u - 1));
      g.adjwgt.push_back(w);
    }
    g.xadj[to_size(v) + 1] = static_cast<idx_t>(g.adjncy.size());
  }

  if (g.adjncy.size() != to_size(2 * nedges)) {
    // Counts are reported as integer directed entries: every undirected
    // edge must appear once in each endpoint's line, so the header
    // promises exactly 2 * nedges entries.
    const long long expect = 2 * nedges;
    const long long got = static_cast<long long>(g.adjncy.size());
    const long long delta = got - expect;
    std::ostringstream oss;
    oss << "edge count mismatch: header declares " << nedges
        << " edges (" << expect << " directed entries), vertex lines hold "
        << got << " (" << (delta > 0 ? "+" : "") << delta << ")";
    throw std::runtime_error(oss.str());
  }

  g.finalize();
  const std::string problem = g.validate();
  if (!problem.empty())
    throw std::runtime_error("METIS graph invalid: " + problem);
  return g;
}

Graph read_metis_graph_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open graph file: " + path);
  return read_metis_graph(in);
}

void write_metis_graph(std::ostream& out, const Graph& g) {
  bool need_vwgt = g.ncon > 1;
  if (!need_vwgt) {
    for (const wgt_t w : g.vwgt) {
      if (w != 1) {
        need_vwgt = true;
        break;
      }
    }
  }
  bool need_ewgt = false;
  for (const wgt_t w : g.adjwgt) {
    if (w != 1) {
      need_ewgt = true;
      break;
    }
  }
  out << g.nvtxs << ' ' << g.nedges();
  if (need_vwgt || need_ewgt) {
    out << " 0" << (need_vwgt ? '1' : '0') << (need_ewgt ? '1' : '0');
    if (need_vwgt) out << ' ' << g.ncon;
  }
  out << '\n';
  for (idx_t v = 0; v < g.nvtxs; ++v) {
    bool first = true;
    if (need_vwgt) {
      for (int i = 0; i < g.ncon; ++i) {
        if (!first) out << ' ';
        out << g.weight(v, i);
        first = false;
      }
    }
    for (idx_t e = g.xadj[to_size(v)]; e < g.xadj[to_size(v + 1)]; ++e) {
      if (!first) out << ' ';
      out << (g.adjncy[to_size(e)] + 1);
      first = false;
      if (need_ewgt) out << ' ' << g.adjwgt[to_size(e)];
    }
    out << '\n';
  }
}

void write_metis_graph_file(const std::string& path, const Graph& g) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open file for writing: " + path);
  write_metis_graph(out, g);
}

std::vector<idx_t> read_partition(std::istream& in) {
  std::vector<idx_t> part;
  long long p;
  while (in >> p) part.push_back(static_cast<idx_t>(p));
  return part;
}

std::vector<idx_t> read_partition_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open partition file: " + path);
  return read_partition(in);
}

std::vector<idx_t> read_partition(std::istream& in, idx_t nvtxs,
                                  idx_t nparts) {
  std::vector<idx_t> part = read_partition(in);
  if (part.size() != to_size(nvtxs)) {
    std::ostringstream oss;
    oss << "partition has " << part.size() << " entries, graph has " << nvtxs
        << " vertices";
    throw std::runtime_error(oss.str());
  }
  for (std::size_t v = 0; v < part.size(); ++v) {
    if (part[v] < 0 || part[v] >= nparts) {
      std::ostringstream oss;
      oss << "partition entry " << v << " is " << part[v]
          << ", outside [0, " << nparts << ")";
      throw std::runtime_error(oss.str());
    }
  }
  return part;
}

std::vector<idx_t> read_partition_file(const std::string& path, idx_t nvtxs,
                                       idx_t nparts) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open partition file: " + path);
  return read_partition(in, nvtxs, nparts);
}

void write_partition(std::ostream& out, const std::vector<idx_t>& part) {
  for (const idx_t p : part) out << p << '\n';
}

void write_partition_file(const std::string& path,
                          const std::vector<idx_t>& part) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open file for writing: " + path);
  write_partition(out, part);
}

}  // namespace mcgp
