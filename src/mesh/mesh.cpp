#include "mesh/mesh.hpp"

#include <algorithm>
#include <array>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace mcgp {

std::string Mesh::validate() const {
  if (nelems < 0 || nnodes < 0) return "negative counts";
  if (eptr.size() != to_size(nelems) + 1)
    return "eptr size != nelems+1";
  if (eptr[0] != 0) return "eptr[0] != 0";
  for (idx_t e = 0; e < nelems; ++e) {
    if (eptr[to_size(e) + 1] < eptr[to_size(e)])
      return "eptr not monotone";
  }
  if (to_size(eptr[to_size(nelems)]) != eind.size())
    return "eptr[nelems] != eind.size()";
  for (idx_t e = 0; e < nelems; ++e) {
    for (idx_t i = eptr[to_size(e)]; i < eptr[to_size(e) + 1]; ++i) {
      const idx_t n = eind[to_size(i)];
      if (n < 0 || n >= nnodes) return "node id out of range";
      for (idx_t j = eptr[to_size(e)]; j < i; ++j) {
        if (eind[to_size(j)] == n) return "duplicate node in element";
      }
    }
  }
  return std::string();
}

namespace {

bool next_data_line(std::istream& in, std::string& line) {
  while (std::getline(in, line)) {
    std::size_t i = 0;
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t' || line[i] == '\r')) ++i;
    if (i == line.size()) continue;
    if (line[i] == '%') continue;
    return true;
  }
  return false;
}

}  // namespace

Mesh read_metis_mesh(std::istream& in) {
  std::string line;
  if (!next_data_line(in, line))
    throw std::runtime_error("mesh parse error: missing header");
  long long ne = 0, nn = -1;
  {
    std::istringstream hs(line);
    if (!(hs >> ne)) throw std::runtime_error("mesh parse error: bad header");
    hs >> nn;  // optional
    if (ne < 0) throw std::runtime_error("mesh parse error: negative nelems");
  }

  Mesh m;
  m.nelems = static_cast<idx_t>(ne);
  m.eptr.reserve(to_size(ne) + 1);
  idx_t max_node = -1;
  for (long long e = 0; e < ne; ++e) {
    if (!next_data_line(in, line))
      throw std::runtime_error("mesh parse error: fewer element lines than nelems");
    std::istringstream ls(line);
    long long node;
    idx_t count = 0;
    while (ls >> node) {
      if (node < 1)
        throw std::runtime_error("mesh parse error: node id must be >= 1");
      m.eind.push_back(static_cast<idx_t>(node - 1));
      max_node = std::max(max_node, static_cast<idx_t>(node - 1));
      ++count;
    }
    if (count == 0)
      throw std::runtime_error("mesh parse error: empty element line");
    m.eptr.push_back(static_cast<idx_t>(m.eind.size()));
  }
  m.nnodes = nn >= 0 ? static_cast<idx_t>(nn) : max_node + 1;
  if (max_node >= m.nnodes)
    throw std::runtime_error("mesh parse error: node id exceeds declared nnodes");

  const std::string problem = m.validate();
  if (!problem.empty()) throw std::runtime_error("mesh invalid: " + problem);
  return m;
}

Mesh read_metis_mesh_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open mesh file: " + path);
  return read_metis_mesh(in);
}

void write_metis_mesh(std::ostream& out, const Mesh& m) {
  out << m.nelems << ' ' << m.nnodes << '\n';
  for (idx_t e = 0; e < m.nelems; ++e) {
    for (idx_t i = m.eptr[to_size(e)];
         i < m.eptr[to_size(e) + 1]; ++i) {
      if (i > m.eptr[to_size(e)]) out << ' ';
      out << (m.eind[to_size(i)] + 1);
    }
    out << '\n';
  }
}

void write_metis_mesh_file(const std::string& path, const Mesh& m) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open file for writing: " + path);
  write_metis_mesh(out, m);
}

Mesh quad_mesh(idx_t nx, idx_t ny) {
  if (nx < 1 || ny < 1) throw std::invalid_argument("quad_mesh: empty mesh");
  Mesh m;
  m.nelems = nx * ny;
  m.nnodes = (nx + 1) * (ny + 1);
  auto node = [&](idx_t x, idx_t y) { return x * (ny + 1) + y; };
  for (idx_t x = 0; x < nx; ++x) {
    for (idx_t y = 0; y < ny; ++y) {
      m.eind.push_back(node(x, y));
      m.eind.push_back(node(x + 1, y));
      m.eind.push_back(node(x + 1, y + 1));
      m.eind.push_back(node(x, y + 1));
      m.eptr.push_back(static_cast<idx_t>(m.eind.size()));
    }
  }
  return m;
}

Mesh tri_mesh(idx_t nx, idx_t ny) {
  if (nx < 1 || ny < 1) throw std::invalid_argument("tri_mesh: empty mesh");
  Mesh m;
  m.nelems = 2 * nx * ny;
  m.nnodes = (nx + 1) * (ny + 1);
  auto node = [&](idx_t x, idx_t y) { return x * (ny + 1) + y; };
  for (idx_t x = 0; x < nx; ++x) {
    for (idx_t y = 0; y < ny; ++y) {
      // Split each cell along the (x,y)-(x+1,y+1) diagonal.
      m.eind.push_back(node(x, y));
      m.eind.push_back(node(x + 1, y));
      m.eind.push_back(node(x + 1, y + 1));
      m.eptr.push_back(static_cast<idx_t>(m.eind.size()));
      m.eind.push_back(node(x, y));
      m.eind.push_back(node(x + 1, y + 1));
      m.eind.push_back(node(x, y + 1));
      m.eptr.push_back(static_cast<idx_t>(m.eind.size()));
    }
  }
  return m;
}

Mesh hex_mesh(idx_t nx, idx_t ny, idx_t nz) {
  if (nx < 1 || ny < 1 || nz < 1)
    throw std::invalid_argument("hex_mesh: empty mesh");
  Mesh m;
  m.nelems = nx * ny * nz;
  m.nnodes = (nx + 1) * (ny + 1) * (nz + 1);
  auto node = [&](idx_t x, idx_t y, idx_t z) {
    return (x * (ny + 1) + y) * (nz + 1) + z;
  };
  for (idx_t x = 0; x < nx; ++x) {
    for (idx_t y = 0; y < ny; ++y) {
      for (idx_t z = 0; z < nz; ++z) {
        static constexpr std::array<std::array<idx_t, 3>, 8> kCorners = {
            {{0, 0, 0}, {1, 0, 0}, {1, 1, 0}, {0, 1, 0},
             {0, 0, 1}, {1, 0, 1}, {1, 1, 1}, {0, 1, 1}}};
        for (const auto& [dx, dy, dz] : kCorners) {
          m.eind.push_back(node(x + dx, y + dy, z + dz));
        }
        m.eptr.push_back(static_cast<idx_t>(m.eind.size()));
      }
    }
  }
  return m;
}

namespace {

/// node -> elements incidence in CSR form.
void build_node_to_elem(const Mesh& m, std::vector<idx_t>& nptr,
                        std::vector<idx_t>& nind) {
  nptr.assign(to_size(m.nnodes) + 1, 0);
  for (const idx_t n : m.eind) ++nptr[to_size(n) + 1];
  for (idx_t n = 0; n < m.nnodes; ++n) {
    nptr[to_size(n) + 1] += nptr[to_size(n)];
  }
  nind.resize(m.eind.size());
  std::vector<idx_t> fill(nptr.begin(), nptr.end() - 1);
  for (idx_t e = 0; e < m.nelems; ++e) {
    for (idx_t i = m.eptr[to_size(e)];
         i < m.eptr[to_size(e) + 1]; ++i) {
      const idx_t n = m.eind[to_size(i)];
      nind[to_size(fill[to_size(n)]++)] = e;
    }
  }
}

}  // namespace

Graph mesh_to_dual(const Mesh& m, idx_t ncommon, int ncon) {
  if (ncommon < 1) throw std::invalid_argument("mesh_to_dual: ncommon < 1");
  const std::string problem = m.validate();
  if (!problem.empty())
    throw std::invalid_argument("mesh_to_dual: invalid mesh: " + problem);

  std::vector<idx_t> nptr, nind;
  build_node_to_elem(m, nptr, nind);

  GraphBuilder b(m.nelems, ncon);
  // For each element, count shared nodes with every element that shares
  // at least one node, using a dense timestamped counter.
  std::vector<idx_t> shared(to_size(m.nelems), 0);
  std::vector<idx_t> touched;
  for (idx_t e = 0; e < m.nelems; ++e) {
    touched.clear();
    for (idx_t i = m.eptr[to_size(e)];
         i < m.eptr[to_size(e) + 1]; ++i) {
      const idx_t n = m.eind[to_size(i)];
      for (idx_t j = nptr[to_size(n)];
           j < nptr[to_size(n) + 1]; ++j) {
        const idx_t f = nind[to_size(j)];
        if (f <= e) continue;  // each unordered pair once
        if (shared[to_size(f)] == 0) touched.push_back(f);
        ++shared[to_size(f)];
      }
    }
    for (const idx_t f : touched) {
      if (shared[to_size(f)] >= ncommon) b.add_edge(e, f);
      shared[to_size(f)] = 0;
    }
  }
  return b.build();
}

Graph mesh_to_nodal(const Mesh& m, int ncon) {
  const std::string problem = m.validate();
  if (!problem.empty())
    throw std::invalid_argument("mesh_to_nodal: invalid mesh: " + problem);
  GraphBuilder b(m.nnodes, ncon);
  for (idx_t e = 0; e < m.nelems; ++e) {
    for (idx_t i = m.eptr[to_size(e)];
         i < m.eptr[to_size(e) + 1]; ++i) {
      for (idx_t j = m.eptr[to_size(e)]; j < i; ++j) {
        b.add_edge(m.eind[to_size(i)],
                   m.eind[to_size(j)]);
      }
    }
  }
  return b.build();
}

}  // namespace mcgp
