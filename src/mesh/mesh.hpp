// Finite-element mesh substrate: mesh storage, METIS-style .mesh file
// I/O, structured mesh generators, and the mesh -> graph conversions
// (dual and nodal) that turn a mesh-partitioning problem into the graph
// problem this library solves — the standard workflow for the paper's
// target applications.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "graph/csr_graph.hpp"

namespace mcgp {

/// A mesh as an element->node incidence list (mixed element types are
/// allowed: each element simply lists its nodes).
struct Mesh {
  idx_t nelems = 0;
  idx_t nnodes = 0;
  /// Element i's nodes: eind[eptr[i] .. eptr[i+1]).
  std::vector<idx_t> eptr{0};
  std::vector<idx_t> eind;

  idx_t element_size(idx_t e) const { return eptr[to_size(e + 1)] - eptr[to_size(e)]; }

  /// Structural validation: monotone eptr, node ids in range, no
  /// duplicate node within one element. Returns "" when valid.
  std::string validate() const;
};

/// Read a METIS-style mesh file:
///   header: <nelems> [nnodes]     (nnodes inferred from the data if absent)
///   then one line per element listing its 1-based node ids.
///   '%' lines are comments.
Mesh read_metis_mesh(std::istream& in);
Mesh read_metis_mesh_file(const std::string& path);
void write_metis_mesh(std::ostream& out, const Mesh& m);
void write_metis_mesh_file(const std::string& path, const Mesh& m);

/// Structured generators (node numbering row-major).
Mesh quad_mesh(idx_t nx, idx_t ny);             ///< nx*ny quadrilaterals
Mesh tri_mesh(idx_t nx, idx_t ny);              ///< 2*nx*ny triangles
Mesh hex_mesh(idx_t nx, idx_t ny, idx_t nz);    ///< nx*ny*nz hexahedra

/// Dual graph: one vertex per element; elements are adjacent when they
/// share at least `ncommon` nodes (2 for 2D FE meshes -> shared edge,
/// 3-4 for 3D -> shared face). This is the graph the partitioner runs on
/// when decomposing a mesh by elements.
Graph mesh_to_dual(const Mesh& m, idx_t ncommon, int ncon = 1);

/// Nodal graph: one vertex per node; nodes are adjacent when they appear
/// together in some element.
Graph mesh_to_nodal(const Mesh& m, int ncon = 1);

}  // namespace mcgp
