#include "gen/phase_sim.hpp"

#include <algorithm>

#include "graph/metrics.hpp"

namespace mcgp {

PhaseSimResult simulate_phases(const Graph& g, const std::vector<idx_t>& part,
                               idx_t nparts) {
  PhaseSimResult r;
  const std::vector<sum_t> pwgts = part_weights(g, part, nparts);
  r.phase_makespan.resize(static_cast<std::size_t>(g.ncon));
  r.phase_ideal.resize(static_cast<std::size_t>(g.ncon));
  for (int p = 0; p < g.ncon; ++p) {
    sum_t mx = 0;
    for (idx_t q = 0; q < nparts; ++q) {
      mx = std::max(mx, pwgts[static_cast<std::size_t>(q) * g.ncon + p]);
    }
    const sum_t total = g.tvwgt[static_cast<std::size_t>(p)];
    const sum_t ideal = (total + nparts - 1) / nparts;
    r.phase_makespan[static_cast<std::size_t>(p)] = mx;
    r.phase_ideal[static_cast<std::size_t>(p)] = ideal;
    r.total_makespan += mx;
    r.total_ideal += ideal;
  }
  return r;
}

}  // namespace mcgp
