#include "gen/phase_sim.hpp"

#include <algorithm>

#include "graph/metrics.hpp"
#include "support/check.hpp"

namespace mcgp {

PhaseSimResult simulate_phases(const Graph& g, const std::vector<idx_t>& part,
                               idx_t nparts) {
  PhaseSimResult r;
  const std::vector<sum_t> pwgts = part_weights(g, part, nparts);
  r.phase_makespan.resize(to_size(g.ncon));
  r.phase_ideal.resize(to_size(g.ncon));
  for (int p = 0; p < g.ncon; ++p) {
    sum_t mx = 0;
    for (idx_t q = 0; q < nparts; ++q) {
      mx = std::max(mx, pwgts[to_size(q) * to_size(g.ncon) + to_size(p)]);
    }
    const sum_t total = g.tvwgt[to_size(p)];
    const sum_t ideal = checked_add(total, nparts - 1) / nparts;
    r.phase_makespan[to_size(p)] = mx;
    r.phase_ideal[to_size(p)] = ideal;
    r.total_makespan = checked_add(r.total_makespan, mx);
    r.total_ideal = checked_add(r.total_ideal, ideal);
  }
  return r;
}

}  // namespace mcgp
