#include "gen/weight_gen.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "graph/graph_ops.hpp"
#include "support/check.hpp"
#include "support/random.hpp"

namespace mcgp {

namespace {

void check_m(int m) {
  if (m < 1 || m > kMaxNcon)
    throw std::invalid_argument("weight generator: m out of range");
}

}  // namespace

void apply_type_r_weights(Graph& g, int m, wgt_t lo, wgt_t hi,
                          std::uint64_t seed) {
  check_m(m);
  if (lo > hi) throw std::invalid_argument("type_r: lo > hi");
  Rng rng(seed);
  g.ncon = m;
  g.vwgt.resize(to_size(g.nvtxs) * to_size(m));
  for (idx_t v = 0; v < g.nvtxs; ++v) {
    for (int i = 0; i < m; ++i) {
      g.vwgt[to_size(v) * to_size(m) + to_size(i)] =
          static_cast<wgt_t>(rng.next_in(lo, hi));
    }
  }
  g.finalize();
  // Guard against a zero-total constraint (possible when lo == 0 on tiny
  // graphs): bump one vertex so normalization stays well-defined.
  for (int i = 0; i < m; ++i) {
    if (g.tvwgt[to_size(i)] == 0 && g.nvtxs > 0) {
      g.vwgt[to_size(i)] = 1;
    }
  }
  g.finalize();
}

std::vector<idx_t> apply_type_s_weights(Graph& g, int m, idx_t nregions,
                                        wgt_t lo, wgt_t hi,
                                        std::uint64_t seed) {
  check_m(m);
  if (lo > hi) throw std::invalid_argument("type_s: lo > hi");
  Rng rng(seed);
  const std::vector<idx_t> region = grow_regions(g, nregions, rng.next_u64());
  const idx_t nr = std::min(nregions, std::max<idx_t>(g.nvtxs, 1));

  // One random vector per region. Ensure no constraint is zero across all
  // regions (re-roll a region's component if a column sums to zero).
  std::vector<wgt_t> rw(to_size(nr) * to_size(m));
  for (auto& w : rw) w = static_cast<wgt_t>(rng.next_in(lo, hi));
  for (int i = 0; i < m; ++i) {
    sum_t col = 0;
    for (idx_t r = 0; r < nr; ++r) {
      col = checked_add(col, rw[to_size(r) * to_size(m) + to_size(i)]);
    }
    if (col == 0 && nr > 0) rw[to_size(i)] = std::max<wgt_t>(hi, 1);
  }

  g.ncon = m;
  g.vwgt.resize(to_size(g.nvtxs) * to_size(m));
  for (idx_t v = 0; v < g.nvtxs; ++v) {
    const idx_t r = region[to_size(v)];
    for (int i = 0; i < m; ++i) {
      g.vwgt[to_size(v) * to_size(m) + to_size(i)] =
          rw[to_size(r) * to_size(m) + to_size(i)];
    }
  }
  g.finalize();
  return region;
}

std::vector<double> default_phase_schedule(int m) {
  static const double base[5] = {1.0, 0.75, 0.5, 0.5, 0.25};
  std::vector<double> s(to_size(m));
  for (int i = 0; i < m; ++i) s[to_size(i)] = base[std::min(i, 4)];
  return s;
}

PhaseActivity apply_type_p_weights(Graph& g, int m, idx_t nregions,
                                   std::uint64_t seed,
                                   const std::vector<double>& schedule) {
  check_m(m);
  Rng rng(seed);
  std::vector<double> sched = schedule.empty() ? default_phase_schedule(m) : schedule;
  if (static_cast<int>(sched.size()) != m)
    throw std::invalid_argument("type_p: schedule size != m");
  sched[0] = 1.0;  // phase 0 spans the whole mesh: no all-zero weight vectors

  const std::vector<idx_t> region = grow_regions(g, nregions, rng.next_u64());
  const idx_t nr = std::min(nregions, std::max<idx_t>(g.nvtxs, 1));

  PhaseActivity pa;
  pa.nphases = m;
  pa.active.assign(to_size(m) * to_size(g.nvtxs), 0);
  pa.fraction.resize(to_size(m));

  std::vector<char> region_active(to_size(nr));
  std::vector<idx_t> region_ids(to_size(nr));
  g.ncon = m;
  g.vwgt.assign(to_size(g.nvtxs) * to_size(m), 0);

  for (int p = 0; p < m; ++p) {
    const idx_t want = std::max<idx_t>(
        1, static_cast<idx_t>(std::lround(sched[to_size(p)] * nr)));
    for (idx_t r = 0; r < nr; ++r) region_ids[to_size(r)] = r;
    shuffle(region_ids, rng);
    std::fill(region_active.begin(), region_active.end(), 0);
    for (idx_t i = 0; i < std::min(want, nr); ++i) {
      region_active[to_size(region_ids[to_size(i)])] = 1;
    }
    pa.fraction[to_size(p)] =
        static_cast<double>(std::min(want, nr)) / nr;
    for (idx_t v = 0; v < g.nvtxs; ++v) {
      if (region_active[to_size(region[to_size(v)])]) {
        pa.active[to_size(p) * to_size(g.nvtxs) + to_size(v)] = 1;
        g.vwgt[to_size(v) * to_size(m) + to_size(p)] = 1;
      }
    }
  }

  // Edge weight = number of phases in which both endpoints are active,
  // floored at 1 so no edge is free to cut.
  for (idx_t v = 0; v < g.nvtxs; ++v) {
    for (idx_t e = g.xadj[to_size(v)]; e < g.xadj[to_size(v + 1)]; ++e) {
      const idx_t u = g.adjncy[to_size(e)];
      wgt_t co = 0;
      for (int p = 0; p < m; ++p) {
        if (pa.active[to_size(p) * to_size(g.nvtxs) + to_size(v)] &&
            pa.active[to_size(p) * to_size(g.nvtxs) + to_size(u)]) {
          ++co;
        }
      }
      g.adjwgt[to_size(e)] = std::max<wgt_t>(co, 1);
    }
  }

  g.finalize();
  return pa;
}

Graph sum_collapse_constraints(const Graph& g) {
  Graph c = g;
  c.ncon = 1;
  c.vwgt.resize(to_size(g.nvtxs));
  for (idx_t v = 0; v < g.nvtxs; ++v) {
    sum_t s = 0;
    for (int i = 0; i < g.ncon; ++i) s = checked_add(s, g.weight(v, i));
    c.vwgt[to_size(v)] = checked_narrow<wgt_t>(s);
  }
  c.finalize();
  return c;
}

}  // namespace mcgp
