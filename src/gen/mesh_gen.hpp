// Synthetic mesh-like graph generators.
//
// The SC'98 evaluation uses finite-element meshes (144, 598a, m14b, ...)
// that are not redistributable here; these generators produce the same
// structural class — well-shaped, bounded-degree 2D/3D meshes — at
// controllable sizes, which is what the multilevel analysis assumes.
#pragma once

#include <cstdint>

#include "graph/csr_graph.hpp"

namespace mcgp {

/// nx*ny 2D grid, 4-point (von Neumann) stencil.
Graph grid2d(idx_t nx, idx_t ny, int ncon = 1);

/// nx*ny 2D grid with one diagonal per cell: the dual of a structured
/// triangular mesh (6-point stencil in the interior).
Graph tri_grid2d(idx_t nx, idx_t ny, int ncon = 1);

/// nx*ny*nz 3D grid, 6-point stencil.
Graph grid3d(idx_t nx, idx_t ny, idx_t nz, int ncon = 1);

/// Random geometric graph: n points uniform in the unit square, edges
/// between pairs at distance <= radius (cell-hashed, O(n) expected for the
/// standard connectivity radius). radius <= 0 selects ~sqrt(2.2*ln(n)/(pi*n)),
/// slightly above the connectivity threshold.
Graph random_geometric(idx_t n, double radius, std::uint64_t seed,
                       int ncon = 1);

/// Unstructured FE-surrogate: n points with a density gradient (quadratic
/// warp toward one corner, imitating local mesh refinement) connected by an
/// adaptive-radius geometric rule, so degrees stay bounded while element
/// sizes vary across the domain.
Graph fe_mesh(idx_t n, std::uint64_t seed, int ncon = 1);

/// Erdos-Renyi-style random graph with expected average degree `avg_deg`
/// (not mesh-like; used for robustness tests).
Graph random_graph(idx_t n, double avg_deg, std::uint64_t seed, int ncon = 1);

}  // namespace mcgp
