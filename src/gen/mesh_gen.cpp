#include "gen/mesh_gen.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "support/random.hpp"

namespace mcgp {

namespace {

idx_t checked_mul(idx_t a, idx_t b) {
  const long long p = static_cast<long long>(a) * b;
  if (p > 2000000000LL) throw std::invalid_argument("grid too large");
  return static_cast<idx_t>(p);
}

/// Shared geometric-graph construction over explicit points with a
/// per-point radius. Connects i-j iff dist(i,j) <= min(r_i, r_j).
Graph geometric_from_points(const std::vector<double>& px,
                            const std::vector<double>& py,
                            const std::vector<double>& pr, int ncon) {
  const idx_t n = static_cast<idx_t>(px.size());
  double rmax = 0;
  for (const double r : pr) rmax = std::max(rmax, r);
  const double cell = std::max(rmax, 1e-9);
  const idx_t ncells = std::max<idx_t>(1, static_cast<idx_t>(1.0 / cell));
  const double inv_cell = static_cast<double>(ncells);

  auto cell_of = [&](double x) {
    idx_t c = static_cast<idx_t>(x * inv_cell);
    return std::clamp<idx_t>(c, 0, ncells - 1);
  };

  // Bucket points into the grid.
  std::vector<idx_t> head(to_size(ncells) * to_size(ncells), -1);
  std::vector<idx_t> nxt(to_size(n), -1);
  for (idx_t i = 0; i < n; ++i) {
    const std::size_t c = to_size(cell_of(px[to_size(i)])) * to_size(ncells) +
                          to_size(cell_of(py[to_size(i)]));
    nxt[to_size(i)] = head[c];
    head[c] = i;
  }

  GraphBuilder b(n, ncon);
  for (idx_t i = 0; i < n; ++i) {
    const double xi = px[to_size(i)];
    const double yi = py[to_size(i)];
    const idx_t cx = cell_of(xi);
    const idx_t cy = cell_of(yi);
    for (idx_t dx = -1; dx <= 1; ++dx) {
      for (idx_t dy = -1; dy <= 1; ++dy) {
        const idx_t gx = cx + dx;
        const idx_t gy = cy + dy;
        if (gx < 0 || gx >= ncells || gy < 0 || gy >= ncells) continue;
        for (idx_t j = head[to_size(gx) * to_size(ncells) + to_size(gy)]; j >= 0;
             j = nxt[to_size(j)]) {
          if (j <= i) continue;  // each unordered pair once
          const double r = std::min(pr[to_size(i)], pr[to_size(j)]);
          const double ddx = xi - px[to_size(j)];
          const double ddy = yi - py[to_size(j)];
          if (ddx * ddx + ddy * ddy <= r * r) b.add_edge(i, j);
        }
      }
    }
  }
  return b.build();
}

}  // namespace

Graph grid2d(idx_t nx, idx_t ny, int ncon) {
  if (nx < 1 || ny < 1) throw std::invalid_argument("grid2d: empty grid");
  const idx_t n = checked_mul(nx, ny);
  GraphBuilder b(n, ncon);
  auto id = [&](idx_t x, idx_t y) { return x * ny + y; };
  for (idx_t x = 0; x < nx; ++x) {
    for (idx_t y = 0; y < ny; ++y) {
      if (x + 1 < nx) b.add_edge(id(x, y), id(x + 1, y));
      if (y + 1 < ny) b.add_edge(id(x, y), id(x, y + 1));
    }
  }
  return b.build();
}

Graph tri_grid2d(idx_t nx, idx_t ny, int ncon) {
  if (nx < 1 || ny < 1) throw std::invalid_argument("tri_grid2d: empty grid");
  const idx_t n = checked_mul(nx, ny);
  GraphBuilder b(n, ncon);
  auto id = [&](idx_t x, idx_t y) { return x * ny + y; };
  for (idx_t x = 0; x < nx; ++x) {
    for (idx_t y = 0; y < ny; ++y) {
      if (x + 1 < nx) b.add_edge(id(x, y), id(x + 1, y));
      if (y + 1 < ny) b.add_edge(id(x, y), id(x, y + 1));
      if (x + 1 < nx && y + 1 < ny) b.add_edge(id(x, y), id(x + 1, y + 1));
    }
  }
  return b.build();
}

Graph grid3d(idx_t nx, idx_t ny, idx_t nz, int ncon) {
  if (nx < 1 || ny < 1 || nz < 1)
    throw std::invalid_argument("grid3d: empty grid");
  const idx_t n = checked_mul(checked_mul(nx, ny), nz);
  GraphBuilder b(n, ncon);
  auto id = [&](idx_t x, idx_t y, idx_t z) { return (x * ny + y) * nz + z; };
  for (idx_t x = 0; x < nx; ++x) {
    for (idx_t y = 0; y < ny; ++y) {
      for (idx_t z = 0; z < nz; ++z) {
        if (x + 1 < nx) b.add_edge(id(x, y, z), id(x + 1, y, z));
        if (y + 1 < ny) b.add_edge(id(x, y, z), id(x, y + 1, z));
        if (z + 1 < nz) b.add_edge(id(x, y, z), id(x, y, z + 1));
      }
    }
  }
  return b.build();
}

Graph random_geometric(idx_t n, double radius, std::uint64_t seed, int ncon) {
  if (n < 1) throw std::invalid_argument("random_geometric: n < 1");
  if (radius <= 0) {
    radius = std::sqrt(2.2 * std::log(std::max<double>(n, 2)) /
                       (3.14159265358979323846 * n));
  }
  Rng rng(seed);
  std::vector<double> px(to_size(n)), py(to_size(n)),
      pr(to_size(n), radius);
  for (idx_t i = 0; i < n; ++i) {
    px[to_size(i)] = rng.next_real();
    py[to_size(i)] = rng.next_real();
  }
  return geometric_from_points(px, py, pr, ncon);
}

Graph fe_mesh(idx_t n, std::uint64_t seed, int ncon) {
  if (n < 1) throw std::invalid_argument("fe_mesh: n < 1");
  Rng rng(seed);
  std::vector<double> px(to_size(n)), py(to_size(n)),
      pr(to_size(n));
  // Density gradient: warp x-coordinates toward 0 so the left side of the
  // domain is finer (imitating refinement around a feature). The local
  // connection radius grows with local spacing to keep degrees bounded.
  const double base_r =
      std::sqrt(2.4 * std::log(std::max<double>(n, 2)) /
                (3.14159265358979323846 * n));
  for (idx_t i = 0; i < n; ++i) {
    const double u = rng.next_real();
    const double x = u * u;  // quadratic warp: density ~ 1/sqrt(x)
    px[to_size(i)] = x;
    py[to_size(i)] = rng.next_real();
    // Local spacing scales like sqrt of inverse density = (4x)^(1/4).
    pr[to_size(i)] =
        base_r * std::max(0.35, std::sqrt(2.0 * std::sqrt(std::max(x, 1e-6))));
  }
  return geometric_from_points(px, py, pr, ncon);
}

Graph random_graph(idx_t n, double avg_deg, std::uint64_t seed, int ncon) {
  if (n < 1) throw std::invalid_argument("random_graph: n < 1");
  Rng rng(seed);
  const long long target_edges =
      static_cast<long long>(avg_deg * n / 2.0);
  GraphBuilder b(n, ncon);
  for (long long e = 0; e < target_edges; ++e) {
    const idx_t u = static_cast<idx_t>(rng.next_below(static_cast<std::uint64_t>(n)));
    idx_t v = static_cast<idx_t>(rng.next_below(static_cast<std::uint64_t>(n)));
    if (u == v) v = (v + 1) % n;
    if (u != v) b.add_edge(u, v);
  }
  return b.build();
}

}  // namespace mcgp
