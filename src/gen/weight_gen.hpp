// Multi-constraint weight generators reproducing the SC'98-style synthetic
// test-problem constructions.
//
// Three recipes (names local to this repo):
//
//  * Type R ("random"): every vertex gets an independent random weight
//    vector. The paper observes this is NOT a hard multi-constraint
//    instance — by concentration, any large vertex set has nearly
//    proportional weight sums, so the problem degenerates to
//    single-constraint. Included as a control.
//
//  * Type S ("structured"): the graph is first divided into a small number
//    of contiguous regions (16 in the paper); all vertices of a region
//    share one random weight vector. Contiguous equal-vector regions model
//    multi-phase meshes where phase activity clusters spatially, and make
//    the constraints genuinely interact.
//
//  * Type P ("phases"): models an m-phase computation. Phase i is active
//    on a fraction of the domain (default schedule 100%, 75%, 50%, 50%,
//    25%), chosen as a random subset of 32 contiguous regions. Vertex
//    weight i is 1 if the vertex is active in phase i, else 0. Edge
//    weights are set to the number of phases in which BOTH endpoints are
//    active (>= 1 so every edge still costs something to cut), modelling
//    per-phase halo exchange volume.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr_graph.hpp"

namespace mcgp {

/// Assign independent random weight vectors: each of the m components
/// uniform in [lo, hi]. Modifies vwgt/ncon in place.
void apply_type_r_weights(Graph& g, int m, wgt_t lo, wgt_t hi,
                          std::uint64_t seed);

/// SC'98 Type-S construction: `nregions` contiguous regions (multi-source
/// lockstep BFS), one random weight vector in [lo, hi]^m per region.
/// Returns the region label of each vertex.
std::vector<idx_t> apply_type_s_weights(Graph& g, int m, idx_t nregions,
                                        wgt_t lo, wgt_t hi,
                                        std::uint64_t seed);

/// Multi-phase activity description produced by the Type-P generator.
struct PhaseActivity {
  int nphases = 0;
  /// active[p*nvtxs + v] == 1 iff vertex v is active in phase p.
  std::vector<char> active;
  /// Fraction of regions active per phase (the realized schedule).
  std::vector<double> fraction;

  bool is_active(int phase, idx_t v, idx_t nvtxs) const {
    return active[to_size(phase) * to_size(nvtxs) + to_size(v)] != 0;
  }
};

/// Default activity schedule from the multi-phase construction:
/// {1.0, 0.75, 0.5, 0.5, 0.25}, truncated/extended to m phases
/// (phases beyond the fifth reuse 0.25).
std::vector<double> default_phase_schedule(int m);

/// SC'98 Type-P construction: m phases over `nregions` contiguous regions,
/// phase p active on round(schedule[p]*nregions) randomly chosen regions
/// (phase 0 is always fully active so no vertex has an all-zero vector).
/// Sets vertex weight p = active(p, v), edge weight = max(1, #co-active
/// phases). Returns the activity table.
PhaseActivity apply_type_p_weights(Graph& g, int m, idx_t nregions,
                                   std::uint64_t seed,
                                   const std::vector<double>& schedule = {});

/// Collapse an m-constraint graph to a single constraint whose weight is
/// the sum of the m components — the "traditional" formulation the paper
/// argues is insufficient for multi-phase simulations. Returns a copy.
Graph sum_collapse_constraints(const Graph& g);

}  // namespace mcgp
