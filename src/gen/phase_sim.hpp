// Multi-phase execution model.
//
// Quantifies the paper's motivating claim: a multi-phase computation with
// synchronization between phases is governed, per phase, by the most loaded
// processor. A decomposition that balances only the SUM of the phase works
// can be far from optimal; balancing each phase individually (the
// multi-constraint formulation) minimizes total makespan.
#pragma once

#include <vector>

#include "gen/weight_gen.hpp"
#include "graph/csr_graph.hpp"

namespace mcgp {

struct PhaseSimResult {
  /// Per-phase makespan: max over parts of the phase work in that part.
  std::vector<sum_t> phase_makespan;
  /// Per-phase ideal (total phase work / nparts, rounded up).
  std::vector<sum_t> phase_ideal;
  /// Total makespan across all phases (sum of per-phase maxima).
  sum_t total_makespan = 0;
  /// Sum of ideals.
  sum_t total_ideal = 0;

  /// Total slowdown vs a perfectly balanced execution (>= 1.0).
  double slowdown() const {
    return total_ideal > 0
               ? static_cast<double>(total_makespan) / static_cast<double>(total_ideal)
               : 1.0;
  }
};

/// Evaluate a partition under the bulk-synchronous multi-phase model.
/// Vertex v contributes g.weight(v, p) units of work in phase p (the
/// Type-P convention: weight p is the phase-p activity/cost).
PhaseSimResult simulate_phases(const Graph& g, const std::vector<idx_t>& part,
                               idx_t nparts);

}  // namespace mcgp
