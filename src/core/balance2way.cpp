#include "core/balance2way.hpp"

#include <algorithm>

#include "core/audit.hpp"
#include "support/bucket_queue.hpp"
#include "support/check.hpp"

namespace mcgp {

bool balance_2way(const Graph& g, std::vector<idx_t>& where,
                  const BisectionTargets& targets, Rng& rng,
                  InvariantAuditor* audit) {
  BisectionBalance balance;
  balance.init(g, where, targets);
  if (balance.feasible()) return true;

  // Weighted degrees for gain computation (recomputed incrementally would
  // complicate the loop; the pass is O(rounds * E) which is fine for a
  // repair path that runs rarely).
  const auto n = to_size(g.nvtxs);
  std::vector<sum_t> id(n, 0), ed(n, 0);
  auto recompute_degrees = [&]() {
    for (idx_t v = 0; v < g.nvtxs; ++v) {
      sum_t idw = 0, edw = 0;
      const idx_t pv = where[to_size(v)];
      for (idx_t e = g.xadj[to_size(v)]; e < g.xadj[to_size(v + 1)]; ++e) {
        if (where[to_size(g.adjncy[to_size(e)])] == pv) {
          idw = checked_add(idw, g.adjwgt[to_size(e)]);
        } else {
          edw = checked_add(edw, g.adjwgt[to_size(e)]);
        }
      }
      id[to_size(v)] = idw;
      ed[to_size(v)] = edw;
    }
  };

  BucketQueue queue;
  std::vector<idx_t> perm;

  // Each round targets the currently worst constraint; bounded rounds keep
  // the pass from ping-ponging between constraints forever.
  const int max_rounds = 8 * g.ncon + 8;
  for (int round = 0; round < max_rounds && !balance.feasible(); ++round) {
    const int c = balance.worst_constraint();
    const int from = balance.heavy_side(c);

    recompute_degrees();
    queue.reset(g.nvtxs);
    random_permutation(g.nvtxs, perm, rng);
    for (const idx_t v : perm) {
      if (where[to_size(v)] != from) continue;
      if (g.weight(v, c) <= 0) continue;  // cannot relieve constraint c
      queue.insert(v, checked_narrow<wgt_t>(
                      checked_sub(ed[to_size(v)], id[to_size(v)])));
    }

    bool progressed = false;
    real_t pot = balance.potential();
    while (!queue.empty() && !balance.feasible()) {
      const idx_t v = queue.pop_max();
      const real_t new_pot = balance.potential_after(v, from);
      if (new_pot >= pot - 1e-12) continue;  // move does not help overall
      // Commit: update where/balance; degrees of neighbors drift but the
      // queue's gain ordering stays a good heuristic within the round.
      where[to_size(v)] = 1 - from;
      balance.apply_move(v, from);
      pot = new_pot;
      progressed = true;
      // Once constraint c's heavy side flips, this round's queue no longer
      // targets the bottleneck; start a fresh round.
      if (balance.heavy_side(c) != from ||
          balance.worst_constraint() != c) {
        break;
      }
    }
    if (!progressed) break;
  }
  if (audit != nullptr && audit->boundaries()) {
    audit->check_bisection_weights(g, where, balance, "balance2way");
  }
  return balance.feasible();
}

}  // namespace mcgp
