// Explicit 2-way balancing: drive an infeasible bisection into the
// feasible region with the least possible cut damage.
//
// Used after initial bisection construction and as a safety net during
// uncoarsening: the FM refinement only *preserves* feasibility; when a
// projected partition starts out of tolerance (coarse vertex granularity
// can force this), this pass restores it.
#pragma once

#include <vector>

#include "core/bisection.hpp"
#include "support/random.hpp"

namespace mcgp {

class InvariantAuditor;

/// Greedily move vertices from overloaded sides until every constraint is
/// within tolerance or no move reduces the balance potential. Returns true
/// if the final bisection is feasible. A non-null `audit` verifies the
/// incremental side-weight bookkeeping against a fresh recompute when the
/// pass finishes.
bool balance_2way(const Graph& g, std::vector<idx_t>& where,
                  const BisectionTargets& targets, Rng& rng,
                  InvariantAuditor* audit = nullptr);

}  // namespace mcgp
