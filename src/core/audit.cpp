#include "core/audit.hpp"

#include <sstream>

#include "core/kway_refine.hpp"

namespace mcgp {

namespace {

/// Directed-sum cut with overflow checking; also verifies the directed
/// total is even (an odd total means the adjacency weights are not
/// symmetric, which every later cut/2 silently truncates).
sum_t audited_cut(const InvariantAuditor* aud, const Graph& g,
                  const std::vector<idx_t>& part, const char* site) {
  sum_t directed = 0;
  for (idx_t v = 0; v < g.nvtxs; ++v) {
    const idx_t pv = part[to_size(v)];
    for (idx_t e = g.xadj[to_size(v)]; e < g.xadj[to_size(v + 1)]; ++e) {
      if (part[to_size(g.adjncy[to_size(e)])] != pv) {
        directed = checked_add(directed, g.adjwgt[to_size(e)]);
      }
    }
  }
  MCGP_AUDIT_MSG(aud, directed % 2 == 0, site,
                 ": directed cut total ", directed,
                 " is odd (asymmetric edge weights)");
  return directed / 2;
}

}  // namespace

bool parse_audit_level(const std::string& s, AuditLevel& out) {
  if (s == "off" || s == "0") {
    out = AuditLevel::kOff;
  } else if (s == "boundaries" || s == "1") {
    out = AuditLevel::kBoundaries;
  } else if (s == "paranoid" || s == "2") {
    out = AuditLevel::kParanoid;
  } else {
    return false;
  }
  return true;
}

const char* audit_check_name(AuditCheck c) {
  switch (c) {
    case AuditCheck::kCoarseLevel: return "coarse_level";
    case AuditCheck::kProjection: return "projection";
    case AuditCheck::kBisectionState: return "bisection_state";
    case AuditCheck::kKWayState: return "kway_state";
    case AuditCheck::kGainSample: return "gain_sample";
    case AuditCheck::kCutDelta: return "cut_delta";
    case AuditCheck::kFinalPartition: return "final_partition";
    case AuditCheck::kFeasibility: return "feasibility";
    case AuditCheck::kCount_: break;
  }
  return "?";
}

std::uint64_t InvariantAuditor::total_checks() const {
  std::uint64_t total = 0;
  for (const auto& c : counts_) total += c.load(std::memory_order_relaxed);
  return total;
}

std::string InvariantAuditor::summary() const {
  std::ostringstream oss;
  for (int c = 0; c < static_cast<int>(AuditCheck::kCount_); ++c) {
    if (c > 0) oss << ' ';
    oss << audit_check_name(static_cast<AuditCheck>(c)) << '='
        << counts_[to_size(c)].load(
               std::memory_order_relaxed);
  }
  return oss.str();
}

void InvariantAuditor::fail(const char* file, int line, const char* expr,
                            const std::string& msg) const {
  std::ostringstream oss;
  oss << "invariant audit failed at " << file << ":" << line << ": " << expr;
  if (!msg.empty()) oss << " — " << msg;
  throw AuditFailure(oss.str());
}

void InvariantAuditor::check_coarse_level(const Graph& fine,
                                          const Graph& coarse,
                                          const std::vector<idx_t>& cmap,
                                          const char* site) {
  MCGP_AUDIT_MSG(this, cmap.size() == to_size(fine.nvtxs),
                 site, ": cmap size ", cmap.size(), " != fine nvtxs ",
                 fine.nvtxs);
  MCGP_AUDIT_MSG(this, coarse.ncon == fine.ncon, site, ": ncon changed ",
                 fine.ncon, " -> ", coarse.ncon);

  // Per-coarse-vertex weight conservation (stronger than totals alone:
  // also catches weight landing on the wrong coarse vertex).
  const std::size_t ncw =
      to_size(coarse.nvtxs) * to_size(coarse.ncon);
  MCGP_AUDIT_MSG(this, coarse.vwgt.size() == ncw, site,
                 ": coarse vwgt size ", coarse.vwgt.size(), " != ", ncw);
  std::vector<sum_t> expect(ncw, 0);
  std::vector<idx_t> constituents(to_size(coarse.nvtxs), 0);
  for (idx_t v = 0; v < fine.nvtxs; ++v) {
    const idx_t cv = cmap[to_size(v)];
    MCGP_AUDIT_MSG(this, cv >= 0 && cv < coarse.nvtxs, site, ": cmap[", v,
                   "] = ", cv, " out of range [0, ", coarse.nvtxs, ")");
    ++constituents[to_size(cv)];
    const wgt_t* w = fine.weights(v);
    for (int i = 0; i < fine.ncon; ++i) {
      sum_t& slot = expect[to_size(cv) * to_size(fine.ncon) + to_size(i)];
      slot = checked_add(slot, w[i]);
    }
  }
  for (idx_t cv = 0; cv < coarse.nvtxs; ++cv) {
    MCGP_AUDIT_MSG(this, constituents[to_size(cv)] > 0,
                   site, ": coarse vertex ", cv, " has no constituents");
    for (int i = 0; i < coarse.ncon; ++i) {
      const std::size_t s = to_size(cv) * to_size(coarse.ncon) + to_size(i);
      MCGP_AUDIT_MSG(this, static_cast<sum_t>(coarse.vwgt[s]) == expect[s],
                     site, ": coarse vertex ", cv, " weight ", i, " is ",
                     coarse.vwgt[s], ", constituents sum to ", expect[s]);
    }
  }

  // Cached totals must agree with the conserved per-constraint sums.
  for (int i = 0; i < coarse.ncon; ++i) {
    MCGP_AUDIT_MSG(this,
                   coarse.tvwgt[to_size(i)] ==
                       fine.tvwgt[to_size(i)],
                   site, ": constraint ", i, " total not conserved: fine ",
                   fine.tvwgt[to_size(i)], " vs coarse ",
                   coarse.tvwgt[to_size(i)]);
  }

  // Edge-weight conservation: the directed weight of the coarse graph plus
  // the directed weight collapsed inside coarse vertices equals the fine
  // directed weight (merging parallel edges sums their weights).
  sum_t fine_total = 0, internal = 0, coarse_total = 0;
  for (idx_t v = 0; v < fine.nvtxs; ++v) {
    for (idx_t e = fine.xadj[to_size(v)]; e < fine.xadj[to_size(v + 1)]; ++e) {
      fine_total =
          checked_add(fine_total, fine.adjwgt[to_size(e)]);
      if (cmap[to_size(fine.adjncy[to_size(e)])] ==
          cmap[to_size(v)]) {
        internal =
            checked_add(internal, fine.adjwgt[to_size(e)]);
      }
    }
  }
  for (const wgt_t w : coarse.adjwgt) coarse_total = checked_add(coarse_total, w);
  MCGP_AUDIT_MSG(this, checked_add(coarse_total, internal) == fine_total,
                 site, ": edge weight not conserved: fine ", fine_total,
                 " != coarse ", coarse_total, " + internal ", internal);

  if (paranoid()) {
    const std::string problem = coarse.validate();
    MCGP_AUDIT_MSG(this, problem.empty(), site,
                   ": coarse graph structurally invalid: ", problem);
  }
  bump(AuditCheck::kCoarseLevel);
}

void InvariantAuditor::check_projection(const Graph& fine, const Graph& coarse,
                                        const std::vector<idx_t>& cmap,
                                        const std::vector<idx_t>& coarse_part,
                                        const std::vector<idx_t>& fine_part,
                                        const char* site) {
  MCGP_AUDIT_MSG(this,
                 fine_part.size() == to_size(fine.nvtxs),
                 site, ": projected partition size ", fine_part.size(),
                 " != nvtxs ", fine.nvtxs);
  MCGP_AUDIT_MSG(this,
                 coarse_part.size() == to_size(coarse.nvtxs),
                 site, ": coarse partition size ", coarse_part.size(),
                 " != coarse nvtxs ", coarse.nvtxs);
  for (idx_t v = 0; v < fine.nvtxs; ++v) {
    const idx_t cv = cmap[to_size(v)];
    MCGP_AUDIT_MSG(this,
                   fine_part[to_size(v)] ==
                       coarse_part[to_size(cv)],
                   site, ": vertex ", v, " projected to part ",
                   fine_part[to_size(v)],
                   " but its coarse vertex ", cv, " is in part ",
                   coarse_part[to_size(cv)]);
  }
  const sum_t coarse_cut = audited_cut(this, coarse, coarse_part, site);
  const sum_t fine_cut = audited_cut(this, fine, fine_part, site);
  MCGP_AUDIT_MSG(this, coarse_cut == fine_cut, site,
                 ": projection changed the cut: coarse ", coarse_cut,
                 " -> fine ", fine_cut);
  bump(AuditCheck::kProjection);
}

void InvariantAuditor::check_bisection_weights(const Graph& g,
                                               const std::vector<idx_t>& where,
                                               const BisectionBalance& bal,
                                               const char* site) {
  MCGP_AUDIT_MSG(this, where.size() == to_size(g.nvtxs),
                 site, ": where size ", where.size(), " != nvtxs ", g.nvtxs);
  sum_t fresh[2 * kMaxNcon] = {};
  for (idx_t v = 0; v < g.nvtxs; ++v) {
    const idx_t s = where[to_size(v)];
    MCGP_AUDIT_MSG(this, s == 0 || s == 1, site, ": vertex ", v,
                   " has side ", s, " (not 0/1)");
    const wgt_t* w = g.weights(v);
    for (int i = 0; i < g.ncon; ++i) {
      sum_t& slot = fresh[s * kMaxNcon + i];
      slot = checked_add(slot, w[i]);
    }
  }
  for (int s = 0; s < 2; ++s) {
    for (int i = 0; i < g.ncon; ++i) {
      MCGP_AUDIT_MSG(this, bal.side_weight(s, i) == fresh[s * kMaxNcon + i],
                     site, ": side ", s, " constraint ", i,
                     " bookkeeping says ", bal.side_weight(s, i),
                     ", recompute says ", fresh[s * kMaxNcon + i]);
    }
  }
  bump(AuditCheck::kBisectionState);
}

void InvariantAuditor::check_bisection_cut(const Graph& g,
                                           const std::vector<idx_t>& where,
                                           sum_t claimed_cut,
                                           const char* site) {
  const sum_t fresh = audited_cut(this, g, where, site);
  MCGP_AUDIT_MSG(this, claimed_cut == fresh, site,
                 ": incremental cut ", claimed_cut, " != recomputed cut ",
                 fresh);
  bump(AuditCheck::kBisectionState);
}

void InvariantAuditor::check_kway_state(const Graph& g,
                                        const std::vector<idx_t>& where,
                                        idx_t nparts,
                                        const std::vector<sum_t>& pwgts,
                                        const std::vector<idx_t>* vcount,
                                        const char* site) {
  MCGP_AUDIT_MSG(this, where.size() == to_size(g.nvtxs),
                 site, ": where size ", where.size(), " != nvtxs ", g.nvtxs);
  MCGP_AUDIT_MSG(this,
                 pwgts.size() ==
                     to_size(nparts) * to_size(g.ncon),
                 site, ": pwgts size ", pwgts.size(), " != nparts*ncon ",
                 to_size(nparts) * to_size(g.ncon));
  std::vector<sum_t> fresh(to_size(nparts) * to_size(g.ncon), 0);
  std::vector<idx_t> counts(to_size(nparts), 0);
  for (idx_t v = 0; v < g.nvtxs; ++v) {
    const idx_t p = where[to_size(v)];
    MCGP_AUDIT_MSG(this, p >= 0 && p < nparts, site, ": vertex ", v,
                   " in part ", p, " out of range [0, ", nparts, ")");
    ++counts[to_size(p)];
    const wgt_t* w = g.weights(v);
    for (int i = 0; i < g.ncon; ++i) {
      sum_t& slot = fresh[to_size(p) * to_size(g.ncon) + to_size(i)];
      slot = checked_add(slot, w[i]);
    }
  }
  for (idx_t p = 0; p < nparts; ++p) {
    for (int i = 0; i < g.ncon; ++i) {
      const std::size_t s = to_size(p) * to_size(g.ncon) + to_size(i);
      MCGP_AUDIT_MSG(this, pwgts[s] == fresh[s], site, ": part ", p,
                     " constraint ", i, " bookkeeping says ", pwgts[s],
                     ", recompute says ", fresh[s]);
    }
    if (vcount != nullptr) {
      MCGP_AUDIT_MSG(this,
                     (*vcount)[to_size(p)] ==
                         counts[to_size(p)],
                     site, ": part ", p, " vertex count bookkeeping says ",
                     (*vcount)[to_size(p)],
                     ", recompute says ", counts[to_size(p)]);
    }
  }
  bump(AuditCheck::kKWayState);
}

void InvariantAuditor::check_gain(const Graph& g,
                                  const std::vector<idx_t>& where, idx_t v,
                                  sum_t claimed_gain, const char* site) {
  sum_t idw = 0, edw = 0;
  const idx_t pv = where[to_size(v)];
  for (idx_t e = g.xadj[to_size(v)]; e < g.xadj[to_size(v + 1)]; ++e) {
    const wgt_t w = g.adjwgt[to_size(e)];
    if (where[to_size(g.adjncy[to_size(e)])] == pv) {
      idw = checked_add(idw, w);
    } else {
      edw = checked_add(edw, w);
    }
  }
  const sum_t fresh = checked_sub(edw, idw);
  MCGP_AUDIT_MSG(this, claimed_gain == fresh, site, ": vertex ", v,
                 " queue gain ", claimed_gain, " != recomputed gain ", fresh,
                 " (ed ", edw, ", id ", idw, ")");
  bump(AuditCheck::kGainSample);
}

void InvariantAuditor::check_cut_delta(sum_t cut_before, sum_t gain_sum,
                                       sum_t cut_after, const char* site) {
  MCGP_AUDIT_MSG(this, checked_sub(cut_before, gain_sum) == cut_after, site,
                 ": cut delta inconsistent: started at ", cut_before,
                 ", accumulated gain ", gain_sum, ", ended at ", cut_after);
  bump(AuditCheck::kCutDelta);
}

void InvariantAuditor::check_final_partition(const Graph& g,
                                             const std::vector<idx_t>& part,
                                             idx_t nparts, sum_t claimed_cut,
                                             const char* site) {
  MCGP_AUDIT_MSG(this, part.size() == to_size(g.nvtxs),
                 site, ": partition size ", part.size(), " != nvtxs ",
                 g.nvtxs);
  for (idx_t v = 0; v < g.nvtxs; ++v) {
    const idx_t p = part[to_size(v)];
    MCGP_AUDIT_MSG(this, p >= 0 && p < nparts, site, ": vertex ", v,
                   " in part ", p, " out of range [0, ", nparts, ")");
  }
  const sum_t fresh = audited_cut(this, g, part, site);
  MCGP_AUDIT_MSG(this, claimed_cut == fresh, site, ": claimed cut ",
                 claimed_cut, " != recomputed cut ", fresh);
  bump(AuditCheck::kFinalPartition);
}

void InvariantAuditor::check_feasibility(const Graph& g,
                                         const std::vector<idx_t>& part,
                                         idx_t nparts,
                                         const std::vector<real_t>& ub,
                                         const std::vector<real_t>* tpwgts,
                                         bool declared_feasible,
                                         const char* site) {
  MCGP_AUDIT_MSG(this, part.size() == to_size(g.nvtxs),
                 site, ": partition size ", part.size(), " != nvtxs ",
                 g.nvtxs);
  MCGP_AUDIT_MSG(this, ub.size() >= to_size(g.ncon), site,
                 ": ubvec has ", ub.size(), " entries for ncon ", g.ncon);
  std::vector<sum_t> fresh(to_size(nparts) * to_size(g.ncon), 0);
  for (idx_t v = 0; v < g.nvtxs; ++v) {
    const idx_t p = part[to_size(v)];
    MCGP_AUDIT_MSG(this, p >= 0 && p < nparts, site, ": vertex ", v,
                   " in part ", p, " out of range [0, ", nparts, ")");
    const wgt_t* w = g.weights(v);
    for (int i = 0; i < g.ncon; ++i) {
      sum_t& slot = fresh[to_size(p) * to_size(g.ncon) + to_size(i)];
      slot = checked_add(slot, w[i]);
    }
  }
  const bool actual = kway_feasible(g, fresh, nparts, ub, tpwgts);
  // Locate the worst (part, constraint) ratio for the failure message.
  real_t worst = 0.0;
  idx_t worst_p = 0;
  int worst_i = 0;
  for (idx_t p = 0; p < nparts; ++p) {
    const real_t frac = tpwgts != nullptr
                            ? (*tpwgts)[to_size(p)]
                            : 1.0 / static_cast<real_t>(nparts);
    for (int i = 0; i < g.ncon; ++i) {
      if (g.tvwgt[to_size(i)] <= 0) continue;
      const real_t limit =
          ub[to_size(i)] * frac * static_cast<real_t>(g.tvwgt[to_size(i)]);
      const real_t ratio =
          static_cast<real_t>(
              fresh[to_size(p) * to_size(g.ncon) + to_size(i)]) /
          limit;
      if (ratio > worst) {
        worst = ratio;
        worst_p = p;
        worst_i = i;
      }
    }
  }
  MCGP_AUDIT_MSG(this, declared_feasible == actual, site,
                 ": declared feasible=", declared_feasible ? 1 : 0,
                 " but recomputed weights say ", actual ? 1 : 0,
                 " (worst part ", worst_p, " constraint ", worst_i,
                 " at ", worst, "x its tolerance limit)");
  bump(AuditCheck::kFeasibility);
}

}  // namespace mcgp
