// Coarsening phase, step 1: vertex matchings.
//
// A matching pairs adjacent vertices; each pair collapses into one coarse
// vertex. Heavy-edge matching (HEM) greedily absorbs the heaviest incident
// edge so the coarse graph exposes as little edge weight as possible. The
// SC'98 multi-constraint refinement needs coarse vertices whose weight
// vectors are as uniform as possible across constraints, so HEM is extended
// with the balanced-edge tie-break: among (near-)heaviest candidate edges,
// prefer the partner whose combined weight vector is flattest.
#pragma once

#include <vector>

#include "core/config.hpp"
#include "graph/csr_graph.hpp"
#include "support/random.hpp"
#include "support/workspace.hpp"

namespace mcgp {

/// Compute a matching. match[v] == partner of v, or v itself if unmatched.
/// The relation is symmetric (match[match[v]] == v) and only adjacent
/// vertices are matched. A non-null `trace` accumulates the
/// `match.pairs` / `match.failed` counters (failed = vertices left
/// unmatched although they had neighbors).
std::vector<idx_t> compute_matching(const Graph& g, MatchScheme scheme,
                                    Rng& rng, TraceRecorder* trace = nullptr);

/// As compute_matching, but fills a caller-owned `match` vector and, when
/// `ws` is non-null, reuses ws->perm for the traversal order so repeated
/// coarsening levels allocate nothing.
void compute_matching_into(const Graph& g, MatchScheme scheme, Rng& rng,
                           std::vector<idx_t>& match,
                           TraceRecorder* trace = nullptr,
                           Workspace* ws = nullptr);

/// Derive the fine-to-coarse vertex map from a matching. Coarse ids are
/// assigned in order of the smaller endpoint. Returns the number of coarse
/// vertices and fills cmap (size g.nvtxs).
idx_t build_coarse_map(const Graph& g, const std::vector<idx_t>& match,
                       std::vector<idx_t>& cmap);

/// Flatness score of a combined weight vector used by the balanced-edge
/// tie-break: max_i ĉ_i - min_i ĉ_i of the normalized combined vector
/// (0 for ncon == 1). Exposed for testing.
real_t balanced_edge_score(const Graph& g, idx_t v, idx_t u);

}  // namespace mcgp
