// Coarsening phase, step 1: vertex matchings.
//
// A matching pairs adjacent vertices; each pair collapses into one coarse
// vertex. Heavy-edge matching (HEM) greedily absorbs the heaviest incident
// edge so the coarse graph exposes as little edge weight as possible. The
// SC'98 multi-constraint refinement needs coarse vertices whose weight
// vectors are as uniform as possible across constraints, so HEM is extended
// with the balanced-edge tie-break: among (near-)heaviest candidate edges,
// prefer the partner whose combined weight vector is flattest.
#pragma once

#include <vector>

#include "core/config.hpp"
#include "graph/csr_graph.hpp"
#include "support/random.hpp"
#include "support/workspace.hpp"

namespace mcgp {

class ThreadPool;
class Profiler;

/// Execution context for parallel matching: where to run the handshake
/// rounds' chunk tasks and how to attribute their on-CPU time. All fields
/// optional; a null exec (or null pool) runs the identical algorithm
/// inline — the ALGORITHM is selected by graph size alone, never by the
/// pool or thread count, so partitions stay bit-identical across
/// `num_threads`.
struct MatchingExec {
  ThreadPool* pool = nullptr;
  Profiler* profile = nullptr;  ///< aux attribution of worker chunks
  int level = -1;               ///< hierarchy level for the profile bucket
};

/// Compute a matching. match[v] == partner of v, or v itself if unmatched.
/// The relation is symmetric (match[match[v]] == v) and only adjacent
/// vertices are matched. A non-null `trace` accumulates the
/// `match.pairs` / `match.failed` counters (failed = vertices left
/// unmatched although they had neighbors).
///
/// Small graphs use a serial greedy visitor in random order; graphs of at
/// least kHandshakeMinVtxs vertices use deterministic handshake rounds
/// (parallel propose over vertex ranges from a frozen state, mutual
/// proposals accepted — conflicts resolved by hashed per-round keys, a
/// fixed total order, never arrival order) followed by a serial greedy
/// cleanup that restores maximality.
std::vector<idx_t> compute_matching(const Graph& g, MatchScheme scheme,
                                    Rng& rng, TraceRecorder* trace = nullptr);

/// Vertex count at or above which compute_matching switches from the
/// serial greedy visitor to handshake rounds (whose propose phases can
/// run on a pool). Size-based only: the same graph takes the same path at
/// every thread count.
inline constexpr idx_t kHandshakeMinVtxs = 8192;

/// As compute_matching, but fills a caller-owned `match` vector and, when
/// `ws` is non-null, reuses ws->perm / ws->proposal so repeated coarsening
/// levels allocate nothing. A non-null `exec` lets the handshake propose
/// and accept phases run as chunk tasks on exec->pool.
void compute_matching_into(const Graph& g, MatchScheme scheme, Rng& rng,
                           std::vector<idx_t>& match,
                           TraceRecorder* trace = nullptr,
                           Workspace* ws = nullptr,
                           const MatchingExec* exec = nullptr);

/// Derive the fine-to-coarse vertex map from a matching. Coarse ids are
/// assigned in order of the smaller endpoint. Returns the number of coarse
/// vertices and fills cmap (size g.nvtxs).
idx_t build_coarse_map(const Graph& g, const std::vector<idx_t>& match,
                       std::vector<idx_t>& cmap);

/// Flatness score of a combined weight vector used by the balanced-edge
/// tie-break: max_i ĉ_i - min_i ĉ_i of the normalized combined vector
/// (0 for ncon == 1). Exposed for testing.
real_t balanced_edge_score(const Graph& g, idx_t v, idx_t u);

}  // namespace mcgp
