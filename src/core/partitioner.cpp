#include "core/partitioner.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/audit.hpp"
#include "core/kway_driver.hpp"
#include "core/kway_refine.hpp"
#include "core/rb_driver.hpp"
#include "core/rebalance.hpp"
#include "graph/metrics.hpp"
#include "support/flight_recorder.hpp"
#include "support/metrics.hpp"
#include "support/perf_counters.hpp"
#include "support/random.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"
#include "support/trace.hpp"

namespace mcgp {

namespace {

void validate_options(const Graph& g, const Options& opts) {
  if (opts.nparts < 1) throw std::invalid_argument("partition: nparts < 1");
  if (opts.num_threads < 1) {
    throw std::invalid_argument("partition: num_threads < 1");
  }
  if (!opts.ubvec.empty() &&
      opts.ubvec.size() != to_size(g.ncon) &&
      opts.ubvec.size() != 1) {
    throw std::invalid_argument("partition: ubvec arity mismatch");
  }
  for (std::size_t i = 0; i < opts.ubvec.size(); ++i) {
    const real_t ub = opts.ubvec[i];
    if (!std::isfinite(ub) || ub < 1.0) {
      throw std::invalid_argument(
          "partition: ubvec[" + std::to_string(i) + "] = " +
          std::to_string(ub) + " — every tolerance must be finite and >= 1.0");
    }
  }
  const int audit_level = static_cast<int>(opts.audit_level);
  if (audit_level < static_cast<int>(AuditLevel::kOff) ||
      audit_level > static_cast<int>(AuditLevel::kParanoid)) {
    throw std::invalid_argument(
        "partition: audit_level " + std::to_string(audit_level) +
        " out of range [0, 2]");
  }
  if (!opts.tpwgts.empty()) {
    if (opts.tpwgts.size() != to_size(opts.nparts)) {
      throw std::invalid_argument(
          "partition: tpwgts must hold one target fraction per part (got " +
          std::to_string(opts.tpwgts.size()) + " entries for nparts = " +
          std::to_string(opts.nparts) + ")");
    }
    real_t total = 0;
    for (std::size_t p = 0; p < opts.tpwgts.size(); ++p) {
      const real_t f = opts.tpwgts[p];
      if (f <= 0) {
        throw std::invalid_argument(
            "partition: tpwgts[" + std::to_string(p) + "] = " +
            std::to_string(f) + " — every target fraction must be > 0");
      }
      total += f;
    }
    if (total < 0.999 || total > 1.001) {
      throw std::invalid_argument(
          "partition: tpwgts must sum to 1 (got " + std::to_string(total) +
          ")");
    }
  }
  // An explicitly supplied ubvec must be achievable: a tolerance below the
  // instance's provable lower bound (heaviest vertex / pigeonhole, see
  // min_feasible_ubvec) cannot be met by ANY partition, so accepting it
  // silently returns an "imbalanced" result no algorithm could avoid.
  // The empty default is instead clamped up by effective_ubvec.
  if (!opts.ubvec.empty()) {
    const std::vector<real_t>* tp =
        opts.tpwgts.empty() ? nullptr : &opts.tpwgts;
    const std::vector<real_t> bounds =
        min_feasible_ubvec(g, opts.nparts, tp);
    for (int i = 0; i < g.ncon; ++i) {
      const real_t ub = opts.ub_for(i);
      if (ub < bounds[to_size(i)] - 1e-9) {
        throw std::invalid_argument(
            "partition: ubvec[" + std::to_string(i) + "] = " +
            std::to_string(ub) +
            " is infeasible by construction: no " +
            std::to_string(opts.nparts) +
            "-way partition of this graph can achieve better than " +
            std::to_string(bounds[to_size(i)]) + " in constraint " +
            std::to_string(i) +
            " (heaviest-vertex / pigeonhole bound). Request at least that, "
            "or leave ubvec empty to have the tolerance clamped "
            "automatically.");
      }
    }
  }
}

/// Guarantee non-empty parts whenever the graph has enough vertices:
/// weight-degenerate instances (e.g. one vertex holding half the total
/// weight) can leave recursive bisection with empty subdomains. Repair by
/// donating the lightest vertices of the most populous parts.
void ensure_nonempty_parts(const Graph& g, idx_t nparts,
                           std::vector<idx_t>& part) {
  if (g.nvtxs < nparts) return;
  std::vector<idx_t> count(to_size(nparts), 0);
  for (const idx_t p : part) ++count[to_size(p)];
  for (idx_t empty = 0; empty < nparts; ++empty) {
    if (count[to_size(empty)] > 0) continue;
    // Donor: the part with the most vertices.
    idx_t donor = 0;
    for (idx_t p = 1; p < nparts; ++p) {
      if (count[to_size(p)] > count[to_size(donor)]) {
        donor = p;
      }
    }
    // Donate the donor's vertex with the smallest weighted degree (least
    // cut damage) — ties broken by the smallest max normalized weight.
    idx_t best = -1;
    sum_t best_deg = 0;
    for (idx_t v = 0; v < g.nvtxs; ++v) {
      if (part[to_size(v)] != donor) continue;
      const sum_t deg = g.weighted_degree(v);
      if (best < 0 || deg < best_deg) {
        best = v;
        best_deg = deg;
      }
    }
    if (best < 0) break;  // donor vanished (cannot happen with counts > 1)
    part[to_size(best)] = empty;
    --count[to_size(donor)];
    ++count[to_size(empty)];
  }
}

void fill_quality(const Graph& g, const Options& opts, PartitionResult& r) {
  r.cut = edge_cut(g, r.part);
  r.imbalance = opts.tpwgts.empty()
                    ? imbalance(g, r.part, opts.nparts)
                    : target_imbalance(g, r.part, opts.nparts, opts.tpwgts);
  r.max_imbalance =
      r.imbalance.empty()
          ? 1.0
          : *std::max_element(r.imbalance.begin(), r.imbalance.end());
  // The feasibility verdict is judged against the effective tolerances the
  // run refined toward (callers set opts.ubvec = effective_ubvec first).
  r.ubvec_used.resize(to_size(g.ncon));
  for (int i = 0; i < g.ncon; ++i) r.ubvec_used[to_size(i)] = opts.ub_for(i);
  const std::vector<real_t>* tp =
      opts.tpwgts.empty() ? nullptr : &opts.tpwgts;
  r.feasible = kway_feasible(g, part_weights(g, r.part, opts.nparts),
                             opts.nparts, r.ubvec_used, tp);
}

/// Effective audit level: the MCGP_AUDIT environment variable (parsed once
/// per process) overrides the per-run option, so an existing application or
/// test suite can be re-run fully audited without code changes.
AuditLevel effective_audit_level(AuditLevel opt_level) {
  static const int env_level = [] {
    const char* s = std::getenv("MCGP_AUDIT");
    AuditLevel lvl = AuditLevel::kOff;
    if (s != nullptr && parse_audit_level(s, lvl)) {
      return static_cast<int>(lvl);
    }
    return -1;  // unset or unrecognized: no override
  }();
  return env_level >= 0 ? static_cast<AuditLevel>(env_level) : opt_level;
}

/// End-of-run summary sample: final cut, per-constraint imbalances, and a
/// last memory reading folded into the high-water marks.
void record_final_sample(const Graph& g, const Options& opts,
                         const PartitionResult& r) {
  if (opts.flight == nullptr) return;
  opts.flight->sample_memory();
  FlightSample fs;
  fs.stage = FlightSample::Stage::kFinal;
  fs.ncon = g.ncon;
  fs.nvtxs = g.nvtxs;
  fs.nedges = g.nedges();
  fs.cut = r.cut;
  fs.worst_imbalance = r.max_imbalance;
  fs.feasible = r.feasible ? 1 : 0;
  for (int i = 0; i < g.ncon && i < kMaxNcon; ++i) {
    fs.imbalance[i] = r.imbalance[to_size(i)];
  }
  opts.flight->record(fs);
}

/// Brackets one partition()/refine_partition() call against the
/// process-lifetime metrics registry (Options::metrics): run_begin/run_end
/// for the inflight gauge, baselines of the shared auditor/profiler so
/// only THIS run's deltas are folded in (observers shared across runs
/// must not double-count), the heartbeat bridge through the flight
/// recorder (a local recorder is attached when the caller has none, so
/// progress stamps and workspace gauges always flow), and — on the
/// completion path — the latency histograms and quality gauges. A scope
/// destroyed without complete() counts the run as failed.
class MetricsRunScope {
 public:
  MetricsRunScope(Options& opts, const char* alg) : opts_(opts), alg_(alg) {
    MetricsRegistry* m = opts_.metrics;
    if (m == nullptr) return;
    m->run_begin();
    if (opts_.flight == nullptr) {
      local_flight_.emplace();
      opts_.flight = &*local_flight_;
    }
    opts_.flight->set_metrics(m);
    if (opts_.audit != nullptr) {
      for (int c = 0; c < kAuditCategories; ++c) {
        audit_baseline_[to_size(c)] =
            opts_.audit->count(static_cast<AuditCheck>(c));
      }
    }
    if (opts_.profile != nullptr) prof_baseline_ = opts_.profile->snapshot();
  }

  MetricsRunScope(const MetricsRunScope&) = delete;
  MetricsRunScope& operator=(const MetricsRunScope&) = delete;

  ~MetricsRunScope() {
    MetricsRegistry* m = opts_.metrics;
    if (m == nullptr) return;
    // The caller's recorder outlives this run; the registry might not.
    opts_.flight->set_metrics(nullptr);
    if (!completed_) m->counter_add("mcgp_partitions_failed", {alg_});
    m->run_end();
  }

  /// Fold the finished run in. `run_ns` is the same WallTimer interval
  /// that becomes PartitionResult::seconds.
  void complete(const PartitionResult& r, std::int64_t run_ns) {
    MetricsRegistry* m = opts_.metrics;
    if (m == nullptr) return;
    completed_ = true;
    m->counter_add("mcgp_partitions", {alg_});
    if (!r.feasible) m->counter_add("mcgp_partitions_infeasible", {alg_});
    m->observe("mcgp_run_ns", {alg_}, run_ns);
    for (const auto& [phase, seconds] : r.phases.entries()) {
      m->observe("mcgp_phase_ns", {phase, alg_},
                 static_cast<std::int64_t>(seconds * 1e9));
    }
    m->gauge_set("mcgp_last_cut", {alg_}, static_cast<double>(r.cut));
    for (std::size_t i = 0; i < r.imbalance.size(); ++i) {
      m->gauge_set("mcgp_last_imbalance", {std::to_string(i)},
                   r.imbalance[i]);
    }
    m->gauge_set("mcgp_last_feasible", {}, r.feasible ? 1.0 : 0.0);
    const FlightRecorder* fr = opts_.flight;
    if (fr->peak_rss_bytes() >= 0) {
      m->gauge_set("mcgp_peak_rss_bytes", {},
                   static_cast<double>(fr->peak_rss_bytes()));
    }
    if (fr->workspace_bytes() >= 0) {
      m->gauge_set("mcgp_workspace_bytes", {},
                   static_cast<double>(fr->workspace_bytes()));
    }
    if (fr->workspace_count() >= 0) {
      m->gauge_set("mcgp_workspace_count", {},
                   static_cast<double>(fr->workspace_count()));
    }
    if (opts_.audit != nullptr) {
      for (int c = 0; c < kAuditCategories; ++c) {
        const std::uint64_t now =
            opts_.audit->count(static_cast<AuditCheck>(c));
        const std::uint64_t was = audit_baseline_[to_size(c)];
        if (now > was) {
          m->counter_add("mcgp_audit_checks",
                         {audit_check_name(static_cast<AuditCheck>(c))},
                         static_cast<sum_t>(now - was));
        }
      }
    }
    if (opts_.profile != nullptr) fold_profile(*m);
  }

 private:
  static constexpr int kAuditCategories =
      static_cast<int>(AuditCheck::kCount_);

  /// Per-(phase, level) wall and per-phase cycle deltas vs the baseline
  /// snapshot, each observed as one histogram sample for this run.
  void fold_profile(MetricsRegistry& m) const {
    std::map<std::pair<std::string, int>, std::int64_t> wall_base;
    std::map<std::string, std::int64_t> cycles_base;
    for (const ProfPhase& p : prof_baseline_) {
      wall_base[{p.phase, p.level}] += p.stats.wall_ns;
      cycles_base[p.phase] +=
          p.stats.counters[static_cast<int>(PerfCounter::kCycles)];
    }
    std::map<std::string, std::int64_t> cycles_now;
    for (const ProfPhase& p : opts_.profile->snapshot()) {
      const std::int64_t wall = p.stats.wall_ns - wall_base[{p.phase, p.level}];
      if (wall > 0) {
        m.observe("mcgp_level_wall_ns",
                  {p.phase, p.level < 0 ? "all" : std::to_string(p.level)},
                  wall);
      }
      cycles_now[p.phase] +=
          p.stats.counters[static_cast<int>(PerfCounter::kCycles)];
    }
    for (const auto& [phase, cyc] : cycles_now) {
      const std::int64_t delta = cyc - cycles_base[phase];
      if (delta > 0) m.observe("mcgp_phase_cycles", {phase}, delta);
    }
  }

  Options& opts_;
  const char* alg_;
  bool completed_ = false;
  std::optional<FlightRecorder> local_flight_;
  std::uint64_t audit_baseline_[to_size(AuditCheck::kCount_)] = {};
  std::vector<ProfPhase> prof_baseline_;
};

const char* metrics_alg_name(Algorithm a) {
  return a == Algorithm::kKWay ? "kway" : "rb";
}

}  // namespace

PartitionResult partition(const Graph& g, const Options& run_opts) {
  validate_options(g, run_opts);

  // An externally supplied auditor is used as-is (its own level governs);
  // otherwise one is created here when the effective level asks for audits.
  Options opts = run_opts;
  std::optional<InvariantAuditor> local_audit;
  if (opts.audit == nullptr) {
    const AuditLevel lvl = effective_audit_level(opts.audit_level);
    if (lvl != AuditLevel::kOff) {
      local_audit.emplace(lvl);
      opts.audit = &*local_audit;
    }
  }

  // From here the whole pipeline refines toward the effective tolerances:
  // the request clamped up to the instance's provable lower bound, so a
  // coarse-granularity graph pursues the best achievable balance instead
  // of an impossible one. validate_options already rejected explicit
  // requests below the bound; this clamp only adjusts the empty default.
  opts.ubvec = effective_ubvec(g, opts);

  WallTimer timer;
  PartitionResult result;
  Rng rng(opts.seed);

  // Cross-run aggregation: the scope baselines shared observers, bridges
  // the heartbeat, and folds this run's telemetry in at complete().
  MetricsRunScope metrics_scope(opts, metrics_alg_name(opts.algorithm));

  // Whole-run measurement interval: every nested scope is inside it, so
  // the "run" bucket counts each cycle exactly once — the denominator for
  // per-phase shares and the run-ledger headline.
  if (opts.profile != nullptr) opts.profile->set_threads(opts.num_threads);
  ProfScope run_prof(opts.profile, "run");
  run_prof.work(g.nedges(), g.nvtxs);

  TraceSpan run_span(opts.trace, "partition");
  if (run_span.enabled()) {
    run_span.arg({"nvtxs", g.nvtxs});
    run_span.arg({"nedges", g.nedges()});
    run_span.arg({"ncon", g.ncon});
    run_span.arg({"nparts", opts.nparts});
    run_span.arg({"seed", static_cast<std::int64_t>(opts.seed)});
    run_span.arg({"algorithm",
                  static_cast<std::int64_t>(
                      opts.algorithm == Algorithm::kKWay ? 1 : 0)});
  }

  std::optional<ThreadPool> pool;
  if (opts.num_threads > 1) pool.emplace(opts.num_threads);
  ThreadPool* pool_ptr = pool.has_value() ? &*pool : nullptr;

  try {
    switch (opts.algorithm) {
      case Algorithm::kRecursiveBisection: {
        MlBisectStats stats;
        result.part = partition_recursive_bisection(
            g, opts, rng, &result.phases, &stats, pool_ptr);
        result.coarsen_levels = stats.levels;
        result.coarsest_nvtxs = stats.coarsest_nvtxs;
        break;
      }
      case Algorithm::kKWay: {
        KWayDriverStats stats;
        result.part =
            partition_kway(g, opts, rng, &result.phases, &stats, pool_ptr);
        result.coarsen_levels = stats.levels;
        result.coarsest_nvtxs = stats.coarsest_nvtxs;
        break;
      }
    }

    ensure_nonempty_parts(g, opts.nparts, result.part);
    fill_quality(g, opts, result);
    if (opts.audit != nullptr && opts.audit->boundaries()) {
      opts.audit->check_final_partition(g, result.part, opts.nparts,
                                        result.cut, "partition.final");
      opts.audit->check_feasibility(
          g, result.part, opts.nparts, result.ubvec_used,
          opts.tpwgts.empty() ? nullptr : &opts.tpwgts, result.feasible,
          "partition.final");
    }
  } catch (const AuditFailure& e) {
    // The run is aborting; persist the retained sample window so the
    // failing level / pass can be reconstructed postmortem.
    if (opts.flight != nullptr) {
      opts.flight->sample_memory();
      opts.flight->dump_on_failure(e.what());
    }
    throw;
  }
  record_final_sample(g, opts, result);
  if (run_span.enabled()) {
    run_span.arg({"cut", result.cut});
    run_span.arg({"max_imbalance", result.max_imbalance});
    run_span.finish();
    result.counters = opts.trace->merged_counters();
  }
  result.seconds = timer.seconds();
  // Fold the profiler's "run" bucket before the metrics delta is taken so
  // this run's whole-run interval reaches the level histograms too.
  run_prof.finish();
  metrics_scope.complete(result, timer.elapsed_ns());
  return result;
}

PartitionResult refine_partition(const Graph& g, std::vector<idx_t> part,
                                 const Options& run_opts) {
  validate_options(g, run_opts);
  const std::string problem = validate_partition(g, part, run_opts.nparts);
  if (!problem.empty()) {
    throw std::invalid_argument("refine_partition: " + problem);
  }

  Options opts = run_opts;
  std::optional<InvariantAuditor> local_audit;
  if (opts.audit == nullptr) {
    const AuditLevel lvl = effective_audit_level(opts.audit_level);
    if (lvl != AuditLevel::kOff) {
      local_audit.emplace(lvl);
      opts.audit = &*local_audit;
    }
  }

  // Same effective-tolerance contract as partition(): refine toward the
  // request clamped up to the instance's provable lower bound.
  opts.ubvec = effective_ubvec(g, opts);

  WallTimer timer;
  PartitionResult result;
  Rng rng(opts.seed);

  MetricsRunScope metrics_scope(opts, "refine");

  if (opts.profile != nullptr) opts.profile->set_threads(opts.num_threads);
  ProfScope run_prof(opts.profile, "run");
  run_prof.work(g.nedges(), g.nvtxs);

  // Standalone refinement drives the same parallel colored sweep as the
  // full pipeline: its own pool + workspace pool, sized by num_threads.
  std::optional<ThreadPool> pool;
  if (opts.num_threads > 1) pool.emplace(opts.num_threads);
  WorkspacePool wspool;

  std::vector<real_t> ub(to_size(g.ncon));
  for (int i = 0; i < g.ncon; ++i) {
    ub[to_size(i)] = opts.ub_for(i);
  }
  const std::vector<real_t>* tp =
      opts.tpwgts.empty() ? nullptr : &opts.tpwgts;

  {
    ScopedPhase sp(result.phases, "refine");
    TraceSpan tsp(opts.trace, "refine_partition");
    ProfScope ps(opts.profile,
                 opts.kway_scheme == KWayRefineScheme::kPriorityQueue
                     ? "kway_refine_pq"
                     : "kway_refine",
                 0);
    ps.work(g.nedges(), g.nvtxs);
    if (opts.kway_scheme == KWayRefineScheme::kPriorityQueue) {
      kway_refine_pq(g, opts.nparts, part, ub, opts.kway_passes, rng, nullptr,
                     tp, opts.trace, opts.audit, opts.flight);
    } else {
      KWayExec kexec;
      kexec.pool = pool.has_value() ? &*pool : nullptr;
      kexec.wspool = &wspool;
      kexec.profile = opts.profile;
      kexec.level = 0;
      kway_refine(g, opts.nparts, part, ub, opts.kway_passes, rng, nullptr,
                  tp, opts.trace, opts.audit, opts.flight, &kexec);
    }
    // The refiner's own balancer can exit with residual overload on tight
    // instances; escalate to the dedicated rebalancer (greedy relief
    // moves, swaps, bounded V-cycles) before declaring the result.
    if (!kway_feasible(g, part_weights(g, part, opts.nparts), opts.nparts,
                       ub, tp)) {
      rebalance_partition(g, opts.nparts, part, ub, rng, tp, nullptr,
                          opts.trace, opts.audit, opts.flight);
    }
  }

  result.part = std::move(part);
  fill_quality(g, opts, result);
  if (opts.audit != nullptr && opts.audit->boundaries()) {
    opts.audit->check_final_partition(g, result.part, opts.nparts, result.cut,
                                      "refine_partition.final");
    opts.audit->check_feasibility(g, result.part, opts.nparts,
                                  result.ubvec_used, tp, result.feasible,
                                  "refine_partition.final");
  }
  record_final_sample(g, opts, result);
  if (opts.trace != nullptr) result.counters = opts.trace->merged_counters();
  result.seconds = timer.seconds();
  run_prof.finish();
  metrics_scope.complete(result, timer.elapsed_ns());
  return result;
}

}  // namespace mcgp
