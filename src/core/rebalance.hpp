// Greedy multi-constraint rebalancing (Maas-style gain-to-relief moves)
// plus a bounded restricted V-cycle (Sanders/Schulz iterated multilevel),
// invoked whenever kway_balance exits with residual overload. This is the
// feasibility backstop of the pipeline: kway_balance is a fast drain of the
// current peak, while rebalance_partition keeps working the instance —
// relief-ordered heap moves, pairwise swaps on small graphs, and
// partition-restricted re-coarsening — until every constraint of every
// part is within ubvec or the bounded effort is exhausted.
//
// Determinism contract (PR 7): everything here is serial and derives every
// ordering decision from vertex ids, edge weights, and the caller's Rng
// stream — never from threads or arrival order. The pass runs after the
// parallel phases, on a `where` that is already bit-identical across
// num_threads, and keeps it that way.
#pragma once

#include <vector>

#include "core/config.hpp"
#include "graph/csr_graph.hpp"
#include "support/random.hpp"
#include "support/types.hpp"

namespace mcgp {

class TraceRecorder;
class InvariantAuditor;
class FlightRecorder;

/// Outcome of a rebalance_partition call.
struct RebalanceStats {
  int episodes = 0;       ///< greedy episodes run (peak re-selections)
  int vcycles = 0;        ///< restricted V-cycles run
  sum_t moves = 0;        ///< single-vertex moves committed
  sum_t swaps = 0;        ///< pairwise swaps committed (small graphs only)
  bool feasible = false;  ///< final state satisfies every constraint
  real_t max_overload = 0.0;  ///< final max tolerance-relative load
};

/// Per-constraint lower bound on any achievable balance tolerance: no
/// partition of `g` into nparts parts (under the given target fractions,
/// uniform when tpwgts is null) can beat these, whatever the algorithm.
/// Three sound bounds are combined per constraint i (all >= 1.0):
///  - heaviest vertex: some part holds the heaviest vertex, so
///    ub_i >= wmax_i / (max_frac * tvwgt_i);
///  - count pigeonhole: some part holds h = ceil(n/nparts) vertices, whose
///    weight is at least the sum of the h smallest, so
///    ub_i >= S_min(h) / (max_frac * tvwgt_i);
///  - weight pigeonhole (uniform targets only): integer part weights sum
///    to tvwgt_i, so some part carries >= ceil(tvwgt_i/nparts) and
///    ub_i >= nparts * ceil(tvwgt_i/nparts) / tvwgt_i.
/// Constraints with tvwgt_i <= 0 get 1.0.
std::vector<real_t> min_feasible_ubvec(const Graph& g, idx_t nparts,
                                       const std::vector<real_t>* tpwgts);

/// The tolerance vector a run actually refines against: the requested
/// Options::ubvec (or its 1.05 default) clamped up, per constraint, to
/// min_feasible_ubvec. validate_options rejects an EXPLICIT ubvec below
/// the bound; the empty default is clamped silently so coarse instances
/// (few heavy vertices per part) still pursue the best achievable balance
/// instead of an impossible one.
std::vector<real_t> effective_ubvec(const Graph& g, const Options& opts);

/// Drive `where` to feasibility under `ub`: greedy gain-to-relief episodes
/// first (heap-ordered moves out of the argmax-overloaded part), pairwise
/// swaps when single moves deadlock on small graphs, then up to
/// `max_vcycles` partition-restricted V-cycles (re-coarsen merging only
/// same-part vertices, rebalance the coarse problem where whole clusters
/// move at once, project back with per-level refinement). Returns the final
/// feasibility; `where` is left with the best (lowest max-overload) state
/// reached, never a worse one than the input. Serial and deterministic for
/// a fixed Rng stream.
bool rebalance_partition(const Graph& g, idx_t nparts,
                         std::vector<idx_t>& where,
                         const std::vector<real_t>& ub, Rng& rng,
                         const std::vector<real_t>* tpwgts = nullptr,
                         RebalanceStats* stats = nullptr,
                         TraceRecorder* trace = nullptr,
                         InvariantAuditor* audit = nullptr,
                         FlightRecorder* flight = nullptr,
                         int max_vcycles = 3);

}  // namespace mcgp
