#include "core/refine2way.hpp"

#include <algorithm>
#include <array>
#include <numeric>

#include "core/audit.hpp"
#include "support/check.hpp"
#include "support/bucket_queue.hpp"
#include "support/flight_recorder.hpp"
#include "support/trace.hpp"

namespace mcgp {

int dominant_constraint(const Graph& g, idx_t v) {
  const wgt_t* w = g.weights(v);
  int dom = 0;
  real_t best = -1.0;
  for (int i = 0; i < g.ncon; ++i) {
    const real_t nw = static_cast<real_t>(w[i]) * g.invtvwgt[to_size(i)];
    if (nw > best) {
      best = nw;
      dom = i;
    }
  }
  return dom;
}

namespace {

/// How far past the tolerance an intermediate state may stray within a
/// pass (see the exploration-envelope note in FmPass::run).
constexpr real_t kBalanceExploreSlack = 0.10;

/// One FM pass worth of state. Queues are indexed [side][constraint]
/// (policy kSingleQueue uses constraint slot 0 only).
class FmPass {
 public:
  FmPass(const Graph& g, std::vector<idx_t>& where,
         const BisectionTargets& targets, QueuePolicy policy, Rng& rng)
      : g_(g), where_(where), policy_(policy), rng_(rng) {
    balance_.init(g, where, targets);
    const auto n = to_size(g.nvtxs);
    id_.assign(n, 0);
    ed_.assign(n, 0);
    moved_.assign(n, 0);
    dom_.resize(n);
    for (idx_t v = 0; v < g.nvtxs; ++v) {
      dom_[to_size(v)] =
          policy == QueuePolicy::kSingleQueue ? 0 : dominant_constraint(g, v);
    }
    const int nq = policy == QueuePolicy::kSingleQueue ? 1 : g.ncon;
    for (int s = 0; s < 2; ++s) {
      for (int c = 0; c < nq; ++c) queues_[to_size(s)][to_size(c)].reset(g.nvtxs);
    }
    nqueues_ = nq;
  }

  /// Run one pass; returns true if it improved (cut or balance).
  bool run(sum_t& cut, idx_t move_limit, Refine2WayStats* stats,
           TraceRecorder* trace, InvariantAuditor* audit,
           FlightRecorder* flight, int pass_index);

 private:
  struct MoveRecord {
    idx_t v;
    int from;
    sum_t cut_delta;
  };

  void compute_degrees_and_seed_queues(sum_t& cut);
  bool select(idx_t& v, int& from);
  void commit_move(idx_t v, int from, sum_t& cut);
  void rollback_to(std::size_t best_prefix, sum_t& cut);

  wgt_t gain(idx_t v) const {
    return checked_narrow<wgt_t>(
        checked_sub(ed_[to_size(v)], id_[to_size(v)]));
  }

  void enqueue(idx_t v) {
    const int s = where_[to_size(v)];
    queues_[to_size(s)][to_size(dom_[to_size(v)])].insert(v, gain(v));
  }

  void dequeue_if_present(idx_t v) {
    const int s = where_[to_size(v)];
    auto& q = queues_[to_size(s)][to_size(dom_[to_size(v)])];
    if (q.contains(v)) q.remove(v);
  }

  const Graph& g_;
  std::vector<idx_t>& where_;
  QueuePolicy policy_;
  Rng& rng_;
  BisectionBalance balance_;

  std::vector<sum_t> id_, ed_;  // internal/external weighted degree
  std::vector<char> moved_;
  std::vector<int> dom_;
  std::array<std::array<BucketQueue, kMaxNcon>, 2> queues_;
  int nqueues_ = 1;
  int rr_next_ = 0;  // round-robin cursor (kRoundRobin policy)
  std::vector<MoveRecord> log_;
};

void FmPass::compute_degrees_and_seed_queues(sum_t& cut) {
  sum_t cut2 = 0;
  for (idx_t v = 0; v < g_.nvtxs; ++v) {
    sum_t idw = 0, edw = 0;
    const idx_t pv = where_[to_size(v)];
    for (idx_t e = g_.xadj[to_size(v)]; e < g_.xadj[to_size(v + 1)]; ++e) {
      if (where_[to_size(g_.adjncy[to_size(e)])] == pv) {
        idw = checked_add(idw, g_.adjwgt[to_size(e)]);
      } else {
        edw = checked_add(edw, g_.adjwgt[to_size(e)]);
      }
    }
    id_[to_size(v)] = idw;
    ed_[to_size(v)] = edw;
    cut2 = checked_add(cut2, edw);
  }
  cut = cut2 / 2;
  // Seed queues with boundary vertices in random order (randomized
  // insertion breaks ties inside equal-gain buckets differently per seed).
  std::vector<idx_t> perm;
  random_permutation(g_.nvtxs, perm, rng_);
  for (const idx_t v : perm) {
    if (ed_[to_size(v)] > 0) enqueue(v);
  }
}

bool FmPass::select(idx_t& v, int& from) {
  if (nqueues_ == 1) {
    // Single-queue policy: prefer the heavier side overall, fall back to
    // the other side.
    const int heavy =
        balance_.nload(0, balance_.worst_constraint()) >=
                balance_.nload(1, balance_.worst_constraint())
            ? 0
            : 1;
    for (const int s : {heavy, 1 - heavy}) {
      if (!queues_[to_size(s)][0].empty()) {
        v = queues_[to_size(s)][0].pop_max();
        from = s;
        return true;
      }
    }
    return false;
  }

  // Order constraints by tolerance-relative overload (descending) — the
  // paper's selection rule — or cyclically for the round-robin ablation.
  const int nq = std::clamp(nqueues_, 1, kMaxNcon);
  std::array<int, kMaxNcon> order{};
  std::iota(order.begin(), order.begin() + nq, 0);
  if (policy_ == QueuePolicy::kMostImbalanced) {
    std::sort(order.begin(), order.begin() + nq, [&](int a, int b) {
      return balance_.constraint_potential(a) > balance_.constraint_potential(b);
    });
  } else {
    std::rotate(order.begin(), order.begin() + (rr_next_ % nq),
                order.begin() + nq);
    rr_next_ = (rr_next_ + 1) % nq;
  }

  for (int oi = 0; oi < nq; ++oi) {
    const int c = order[to_size(oi)];
    const int heavy = balance_.heavy_side(c);
    if (!queues_[to_size(heavy)][to_size(c)].empty()) {
      v = queues_[to_size(heavy)][to_size(c)].pop_max();
      from = heavy;
      return true;
    }
  }
  // All heavy-side queues empty: fall back to the best-gain vertex across
  // every remaining queue so pure cut improvement can continue.
  wgt_t best_gain = 0;
  int bs = -1, bc = -1;
  for (int s = 0; s < 2; ++s) {
    for (int c = 0; c < nqueues_; ++c) {
      if (queues_[to_size(s)][to_size(c)].empty()) continue;
      const wgt_t gq = queues_[to_size(s)][to_size(c)].max_key();
      if (bs < 0 || gq > best_gain) {
        best_gain = gq;
        bs = s;
        bc = c;
      }
    }
  }
  if (bs < 0) return false;
  v = queues_[to_size(bs)][to_size(bc)].pop_max();
  from = bs;
  return true;
}

void FmPass::commit_move(idx_t v, int from, sum_t& cut) {
  const int to = 1 - from;
  const sum_t delta = checked_sub(id_[to_size(v)], ed_[to_size(v)]);
  cut = checked_add(cut, delta);
  log_.push_back(MoveRecord{v, from, delta});

  where_[to_size(v)] = to;
  balance_.apply_move(v, from);
  std::swap(id_[to_size(v)], ed_[to_size(v)]);

  for (idx_t e = g_.xadj[to_size(v)]; e < g_.xadj[to_size(v + 1)]; ++e) {
    const idx_t u = g_.adjncy[to_size(e)];
    const wgt_t w = g_.adjwgt[to_size(e)];
    const bool u_with_v_now = where_[to_size(u)] == to;
    // v left u's side (u_with_v_now == false) or joined it (true).
    const std::size_t su = to_size(u);
    if (u_with_v_now) {
      id_[su] = checked_add(id_[su], w);
      ed_[su] = checked_sub(ed_[su], w);
    } else {
      id_[su] = checked_sub(id_[su], w);
      ed_[su] = checked_add(ed_[su], w);
    }
    if (moved_[su]) continue;
    const int s = where_[su];
    auto& q = queues_[to_size(s)][to_size(dom_[su])];
    if (ed_[su] > 0) {
      if (q.contains(u)) {
        q.update(u, gain(u));
      } else {
        q.insert(u, gain(u));
      }
    } else if (q.contains(u)) {
      q.remove(u);
    }
  }
}

void FmPass::rollback_to(std::size_t best_prefix, sum_t& cut) {
  while (log_.size() > best_prefix) {
    const MoveRecord r = log_.back();
    log_.pop_back();
    where_[to_size(r.v)] = r.from;
    balance_.apply_move(r.v, 1 - r.from);
    cut = checked_sub(cut, r.cut_delta);
  }
}

bool FmPass::run(sum_t& cut, idx_t move_limit, Refine2WayStats* stats,
                 TraceRecorder* trace, InvariantAuditor* audit,
                 FlightRecorder* flight, int pass_index) {
  TraceSpan span(trace, "fm.pass");
  Histogram* gain_hist =
      trace != nullptr ? &trace->hist("gain.histogram") : nullptr;

  compute_degrees_and_seed_queues(cut);
  log_.clear();

  const sum_t start_cut = cut;
  const real_t start_potential = balance_.potential();
  const bool start_feasible = start_potential <= 1.0 + 1e-12;

  sum_t best_cut = cut;
  real_t best_potential = start_potential;
  bool best_feasible = start_feasible;
  std::size_t best_prefix = 0;

  // Intra-pass exploration envelope. FM only escapes local minima by
  // passing through worse intermediate states (a vertex *swap* across the
  // cut is two single moves whose midpoint is worse than both endpoints),
  // so moves may overshoot the tolerance by a bounded margin; the rollback
  // to the best prefix guarantees the pass never ends worse than it began.
  // Multiplicative headroom above the starting potential: when the pass
  // starts infeasible, intermediate states must still be allowed to climb
  // above the start or no swap can ever begin.
  const real_t explore_cap =
      std::max(start_potential, 1.0) * (1.0 + kBalanceExploreSlack);

  idx_t bad_streak = 0;
  idx_t v;
  int from;
  while (bad_streak < move_limit && select(v, from)) {
    moved_[to_size(v)] = 1;

    // The popped gain is the incrementally maintained ed - id; a drift in
    // either degree array corrupts every later selection, so paranoid
    // audits recompute it from the adjacency list for sampled pops.
    if (audit != nullptr && audit->paranoid() && audit->sample_gain()) {
      audit->check_gain(g_, where_, v, gain(v), "refine2way.select");
    }

    const real_t pot = balance_.potential();
    const real_t new_pot = balance_.potential_after(v, from);
    const bool admissible =
        new_pot <= explore_cap + 1e-12 || new_pot < pot - 1e-12;
    if (!admissible) {
      ++bad_streak;
      continue;
    }

    if (gain_hist != nullptr) gain_hist->record(gain(v));
    commit_move(v, from, cut);

    const real_t cur_pot = new_pot;
    const bool cur_feasible = cur_pot <= 1.0 + 1e-12;
    const bool better =
        (cur_feasible && (!best_feasible || cut < best_cut)) ||
        (!cur_feasible && !best_feasible &&
         (cur_pot < best_potential - 1e-12 ||
          (cur_pot <= best_potential + 1e-12 && cut < best_cut)));
    if (better) {
      best_cut = cut;
      best_potential = cur_pot;
      best_feasible = cur_feasible;
      best_prefix = log_.size();
      bad_streak = 0;
    } else {
      ++bad_streak;
    }
  }

  const std::size_t total_moves = log_.size();
  rollback_to(best_prefix, cut);
  if (stats != nullptr) stats->moves += static_cast<idx_t>(best_prefix);

  // The pass mutated where_/balance_/cut through committed moves and the
  // rollback; all three must still agree with a from-scratch recompute.
  if (audit != nullptr && audit->boundaries()) {
    audit->check_bisection_weights(g_, where_, balance_, "refine2way.pass");
    audit->check_bisection_cut(g_, where_, cut, "refine2way.pass");
  }

  if (span.enabled()) {
    trace_count(trace, "fm.passes");
    trace_count(trace, "fm.moves", static_cast<std::int64_t>(best_prefix));
    trace_count(trace, "fm.rollbacks",
                static_cast<std::int64_t>(total_moves - best_prefix));
    span.arg({"pass", pass_index});
    span.arg({"cut_before", start_cut});
    span.arg({"cut_after", cut});
    span.arg({"moves", static_cast<std::int64_t>(best_prefix)});
    span.arg({"rolled_back", static_cast<std::int64_t>(total_moves - best_prefix)});
    span.arg({"potential_before", start_potential});
    span.arg({"potential_after", best_potential});
    span.arg({"feasible", static_cast<std::int64_t>(best_feasible ? 1 : 0)});
  }

  if (flight != nullptr) {
    FlightSample fs;
    fs.stage = FlightSample::Stage::kFmPass;
    fs.pass = pass_index;
    fs.nvtxs = g_.nvtxs;
    fs.nedges = g_.nedges();
    fs.cut = cut;
    fs.gain = checked_sub(start_cut, cut);
    fs.moves = static_cast<std::int64_t>(best_prefix);
    fs.worst_imbalance = best_potential;
    flight->record(fs);
  }

  const bool improved =
      (best_feasible && !start_feasible) || best_cut < start_cut ||
      best_potential < start_potential - 1e-12;
  return improved && best_prefix > 0;
}

}  // namespace

sum_t refine_2way(const Graph& g, std::vector<idx_t>& where,
                  const BisectionTargets& targets, QueuePolicy policy,
                  int max_passes, idx_t move_limit, Rng& rng,
                  Refine2WayStats* stats, TraceRecorder* trace,
                  InvariantAuditor* audit, FlightRecorder* flight) {
  if (move_limit <= 0) move_limit = std::max<idx_t>(64, g.nvtxs / 100);

  sum_t cut = compute_cut_2way(g, where);
  if (stats != nullptr) stats->initial_cut = cut;

  for (int pass = 0; pass < max_passes; ++pass) {
    FmPass fm(g, where, targets, policy, rng);
    const bool improved =
        fm.run(cut, move_limit, stats, trace, audit, flight, pass);
    if (stats != nullptr) ++stats->passes;
    if (!improved) break;
  }

  if (stats != nullptr) stats->final_cut = cut;
  return cut;
}

}  // namespace mcgp
