// Multi-constraint 2-way FM refinement (the SC'98 core refinement).
//
// Classic FM keeps one gain-bucket queue per side. With m constraints, a
// single queue cannot steer which *kind* of weight leaves the heavy side,
// so the multi-constraint algorithm keeps m queues per side (2m total):
// vertex v lives in queue (side(v), dom(v)) where dom(v) is v's dominant
// (largest normalized) weight component. Each step selects the constraint
// with the largest tolerance-relative overload, pops the best-gain vertex
// from that constraint's queue on the heavy side, and moves it if the move
// does not leave the feasible region (or strictly improves balance when
// already infeasible). Within the feasible region the algorithm
// hill-climbs like classic FM, with rollback to the best prefix.
#pragma once

#include <vector>

#include "core/bisection.hpp"
#include "core/config.hpp"
#include "support/random.hpp"

namespace mcgp {

struct Refine2WayStats {
  int passes = 0;
  idx_t moves = 0;       ///< committed (kept after rollback) moves
  sum_t initial_cut = 0;
  sum_t final_cut = 0;
};

/// Refine a bisection in place. `where` must be a valid 0/1 assignment.
/// Returns the final cut. Guarantees: the final cut is never worse than
/// the initial cut unless the initial bisection was infeasible and
/// feasibility required cut-increasing moves; the balance potential never
/// ends worse than it started. A non-null `trace` records one "fm.pass"
/// span per pass plus the fm.moves / fm.rollbacks counters and the
/// gain.histogram of committed move gains. A non-null `audit` verifies
/// the incremental side-weight/cut bookkeeping against fresh recomputes
/// after every pass (kBoundaries) and cross-checks sampled queue gains
/// against recomputed gains (kParanoid).
/// A non-null `flight` appends one telemetry sample per pass (cut
/// before/after, committed moves) to its bounded ring.
sum_t refine_2way(const Graph& g, std::vector<idx_t>& where,
                  const BisectionTargets& targets, QueuePolicy policy,
                  int max_passes, idx_t move_limit, Rng& rng,
                  Refine2WayStats* stats = nullptr,
                  TraceRecorder* trace = nullptr,
                  InvariantAuditor* audit = nullptr,
                  FlightRecorder* flight = nullptr);

/// Dominant constraint of vertex v: index of its largest normalized weight
/// component (ties to the lower index). Exposed for testing.
int dominant_constraint(const Graph& g, idx_t v);

}  // namespace mcgp
