// Greedy multi-constraint k-way refinement (the MC-KW uncoarsening step).
//
// A randomized greedy sweep over boundary vertices: each vertex may move
// to a neighboring subdomain if the move improves the cut without pushing
// any constraint of the destination past its tolerance (or if it improves
// balance at no cut cost). When the projected partition arrives out of
// tolerance — coarse-vertex granularity can force this — a balancing sweep
// runs first, preferring minimum-cut-damage moves out of overloaded parts.
#pragma once

#include <vector>

#include "core/config.hpp"
#include "graph/csr_graph.hpp"
#include "support/random.hpp"

namespace mcgp {

class ThreadPool;
class WorkspacePool;
class Profiler;

/// Execution context for the parallel colored k-way sweep. The sweep
/// algorithm itself runs at EVERY thread count (colored propose/commit,
/// hashed visit order) — a null exec or pool merely executes the chunk
/// tasks inline — so partitions are bit-identical across `num_threads`.
struct KWayExec {
  ThreadPool* pool = nullptr;
  WorkspacePool* wspool = nullptr;  ///< per-chunk connectivity scratch
  Profiler* profile = nullptr;      ///< aux attribution of worker chunks
  int level = -1;                   ///< hierarchy level for the bucket
};

struct KWayRefineStats {
  int passes = 0;
  idx_t moves = 0;
  sum_t final_cut = 0;
  bool feasible = false;
};

/// Per-part / per-constraint weight table, pwgts[p*ncon + i].
std::vector<sum_t> compute_part_weights(const Graph& g,
                                        const std::vector<idx_t>& where,
                                        idx_t nparts);

/// True iff every part is within tolerance on every constraint:
/// pwgts[p][i] <= ub[i] * tpwgts[p] * tvwgt[i], where tpwgts defaults to
/// the uniform 1/nparts when null.
bool kway_feasible(const Graph& g, const std::vector<sum_t>& pwgts,
                   idx_t nparts, const std::vector<real_t>& ub,
                   const std::vector<real_t>* tpwgts = nullptr);

/// Balancing sweeps: move weight out of overloaded parts with the least
/// cut damage until feasible or stuck. Returns true when feasible.
/// `tpwgts` (optional) gives per-part target fractions; null = uniform.
bool kway_balance(const Graph& g, idx_t nparts, std::vector<idx_t>& where,
                  const std::vector<real_t>& ub, Rng& rng,
                  const std::vector<real_t>* tpwgts = nullptr,
                  TraceRecorder* trace = nullptr,
                  InvariantAuditor* audit = nullptr);

/// Greedy refinement. Runs up to `max_passes` sweeps (plus balancing when
/// needed) and returns the final cut. `tpwgts` (optional) gives per-part
/// target fractions; null = uniform. A non-null `trace` records one
/// "kway.pass" span per sweep plus the kway.moves / kway.passes counters.
/// A non-null `audit` verifies the incrementally maintained part weights
/// and vertex counts against fresh recomputes when refinement finishes
/// (kBoundaries) and, per sweep, that the accumulated move gains account
/// exactly for the cut change (kParanoid). A non-null `flight` appends
/// one telemetry sample per sweep (moves, gain, max overload).
///
/// Each sweep is a colored sweep: boundary vertices are bucketed by a
/// greedy vertex coloring (adjacent vertices never share a color) and
/// visited color by color in a per-pass hashed order. Within one color
/// the best moves are PROPOSED concurrently from a frozen snapshot —
/// same-color vertices are pairwise non-adjacent, so no proposal can
/// change another's connectivity — and then COMMITTED serially in the
/// fixed order, re-validating balance against the live state. A non-null
/// `exec` runs the propose phases on its pool; the result is bit-identical
/// at every thread count.
sum_t kway_refine(const Graph& g, idx_t nparts, std::vector<idx_t>& where,
                  const std::vector<real_t>& ub, int max_passes, Rng& rng,
                  KWayRefineStats* stats = nullptr,
                  const std::vector<real_t>* tpwgts = nullptr,
                  TraceRecorder* trace = nullptr,
                  InvariantAuditor* audit = nullptr,
                  FlightRecorder* flight = nullptr,
                  const KWayExec* exec = nullptr);

/// Priority-queue k-way refinement: boundary vertices are kept in a gain
/// bucket queue keyed by their best potential move (kmetis-style), so the
/// highest-gain moves commit first and newly exposed gains are picked up
/// within the same pass. Same admissibility rules as the sweep variant.
sum_t kway_refine_pq(const Graph& g, idx_t nparts, std::vector<idx_t>& where,
                     const std::vector<real_t>& ub, int max_passes, Rng& rng,
                     KWayRefineStats* stats = nullptr,
                     const std::vector<real_t>* tpwgts = nullptr,
                     TraceRecorder* trace = nullptr,
                     InvariantAuditor* audit = nullptr,
                     FlightRecorder* flight = nullptr);

}  // namespace mcgp
