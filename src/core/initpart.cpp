#include "core/initpart.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "core/balance2way.hpp"
#include "core/refine2way.hpp"
#include "support/indexed_heap.hpp"
#include "support/perf_counters.hpp"
#include "support/trace.hpp"

namespace mcgp {

void grow_bisection(const Graph& g, std::vector<idx_t>& where,
                    const BisectionTargets& targets, Rng& rng) {
  const auto n = to_size(g.nvtxs);
  where.assign(n, 1);
  if (g.nvtxs == 0) return;

  // Normalized load of side 0 per constraint, relative to target f0.
  std::array<real_t, kMaxNcon> load{};
  auto would_overflow = [&](idx_t v) {
    const wgt_t* w = g.weights(v);
    for (int i = 0; i < g.ncon; ++i) {
      if (g.tvwgt[to_size(i)] <= 0) continue;
      const real_t nl =
          load[to_size(i)] +
          static_cast<real_t>(w[i]) * g.invtvwgt[to_size(i)];
      if (nl > targets.f0 * targets.ub[to_size(i)]) return true;
    }
    return false;
  };
  auto deficient = [&]() {
    for (int i = 0; i < g.ncon; ++i) {
      if (g.tvwgt[to_size(i)] <= 0) continue;
      if (load[to_size(i)] < targets.f0) return true;
    }
    return false;
  };
  auto absorb = [&](idx_t v) {
    where[to_size(v)] = 0;
    const wgt_t* w = g.weights(v);
    for (int i = 0; i < g.ncon; ++i) {
      load[to_size(i)] +=
          static_cast<real_t>(w[i]) * g.invtvwgt[to_size(i)];
    }
  };

  IndexedMaxHeap frontier;
  frontier.reset(g.nvtxs);
  std::vector<char> seen(n, 0);  // in frontier, absorbed, or rejected

  auto push_neighbors = [&](idx_t v) {
    for (idx_t e = g.xadj[to_size(v)]; e < g.xadj[to_size(v + 1)]; ++e) {
      const idx_t u = g.adjncy[to_size(e)];
      if (where[to_size(u)] == 0) continue;
      const real_t w = static_cast<real_t>(g.adjwgt[to_size(e)]);
      if (frontier.contains(u)) {
        frontier.update(u, frontier.key(u) + w);
      } else if (!seen[to_size(u)]) {
        frontier.insert(u, w);
        seen[to_size(u)] = 1;
      }
    }
  };

  while (deficient()) {
    if (frontier.empty()) {
      // Fresh seed (initial seed, or a disconnected component).
      idx_t seed = -1;
      for (int attempts = 0; attempts < 32 && seed < 0; ++attempts) {
        const idx_t cand = rng.next_in(0, g.nvtxs - 1);
        if (where[to_size(cand)] == 1 &&
            !seen[to_size(cand)]) {
          seed = cand;
        }
      }
      if (seed < 0) {
        for (idx_t v2 = 0; v2 < g.nvtxs && seed < 0; ++v2) {
          if (where[to_size(v2)] == 1 &&
              !seen[to_size(v2)]) {
            seed = v2;
          }
        }
      }
      if (seed < 0) break;  // every vertex absorbed or rejected
      seen[to_size(seed)] = 1;
      if (would_overflow(seed)) continue;  // rejected; try another seed
      absorb(seed);
      push_neighbors(seed);
      continue;
    }
    const idx_t v = frontier.pop_max();
    if (would_overflow(v)) continue;  // locked out for this trial
    absorb(v);
    push_neighbors(v);
  }
}

void binpack_bisection(const Graph& g, std::vector<idx_t>& where,
                       const BisectionTargets& targets, Rng& rng) {
  const auto n = to_size(g.nvtxs);
  where.assign(n, 0);
  if (g.nvtxs == 0) return;

  // Decreasing max-normalized-component order (LPT), random tie order.
  std::vector<idx_t> order;
  random_permutation(g.nvtxs, order, rng);
  std::vector<real_t> key(n, 0.0);
  for (idx_t v = 0; v < g.nvtxs; ++v) {
    real_t mx = 0.0;
    for (int i = 0; i < g.ncon; ++i) {
      mx = std::max(mx, static_cast<real_t>(g.weight(v, i)) *
                            g.invtvwgt[to_size(i)]);
    }
    key[to_size(v)] = mx;
  }
  std::stable_sort(order.begin(), order.end(), [&](idx_t a, idx_t b) {
    return key[to_size(a)] > key[to_size(b)];
  });

  // Greedy placement minimizing the resulting worst target-relative load.
  std::array<real_t, 2 * kMaxNcon> load{};
  for (const idx_t v : order) {
    const wgt_t* w = g.weights(v);
    real_t pot[2] = {0.0, 0.0};
    for (int s = 0; s < 2; ++s) {
      for (int i = 0; i < g.ncon; ++i) {
        if (g.tvwgt[to_size(i)] <= 0) continue;
        const real_t nw =
            static_cast<real_t>(w[i]) * g.invtvwgt[to_size(i)];
        for (int side = 0; side < 2; ++side) {
          const real_t l = load[to_size(side * kMaxNcon + i)] +
                           (side == s ? nw : 0.0);
          pot[s] = std::max(pot[s], l / targets.fraction(side) /
                                        targets.ub[to_size(i)]);
        }
      }
    }
    const int s = pot[0] <= pot[1] ? 0 : 1;
    where[to_size(v)] = s;
    for (int i = 0; i < g.ncon; ++i) {
      load[to_size(s * kMaxNcon + i)] +=
          static_cast<real_t>(w[i]) * g.invtvwgt[to_size(i)];
    }
  }
}

namespace {

/// Outcome of one polished construction attempt.
struct InitTrial {
  std::vector<idx_t> where;
  sum_t cut = 0;
  real_t pot = 0.0;
  bool feasible = false;
};

}  // namespace

sum_t init_bisection(const Graph& g, std::vector<idx_t>& where,
                     const BisectionTargets& targets, InitScheme scheme,
                     int trials, QueuePolicy policy, Rng& rng,
                     TraceRecorder* trace, ThreadPool* pool,
                     InvariantAuditor* audit, Profiler* profile) {
  trials = std::max(trials, 1);
  TraceSpan span(trace, "initpart");

  // One seed value feeds every trial's private stream; results land in a
  // per-trial slot and the winner is picked serially in trial order, so
  // the outcome does not depend on completion order or thread count.
  const std::uint64_t base_seed = rng.next_u64();
  std::vector<InitTrial> results(to_size(trials));

  auto run_trial = [&](int t) {
    ProfScope aux(profile, "initpart", /*level=*/-1, /*aux=*/true);
    InitTrial& out = results[to_size(t)];
    Rng trng(mix_seed(base_seed, static_cast<std::uint64_t>(t)));
    const bool use_grow = scheme == InitScheme::kGreedyGrow ||
                          (scheme == InitScheme::kMixed && t % 2 == 0);
    if (use_grow) {
      grow_bisection(g, out.where, targets, trng);
    } else {
      binpack_bisection(g, out.where, targets, trng);
    }
    balance_2way(g, out.where, targets, trng, audit);
    refine_2way(g, out.where, targets, policy, /*max_passes=*/4,
                /*move_limit=*/std::max<idx_t>(32, g.nvtxs / 10), trng,
                /*stats=*/nullptr, /*trace=*/nullptr, audit);

    BisectionBalance balance;
    balance.init(g, out.where, targets);
    out.pot = balance.potential();
    out.feasible = out.pot <= 1.0 + 1e-12;
    out.cut = compute_cut_2way(g, out.where);

    trace_count(trace, "initpart.trials");
    trace_instant(
        trace, "initpart.trial",
        {{"trial", t},
         {"grow", static_cast<std::int64_t>(use_grow ? 1 : 0)},
         {"cut", out.cut},
         {"potential", out.pot},
         {"feasible", static_cast<std::int64_t>(out.feasible ? 1 : 0)}});
  };

  if (pool != nullptr && trials > 1) {
    TaskGroup group(pool);
    for (int t = 1; t < trials; ++t) {
      group.run([&run_trial, t] { run_trial(t); });
    }
    run_trial(0);
    group.wait();
  } else {
    for (int t = 0; t < trials; ++t) run_trial(t);
  }

  // Feasible trials compete on cut; infeasible trials compete on
  // balance FIRST — an initial bisection that starts far out of balance
  // is unlikely to ever be repaired during multilevel refinement, so a
  // low cut cannot compensate for bad balance here.
  int best_t = 0;
  for (int t = 1; t < trials; ++t) {
    const InitTrial& c = results[to_size(t)];
    const InitTrial& b = results[to_size(best_t)];
    bool better = false;
    if (c.feasible != b.feasible) {
      better = c.feasible;
    } else if (c.feasible) {
      better = c.cut < b.cut || (c.cut == b.cut && c.pot < b.pot);
    } else {
      better = c.pot < b.pot - 1e-12 ||
               (c.pot <= b.pot + 1e-12 && c.cut < b.cut);
    }
    if (better) best_t = t;
  }
  InitTrial& best = results[to_size(best_t)];

  if (span.enabled()) {
    span.arg({"nvtxs", g.nvtxs});
    span.arg({"trials", trials});
    span.arg({"best_cut", best.cut});
    span.arg({"best_potential", best.pot});
    span.arg({"feasible", static_cast<std::int64_t>(best.feasible ? 1 : 0)});
  }
  where = std::move(best.where);
  return best.cut;
}

}  // namespace mcgp
