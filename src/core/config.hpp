// Public configuration and result types for the multi-constraint
// partitioner.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "support/counters.hpp"
#include "support/timer.hpp"
#include "support/types.hpp"

namespace mcgp {

class TraceRecorder;
class InvariantAuditor;
class FlightRecorder;
class Profiler;
class MetricsRegistry;

/// How aggressively the pipeline verifies its own bookkeeping invariants
/// at runtime (see core/audit.hpp). Violations raise AuditFailure.
enum class AuditLevel {
  kOff = 0,         ///< no checks (production default; one pointer test)
  kBoundaries = 1,  ///< recompute-and-compare at every pipeline seam:
                    ///< coarse-level conservation, projection cut
                    ///< equality, refiner pwgts/cut bookkeeping
  kParanoid = 2,    ///< boundaries + per-pass bookkeeping audits and
                    ///< sampled FM gain cross-checks inside refinement
};

/// Which multilevel partitioner to run.
enum class Algorithm {
  kRecursiveBisection,  ///< MC-RB: every bisection is multilevel (pmetis-style)
  kKWay,                ///< MC-KW: coarsen once, RB on coarsest, k-way refine
};

/// Coarsening matching scheme.
enum class MatchScheme {
  kRandom,              ///< random matching (RM)
  kHeavyEdge,           ///< heavy-edge matching (HEM), random tie-break
  kHeavyEdgeBalanced,   ///< HEM with the SC'98 balanced-edge tie-break
};

/// Queue-selection policy of the multi-constraint 2-way FM refinement
/// (paper scheme + two ablation baselines).
enum class QueuePolicy {
  kMostImbalanced,  ///< m queues/side, pop from the most imbalanced
                    ///< constraint's queue on the heavier side (paper)
  kRoundRobin,      ///< m queues/side, constraints visited cyclically
  kSingleQueue,     ///< one queue/side, pure gain order (single-constraint
                    ///< relaxation)
};

/// k-way refinement flavor used during MC-KW uncoarsening.
enum class KWayRefineScheme {
  kSweep,          ///< randomized greedy sweeps over the boundary
  kPriorityQueue,  ///< gain-bucket queue, best moves first (kmetis-style)
};

/// Initial-bisection construction scheme.
enum class InitScheme {
  kMixed,       ///< alternate graph growing and bin packing across trials
  kGreedyGrow,  ///< greedy graph growing only
  kBinPack,     ///< multi-dimensional LPT bin packing only
};

struct Options {
  idx_t nparts = 2;

  /// Per-constraint balance tolerance (>= 1.0). Empty = 1.05 everywhere.
  std::vector<real_t> ubvec;

  /// Per-part target fractions (size nparts, positive, summing to ~1).
  /// Empty = uniform 1/nparts. Lets heterogeneous machines receive
  /// proportionally sized subdomains; every constraint is balanced
  /// against these fractions.
  std::vector<real_t> tpwgts;

  std::uint64_t seed = 1;

  Algorithm algorithm = Algorithm::kKWay;
  MatchScheme matching = MatchScheme::kHeavyEdgeBalanced;
  QueuePolicy queue_policy = QueuePolicy::kMostImbalanced;
  InitScheme init_scheme = InitScheme::kMixed;
  KWayRefineScheme kway_scheme = KWayRefineScheme::kSweep;

  /// Coarsest-graph size. 0 = automatic (scales with nparts and ncon).
  idx_t coarsen_to = 0;
  /// Abort coarsening when a level shrinks by less than this factor.
  real_t min_coarsen_reduction = 0.95;

  /// Number of initial-bisection attempts (best kept).
  int init_trials = 8;
  /// Maximum FM passes per level in 2-way refinement.
  int refine_passes = 8;
  /// Maximum greedy passes per level in k-way refinement.
  int kway_passes = 8;
  /// FM early-exit: abort a pass after this many consecutive
  /// non-improving moves (0 = automatic: max(64, nvtxs/100)).
  idx_t fm_move_limit = 0;

  /// Worker threads for the task-parallel drivers (>= 1). 1 (the default)
  /// runs fully serial with no pool. Larger values run the two halves of
  /// every recursive-bisection split and the initial-bisection trials
  /// concurrently, plus the in-node data-parallel phases: handshake
  /// matching rounds, chunked contraction, and the colored k-way sweep's
  /// propose phases. Results are identical for every value of num_threads
  /// at a fixed seed: each subproblem draws from its own deterministic RNG
  /// stream derived from the seed and the subproblem's position (never a
  /// shared sequential stream), data-parallel phases decompose work by
  /// fixed size-based chunk boundaries, and every cross-chunk conflict is
  /// resolved by a fixed total order (hashed keys / ascending ids), never
  /// by arrival order.
  int num_threads = 1;

  /// Optional trace recorder (see support/trace.hpp). When non-null the
  /// pipeline records hierarchical span events (run -> bisection ->
  /// coarsen level -> FM pass) and per-run counters/histograms into it;
  /// null (the default) disables all instrumentation at the cost of one
  /// pointer test per site. The recorder must outlive the run.
  TraceRecorder* trace = nullptr;

  /// Runtime invariant auditing (see core/audit.hpp). At kOff every audit
  /// site is a single null-pointer test; kBoundaries recomputes conserved
  /// quantities at pipeline seams; kParanoid additionally cross-checks
  /// incremental refinement bookkeeping per pass and samples FM gains.
  /// Violations throw AuditFailure. Audits never alter results.
  AuditLevel audit_level = AuditLevel::kOff;

  /// Optional flight recorder (see support/flight_recorder.hpp). When
  /// non-null the pipeline appends one telemetry sample per coarsening
  /// level, uncoarsening level, and refinement pass (graph size, cut,
  /// per-constraint imbalances, memory high-water marks) into its bounded
  /// ring, and partition() dumps the retained window to the recorder's
  /// dump path when an AuditFailure aborts the run. Null (the default)
  /// costs one pointer test per site. Attaching a recorder never changes
  /// results; it must outlive the run and may be shared across threads.
  FlightRecorder* flight = nullptr;

  /// Optional hardware-counter profiler (see support/perf_counters.hpp).
  /// When non-null the pipeline measures cycles / instructions / LLC /
  /// branch counters (plus wall time and work items) over every phase at
  /// every hierarchy level and aggregates them into the profiler's
  /// (phase, level) buckets; null (the default) costs one pointer test
  /// per site. Where perf_event_open is unavailable the profiler still
  /// aggregates wall time and reports itself as counters-unavailable.
  /// Attaching a profiler never changes results; it must outlive the run
  /// and may be shared across the run's worker threads.
  Profiler* profile = nullptr;

  /// Optional process-lifetime metrics registry (see support/metrics.hpp).
  /// When non-null each partition()/refine_partition() call folds its
  /// telemetry into the registry's cross-run aggregates: run/phase latency
  /// histograms, cut/imbalance/feasibility gauges, audit and rebalance
  /// event counters, memory high-water gauges, and the heartbeat progress
  /// stamps the stall detector watches. Null (the default) costs one
  /// pointer test per site. Attaching a registry never changes results;
  /// it must outlive the run and is safe to share across concurrent runs
  /// and with a scraping thread.
  MetricsRegistry* metrics = nullptr;

  /// Optional externally owned auditor. When non-null it is used directly
  /// (its own level governs, letting callers read check counters after the
  /// run); when null and audit_level != kOff, partition() creates an
  /// internal auditor for the run. The auditor must outlive the run and
  /// may be shared across concurrent tasks (it is thread-safe).
  InvariantAuditor* audit = nullptr;

  /// Tolerance for constraint i (handles the empty-default case).
  real_t ub_for(int i) const {
    if (ubvec.empty()) return 1.05;
    return ubvec[std::min(to_size(i), ubvec.size() - 1)];
  }
};

/// Outcome of a partitioning run.
struct PartitionResult {
  std::vector<idx_t> part;       ///< part id per vertex, in [0, nparts)
  sum_t cut = 0;                 ///< weighted edge-cut
  std::vector<real_t> imbalance; ///< per-constraint load imbalance
  real_t max_imbalance = 1.0;    ///< worst constraint
  /// Whether every part satisfies every constraint's tolerance (the
  /// SC'98 balance contract): pwgt[p][i] <= ubvec_used[i] * frac_p *
  /// tvwgt[i] for all p, i. The first-class verdict of a run — cut is
  /// the objective, this is the requirement.
  bool feasible = false;
  /// The tolerance vector the run was actually held to: the requested
  /// ubvec (or the 1.05 default) clamped up, per constraint, to the
  /// instance's provable lower bound (see min_feasible_ubvec). Equals the
  /// request whenever the request was achievable.
  std::vector<real_t> ubvec_used;
  double seconds = 0.0;          ///< total wall time
  PhaseTimes phases;             ///< coarsen / init / refine breakdown
  int coarsen_levels = 0;        ///< levels created by the top coarsener
  idx_t coarsest_nvtxs = 0;      ///< size of the coarsest graph
  /// Per-run pipeline counters/histograms (fm.moves, match.failed, ...).
  /// Populated only when Options::trace was set; empty otherwise.
  CounterRegistry counters;
};

}  // namespace mcgp
