// Shared k-way refinement context: incrementally maintained part weights,
// vertex counts, per-part/per-constraint tolerance limits, and sparse
// connectivity scratch.
//
// Extracted from the k-way refiner so every pass that mutates a k-way
// assignment — the colored sweep, the PQ pass, the balancer, and the
// greedy multi-constraint rebalancer (core/rebalance.hpp) — shares one
// bookkeeping implementation and therefore one definition of feasibility.
#pragma once

#include <algorithm>
#include <vector>

#include "core/kway_refine.hpp"
#include "graph/csr_graph.hpp"
#include "graph/metrics.hpp"
#include "support/check.hpp"
#include "support/random.hpp"

namespace mcgp {

/// Sweep context over a mutable k-way assignment: part weights, vertex
/// counts, scratch connectivity. All mutation goes through move(), which
/// keeps the incremental state exact (audited via check_kway_state).
class KWayContext {
 public:
  KWayContext(const Graph& g, idx_t nparts, std::vector<idx_t>& where,
              const std::vector<real_t>& ub,
              const std::vector<real_t>* tpwgts)
      : g_(g), nparts_(nparts), where_(where), ub_(ub), tpwgts_(tpwgts) {
    conn_.assign(to_size(nparts), 0);
    touched_.reserve(64);
    limit_.resize(to_size(nparts) * to_size(g.ncon));
    for (idx_t p = 0; p < nparts; ++p) {
      const real_t frac = tpwgts != nullptr
                              ? (*tpwgts)[to_size(p)]
                              : 1.0 / static_cast<real_t>(nparts);
      for (int i = 0; i < g.ncon; ++i) {
        limit_[to_size(p) * to_size(g.ncon) + to_size(i)] =
            g.tvwgt[to_size(i)] > 0
                ? ub[to_size(i)] * frac *
                      static_cast<real_t>(g.tvwgt[to_size(i)])
                : 1e300;
      }
    }
    reload();
  }

  /// Recompute part weights and counts from the current assignment
  /// (after an external pass, e.g. kway_balance, mutated `where`).
  void reload() {
    pwgts_ = part_weights(g_, where_, nparts_);
    vcount_.assign(to_size(nparts_), 0);
    for (idx_t v = 0; v < g_.nvtxs; ++v) {
      ++vcount_[to_size(where_[to_size(v)])];
    }
  }

  const Graph& graph() const { return g_; }
  idx_t nparts() const { return nparts_; }
  const std::vector<sum_t>& pwgts() const { return pwgts_; }
  const std::vector<idx_t>& vcounts() const { return vcount_; }

  bool feasible() const {
    return kway_feasible(g_, pwgts_, nparts_, ub_, tpwgts_);
  }

  /// Tolerance limit of part p in constraint i (ub * frac * tvwgt).
  real_t limit(idx_t p, int i) const {
    return limit_[to_size(p) * to_size(g_.ncon) + to_size(i)];
  }

  /// Tolerance-relative load of part p: max_i pwgt/limit.
  real_t part_load(idx_t p) const {
    real_t l = 0.0;
    for (int i = 0; i < g_.ncon; ++i) {
      l = std::max(l, static_cast<real_t>(
                          pwgts_[to_size(p) * to_size(g_.ncon) + to_size(i)]) /
                          limit_[to_size(p) * to_size(g_.ncon) + to_size(i)]);
    }
    return l;
  }

  /// Overload of part p in constraint i (ratio above limit; <=1 is fine).
  real_t overload(idx_t p, int i) const {
    return static_cast<real_t>(pwgts_[to_size(p) * to_size(g_.ncon) + to_size(i)]) /
           limit_[to_size(p) * to_size(g_.ncon) + to_size(i)];
  }

  /// Global maximum tolerance-relative load (feasible iff <= 1).
  real_t max_overload() const {
    real_t mx = 0.0;
    for (idx_t p = 0; p < nparts_; ++p) {
      for (int i = 0; i < g_.ncon; ++i) mx = std::max(mx, overload(p, i));
    }
    return mx;
  }

  /// Load of part p in constraint i after hypothetically adding `extra`.
  real_t load_with(idx_t p, int i, wgt_t extra) const {
    return static_cast<real_t>(checked_add(
               pwgts_[to_size(p) * to_size(g_.ncon) + to_size(i)], extra)) /
           limit_[to_size(p) * to_size(g_.ncon) + to_size(i)];
  }

  /// Post-move tolerance-relative load of part p if it received vertex v.
  real_t load_after(idx_t v, idx_t p) const {
    real_t l = 0.0;
    const wgt_t* w = g_.weights(v);
    for (int i = 0; i < g_.ncon; ++i) {
      l = std::max(l, load_with(p, i, w[i]));
    }
    return l;
  }

  bool fits(idx_t v, idx_t p) const {
    const wgt_t* w = g_.weights(v);
    for (int i = 0; i < g_.ncon; ++i) {
      if (static_cast<real_t>(checked_add(
              pwgts_[to_size(p) * to_size(g_.ncon) + to_size(i)], w[i])) >
          limit_[to_size(p) * to_size(g_.ncon) + to_size(i)] + 1e-9) {
        return false;
      }
    }
    return true;
  }

  /// Gather the edge weight from v to each touched part. Returns the
  /// weight to v's own part; touched() lists the OTHER parts seen.
  sum_t gather_connectivity(idx_t v) {
    return gather_connectivity_into(v, conn_, touched_);
  }

  /// As gather_connectivity, but into caller-owned scratch (size >= nparts,
  /// zero except the parts listed in `touched` — the same sparse-reset
  /// discipline as the member buffers). Const: concurrent propose tasks
  /// read the frozen context while each gathers into its own buffers.
  sum_t gather_connectivity_into(idx_t v, std::vector<sum_t>& conn,
                                 std::vector<idx_t>& touched) const {
    for (const idx_t p : touched) conn[to_size(p)] = 0;
    touched.clear();
    const idx_t own = where_[to_size(v)];
    sum_t idw = 0;
    for (idx_t e = g_.xadj[to_size(v)]; e < g_.xadj[to_size(v + 1)]; ++e) {
      const idx_t p = where_[to_size(g_.adjncy[to_size(e)])];
      if (p == own) {
        idw = checked_add(idw, g_.adjwgt[to_size(e)]);
      } else {
        if (conn[to_size(p)] == 0) touched.push_back(p);
        conn[to_size(p)] = checked_add(conn[to_size(p)], g_.adjwgt[to_size(e)]);
      }
    }
    return idw;
  }

  const std::vector<idx_t>& touched() const { return touched_; }
  sum_t conn(idx_t p) const { return conn_[to_size(p)]; }

  /// Never empty a part (keeps every subdomain populated).
  bool can_leave(idx_t p) const { return vcount_[to_size(p)] > 1; }

  void move(idx_t v, idx_t to) {
    const idx_t from = where_[to_size(v)];
    where_[to_size(v)] = to;
    --vcount_[to_size(from)];
    ++vcount_[to_size(to)];
    const wgt_t* w = g_.weights(v);
    for (int i = 0; i < g_.ncon; ++i) {
      sum_t& fs = pwgts_[to_size(from) * to_size(g_.ncon) + to_size(i)];
      sum_t& ts = pwgts_[to_size(to) * to_size(g_.ncon) + to_size(i)];
      fs = checked_sub(fs, w[i]);
      ts = checked_add(ts, w[i]);
    }
  }

  std::vector<idx_t> boundary(Rng& rng) const {
    std::vector<idx_t> b;
    for (idx_t v = 0; v < g_.nvtxs; ++v) {
      const idx_t pv = where_[to_size(v)];
      for (idx_t e = g_.xadj[to_size(v)]; e < g_.xadj[to_size(v + 1)]; ++e) {
        if (where_[to_size(g_.adjncy[to_size(e)])] != pv) {
          b.push_back(v);
          break;
        }
      }
    }
    shuffle(b, rng);
    return b;
  }

 private:
  const Graph& g_;
  idx_t nparts_;
  std::vector<idx_t>& where_;
  const std::vector<real_t>& ub_;
  const std::vector<real_t>* tpwgts_;
  std::vector<sum_t> pwgts_;
  std::vector<idx_t> vcount_;
  std::vector<sum_t> conn_;
  std::vector<idx_t> touched_;
  std::vector<real_t> limit_;
};

}  // namespace mcgp
