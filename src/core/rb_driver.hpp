// MC-RB: multilevel recursive bisection for multi-constraint k-way
// partitioning (pmetis-style).
//
// Each bisection is itself multilevel (coarsen -> initial bisection ->
// refined uncoarsening); k-way partitions are obtained by recursing on the
// two induced halves with proportional target fractions (ceil(k/2) /
// floor(k/2)), so any k >= 1 is supported. Per-bisection tolerances are
// ub^(1/ceil(log2 k)) because nested bisection imbalances multiply.
//
// Parallelism: the two halves of every split recurse as independent tasks
// on an optional thread pool, and initial-bisection trials fan out on the
// same pool. Every subproblem seeds a private RNG stream from the root
// seed and its (part0, k) position in the recursion tree, so the result is
// a pure function of the seed — identical for every thread count.
#pragma once

#include <vector>

#include "core/bisection.hpp"
#include "core/coarsen.hpp"
#include "core/config.hpp"
#include "support/random.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"
#include "support/workspace.hpp"

namespace mcgp {

struct MlBisectStats {
  int levels = 0;
  idx_t coarsest_nvtxs = 0;
  sum_t cut = 0;
};

/// One multilevel bisection of g according to `targets`. Fills `where`
/// with a 0/1 assignment and returns the cut. A non-null `pool` runs the
/// initial-bisection trials concurrently; a non-null `ws` supplies scratch
/// buffers for coarsening and projection.
sum_t multilevel_bisect(const Graph& g, std::vector<idx_t>& where,
                        const BisectionTargets& targets, const Options& opts,
                        Rng& rng, MlBisectStats* stats = nullptr,
                        PhaseTimes* phases = nullptr,
                        ThreadPool* pool = nullptr, Workspace* ws = nullptr,
                        WorkspacePool* wspool = nullptr);

/// Full MC-RB k-way partitioning. Returns the part vector (size g.nvtxs,
/// ids in [0, opts.nparts)). Runs on `pool` when non-null; otherwise
/// creates its own pool when opts.num_threads > 1.
std::vector<idx_t> partition_recursive_bisection(const Graph& g,
                                                 const Options& opts, Rng& rng,
                                                 PhaseTimes* phases = nullptr,
                                                 MlBisectStats* top_stats = nullptr,
                                                 ThreadPool* pool = nullptr);

}  // namespace mcgp
