// Runtime invariant auditing for the multilevel pipeline.
//
// The partitioner maintains its critical quantities incrementally: FM
// tracks the cut through per-move deltas, BisectionBalance and the k-way
// refiner track part weights through apply_move updates, and coarsening
// assumes contraction conserves total weight per constraint. None of that
// is verified in normal operation — a missed update produces a partition
// whose *reported* metrics are recomputed (and therefore look fine) while
// the search itself optimized a corrupted objective.
//
// The InvariantAuditor closes that gap. Driven by Options::audit_level,
// it recomputes the conserved quantities from scratch at pipeline seams
// (kBoundaries) and inside refinement passes (kParanoid) and throws
// AuditFailure on any mismatch, making bookkeeping drift loud and
// immediate instead of a silent quality regression. Recomputations use
// checked arithmetic (support/check.hpp) so overflow in the audit itself
// is also diagnosed rather than masking a violation.
//
// The auditor is stateless apart from per-category check counters, so one
// instance may be shared by every concurrent task of a run. The counters
// are std::atomic (lock-free, relaxed order), which is why they carry no
// MCGP_GUARDED_BY annotation: atomics are exempt from the clang
// thread-safety analysis by design.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "core/bisection.hpp"
#include "core/config.hpp"
#include "graph/csr_graph.hpp"
#include "support/check.hpp"

namespace mcgp {

/// Category of an audit check (indexes the counter array).
enum class AuditCheck {
  kCoarseLevel = 0,   ///< contraction conservation + cmap sanity
  kProjection,        ///< projected partition reproduces the coarse cut
  kBisectionState,    ///< 2-way pwgts/cut bookkeeping vs recompute
  kKWayState,         ///< k-way pwgts/vcount/cut bookkeeping vs recompute
  kGainSample,        ///< sampled FM gain vs recomputed gain
  kCutDelta,          ///< accumulated move gains vs actual cut change
  kFinalPartition,    ///< structural validity of a driver's output
  kFeasibility,       ///< declared feasibility vs recomputed part weights
  kCount_,
};

/// Human-readable name of a check category (for reports and tests).
const char* audit_check_name(AuditCheck c);

/// Parse an audit level name: "off"/"boundaries"/"paranoid" or "0"/"1"/"2".
/// Returns true and sets `out` on success; false leaves `out` untouched.
/// Shared by the CLI --audit flag and the MCGP_AUDIT environment override.
bool parse_audit_level(const std::string& s, AuditLevel& out);

class InvariantAuditor {
 public:
  explicit InvariantAuditor(AuditLevel level) : level_(level) {}

  AuditLevel level() const { return level_; }
  bool boundaries() const { return level_ >= AuditLevel::kBoundaries; }
  bool paranoid() const { return level_ >= AuditLevel::kParanoid; }

  /// Whether this particular paranoid gain check should run. Deterministic
  /// per-auditor decimation (every kGainSampleStride-th call) bounds the
  /// cost of gain recomputation to a fraction of refinement work.
  bool sample_gain() {
    return (gain_tick_.fetch_add(1, std::memory_order_relaxed) %
            kGainSampleStride) == 0;
  }

  /// Number of times a check category ran (violations throw, so a
  /// completed run's counters count *passed* checks).
  std::uint64_t count(AuditCheck c) const {
    return counts_[to_size(c)].load(
        std::memory_order_relaxed);
  }
  std::uint64_t total_checks() const;

  /// One-line summary "coarse_level=12 projection=9 ..." for reports.
  std::string summary() const;

  /// Fault-injection seam for tests: let `n` more checks pass, then make
  /// the next one throw AuditFailure even though its invariant holds.
  /// This exercises the abort path (e.g. the flight recorder's
  /// dump-on-failure postmortem) without having to corrupt pipeline
  /// state. Negative disables (the default); the trip disarms itself
  /// after firing once.
  void set_trip_after(std::int64_t n) {
    trip_after_.store(n, std::memory_order_relaxed);
  }

  /// Raise AuditFailure with location and expression context. Public so
  /// the MCGP_AUDIT macros (and tests) can invoke it.
  [[noreturn]] void fail(const char* file, int line, const char* expr,
                         const std::string& msg) const;

  // --- Seam checks. Callers gate on boundaries()/paranoid(); the checks
  // themselves always run when invoked (tests call them directly). ---

  /// Contraction invariants: cmap maps every fine vertex into
  /// [0, coarse.nvtxs) with no empty coarse vertex, per-constraint vertex
  /// weight is conserved exactly, the coarse graph's cached totals agree,
  /// and total edge weight is conserved up to the weight of edges
  /// collapsed inside coarse vertices. At paranoid the coarse graph's full
  /// structural validation (CSR symmetry etc.) also runs.
  void check_coarse_level(const Graph& fine, const Graph& coarse,
                          const std::vector<idx_t>& cmap, const char* site);

  /// Projection invariants: fine_part is exactly coarse_part composed with
  /// cmap, and the fine cut equals the coarse cut (projection can neither
  /// create nor destroy cut edges).
  void check_projection(const Graph& fine, const Graph& coarse,
                        const std::vector<idx_t>& cmap,
                        const std::vector<idx_t>& coarse_part,
                        const std::vector<idx_t>& fine_part,
                        const char* site);

  /// 2-way bookkeeping: `where` is a 0/1 assignment whose fresh
  /// per-constraint side weights equal `bal`'s incrementally maintained
  /// ones.
  void check_bisection_weights(const Graph& g,
                               const std::vector<idx_t>& where,
                               const BisectionBalance& bal, const char* site);

  /// 2-way cut bookkeeping: claimed (incrementally maintained) cut equals
  /// a fresh recompute.
  void check_bisection_cut(const Graph& g, const std::vector<idx_t>& where,
                           sum_t claimed_cut, const char* site);

  /// k-way bookkeeping: part ids in range, incrementally maintained
  /// pwgts[p*ncon+i] equal a fresh recompute, and (when non-null) the
  /// maintained per-part vertex counts match.
  void check_kway_state(const Graph& g, const std::vector<idx_t>& where,
                        idx_t nparts, const std::vector<sum_t>& pwgts,
                        const std::vector<idx_t>* vcount, const char* site);

  /// Sampled FM gain: the queue's claimed gain for moving v off its side
  /// equals ext - int weighted degree recomputed from the adjacency list.
  void check_gain(const Graph& g, const std::vector<idx_t>& where, idx_t v,
                  sum_t claimed_gain, const char* site);

  /// Cut-delta consistency: cut_before - gain_sum == cut_after, i.e. the
  /// gains a refinement pass accumulated account exactly for the cut
  /// change it produced.
  void check_cut_delta(sum_t cut_before, sum_t gain_sum, sum_t cut_after,
                       const char* site);

  /// Driver-output invariants: right size, ids in [0, nparts), and the
  /// claimed cut matches a fresh recompute.
  void check_final_partition(const Graph& g, const std::vector<idx_t>& part,
                             idx_t nparts, sum_t claimed_cut,
                             const char* site);

  /// Feasibility declaration: `declared_feasible` must equal the verdict
  /// of kway_feasible() on part weights recomputed from scratch under the
  /// given tolerances and target fractions (null = uniform). Catches both
  /// a run claiming feasibility it does not have (the SC'98 balance
  /// contract silently broken) and a stale infeasible verdict after the
  /// rebalancer repaired the partition.
  void check_feasibility(const Graph& g, const std::vector<idx_t>& part,
                         idx_t nparts, const std::vector<real_t>& ub,
                         const std::vector<real_t>* tpwgts,
                         bool declared_feasible, const char* site);

 private:
  static constexpr std::uint64_t kGainSampleStride = 16;

  void bump(AuditCheck c) {
    counts_[to_size(c)].fetch_add(
        1, std::memory_order_relaxed);
    if (trip_after_.load(std::memory_order_relaxed) >= 0 &&
        trip_after_.fetch_sub(1, std::memory_order_relaxed) == 0) {
      fail("<injected>", 0, "set_trip_after",
           "injected audit failure (" + std::string(audit_check_name(c)) +
               " test seam)");
    }
  }

  const AuditLevel level_;
  std::atomic<std::int64_t> trip_after_{-1};
  std::atomic<std::uint64_t> gain_tick_{0};
  std::atomic<std::uint64_t> counts_[to_size(
      AuditCheck::kCount_)] = {};
};

}  // namespace mcgp
