// MC-KW: multilevel k-way multi-constraint partitioning (kmetis-style).
//
// Coarsen the whole graph once, partition the coarsest graph k ways with
// MC-RB (cheap: the coarsest graph is small), then uncoarsen with greedy
// multi-constraint k-way refinement at every level.
#pragma once

#include <vector>

#include "core/config.hpp"
#include "graph/csr_graph.hpp"
#include "support/random.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"

namespace mcgp {

struct KWayDriverStats {
  int levels = 0;
  idx_t coarsest_nvtxs = 0;
};

/// `pool` (optional) parallelizes the RB initial partitioning of the
/// coarsest graph; coarsening and k-way refinement remain serial.
std::vector<idx_t> partition_kway(const Graph& g, const Options& opts,
                                  Rng& rng, PhaseTimes* phases = nullptr,
                                  KWayDriverStats* stats = nullptr,
                                  ThreadPool* pool = nullptr);

}  // namespace mcgp
