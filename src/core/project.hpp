// Uncoarsening: project a partition from a coarse graph to the next finer
// level through the fine-to-coarse vertex map.
#pragma once

#include <vector>

#include "support/types.hpp"

namespace mcgp {

/// fine_part[v] = coarse_part[cmap[v]] for every fine vertex v.
void project_partition(const std::vector<idx_t>& cmap,
                       const std::vector<idx_t>& coarse_part,
                       std::vector<idx_t>& fine_part);

}  // namespace mcgp
