// Coarsening phase, step 2: graph contraction and the multilevel hierarchy.
#pragma once

#include <vector>

#include "core/config.hpp"
#include "core/matching.hpp"
#include "graph/csr_graph.hpp"

namespace mcgp {

class WorkspacePool;

/// Execution context for parallel contraction. The chunked path builds
/// coarse adjacency rows per coarse-vertex range into chunk-local buffers
/// (each chunk leasing its own Workspace from `wspool` for the dense
/// position map) and then merges them at deterministic offsets. Its output
/// is bit-identical to the serial path's by construction — every row is
/// built by the same first/second-constituent walk — so gating it on the
/// pool cannot perturb partitions across `num_threads`.
struct ContractExec {
  ThreadPool* pool = nullptr;
  WorkspacePool* wspool = nullptr;  ///< per-chunk scratch leases
  Profiler* profile = nullptr;      ///< aux attribution of worker chunks
  int level = -1;                   ///< hierarchy level for the bucket
};

/// Contract a graph according to a fine-to-coarse vertex map.
/// Coarse vertex weights are the (vector) sums of their constituents;
/// parallel coarse edges are merged by summing weights; edges internal to
/// a coarse vertex vanish. A non-null `ws` supplies the constituent-list
/// and dense position scratch buffers so repeated contractions allocate
/// nothing beyond the coarse graph itself. A non-null `exec` with a pool
/// builds the coarse rows in parallel for sufficiently large outputs.
Graph contract_graph(const Graph& g, const std::vector<idx_t>& cmap,
                     idx_t ncoarse, Workspace* ws = nullptr,
                     const ContractExec* exec = nullptr);

/// One level of the hierarchy below the finest graph.
struct CoarseLevel {
  Graph graph;              ///< the coarse graph
  std::vector<idx_t> cmap;  ///< maps the NEXT FINER level's vertices here
};

/// Multilevel hierarchy rooted at a (non-owned) finest graph.
struct Hierarchy {
  const Graph* finest = nullptr;
  std::vector<CoarseLevel> levels;  ///< levels[0] is one step coarser

  int num_levels() const { return static_cast<int>(levels.size()); }

  /// Graph at level l, where level 0 is the finest input graph.
  const Graph& graph_at(int l) const {
    return l == 0 ? *finest : levels[to_size(l) - 1].graph;
  }

  const Graph& coarsest() const {
    return levels.empty() ? *finest : levels.back().graph;
  }
};

struct CoarsenParams {
  idx_t coarsen_to = 100;
  MatchScheme scheme = MatchScheme::kHeavyEdgeBalanced;
  real_t min_reduction = 0.95;  ///< stop if ncoarse > min_reduction * n
  int max_levels = 60;
  TraceRecorder* trace = nullptr;  ///< optional per-level span recording
  /// Optional invariant auditor: verifies weight/edge conservation of
  /// every contraction (see core/audit.hpp). Null = no checks.
  InvariantAuditor* audit = nullptr;
  /// Optional flight recorder: one telemetry sample (level, coarse
  /// nvtxs/nedges, memory high-water) per contraction. Null = no samples.
  FlightRecorder* flight = nullptr;
  /// Optional hardware-counter profiler: one measured interval per level
  /// for matching and for contraction. Null = one pointer test per level.
  Profiler* profile = nullptr;
  /// Optional thread pool: runs the handshake-matching and contraction
  /// chunk tasks. The algorithms are selected by graph size only, so a
  /// null pool executes the identical work inline (bit-identical output).
  ThreadPool* pool = nullptr;
  /// Scratch leases for parallel contraction chunks (required for the
  /// chunked contraction path to avoid per-chunk map allocations).
  WorkspacePool* wspool = nullptr;
};

/// Repeatedly match-and-contract until the graph is small enough or
/// coarsening stalls. `g` must outlive the returned hierarchy. A non-null
/// `ws` supplies reusable scratch (match/perm/contract buffers); only the
/// per-level cmap vectors, which the hierarchy keeps, are still allocated.
Hierarchy coarsen_graph(const Graph& g, const CoarsenParams& params, Rng& rng,
                        Workspace* ws = nullptr);

}  // namespace mcgp
