#include "core/matching.hpp"

#include <algorithm>
#include <cassert>

#include "support/perf_counters.hpp"
#include "support/thread_pool.hpp"
#include "support/trace.hpp"

namespace mcgp {

namespace {

/// Vertex-range chunk for the parallel handshake phases. The boundaries
/// depend only on nvtxs, so the work decomposition — and with it every
/// result — is independent of the pool's thread count.
constexpr idx_t kMatchChunk = 8192;

/// Handshake rounds before falling back to the serial cleanup. Random
/// graphs converge in a handful of rounds; the cap bounds adversarial
/// cases without affecting determinism (cleanup matches whatever is left).
constexpr int kMaxHandshakeRounds = 48;

/// Serial greedy matching over `order`; skips already-matched vertices,
/// leaves unmatched-but-visited vertices self-matched. This is both the
/// small-graph path (order = random permutation of all vertices) and the
/// handshake cleanup (order = ascending unmatched vertices).
void greedy_pass(const Graph& g, MatchScheme scheme, Rng& rng,
                 std::vector<idx_t>& match, const std::vector<idx_t>& order) {
  for (const idx_t v : order) {
    if (match[to_size(v)] >= 0) continue;

    idx_t best = -1;
    switch (scheme) {
      case MatchScheme::kRandom: {
        // Reservoir-sample one unmatched neighbor.
        idx_t seen = 0;
        for (idx_t e = g.xadj[to_size(v)]; e < g.xadj[to_size(v + 1)]; ++e) {
          const idx_t u = g.adjncy[to_size(e)];
          if (match[to_size(u)] >= 0) continue;
          ++seen;
          if (rng.next_below(static_cast<std::uint64_t>(seen)) == 0) best = u;
        }
        break;
      }
      case MatchScheme::kHeavyEdge: {
        wgt_t best_w = -1;
        for (idx_t e = g.xadj[to_size(v)]; e < g.xadj[to_size(v + 1)]; ++e) {
          const idx_t u = g.adjncy[to_size(e)];
          if (match[to_size(u)] >= 0) continue;
          if (g.adjwgt[to_size(e)] > best_w) {
            best_w = g.adjwgt[to_size(e)];
            best = u;
          }
        }
        break;
      }
      case MatchScheme::kHeavyEdgeBalanced: {
        // Primary key: edge weight (max). Secondary: flattest combined
        // weight vector among candidates tied on the primary key.
        wgt_t best_w = -1;
        real_t best_score = 1e300;
        for (idx_t e = g.xadj[to_size(v)]; e < g.xadj[to_size(v + 1)]; ++e) {
          const idx_t u = g.adjncy[to_size(e)];
          if (match[to_size(u)] >= 0) continue;
          const wgt_t w = g.adjwgt[to_size(e)];
          if (w < best_w) continue;
          const real_t score = balanced_edge_score(g, v, u);
          if (w > best_w || score < best_score) {
            best_w = w;
            best_score = score;
            best = u;
          }
        }
        break;
      }
    }

    if (best >= 0) {
      match[to_size(v)] = best;
      match[to_size(best)] = v;
    } else {
      match[to_size(v)] = v;
    }
  }
}

/// Pick v's handshake proposal from the frozen match state. Pure function
/// of (g, match, v, round_seed): no shared mutable state, so chunks can
/// evaluate it concurrently and the result is chunking-independent. Ties
/// are broken by the hashed key mix_seed(mix_seed(round_seed, v), u) — a
/// fixed total order per round, never arrival order — which doubles as
/// the "random" choice for MatchScheme::kRandom.
idx_t handshake_propose(const Graph& g, MatchScheme scheme,
                        const std::vector<idx_t>& match, idx_t v,
                        std::uint64_t round_seed) {
  const std::uint64_t vseed =
      mix_seed(round_seed, static_cast<std::uint64_t>(v));
  idx_t best = -1;
  wgt_t best_w = -1;
  real_t best_score = 1e300;
  std::uint64_t best_key = ~0ULL;
  for (idx_t e = g.xadj[to_size(v)]; e < g.xadj[to_size(v + 1)]; ++e) {
    const idx_t u = g.adjncy[to_size(e)];
    if (match[to_size(u)] >= 0) continue;
    const std::uint64_t key = mix_seed(vseed, static_cast<std::uint64_t>(u));
    switch (scheme) {
      case MatchScheme::kRandom:
        if (key < best_key) {
          best_key = key;
          best = u;
        }
        break;
      case MatchScheme::kHeavyEdge: {
        const wgt_t w = g.adjwgt[to_size(e)];
        if (w > best_w || (w == best_w && key < best_key)) {
          best_w = w;
          best_key = key;
          best = u;
        }
        break;
      }
      case MatchScheme::kHeavyEdgeBalanced: {
        const wgt_t w = g.adjwgt[to_size(e)];
        if (w < best_w) break;
        const real_t score = balanced_edge_score(g, v, u);
        if (w > best_w || score < best_score ||
            (score == best_score && key < best_key)) {
          best_w = w;
          best_score = score;
          best_key = key;
          best = u;
        }
        break;
      }
    }
  }
  return best;
}

/// Deterministic handshake matching: rounds of (parallel propose from the
/// frozen state, accept mutual proposals), then a serial greedy cleanup in
/// ascending vertex order for maximality. Every phase's output depends
/// only on the graph, the scheme, and the seed — never on thread count or
/// scheduling — so partitions are bit-identical across `num_threads`.
void handshake_match(const Graph& g, MatchScheme scheme, Rng& rng,
                     std::vector<idx_t>& match, Workspace* ws,
                     const MatchingExec* exec) {
  const idx_t n = g.nvtxs;
  ThreadPool* pool = exec != nullptr ? exec->pool : nullptr;
  Profiler* profile = exec != nullptr ? exec->profile : nullptr;
  const int level = exec != nullptr ? exec->level : -1;

  std::vector<idx_t> local_proposal;
  std::vector<idx_t>& proposal = ws != nullptr ? ws->proposal : local_proposal;
  proposal.assign(to_size(n), -1);

  // One draw per call: the per-round seeds derive from it by position, so
  // the stream is identical no matter how the rounds' chunks execute.
  const std::uint64_t mseed = rng.next_u64();

  const idx_t nchunks = (n + kMatchChunk - 1) / kMatchChunk;
  std::vector<idx_t> chunk_new(to_size(nchunks), 0);

  idx_t unmatched = n;
  for (int round = 0; round < kMaxHandshakeRounds; ++round) {
    // Few enough stragglers that rounds stop paying for their sweeps; the
    // serial cleanup finishes them at small-graph cost.
    if (unmatched < kHandshakeMinVtxs) break;
    const std::uint64_t round_seed =
        mix_seed(mseed, static_cast<std::uint64_t>(round));

    // Propose: reads only the frozen `match`, writes only proposal[v].
    parallel_chunks(pool, n, kMatchChunk, [&](idx_t b, idx_t e) {
      ProfScope aux(profile, "coarsen.matching", level, /*aux=*/true);
      for (idx_t v = b; v < e; ++v) {
        proposal[to_size(v)] =
            match[to_size(v)] >= 0
                ? idx_t{-1}
                : handshake_propose(g, scheme, match, v, round_seed);
      }
    });

    // Accept: v and u marry iff they proposed to each other. Each vertex
    // writes only match[v] (its partner writes match[u]), so the writes
    // are disjoint and the outcome is chunking-independent.
    std::fill(chunk_new.begin(), chunk_new.end(), 0);
    parallel_chunks(pool, n, kMatchChunk, [&](idx_t b, idx_t e) {
      ProfScope aux(profile, "coarsen.matching", level, /*aux=*/true);
      idx_t matched = 0;
      for (idx_t v = b; v < e; ++v) {
        const idx_t u = proposal[to_size(v)];
        if (u >= 0 && proposal[to_size(u)] == v) {
          match[to_size(v)] = u;
          ++matched;
        }
      }
      chunk_new[to_size(b / kMatchChunk)] = matched;
    });

    idx_t newly = 0;
    for (const idx_t c : chunk_new) newly += c;
    unmatched -= newly;
    // No mutual proposal anywhere: further rounds are identical no-ops
    // (same frozen state, new seeds only reshuffle rejected proposals for
    // isolated-in-the-unmatched-subgraph vertices). Hand off to cleanup.
    if (newly == 0) break;
  }

  // Maximality cleanup: greedy over the leftovers in ascending id order.
  // Serial and state-dependent, but the state it sees is already
  // thread-count-independent.
  std::vector<idx_t> local_order;
  std::vector<idx_t>& order = ws != nullptr ? ws->perm : local_order;
  order.clear();
  for (idx_t v = 0; v < n; ++v) {
    if (match[to_size(v)] < 0) order.push_back(v);
  }
  greedy_pass(g, scheme, rng, match, order);
}

}  // namespace

real_t balanced_edge_score(const Graph& g, idx_t v, idx_t u) {
  if (g.ncon == 1) return 0.0;
  const wgt_t* wv = g.weights(v);
  const wgt_t* wu = g.weights(u);
  real_t mx = 0.0;
  real_t mn = 1e300;
  for (int i = 0; i < g.ncon; ++i) {
    const real_t c = static_cast<real_t>(wv[i] + wu[i]) *
                     g.invtvwgt[to_size(i)];
    mx = std::max(mx, c);
    mn = std::min(mn, c);
  }
  return mx - mn;
}

std::vector<idx_t> compute_matching(const Graph& g, MatchScheme scheme,
                                    Rng& rng, TraceRecorder* trace) {
  std::vector<idx_t> match;
  compute_matching_into(g, scheme, rng, match, trace);
  return match;
}

void compute_matching_into(const Graph& g, MatchScheme scheme, Rng& rng,
                           std::vector<idx_t>& match, TraceRecorder* trace,
                           Workspace* ws, const MatchingExec* exec) {
  match.assign(to_size(g.nvtxs), -1);

  if (g.nvtxs >= kHandshakeMinVtxs) {
    handshake_match(g, scheme, rng, match, ws, exec);
  } else {
    std::vector<idx_t> local_perm;
    std::vector<idx_t>& perm = ws != nullptr ? ws->perm : local_perm;
    random_permutation(g.nvtxs, perm, rng);
    greedy_pass(g, scheme, rng, match, perm);
  }

  if (trace != nullptr) {
    idx_t pairs = 0, failed = 0;
    for (idx_t v = 0; v < g.nvtxs; ++v) {
      if (match[to_size(v)] != v) {
        ++pairs;  // counts both endpoints; halved below
      } else if (g.degree(v) > 0) {
        ++failed;  // had neighbors but every one was already taken
      }
    }
    trace_count(trace, "match.pairs", pairs / 2);
    trace_count(trace, "match.failed", failed);
  }
}

idx_t build_coarse_map(const Graph& g, const std::vector<idx_t>& match,
                       std::vector<idx_t>& cmap) {
  cmap.assign(to_size(g.nvtxs), -1);
  idx_t ncoarse = 0;
  for (idx_t v = 0; v < g.nvtxs; ++v) {
    const idx_t u = match[to_size(v)];
    assert(u >= 0 && u < g.nvtxs);
    if (v <= u) {
      cmap[to_size(v)] = ncoarse;
      cmap[to_size(u)] = ncoarse;
      ++ncoarse;
    }
  }
  return ncoarse;
}

}  // namespace mcgp
