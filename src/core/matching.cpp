#include "core/matching.hpp"

#include <algorithm>
#include <cassert>

#include "support/trace.hpp"

namespace mcgp {

real_t balanced_edge_score(const Graph& g, idx_t v, idx_t u) {
  if (g.ncon == 1) return 0.0;
  const wgt_t* wv = g.weights(v);
  const wgt_t* wu = g.weights(u);
  real_t mx = 0.0;
  real_t mn = 1e300;
  for (int i = 0; i < g.ncon; ++i) {
    const real_t c = static_cast<real_t>(wv[i] + wu[i]) *
                     g.invtvwgt[to_size(i)];
    mx = std::max(mx, c);
    mn = std::min(mn, c);
  }
  return mx - mn;
}

std::vector<idx_t> compute_matching(const Graph& g, MatchScheme scheme,
                                    Rng& rng, TraceRecorder* trace) {
  std::vector<idx_t> match;
  compute_matching_into(g, scheme, rng, match, trace);
  return match;
}

void compute_matching_into(const Graph& g, MatchScheme scheme, Rng& rng,
                           std::vector<idx_t>& match, TraceRecorder* trace,
                           Workspace* ws) {
  match.assign(to_size(g.nvtxs), -1);
  std::vector<idx_t> local_perm;
  std::vector<idx_t>& perm = ws != nullptr ? ws->perm : local_perm;
  random_permutation(g.nvtxs, perm, rng);

  for (const idx_t v : perm) {
    if (match[to_size(v)] >= 0) continue;

    idx_t best = -1;
    switch (scheme) {
      case MatchScheme::kRandom: {
        // Reservoir-sample one unmatched neighbor.
        idx_t seen = 0;
        for (idx_t e = g.xadj[to_size(v)]; e < g.xadj[to_size(v + 1)]; ++e) {
          const idx_t u = g.adjncy[to_size(e)];
          if (match[to_size(u)] >= 0) continue;
          ++seen;
          if (rng.next_below(static_cast<std::uint64_t>(seen)) == 0) best = u;
        }
        break;
      }
      case MatchScheme::kHeavyEdge: {
        wgt_t best_w = -1;
        for (idx_t e = g.xadj[to_size(v)]; e < g.xadj[to_size(v + 1)]; ++e) {
          const idx_t u = g.adjncy[to_size(e)];
          if (match[to_size(u)] >= 0) continue;
          if (g.adjwgt[to_size(e)] > best_w) {
            best_w = g.adjwgt[to_size(e)];
            best = u;
          }
        }
        break;
      }
      case MatchScheme::kHeavyEdgeBalanced: {
        // Primary key: edge weight (max). Secondary: flattest combined
        // weight vector among candidates tied on the primary key.
        wgt_t best_w = -1;
        real_t best_score = 1e300;
        for (idx_t e = g.xadj[to_size(v)]; e < g.xadj[to_size(v + 1)]; ++e) {
          const idx_t u = g.adjncy[to_size(e)];
          if (match[to_size(u)] >= 0) continue;
          const wgt_t w = g.adjwgt[to_size(e)];
          if (w < best_w) continue;
          const real_t score = balanced_edge_score(g, v, u);
          if (w > best_w || score < best_score) {
            best_w = w;
            best_score = score;
            best = u;
          }
        }
        break;
      }
    }

    if (best >= 0) {
      match[to_size(v)] = best;
      match[to_size(best)] = v;
    } else {
      match[to_size(v)] = v;
    }
  }

  if (trace != nullptr) {
    idx_t pairs = 0, failed = 0;
    for (idx_t v = 0; v < g.nvtxs; ++v) {
      if (match[to_size(v)] != v) {
        ++pairs;  // counts both endpoints; halved below
      } else if (g.degree(v) > 0) {
        ++failed;  // had neighbors but every one was already taken
      }
    }
    trace_count(trace, "match.pairs", pairs / 2);
    trace_count(trace, "match.failed", failed);
  }
}

idx_t build_coarse_map(const Graph& g, const std::vector<idx_t>& match,
                       std::vector<idx_t>& cmap) {
  cmap.assign(to_size(g.nvtxs), -1);
  idx_t ncoarse = 0;
  for (idx_t v = 0; v < g.nvtxs; ++v) {
    const idx_t u = match[to_size(v)];
    assert(u >= 0 && u < g.nvtxs);
    if (v <= u) {
      cmap[to_size(v)] = ncoarse;
      cmap[to_size(u)] = ncoarse;
      ++ncoarse;
    }
  }
  return ncoarse;
}

}  // namespace mcgp
