// Shared state and balance arithmetic for 2-way (bisection) operations:
// initial partitioning, FM refinement, and explicit balancing.
//
// A bisection splits a graph into sides 0/1 with target weight fractions
// (f0, 1-f0) — recursive bisection uses uneven targets when k is not a
// power of two. All balance math is done on normalized loads:
//
//   nload(s, i) = (sum of weight i on side s) / (total weight i) / f_s
//
// nload == 1 means side s holds exactly its target share of constraint i.
// The scalar balance potential is
//
//   B = max_{i, s} nload(s, i) / ub_i
//
// so the bisection is feasible (all constraints within tolerance) iff
// B <= 1. Constraints with zero total weight are ignored (trivially
// balanced).
#pragma once

#include <algorithm>
#include <cassert>
#include <iterator>
#include <cmath>
#include <vector>

#include "graph/csr_graph.hpp"
#include "support/check.hpp"
#include "support/types.hpp"

namespace mcgp {

/// Target fractions and per-constraint tolerances of one bisection.
struct BisectionTargets {
  real_t f0 = 0.5;         ///< target fraction of side 0 (0 < f0 < 1)
  std::vector<real_t> ub;  ///< per-constraint tolerance (>= 1), size ncon

  real_t fraction(int side) const { return side == 0 ? f0 : 1.0 - f0; }
};

/// Running side-weight bookkeeping for a bisection of graph g.
class BisectionBalance {
 public:
  BisectionBalance() = default;

  void init(const Graph& g, const std::vector<idx_t>& where,
            const BisectionTargets& t) {
    g_ = &g;
    t_ = &t;
    assert(static_cast<int>(t.ub.size()) == g.ncon);
    std::fill(std::begin(pwgts_), std::end(pwgts_), 0);
    for (idx_t v = 0; v < g.nvtxs; ++v) {
      const int s = where[to_size(v)];
      const wgt_t* w = g.weights(v);
      for (int i = 0; i < g.ncon; ++i) {
        sum_t& slot = pwgts_[s * kMaxNcon + i];
        slot = checked_add(slot, w[i]);
      }
    }
  }

  sum_t side_weight(int side, int i) const {
    return pwgts_[side * kMaxNcon + i];
  }

  /// Apply the bookkeeping of moving v from side `from` to `1 - from`.
  void apply_move(idx_t v, int from) {
    const wgt_t* w = g_->weights(v);
    for (int i = 0; i < g_->ncon; ++i) {
      sum_t& from_slot = pwgts_[from * kMaxNcon + i];
      sum_t& to_slot = pwgts_[(1 - from) * kMaxNcon + i];
      from_slot = checked_sub(from_slot, w[i]);
      to_slot = checked_add(to_slot, w[i]);
    }
  }

  real_t nload(int side, int i) const {
    return static_cast<real_t>(pwgts_[side * kMaxNcon + i]) *
           g_->invtvwgt[to_size(i)] / t_->fraction(side);
  }

  /// Balance potential: max_i max_s nload(s,i)/ub_i. Feasible iff <= 1.
  real_t potential() const {
    real_t b = 0.0;
    for (int i = 0; i < g_->ncon; ++i) {
      if (g_->tvwgt[to_size(i)] <= 0) continue;
      const real_t ub = t_->ub[to_size(i)];
      b = std::max(b, std::max(nload(0, i), nload(1, i)) / ub);
    }
    return b;
  }

  bool feasible() const { return potential() <= 1.0 + 1e-12; }

  /// Potential if v were moved from `from` (without committing).
  real_t potential_after(idx_t v, int from) const {
    const wgt_t* w = g_->weights(v);
    real_t b = 0.0;
    for (int i = 0; i < g_->ncon; ++i) {
      if (g_->tvwgt[to_size(i)] <= 0) continue;
      const sum_t w_from = checked_sub(pwgts_[from * kMaxNcon + i], w[i]);
      const sum_t w_to = checked_add(pwgts_[(1 - from) * kMaxNcon + i], w[i]);
      const real_t inv = g_->invtvwgt[to_size(i)];
      const real_t l_from = static_cast<real_t>(w_from) * inv / t_->fraction(from);
      const real_t l_to = static_cast<real_t>(w_to) * inv / t_->fraction(1 - from);
      b = std::max(b, std::max(l_from, l_to) / t_->ub[to_size(i)]);
    }
    return b;
  }

  /// Tolerance-relative overload of constraint i: max_s nload(s,i)/ub_i.
  real_t constraint_potential(int i) const {
    if (g_->tvwgt[to_size(i)] <= 0) return 0.0;
    return std::max(nload(0, i), nload(1, i)) / t_->ub[to_size(i)];
  }

  /// Side holding the larger (target-relative) share of constraint i.
  int heavy_side(int i) const { return nload(0, i) >= nload(1, i) ? 0 : 1; }

  /// Constraint with the largest tolerance-relative overload.
  int worst_constraint() const {
    int worst = 0;
    real_t wb = -1.0;
    for (int i = 0; i < g_->ncon; ++i) {
      const real_t b = constraint_potential(i);
      if (b > wb) {
        wb = b;
        worst = i;
      }
    }
    return worst;
  }

  const Graph& graph() const { return *g_; }
  const BisectionTargets& targets() const { return *t_; }

 private:
  const Graph* g_ = nullptr;
  const BisectionTargets* t_ = nullptr;
  sum_t pwgts_[2 * kMaxNcon] = {};
};

/// Weighted cut of a bisection (each undirected edge once).
inline sum_t compute_cut_2way(const Graph& g, const std::vector<idx_t>& where) {
  sum_t cut = 0;
  for (idx_t v = 0; v < g.nvtxs; ++v) {
    const idx_t pv = where[to_size(v)];
    for (idx_t e = g.xadj[to_size(v)]; e < g.xadj[to_size(v + 1)]; ++e) {
      if (where[to_size(g.adjncy[to_size(e)])] != pv) {
        cut = checked_add(cut, g.adjwgt[to_size(e)]);
      }
    }
  }
  return cut / 2;
}

/// Per-bisection tolerance vector derived from the overall tolerance and
/// the recursion depth: per-level ub = ub^(1/depth), floored so the FM
/// still has room to move (METIS-style compromise — balance errors of
/// nested bisections multiply).
inline std::vector<real_t> per_bisection_ub(const std::vector<real_t>& ub,
                                            int depth) {
  std::vector<real_t> out(ub.size());
  for (std::size_t i = 0; i < ub.size(); ++i) {
    const real_t per = std::pow(std::max(ub[i], 1.0), 1.0 / std::max(depth, 1));
    out[i] = std::max<real_t>(per, 1.004);
  }
  return out;
}

}  // namespace mcgp
