#include "core/project.hpp"

namespace mcgp {

void project_partition(const std::vector<idx_t>& cmap,
                       const std::vector<idx_t>& coarse_part,
                       std::vector<idx_t>& fine_part) {
  fine_part.resize(cmap.size());
  for (std::size_t v = 0; v < cmap.size(); ++v) {
    fine_part[v] = coarse_part[to_size(cmap[v])];
  }
}

}  // namespace mcgp
