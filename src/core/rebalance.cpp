#include "core/rebalance.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "core/audit.hpp"
#include "core/coarsen.hpp"
#include "core/kway_context.hpp"
#include "core/kway_refine.hpp"
#include "core/matching.hpp"
#include "core/project.hpp"
#include "graph/metrics.hpp"
#include "support/check.hpp"
#include "support/flight_recorder.hpp"
#include "support/indexed_heap.hpp"
#include "support/trace.hpp"

namespace mcgp {

namespace {

constexpr real_t kEps = 1e-12;

/// Graphs at or below this size get the pairwise-swap escape when single
/// moves deadlock; the pair search is quadratic-ish and only tiny, tight
/// instances (coarse granularity relative to part size) need it.
constexpr idx_t kSwapMaxVtxs = 10000;

/// At most this many source vertices are tried per swap-pair search.
constexpr idx_t kSwapCandCap = 128;

/// Relief-ordered key of a candidate move out of the overloaded part:
/// cut gain per unit of weight removed in the scarce constraint — cheap
/// cut damage and large relief first.
real_t relief_key(const Graph& g, const KWayContext& ctx, idx_t v, int c,
                  std::vector<sum_t>& conn, std::vector<idx_t>& touched) {
  const sum_t idw = ctx.gather_connectivity_into(v, conn, touched);
  sum_t edw = 0;
  for (const idx_t p : touched) {
    edw = checked_add(edw, conn[to_size(p)]);
  }
  return static_cast<real_t>(checked_sub(edw, idw)) /
         static_cast<real_t>(std::max<wgt_t>(g.weight(v, c), 1));
}

/// Argmax overloaded (part, constraint); returns false when feasible.
bool find_peak(const Graph& g, const KWayContext& ctx, idx_t nparts,
               idx_t& q, int& c) {
  q = -1;
  c = 0;
  real_t peak = 1.0 + kEps;
  for (idx_t p = 0; p < nparts; ++p) {
    for (int i = 0; i < g.ncon; ++i) {
      const real_t l = ctx.overload(p, i);
      if (l > peak) {
        peak = l;
        q = p;
        c = i;
      }
    }
  }
  return q >= 0;
}

/// Best destination for moving v out of q: a part where v outright fits,
/// or failing that one whose post-move load stays strictly below the
/// current global peak (potential-reducing). Among admissible parts:
/// fits > cut gain > lower post-move load > smaller id. Returns -1 when
/// no part is admissible.
idx_t pick_destination(const KWayContext& ctx, idx_t nparts, idx_t v,
                       idx_t q, sum_t idw, real_t peak) {
  idx_t best = -1;
  bool best_fits = false;
  sum_t best_gain = 0;
  real_t best_load = 0.0;
  auto consider = [&](idx_t p) {
    if (p < 0 || p == q) return;
    const real_t after = ctx.load_after(v, p);
    const bool fits = after <= 1.0 + kEps;
    if (!fits && after >= peak - kEps) return;
    const sum_t gain = checked_sub(ctx.conn(p), idw);
    const bool better =
        best < 0 || (fits && !best_fits) ||
        (fits == best_fits &&
         (gain > best_gain ||
          (gain == best_gain &&
           (after < best_load - kEps ||
            (after <= best_load + kEps && p < best)))));
    if (better) {
      best = p;
      best_fits = fits;
      best_gain = gain;
      best_load = after;
    }
  };
  for (const idx_t p : ctx.touched()) consider(p);
  // The globally lightest part is always a candidate even when v has no
  // edge into it — relief matters more than locality once we are here.
  idx_t lightest = -1;
  real_t lightest_load = 1e300;
  for (idx_t p = 0; p < nparts; ++p) {
    if (p == q) continue;
    const real_t l = ctx.part_load(p);
    if (l < lightest_load - kEps ||
        (l <= lightest_load + kEps && (lightest < 0 || p < lightest))) {
      lightest_load = l;
      lightest = p;
    }
  }
  consider(lightest);
  return best;
}

/// (peak, #loads at the peak): the lexicographic progress measure of the
/// episode loop — several parts can tie at the peak, so the peak alone is
/// not the right measure.
std::pair<real_t, idx_t> progress_state(const Graph& g,
                                        const KWayContext& ctx,
                                        idx_t nparts) {
  const real_t peak = ctx.max_overload();
  idx_t at_peak = 0;
  for (idx_t p = 0; p < nparts; ++p) {
    for (int i = 0; i < g.ncon; ++i) {
      if (ctx.overload(p, i) > peak - 1e-9) ++at_peak;
    }
  }
  return {peak, at_peak};
}

/// Greedy gain-to-relief episodes: repeatedly pick the argmax overloaded
/// (part, constraint), drain it through a relief-ordered indexed heap with
/// lazy key revalidation, and stop when feasible, deadlocked, or out of
/// progress. Returns the number of moves committed.
sum_t greedy_episodes(const Graph& g, KWayContext& ctx, idx_t nparts,
                      const std::vector<idx_t>& where, int* episodes_out) {
  sum_t total = 0;
  int episodes = 0;
  const int max_episodes = 16 * g.ncon * std::max<idx_t>(nparts, 2);
  const sum_t move_cap =
      checked_mul(static_cast<sum_t>(8),
                  static_cast<sum_t>(std::max<idx_t>(g.nvtxs, 1)));
  IndexedMaxHeap heap;
  std::vector<char> requeued(to_size(g.nvtxs), 0);
  std::vector<sum_t> conn(to_size(nparts), 0);
  std::vector<idx_t> touched;
  touched.reserve(64);
  auto prev = progress_state(g, ctx, nparts);
  for (int ep = 0; ep < max_episodes; ++ep) {
    idx_t q;
    int c;
    if (!find_peak(g, ctx, nparts, q, c)) break;
    if (total >= move_cap) break;

    heap.reset(g.nvtxs);
    std::fill(requeued.begin(), requeued.end(), 0);
    for (idx_t v = 0; v < g.nvtxs; ++v) {
      if (where[to_size(v)] != q) continue;
      if (g.weight(v, c) <= 0) continue;
      heap.insert(v, relief_key(g, ctx, v, c, conn, touched));
    }

    idx_t ep_moves = 0;
    while (!heap.empty()) {
      if (ctx.overload(q, c) <= 1.0 + kEps) break;
      if (!ctx.can_leave(q)) break;
      const real_t popped_key = heap.top_key();
      const idx_t v = heap.pop_max();
      // Lazy revalidation: earlier moves shifted v's neighborhood. If the
      // fresh key lost its place at the top, requeue once and move on —
      // the one-requeue guard keeps the episode linear.
      const real_t fresh = relief_key(g, ctx, v, c, conn, touched);
      if (requeued[to_size(v)] == 0 && fresh < popped_key - 1e-9 &&
          !heap.empty() && fresh < heap.top_key()) {
        requeued[to_size(v)] = 1;
        heap.insert(v, fresh);
        continue;
      }
      const sum_t idw = ctx.gather_connectivity(v);
      const real_t peak = ctx.max_overload();
      const idx_t dest = pick_destination(ctx, nparts, v, q, idw, peak);
      if (dest < 0) continue;
      ctx.move(v, dest);
      ++ep_moves;
    }

    if (ep_moves == 0) break;  // deadlocked — the caller escalates
    total = checked_add(total, ep_moves);
    ++episodes;
    const auto cur = progress_state(g, ctx, nparts);
    if (cur.first >= prev.first - kEps && cur.second >= prev.second) break;
    prev = cur;
  }
  if (episodes_out != nullptr) *episodes_out += episodes;
  return total;
}

/// Tolerance-relative load of part p after removing vertex `out` and
/// adding vertex `in` (either may be -1 for "none").
real_t load_after_swap(const Graph& g, const KWayContext& ctx, idx_t p,
                       idx_t out, idx_t in) {
  real_t l = 0.0;
  for (int i = 0; i < g.ncon; ++i) {
    sum_t w = ctx.pwgts()[to_size(p) * to_size(g.ncon) + to_size(i)];
    if (out >= 0) w = checked_sub(w, g.weight(out, i));
    if (in >= 0) w = checked_add(w, g.weight(in, i));
    l = std::max(l, static_cast<real_t>(w) / ctx.limit(p, i));
  }
  return l;
}

/// Pairwise-swap escape for small graphs: when no single move is
/// potential-reducing (every part with room in the scarce constraint is
/// itself near the peak in another), exchanging a heavy-in-c vertex of the
/// peak part for a light-in-c vertex elsewhere can still reduce the peak.
/// Commits swaps while each strictly reduces the lexicographic potential;
/// every swap retires the current peak (part, constraint) pair, so the
/// loop terminates without an explicit cap. Returns swaps committed.
sum_t swap_escape(const Graph& g, KWayContext& ctx, idx_t nparts,
                  const std::vector<idx_t>& where) {
  if (g.nvtxs > kSwapMaxVtxs) return 0;
  sum_t swaps = 0;
  const sum_t swap_cap =
      checked_mul(static_cast<sum_t>(4),
                  static_cast<sum_t>(std::max<idx_t>(g.nvtxs, 1)));
  std::vector<idx_t> cand;
  while (swaps < swap_cap) {
    idx_t q;
    int c;
    if (!find_peak(g, ctx, nparts, q, c)) break;
    const real_t peak = ctx.max_overload();

    // Sources: heaviest-in-c vertices of q first (they buy the most
    // relief per swap), deterministic id tie-break.
    cand.clear();
    for (idx_t v = 0; v < g.nvtxs; ++v) {
      if (where[to_size(v)] == q && g.weight(v, c) > 0) cand.push_back(v);
    }
    std::stable_sort(cand.begin(), cand.end(), [&](idx_t a, idx_t b) {
      if (g.weight(a, c) != g.weight(b, c)) {
        return g.weight(a, c) > g.weight(b, c);
      }
      return a < b;
    });
    if (cand.size() > to_size(kSwapCandCap)) {
      cand.resize(to_size(kSwapCandCap));
    }

    idx_t best_v = -1;
    idx_t best_u = -1;
    real_t best_after = peak;
    for (const idx_t v : cand) {
      for (idx_t u = 0; u < g.nvtxs; ++u) {
        const idx_t p = where[to_size(u)];
        if (p == q) continue;
        // Swapping must strictly reduce both touched parts below the peak.
        const real_t aq = load_after_swap(g, ctx, q, v, u);
        if (aq >= peak - kEps) continue;
        const real_t ap = load_after_swap(g, ctx, p, u, v);
        if (ap >= peak - kEps) continue;
        const real_t after = std::max(aq, ap);
        if (after < best_after - kEps ||
            (after <= best_after + kEps && best_v >= 0 &&
             (v < best_v || (v == best_v && u < best_u)))) {
          best_v = v;
          best_u = u;
          best_after = after;
        } else if (best_v < 0 && after < peak - kEps) {
          best_v = v;
          best_u = u;
          best_after = after;
        }
      }
    }
    if (best_v < 0) break;
    const idx_t p = where[to_size(best_u)];
    ctx.move(best_v, p);
    ctx.move(best_u, q);
    swaps = checked_add(swaps, 1);
  }
  return swaps;
}

/// Change in the total relative overload sum_i max(0, load - 1) over both
/// touched parts if v moved q -> p. Negative = net relief. This is the
/// joint multi-constraint potential: the peak-chasing episodes above can
/// deadlock when every destination is itself near the peak in SOME
/// constraint, while the summed overload can still descend.
real_t move_delta(const Graph& g, const KWayContext& ctx, idx_t v, idx_t q,
                  idx_t p) {
  real_t d = 0.0;
  const wgt_t* w = g.weights(v);
  for (int i = 0; i < g.ncon; ++i) {
    d += std::max(0.0, ctx.load_with(q, i, checked_narrow<wgt_t>(-static_cast<sum_t>(w[i]))) - 1.0) -
         std::max(0.0, ctx.overload(q, i) - 1.0) +
         std::max(0.0, ctx.load_with(p, i, w[i]) - 1.0) -
         std::max(0.0, ctx.overload(p, i) - 1.0);
  }
  return d;
}

/// As move_delta, for exchanging v (in q) with u (in p).
real_t swap_delta(const Graph& g, const KWayContext& ctx, idx_t v, idx_t q,
                  idx_t u, idx_t p) {
  real_t d = 0.0;
  const wgt_t* wv = g.weights(v);
  const wgt_t* wu = g.weights(u);
  for (int i = 0; i < g.ncon; ++i) {
    const wgt_t dq = static_cast<wgt_t>(wu[i] - wv[i]);
    d += std::max(0.0, ctx.load_with(q, i, dq) - 1.0) -
         std::max(0.0, ctx.overload(q, i) - 1.0) +
         std::max(0.0, ctx.load_with(p, i, static_cast<wgt_t>(-dq)) - 1.0) -
         std::max(0.0, ctx.overload(p, i) - 1.0);
  }
  return d;
}

constexpr real_t kDescentMin = 1e-9;  ///< smallest accepted strict decrease

/// Best-improvement single-move descent on the summed relative overload:
/// rounds over vertices in ascending id; each vertex of an overloaded part
/// takes the destination with the most negative delta (smallest id on
/// ties, by scan order). Every committed move strictly decreases the
/// potential, so the loop cannot cycle; the move cap bounds it anyway.
sum_t overload_descent(const Graph& g, KWayContext& ctx, idx_t nparts,
                       const std::vector<idx_t>& where) {
  sum_t moves = 0;
  const sum_t move_cap =
      checked_mul(static_cast<sum_t>(8),
                  static_cast<sum_t>(std::max<idx_t>(g.nvtxs, 1)));
  bool changed = true;
  while (changed && moves < move_cap) {
    changed = false;
    for (idx_t v = 0; v < g.nvtxs && moves < move_cap; ++v) {
      const idx_t q = where[to_size(v)];
      bool over = false;
      for (int i = 0; i < g.ncon; ++i) {
        if (ctx.overload(q, i) > 1.0 + kEps) over = true;
      }
      if (!over || !ctx.can_leave(q)) continue;
      idx_t best = -1;
      real_t best_d = -kDescentMin;
      for (idx_t p = 0; p < nparts; ++p) {
        if (p == q) continue;
        const real_t d = move_delta(g, ctx, v, q, p);
        if (d < best_d - kEps) {
          best_d = d;
          best = p;
        }
      }
      if (best >= 0) {
        ctx.move(v, best);
        moves = checked_add(moves, 1);
        changed = true;
      }
    }
  }
  return moves;
}

/// Pairwise-swap descent on the summed relative overload (small graphs):
/// sources are vertices of overloaded parts in ascending id, partners
/// anything elsewhere; the best strictly improving exchange per source is
/// committed. The per-round pair budget keeps the quadratic scan bounded.
sum_t swap_descent(const Graph& g, KWayContext& ctx,
                   const std::vector<idx_t>& where) {
  if (g.nvtxs > kSwapMaxVtxs) return 0;
  sum_t swaps = 0;
  const sum_t swap_cap =
      checked_mul(static_cast<sum_t>(4),
                  static_cast<sum_t>(std::max<idx_t>(g.nvtxs, 1)));
  const std::int64_t pair_budget = 1 << 22;
  bool changed = true;
  while (changed && swaps < swap_cap) {
    changed = false;
    std::int64_t pairs = 0;
    for (idx_t v = 0; v < g.nvtxs && swaps < swap_cap; ++v) {
      if (pairs >= pair_budget) break;
      const idx_t q = where[to_size(v)];
      bool over = false;
      for (int i = 0; i < g.ncon; ++i) {
        if (ctx.overload(q, i) > 1.0 + kEps) over = true;
      }
      if (!over) continue;
      idx_t best_u = -1;
      real_t best_d = -kDescentMin;
      for (idx_t u = 0; u < g.nvtxs; ++u) {
        const idx_t p = where[to_size(u)];
        if (p == q) continue;
        pairs = checked_add(pairs, 1);
        const real_t d = swap_delta(g, ctx, v, q, u, p);
        if (d < best_d - kEps) {
          best_d = d;
          best_u = u;
        }
      }
      if (best_u >= 0) {
        const idx_t p = where[to_size(best_u)];
        ctx.move(v, p);
        ctx.move(best_u, q);
        swaps = checked_add(swaps, 1);
        changed = true;
      }
    }
  }
  return swaps;
}

/// Two-move relay descent: v leaves an overloaded part q for p, while u
/// leaves p for a third part r. A relay relieves q through a part that
/// has no joint room of its own — the move it enables (u out of p) is
/// exactly what single moves and pairwise swaps cannot see. Quadratic
/// with a k factor, so gated to very small graphs; every committed relay
/// strictly decreases the potential.
constexpr idx_t kRelayMaxVtxs = 2048;

sum_t relay_descent(const Graph& g, KWayContext& ctx, idx_t nparts,
                    const std::vector<idx_t>& where) {
  if (g.nvtxs > kRelayMaxVtxs) return 0;
  sum_t relays = 0;
  const sum_t relay_cap =
      checked_mul(static_cast<sum_t>(2),
                  static_cast<sum_t>(std::max<idx_t>(g.nvtxs, 1)));
  const std::int64_t eval_budget = 1 << 24;
  std::int64_t evals = 0;
  bool changed = true;
  while (changed && relays < relay_cap && evals < eval_budget) {
    changed = false;
    for (idx_t v = 0; v < g.nvtxs && relays < relay_cap; ++v) {
      if (evals >= eval_budget) break;
      const idx_t q = where[to_size(v)];
      bool over = false;
      for (int i = 0; i < g.ncon; ++i) {
        if (ctx.overload(q, i) > 1.0 + kEps) over = true;
      }
      if (!over || !ctx.can_leave(q)) continue;
      const wgt_t* wv = g.weights(v);
      real_t q_relief = 0.0;  // shared by every (u, r) for this v
      for (int i = 0; i < g.ncon; ++i) {
        q_relief +=
            std::max(0.0, ctx.load_with(q, i, static_cast<wgt_t>(-wv[i])) -
                              1.0) -
            std::max(0.0, ctx.overload(q, i) - 1.0);
      }
      idx_t best_u = -1;
      idx_t best_r = -1;
      real_t best_d = -kDescentMin;
      for (idx_t u = 0; u < g.nvtxs; ++u) {
        const idx_t p = where[to_size(u)];
        if (p == q || u == v) continue;
        const wgt_t* wu = g.weights(u);
        real_t p_delta = 0.0;  // p nets +wv -wu
        for (int i = 0; i < g.ncon; ++i) {
          p_delta +=
              std::max(0.0, ctx.load_with(
                                p, i, static_cast<wgt_t>(wv[i] - wu[i])) -
                                1.0) -
              std::max(0.0, ctx.overload(p, i) - 1.0);
        }
        for (idx_t r = 0; r < nparts; ++r) {
          // r == q is a plain swap (swap_descent's job); skipping it also
          // keeps the three per-part deltas independent.
          if (r == p || r == q) continue;
          evals = checked_add(evals, 1);
          real_t d = q_relief + p_delta;
          for (int i = 0; i < g.ncon; ++i) {
            d += std::max(0.0, ctx.load_with(r, i, wu[i]) - 1.0) -
                 std::max(0.0, ctx.overload(r, i) - 1.0);
          }
          if (d < best_d - kEps) {
            best_d = d;
            best_u = u;
            best_r = r;
          }
        }
        if (evals >= eval_budget) break;
      }
      if (best_u >= 0) {
        ctx.move(v, where[to_size(best_u)]);
        ctx.move(best_u, best_r);
        relays = checked_add(relays, 1);
        changed = true;
      }
    }
  }
  return relays;
}

/// Summed relative overload over all (part, constraint) pairs — the
/// potential both descent stages minimize. Zero iff feasible.
real_t total_overload(const Graph& g, const KWayContext& ctx, idx_t nparts) {
  real_t t = 0.0;
  for (idx_t p = 0; p < nparts; ++p) {
    for (int i = 0; i < g.ncon; ++i) {
      t += std::max(0.0, ctx.overload(p, i) - 1.0);
    }
  }
  return t;
}

/// Alternate single-move and pairwise descent until neither improves (or
/// feasibility is reached). The two escape different deadlocks: a move
/// needs a destination with joint room, a swap only needs a profitable
/// exchange.
void overload_sum_escape(const Graph& g, KWayContext& ctx, idx_t nparts,
                         const std::vector<idx_t>& where, sum_t* moves,
                         sum_t* swaps) {
  for (int round = 0; round < 8; ++round) {
    const sum_t m = overload_descent(g, ctx, nparts, where);
    *moves = checked_add(*moves, m);
    if (ctx.feasible()) break;
    const sum_t s = swap_descent(g, ctx, where);
    *swaps = checked_add(*swaps, s);
    if (ctx.feasible()) break;
    sum_t relays = 0;
    if (m == 0 && s == 0) {
      relays = relay_descent(g, ctx, nparts, where);
      *moves = checked_add(*moves, checked_mul(2, relays));
    }
    if (ctx.feasible() || (m == 0 && s == 0 && relays == 0)) break;
  }
}

/// One level of the partition-restricted hierarchy.
struct VLevel {
  Graph graph;
  std::vector<idx_t> cmap;
};

/// Serial greedy heavy-edge matching restricted to same-part pairs:
/// ascending vertex order, heaviest incident edge, smaller-id tie-break.
/// Contracting it never merges across the cut, so the current partition
/// carries down to the coarse graph exactly (same cut, same part weights).
idx_t restricted_match(const Graph& g, const std::vector<idx_t>& where,
                       std::vector<idx_t>& match, std::vector<idx_t>& cmap) {
  match.assign(to_size(g.nvtxs), -1);
  for (idx_t v = 0; v < g.nvtxs; ++v) {
    if (match[to_size(v)] >= 0) continue;
    idx_t best = -1;
    wgt_t best_w = -1;
    for (idx_t e = g.xadj[to_size(v)]; e < g.xadj[to_size(v + 1)]; ++e) {
      const idx_t u = g.adjncy[to_size(e)];
      if (u == v || match[to_size(u)] >= 0) continue;
      if (where[to_size(u)] != where[to_size(v)]) continue;
      const wgt_t w = g.adjwgt[to_size(e)];
      if (w > best_w || (w == best_w && (best < 0 || u < best))) {
        best_w = w;
        best = u;
      }
    }
    match[to_size(v)] = best >= 0 ? best : v;
    if (best >= 0) match[to_size(best)] = v;
  }
  return build_coarse_map(g, match, cmap);
}

/// One partition-restricted V-cycle (Sanders/Schulz iterated multilevel):
/// re-coarsen merging only same-part vertices (the partition projects to
/// every level exactly), rebalance the coarsest problem — where a single
/// move shifts a whole cluster, escaping granularity deadlocks the finest
/// level cannot — and project back up with per-level refinement. Serial.
/// Returns false when the graph would not shrink (nothing to do).
bool run_vcycle(const Graph& g, idx_t nparts, std::vector<idx_t>& where,
                const std::vector<real_t>& ub, Rng& rng,
                const std::vector<real_t>* tpwgts, TraceRecorder* trace,
                InvariantAuditor* audit) {
  // Restricted matching never merges across parts, so the coarse graph
  // keeps >= nparts vertices; a floor above nparts would refuse to engage
  // exactly on the tiny tight instances that need cluster-granularity
  // moves the most (169 vertices / 64 parts).
  const idx_t coarsen_to = std::max<idx_t>(nparts, 32);
  std::vector<VLevel> levels;
  std::vector<std::vector<idx_t>> parts;  // partition per coarse level
  std::vector<idx_t> match;
  std::vector<idx_t> cmap;
  const Graph* cur = &g;
  const std::vector<idx_t>* cur_where = &where;
  while (cur->nvtxs > coarsen_to &&
         levels.size() < 40) {
    const idx_t nc = restricted_match(*cur, *cur_where, match, cmap);
    // Same-part matchings stall earlier than free ones (parts are small
    // near the end); stop once a level stops shrinking meaningfully.
    if (static_cast<real_t>(nc) >
        0.98 * static_cast<real_t>(cur->nvtxs)) {
      break;
    }
    VLevel lvl;
    lvl.graph = contract_graph(*cur, cmap, nc);
    lvl.cmap = cmap;
    std::vector<idx_t> cwhere(to_size(nc), 0);
    for (idx_t v = 0; v < cur->nvtxs; ++v) {
      cwhere[to_size(cmap[to_size(v)])] = (*cur_where)[to_size(v)];
    }
    levels.push_back(std::move(lvl));
    parts.push_back(std::move(cwhere));
    cur = &levels.back().graph;
    cur_where = &parts.back();
  }
  if (levels.empty()) return false;

  // Coarsest problem: balance + greedy relief + swaps + refine. Clusters
  // move as units here, which is exactly the strength single-vertex moves
  // at the finest level lack.
  {
    Graph& cg = levels.back().graph;
    std::vector<idx_t>& cw = parts.back();
    kway_balance(cg, nparts, cw, ub, rng, tpwgts, trace, audit);
    KWayContext cctx(cg, nparts, cw, ub, tpwgts);
    greedy_episodes(cg, cctx, nparts, cw, nullptr);
    if (!cctx.feasible()) swap_escape(cg, cctx, nparts, cw);
    if (!cctx.feasible()) {
      sum_t cm = 0;
      sum_t cs = 0;
      overload_sum_escape(cg, cctx, nparts, cw, &cm, &cs);
    }
    kway_refine(cg, nparts, cw, ub, /*max_passes=*/4, rng, nullptr, tpwgts,
                trace, audit, nullptr, nullptr);
  }

  // Project up, refining at every level so the cut recovers while the
  // balance gained at the coarse levels is preserved by the refiner's own
  // feasibility handling.
  for (std::size_t l = levels.size(); l-- > 0;) {
    const Graph& fine_g = l == 0 ? g : levels[l - 1].graph;
    std::vector<idx_t>& fine_w = l == 0 ? where : parts[l - 1];
    project_partition(levels[l].cmap, parts[l], fine_w);
    kway_refine(fine_g, nparts, fine_w, ub, /*max_passes=*/2, rng, nullptr,
                tpwgts, trace, audit, nullptr, nullptr);
  }
  return true;
}

}  // namespace

std::vector<real_t> min_feasible_ubvec(const Graph& g, idx_t nparts,
                                       const std::vector<real_t>* tpwgts) {
  std::vector<real_t> bounds(to_size(std::max(g.ncon, 1)), 1.0);
  if (nparts <= 1 || g.nvtxs <= 0) return bounds;

  real_t max_frac = 1.0 / static_cast<real_t>(nparts);
  bool uniform = true;
  if (tpwgts != nullptr && !tpwgts->empty()) {
    max_frac = *std::max_element(tpwgts->begin(), tpwgts->end());
    for (const real_t f : *tpwgts) {
      if (f > 1.0 / static_cast<real_t>(nparts) + kEps ||
          f < 1.0 / static_cast<real_t>(nparts) - kEps) {
        uniform = false;
      }
    }
  }

  // Count pigeonhole: some part holds at least h vertices.
  const idx_t h = (g.nvtxs + nparts - 1) / nparts;
  std::vector<wgt_t> w(to_size(g.nvtxs));
  for (int i = 0; i < g.ncon; ++i) {
    const sum_t tv = g.tvwgt[to_size(i)];
    if (tv <= 0) continue;
    const real_t denom = max_frac * static_cast<real_t>(tv);

    wgt_t wmax = 0;
    for (idx_t v = 0; v < g.nvtxs; ++v) {
      w[to_size(v)] = g.weight(v, i);
      wmax = std::max(wmax, w[to_size(v)]);
    }
    // Heaviest vertex: some part carries it whole.
    bounds[to_size(i)] =
        std::max(bounds[to_size(i)], static_cast<real_t>(wmax) / denom);

    // Count pigeonhole: the h co-resident vertices weigh at least the sum
    // of the h smallest.
    if (h > 1) {
      std::nth_element(
          w.begin(),
          w.begin() + static_cast<std::ptrdiff_t>(to_size(h) - 1), w.end());
      sum_t smallest = 0;
      for (idx_t j = 0; j < h; ++j) {
        smallest = checked_add(smallest, w[to_size(j)]);
      }
      bounds[to_size(i)] =
          std::max(bounds[to_size(i)], static_cast<real_t>(smallest) / denom);
    }

    // Weight pigeonhole (uniform targets, integer weights): some part
    // carries at least ceil(tvwgt/nparts).
    if (uniform) {
      const sum_t per_part =
          checked_add(tv, static_cast<sum_t>(nparts - 1)) /
          static_cast<sum_t>(nparts);
      bounds[to_size(i)] = std::max(
          bounds[to_size(i)],
          static_cast<real_t>(per_part) * static_cast<real_t>(nparts) /
              static_cast<real_t>(tv));
    }
  }
  return bounds;
}

std::vector<real_t> effective_ubvec(const Graph& g, const Options& opts) {
  const std::vector<real_t>* tp =
      opts.tpwgts.empty() ? nullptr : &opts.tpwgts;
  std::vector<real_t> eff = min_feasible_ubvec(g, opts.nparts, tp);
  for (int i = 0; i < g.ncon; ++i) {
    eff[to_size(i)] = std::max(eff[to_size(i)], opts.ub_for(i));
  }
  return eff;
}

bool rebalance_partition(const Graph& g, idx_t nparts,
                         std::vector<idx_t>& where,
                         const std::vector<real_t>& ub, Rng& rng,
                         const std::vector<real_t>* tpwgts,
                         RebalanceStats* stats, TraceRecorder* trace,
                         InvariantAuditor* audit, FlightRecorder* flight,
                         int max_vcycles) {
  KWayContext ctx(g, nparts, where, ub, tpwgts);
  RebalanceStats local;
  RebalanceStats& st = stats != nullptr ? *stats : local;
  st = RebalanceStats{};
  if (ctx.feasible()) {
    st.feasible = true;
    st.max_overload = ctx.max_overload();
    return true;
  }

  TraceSpan span(trace, "rebalance");

  // Best-state tracking: the pass must never return a worse assignment
  // than its input. Better = feasible first, then lower max overload,
  // then lower cut.
  std::vector<idx_t> best_where = where;
  real_t best_overload = ctx.max_overload();
  real_t best_sum = total_overload(g, ctx, nparts);
  sum_t best_cut = edge_cut(g, where);
  bool best_feasible = false;
  auto note_state = [&]() {
    const real_t ov = ctx.max_overload();
    const real_t tsum = total_overload(g, ctx, nparts);
    const bool feas = ctx.feasible();
    const sum_t cut = edge_cut(g, where);
    const bool better =
        (feas && !best_feasible) ||
        (feas == best_feasible &&
         (ov < best_overload - kEps ||
          (ov <= best_overload + kEps &&
           (tsum < best_sum - kEps ||
            (tsum <= best_sum + kEps && cut < best_cut)))));
    if (better) {
      best_where = where;
      best_overload = ov;
      best_sum = tsum;
      best_cut = cut;
      best_feasible = feas;
    }
  };

  st.moves = checked_add(st.moves,
                         greedy_episodes(g, ctx, nparts, where, &st.episodes));
  if (!ctx.feasible()) {
    st.swaps = checked_add(st.swaps, swap_escape(g, ctx, nparts, where));
  }
  if (!ctx.feasible()) {
    overload_sum_escape(g, ctx, nparts, where, &st.moves, &st.swaps);
  }
  note_state();

  for (int cycle = 0; cycle < max_vcycles && !ctx.feasible(); ++cycle) {
    const real_t before = ctx.max_overload();
    const real_t before_sum = total_overload(g, ctx, nparts);
    if (!run_vcycle(g, nparts, where, ub, rng, tpwgts, trace, audit)) break;
    ctx.reload();
    ++st.vcycles;
    st.moves = checked_add(
        st.moves, greedy_episodes(g, ctx, nparts, where, &st.episodes));
    if (!ctx.feasible()) {
      st.swaps = checked_add(st.swaps, swap_escape(g, ctx, nparts, where));
    }
    if (!ctx.feasible()) {
      overload_sum_escape(g, ctx, nparts, where, &st.moves, &st.swaps);
    }
    note_state();
    // A full cycle that moved neither the peak nor the summed overload
    // will not move them next time either (same deterministic pipeline,
    // same fixed point).
    if (!ctx.feasible() && ctx.max_overload() >= before - kEps &&
        total_overload(g, ctx, nparts) >= before_sum - kEps) {
      break;
    }
  }

  // Randomized kicks: the stages above are monotone descents, so a joint
  // local minimum stops all of them at once. Perturb a few vertices out
  // of the overloaded parts (seeded stream — deterministic and
  // thread-invariant) and re-descend; best-state tracking makes a failed
  // kick free. Small graphs only: elsewhere the V-cycle has the leverage.
  if (!ctx.feasible() && g.nvtxs <= kSwapMaxVtxs) {
    constexpr int kKickRounds = 16;
    const int kick_moves = std::max<int>(4, g.nvtxs / 32);
    std::vector<idx_t> movable;
    for (int kick = 0; kick < kKickRounds && !ctx.feasible(); ++kick) {
      movable.clear();
      for (idx_t v = 0; v < g.nvtxs; ++v) {
        const idx_t q = where[to_size(v)];
        for (int i = 0; i < g.ncon; ++i) {
          if (ctx.overload(q, i) > 1.0 + kEps) {
            movable.push_back(v);
            break;
          }
        }
      }
      if (movable.empty()) break;
      for (int j = 0; j < kick_moves; ++j) {
        const idx_t v = movable[to_size(static_cast<idx_t>(
            rng.next_below(static_cast<std::uint64_t>(movable.size()))))];
        const idx_t to = static_cast<idx_t>(
            rng.next_below(static_cast<std::uint64_t>(nparts)));
        if (to == where[to_size(v)] || !ctx.can_leave(where[to_size(v)])) {
          continue;
        }
        ctx.move(v, to);
        st.moves = checked_add(st.moves, 1);
      }
      st.moves = checked_add(
          st.moves, greedy_episodes(g, ctx, nparts, where, &st.episodes));
      overload_sum_escape(g, ctx, nparts, where, &st.moves, &st.swaps);
      note_state();
    }
  }

  // Leave the best state reached, then resync the context for the audit
  // seam and the reported stats.
  note_state();
  if (best_where != where) {
    where = best_where;
    ctx.reload();
  }

  if (audit != nullptr && audit->boundaries()) {
    audit->check_kway_state(g, where, nparts, ctx.pwgts(), &ctx.vcounts(),
                            "rebalance");
  }

  st.feasible = ctx.feasible();
  st.max_overload = ctx.max_overload();

  if (span.enabled()) {
    trace_count(trace, "rebalance.moves", st.moves);
    trace_count(trace, "rebalance.swaps", st.swaps);
    trace_count(trace, "rebalance.episodes", st.episodes);
    trace_count(trace, "rebalance.vcycles", st.vcycles);
    trace_count(trace, st.feasible ? "rebalance.feasible"
                                   : "rebalance.infeasible");
    span.arg({"moves", st.moves});
    span.arg({"swaps", st.swaps});
    span.arg({"episodes", st.episodes});
    span.arg({"vcycles", st.vcycles});
    span.arg({"max_overload", st.max_overload});
    span.arg({"feasible", static_cast<std::int64_t>(st.feasible ? 1 : 0)});
  }
  if (flight != nullptr) {
    FlightSample fs;
    fs.stage = FlightSample::Stage::kRebalance;
    fs.nvtxs = g.nvtxs;
    fs.nedges = g.nedges();
    fs.moves = checked_narrow<idx_t>(std::min<sum_t>(
        st.moves, static_cast<sum_t>(std::numeric_limits<idx_t>::max())));
    fs.worst_imbalance = st.max_overload;
    fs.feasible = st.feasible ? 1 : 0;
    flight->record(fs);
  }
  return st.feasible;
}

}  // namespace mcgp
