#include "core/rb_driver.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "core/audit.hpp"
#include "core/balance2way.hpp"
#include "core/initpart.hpp"
#include "core/kway_refine.hpp"
#include "core/project.hpp"
#include "core/rebalance.hpp"
#include "core/refine2way.hpp"
#include "graph/graph_ops.hpp"
#include "graph/metrics.hpp"
#include "support/flight_recorder.hpp"
#include "support/perf_counters.hpp"
#include "support/trace.hpp"

namespace mcgp {

namespace {

idx_t bisect_coarsen_to(const Options& opts, int ncon) {
  if (opts.coarsen_to > 0) return opts.coarsen_to;
  return std::max<idx_t>(100, 30 * ncon);
}

/// Both sides must be populated when the graph has >= 2 vertices;
/// a degenerate one-sided bisection would create empty parts downstream.
void ensure_nonempty_sides(const Graph& g, std::vector<idx_t>& where) {
  if (g.nvtxs < 2) return;
  idx_t count0 = 0;
  for (idx_t v = 0; v < g.nvtxs; ++v) {
    if (where[to_size(v)] == 0) ++count0;
  }
  if (count0 > 0 && count0 < g.nvtxs) return;
  const int empty = count0 == 0 ? 0 : 1;
  // Move the lightest vertex (smallest max normalized component) over.
  idx_t best = 0;
  real_t best_key = 1e300;
  for (idx_t v = 0; v < g.nvtxs; ++v) {
    real_t mx = 0.0;
    for (int i = 0; i < g.ncon; ++i) {
      mx = std::max(mx, static_cast<real_t>(g.weight(v, i)) *
                            g.invtvwgt[to_size(i)]);
    }
    if (mx < best_key) {
      best_key = mx;
      best = v;
    }
  }
  where[to_size(best)] = empty;
}

/// Sum of target fractions of parts [part0, part0 + k).
real_t target_sum(const std::vector<real_t>& tpwgts, idx_t part0, idx_t k) {
  if (tpwgts.empty()) return static_cast<real_t>(k);
  real_t s = 0;
  for (idx_t p = part0; p < part0 + k; ++p) s += tpwgts[to_size(p)];
  return s;
}

/// Shared, immutable-per-run state threaded through the RB recursion.
struct RbContext {
  const Options& opts;
  const std::vector<real_t>& level_ub;
  std::vector<idx_t>& out_part;  ///< subtrees write disjoint entries
  std::uint64_t root_seed = 0;
  ThreadPool* pool = nullptr;        ///< null = fully serial
  WorkspacePool* wspool = nullptr;
  PhaseTimes* phases = nullptr;
};

void rb_recurse(const RbContext& ctx, const Graph& sub,
                const std::vector<idx_t>& local_to_global, idx_t k,
                idx_t part0, MlBisectStats* stats) {
  if (sub.nvtxs == 0) return;
  if (k <= 1) {
    for (const idx_t gv : local_to_global) {
      ctx.out_part[to_size(gv)] = part0;
    }
    return;
  }
  if (k >= sub.nvtxs) {
    // Fewer vertices than requested parts: spread them one per part.
    for (idx_t v = 0; v < sub.nvtxs; ++v) {
      ctx.out_part[to_size(
          local_to_global[to_size(v)])] = part0 + (v % k);
    }
    return;
  }

  TraceSpan span(ctx.opts.trace, "rb.split");
  if (span.enabled()) {
    span.arg({"k", k});
    span.arg({"part0", part0});
    span.arg({"nvtxs", sub.nvtxs});
  }

  // Private RNG stream for this subproblem. (part0, k) uniquely names a
  // node of the recursion tree (children own disjoint part ranges), so
  // every subtree computes the same bisection regardless of the order or
  // thread the scheduler runs it on.
  Rng rng(mix_seed(mix_seed(ctx.root_seed, static_cast<std::uint64_t>(part0)),
                   static_cast<std::uint64_t>(k)));

  const idx_t k_left = (k + 1) / 2;
  BisectionTargets targets;
  // With explicit per-part targets the split point is the fraction of the
  // subtree's total target mass owned by the left parts.
  targets.f0 = target_sum(ctx.opts.tpwgts, part0, k_left) /
               target_sum(ctx.opts.tpwgts, part0, k);
  targets.ub = ctx.level_ub;

  Graph half[2];
  std::vector<idx_t> half_to_global[2];
  {
    // Scratch is leased only for this serial stretch and returned before
    // any task boundary: wait() below may run OTHER queued tasks on this
    // thread, and those must be free to lease the same workspace.
    WorkspacePool::Lease lease = ctx.wspool->acquire();
    Workspace& ws = *lease;

    std::vector<idx_t> where;
    multilevel_bisect(sub, where, targets, ctx.opts, rng, stats, ctx.phases,
                      ctx.pool, &ws, ctx.wspool);
    ensure_nonempty_sides(sub, where);

    std::vector<char>& select = ws.select;
    select.assign(to_size(sub.nvtxs), 0);
    for (int side = 0; side < 2; ++side) {
      for (idx_t v = 0; v < sub.nvtxs; ++v) {
        select[to_size(v)] =
            where[to_size(v)] == side ? 1 : 0;
      }
      std::vector<idx_t> sub_to_parent;
      half[side] = induced_subgraph(sub, select, sub_to_parent, &ws);
      half_to_global[side].resize(sub_to_parent.size());
      for (std::size_t i = 0; i < sub_to_parent.size(); ++i) {
        half_to_global[side][i] =
            local_to_global[to_size(sub_to_parent[i])];
      }
    }
  }

  // Fork: side 1 goes to the pool (or runs inline when there is none),
  // side 0 runs here. Both halves live on this frame, which outlives the
  // tasks because wait() joins them before returning.
  TaskGroup group(ctx.pool);
  group.run([&ctx, &half, &half_to_global, k, k_left, part0] {
    rb_recurse(ctx, half[1], half_to_global[1], k - k_left, part0 + k_left,
               nullptr);
  });
  rb_recurse(ctx, half[0], half_to_global[0], k_left, part0, nullptr);
  group.wait();
}

}  // namespace

sum_t multilevel_bisect(const Graph& g, std::vector<idx_t>& where,
                        const BisectionTargets& targets, const Options& opts,
                        Rng& rng, MlBisectStats* stats, PhaseTimes* phases,
                        ThreadPool* pool, Workspace* ws,
                        WorkspacePool* wspool) {
  const idx_t ct = bisect_coarsen_to(opts, g.ncon);

  PhaseTimes local_phases;
  PhaseTimes& pt = phases != nullptr ? *phases : local_phases;

  TraceSpan bisect_span(opts.trace, "bisect");

  Hierarchy h;
  {
    ScopedPhase sp(pt, "coarsen");
    CoarsenParams cp;
    cp.coarsen_to = ct;
    cp.scheme = opts.matching;
    cp.min_reduction = opts.min_coarsen_reduction;
    cp.trace = opts.trace;
    cp.audit = opts.audit;
    cp.flight = opts.flight;
    cp.profile = opts.profile;
    cp.pool = pool;
    cp.wspool = wspool;
    h = coarsen_graph(g, cp, rng, ws);
  }

  const Graph& coarsest = h.coarsest();
  if (stats != nullptr) {
    stats->levels = h.num_levels();
    stats->coarsest_nvtxs = coarsest.nvtxs;
  }

  std::vector<idx_t> cwhere;
  {
    ScopedPhase sp(pt, "initpart");
    ProfScope ps(opts.profile, "initpart");
    ps.work(coarsest.nedges(), coarsest.nvtxs);
    init_bisection(coarsest, cwhere, targets, opts.init_scheme,
                   opts.init_trials, opts.queue_policy, rng, opts.trace,
                   pool, opts.audit, opts.profile);
  }

  sum_t cut = 0;
  {
    ScopedPhase sp(pt, "refine");
    std::vector<idx_t> local_proj;
    std::vector<idx_t>& proj = ws != nullptr ? ws->proj : local_proj;
    // Uncoarsen: levels[l].cmap maps level l to level l+1 (0 = finest).
    for (int l = h.num_levels(); l >= 0; --l) {
      const Graph& cur = h.graph_at(l);
      if (l < h.num_levels()) {
        const std::vector<idx_t>& cmap =
            h.levels[to_size(l)].cmap;
        project_partition(cmap, cwhere, proj);
        if (opts.audit != nullptr && opts.audit->boundaries()) {
          // cwhere still holds the coarse assignment; proj the projection.
          opts.audit->check_projection(cur, h.graph_at(l + 1), cmap, cwhere,
                                       proj, "rb.uncoarsen");
        }
        std::swap(cwhere, proj);  // ping-pong: both buffers stay warm
      }
      TraceSpan lvl(opts.trace, "uncoarsen.level");
      ProfScope ps(opts.profile, "refine2way", l);
      ps.work(cur.nedges(), cur.nvtxs);
      balance_2way(cur, cwhere, targets, rng, opts.audit);
      cut = refine_2way(cur, cwhere, targets, opts.queue_policy,
                        opts.refine_passes, opts.fm_move_limit, rng,
                        nullptr, opts.trace, opts.audit, opts.flight);
      ps.finish();
      if (opts.flight != nullptr) {
        opts.flight->sample_memory();
        FlightSample fs;
        fs.stage = FlightSample::Stage::kUncoarsen2Way;
        fs.level = l;
        fs.ncon = cur.ncon;
        fs.nvtxs = cur.nvtxs;
        fs.nedges = cur.nedges();
        fs.cut = cut;
        const std::vector<real_t> lb = imbalance(cur, cwhere, 2);
        for (int i = 0; i < cur.ncon && i < kMaxNcon; ++i) {
          fs.imbalance[i] = lb[to_size(i)];
          fs.worst_imbalance = std::max(fs.worst_imbalance, lb[to_size(i)]);
        }
        opts.flight->record(fs);
      }
      if (lvl.enabled()) {
        BisectionBalance bal;
        bal.init(cur, cwhere, targets);
        lvl.arg({"level", l});
        lvl.arg({"nvtxs", cur.nvtxs});
        lvl.arg({"nedges", cur.nedges()});
        lvl.arg({"cut", cut});
        lvl.arg({"potential", bal.potential()});
      }
    }
  }

  where = std::move(cwhere);
  ensure_nonempty_sides(g, where);
  cut = compute_cut_2way(g, where);
  if (stats != nullptr) stats->cut = cut;
  if (bisect_span.enabled()) {
    bisect_span.arg({"nvtxs", g.nvtxs});
    bisect_span.arg({"levels", h.num_levels()});
    bisect_span.arg({"coarsest_nvtxs", coarsest.nvtxs});
    bisect_span.arg({"cut", cut});
  }
  return cut;
}

std::vector<idx_t> partition_recursive_bisection(const Graph& g,
                                                 const Options& opts, Rng& rng,
                                                 PhaseTimes* phases,
                                                 MlBisectStats* top_stats,
                                                 ThreadPool* pool) {
  const idx_t k = std::max<idx_t>(opts.nparts, 1);
  std::vector<idx_t> part(to_size(g.nvtxs), 0);
  if (k == 1 || g.nvtxs == 0) return part;

  std::vector<real_t> ub(to_size(g.ncon));
  for (int i = 0; i < g.ncon; ++i) ub[to_size(i)] = opts.ub_for(i);
  const int depth =
      static_cast<int>(std::ceil(std::log2(static_cast<double>(k))));
  const std::vector<real_t> level_ub = per_bisection_ub(ub, depth);

  std::vector<idx_t> identity(to_size(g.nvtxs));
  for (idx_t v = 0; v < g.nvtxs; ++v) identity[to_size(v)] = v;

  std::optional<ThreadPool> local_pool;
  if (pool == nullptr && opts.num_threads > 1) {
    local_pool.emplace(opts.num_threads);
    pool = &*local_pool;
  }

  WorkspacePool wspool;
  RbContext ctx{opts,     level_ub, part,  /*root_seed=*/rng.next_u64(),
                pool,     &wspool,  phases};
  // The root call fills top_stats from the first (top) bisection's real
  // hierarchy — no separate probe coarsening needed.
  rb_recurse(ctx, g, identity, k, 0, top_stats);

  // Balance fix-up: nested bisection errors multiply, so for large k the
  // assembled k-way partition can land outside the overall tolerance even
  // when every bisection was close to its own target. When that happens,
  // repair with the k-way balancer + a short greedy refinement (cheap, and
  // a no-op whenever RB already met the tolerance).
  const std::vector<real_t>* tp =
      opts.tpwgts.empty() ? nullptr : &opts.tpwgts;
  if (!kway_feasible(g, compute_part_weights(g, part, k), k, ub, tp)) {
    trace_count(opts.trace, "rb.fixup");
    ProfScope ps(opts.profile, "rb.fixup");
    ps.work(g.nedges(), g.nvtxs);
    kway_balance(g, k, part, ub, rng, tp, opts.trace, opts.audit);
    KWayExec kexec;
    kexec.pool = pool;
    kexec.wspool = &wspool;
    kexec.profile = opts.profile;
    kexec.level = 0;
    kway_refine(g, k, part, ub, /*max_passes=*/3, rng, nullptr, tp,
                opts.trace, opts.audit, opts.flight, &kexec);
    // Still overloaded: escalate to the dedicated rebalancer (greedy
    // relief moves, swaps on small graphs, bounded V-cycles). Serial, and
    // `part` is already thread-invariant here, so determinism holds.
    if (!kway_feasible(g, compute_part_weights(g, part, k), k, ub, tp)) {
      rebalance_partition(g, k, part, ub, rng, tp, nullptr, opts.trace,
                          opts.audit, opts.flight);
    }
  }
  if (opts.flight != nullptr) {
    // All leases are back (rb_recurse joined its tasks), so the pool's
    // footprint is a stable high-water observation.
    opts.flight->note_workspace(wspool.footprint_bytes(), wspool.size());
  }
  return part;
}

}  // namespace mcgp
