// Initial partitioning: construct a bisection of the (small) coarsest
// graph that is balanced in all m constraints.
//
// Two constructions, combined best-of-N:
//
//  * Greedy graph growing (GGG): grow side 0 from a random seed, always
//    absorbing the frontier vertex with the highest edge-gain whose
//    addition keeps every constraint of side 0 within its target share.
//    Produces connected, low-cut sides but can stall on balance.
//
//  * Multi-dimensional LPT bin packing: place vertices in decreasing order
//    of their largest normalized weight component onto the side that
//    minimizes the resulting balance potential. Ignores edges entirely but
//    yields excellent balance, which the paper notes is critical — an
//    initial partitioning more than ~20% imbalanced is unlikely to be
//    repaired during multilevel refinement.
//
// Every trial is polished with an explicit balancing pass plus a short FM
// refinement; the best trial by (feasible, cut, potential) wins.
#pragma once

#include <vector>

#include "core/bisection.hpp"
#include "core/config.hpp"
#include "support/random.hpp"
#include "support/thread_pool.hpp"

namespace mcgp {

class InvariantAuditor;
class Profiler;

/// Single-construction entry points (exposed for tests and ablations).
void grow_bisection(const Graph& g, std::vector<idx_t>& where,
                    const BisectionTargets& targets, Rng& rng);
void binpack_bisection(const Graph& g, std::vector<idx_t>& where,
                       const BisectionTargets& targets, Rng& rng);

/// Best-of-`trials` initial bisection with polishing. Fills `where`.
/// Returns the cut of the selected bisection. A non-null `trace` records
/// an "initpart" span with one "initpart.trial" instant per attempt.
///
/// Each trial draws from its own RNG stream derived from one value taken
/// off `rng`, and the best trial is selected by a serial reduction in
/// trial order — so the result is a pure function of the rng state and is
/// identical whether the trials run serially or concurrently on `pool`.
/// A non-null `profile` attributes each trial's on-CPU time to the
/// "initpart" bucket (aux scopes: the caller's enclosing scope keeps the
/// wall time, trials contribute counters and thread identity).
sum_t init_bisection(const Graph& g, std::vector<idx_t>& where,
                     const BisectionTargets& targets, InitScheme scheme,
                     int trials, QueuePolicy policy, Rng& rng,
                     TraceRecorder* trace = nullptr,
                     ThreadPool* pool = nullptr,
                     InvariantAuditor* audit = nullptr,
                     Profiler* profile = nullptr);

}  // namespace mcgp
