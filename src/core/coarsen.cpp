#include "core/coarsen.hpp"

#include <algorithm>
#include <cstddef>
#include <memory>

#include "core/audit.hpp"
#include "support/flight_recorder.hpp"
#include "support/perf_counters.hpp"
#include "support/thread_pool.hpp"
#include "support/trace.hpp"

namespace mcgp {

namespace {

/// Coarse-vertex range per parallel contraction chunk, and the minimum
/// coarse size worth chunking for (below it the merge bookkeeping costs
/// more than the rows).
constexpr idx_t kContractChunk = 4096;

/// Append the coarse adjacency rows of coarse vertices [b, e) to
/// `adjncy`/`adjwgt`, recording each row's END as a size relative to the
/// start of the range into xadj_end[cv]. `pos` is a dense all--1 map of
/// size >= ncoarse; every touched entry is restored. This is THE row
/// builder: the serial path runs it once over [0, ncoarse) straight into
/// the output graph, the chunked path runs it per range into chunk-local
/// buffers — same walk, so the merged output is bit-identical.
void build_rows(const Graph& g, const std::vector<idx_t>& cmap,
                const std::vector<idx_t>& first,
                const std::vector<idx_t>& second, idx_t b, idx_t e,
                std::vector<idx_t>& pos, std::vector<idx_t>& adjncy,
                std::vector<wgt_t>& adjwgt, idx_t* xadj_end) {
  for (idx_t cv = b; cv < e; ++cv) {
    const idx_t row_start = static_cast<idx_t>(adjncy.size());
    for (const idx_t v : {first[to_size(cv)],
                          second[to_size(cv)]}) {
      if (v < 0) continue;
      for (idx_t ge = g.xadj[to_size(v)]; ge < g.xadj[to_size(v + 1)]; ++ge) {
        const idx_t cu = cmap[to_size(g.adjncy[to_size(ge)])];
        if (cu == cv) continue;  // edge collapsed inside the coarse vertex
        const idx_t p = pos[to_size(cu)];
        if (p >= 0) {
          adjwgt[to_size(p)] += g.adjwgt[to_size(ge)];
        } else {
          pos[to_size(cu)] = static_cast<idx_t>(adjncy.size());
          adjncy.push_back(cu);
          adjwgt.push_back(g.adjwgt[to_size(ge)]);
        }
      }
    }
    for (idx_t p = row_start; p < static_cast<idx_t>(adjncy.size()); ++p) {
      pos[to_size(adjncy[to_size(p)])] = -1;
    }
    xadj_end[cv - b] = static_cast<idx_t>(adjncy.size());
  }
}

}  // namespace

Graph contract_graph(const Graph& g, const std::vector<idx_t>& cmap,
                     idx_t ncoarse, Workspace* ws, const ContractExec* exec) {
  Graph c;
  c.nvtxs = ncoarse;
  c.ncon = g.ncon;
  c.vwgt.assign(to_size(ncoarse) * to_size(g.ncon), 0);
  c.xadj.assign(to_size(ncoarse) + 1, 0);

  // Invert cmap into constituent lists: every coarse vertex has 1 or 2.
  std::vector<idx_t> local_first, local_second;
  std::vector<idx_t>& first = ws != nullptr ? ws->first : local_first;
  std::vector<idx_t>& second = ws != nullptr ? ws->second : local_second;
  first.assign(to_size(ncoarse), -1);
  second.assign(to_size(ncoarse), -1);
  for (idx_t v = 0; v < g.nvtxs; ++v) {
    const idx_t cv = cmap[to_size(v)];
    if (first[to_size(cv)] < 0) {
      first[to_size(cv)] = v;
    } else {
      second[to_size(cv)] = v;
    }
  }

  ThreadPool* pool = exec != nullptr ? exec->pool : nullptr;
  WorkspacePool* wspool = exec != nullptr ? exec->wspool : nullptr;
  Profiler* profile = exec != nullptr ? exec->profile : nullptr;
  const int level = exec != nullptr ? exec->level : -1;

  // Sum constituent weight vectors from the lists: each chunk writes only
  // its own coarse vertices' weights (disjoint), and per-vertex sums add
  // first then second exactly like the serial fine-vertex sweep did.
  parallel_chunks(pool, ncoarse, kContractChunk, [&](idx_t b, idx_t e) {
    ProfScope aux(profile, "coarsen.contract", level, /*aux=*/true);
    for (idx_t cv = b; cv < e; ++cv) {
      wgt_t* out = &c.vwgt[to_size(cv) * to_size(g.ncon)];
      for (const idx_t v : {first[to_size(cv)],
                            second[to_size(cv)]}) {
        if (v < 0) continue;
        const wgt_t* w = g.weights(v);
        for (int i = 0; i < g.ncon; ++i) out[i] += w[i];
      }
    }
  });

  if (pool == nullptr || ncoarse <= kContractChunk) {
    // Serial rows straight into the output graph.
    c.adjncy.reserve(g.adjncy.size());
    c.adjwgt.reserve(g.adjwgt.size());
    std::vector<idx_t> local_pos;
    if (ws == nullptr) local_pos.assign(to_size(ncoarse), -1);
    std::vector<idx_t>& pos =
        ws != nullptr ? ws->pos_map(to_size(ncoarse))
                      : local_pos;
    build_rows(g, cmap, first, second, 0, ncoarse, pos, c.adjncy, c.adjwgt,
               c.xadj.data() + 1);
  } else {
    // Chunked rows: build each coarse-vertex range into its own buffers
    // (dense map from a workspace lease), then merge at offsets fixed by
    // chunk order. Same rows, same order — bit-identical to serial.
    const idx_t nchunks = (ncoarse + kContractChunk - 1) / kContractChunk;
    std::vector<std::vector<idx_t>> chunk_adjncy(to_size(nchunks));
    std::vector<std::vector<wgt_t>> chunk_adjwgt(to_size(nchunks));
    parallel_chunks(pool, ncoarse, kContractChunk, [&](idx_t b, idx_t e) {
      ProfScope aux(profile, "coarsen.contract", level, /*aux=*/true);
      const idx_t chunk = b / kContractChunk;
      std::vector<idx_t>& adjncy = chunk_adjncy[to_size(chunk)];
      std::vector<wgt_t>& adjwgt = chunk_adjwgt[to_size(chunk)];
      std::vector<idx_t> local_pos;
      std::unique_ptr<WorkspacePool::Lease> lease;
      if (wspool != nullptr) {
        lease = std::make_unique<WorkspacePool::Lease>(wspool->acquire());
      } else {
        local_pos.assign(to_size(ncoarse), -1);
      }
      std::vector<idx_t>& pos = lease != nullptr
                                    ? (*lease)->pos_map(to_size(ncoarse))
                                    : local_pos;
      // Row ends land in c.xadj[b+1 .. e] as range-relative sizes; the
      // serial merge below shifts them to global offsets. Chunks write
      // disjoint xadj slices.
      build_rows(g, cmap, first, second, b, e, pos, adjncy, adjwgt,
                 c.xadj.data() + b + 1);
    });

    std::size_t total = 0;
    std::vector<std::size_t> chunk_base(to_size(nchunks), 0);
    for (idx_t chunk = 0; chunk < nchunks; ++chunk) {
      chunk_base[to_size(chunk)] = total;
      total += chunk_adjncy[to_size(chunk)].size();
    }
    c.adjncy.resize(total);
    c.adjwgt.resize(total);
    parallel_chunks(pool, ncoarse, kContractChunk, [&](idx_t b, idx_t e) {
      ProfScope aux(profile, "coarsen.contract", level, /*aux=*/true);
      const idx_t chunk = b / kContractChunk;
      const std::size_t base = chunk_base[to_size(chunk)];
      const std::vector<idx_t>& adjncy = chunk_adjncy[to_size(chunk)];
      const std::vector<wgt_t>& adjwgt = chunk_adjwgt[to_size(chunk)];
      std::copy(adjncy.begin(), adjncy.end(), c.adjncy.begin() +
                                                  static_cast<std::ptrdiff_t>(
                                                      base));
      std::copy(adjwgt.begin(), adjwgt.end(), c.adjwgt.begin() +
                                                  static_cast<std::ptrdiff_t>(
                                                      base));
      for (idx_t cv = b; cv < e; ++cv) {
        c.xadj[to_size(cv) + 1] += static_cast<idx_t>(base);
      }
    });
  }

  c.finalize();
  return c;
}

Hierarchy coarsen_graph(const Graph& g, const CoarsenParams& params, Rng& rng,
                        Workspace* ws) {
  Hierarchy h;
  h.finest = &g;

  TraceSpan coarsen_span(params.trace, "coarsen");

  std::vector<idx_t> local_match;
  std::vector<idx_t>& match = ws != nullptr ? ws->match : local_match;

  const Graph* cur = &g;
  for (int level = 0; level < params.max_levels; ++level) {
    if (cur->nvtxs <= params.coarsen_to) break;

    TraceSpan sp(params.trace, "coarsen.level");
    MatchingExec mexec;
    mexec.pool = params.pool;
    mexec.profile = params.profile;
    mexec.level = level;
    ProfScope match_scope(params.profile, "coarsen.matching", level);
    match_scope.work(cur->nedges(), cur->nvtxs);
    compute_matching_into(*cur, params.scheme, rng, match, params.trace, ws,
                          &mexec);
    std::vector<idx_t> cmap;  // kept by the hierarchy: allocated fresh
    const idx_t ncoarse = build_coarse_map(*cur, match, cmap);
    match_scope.finish();

    if (sp.enabled()) {
      idx_t singletons = 0;
      for (idx_t v = 0; v < cur->nvtxs; ++v) {
        if (match[to_size(v)] == v) ++singletons;
      }
      sp.arg({"level", level});
      sp.arg({"nvtxs", cur->nvtxs});
      sp.arg({"nedges", cur->nedges()});
      sp.arg({"ncoarse", ncoarse});
      sp.arg({"matched_fraction",
              static_cast<double>(cur->nvtxs - singletons) /
                  static_cast<double>(cur->nvtxs)});
      sp.arg({"reduction", static_cast<double>(ncoarse) /
                               static_cast<double>(cur->nvtxs)});
    }

    // Stop when matching no longer shrinks the graph meaningfully
    // (e.g. star-like coarse graphs where almost nothing matches).
    if (ncoarse >= static_cast<idx_t>(params.min_reduction * cur->nvtxs) &&
        ncoarse > params.coarsen_to) {
      trace_count(params.trace, "coarsen.stalled");
      break;
    }

    ContractExec cexec;
    cexec.pool = params.pool;
    cexec.wspool = params.wspool;
    cexec.profile = params.profile;
    cexec.level = level;
    ProfScope contract_scope(params.profile, "coarsen.contract", level);
    contract_scope.work(cur->nedges(), cur->nvtxs);
    Graph coarse = contract_graph(*cur, cmap, ncoarse, ws, &cexec);
    contract_scope.finish();
    if (params.audit != nullptr && params.audit->boundaries()) {
      params.audit->check_coarse_level(*cur, coarse, cmap, "coarsen.level");
    }
    h.levels.push_back(CoarseLevel{std::move(coarse), std::move(cmap)});
    cur = &h.levels.back().graph;
    trace_count(params.trace, "coarsen.levels");
    if (params.flight != nullptr) {
      params.flight->sample_memory();
      FlightSample fs;
      fs.stage = FlightSample::Stage::kCoarsenLevel;
      fs.level = level + 1;  // level of the graph just built (0 = finest)
      fs.nvtxs = cur->nvtxs;
      fs.nedges = cur->nedges();
      params.flight->record(fs);
    }
  }

  if (coarsen_span.enabled()) {
    coarsen_span.arg({"levels", h.num_levels()});
    coarsen_span.arg({"coarsest_nvtxs", h.coarsest().nvtxs});
  }
  return h;
}

}  // namespace mcgp
