#include "core/coarsen.hpp"

#include <algorithm>

#include "core/audit.hpp"
#include "support/flight_recorder.hpp"
#include "support/perf_counters.hpp"
#include "support/trace.hpp"

namespace mcgp {

Graph contract_graph(const Graph& g, const std::vector<idx_t>& cmap,
                     idx_t ncoarse, Workspace* ws) {
  Graph c;
  c.nvtxs = ncoarse;
  c.ncon = g.ncon;
  c.vwgt.assign(to_size(ncoarse) * to_size(g.ncon), 0);
  c.xadj.assign(to_size(ncoarse) + 1, 0);

  // Sum constituent weight vectors.
  for (idx_t v = 0; v < g.nvtxs; ++v) {
    const idx_t cv = cmap[to_size(v)];
    const wgt_t* w = g.weights(v);
    for (int i = 0; i < g.ncon; ++i) {
      c.vwgt[to_size(cv) * to_size(g.ncon) + to_size(i)] += w[i];
    }
  }

  // Invert cmap into constituent lists: every coarse vertex has 1 or 2.
  std::vector<idx_t> local_first, local_second;
  std::vector<idx_t>& first = ws != nullptr ? ws->first : local_first;
  std::vector<idx_t>& second = ws != nullptr ? ws->second : local_second;
  first.assign(to_size(ncoarse), -1);
  second.assign(to_size(ncoarse), -1);
  for (idx_t v = 0; v < g.nvtxs; ++v) {
    const idx_t cv = cmap[to_size(v)];
    if (first[to_size(cv)] < 0) {
      first[to_size(cv)] = v;
    } else {
      second[to_size(cv)] = v;
    }
  }

  c.adjncy.reserve(g.adjncy.size());
  c.adjwgt.reserve(g.adjwgt.size());

  // Merge adjacency lists with a dense scratch map (position of each coarse
  // neighbor in the row being built, or -1). Every touched entry is reset
  // to -1 after its row, preserving the workspace map's all minus-one
  // invariant across calls.
  std::vector<idx_t> local_pos;
  if (ws == nullptr) local_pos.assign(to_size(ncoarse), -1);
  std::vector<idx_t>& pos =
      ws != nullptr ? ws->pos_map(to_size(ncoarse))
                    : local_pos;
  for (idx_t cv = 0; cv < ncoarse; ++cv) {
    const idx_t row_start = static_cast<idx_t>(c.adjncy.size());
    for (const idx_t v : {first[to_size(cv)],
                          second[to_size(cv)]}) {
      if (v < 0) continue;
      for (idx_t e = g.xadj[to_size(v)]; e < g.xadj[to_size(v + 1)]; ++e) {
        const idx_t cu = cmap[to_size(g.adjncy[to_size(e)])];
        if (cu == cv) continue;  // edge collapsed inside the coarse vertex
        const idx_t p = pos[to_size(cu)];
        if (p >= 0) {
          c.adjwgt[to_size(p)] += g.adjwgt[to_size(e)];
        } else {
          pos[to_size(cu)] = static_cast<idx_t>(c.adjncy.size());
          c.adjncy.push_back(cu);
          c.adjwgt.push_back(g.adjwgt[to_size(e)]);
        }
      }
    }
    for (idx_t e = row_start; e < static_cast<idx_t>(c.adjncy.size()); ++e) {
      pos[to_size(c.adjncy[to_size(e)])] = -1;
    }
    c.xadj[to_size(cv) + 1] = static_cast<idx_t>(c.adjncy.size());
  }

  c.finalize();
  return c;
}

Hierarchy coarsen_graph(const Graph& g, const CoarsenParams& params, Rng& rng,
                        Workspace* ws) {
  Hierarchy h;
  h.finest = &g;

  TraceSpan coarsen_span(params.trace, "coarsen");

  std::vector<idx_t> local_match;
  std::vector<idx_t>& match = ws != nullptr ? ws->match : local_match;

  const Graph* cur = &g;
  for (int level = 0; level < params.max_levels; ++level) {
    if (cur->nvtxs <= params.coarsen_to) break;

    TraceSpan sp(params.trace, "coarsen.level");
    ProfScope match_scope(params.profile, "coarsen.matching", level);
    match_scope.work(cur->nedges(), cur->nvtxs);
    compute_matching_into(*cur, params.scheme, rng, match, params.trace, ws);
    std::vector<idx_t> cmap;  // kept by the hierarchy: allocated fresh
    const idx_t ncoarse = build_coarse_map(*cur, match, cmap);
    match_scope.finish();

    if (sp.enabled()) {
      idx_t singletons = 0;
      for (idx_t v = 0; v < cur->nvtxs; ++v) {
        if (match[to_size(v)] == v) ++singletons;
      }
      sp.arg({"level", level});
      sp.arg({"nvtxs", cur->nvtxs});
      sp.arg({"nedges", cur->nedges()});
      sp.arg({"ncoarse", ncoarse});
      sp.arg({"matched_fraction",
              static_cast<double>(cur->nvtxs - singletons) /
                  static_cast<double>(cur->nvtxs)});
      sp.arg({"reduction", static_cast<double>(ncoarse) /
                               static_cast<double>(cur->nvtxs)});
    }

    // Stop when matching no longer shrinks the graph meaningfully
    // (e.g. star-like coarse graphs where almost nothing matches).
    if (ncoarse >= static_cast<idx_t>(params.min_reduction * cur->nvtxs) &&
        ncoarse > params.coarsen_to) {
      trace_count(params.trace, "coarsen.stalled");
      break;
    }

    ProfScope contract_scope(params.profile, "coarsen.contract", level);
    contract_scope.work(cur->nedges(), cur->nvtxs);
    Graph coarse = contract_graph(*cur, cmap, ncoarse, ws);
    contract_scope.finish();
    if (params.audit != nullptr && params.audit->boundaries()) {
      params.audit->check_coarse_level(*cur, coarse, cmap, "coarsen.level");
    }
    h.levels.push_back(CoarseLevel{std::move(coarse), std::move(cmap)});
    cur = &h.levels.back().graph;
    trace_count(params.trace, "coarsen.levels");
    if (params.flight != nullptr) {
      params.flight->sample_memory();
      FlightSample fs;
      fs.stage = FlightSample::Stage::kCoarsenLevel;
      fs.level = level + 1;  // level of the graph just built (0 = finest)
      fs.nvtxs = cur->nvtxs;
      fs.nedges = cur->nedges();
      params.flight->record(fs);
    }
  }

  if (coarsen_span.enabled()) {
    coarsen_span.arg({"levels", h.num_levels()});
    coarsen_span.arg({"coarsest_nvtxs", h.coarsest().nvtxs});
  }
  return h;
}

}  // namespace mcgp
