#include "core/kway_driver.hpp"

#include <algorithm>

#include "core/audit.hpp"
#include "core/coarsen.hpp"
#include "core/kway_refine.hpp"
#include "core/project.hpp"
#include "core/rb_driver.hpp"
#include "core/rebalance.hpp"
#include "graph/metrics.hpp"
#include "support/flight_recorder.hpp"
#include "support/perf_counters.hpp"
#include "support/trace.hpp"

namespace mcgp {

namespace {

idx_t kway_coarsen_to(const Options& opts, idx_t nparts, int ncon,
                      idx_t nvtxs) {
  if (opts.coarsen_to > 0) return opts.coarsen_to;
  // A somewhat larger coarsest graph than single-constraint kmetis uses:
  // the greedy k-way refinement cannot hill-climb, so initial-partition
  // quality (RB on the coarsest) carries more of the final cut. Capped so
  // large graphs still coarsen deeply.
  return std::max<idx_t>(
      {30 * nparts, 40 * ncon, 200, std::min<idx_t>(nvtxs / 8, 3000)});
}

}  // namespace

std::vector<idx_t> partition_kway(const Graph& g, const Options& opts,
                                  Rng& rng, PhaseTimes* phases,
                                  KWayDriverStats* stats, ThreadPool* pool) {
  const idx_t k = std::max<idx_t>(opts.nparts, 1);
  if (k == 1 || g.nvtxs == 0) {
    return std::vector<idx_t>(to_size(g.nvtxs), 0);
  }

  PhaseTimes local_phases;
  PhaseTimes& pt = phases != nullptr ? *phases : local_phases;

  // All scratch comes from one pool: the serial stretches lease a single
  // workspace below, and the parallel matching / contraction / sweep
  // chunks lease their own, so footprint telemetry sees every buffer.
  WorkspacePool wspool;
  Hierarchy h;
  {
    ScopedPhase sp(pt, "coarsen");
    WorkspacePool::Lease ws = wspool.acquire();
    CoarsenParams cp;
    cp.coarsen_to = kway_coarsen_to(opts, k, g.ncon, g.nvtxs);
    cp.scheme = opts.matching;
    cp.min_reduction = opts.min_coarsen_reduction;
    cp.trace = opts.trace;
    cp.audit = opts.audit;
    cp.flight = opts.flight;
    cp.profile = opts.profile;
    cp.pool = pool;
    cp.wspool = &wspool;
    // The coarsest graph must retain enough vertices to seed k parts.
    cp.coarsen_to = std::max<idx_t>(cp.coarsen_to, 4 * k);
    h = coarsen_graph(g, cp, rng, ws.get());
  }

  if (stats != nullptr) {
    stats->levels = h.num_levels();
    stats->coarsest_nvtxs = h.coarsest().nvtxs;
  }

  // Initial k-way partition of the coarsest graph via recursive bisection,
  // with a slightly tightened tolerance so k-way refinement starts with
  // room to work with.
  std::vector<idx_t> cwhere;
  {
    ScopedPhase sp(pt, "initpart");
    TraceSpan tsp(opts.trace, "initpart.kway");
    ProfScope ps(opts.profile, "initpart");
    ps.work(h.coarsest().nedges(), h.coarsest().nvtxs);
    Options init_opts = opts;
    // The nested recursive bisection of the coarsest graph runs its own
    // coarsen/refine scopes; detach the profiler there so its cost lands
    // in this "initpart" bucket instead of polluting the top hierarchy's
    // per-level coarsen trend with coarsest-graph mini-hierarchies.
    init_opts.profile = nullptr;
    init_opts.nparts = k;
    init_opts.coarsen_to = 0;  // let the bisections pick their own size
    init_opts.ubvec.resize(to_size(g.ncon));
    for (int i = 0; i < g.ncon; ++i) {
      init_opts.ubvec[to_size(i)] =
          std::max<real_t>(1.0 + (opts.ub_for(i) - 1.0) * 0.9, 1.003);
    }
    init_opts.tpwgts = opts.tpwgts;
    cwhere = partition_recursive_bisection(h.coarsest(), init_opts, rng,
                                           nullptr, nullptr, pool);
  }

  std::vector<real_t> ub(to_size(g.ncon));
  for (int i = 0; i < g.ncon; ++i) ub[to_size(i)] = opts.ub_for(i);

  {
    ScopedPhase sp(pt, "refine");
    for (int l = h.num_levels(); l >= 0; --l) {
      const Graph& cur = h.graph_at(l);
      if (l < h.num_levels()) {
        const std::vector<idx_t>& cmap =
            h.levels[to_size(l)].cmap;
        std::vector<idx_t> fine_where;
        project_partition(cmap, cwhere, fine_where);
        if (opts.audit != nullptr && opts.audit->boundaries()) {
          opts.audit->check_projection(cur, h.graph_at(l + 1), cmap, cwhere,
                                       fine_where, "kway.uncoarsen");
        }
        cwhere = std::move(fine_where);
      }
      TraceSpan lvl(opts.trace, "uncoarsen.level");
      // Extra sweeps on the finest graph, where moves are cheapest in
      // balance terms and most plentiful.
      const int passes = l == 0 ? opts.kway_passes + 2 : opts.kway_passes;
      const std::vector<real_t>* tp =
          opts.tpwgts.empty() ? nullptr : &opts.tpwgts;
      ProfScope ps(opts.profile,
                   opts.kway_scheme == KWayRefineScheme::kPriorityQueue
                       ? "kway_refine_pq"
                       : "kway_refine",
                   l);
      ps.work(cur.nedges(), cur.nvtxs);
      sum_t cut;
      if (opts.kway_scheme == KWayRefineScheme::kPriorityQueue) {
        cut = kway_refine_pq(cur, k, cwhere, ub, passes, rng, nullptr, tp,
                             opts.trace, opts.audit, opts.flight);
      } else {
        KWayExec kexec;
        kexec.pool = pool;
        kexec.wspool = &wspool;
        kexec.profile = opts.profile;
        kexec.level = l;
        cut = kway_refine(cur, k, cwhere, ub, passes, rng, nullptr, tp,
                          opts.trace, opts.audit, opts.flight, &kexec);
      }
      ps.finish();
      if (opts.flight != nullptr) {
        opts.flight->sample_memory();
        FlightSample fs;
        fs.stage = FlightSample::Stage::kUncoarsenKWay;
        fs.level = l;
        fs.ncon = cur.ncon;
        fs.nvtxs = cur.nvtxs;
        fs.nedges = cur.nedges();
        fs.cut = cut;
        const std::vector<real_t> lb =
            tp != nullptr ? target_imbalance(cur, cwhere, k, *tp)
                          : imbalance(cur, cwhere, k);
        for (int i = 0; i < cur.ncon && i < kMaxNcon; ++i) {
          fs.imbalance[i] = lb[to_size(i)];
          fs.worst_imbalance = std::max(fs.worst_imbalance, lb[to_size(i)]);
        }
        opts.flight->record(fs);
      }
      if (lvl.enabled()) {
        const std::vector<real_t> lb =
            tp != nullptr ? target_imbalance(cur, cwhere, k, *tp)
                          : imbalance(cur, cwhere, k);
        real_t worst = 1.0;
        for (const real_t x : lb) worst = std::max(worst, x);
        lvl.arg({"level", l});
        lvl.arg({"nvtxs", cur.nvtxs});
        lvl.arg({"nedges", cur.nedges()});
        lvl.arg({"cut", cut});
        lvl.arg({"max_imbalance", worst});
      }
    }
  }

  // The refiner's balancer can exit with residual overload on tight or
  // coarse-granularity instances (the ledger's grid-13x13 k=64 case).
  // Escalate to the dedicated rebalancer: greedy gain-to-relief moves,
  // pairwise swaps on small graphs, then bounded partition-restricted
  // V-cycles. Runs after all parallel phases on a thread-invariant
  // `cwhere` and is itself serial, so determinism is preserved.
  {
    const std::vector<real_t>* tp =
        opts.tpwgts.empty() ? nullptr : &opts.tpwgts;
    if (!kway_feasible(g, part_weights(g, cwhere, k), k, ub, tp)) {
      ScopedPhase sp(pt, "refine");
      ProfScope ps(opts.profile, "rebalance", 0);
      ps.work(g.nedges(), g.nvtxs);
      rebalance_partition(g, k, cwhere, ub, rng, tp, nullptr, opts.trace,
                          opts.audit, opts.flight);
    }
  }

  if (opts.flight != nullptr) {
    opts.flight->note_workspace(wspool.footprint_bytes(), wspool.size());
  }
  return cwhere;
}

}  // namespace mcgp
