#include "core/kway_refine.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "core/audit.hpp"
#include "core/kway_context.hpp"
#include "support/check.hpp"
#include "graph/metrics.hpp"
#include "support/bucket_queue.hpp"
#include "support/flight_recorder.hpp"
#include "support/perf_counters.hpp"
#include "support/thread_pool.hpp"
#include "support/trace.hpp"
#include "support/workspace.hpp"

namespace mcgp {

std::vector<sum_t> compute_part_weights(const Graph& g,
                                        const std::vector<idx_t>& where,
                                        idx_t nparts) {
  return part_weights(g, where, nparts);
}

bool kway_feasible(const Graph& g, const std::vector<sum_t>& pwgts,
                   idx_t nparts, const std::vector<real_t>& ub,
                   const std::vector<real_t>* tpwgts) {
  for (int i = 0; i < g.ncon; ++i) {
    if (g.tvwgt[to_size(i)] <= 0) continue;
    for (idx_t p = 0; p < nparts; ++p) {
      const real_t frac = tpwgts != nullptr
                              ? (*tpwgts)[to_size(p)]
                              : 1.0 / static_cast<real_t>(nparts);
      const real_t limit =
          ub[to_size(i)] * frac *
          static_cast<real_t>(g.tvwgt[to_size(i)]);
      if (static_cast<real_t>(pwgts[to_size(p) * to_size(g.ncon) + to_size(i)]) >
          limit + 1e-9) {
        return false;
      }
    }
  }
  return true;
}

namespace {

// The shared bookkeeping (part weights, counts, limits, connectivity
// scratch) lives in core/kway_context.hpp so the rebalancer can reuse it.

/// Vertex-range grain of the colored sweep's parallel phases (boundary
/// collection and per-color propose). Fixed boundaries: the decomposition
/// depends only on sizes, never on the pool.
constexpr idx_t kSweepChunk = 4096;

/// Greedy vertex coloring in ascending id order: each vertex takes the
/// smallest color absent among its already-colored neighbors. Adjacent
/// vertices never share a color, so same-color boundary vertices cannot
/// affect each other's connectivity — the independence the colored sweep's
/// concurrent propose phase rests on. Deterministic by construction.
void color_graph(const Graph& g, std::vector<idx_t>& color) {
  color.assign(to_size(g.nvtxs), -1);
  std::vector<idx_t> used;  // used[c] == v iff c is taken next to v
  for (idx_t v = 0; v < g.nvtxs; ++v) {
    for (idx_t e = g.xadj[to_size(v)]; e < g.xadj[to_size(v + 1)]; ++e) {
      const idx_t cu = color[to_size(g.adjncy[to_size(e)])];
      if (cu < 0) continue;
      if (to_size(cu) >= used.size()) used.resize(to_size(cu) + 1, -1);
      used[to_size(cu)] = v;
    }
    idx_t c = 0;
    while (to_size(c) < used.size() && used[to_size(c)] == v) ++c;
    color[to_size(v)] = c;
  }
}

/// Best admissible move of v under the sweep rules, evaluated against the
/// (frozen) context state using caller-owned connectivity scratch. Pure
/// per-vertex function of that state: concurrent evaluation over any
/// chunking yields identical proposals.
void propose_move(const Graph& /*g*/, const KWayContext& ctx,
                  const std::vector<idx_t>& where, idx_t v,
                  std::vector<sum_t>& conn, std::vector<idx_t>& touched,
                  idx_t& dest, sum_t& gain) {
  dest = -1;
  gain = 0;
  const idx_t own = where[to_size(v)];
  if (!ctx.can_leave(own)) return;
  const sum_t idw = ctx.gather_connectivity_into(v, conn, touched);
  real_t best_load = 0.0;
  for (const idx_t p : touched) {
    if (!ctx.fits(v, p)) continue;
    const sum_t g2 = checked_sub(conn[to_size(p)], idw);
    if (g2 < 0) continue;
    const real_t load = ctx.part_load(p);
    // Prefer higher gain; among equal gains prefer the lighter part.
    if (dest < 0 || g2 > gain || (g2 == gain && load < best_load)) {
      dest = p;
      gain = g2;
      best_load = load;
    }
  }
  if (dest < 0) return;
  // Zero-gain moves are only worthwhile when they shift weight from a
  // more loaded part to a less loaded one.
  if (gain == 0 && best_load >= ctx.part_load(own) - 1e-12) dest = -1;
}

/// One cut-driven colored sweep. Boundary vertices are visited color class
/// by color class; within a class every proposal is computed from the
/// state frozen at the class's start (concurrently when exec has a pool —
/// class members are pairwise non-adjacent, so proposals cannot interact)
/// and then committed serially in the fixed hashed order, re-validating
/// can_leave/fits/zero-gain-balance against the live weights. A proposal's
/// GAIN needs no re-validation: only same-class commits intervene and none
/// of them is adjacent to the proposer, so its connectivity is unchanged —
/// which keeps the paranoid cut-delta audit exact. Returns the number of
/// moves performed and the total cut improvement via `gain_sum`.
idx_t colored_sweep(const Graph& g, KWayContext& ctx, idx_t nparts,
                    const std::vector<idx_t>& where,
                    const std::vector<idx_t>& color, Rng& rng,
                    sum_t& gain_sum, const KWayExec* exec) {
  ThreadPool* pool = exec != nullptr ? exec->pool : nullptr;
  WorkspacePool* wspool = exec != nullptr ? exec->wspool : nullptr;
  Profiler* profile = exec != nullptr ? exec->profile : nullptr;
  const int level = exec != nullptr ? exec->level : -1;

  // One draw per pass: every ordering decision below derives from it by
  // vertex id, independent of threads and chunking.
  const std::uint64_t pass_seed = rng.next_u64();

  // Collect the boundary in parallel ranges; concatenating the chunk-local
  // lists in chunk order recovers exactly the ascending serial scan.
  const idx_t n = g.nvtxs;
  const idx_t nchunks = (n + kSweepChunk - 1) / kSweepChunk;
  std::vector<std::vector<idx_t>> chunk_bnd(to_size(nchunks));
  parallel_chunks(pool, n, kSweepChunk, [&](idx_t b, idx_t e) {
    ProfScope aux(profile, "kway_refine", level, /*aux=*/true);
    std::vector<idx_t>& out = chunk_bnd[to_size(b / kSweepChunk)];
    for (idx_t v = b; v < e; ++v) {
      const idx_t pv = where[to_size(v)];
      for (idx_t ge = g.xadj[to_size(v)]; ge < g.xadj[to_size(v + 1)]; ++ge) {
        if (where[to_size(g.adjncy[to_size(ge)])] != pv) {
          out.push_back(v);
          break;
        }
      }
    }
  });
  std::vector<idx_t> boundary;
  {
    std::size_t total = 0;
    for (const std::vector<idx_t>& cb : chunk_bnd) total += cb.size();
    boundary.reserve(total);
    for (const std::vector<idx_t>& cb : chunk_bnd) {
      boundary.insert(boundary.end(), cb.begin(), cb.end());
    }
  }

  // Visit order: color classes ascending, hashed shuffle inside a class
  // (the parallel replacement for the serial sweep's rng shuffle).
  std::sort(boundary.begin(), boundary.end(), [&](idx_t a, idx_t b) {
    const idx_t ca = color[to_size(a)];
    const idx_t cb = color[to_size(b)];
    if (ca != cb) return ca < cb;
    const std::uint64_t ka = mix_seed(pass_seed, static_cast<std::uint64_t>(a));
    const std::uint64_t kb = mix_seed(pass_seed, static_cast<std::uint64_t>(b));
    if (ka != kb) return ka < kb;
    return a < b;
  });

  std::vector<idx_t> dest(boundary.size(), -1);
  std::vector<sum_t> gains(boundary.size(), 0);

  idx_t moves = 0;
  gain_sum = 0;
  std::size_t seg_b = 0;
  while (seg_b < boundary.size()) {
    const idx_t c = color[to_size(boundary[seg_b])];
    std::size_t seg_e = seg_b;
    while (seg_e < boundary.size() &&
           color[to_size(boundary[seg_e])] == c) {
      ++seg_e;
    }
    const idx_t seg_n = static_cast<idx_t>(seg_e - seg_b);

    // Propose phase: reads the context frozen as of this class's start.
    parallel_chunks(pool, seg_n, kSweepChunk, [&](idx_t b, idx_t e) {
      ProfScope aux(profile, "kway_refine", level, /*aux=*/true);
      std::vector<sum_t> local_conn;
      std::vector<idx_t> local_touched;
      std::unique_ptr<WorkspacePool::Lease> lease;
      if (wspool != nullptr) {
        lease = std::make_unique<WorkspacePool::Lease>(wspool->acquire());
      }
      std::vector<sum_t>& conn = lease != nullptr ? (*lease)->kconn
                                                  : local_conn;
      std::vector<idx_t>& touched = lease != nullptr ? (*lease)->ktouched
                                                     : local_touched;
      // A pooled buffer may carry another task's touched parts; start from
      // the all-zero state the sparse-reset discipline expects.
      conn.assign(to_size(nparts), 0);
      touched.clear();
      for (idx_t i = b; i < e; ++i) {
        const std::size_t pos = seg_b + to_size(i);
        propose_move(g, ctx, where, boundary[pos], conn, touched, dest[pos],
                     gains[pos]);
      }
    });

    // Commit phase: serial, in the class's fixed order, against the live
    // state (earlier commits of THIS class shift weights and counts).
    for (std::size_t i = seg_b; i < seg_e; ++i) {
      const idx_t v = boundary[i];
      const idx_t d = dest[i];
      if (d < 0) continue;
      const idx_t own = where[to_size(v)];
      if (!ctx.can_leave(own)) continue;
      if (!ctx.fits(v, d)) continue;
      if (gains[i] == 0 &&
          ctx.part_load(d) >= ctx.part_load(own) - 1e-12) {
        continue;
      }
      ctx.move(v, d);
      gain_sum = checked_add(gain_sum, gains[i]);
      ++moves;
    }
    seg_b = seg_e;
  }
  return moves;
}

/// One balancing episode: drain the part attaining the current global
/// maximum load. Strict `fits()` acceptance deadlocks when every part with
/// slack in one constraint is itself overloaded in another (complementary
/// overloads — common after a granular coarse-level initial partition), so
/// acceptance is potential-reducing instead: a destination is admissible
/// whenever its post-move load stays strictly below the current global
/// maximum. Returns the number of moves performed.
idx_t balance_episode(const Graph& g, KWayContext& ctx, idx_t nparts,
                      const std::vector<idx_t>& where, Rng& rng) {
  // Locate the global maximum (part q, constraint c).
  idx_t q = -1;
  int c = 0;
  real_t peak = 0.0;
  for (idx_t p = 0; p < nparts; ++p) {
    for (int i = 0; i < g.ncon; ++i) {
      const real_t l = ctx.overload(p, i);
      if (l > peak) {
        peak = l;
        q = p;
        c = i;
      }
    }
  }
  if (q < 0 || peak <= 1.0 + 1e-12) return 0;

  // Candidates: vertices of q carrying weight in constraint c, boundary
  // first, higher (ed - id) first — cheapest cut damage first.
  std::vector<idx_t> cand;
  std::vector<real_t> key(to_size(g.nvtxs), 0.0);
  for (idx_t v = 0; v < g.nvtxs; ++v) {
    if (where[to_size(v)] != q) continue;
    if (g.weight(v, c) <= 0) continue;
    cand.push_back(v);
    sum_t idw = 0, edw = 0;
    for (idx_t e = g.xadj[to_size(v)]; e < g.xadj[to_size(v + 1)]; ++e) {
      if (where[to_size(g.adjncy[to_size(e)])] == q) {
        idw = checked_add(idw, g.adjwgt[to_size(e)]);
      } else {
        edw = checked_add(edw, g.adjwgt[to_size(e)]);
      }
    }
    key[to_size(v)] =
        static_cast<real_t>(checked_sub(edw, idw)) + (edw > 0 ? 1e6 : 0.0);
  }
  shuffle(cand, rng);
  std::stable_sort(cand.begin(), cand.end(), [&](idx_t a, idx_t b) {
    return key[to_size(a)] > key[to_size(b)];
  });

  idx_t moves = 0;
  // Early-exit: once a long run of consecutive candidates yields no
  // admissible destination, the part is deadlocked for this episode —
  // bail instead of scanning every remaining (worse-keyed) vertex.
  const idx_t reject_cap = std::max<idx_t>(64, 8 * nparts);
  idx_t rejects = 0;
  for (const idx_t v : cand) {
    if (where[to_size(v)] != q) continue;  // already moved
    if (!ctx.can_leave(q)) break;
    // Stop once q is no longer the bottleneck for constraint c.
    if (ctx.overload(q, c) <= 1.0 + 1e-12) break;
    if (rejects >= reject_cap) break;

    const sum_t idw = ctx.gather_connectivity(v);
    // Candidate destinations: adjacent parts plus the globally lightest.
    idx_t lightest = -1;
    real_t lightest_load = 1e300;
    for (idx_t p = 0; p < nparts; ++p) {
      if (p == q) continue;
      const real_t l = ctx.part_load(p);
      if (l < lightest_load) {
        lightest_load = l;
        lightest = p;
      }
    }
    idx_t best = -1;
    bool best_fits = false;
    sum_t best_gain = 0;
    real_t best_load = 0.0;
    auto consider = [&](idx_t p) {
      if (p < 0 || p == q) return;
      const real_t after = ctx.load_after(v, p);
      if (after >= peak - 1e-12) return;  // would not reduce the potential
      const bool fits = after <= 1.0 + 1e-12;
      const sum_t gain = checked_sub(ctx.conn(p), idw);
      const bool better = best < 0 || (fits && !best_fits) ||
                          (fits == best_fits &&
                           (gain > best_gain ||
                            (gain == best_gain && after < best_load)));
      if (better) {
        best = p;
        best_fits = fits;
        best_gain = gain;
        best_load = after;
      }
    };
    for (const idx_t p : ctx.touched()) consider(p);
    consider(lightest);

    if (best < 0) {
      ++rejects;
      continue;
    }
    rejects = 0;
    ctx.move(v, best);
    ++moves;
  }
  return moves;
}

/// Best admissible move of vertex v under the sweep rules. Returns the
/// destination part (or -1) and its gain via out-params.
bool best_move(const Graph& /*g*/, KWayContext& ctx,
               const std::vector<idx_t>& where, idx_t v, idx_t& dest,
               sum_t& gain) {
  const idx_t own = where[to_size(v)];
  if (!ctx.can_leave(own)) return false;
  const sum_t idw = ctx.gather_connectivity(v);
  dest = -1;
  gain = 0;
  real_t best_load = 0.0;
  for (const idx_t p : ctx.touched()) {
    if (!ctx.fits(v, p)) continue;
    const sum_t g2 = checked_sub(ctx.conn(p), idw);
    if (g2 < 0) continue;
    const real_t load = ctx.part_load(p);
    if (dest < 0 || g2 > gain || (g2 == gain && load < best_load)) {
      dest = p;
      gain = g2;
      best_load = load;
    }
  }
  if (dest < 0) return false;
  if (gain == 0 && best_load >= ctx.part_load(own) - 1e-12) return false;
  return true;
}

/// One priority-queue pass: boundary vertices keyed by their optimistic
/// gain (best neighbor connectivity minus internal degree). Returns moves
/// performed; accumulates realized gain in `gain_sum`.
idx_t pq_pass(const Graph& g, KWayContext& ctx, std::vector<idx_t>& where,
              BucketQueue& queue, Rng& rng, sum_t& gain_sum) {
  queue.reset(g.nvtxs);
  std::vector<char> popped(to_size(g.nvtxs), 0);
  for (const idx_t v : ctx.boundary(rng)) {
    const sum_t idw = ctx.gather_connectivity(v);
    sum_t best_conn = 0;
    for (const idx_t p : ctx.touched()) best_conn = std::max(best_conn, ctx.conn(p));
    queue.insert(v, checked_narrow<wgt_t>(checked_sub(best_conn, idw)));
  }

  idx_t moves = 0;
  gain_sum = 0;
  while (!queue.empty()) {
    const idx_t v = queue.pop_max();
    popped[to_size(v)] = 1;  // each vertex moves at most once per pass
    idx_t dest;
    sum_t gain;
    if (!best_move(g, ctx, where, v, dest, gain)) continue;
    ctx.move(v, dest);
    gain_sum = checked_add(gain_sum, gain);
    ++moves;
    // Refresh the optimistic keys of v's unpopped neighbors; insert
    // neighbors that just became boundary vertices, drop ones that left it.
    for (idx_t e = g.xadj[to_size(v)]; e < g.xadj[to_size(v + 1)]; ++e) {
      const idx_t u = g.adjncy[to_size(e)];
      if (popped[to_size(u)]) continue;
      const sum_t idw = ctx.gather_connectivity(u);
      sum_t best_conn = 0;
      for (const idx_t p : ctx.touched()) {
        best_conn = std::max(best_conn, ctx.conn(p));
      }
      const bool on_boundary = !ctx.touched().empty();
      if (queue.contains(u)) {
        if (on_boundary) {
          queue.update(u, checked_narrow<wgt_t>(checked_sub(best_conn, idw)));
        } else {
          queue.remove(u);
        }
      } else if (on_boundary) {
        queue.insert(u, checked_narrow<wgt_t>(checked_sub(best_conn, idw)));
      }
    }
  }
  return moves;
}

}  // namespace

bool kway_balance(const Graph& g, idx_t nparts, std::vector<idx_t>& where,
                  const std::vector<real_t>& ub, Rng& rng,
                  const std::vector<real_t>* tpwgts, TraceRecorder* trace,
                  InvariantAuditor* audit) {
  KWayContext ctx(g, nparts, where, ub, tpwgts);
  if (ctx.feasible()) return true;

  TraceSpan span(trace, "kway.balance");
  sum_t total_moves = 0;
  int episodes = 0;
  // Each episode drains the current argmax part, so (peak, #loads at the
  // peak) decreases lexicographically while episodes make progress —
  // several parts can tie at the peak, so the peak alone is not the right
  // progress measure. Stop when an episode fails to improve it (further
  // episodes would spin on the same deadlock). A hard move cap backstops
  // both checks so a tight-ubvec instance terminates even if the peak
  // creeps down by epsilon steps forever.
  const int max_episodes = 8 * g.ncon * std::max<idx_t>(nparts, 2);
  const sum_t move_cap =
      checked_mul(static_cast<sum_t>(8),
                  static_cast<sum_t>(std::max<idx_t>(g.nvtxs, 1)));
  // Why the loop stopped — traced so tight instances are diagnosable from
  // counters alone (kway.balance.bail.<reason>).
  const char* bail = "episode_cap";
  auto progress_state = [&]() {
    const real_t peak = ctx.max_overload();
    idx_t at_peak = 0;
    for (idx_t p = 0; p < nparts; ++p) {
      for (int i = 0; i < g.ncon; ++i) {
        if (ctx.overload(p, i) > peak - 1e-9) ++at_peak;
      }
    }
    return std::make_pair(peak, at_peak);
  };
  auto prev = progress_state();
  for (int ep = 0; ep < max_episodes; ++ep) {
    if (ctx.feasible()) {
      bail = "feasible";
      break;
    }
    if (total_moves >= move_cap) {
      bail = "move_cap";
      break;
    }
    const idx_t moves = balance_episode(g, ctx, nparts, where, rng);
    if (moves == 0) {
      bail = "no_moves";
      break;
    }
    total_moves = checked_add(total_moves, moves);
    ++episodes;
    const auto cur = progress_state();
    if (cur.first >= prev.first - 1e-12 && cur.second >= prev.second) {
      bail = "no_progress";
      break;
    }
    prev = cur;
  }
  if (ctx.feasible()) bail = "feasible";

  // The episodes mutated pwgts/vcount incrementally across many moves.
  if (audit != nullptr && audit->boundaries()) {
    audit->check_kway_state(g, where, nparts, ctx.pwgts(), &ctx.vcounts(),
                            "kway.balance");
  }

  const bool ok = ctx.feasible();
  if (span.enabled()) {
    trace_count(trace, "kway.balance.moves", total_moves);
    trace_count(trace, "kway.balance.episodes", episodes);
    trace_count(trace, std::string("kway.balance.bail.") + bail);
    span.arg({"moves", total_moves});
    span.arg({"episodes", episodes});
    span.arg({"max_overload", ctx.max_overload()});
    span.arg({"feasible", static_cast<std::int64_t>(ok ? 1 : 0)});
  }
  return ok;
}

sum_t kway_refine(const Graph& g, idx_t nparts, std::vector<idx_t>& where,
                  const std::vector<real_t>& ub, int max_passes, Rng& rng,
                  KWayRefineStats* stats, const std::vector<real_t>* tpwgts,
                  TraceRecorder* trace, InvariantAuditor* audit,
                  FlightRecorder* flight, const KWayExec* exec) {
  KWayContext ctx(g, nparts, where, ub, tpwgts);

  if (!ctx.feasible()) {
    kway_balance(g, nparts, where, ub, rng, tpwgts, trace, audit);
    ctx.reload();
  }

  // The graph is static across passes, so one coloring serves them all.
  std::vector<idx_t> color;
  color_graph(g, color);

  // Sweep until the cut stops improving (zero-gain balance jiggling alone
  // is not progress), bounded by a generous multiple of the configured
  // pass count as a safety net against oscillation.
  const bool delta_audit = audit != nullptr && audit->paranoid();
  const int pass_cap = 4 * max_passes;
  for (int pass = 0; pass < pass_cap; ++pass) {
    TraceSpan span(trace, "kway.pass");
    sum_t gain_sum = 0;
    const sum_t cut_before = delta_audit ? edge_cut(g, where) : 0;
    const idx_t moves =
        colored_sweep(g, ctx, nparts, where, color, rng, gain_sum, exec);
    if (delta_audit) {
      // Every accepted move's gain was exact at commit time, so the sum
      // must account for the sweep's cut change to the last unit.
      audit->check_cut_delta(cut_before, gain_sum, edge_cut(g, where),
                             "kway.sweep");
      audit->check_kway_state(g, where, nparts, ctx.pwgts(), &ctx.vcounts(),
                              "kway.sweep");
    }
    if (stats != nullptr) {
      ++stats->passes;
      stats->moves += moves;
    }
    if (span.enabled()) {
      trace_count(trace, "kway.passes");
      trace_count(trace, "kway.moves", moves);
      span.arg({"pass", pass});
      span.arg({"moves", moves});
      span.arg({"gain", gain_sum});
      span.arg({"max_overload", ctx.max_overload()});
    }
    if (flight != nullptr) {
      FlightSample fs;
      fs.stage = FlightSample::Stage::kKWayPass;
      fs.pass = pass;
      fs.nvtxs = g.nvtxs;
      fs.nedges = g.nedges();
      fs.moves = moves;
      fs.gain = gain_sum;
      fs.worst_imbalance = ctx.max_overload();
      flight->record(fs);
    }
    if (moves == 0 || (gain_sum == 0 && pass + 1 >= max_passes)) break;
  }

  if (audit != nullptr && audit->boundaries()) {
    audit->check_kway_state(g, where, nparts, ctx.pwgts(), &ctx.vcounts(),
                            "kway.refine");
  }

  if (!ctx.feasible()) {
    kway_balance(g, nparts, where, ub, rng, tpwgts, trace, audit);
    ctx.reload();
  }

  const sum_t cut = edge_cut(g, where);
  if (stats != nullptr) {
    stats->final_cut = cut;
    stats->feasible = ctx.feasible();
  }
  return cut;
}

sum_t kway_refine_pq(const Graph& g, idx_t nparts, std::vector<idx_t>& where,
                     const std::vector<real_t>& ub, int max_passes, Rng& rng,
                     KWayRefineStats* stats,
                     const std::vector<real_t>* tpwgts, TraceRecorder* trace,
                     InvariantAuditor* audit, FlightRecorder* flight) {
  KWayContext ctx(g, nparts, where, ub, tpwgts);

  if (!ctx.feasible()) {
    kway_balance(g, nparts, where, ub, rng, tpwgts, trace, audit);
    ctx.reload();
  }

  BucketQueue queue;
  const bool delta_audit = audit != nullptr && audit->paranoid();
  const int pass_cap = 4 * max_passes;
  for (int pass = 0; pass < pass_cap; ++pass) {
    TraceSpan span(trace, "kway.pass");
    sum_t gain_sum = 0;
    const sum_t cut_before = delta_audit ? edge_cut(g, where) : 0;
    const idx_t moves = pq_pass(g, ctx, where, queue, rng, gain_sum);
    if (delta_audit) {
      audit->check_cut_delta(cut_before, gain_sum, edge_cut(g, where),
                             "kway.pq_pass");
      audit->check_kway_state(g, where, nparts, ctx.pwgts(), &ctx.vcounts(),
                              "kway.pq_pass");
    }
    if (stats != nullptr) {
      ++stats->passes;
      stats->moves += moves;
    }
    if (span.enabled()) {
      trace_count(trace, "kway.passes");
      trace_count(trace, "kway.moves", moves);
      span.arg({"pass", pass});
      span.arg({"moves", moves});
      span.arg({"gain", gain_sum});
      span.arg({"max_overload", ctx.max_overload()});
    }
    if (flight != nullptr) {
      FlightSample fs;
      fs.stage = FlightSample::Stage::kKWayPass;
      fs.pass = pass;
      fs.nvtxs = g.nvtxs;
      fs.nedges = g.nedges();
      fs.moves = moves;
      fs.gain = gain_sum;
      fs.worst_imbalance = ctx.max_overload();
      flight->record(fs);
    }
    if (moves == 0 || (gain_sum == 0 && pass + 1 >= max_passes)) break;
  }

  if (audit != nullptr && audit->boundaries()) {
    audit->check_kway_state(g, where, nparts, ctx.pwgts(), &ctx.vcounts(),
                            "kway.refine_pq");
  }

  if (!ctx.feasible()) {
    kway_balance(g, nparts, where, ub, rng, tpwgts, trace, audit);
    ctx.reload();
  }

  const sum_t cut = edge_cut(g, where);
  if (stats != nullptr) {
    stats->final_cut = cut;
    stats->feasible = ctx.feasible();
  }
  return cut;
}

}  // namespace mcgp
