// Public entry point of the multi-constraint graph partitioning library.
//
// Quickstart:
//
//   mcgp::Graph g = mcgp::grid2d(100, 100);
//   mcgp::apply_type_s_weights(g, /*m=*/3, /*nregions=*/16, 0, 19, 42);
//   mcgp::Options opts;
//   opts.nparts = 16;
//   mcgp::PartitionResult r = mcgp::partition(g, opts);
//   // r.part, r.cut, r.imbalance, r.seconds, ...
//
// Setting g.ncon == 1 (the default) recovers the classical
// single-constraint multilevel partitioner, which is the baseline the
// SC'98 paper compares against.
#pragma once

#include "core/config.hpp"
#include "graph/csr_graph.hpp"

namespace mcgp {

/// Partition `g` into opts.nparts parts minimizing the weighted edge-cut
/// subject to all ncon balance constraints. Throws std::invalid_argument
/// on malformed options (nparts < 1, tolerance < 1, ubvec arity mismatch).
PartitionResult partition(const Graph& g, const Options& opts);

/// Improve an EXISTING partition in place (flat, no multilevel): restore
/// balance if needed, then run k-way refinement. The workhorse for
/// adaptive computations where vertex weights changed but the current
/// decomposition is still mostly good — far cheaper than repartitioning
/// from scratch and it preserves locality (few vertices migrate).
/// `part` must be a valid assignment into [0, opts.nparts).
PartitionResult refine_partition(const Graph& g, std::vector<idx_t> part,
                                 const Options& opts);

}  // namespace mcgp
