#include "core/rb_driver.hpp"

#include <gtest/gtest.h>

#include "gen/mesh_gen.hpp"
#include "gen/weight_gen.hpp"
#include "graph/metrics.hpp"

namespace mcgp {
namespace {

Options rb_options(idx_t k, std::uint64_t seed = 1) {
  Options o;
  o.nparts = k;
  o.algorithm = Algorithm::kRecursiveBisection;
  o.seed = seed;
  return o;
}

TEST(MultilevelBisect, GridCutNearOptimal) {
  Graph g = grid2d(32, 32);
  BisectionTargets t;
  t.f0 = 0.5;
  t.ub = {1.05};
  Options o;
  Rng rng(1);
  std::vector<idx_t> where;
  MlBisectStats stats;
  const sum_t cut = multilevel_bisect(g, where, t, o, rng, &stats);
  // Optimal is 32 (straight cut); multilevel should land close.
  EXPECT_LE(cut, 48);
  EXPECT_GT(stats.levels, 1);
  EXPECT_EQ(stats.cut, cut);
  BisectionBalance b;
  b.init(g, where, t);
  EXPECT_LE(b.potential(), 1.0 + 1e-9);
}

TEST(MultilevelBisect, MultiConstraintFeasible) {
  Graph g = tri_grid2d(40, 40);
  apply_type_s_weights(g, 3, 16, 0, 19, 3);
  BisectionTargets t;
  t.f0 = 0.5;
  t.ub.assign(3, 1.05);
  Options o;
  Rng rng(2);
  std::vector<idx_t> where;
  multilevel_bisect(g, where, t, o, rng);
  BisectionBalance b;
  b.init(g, where, t);
  EXPECT_LE(b.potential(), 1.0 + 0.01);
}

TEST(PartitionRB, ValidPartitionAllK) {
  Graph g = grid2d(18, 18);
  for (const idx_t k : {1, 2, 3, 5, 8, 13}) {
    Rng rng(3);
    const auto part = partition_recursive_bisection(g, rb_options(k), rng);
    EXPECT_TRUE(validate_partition(g, part, k, k <= g.nvtxs).empty())
        << "k=" << k;
  }
}

TEST(PartitionRB, NonPowerOfTwoBalanced) {
  Graph g = grid2d(30, 30);
  Rng rng(4);
  const auto part = partition_recursive_bisection(g, rb_options(7), rng);
  EXPECT_LE(max_imbalance(g, part, 7), 1.05 + 0.01);
  EXPECT_GT(edge_cut(g, part), 0);
}

TEST(PartitionRB, MultiConstraintBalanced) {
  Graph g = random_geometric(3000, 0, 7, 3);
  apply_type_s_weights(g, 3, 16, 0, 19, 5);
  Rng rng(5);
  const auto part = partition_recursive_bisection(g, rb_options(8), rng);
  for (const real_t lb : imbalance(g, part, 8)) {
    EXPECT_LE(lb, 1.05 + 0.02);
  }
}

TEST(PartitionRB, DeterministicPerSeed) {
  Graph g = grid2d(20, 20, 2);
  apply_type_s_weights(g, 2, 8, 0, 9, 7);
  Rng a(42), b(42), c(99);
  const auto p1 = partition_recursive_bisection(g, rb_options(4), a);
  const auto p2 = partition_recursive_bisection(g, rb_options(4), b);
  EXPECT_EQ(p1, p2);
  const auto p3 = partition_recursive_bisection(g, rb_options(4), c);
  EXPECT_NE(p1, p3);  // overwhelmingly likely
}

TEST(PartitionRB, K1TrivialAndKEqualsN) {
  Graph g = grid2d(4, 4);
  Rng rng(6);
  const auto p1 = partition_recursive_bisection(g, rb_options(1), rng);
  for (const idx_t p : p1) EXPECT_EQ(p, 0);
  const auto pn = partition_recursive_bisection(g, rb_options(16), rng);
  EXPECT_TRUE(validate_partition(g, pn, 16, true).empty());
}

TEST(PartitionRB, KGreaterThanN) {
  Graph g = grid2d(3, 3);
  Rng rng(7);
  const auto part = partition_recursive_bisection(g, rb_options(20), rng);
  EXPECT_TRUE(validate_partition(g, part, 20).empty());
  // Each vertex alone (9 non-empty parts).
  std::vector<idx_t> count(20, 0);
  for (const idx_t p : part) ++count[to_size(p)];
  for (const idx_t c : count) EXPECT_LE(c, 1);
}

TEST(PartitionRB, DisconnectedGraph) {
  GraphBuilder b(200, 1);
  for (idx_t v = 0; v < 99; ++v) b.add_edge(v, v + 1);
  for (idx_t v = 100; v < 199; ++v) b.add_edge(v, v + 1);
  Graph g = b.build();
  Rng rng(8);
  const auto part = partition_recursive_bisection(g, rb_options(4), rng);
  EXPECT_TRUE(validate_partition(g, part, 4, true).empty());
  EXPECT_LE(max_imbalance(g, part, 4), 1.10);
}

TEST(PartitionRB, StatsPopulated) {
  Graph g = grid2d(25, 25);
  Rng rng(9);
  MlBisectStats stats;
  PhaseTimes phases;
  partition_recursive_bisection(g, rb_options(4), rng, &phases, &stats);
  EXPECT_GT(stats.levels, 0);
  EXPECT_GT(stats.coarsest_nvtxs, 0);
  EXPECT_GT(phases.get("coarsen") + phases.get("initpart") +
                phases.get("refine"),
            0.0);
}

TEST(PartitionRB, CutScalesWithK) {
  Graph g = grid2d(24, 24);
  Rng r1(10), r2(10);
  const auto p4 = partition_recursive_bisection(g, rb_options(4), r1);
  const auto p16 = partition_recursive_bisection(g, rb_options(16), r2);
  EXPECT_LT(edge_cut(g, p4), edge_cut(g, p16));
}

}  // namespace
}  // namespace mcgp
