// The feasibility backstop: min_feasible_ubvec's provable bounds,
// effective_ubvec's clamp, validate_options' rejection of impossible
// tolerances, rebalance_partition repairing overloaded partitions, the
// feasibility auditor seam, and the tight-instance matrix that motivated
// the subsystem (grid-13x13 at k=64 leaves ~2.6 vertices per part; the
// refiner's balancer alone used to exit with ubvec violated).
#include "core/rebalance.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "core/audit.hpp"
#include "core/kway_refine.hpp"
#include "core/partitioner.hpp"
#include "gen/mesh_gen.hpp"
#include "gen/weight_gen.hpp"
#include "graph/metrics.hpp"
#include "support/check.hpp"
#include "support/random.hpp"

namespace mcgp {
namespace {

/// Path graph with explicit per-vertex weights (ncon = 1).
Graph weighted_path(const std::vector<wgt_t>& w) {
  GraphBuilder b(static_cast<idx_t>(w.size()), 1);
  for (idx_t v = 0; v + 1 < static_cast<idx_t>(w.size()); ++v) {
    b.add_edge(v, v + 1);
  }
  for (idx_t v = 0; v < static_cast<idx_t>(w.size()); ++v) {
    b.set_weight(v, 0, w[to_size(v)]);
  }
  return b.build();
}

TEST(MinFeasibleUbvec, UnitWeightsEvenSplitIsOne) {
  const Graph g = grid2d(4, 4);  // 16 unit vertices
  const std::vector<real_t> b = min_feasible_ubvec(g, 4, nullptr);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_NEAR(b[0], 1.0, 1e-12);
}

TEST(MinFeasibleUbvec, CountPigeonholeOddSplit) {
  // 5 unit vertices into 2 parts: some part holds ceil(5/2) = 3 vertices,
  // so no tolerance below 3 / (0.5 * 5) = 1.2 is achievable.
  const Graph g = weighted_path({1, 1, 1, 1, 1});
  const std::vector<real_t> b = min_feasible_ubvec(g, 2, nullptr);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_NEAR(b[0], 1.2, 1e-12);
}

TEST(MinFeasibleUbvec, HeaviestVertexDominates) {
  // One vertex of weight 10 among units: whichever part holds it carries
  // at least 10 / (0.5 * 13) = 20/13 of its target.
  const Graph g = weighted_path({10, 1, 1, 1});
  const std::vector<real_t> b = min_feasible_ubvec(g, 2, nullptr);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_NEAR(b[0], 20.0 / 13.0, 1e-12);
}

TEST(MinFeasibleUbvec, Grid13x13At64PartsIsThreeVertexParts) {
  // 169 unit vertices into 64 parts: some part holds ceil(169/64) = 3
  // vertices -> 3 * 64 / 169. This is the exact tolerance the ledger's
  // historical maxlb=1.13609 runs were already achieving.
  const Graph g = grid2d(13, 13);
  const std::vector<real_t> b = min_feasible_ubvec(g, 64, nullptr);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_NEAR(b[0], 3.0 * 64.0 / 169.0, 1e-12);
}

TEST(EffectiveUbvec, DefaultClampsUpExplicitAchievableStays) {
  const Graph g = grid2d(13, 13);
  Options o;
  o.nparts = 64;  // bound ~1.136 exceeds the 1.05 default
  const std::vector<real_t> clamped = effective_ubvec(g, o);
  ASSERT_EQ(clamped.size(), 1u);
  EXPECT_NEAR(clamped[0], 3.0 * 64.0 / 169.0, 1e-12);

  o.ubvec = {1.20};  // explicitly above the bound: honored verbatim
  const std::vector<real_t> kept = effective_ubvec(g, o);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_DOUBLE_EQ(kept[0], 1.20);
}

TEST(ValidateOptions, ExplicitlyInfeasibleUbvecRejected) {
  const Graph g = grid2d(13, 13);
  Options o;
  o.nparts = 64;
  o.ubvec = {1.01};  // below the 1.136 pigeonhole bound
  try {
    partition(g, o);
    FAIL() << "infeasible explicit ubvec must be rejected";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("infeasible"), std::string::npos) << msg;
    EXPECT_NE(msg.find("ubvec"), std::string::npos) << msg;
  }
}

TEST(RebalancePartition, RepairsGrosslyOverloadedPartition) {
  const Graph g = grid2d(10, 10);
  const idx_t k = 4;
  // Everything in part 0 except one seed vertex per other part.
  std::vector<idx_t> where(to_size(g.nvtxs), 0);
  for (idx_t p = 1; p < k; ++p) where[to_size(p)] = p;
  const std::vector<real_t> ub = {1.05};
  Rng rng(7);
  RebalanceStats stats;
  const bool ok = rebalance_partition(g, k, where, ub, rng, nullptr, &stats);
  EXPECT_TRUE(ok);
  EXPECT_TRUE(stats.feasible);
  EXPECT_GT(stats.moves, 0);
  EXPECT_TRUE(kway_feasible(g, part_weights(g, where, k), k, ub, nullptr));
}

TEST(RebalancePartition, FeasibleInputStaysFeasibleAndUntouchedOrBetter) {
  const Graph g = grid2d(8, 8);
  const idx_t k = 4;
  // Exact 16-vertex quadrants: already perfectly balanced.
  std::vector<idx_t> where(to_size(g.nvtxs));
  for (idx_t v = 0; v < g.nvtxs; ++v) {
    const idx_t x = v % 8, y = v / 8;
    where[to_size(v)] = (y / 4) * 2 + (x / 4);
  }
  const std::vector<idx_t> before = where;
  const std::vector<real_t> ub = {1.05};
  Rng rng(7);
  EXPECT_TRUE(rebalance_partition(g, k, where, ub, rng));
  EXPECT_EQ(where, before);  // nothing to do: input returned verbatim
}

TEST(FeasibilityAudit, PassesOnHonestDeclarationTripsOnCorruption) {
  const Graph g = grid2d(6, 6);
  const idx_t k = 4;
  Options o;
  o.nparts = k;
  const PartitionResult r = partition(g, o);
  ASSERT_TRUE(r.feasible);

  InvariantAuditor audit(AuditLevel::kBoundaries);
  audit.check_feasibility(g, r.part, k, r.ubvec_used, nullptr,
                          /*declared_feasible=*/true, "test.honest");
  EXPECT_EQ(audit.count(AuditCheck::kFeasibility), 1u);

  // Corrupt the partition past ubvec: pile most vertices into part 0
  // (keeping every part non-empty) and keep declaring feasibility.
  std::vector<idx_t> corrupted = r.part;
  for (idx_t v = 0; v < g.nvtxs; ++v) {
    corrupted[to_size(v)] = v < k - 1 ? v + 1 : 0;
  }
  EXPECT_THROW(
      audit.check_feasibility(g, corrupted, k, r.ubvec_used, nullptr,
                              /*declared_feasible=*/true, "test.corrupt"),
      AuditFailure);
  // A stale infeasible verdict on a feasible partition must trip too.
  EXPECT_THROW(
      audit.check_feasibility(g, r.part, k, r.ubvec_used, nullptr,
                              /*declared_feasible=*/false, "test.stale"),
      AuditFailure);
}

// The CI tight-instance gate (named step in perf-smoke): 64 parts on 169
// vertices must come back feasible for both algorithms, ncon 1 and 3,
// across seeds 1..5. ncon = 1 runs at the clamped provable bound
// (3*64/169); ncon = 3 needs an explicit 1.25 — the per-constraint
// pigeonhole bounds are all ~1.0 there, but jointly packing three
// constraints onto ~2.6-vertex parts is infeasible below ~1.20 (verified
// by annealing the pure packing problem), which no sound per-constraint
// bound can capture. Deterministic at a fixed seed, so this either
// always passes or always fails.
TEST(TightInstances, Grid13FeasibleAcrossSeeds) {
  for (const int ncon : {1, 3}) {
    Graph g = grid2d(13, 13, ncon);
    if (ncon > 1) apply_type_s_weights(g, ncon, 16, 0, 19, 1003);
    for (const Algorithm alg :
         {Algorithm::kKWay, Algorithm::kRecursiveBisection}) {
      for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        Options o;
        o.nparts = 64;
        o.algorithm = alg;
        o.seed = seed;  // ncon=1: empty ubvec clamps to the provable bound
        if (ncon > 1) o.ubvec.assign(to_size(ncon), 1.25);
        const PartitionResult r = partition(g, o);
        const char* alg_name = alg == Algorithm::kKWay ? "MC-KW" : "MC-RB";
        EXPECT_TRUE(r.feasible)
            << alg_name << " ncon=" << ncon << " seed=" << seed
            << " maxlb=" << r.max_imbalance;
        // The verdict must match a from-scratch recompute against the
        // tolerances the run reports it was held to.
        ASSERT_EQ(r.ubvec_used.size(), to_size(g.ncon));
        EXPECT_TRUE(kway_feasible(g, part_weights(g, r.part, o.nparts),
                                  o.nparts, r.ubvec_used, nullptr))
            << alg_name << " ncon=" << ncon << " seed=" << seed;
        for (std::size_t i = 0; i < r.imbalance.size(); ++i) {
          EXPECT_LE(r.imbalance[i], r.ubvec_used[i] + 1e-9)
              << alg_name << " ncon=" << ncon << " seed=" << seed
              << " constraint=" << i;
        }
      }
    }
  }
}

// When the requested tolerance is jointly unachievable (and no sound
// per-constraint bound can prove it, so validate_options accepts the
// configuration), the verdict must stay honest: feasible=false with the
// reported imbalance actually exceeding the tolerance — never a rosy
// flag. This is exactly the ledger bug that motivated the subsystem,
// inverted: the run may fail to balance, it may not misreport it.
TEST(TightInstances, VerdictStaysHonestWhenToleranceUnachievable) {
  Graph g = grid2d(13, 13, 3);
  apply_type_s_weights(g, 3, 16, 0, 19, 1003);
  for (const Algorithm alg :
       {Algorithm::kKWay, Algorithm::kRecursiveBisection}) {
    Options o;
    o.nparts = 64;
    o.algorithm = alg;
    o.seed = 1;  // empty ubvec: the 1.05 default survives the clamp here,
                 // and 1.05 is jointly infeasible for these weights
    const PartitionResult r = partition(g, o);
    const char* alg_name = alg == Algorithm::kKWay ? "MC-KW" : "MC-RB";
    EXPECT_FALSE(r.feasible) << alg_name;
    EXPECT_EQ(r.feasible,
              kway_feasible(g, part_weights(g, r.part, o.nparts), o.nparts,
                            r.ubvec_used, nullptr))
        << alg_name << ": verdict disagrees with a recompute";
    EXPECT_GT(r.max_imbalance, 1.05) << alg_name;
  }
}

// Tight-tolerance matrix over the two tent-instance graphs: requested
// tolerances clamped per constraint to the provable floor ({1.01, 1.05,
// 1.10} for ncon=1; {1.25, 1.30} for ncon=3, above the joint packing
// threshold — see Grid13FeasibleAcrossSeeds), both algorithms, 1 and 8
// threads. Every cell must be feasible at the tolerances the run was
// held to, with the 8-thread partition bit-identical to the serial one
// (the rebalancer runs serially after the parallel phases, so it must
// preserve the determinism contract).
TEST(TightInstances, FeasibilityMatrixAcrossToleranceAlgorithmThreads) {
  struct Instance {
    const char* name;
    Graph graph;
  };
  for (const int ncon : {1, 3}) {
    std::vector<Instance> instances;
    instances.push_back({"grid-13x13", grid2d(13, 13, ncon)});
    instances.push_back({"tri-12x12", tri_grid2d(12, 12, ncon)});
    const std::vector<real_t> reqs = ncon == 1
                                         ? std::vector<real_t>{1.01, 1.05, 1.10}
                                         : std::vector<real_t>{1.25, 1.30};
    for (Instance& inst : instances) {
      if (ncon > 1) apply_type_s_weights(inst.graph, ncon, 16, 0, 19, 1003);
      const std::vector<real_t> floor_ub =
          min_feasible_ubvec(inst.graph, 64, nullptr);
      for (const real_t req : reqs) {
        std::vector<real_t> ub(to_size(ncon));
        for (int i = 0; i < ncon; ++i) {
          ub[to_size(i)] = std::max(req, floor_ub[to_size(i)]);
        }
        for (const Algorithm alg :
             {Algorithm::kKWay, Algorithm::kRecursiveBisection}) {
          Options o;
          o.nparts = 64;
          o.algorithm = alg;
          o.ubvec = ub;
          o.seed = 3;
          o.num_threads = 1;
          const PartitionResult serial = partition(inst.graph, o);
          const std::string ctx =
              std::string(inst.name) + " ncon=" + std::to_string(ncon) +
              " req=" + std::to_string(req) +
              (alg == Algorithm::kKWay ? " MC-KW" : " MC-RB");
          EXPECT_TRUE(serial.feasible)
              << ctx << " maxlb=" << serial.max_imbalance;
          ASSERT_EQ(serial.ubvec_used.size(), to_size(ncon)) << ctx;
          for (std::size_t i = 0; i < serial.imbalance.size(); ++i) {
            EXPECT_LE(serial.imbalance[i], serial.ubvec_used[i] + 1e-9)
                << ctx << " constraint=" << i;
          }

          o.num_threads = 8;
          const PartitionResult threaded = partition(inst.graph, o);
          EXPECT_EQ(threaded.part, serial.part) << ctx;
          EXPECT_EQ(threaded.feasible, serial.feasible) << ctx;
        }
      }
    }
  }
}

}  // namespace
}  // namespace mcgp
