// End-to-end scenarios reproducing the paper's core claims in miniature.
#include <gtest/gtest.h>

#include "core/partitioner.hpp"
#include "gen/mesh_gen.hpp"
#include "gen/phase_sim.hpp"
#include "gen/weight_gen.hpp"
#include "graph/graph_io.hpp"
#include "graph/metrics.hpp"

namespace mcgp {
namespace {

/// Claim 1 (motivation): on a multi-phase workload, a single-constraint
/// partition of the SUMMED weights balances the total but not the phases;
/// the multi-constraint partition balances every phase and thus achieves a
/// lower bulk-synchronous makespan.
TEST(Integration, MultiConstraintBeatsSumCollapseOnPhases) {
  Graph g = grid2d(48, 48);
  apply_type_p_weights(g, 3, 32, 4242);
  const idx_t k = 8;

  // Multi-constraint partition of the 3-phase weights.
  Options mc;
  mc.nparts = k;
  const PartitionResult rm = partition(g, mc);

  // Single-constraint partition of the summed weights (the traditional
  // formulation), evaluated on the same 3-phase workload.
  Graph collapsed = sum_collapse_constraints(g);
  Options sc;
  sc.nparts = k;
  const PartitionResult rs = partition(collapsed, sc);

  const PhaseSimResult sim_mc = simulate_phases(g, rm.part, k);
  const PhaseSimResult sim_sc = simulate_phases(g, rs.part, k);

  // The sum-collapsed decomposition balances the sum...
  EXPECT_LE(rs.max_imbalance, 1.05 + 1e-9);
  // ...but its per-phase makespan is worse than the multi-constraint one.
  EXPECT_LT(sim_mc.slowdown(), sim_sc.slowdown());
  EXPECT_LE(sim_mc.slowdown(), 1.10);
}

/// Claim 2: the multi-constraint partitioner pays a bounded edge-cut
/// premium over the single-constraint baseline on the same graph.
TEST(Integration, MultiConstraintCutPremiumBounded) {
  Graph base = grid2d(40, 40);
  Options o;
  o.nparts = 8;
  const PartitionResult r1 = partition(base, o);

  Graph multi = grid2d(40, 40);
  apply_type_s_weights(multi, 3, 16, 0, 19, 321);
  const PartitionResult r3 = partition(multi, o);

  EXPECT_GT(r3.cut, 0);
  // The paper's observed premium is a small constant factor; 4x is a
  // generous regression bound for this mesh size.
  EXPECT_LT(static_cast<double>(r3.cut), 4.0 * static_cast<double>(r1.cut));
}

/// Claim 3: hard Type-S instances genuinely need the multi-constraint
/// machinery — the single-constraint baseline violates per-phase balance.
TEST(Integration, SumCollapseViolatesPerConstraintBalance) {
  Graph g = random_geometric(3000, 0, 17, 4);
  apply_type_s_weights(g, 4, 16, 0, 19, 17);
  const idx_t k = 8;

  Graph collapsed = sum_collapse_constraints(g);
  Options o;
  o.nparts = k;
  const PartitionResult rs = partition(collapsed, o);
  // Evaluate the single-constraint partition against the 4 real weights.
  const real_t violated = max_imbalance(g, rs.part, k);
  EXPECT_GT(violated, 1.05) << "instance unexpectedly easy";

  const PartitionResult rm = partition(g, o);
  EXPECT_LE(rm.max_imbalance, 1.05 + 0.05);
  EXPECT_LT(rm.max_imbalance, violated);
}

/// Full file-based workflow: generate -> write -> read -> partition ->
/// write partition -> read back and re-evaluate.
TEST(Integration, FileWorkflowRoundTrip) {
  Graph g = tri_grid2d(24, 24);
  apply_type_s_weights(g, 2, 8, 0, 19, 5);
  const std::string gpath = testing::TempDir() + "/mcgp_itest.graph";
  const std::string ppath = testing::TempDir() + "/mcgp_itest.part";
  write_metis_graph_file(gpath, g);

  Graph h = read_metis_graph_file(gpath);
  Options o;
  o.nparts = 6;
  const PartitionResult r = partition(h, o);
  write_partition_file(ppath, r.part);

  const auto part = read_partition_file(ppath);
  EXPECT_EQ(edge_cut(g, part), r.cut);
  EXPECT_LE(max_imbalance(g, part, 6), 1.05 + 0.02);
}

/// Random per-vertex weights reduce to the single-constraint problem (the
/// paper's argument for structured test instances): even ignoring the
/// weights entirely, the partition is nearly balanced in all constraints.
TEST(Integration, TypeRWeightsAreEasy) {
  Graph g = grid2d(40, 40);
  apply_type_r_weights(g, 4, 0, 19, 77);
  // Partition IGNORING the 4 weights (plain vertex-count balance).
  Graph plain = grid2d(40, 40);
  Options o;
  o.nparts = 8;
  const PartitionResult r = partition(plain, o);
  // Concentration: each part's share of every random weight is close to
  // its share of vertices.
  EXPECT_LE(max_imbalance(g, r.part, 8), 1.12);
}

/// Increasing m monotonically (weakly) degrades the cut on the same mesh —
/// the paper's quality-vs-constraints trend, allowing noise.
TEST(Integration, CutGrowsWithConstraints) {
  const idx_t k = 8;
  std::vector<sum_t> cuts;
  for (const int m : {1, 3, 5}) {
    Graph g = grid2d(36, 36, std::max(m, 1));
    if (m > 1) apply_type_s_weights(g, m, 16, 0, 19, 9);
    Options o;
    o.nparts = k;
    o.seed = 3;
    cuts.push_back(partition(g, o).cut);
  }
  EXPECT_LT(cuts[0], cuts[2]);  // m=1 clearly cheaper than m=5
}

}  // namespace
}  // namespace mcgp
