#include "core/partitioner.hpp"

#include <gtest/gtest.h>

#include "gen/mesh_gen.hpp"
#include "gen/weight_gen.hpp"
#include "graph/metrics.hpp"

namespace mcgp {
namespace {

TEST(Partition, ResultFieldsConsistent) {
  Graph g = grid2d(25, 25);
  Options o;
  o.nparts = 6;
  const PartitionResult r = partition(g, o);
  EXPECT_TRUE(validate_partition(g, r.part, 6, true).empty());
  EXPECT_EQ(r.cut, edge_cut(g, r.part));
  ASSERT_EQ(r.imbalance.size(), 1u);
  EXPECT_DOUBLE_EQ(r.imbalance[0], max_imbalance(g, r.part, 6));
  EXPECT_DOUBLE_EQ(r.max_imbalance, r.imbalance[0]);
  EXPECT_GT(r.seconds, 0.0);
  EXPECT_GT(r.coarsen_levels, 0);
}

TEST(Partition, BothAlgorithmsAgreeOnContract) {
  Graph g = tri_grid2d(30, 30);
  apply_type_s_weights(g, 2, 8, 0, 19, 3);
  for (const auto alg :
       {Algorithm::kRecursiveBisection, Algorithm::kKWay}) {
    Options o;
    o.nparts = 8;
    o.algorithm = alg;
    const PartitionResult r = partition(g, o);
    EXPECT_TRUE(validate_partition(g, r.part, 8, true).empty());
    EXPECT_LE(r.max_imbalance, 1.05 + 0.02);
    EXPECT_GT(r.cut, 0);
  }
}

TEST(Partition, RejectsBadOptions) {
  Graph g = grid2d(5, 5);
  Options o;
  o.nparts = 0;
  EXPECT_THROW(partition(g, o), std::invalid_argument);
  o.nparts = 2;
  o.ubvec = {0.9};
  EXPECT_THROW(partition(g, o), std::invalid_argument);
  o.ubvec = {1.05, 1.05};  // arity mismatch for ncon == 1... allowed? no:
  EXPECT_THROW(partition(g, o), std::invalid_argument);
}

TEST(Partition, SingleUbBroadcasts) {
  Graph g = grid2d(20, 20, 3);
  apply_type_s_weights(g, 3, 8, 0, 9, 5);
  Options o;
  o.nparts = 4;
  o.ubvec = {1.10};  // one entry for three constraints
  const PartitionResult r = partition(g, o);
  EXPECT_LE(r.max_imbalance, 1.10 + 0.02);
}

TEST(Partition, EmptyGraph) {
  Graph g = make_graph(0, 1, {0}, {});
  Options o;
  o.nparts = 4;
  const PartitionResult r = partition(g, o);
  EXPECT_TRUE(r.part.empty());
  EXPECT_EQ(r.cut, 0);
}

TEST(Partition, PhaseTimesRecorded) {
  Graph g = grid2d(40, 40);
  Options o;
  o.nparts = 8;
  const PartitionResult r = partition(g, o);
  EXPECT_GT(r.phases.get("coarsen"), 0.0);
  EXPECT_GT(r.phases.get("refine"), 0.0);
}

TEST(Partition, SeedChangesResultButNotQualityClass) {
  Graph g = grid2d(30, 30);
  Options o;
  o.nparts = 4;
  o.seed = 1;
  const PartitionResult r1 = partition(g, o);
  o.seed = 2;
  const PartitionResult r2 = partition(g, o);
  EXPECT_NE(r1.part, r2.part);
  // Cuts of different seeds stay within a reasonable band of each other.
  const double ratio = static_cast<double>(r1.cut) / static_cast<double>(r2.cut);
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 2.0);
}

TEST(Partition, SingleConstraintIsBaselinePath) {
  // ncon == 1 must behave like a classical partitioner: tight balance and
  // near-optimal cuts on a structured mesh.
  Graph g = grid2d(32, 32);
  Options o;
  o.nparts = 2;
  o.algorithm = Algorithm::kRecursiveBisection;
  const PartitionResult r = partition(g, o);
  EXPECT_LE(r.cut, 48);  // optimal 32
  EXPECT_LE(r.max_imbalance, 1.05);
}

}  // namespace
}  // namespace mcgp
