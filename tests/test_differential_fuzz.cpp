// Differential fuzzing of the multilevel pipeline against two oracles:
//
//  * The InvariantAuditor at kParanoid: every randomized case runs the
//    full pipeline (both RB and KW) with the auditor recomputing the
//    incrementally maintained quantities at every seam and inside every
//    refinement pass. A bookkeeping bug throws AuditFailure and fails the
//    case with the generating seed for deterministic replay.
//
//  * A brute-force exact bisector on tiny graphs: enumerating every
//    bisection gives the true minimum cut (both unconstrained and over
//    feasible bisections), which bounds what the multilevel 2-way
//    pipeline may report.
//
// The case budget of the pipeline sweep is tunable via MCGP_FUZZ_CASES
// (default 200) so CI can pin an exact budget.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <optional>
#include <vector>

#include "core/audit.hpp"
#include "core/bisection.hpp"
#include "core/partitioner.hpp"
#include "core/rebalance.hpp"
#include "gen/mesh_gen.hpp"
#include "gen/weight_gen.hpp"
#include "graph/metrics.hpp"
#include "support/random.hpp"

namespace mcgp {
namespace {

/// Exact minimum cuts over all bisections with two non-empty sides,
/// found by exhaustive enumeration (vertex 0 pinned to side 0 — the cut
/// is symmetric under side exchange). Only for tiny graphs.
struct ExactBisection {
  sum_t min_cut_any = 0;                ///< over all non-empty bisections
  std::optional<sum_t> min_cut_feasible;  ///< over feasible ones, if any
};

ExactBisection exact_best_bisection(const Graph& g,
                                    const BisectionTargets& targets) {
  EXPECT_LE(g.nvtxs, 16) << "exhaustive bisector is 2^n";
  ExactBisection out;
  bool seen_any = false;
  std::vector<idx_t> where(to_size(g.nvtxs), 0);
  const std::uint32_t masks = 1u << (g.nvtxs - 1);
  for (std::uint32_t mask = 1; mask < masks; ++mask) {
    for (idx_t v = 1; v < g.nvtxs; ++v) {
      where[to_size(v)] =
          (mask >> (v - 1)) & 1u ? 1 : 0;
    }
    const sum_t cut = compute_cut_2way(g, where);
    if (!seen_any || cut < out.min_cut_any) out.min_cut_any = cut;
    seen_any = true;
    BisectionBalance bal;
    bal.init(g, where, targets);
    if (bal.feasible() &&
        (!out.min_cut_feasible.has_value() || cut < *out.min_cut_feasible)) {
      out.min_cut_feasible = cut;
    }
  }
  EXPECT_TRUE(seen_any);
  return out;
}

Graph random_tiny_graph(Rng& rng) {
  const idx_t n = 4 + static_cast<idx_t>(rng.next_below(8));  // 4..11
  // Random spanning-tree backbone keeps the graph connected; extra random
  // edges with random weights make the cut structure non-trivial.
  GraphBuilder b(n, 1 + static_cast<int>(rng.next_below(3)));
  for (idx_t v = 1; v < n; ++v) {
    const idx_t u = static_cast<idx_t>(rng.next_below(static_cast<std::uint64_t>(v)));
    b.add_edge(v, u, 1 + static_cast<wgt_t>(rng.next_below(9)));
  }
  const int extra = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
  for (int e = 0; e < extra; ++e) {
    const idx_t v = static_cast<idx_t>(rng.next_below(static_cast<std::uint64_t>(n)));
    const idx_t u = static_cast<idx_t>(rng.next_below(static_cast<std::uint64_t>(n)));
    if (v != u) b.add_edge(v, u, 1 + static_cast<wgt_t>(rng.next_below(9)));
  }
  for (idx_t v = 0; v < n; ++v) {
    for (int i = 0; i < b.ncon(); ++i) {
      b.set_weight(v, i, 1 + static_cast<wgt_t>(rng.next_below(5)));
    }
  }
  return b.build();
}

Graph random_pipeline_graph(Rng& rng) {
  const idx_t n = 40 + static_cast<idx_t>(rng.next_below(260));
  switch (rng.next_below(3)) {
    case 0: {
      const idx_t side = std::max<idx_t>(4, static_cast<idx_t>(std::sqrt(n)));
      return grid2d(side, side);
    }
    case 1:
      return random_geometric(n, 0, rng.next_u64());
    default:
      return random_graph(n, 2.0 + 5.0 * rng.next_real(), rng.next_u64());
  }
}

void apply_random_weights(Graph& g, Rng& rng) {
  const int m = 1 + static_cast<int>(rng.next_below(4));
  switch (rng.next_below(3)) {
    case 0:
      apply_type_r_weights(g, m, 0, 1 + static_cast<wgt_t>(rng.next_below(20)),
                           rng.next_u64());
      break;
    case 1:
      apply_type_s_weights(g, m, 2 + static_cast<idx_t>(rng.next_below(20)), 0,
                           19, rng.next_u64());
      break;
    default:
      apply_type_p_weights(g, m, 4 + static_cast<idx_t>(rng.next_below(30)),
                           rng.next_u64());
      break;
  }
}

int fuzz_case_budget() {
  const char* s = std::getenv("MCGP_FUZZ_CASES");
  if (s != nullptr) {
    const int n = std::atoi(s);
    if (n > 0) return n;
  }
  return 200;
}

/// One audited end-to-end run; returns the result so callers can layer
/// extra differential assertions on top. Any AuditFailure fails the test.
PartitionResult audited_run(const Graph& g, Options opts, Algorithm alg,
                            std::uint64_t replay_seed) {
  InvariantAuditor audit(AuditLevel::kParanoid);
  opts.algorithm = alg;
  opts.audit = &audit;
  PartitionResult r;
  try {
    r = partition(g, opts);
  } catch (const AuditFailure& f) {
    ADD_FAILURE() << "invariant violation (seed " << replay_seed
                  << ", alg " << (alg == Algorithm::kKWay ? "kway" : "rb")
                  << "): " << f.what();
    return r;
  }
  EXPECT_GT(audit.total_checks(), 0u)
      << "paranoid run performed no checks (seed " << replay_seed << ")";
  EXPECT_EQ(r.cut, edge_cut(g, r.part)) << "seed " << replay_seed;
  EXPECT_TRUE(validate_partition(g, r.part, opts.nparts).empty())
      << "seed " << replay_seed;
  return r;
}

TEST(DifferentialFuzz, TinyGraphsAgainstExactBisector) {
  Rng rng(20260805);
  const int cases = 120;
  for (int c = 0; c < cases; ++c) {
    const std::uint64_t replay_seed = rng.next_u64();
    Rng gen(replay_seed);
    const Graph g = random_tiny_graph(gen);
    ASSERT_TRUE(g.validate().empty()) << "seed " << replay_seed;

    // Clamped per constraint to the instance's provable floor (skewed
    // 1..5 weights on 4..11 vertices can push the pigeonhole bound past
    // the raw draw, which validate_options would reject).
    const real_t raw_ub = 1.2 + 0.4 * gen.next_real();
    const std::vector<real_t> floor_ub = min_feasible_ubvec(g, 2, nullptr);
    BisectionTargets targets;
    targets.ub.resize(to_size(g.ncon));
    for (int i = 0; i < g.ncon; ++i) {
      targets.ub[to_size(i)] = std::max(raw_ub, floor_ub[to_size(i)]);
    }
    const ExactBisection exact = exact_best_bisection(g, targets);

    Options opts;
    opts.nparts = 2;
    opts.seed = gen.next_u64();
    opts.ubvec = targets.ub;
    for (const Algorithm alg :
         {Algorithm::kRecursiveBisection, Algorithm::kKWay}) {
      const PartitionResult r = audited_run(g, opts, alg, replay_seed);
      // The exact unconstrained minimum bounds ANY 2-part cut with two
      // non-empty parts from below (the partitioner guarantees non-empty
      // parts whenever nvtxs >= nparts).
      EXPECT_GE(r.cut, exact.min_cut_any) << "seed " << replay_seed;
      // A feasible result can never beat the best feasible bisection.
      if (exact.min_cut_feasible.has_value() &&
          r.max_imbalance <= 1.0 + 1e-9) {
        EXPECT_GE(r.cut, *exact.min_cut_feasible) << "seed " << replay_seed;
      }
    }
  }
}

TEST(DifferentialFuzz, PipelineCasesStayInvariantClean) {
  Rng rng(97);
  const int cases = fuzz_case_budget();
  for (int c = 0; c < cases; ++c) {
    const std::uint64_t replay_seed = rng.next_u64();
    Rng gen(replay_seed);
    Graph g = random_pipeline_graph(gen);
    apply_random_weights(g, gen);
    ASSERT_TRUE(g.validate().empty()) << "seed " << replay_seed;

    Options opts;
    opts.nparts = 2 + static_cast<idx_t>(gen.next_below(14));
    opts.seed = gen.next_u64();
    opts.num_threads = c % 4 == 0 ? 2 : 1;
    opts.ubvec.assign(to_size(g.ncon),
                      1.03 + 0.12 * gen.next_real());
    // Clamp to the instance's provable floor so validate_options accepts
    // the configuration (explicitly infeasible tolerances now throw).
    const std::vector<real_t> floor_ub =
        min_feasible_ubvec(g, opts.nparts, nullptr);
    for (std::size_t i = 0; i < opts.ubvec.size(); ++i) {
      opts.ubvec[i] = std::max(opts.ubvec[i], floor_ub[i]);
    }
    if (gen.next_bool()) {
      opts.kway_scheme = KWayRefineScheme::kPriorityQueue;
    }

    const PartitionResult rb =
        audited_run(g, opts, Algorithm::kRecursiveBisection, replay_seed);
    const PartitionResult kw =
        audited_run(g, opts, Algorithm::kKWay, replay_seed);
    // Differential sanity between the two algorithms: identical inputs,
    // independent code paths, so both must produce structurally valid
    // partitions of the same graph — and metrics computed from them must
    // agree with the partition they describe (checked in audited_run).
    EXPECT_EQ(rb.part.size(), kw.part.size()) << "seed " << replay_seed;
  }
}

}  // namespace
}  // namespace mcgp
