#include "support/bucket_queue.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "support/random.hpp"

namespace mcgp {
namespace {

TEST(BucketQueue, EmptyAfterReset) {
  BucketQueue q;
  q.reset(10);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0);
  EXPECT_FALSE(q.contains(0));
}

TEST(BucketQueue, InsertPopSingle) {
  BucketQueue q;
  q.reset(4);
  q.insert(2, 7);
  EXPECT_TRUE(q.contains(2));
  EXPECT_EQ(q.size(), 1);
  EXPECT_EQ(q.max_key(), 7);
  EXPECT_EQ(q.pop_max(), 2);
  EXPECT_TRUE(q.empty());
}

TEST(BucketQueue, PopsInDescendingKeyOrder) {
  BucketQueue q;
  q.reset(5);
  q.insert(0, -3);
  q.insert(1, 10);
  q.insert(2, 0);
  q.insert(3, 10);
  q.insert(4, 5);
  wgt_t last = 1000;
  while (!q.empty()) {
    const wgt_t k = q.max_key();
    EXPECT_LE(k, last);
    last = k;
    q.pop_max();
  }
}

TEST(BucketQueue, RemoveMiddle) {
  BucketQueue q;
  q.reset(3);
  q.insert(0, 1);
  q.insert(1, 2);
  q.insert(2, 3);
  q.remove(1);
  EXPECT_FALSE(q.contains(1));
  EXPECT_EQ(q.pop_max(), 2);
  EXPECT_EQ(q.pop_max(), 0);
}

TEST(BucketQueue, UpdateChangesOrder) {
  BucketQueue q;
  q.reset(2);
  q.insert(0, 1);
  q.insert(1, 2);
  q.update(0, 5);
  EXPECT_EQ(q.key(0), 5);
  EXPECT_EQ(q.pop_max(), 0);
}

TEST(BucketQueue, UpdateSameKeyIsNoop) {
  BucketQueue q;
  q.reset(2);
  q.insert(0, 3);
  q.update(0, 3);
  EXPECT_EQ(q.key(0), 3);
  EXPECT_EQ(q.pop_max(), 0);
}

TEST(BucketQueue, GrowsRangeOnDemand) {
  BucketQueue q;
  q.reset(4, /*expected_max_gain=*/2);
  q.insert(0, 1000000);
  q.insert(1, -1000000);
  q.insert(2, 0);
  EXPECT_EQ(q.pop_max(), 0);
  EXPECT_EQ(q.pop_max(), 2);
  EXPECT_EQ(q.pop_max(), 1);
}

TEST(BucketQueue, TiesPopLifoWithinBucket) {
  BucketQueue q;
  q.reset(3);
  q.insert(0, 5);
  q.insert(1, 5);
  q.insert(2, 5);
  // Intrusive head insertion: most recently inserted pops first.
  EXPECT_EQ(q.pop_max(), 2);
  EXPECT_EQ(q.pop_max(), 1);
  EXPECT_EQ(q.pop_max(), 0);
}

TEST(BucketQueue, ResetClearsState) {
  BucketQueue q;
  q.reset(3);
  q.insert(0, 1);
  q.reset(3);
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.contains(0));
  q.insert(0, 2);
  EXPECT_EQ(q.key(0), 2);
}

/// Randomized stress test against a reference implementation.
TEST(BucketQueue, StressAgainstReference) {
  constexpr idx_t kN = 200;
  BucketQueue q;
  q.reset(kN);
  // Reference: key per id plus an ordered multiset of (key, id).
  std::map<idx_t, wgt_t> ref;
  Rng rng(99);

  for (int step = 0; step < 20000; ++step) {
    const int op = static_cast<int>(rng.next_below(4));
    const idx_t id = static_cast<idx_t>(rng.next_below(kN));
    const wgt_t key = static_cast<wgt_t>(rng.next_in(-50, 50));
    if (op == 0) {  // insert
      if (ref.find(id) == ref.end()) {
        ref[id] = key;
        q.insert(id, key);
      }
    } else if (op == 1) {  // remove
      if (ref.find(id) != ref.end()) {
        ref.erase(id);
        q.remove(id);
      }
    } else if (op == 2) {  // update
      if (ref.find(id) != ref.end()) {
        ref[id] = key;
        q.update(id, key);
      }
    } else {  // pop max
      if (!ref.empty()) {
        ASSERT_FALSE(q.empty());
        wgt_t expect_max = -1000;
        for (const auto& [i, k] : ref) expect_max = std::max(expect_max, k);
        ASSERT_EQ(q.max_key(), expect_max);
        const idx_t popped = q.pop_max();
        ASSERT_EQ(ref[popped], expect_max);
        ref.erase(popped);
      }
    }
    ASSERT_EQ(q.size(), static_cast<idx_t>(ref.size()));
  }
}

}  // namespace
}  // namespace mcgp
