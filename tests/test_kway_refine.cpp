#include "core/kway_refine.hpp"

#include <gtest/gtest.h>

#include "gen/mesh_gen.hpp"
#include "gen/weight_gen.hpp"
#include "graph/metrics.hpp"
#include "support/thread_pool.hpp"
#include "support/workspace.hpp"

namespace mcgp {
namespace {

std::vector<real_t> ubvec(int ncon, real_t ub = 1.05) {
  return std::vector<real_t>(to_size(ncon), ub);
}

/// Stripe partition of a grid along x (contiguous, balanced).
std::vector<idx_t> stripes(idx_t nx, idx_t ny, idx_t k) {
  std::vector<idx_t> part(to_size(nx) * to_size(ny));
  for (idx_t x = 0; x < nx; ++x) {
    for (idx_t y = 0; y < ny; ++y) {
      part[to_size(x * ny + y)] = std::min<idx_t>(x * k / nx, k - 1);
    }
  }
  return part;
}

/// Scrambled-but-balanced partition (round robin = terrible cut).
std::vector<idx_t> round_robin(idx_t n, idx_t k) {
  std::vector<idx_t> part(to_size(n));
  for (idx_t v = 0; v < n; ++v) part[to_size(v)] = v % k;
  return part;
}

/// Randomly scrambled partition: unlike round robin on a grid (which
/// forms 1-wide stripes with no positive-gain single moves), a random
/// scramble leaves plenty of greedy improvements.
std::vector<idx_t> scrambled(idx_t n, idx_t k, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<idx_t> part(to_size(n));
  for (idx_t v = 0; v < n; ++v) {
    part[to_size(v)] = static_cast<idx_t>(rng.next_below(static_cast<std::uint64_t>(k)));
  }
  return part;
}

TEST(KWayFeasible, DetectsOverload) {
  Graph g = grid2d(4, 4);
  const auto balanced = round_robin(16, 4);
  EXPECT_TRUE(kway_feasible(g, compute_part_weights(g, balanced, 4), 4,
                            ubvec(1)));
  std::vector<idx_t> skewed(16, 0);
  skewed[0] = 1;
  skewed[1] = 2;
  skewed[2] = 3;
  EXPECT_FALSE(kway_feasible(g, compute_part_weights(g, skewed, 4), 4,
                             ubvec(1)));
}

TEST(KWayRefine, ImprovesScrambledCutMassively) {
  Graph g = grid2d(20, 20);
  std::vector<idx_t> part = scrambled(400, 4, 17);
  Rng balance_rng(0);
  kway_balance(g, 4, part, ubvec(1), balance_rng);  // make the start feasible
  const sum_t before = edge_cut(g, part);
  Rng rng(1);
  const sum_t after = kway_refine(g, 4, part, ubvec(1), 8, rng);
  EXPECT_LT(after, before / 2);
  EXPECT_EQ(after, edge_cut(g, part));
  EXPECT_TRUE(kway_feasible(g, compute_part_weights(g, part, 4), 4, ubvec(1)));
}

TEST(KWayRefine, StripesAreAGreedyLocalMinimum) {
  // 1-wide stripes (round robin by column) admit no positive-gain single
  // moves; greedy refinement must not make the cut worse and must keep
  // the partition feasible. (Escaping this minimum is the multilevel
  // driver's job, not the flat refiner's.)
  Graph g = grid2d(20, 20);
  std::vector<idx_t> part = round_robin(400, 4);
  const sum_t before = edge_cut(g, part);
  Rng rng(1);
  const sum_t after = kway_refine(g, 4, part, ubvec(1), 8, rng);
  EXPECT_LE(after, before);
  EXPECT_TRUE(kway_feasible(g, compute_part_weights(g, part, 4), 4, ubvec(1)));
}

TEST(KWayRefine, NeverWorsensGoodPartition) {
  Graph g = grid2d(24, 24);
  std::vector<idx_t> part = stripes(24, 24, 4);
  const sum_t before = edge_cut(g, part);
  Rng rng(2);
  const sum_t after = kway_refine(g, 4, part, ubvec(1), 8, rng);
  EXPECT_LE(after, before);
}

TEST(KWayRefine, KeepsAllPartsNonEmpty) {
  Graph g = grid2d(12, 12);
  std::vector<idx_t> part = round_robin(144, 9);
  Rng rng(3);
  kway_refine(g, 9, part, ubvec(1), 8, rng);
  EXPECT_TRUE(validate_partition(g, part, 9, /*require_nonempty=*/true).empty());
}

TEST(KWayRefine, MultiConstraintStaysFeasible) {
  Graph g = random_geometric(1200, 0, 8, 3);
  apply_type_s_weights(g, 3, 16, 0, 19, 4);
  // Start from contiguous regions mapped onto 8 parts via stripes of ids.
  std::vector<idx_t> part(to_size(g.nvtxs));
  for (idx_t v = 0; v < g.nvtxs; ++v) part[to_size(v)] = v % 8;
  Rng rng(5);
  KWayRefineStats stats;
  kway_refine(g, 8, part, ubvec(3, 1.10), 8, rng, &stats);
  EXPECT_TRUE(stats.feasible);
  for (const real_t lb : imbalance(g, part, 8)) EXPECT_LE(lb, 1.10 + 1e-9);
}

TEST(KWayBalance, RepairsSkewedPartition) {
  Graph g = grid2d(16, 16);
  // Everything in part 0 except a few vertices.
  std::vector<idx_t> part(256, 0);
  for (idx_t p = 1; p < 4; ++p) part[to_size(p)] = p;
  Rng rng(6);
  EXPECT_TRUE(kway_balance(g, 4, part, ubvec(1, 1.05), rng));
  EXPECT_LE(max_imbalance(g, part, 4), 1.05 + 1e-9);
}

TEST(KWayBalance, NoopWhenFeasible) {
  Graph g = grid2d(10, 10);
  std::vector<idx_t> part = round_robin(100, 4);
  const auto before = part;
  Rng rng(7);
  EXPECT_TRUE(kway_balance(g, 4, part, ubvec(1), rng));
  EXPECT_EQ(part, before);
}

TEST(KWayBalance, ComplementaryOverloadEscape) {
  // Two parts overloaded in different constraints; the potential-reducing
  // acceptance must route weight through the slack parts.
  GraphBuilder bld(120, 2);
  for (idx_t v = 0; v + 1 < 120; ++v) bld.add_edge(v, v + 1);
  for (idx_t v = 0; v < 120; ++v) {
    bld.set_weights(v, v < 60 ? std::vector<wgt_t>{3, 1}
                              : std::vector<wgt_t>{1, 3});
  }
  Graph g = bld.build();
  // part 0 = all (3,1) vertices, part 1 = all (1,3), parts 2,3 get scraps.
  std::vector<idx_t> part(120);
  for (idx_t v = 0; v < 120; ++v) {
    part[to_size(v)] =
        v < 55 ? 0 : (v < 60 ? 2 : (v < 115 ? 1 : 3));
  }
  Rng rng(8);
  kway_balance(g, 4, part, ubvec(2, 1.10), rng);
  EXPECT_LE(max_imbalance(g, part, 4), 1.35);  // from ~1.8+ initially
}

TEST(KWayRefine, StatsConsistent) {
  Graph g = grid2d(15, 15);
  std::vector<idx_t> part = scrambled(225, 5, 3);
  KWayRefineStats stats;
  Rng rng(9);
  const sum_t cut = kway_refine(g, 5, part, ubvec(1), 6, rng, &stats);
  EXPECT_EQ(stats.final_cut, cut);
  EXPECT_GT(stats.passes, 0);
  EXPECT_GT(stats.moves, 0);
}

// The colored sweep's propose phases are chunk tasks; attaching a pool
// must not change a single move — the partition after refinement is bit-
// identical to the inline execution at every seed.
TEST(KWayRefine, PooledColoredSweepBitIdenticalToInline) {
  Graph g = grid2d(96, 96);
  apply_type_s_weights(g, 2, 10, 0, 9, 3);
  std::vector<idx_t> inline_part = scrambled(g.nvtxs, 16, 21);
  std::vector<idx_t> pooled_part = inline_part;

  Rng a(4);
  const sum_t inline_cut = kway_refine(g, 16, inline_part, ubvec(2, 1.10),
                                       8, a);

  ThreadPool pool(4);
  WorkspacePool wspool;
  KWayExec exec;
  exec.pool = &pool;
  exec.wspool = &wspool;
  Rng b(4);
  const sum_t pooled_cut =
      kway_refine(g, 16, pooled_part, ubvec(2, 1.10), 8, b, nullptr, nullptr,
                  nullptr, nullptr, nullptr, &exec);

  EXPECT_EQ(pooled_part, inline_part);
  EXPECT_EQ(pooled_cut, inline_cut);
  EXPECT_GT(wspool.footprint_bytes(), 0);  // chunk leases were accounted
}

TEST(KWayRefinePq, ImprovesScrambledCutMassively) {
  Graph g = grid2d(20, 20);
  std::vector<idx_t> part = scrambled(400, 4, 17);
  Rng balance_rng(0);
  kway_balance(g, 4, part, ubvec(1), balance_rng);
  const sum_t before = edge_cut(g, part);
  Rng rng(1);
  const sum_t after = kway_refine_pq(g, 4, part, ubvec(1), 8, rng);
  EXPECT_LT(after, before / 2);
  EXPECT_EQ(after, edge_cut(g, part));
  EXPECT_TRUE(kway_feasible(g, compute_part_weights(g, part, 4), 4, ubvec(1)));
}

TEST(KWayRefinePq, NeverWorsensGoodPartition) {
  Graph g = grid2d(24, 24);
  std::vector<idx_t> part = stripes(24, 24, 4);
  const sum_t before = edge_cut(g, part);
  Rng rng(2);
  EXPECT_LE(kway_refine_pq(g, 4, part, ubvec(1), 8, rng), before);
}

TEST(KWayRefinePq, MultiConstraintStaysFeasible) {
  Graph g = random_geometric(1000, 0, 9, 3);
  apply_type_s_weights(g, 3, 16, 0, 19, 6);
  std::vector<idx_t> part(to_size(g.nvtxs));
  for (idx_t v = 0; v < g.nvtxs; ++v) part[to_size(v)] = v % 6;
  Rng rng(7);
  KWayRefineStats stats;
  kway_refine_pq(g, 6, part, ubvec(3, 1.10), 8, rng, &stats);
  EXPECT_TRUE(stats.feasible);
  EXPECT_TRUE(validate_partition(g, part, 6, true).empty());
}

TEST(KWayRefinePq, ComparableToSweepOnGrids) {
  Graph g = grid2d(30, 30);
  std::vector<idx_t> a = scrambled(900, 5, 9);
  std::vector<idx_t> b = a;
  Rng r0(0), r1(1), r2(1);
  kway_balance(g, 5, a, ubvec(1), r0);
  b = a;
  const sum_t cut_sweep = kway_refine(g, 5, a, ubvec(1), 8, r1);
  const sum_t cut_pq = kway_refine_pq(g, 5, b, ubvec(1), 8, r2);
  // Both refiners converge to the same quality class.
  EXPECT_LT(static_cast<double>(cut_pq), 1.5 * static_cast<double>(cut_sweep));
  EXPECT_LT(static_cast<double>(cut_sweep), 1.5 * static_cast<double>(cut_pq));
}

TEST(KWayRefine, SinglePartIsNoop) {
  Graph g = grid2d(6, 6);
  std::vector<idx_t> part(36, 0);
  Rng rng(10);
  const sum_t cut = kway_refine(g, 1, part, ubvec(1), 4, rng);
  EXPECT_EQ(cut, 0);
  for (const idx_t p : part) EXPECT_EQ(p, 0);
}

}  // namespace
}  // namespace mcgp
