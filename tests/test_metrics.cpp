#include "graph/metrics.hpp"

#include <gtest/gtest.h>

#include "gen/mesh_gen.hpp"

namespace mcgp {
namespace {

Graph path4() {
  GraphBuilder b(4, 1);
  b.add_edge(0, 1, 2);
  b.add_edge(1, 2, 3);
  b.add_edge(2, 3, 5);
  return b.build();
}

TEST(EdgeCut, ByHandOnPath) {
  Graph g = path4();
  EXPECT_EQ(edge_cut(g, {0, 0, 1, 1}), 3);
  EXPECT_EQ(edge_cut(g, {0, 1, 0, 1}), 10);
  EXPECT_EQ(edge_cut(g, {0, 0, 0, 0}), 0);
  EXPECT_EQ(edge_cut(g, {0, 1, 2, 3}), 10);
}

TEST(EdgeCut, GridBisection) {
  Graph g = grid2d(4, 4);
  std::vector<idx_t> part(16);
  for (idx_t v = 0; v < 16; ++v) part[to_size(v)] = v < 8 ? 0 : 1;
  EXPECT_EQ(edge_cut(g, part), 4);  // one straight cut through a 4x4 grid
}

TEST(PartWeights, MultiConstraint) {
  GraphBuilder b(3, 2);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.set_weights(0, {1, 10});
  b.set_weights(1, {2, 20});
  b.set_weights(2, {3, 30});
  Graph g = b.build();
  const auto pw = part_weights(g, {0, 1, 0}, 2);
  EXPECT_EQ(pw[0 * 2 + 0], 4);
  EXPECT_EQ(pw[0 * 2 + 1], 40);
  EXPECT_EQ(pw[1 * 2 + 0], 2);
  EXPECT_EQ(pw[1 * 2 + 1], 20);
}

TEST(Imbalance, PerfectBalance) {
  Graph g = path4();
  const auto lb = imbalance(g, {0, 0, 1, 1}, 2);
  ASSERT_EQ(lb.size(), 1u);
  EXPECT_DOUBLE_EQ(lb[0], 1.0);
}

TEST(Imbalance, SkewedPartition) {
  Graph g = path4();
  // 3 vertices vs 1: max part weight 3 of total 4, k=2 -> lb = 1.5.
  EXPECT_DOUBLE_EQ(max_imbalance(g, {0, 0, 0, 1}, 2), 1.5);
}

TEST(Imbalance, ZeroTotalConstraintIgnored) {
  GraphBuilder b(2, 2);
  b.add_edge(0, 1);
  b.set_weights(0, {1, 0});
  b.set_weights(1, {1, 0});
  Graph g = b.build();
  const auto lb = imbalance(g, {0, 1}, 2);
  EXPECT_DOUBLE_EQ(lb[1], 1.0);
}

TEST(Imbalance, PerConstraintIndependent) {
  GraphBuilder b(2, 2);
  b.add_edge(0, 1);
  b.set_weights(0, {3, 1});
  b.set_weights(1, {1, 3});
  Graph g = b.build();
  const auto lb = imbalance(g, {0, 1}, 2);
  EXPECT_DOUBLE_EQ(lb[0], 1.5);
  EXPECT_DOUBLE_EQ(lb[1], 1.5);
}

TEST(CommunicationVolume, ByHand) {
  // Star: center 0 with 3 leaves in different parts.
  GraphBuilder b(4, 1);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(0, 3);
  Graph g = b.build();
  // part: 0 alone; leaves in parts 1,1,2. Center sees 2 remote parts;
  // each leaf sees 1 remote part -> total 5.
  EXPECT_EQ(communication_volume(g, {0, 1, 1, 2}, 3), 5);
  EXPECT_EQ(communication_volume(g, {0, 0, 0, 0}, 1), 0);
}

TEST(BoundaryVertices, GridCut) {
  Graph g = grid2d(4, 4);
  std::vector<idx_t> part(16);
  for (idx_t v = 0; v < 16; ++v) part[to_size(v)] = v < 8 ? 0 : 1;
  EXPECT_EQ(boundary_vertices(g, part), 8);
}

TEST(ValidatePartition, AcceptsValid) {
  Graph g = path4();
  EXPECT_TRUE(validate_partition(g, {0, 1, 1, 0}, 2).empty());
  EXPECT_TRUE(validate_partition(g, {0, 1, 1, 0}, 2, true).empty());
}

TEST(ValidatePartition, RejectsBad) {
  Graph g = path4();
  EXPECT_FALSE(validate_partition(g, {0, 1, 1}, 2).empty());      // size
  EXPECT_FALSE(validate_partition(g, {0, 1, 2, 0}, 2).empty());   // range
  EXPECT_FALSE(validate_partition(g, {0, -1, 1, 0}, 2).empty());  // range
  EXPECT_FALSE(validate_partition(g, {0, 0, 0, 0}, 2, true).empty());  // empty part
}

TEST(ValidatePartition, EmptyPartAllowedWhenFewVertices) {
  GraphBuilder b(2, 1);
  b.add_edge(0, 1);
  Graph g = b.build();
  // nvtxs < nparts: emptiness check is waived.
  EXPECT_TRUE(validate_partition(g, {0, 1}, 5, true).empty());
}

TEST(ValidatePartition, RejectsNonPositiveNparts) {
  Graph g = path4();
  EXPECT_FALSE(validate_partition(g, {0, 0, 0, 0}, 0).empty());
  EXPECT_FALSE(validate_partition(g, {0, 0, 0, 0}, -3).empty());
}

TEST(ValidatePartition, EmptyGraphWithEmptyPartition) {
  GraphBuilder b(0, 1);
  Graph g = b.build();
  EXPECT_TRUE(validate_partition(g, {}, 1).empty());
  EXPECT_FALSE(validate_partition(g, {0}, 1).empty());  // size mismatch
}

TEST(ValidatePartition, SinglePartAndBoundaryIds) {
  Graph g = path4();
  // Everything in the single allowed part is valid; nparts itself is the
  // first out-of-range id.
  EXPECT_TRUE(validate_partition(g, {0, 0, 0, 0}, 1).empty());
  EXPECT_FALSE(validate_partition(g, {0, 0, 0, 1}, 1).empty());
  EXPECT_TRUE(validate_partition(g, {0, 1, 2, 3}, 4).empty());
  EXPECT_FALSE(validate_partition(g, {0, 1, 2, 4}, 4).empty());
}

}  // namespace
}  // namespace mcgp
