#include "support/perf_counters.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "core/partitioner.hpp"
#include "gen/mesh_gen.hpp"
#include "gen/weight_gen.hpp"
#include "json_test_util.hpp"
#include "support/json_writer.hpp"
#include "support/schema.hpp"

namespace mcgp {
namespace {

/// RAII environment override (MCGP_PERF_DISABLE is read per Profiler
/// construction, so scoping the variable scopes the forced fallback).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_) {
      ::setenv(name_.c_str(), saved_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::string saved_;
  bool had_ = false;
};

Graph make_pipeline_graph() {
  Graph g = tri_grid2d(40, 40);
  apply_type_s_weights(g, 2, 8, 0, 19, 7);
  return g;
}

// --- multiplexing-scaling math on synthetic readings -----------------------

TEST(PerfScale, NeverScheduledReadsZero) {
  EXPECT_EQ(perf_scale(12345, 1000000, 0), 0);
}

TEST(PerfScale, FullyScheduledIsUnscaled) {
  EXPECT_EQ(perf_scale(12345, 1000000, 1000000), 12345);
  // running > enabled (clock skew between the two kernel reads) must not
  // scale the value down.
  EXPECT_EQ(perf_scale(12345, 1000000, 1000001), 12345);
}

TEST(PerfScale, HalfScheduledDoubles) {
  EXPECT_EQ(perf_scale(500, 1000000, 500000), 1000);
  EXPECT_EQ(perf_scale(300, 900000, 300000), 900);
}

TEST(PerfScale, ZeroRawStaysZero) {
  EXPECT_EQ(perf_scale(0, 1000000, 250000), 0);
}

// --- forced fallback via MCGP_PERF_DISABLE ---------------------------------

TEST(Profiler, EnvDisableForcesTheUnavailablePath) {
  ScopedEnv env("MCGP_PERF_DISABLE", "1");
  Profiler prof;
  EXPECT_FALSE(prof.counters_available());
  EXPECT_NE(prof.status().find("MCGP_PERF_DISABLE"), std::string::npos)
      << prof.status();
  EXPECT_EQ(prof.thread_group(), nullptr);
  for (int c = 0; c < kNumPerfCounters; ++c) {
    EXPECT_FALSE(prof.counter_open(static_cast<PerfCounter>(c)));
  }

  // Scopes still aggregate wall time and work items — the profile stays
  // structurally complete, only the hardware columns are absent.
  {
    ProfScope sc(&prof, "phase_a", 2);
    sc.work(100, 40);
  }
  const ProfBucket b = prof.phase_total("phase_a");
  EXPECT_EQ(b.scopes, 1);
  EXPECT_EQ(b.edges, 100);
  EXPECT_EQ(b.vtxs, 40);
  EXPECT_GE(b.wall_ns, 0);
  for (int c = 0; c < kNumPerfCounters; ++c) EXPECT_EQ(b.counters[c], 0);
}

TEST(Profiler, EnvDisableZeroMeansEnabled) {
  // "0" is the documented off-switch for the override itself; the
  // profiler then probes the kernel normally (either outcome is legal).
  ScopedEnv env("MCGP_PERF_DISABLE", "0");
  Profiler prof;
  EXPECT_NE(prof.status().find("MCGP_PERF_DISABLE"), 0u) << prof.status();
}

// --- bucket folding and snapshots ------------------------------------------

TEST(Profiler, FoldMergesBucketsBySummation) {
  ScopedEnv env("MCGP_PERF_DISABLE", "1");
  Profiler prof;
  ProfBucket d;
  d.scopes = 1;
  d.edges = 10;
  d.vtxs = 4;
  d.wall_ns = 100;
  d.counters[0] = 7;
  prof.fold("m", 0, d);
  prof.fold("m", 0, d);
  prof.fold("m", 1, d);
  prof.fold("z", -1, d);

  const std::vector<ProfPhase> snap = prof.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  // Ordered by (phase, level).
  EXPECT_EQ(snap[0].phase, "m");
  EXPECT_EQ(snap[0].level, 0);
  EXPECT_EQ(snap[0].stats.scopes, 2);
  EXPECT_EQ(snap[0].stats.edges, 20);
  EXPECT_EQ(snap[0].stats.counters[0], 14);
  EXPECT_EQ(snap[1].phase, "m");
  EXPECT_EQ(snap[1].level, 1);
  EXPECT_EQ(snap[2].phase, "z");
  EXPECT_EQ(snap[2].level, -1);

  // phase_total sums one phase across its levels.
  const ProfBucket total = prof.phase_total("m");
  EXPECT_EQ(total.scopes, 3);
  EXPECT_EQ(total.edges, 30);
  EXPECT_EQ(total.counters[0], 21);

  prof.clear();
  EXPECT_TRUE(prof.snapshot().empty());
}

TEST(Profiler, DetachedScopeIsANoOp) {
  ProfScope sc(nullptr, "anything", 3);
  sc.work(1000, 100);
  sc.finish();  // must be safe and idempotent detached
}

// --- JSON round-trip --------------------------------------------------------

TEST(Profiler, ReportRoundTripsWithSchemaVersion) {
  ScopedEnv env("MCGP_PERF_DISABLE", "1");
  Profiler prof;
  {
    ProfScope sc(&prof, "coarsen.matching", 0);
    sc.work(50, 20);
  }
  std::ostringstream out;
  {
    JsonWriter w(out);
    prof.write_json_value(w);
  }
  const auto doc = testing::parse_json(out.str());
  ASSERT_TRUE(doc.has_value()) << out.str();
  ASSERT_TRUE(doc->is_object());
  ASSERT_NE(doc->find("schema_version"), nullptr);
  EXPECT_EQ(doc->find("schema_version")->number,
            static_cast<double>(kMcgpSchemaVersion));
  ASSERT_NE(doc->find("available"), nullptr);
  EXPECT_FALSE(doc->find("available")->boolean);
  ASSERT_NE(doc->find("status"), nullptr);
  EXPECT_NE(doc->find("status")->str.find("MCGP_PERF_DISABLE"),
            std::string::npos);
  ASSERT_NE(doc->find("counters"), nullptr);
  EXPECT_TRUE(doc->find("counters")->array.empty());
  ASSERT_NE(doc->find("phases"), nullptr);
  ASSERT_EQ(doc->find("phases")->array.size(), 1u);
  const testing::JsonValue& row = doc->find("phases")->array[0];
  EXPECT_EQ(row.find("phase")->str, "coarsen.matching");
  EXPECT_EQ(row.find("level")->number, 0.0);
  EXPECT_EQ(row.find("edges")->number, 50.0);
  EXPECT_EQ(row.find("vtxs")->number, 20.0);
  ASSERT_NE(row.find("wall_ns"), nullptr);
}

TEST(Profiler, LiveRunReportIsWellFormedEitherWay) {
  // No env override: whatever this kernel provides (full counters, only
  // software events, or nothing) the JSON contract must hold.
  Profiler prof;
  Graph g = make_pipeline_graph();
  Options o;
  o.nparts = 4;
  o.profile = &prof;
  const PartitionResult r = partition(g, o);
  ASSERT_EQ(r.part.size(), to_size(g.nvtxs));

  std::ostringstream out;
  {
    JsonWriter w(out);
    prof.write_json_value(w);
  }
  const auto doc = testing::parse_json(out.str());
  ASSERT_TRUE(doc.has_value()) << out.str();
  ASSERT_NE(doc->find("available"), nullptr);
  ASSERT_NE(doc->find("phases"), nullptr);
  EXPECT_FALSE(doc->find("phases")->array.empty());

  // The whole-run scope observed the finest graph exactly once.
  const ProfBucket run = prof.phase_total("run");
  EXPECT_EQ(run.scopes, 1);
  EXPECT_EQ(run.edges, g.nedges());
  EXPECT_EQ(run.vtxs, g.nvtxs);
  EXPECT_GT(run.wall_ns, 0);
  if (prof.counters_available()) {
    EXPECT_EQ(doc->find("available")->boolean, true);
    EXPECT_EQ(doc->find("status")->str, "ok");
    EXPECT_FALSE(doc->find("counters")->array.empty());
    // Every nested phase is inside "run", so no single phase can exceed
    // the run's enabled time budget by more than scheduling noise.
    EXPECT_GT(run.enabled_ns, 0);
  }
}

// --- determinism: attaching the profiler never changes the partition -------

TEST(ProfilerDeterminism, AttachedProfilerKeepsPartitionsBitIdentical) {
  Graph g = make_pipeline_graph();
  for (const Algorithm alg :
       {Algorithm::kRecursiveBisection, Algorithm::kKWay}) {
    Options base;
    base.nparts = 8;
    base.algorithm = alg;
    base.seed = 3;
    const PartitionResult ref = partition(g, base);

    for (const int threads : {1, 8}) {
      Profiler prof;
      Options o = base;
      o.num_threads = threads;
      o.profile = &prof;
      const PartitionResult r = partition(g, o);
      EXPECT_EQ(r.part, ref.part)
          << "profiler attached, alg="
          << (alg == Algorithm::kKWay ? "kway" : "rb")
          << " threads=" << threads;
      // The profiler really observed the run it left unchanged.
      EXPECT_EQ(prof.phase_total("run").scopes, 1);
      EXPECT_GT(prof.phase_total("run").wall_ns, 0);
    }
  }
}

}  // namespace
}  // namespace mcgp
