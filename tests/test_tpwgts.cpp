// Per-part target fractions (tpwgts): heterogeneous part sizes with every
// constraint balanced against the prescribed fractions.
#include <gtest/gtest.h>

#include "core/partitioner.hpp"
#include "gen/mesh_gen.hpp"
#include "gen/weight_gen.hpp"
#include "graph/metrics.hpp"
#include "support/check.hpp"

namespace mcgp {
namespace {

TEST(TargetImbalanceMetric, UniformMatchesPlainImbalance) {
  Graph g = grid2d(10, 10);
  std::vector<idx_t> part(100);
  for (idx_t v = 0; v < 100; ++v) part[to_size(v)] = v % 4;
  const auto plain = imbalance(g, part, 4);
  const auto targeted = target_imbalance(g, part, 4, {0.25, 0.25, 0.25, 0.25});
  ASSERT_EQ(plain.size(), targeted.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_NEAR(plain[i], targeted[i], 1e-12);
  }
}

TEST(TargetImbalanceMetric, DetectsDeviationFromTargets) {
  GraphBuilder b(4, 1);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  Graph g = b.build();
  // 50/50 split against 75/25 targets: part 1 holds 0.5 but targets 0.25.
  const auto lb = target_imbalance(g, {0, 0, 1, 1}, 2, {0.75, 0.25});
  EXPECT_NEAR(lb[0], 2.0, 1e-12);
}

class TpwgtsBothAlgorithms : public testing::TestWithParam<Algorithm> {};

TEST_P(TpwgtsBothAlgorithms, HitsSkewedTargetsSingleConstraint) {
  Graph g = grid2d(40, 40);
  Options o;
  o.nparts = 4;
  o.algorithm = GetParam();
  o.tpwgts = {0.4, 0.3, 0.2, 0.1};
  const PartitionResult r = partition(g, o);
  EXPECT_TRUE(validate_partition(g, r.part, 4, true).empty());
  EXPECT_LE(r.max_imbalance, 1.05 + 0.02);

  // The realized shares should track the requested fractions.
  const auto pw = part_weights(g, r.part, 4);
  for (idx_t p = 0; p < 4; ++p) {
    const double share = static_cast<double>(pw[to_size(p)]) /
                         static_cast<double>(g.tvwgt[0]);
    EXPECT_NEAR(share, o.tpwgts[to_size(p)], 0.03)
        << "part " << p;
  }
}

TEST_P(TpwgtsBothAlgorithms, HitsSkewedTargetsMultiConstraint) {
  Graph g = random_geometric(2500, 0, 21, 3);
  apply_type_s_weights(g, 3, 16, 0, 19, 77);
  Options o;
  o.nparts = 5;
  o.algorithm = GetParam();
  o.tpwgts = {0.3, 0.25, 0.2, 0.15, 0.1};
  const PartitionResult r = partition(g, o);
  EXPECT_TRUE(validate_partition(g, r.part, 5, true).empty());
  // Every constraint balanced against the skewed fractions.
  EXPECT_LE(r.max_imbalance, 1.05 + 0.06);
}

INSTANTIATE_TEST_SUITE_P(Algorithms, TpwgtsBothAlgorithms,
                         testing::Values(Algorithm::kRecursiveBisection,
                                         Algorithm::kKWay),
                         [](const testing::TestParamInfo<Algorithm>& pinfo) {
                           return pinfo.param == Algorithm::kKWay ? "kway"
                                                                 : "rb";
                         });

TEST(Tpwgts, ValidationRejectsBadVectors) {
  Graph g = grid2d(8, 8);
  Options o;
  o.nparts = 3;
  o.tpwgts = {0.5, 0.5};  // wrong size
  EXPECT_THROW(partition(g, o), std::invalid_argument);
  o.tpwgts = {0.5, 0.5, 0.5};  // does not sum to 1
  EXPECT_THROW(partition(g, o), std::invalid_argument);
  o.tpwgts = {1.2, -0.1, -0.1};  // non-positive entries
  EXPECT_THROW(partition(g, o), std::invalid_argument);
}

TEST(Tpwgts, UniformExplicitMatchesDefaultQuality) {
  Graph g = grid2d(24, 24);
  Options a;
  a.nparts = 4;
  Options b = a;
  b.tpwgts = {0.25, 0.25, 0.25, 0.25};
  const PartitionResult ra = partition(g, a);
  const PartitionResult rb = partition(g, b);
  // Same tolerance behaviour; cuts in the same band.
  EXPECT_LE(rb.max_imbalance, 1.05 + 0.01);
  EXPECT_LT(static_cast<double>(rb.cut), 2.0 * static_cast<double>(ra.cut) + 8);
}

TEST(Tpwgts, ExtremeSkew) {
  Graph g = grid2d(30, 30);
  Options o;
  o.nparts = 2;
  o.tpwgts = {0.9, 0.1};
  const PartitionResult r = partition(g, o);
  const auto pw = part_weights(g, r.part, 2);
  const double share0 = static_cast<double>(pw[0]) / 900.0;
  EXPECT_NEAR(share0, 0.9, 0.03);
  // The small part should be much cheaper to cut off than a bisection.
  Options even;
  even.nparts = 2;
  const PartitionResult re = partition(g, even);
  EXPECT_LT(r.cut, checked_add(re.cut, 10));
}

}  // namespace
}  // namespace mcgp
