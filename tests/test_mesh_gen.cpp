#include "gen/mesh_gen.hpp"

#include <gtest/gtest.h>

#include "graph/graph_ops.hpp"

namespace mcgp {
namespace {

TEST(Grid2d, SizesAndDegrees) {
  Graph g = grid2d(5, 4);
  EXPECT_EQ(g.nvtxs, 20);
  // Edges: 4*(5-1) horizontal-ish + 5*(4-1) = 16 + 15 = 31.
  EXPECT_EQ(g.nedges(), 31);
  EXPECT_TRUE(g.validate().empty());
  // Corner degree 2, edge degree 3, interior degree 4.
  EXPECT_EQ(g.degree(0), 2);
  idx_t max_deg = 0;
  for (idx_t v = 0; v < g.nvtxs; ++v) max_deg = std::max(max_deg, g.degree(v));
  EXPECT_EQ(max_deg, 4);
}

TEST(Grid2d, DegenerateSizes) {
  Graph g1 = grid2d(1, 1);
  EXPECT_EQ(g1.nvtxs, 1);
  EXPECT_EQ(g1.nedges(), 0);
  Graph g2 = grid2d(1, 7);
  EXPECT_EQ(g2.nedges(), 6);
  EXPECT_THROW(grid2d(0, 4), std::invalid_argument);
}

TEST(TriGrid2d, AddsDiagonals) {
  Graph g = tri_grid2d(3, 3);
  // 3x3 grid: 12 grid edges + 4 diagonals.
  EXPECT_EQ(g.nedges(), 16);
  EXPECT_TRUE(g.validate().empty());
  idx_t max_deg = 0;
  for (idx_t v = 0; v < g.nvtxs; ++v) max_deg = std::max(max_deg, g.degree(v));
  EXPECT_EQ(max_deg, 6);
}

TEST(Grid3d, SizesAndConnectivity) {
  Graph g = grid3d(3, 3, 3);
  EXPECT_EQ(g.nvtxs, 27);
  // 3 * (2*3*3) = 54 edges.
  EXPECT_EQ(g.nedges(), 54);
  EXPECT_TRUE(g.validate().empty());
  EXPECT_EQ(count_components(g), 1);
  idx_t max_deg = 0;
  for (idx_t v = 0; v < g.nvtxs; ++v) max_deg = std::max(max_deg, g.degree(v));
  EXPECT_EQ(max_deg, 6);
}

TEST(RandomGeometric, ValidAndDeterministic) {
  Graph a = random_geometric(500, 0, 42);
  Graph b = random_geometric(500, 0, 42);
  EXPECT_TRUE(a.validate().empty());
  EXPECT_EQ(a.adjncy, b.adjncy);
  EXPECT_GT(a.nedges(), 500);  // above connectivity threshold: avg deg > 2
}

TEST(RandomGeometric, DifferentSeedsDiffer) {
  Graph a = random_geometric(300, 0, 1);
  Graph b = random_geometric(300, 0, 2);
  EXPECT_NE(a.adjncy, b.adjncy);
}

TEST(RandomGeometric, MostlyConnectedAtDefaultRadius) {
  Graph g = random_geometric(2000, 0, 7);
  std::vector<idx_t> comp;
  const idx_t ncomp = connected_components(g, comp);
  // Above the threshold the giant component dominates; allow few strays.
  EXPECT_LE(ncomp, 20);
}

TEST(RandomGeometric, BoundedDegree) {
  Graph g = random_geometric(2000, 0, 13);
  idx_t max_deg = 0;
  for (idx_t v = 0; v < g.nvtxs; ++v) max_deg = std::max(max_deg, g.degree(v));
  EXPECT_LT(max_deg, 60);  // geometric graphs have concentrated degrees
}

TEST(FeMesh, ValidBoundedDegreeAndDeterministic) {
  Graph a = fe_mesh(2000, 5);
  Graph b = fe_mesh(2000, 5);
  EXPECT_TRUE(a.validate().empty());
  EXPECT_EQ(a.adjncy, b.adjncy);
  idx_t max_deg = 0;
  for (idx_t v = 0; v < a.nvtxs; ++v) max_deg = std::max(max_deg, a.degree(v));
  EXPECT_LT(max_deg, 100);
  EXPECT_GT(a.nedges(), a.nvtxs);  // denser than a tree
}

TEST(RandomGraph, ApproximatesTargetDegree) {
  Graph g = random_graph(5000, 8.0, 3);
  EXPECT_TRUE(g.validate().empty());
  const double avg = 2.0 * g.nedges() / g.nvtxs;
  EXPECT_NEAR(avg, 8.0, 1.0);  // dedup removes a few
}

TEST(Generators, NconPropagates) {
  EXPECT_EQ(grid2d(3, 3, 4).ncon, 4);
  EXPECT_EQ(grid3d(2, 2, 2, 2).ncon, 2);
  EXPECT_EQ(random_geometric(50, 0, 1, 3).ncon, 3);
}

}  // namespace
}  // namespace mcgp
