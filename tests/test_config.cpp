#include "core/config.hpp"

#include <gtest/gtest.h>

namespace mcgp {
namespace {

TEST(Options, DefaultsAreSane) {
  const Options o;
  EXPECT_EQ(o.nparts, 2);
  EXPECT_TRUE(o.ubvec.empty());
  EXPECT_EQ(o.algorithm, Algorithm::kKWay);
  EXPECT_EQ(o.matching, MatchScheme::kHeavyEdgeBalanced);
  EXPECT_EQ(o.queue_policy, QueuePolicy::kMostImbalanced);
  EXPECT_GT(o.init_trials, 0);
  EXPECT_GT(o.refine_passes, 0);
}

TEST(Options, UbForDefaults) {
  const Options o;
  EXPECT_DOUBLE_EQ(o.ub_for(0), 1.05);
  EXPECT_DOUBLE_EQ(o.ub_for(7), 1.05);
}

TEST(Options, UbForExplicitVector) {
  Options o;
  o.ubvec = {1.01, 1.10, 1.20};
  EXPECT_DOUBLE_EQ(o.ub_for(0), 1.01);
  EXPECT_DOUBLE_EQ(o.ub_for(2), 1.20);
}

TEST(Options, UbForBroadcastsLastEntry) {
  Options o;
  o.ubvec = {1.07};
  EXPECT_DOUBLE_EQ(o.ub_for(0), 1.07);
  EXPECT_DOUBLE_EQ(o.ub_for(5), 1.07);
}

TEST(PartitionResultDefaults, ZeroInitialized) {
  const PartitionResult r;
  EXPECT_TRUE(r.part.empty());
  EXPECT_EQ(r.cut, 0);
  EXPECT_DOUBLE_EQ(r.max_imbalance, 1.0);
  EXPECT_EQ(r.coarsen_levels, 0);
}

}  // namespace
}  // namespace mcgp
