#include "support/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/partitioner.hpp"
#include "gen/mesh_gen.hpp"
#include "gen/weight_gen.hpp"
#include "json_test_util.hpp"
#include "support/counters.hpp"
#include "support/schema.hpp"

namespace mcgp {
namespace {

using testing::JsonValue;
using testing::parse_json;

TEST(TraceRecorder, SpanNestingDepths) {
  TraceRecorder tr;
  tr.begin("outer");
  EXPECT_EQ(tr.depth(), 1);
  tr.begin("inner");
  EXPECT_EQ(tr.depth(), 2);
  tr.instant("tick");
  tr.end();
  EXPECT_EQ(tr.depth(), 1);
  tr.end();
  EXPECT_EQ(tr.depth(), 0);

  const auto& ev = tr.events();
  ASSERT_EQ(ev.size(), 5u);
  EXPECT_EQ(ev[0].type, TraceEvent::Type::kBegin);
  EXPECT_EQ(ev[0].depth, 0);
  EXPECT_STREQ(ev[0].name, "outer");
  EXPECT_EQ(ev[1].depth, 1);
  EXPECT_EQ(ev[2].type, TraceEvent::Type::kInstant);
  EXPECT_EQ(ev[2].depth, 2);
  // End events carry the innermost open span's name.
  EXPECT_EQ(ev[3].type, TraceEvent::Type::kEnd);
  EXPECT_STREQ(ev[3].name, "inner");
  EXPECT_STREQ(ev[4].name, "outer");
  // Timestamps are monotone.
  for (std::size_t i = 1; i < ev.size(); ++i) {
    EXPECT_GE(ev[i].ts_ns, ev[i - 1].ts_ns);
  }
}

TEST(TraceRecorder, UnmatchedEndIsDropped) {
  TraceRecorder tr;
  tr.end({{"ignored", std::int64_t{1}}});
  EXPECT_TRUE(tr.events().empty());
  EXPECT_EQ(tr.depth(), 0);
}

TEST(TraceRecorder, ClearDropsEventsAndCounters) {
  TraceRecorder tr;
  tr.begin("span");
  tr.counters().incr("n");
  tr.clear();
  EXPECT_TRUE(tr.events().empty());
  EXPECT_EQ(tr.depth(), 0);
  EXPECT_TRUE(tr.counters().empty());
}

TEST(TraceSpan, RaiiEmitsBeginEndWithArgs) {
  TraceRecorder tr;
  {
    TraceSpan sp(&tr, "work");
    ASSERT_TRUE(sp.enabled());
    sp.arg({"cut", std::int64_t{42}});
    sp.arg({"ratio", 0.5});
  }
  const auto& ev = tr.events();
  ASSERT_EQ(ev.size(), 2u);
  EXPECT_EQ(ev[1].type, TraceEvent::Type::kEnd);
  ASSERT_EQ(ev[1].args.size(), 2u);
  EXPECT_STREQ(ev[1].args[0].key, "cut");
  EXPECT_FALSE(ev[1].args[0].is_float);
  EXPECT_EQ(ev[1].args[0].i, 42);
  EXPECT_STREQ(ev[1].args[1].key, "ratio");
  EXPECT_TRUE(ev[1].args[1].is_float);
  EXPECT_DOUBLE_EQ(ev[1].args[1].f, 0.5);
}

TEST(TraceSpan, FinishIsIdempotent) {
  TraceRecorder tr;
  TraceSpan sp(&tr, "once");
  sp.finish();
  sp.finish();            // second finish must not emit another end
  sp.arg({"late", 1.0});  // args after finish are ignored
  EXPECT_EQ(tr.events().size(), 2u);
  EXPECT_EQ(tr.depth(), 0);
}

TEST(TraceSpan, NullRecorderIsSafeNoop) {
  TraceSpan sp(nullptr, "nothing");
  EXPECT_FALSE(sp.enabled());
  sp.arg({"k", std::int64_t{1}});
  sp.finish();
  trace_instant(nullptr, "tick", {{"a", std::int64_t{2}}});
  trace_count(nullptr, "counter");
  trace_hist(nullptr, "hist", 7);
  // Reaching here without dereferencing null is the test.
}

TEST(CounterRegistry, AccumulatesInFirstUseOrder) {
  CounterRegistry reg;
  EXPECT_TRUE(reg.empty());
  reg.incr("fm.moves", 3);
  reg.incr("match.failed");
  reg.incr("fm.moves", 4);
  EXPECT_EQ(reg.get("fm.moves"), 7);
  EXPECT_EQ(reg.get("match.failed"), 1);
  EXPECT_EQ(reg.get("missing"), 0);
  ASSERT_EQ(reg.counters().size(), 2u);
  EXPECT_EQ(reg.counters()[0].first, "fm.moves");
  EXPECT_EQ(reg.counters()[1].first, "match.failed");
  reg.clear();
  EXPECT_TRUE(reg.empty());
  EXPECT_EQ(reg.get("fm.moves"), 0);
}

TEST(Histogram, StatsAndPowerOfTwoBuckets) {
  CounterRegistry reg;
  Histogram& h = reg.hist("gain.histogram");
  for (const std::int64_t v : {0, 1, 1, 3, 5, -2, -17}) h.record(v);
  EXPECT_EQ(&h, reg.find_hist("gain.histogram"));
  EXPECT_EQ(h.count(), 7u);
  EXPECT_EQ(h.min(), -17);
  EXPECT_EQ(h.max(), 5);
  EXPECT_EQ(h.sum(), -9);
  EXPECT_NEAR(h.mean(), -9.0 / 7.0, 1e-12);

  std::uint64_t total = 0;
  for (const Histogram::Bucket& b : h.buckets()) {
    EXPECT_LE(b.lo, b.hi);
    total += b.count;
  }
  EXPECT_EQ(total, h.count());
  // Bucket boundaries sort ascending, so ranges cannot overlap.
  const auto buckets = h.buckets();
  for (std::size_t i = 1; i < buckets.size(); ++i) {
    EXPECT_GT(buckets[i].lo, buckets[i - 1].hi);
  }
}

TEST(TraceExport, ChromeTraceRoundTrip) {
  TraceRecorder tr;
  {
    TraceSpan outer(&tr, "outer");
    TraceSpan inner(&tr, "inner");
    inner.arg({"cut", std::int64_t{17}});
    inner.arg({"balance", 1.03});
    tr.instant("note \"quoted\"", {{"v", std::int64_t{-5}}});
  }
  std::ostringstream out;
  tr.write_chrome_trace(out);

  const auto doc = parse_json(out.str());
  ASSERT_TRUE(doc.has_value()) << out.str();
  ASSERT_TRUE(doc->is_object());
  ASSERT_NE(doc->find("schema_version"), nullptr);
  EXPECT_DOUBLE_EQ(doc->find("schema_version")->number,
                   static_cast<double>(kMcgpSchemaVersion));
  const JsonValue* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->array.size(), 5u);

  int begins = 0, ends = 0, instants = 0;
  for (const JsonValue& ev : events->array) {
    ASSERT_TRUE(ev.is_object());
    const JsonValue* ph = ev.find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->str == "B") ++begins;
    if (ph->str == "E") ++ends;
    if (ph->str == "i") ++instants;
    ASSERT_NE(ev.find("ts"), nullptr);
    EXPECT_TRUE(ev.find("ts")->is_number());
    ASSERT_NE(ev.find("name"), nullptr);
  }
  EXPECT_EQ(begins, 2);
  EXPECT_EQ(ends, 2);
  EXPECT_EQ(instants, 1);

  // The inner end event carries the recorded args.
  const JsonValue& inner_end = events->array[3];
  EXPECT_EQ(inner_end.find("name")->str, "inner");
  const JsonValue* args = inner_end.find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_DOUBLE_EQ(args->find("cut")->number, 17.0);
  EXPECT_NEAR(args->find("balance")->number, 1.03, 1e-9);
  // Escaped quotes in the instant's name survive the round trip.
  EXPECT_EQ(events->array[2].find("name")->str, "note \"quoted\"");
}

TEST(TraceExport, JsonlEveryLineParses) {
  TraceRecorder tr;
  {
    TraceSpan sp(&tr, "pass");
    sp.arg({"moves", std::int64_t{9}});
    tr.instant("tick");
  }
  std::ostringstream out;
  tr.write_jsonl(out);

  std::istringstream lines(out.str());
  std::string line;
  std::vector<std::string> types;
  while (std::getline(lines, line)) {
    const auto doc = parse_json(line);
    ASSERT_TRUE(doc.has_value()) << line;
    ASSERT_TRUE(doc->is_object());
    types.push_back(doc->find("type")->str);
    ASSERT_NE(doc->find("name"), nullptr);
    ASSERT_NE(doc->find("ts_ns"), nullptr);
    ASSERT_NE(doc->find("depth"), nullptr);
  }
  EXPECT_EQ(types, (std::vector<std::string>{"begin", "instant", "end"}));
}

TEST(TraceExport, CountersJsonRoundTrip) {
  CounterRegistry reg;
  reg.incr("fm.moves", 12);
  reg.hist("gain.histogram").record(-3);
  reg.hist("gain.histogram").record(8);
  std::ostringstream out;
  reg.write_json(out);

  const auto doc = parse_json(out.str());
  ASSERT_TRUE(doc.has_value()) << out.str();
  ASSERT_NE(doc->find("schema_version"), nullptr);
  EXPECT_DOUBLE_EQ(doc->find("schema_version")->number,
                   static_cast<double>(kMcgpSchemaVersion));
  const JsonValue* counters = doc->find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_DOUBLE_EQ(counters->find("fm.moves")->number, 12.0);
  const JsonValue* hist = doc->find("histograms")->find("gain.histogram");
  ASSERT_NE(hist, nullptr);
  EXPECT_DOUBLE_EQ(hist->find("count")->number, 2.0);
  EXPECT_DOUBLE_EQ(hist->find("min")->number, -3.0);
  EXPECT_DOUBLE_EQ(hist->find("max")->number, 8.0);
  EXPECT_EQ(hist->find("buckets")->array.size(), 2u);
}

// Walk the event stream like a stack machine: every end must match an open
// begin and the recorder's stored depths must agree.
void check_well_nested(const std::vector<TraceEvent>& events) {
  std::vector<const char*> stack;
  for (const TraceEvent& ev : events) {
    switch (ev.type) {
      case TraceEvent::Type::kBegin:
        ASSERT_EQ(ev.depth, static_cast<int>(stack.size()));
        stack.push_back(ev.name);
        break;
      case TraceEvent::Type::kEnd:
        ASSERT_FALSE(stack.empty());
        ASSERT_EQ(ev.depth, static_cast<int>(stack.size()) - 1);
        EXPECT_STREQ(ev.name, stack.back());
        stack.pop_back();
        break;
      case TraceEvent::Type::kInstant:
        ASSERT_EQ(ev.depth, static_cast<int>(stack.size()));
        break;
    }
  }
  EXPECT_TRUE(stack.empty());
}

class TracedPipeline : public ::testing::TestWithParam<Algorithm> {};

TEST_P(TracedPipeline, EmitsNestedLevelsAndCounters) {
  Graph g = grid2d(48, 48);
  apply_type_s_weights(g, 2, 8, 0, 9, 5);
  TraceRecorder tr;
  Options o;
  o.nparts = 8;
  o.algorithm = GetParam();
  o.trace = &tr;
  const PartitionResult r = partition(g, o);
  EXPECT_GT(r.cut, 0);

  ASSERT_FALSE(tr.events().empty());
  EXPECT_EQ(tr.depth(), 0);
  check_well_nested(tr.events());

  int coarsen_levels = 0, refine_passes = 0, uncoarsen_levels = 0;
  bool saw_root = false;
  bool level_has_nvtxs = false;
  for (const TraceEvent& ev : tr.events()) {
    const std::string name = ev.name;
    if (name == "partition" && ev.type == TraceEvent::Type::kBegin) {
      EXPECT_EQ(ev.depth, 0);
      saw_root = true;
    }
    if (ev.type != TraceEvent::Type::kEnd) continue;
    if (name == "coarsen.level") {
      ++coarsen_levels;
      for (const TraceArg& a : ev.args) {
        if (std::string(a.key) == "nvtxs" && a.i > 0) level_has_nvtxs = true;
      }
    }
    if (name == "fm.pass" || name == "kway.pass") ++refine_passes;
    if (name == "uncoarsen.level") ++uncoarsen_levels;
  }
  EXPECT_TRUE(saw_root);
  EXPECT_GT(coarsen_levels, 0);
  EXPECT_GT(refine_passes, 0);
  EXPECT_GT(uncoarsen_levels, 0);
  EXPECT_TRUE(level_has_nvtxs);

  // Counters surfaced on the result and accumulated in the recorder.
  EXPECT_FALSE(r.counters.empty());
  EXPECT_GT(r.counters.get("coarsen.levels"), 0);
  EXPECT_EQ(r.counters.get("coarsen.levels"),
            tr.counters().get("coarsen.levels"));
  const Histogram* gains = r.counters.find_hist("gain.histogram");
  ASSERT_NE(gains, nullptr);
  EXPECT_GT(gains->count(), 0u);

  // The full pipeline trace must still be valid Chrome-trace JSON.
  std::ostringstream out;
  tr.write_chrome_trace(out);
  const auto doc = parse_json(out.str());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("traceEvents")->array.size(), tr.events().size());
}

INSTANTIATE_TEST_SUITE_P(Algorithms, TracedPipeline,
                         ::testing::Values(Algorithm::kRecursiveBisection,
                                           Algorithm::kKWay));

TEST(TracedPipeline, DisabledTraceLeavesCountersEmpty) {
  Graph g = grid2d(24, 24);
  Options o;
  o.nparts = 4;
  const PartitionResult r = partition(g, o);
  EXPECT_TRUE(r.counters.empty());
}

}  // namespace
}  // namespace mcgp
