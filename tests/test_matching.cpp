#include "core/matching.hpp"

#include <gtest/gtest.h>

#include "gen/mesh_gen.hpp"
#include "gen/weight_gen.hpp"
#include "support/thread_pool.hpp"

namespace mcgp {
namespace {

bool is_valid_matching(const Graph& g, const std::vector<idx_t>& match) {
  for (idx_t v = 0; v < g.nvtxs; ++v) {
    const idx_t u = match[to_size(v)];
    if (u < 0 || u >= g.nvtxs) return false;
    if (match[to_size(u)] != v) return false;  // involution
    if (u != v) {
      bool adjacent = false;
      for (idx_t e = g.xadj[to_size(v)]; e < g.xadj[to_size(v + 1)]; ++e) {
        if (g.adjncy[to_size(e)] == u) {
          adjacent = true;
          break;
        }
      }
      if (!adjacent) return false;
    }
  }
  return true;
}

class MatchingSchemes : public testing::TestWithParam<MatchScheme> {};

TEST_P(MatchingSchemes, ValidOnGrid) {
  Graph g = grid2d(17, 13);
  Rng rng(1);
  const auto match = compute_matching(g, GetParam(), rng);
  EXPECT_TRUE(is_valid_matching(g, match));
}

TEST_P(MatchingSchemes, ValidOnGeometric) {
  Graph g = random_geometric(800, 0, 3, 2);
  apply_type_s_weights(g, 2, 8, 0, 9, 5);
  Rng rng(2);
  const auto match = compute_matching(g, GetParam(), rng);
  EXPECT_TRUE(is_valid_matching(g, match));
}

TEST_P(MatchingSchemes, MatchesMostVerticesOnGrid) {
  Graph g = grid2d(20, 20);
  Rng rng(7);
  const auto match = compute_matching(g, GetParam(), rng);
  idx_t matched = 0;
  for (idx_t v = 0; v < g.nvtxs; ++v) {
    if (match[to_size(v)] != v) ++matched;
  }
  // Greedy maximal matchings on grids pair the large majority of vertices.
  EXPECT_GT(matched, g.nvtxs / 2);
}

TEST_P(MatchingSchemes, DeterministicPerSeed) {
  Graph g = tri_grid2d(15, 15);
  Rng a(42), b(42), c(43);
  EXPECT_EQ(compute_matching(g, GetParam(), a),
            compute_matching(g, GetParam(), b));
  // Different seed very likely differs.
  Rng a2(42);
  EXPECT_NE(compute_matching(g, GetParam(), a2),
            compute_matching(g, GetParam(), c));
}

TEST_P(MatchingSchemes, IsolatedVerticesStayUnmatched) {
  GraphBuilder b(5, 1);
  b.add_edge(0, 1);
  Graph g = b.build();
  Rng rng(1);
  const auto match = compute_matching(g, GetParam(), rng);
  EXPECT_TRUE(is_valid_matching(g, match));
  for (idx_t v = 2; v < 5; ++v) EXPECT_EQ(match[to_size(v)], v);
}

// Above kHandshakeMinVtxs the handshake-round path engages; it must still
// produce a valid MAXIMAL matching (the serial cleanup guarantees no two
// unmatched neighbors remain).
TEST_P(MatchingSchemes, HandshakePathValidAndMaximal) {
  Graph g = grid2d(96, 96);  // 9216 vertices >= kHandshakeMinVtxs
  ASSERT_GE(g.nvtxs, kHandshakeMinVtxs);
  Rng rng(11);
  const auto match = compute_matching(g, GetParam(), rng);
  EXPECT_TRUE(is_valid_matching(g, match));
  for (idx_t v = 0; v < g.nvtxs; ++v) {
    if (match[to_size(v)] != v) continue;
    for (idx_t e = g.xadj[to_size(v)]; e < g.xadj[to_size(v + 1)]; ++e) {
      EXPECT_NE(match[to_size(g.adjncy[to_size(e)])],
                g.adjncy[to_size(e)])
          << "unmatched neighbors " << v << " and " << g.adjncy[to_size(e)];
    }
  }
}

// The handshake propose/accept phases are chunk tasks; running them on a
// pool must yield the bit-identical matching the inline execution does.
TEST_P(MatchingSchemes, PooledHandshakeBitIdenticalToInline) {
  Graph g = grid2d(96, 96);
  apply_type_s_weights(g, 2, 8, 0, 9, 5);
  Rng a(5), b(5);
  std::vector<idx_t> inline_match, pooled_match;
  compute_matching_into(g, GetParam(), a, inline_match);

  ThreadPool pool(4);
  MatchingExec exec;
  exec.pool = &pool;
  Workspace ws;
  compute_matching_into(g, GetParam(), b, pooled_match, nullptr, &ws, &exec);
  EXPECT_EQ(pooled_match, inline_match);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, MatchingSchemes,
                         testing::Values(MatchScheme::kRandom,
                                         MatchScheme::kHeavyEdge,
                                         MatchScheme::kHeavyEdgeBalanced));

TEST(HeavyEdgeMatching, PrefersHeavyEdges) {
  // Triangle with one heavy edge. HEM is visit-order dependent (when
  // vertex 2 goes first it can steal an endpoint), but whenever 0 or 1 is
  // visited first the heavy edge must be collapsed — i.e. in ~2/3 of
  // random orders. Require a clear majority across seeds.
  GraphBuilder b(3, 1);
  b.add_edge(0, 1, 100);
  b.add_edge(1, 2, 1);
  b.add_edge(2, 0, 1);
  Graph g = b.build();
  int heavy_collapsed = 0;
  for (int seed = 0; seed < 30; ++seed) {
    Rng rng(static_cast<std::uint64_t>(seed));
    const auto match = compute_matching(g, MatchScheme::kHeavyEdge, rng);
    if (match[0] == 1) ++heavy_collapsed;
  }
  EXPECT_GE(heavy_collapsed, 15);
}

TEST(BalancedEdgeScore, ZeroForSingleConstraint) {
  Graph g = grid2d(3, 3);
  EXPECT_DOUBLE_EQ(balanced_edge_score(g, 0, 1), 0.0);
}

TEST(BalancedEdgeScore, FlatterCombinationScoresLower) {
  // Vertices with complementary weight vectors combine to a flat vector.
  GraphBuilder b(4, 2);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.set_weights(0, {10, 0});
  b.set_weights(1, {0, 10});  // complementary -> flat sum
  b.set_weights(2, {10, 0});  // same profile -> skewed sum
  b.set_weights(3, {0, 10});  // keeps the totals symmetric
  Graph g = b.build();
  EXPECT_LT(balanced_edge_score(g, 0, 1), balanced_edge_score(g, 0, 2));
}

TEST(BalancedTieBreak, PicksComplementaryPartner) {
  // Vertex 0 has two equally heavy neighbors; the balanced scheme must
  // pick the complementary one, plain HEM has no preference.
  GraphBuilder b(4, 2);
  b.add_edge(0, 1, 5);
  b.add_edge(0, 2, 5);
  b.set_weights(0, {10, 0});
  b.set_weights(1, {0, 10});
  b.set_weights(2, {10, 0});
  b.set_weights(3, {5, 5});
  Graph g = b.build();
  int balanced_picks = 0;
  for (int seed = 0; seed < 20; ++seed) {
    Rng rng(static_cast<std::uint64_t>(seed));
    const auto match = compute_matching(g, MatchScheme::kHeavyEdgeBalanced, rng);
    // Whenever 0 is processed before 1 and 2 are taken, it must choose 1.
    if (match[0] == 1) ++balanced_picks;
    EXPECT_NE(match[0], 0);  // 0 always finds some partner
  }
  EXPECT_GT(balanced_picks, 10);
}

TEST(BuildCoarseMap, CountsAndCovers) {
  Graph g = grid2d(6, 6);
  Rng rng(5);
  const auto match = compute_matching(g, MatchScheme::kHeavyEdge, rng);
  std::vector<idx_t> cmap;
  const idx_t ncoarse = build_coarse_map(g, match, cmap);
  EXPECT_GT(ncoarse, 0);
  EXPECT_LT(ncoarse, g.nvtxs);
  std::vector<idx_t> count(to_size(ncoarse), 0);
  for (idx_t v = 0; v < g.nvtxs; ++v) {
    ASSERT_GE(cmap[to_size(v)], 0);
    ASSERT_LT(cmap[to_size(v)], ncoarse);
    ++count[to_size(cmap[to_size(v)])];
  }
  for (const idx_t c : count) {
    EXPECT_GE(c, 1);
    EXPECT_LE(c, 2);
  }
  // Matched pairs map to the same coarse vertex.
  for (idx_t v = 0; v < g.nvtxs; ++v) {
    EXPECT_EQ(cmap[to_size(v)],
              cmap[to_size(match[to_size(v)])]);
  }
}

}  // namespace
}  // namespace mcgp
