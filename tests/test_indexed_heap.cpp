#include "support/indexed_heap.hpp"

#include <gtest/gtest.h>

#include <map>

#include "support/random.hpp"

namespace mcgp {
namespace {

TEST(IndexedMaxHeap, EmptyAfterReset) {
  IndexedMaxHeap h;
  h.reset(5);
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.size(), 0);
  EXPECT_FALSE(h.contains(3));
}

TEST(IndexedMaxHeap, SingleElement) {
  IndexedMaxHeap h;
  h.reset(3);
  h.insert(1, 2.5);
  EXPECT_TRUE(h.contains(1));
  EXPECT_DOUBLE_EQ(h.key(1), 2.5);
  EXPECT_EQ(h.top(), 1);
  EXPECT_DOUBLE_EQ(h.top_key(), 2.5);
  EXPECT_EQ(h.pop_max(), 1);
  EXPECT_TRUE(h.empty());
}

TEST(IndexedMaxHeap, PopsDescending) {
  IndexedMaxHeap h;
  h.reset(6);
  const double keys[] = {0.5, -1.0, 3.0, 2.0, 3.0, 0.0};
  for (idx_t i = 0; i < 6; ++i) h.insert(i, keys[i]);
  double last = 1e300;
  while (!h.empty()) {
    EXPECT_LE(h.top_key(), last);
    last = h.top_key();
    h.pop_max();
  }
}

TEST(IndexedMaxHeap, UpdateUp) {
  IndexedMaxHeap h;
  h.reset(3);
  h.insert(0, 1.0);
  h.insert(1, 2.0);
  h.insert(2, 3.0);
  h.update(0, 10.0);
  EXPECT_EQ(h.pop_max(), 0);
}

TEST(IndexedMaxHeap, UpdateDown) {
  IndexedMaxHeap h;
  h.reset(3);
  h.insert(0, 5.0);
  h.insert(1, 2.0);
  h.insert(2, 3.0);
  h.update(0, -1.0);
  EXPECT_EQ(h.pop_max(), 2);
  EXPECT_EQ(h.pop_max(), 1);
  EXPECT_EQ(h.pop_max(), 0);
}

TEST(IndexedMaxHeap, RemoveArbitrary) {
  IndexedMaxHeap h;
  h.reset(5);
  for (idx_t i = 0; i < 5; ++i) h.insert(i, static_cast<real_t>(i));
  h.remove(2);
  EXPECT_FALSE(h.contains(2));
  EXPECT_EQ(h.pop_max(), 4);
  EXPECT_EQ(h.pop_max(), 3);
  EXPECT_EQ(h.pop_max(), 1);
  EXPECT_EQ(h.pop_max(), 0);
}

TEST(IndexedMaxHeap, ReinsertAfterRemove) {
  IndexedMaxHeap h;
  h.reset(2);
  h.insert(0, 1.0);
  h.remove(0);
  h.insert(0, 2.0);
  EXPECT_DOUBLE_EQ(h.key(0), 2.0);
  EXPECT_EQ(h.pop_max(), 0);
}

TEST(IndexedMaxHeap, StressAgainstReference) {
  constexpr idx_t kN = 150;
  IndexedMaxHeap h;
  h.reset(kN);
  std::map<idx_t, real_t> ref;
  Rng rng(123);

  for (int step = 0; step < 20000; ++step) {
    const int op = static_cast<int>(rng.next_below(4));
    const idx_t id = static_cast<idx_t>(rng.next_below(kN));
    const real_t key = rng.next_real() * 100 - 50;
    if (op == 0) {
      if (!ref.count(id)) {
        ref[id] = key;
        h.insert(id, key);
      }
    } else if (op == 1) {
      if (ref.count(id)) {
        ref.erase(id);
        h.remove(id);
      }
    } else if (op == 2) {
      if (ref.count(id)) {
        ref[id] = key;
        h.update(id, key);
      }
    } else if (!ref.empty()) {
      real_t expect = -1e300;
      for (const auto& [i, k] : ref) expect = std::max(expect, k);
      ASSERT_DOUBLE_EQ(h.top_key(), expect);
      const idx_t popped = h.pop_max();
      ASSERT_DOUBLE_EQ(ref[popped], expect);
      ref.erase(popped);
    }
    ASSERT_EQ(h.size(), static_cast<idx_t>(ref.size()));
  }
}

}  // namespace
}  // namespace mcgp
