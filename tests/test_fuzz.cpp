// Randomized invariant fuzzing: generate random (but valid) graphs,
// weights, and options; every configuration must yield a structurally
// valid partition whose reported metrics are internally consistent.
// Failures print the generating seed for deterministic replay.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/partitioner.hpp"
#include "core/rebalance.hpp"
#include "gen/mesh_gen.hpp"
#include "gen/weight_gen.hpp"
#include "graph/metrics.hpp"
#include "support/random.hpp"

namespace mcgp {
namespace {

Graph random_valid_graph(Rng& rng) {
  const int kind = static_cast<int>(rng.next_below(4));
  const idx_t n = 50 + static_cast<idx_t>(rng.next_below(800));
  switch (kind) {
    case 0: {
      const idx_t side = std::max<idx_t>(4, static_cast<idx_t>(std::sqrt(n)));
      return grid2d(side, side);
    }
    case 1:
      return random_geometric(n, 0, rng.next_u64());
    case 2:
      return random_graph(n, 2.0 + 6.0 * rng.next_real(), rng.next_u64());
    default: {
      // Disconnected union of two random graphs.
      Graph a = random_graph(n / 2 + 2, 4.0, rng.next_u64());
      GraphBuilder b(a.nvtxs * 2, 1);
      for (idx_t v = 0; v < a.nvtxs; ++v) {
        for (idx_t e = a.xadj[to_size(v)]; e < a.xadj[to_size(v + 1)]; ++e) {
          if (a.adjncy[to_size(e)] > v) {
            b.add_edge(v, a.adjncy[to_size(e)]);
            b.add_edge(v + a.nvtxs, a.adjncy[to_size(e)] + a.nvtxs);
          }
        }
      }
      return b.build();
    }
  }
}

void apply_random_weights(Graph& g, Rng& rng) {
  const int m = 1 + static_cast<int>(rng.next_below(5));
  switch (rng.next_below(3)) {
    case 0:
      apply_type_r_weights(g, m, 0, 1 + static_cast<wgt_t>(rng.next_below(30)),
                           rng.next_u64());
      break;
    case 1:
      apply_type_s_weights(g, m, 2 + static_cast<idx_t>(rng.next_below(30)), 0,
                           19, rng.next_u64());
      break;
    default:
      apply_type_p_weights(g, m, 4 + static_cast<idx_t>(rng.next_below(40)),
                           rng.next_u64());
      break;
  }
}

class FuzzInvariants : public testing::TestWithParam<int> {};

TEST_P(FuzzInvariants, RandomConfigurationsStayValid) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  for (int iteration = 0; iteration < 6; ++iteration) {
    const std::uint64_t replay_seed = rng.next_u64();
    Rng gen(replay_seed);

    Graph g = random_valid_graph(gen);
    apply_random_weights(g, gen);
    ASSERT_TRUE(g.validate().empty()) << "seed " << replay_seed;

    Options o;
    o.nparts = 1 + static_cast<idx_t>(gen.next_below(24));
    o.algorithm = gen.next_bool() ? Algorithm::kKWay
                                  : Algorithm::kRecursiveBisection;
    o.kway_scheme = gen.next_bool() ? KWayRefineScheme::kSweep
                                    : KWayRefineScheme::kPriorityQueue;
    o.matching = static_cast<MatchScheme>(gen.next_below(3));
    o.queue_policy = static_cast<QueuePolicy>(gen.next_below(3));
    o.init_scheme = static_cast<InitScheme>(gen.next_below(3));
    o.init_trials = 1 + static_cast<int>(gen.next_below(6));
    // Random tolerances clamped per constraint to the instance's provable
    // floor: validate_options rejects explicit tolerances no partition can
    // satisfy (the fuzzer's job is exercising achievable configurations).
    o.ubvec.assign(to_size(g.ncon), 1.01 + 0.4 * gen.next_real());
    const std::vector<real_t> floor_ub =
        min_feasible_ubvec(g, o.nparts, nullptr);
    for (std::size_t i = 0; i < o.ubvec.size(); ++i) {
      o.ubvec[i] = std::max(o.ubvec[i], floor_ub[i]);
    }
    o.seed = gen.next_u64();

    const PartitionResult r = partition(g, o);

    // Invariant 1: structural validity (non-empty when possible).
    EXPECT_TRUE(validate_partition(g, r.part, o.nparts,
                                   g.nvtxs >= o.nparts)
                    .empty())
        << "seed " << replay_seed;

    // Invariant 2: reported metrics match recomputation.
    EXPECT_EQ(r.cut, edge_cut(g, r.part)) << "seed " << replay_seed;
    const auto lb = imbalance(g, r.part, o.nparts);
    ASSERT_EQ(lb.size(), r.imbalance.size()) << "seed " << replay_seed;
    for (std::size_t i = 0; i < lb.size(); ++i) {
      EXPECT_NEAR(lb[i], r.imbalance[i], 1e-9) << "seed " << replay_seed;
    }

    // Invariant 3: imbalance can never be below 1 or absurdly high for
    // these bounded-weight generators.
    EXPECT_GE(r.max_imbalance, 1.0 - 1e-9) << "seed " << replay_seed;
    EXPECT_LE(r.max_imbalance, 25.0) << "seed " << replay_seed;

    // Invariant 4: determinism — replaying the same options reproduces
    // the exact partition.
    const PartitionResult again = partition(g, o);
    EXPECT_EQ(again.part, r.part) << "seed " << replay_seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Streams, FuzzInvariants, testing::Range(0, 8));

}  // namespace
}  // namespace mcgp
