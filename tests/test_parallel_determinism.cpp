// The parallel drivers must be bit-identical across thread counts: every
// subproblem derives its RNG stream from the seed and its structural
// position, never from a shared sequential generator, so the scheduler
// cannot influence the result.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "core/partitioner.hpp"
#include "gen/mesh_gen.hpp"
#include "gen/weight_gen.hpp"
#include "graph/metrics.hpp"
#include "json_test_util.hpp"
#include "support/flight_recorder.hpp"
#include "support/perf_counters.hpp"
#include "support/trace.hpp"

namespace mcgp {
namespace {

Graph make_graph(int ncon) {
  Graph g = tri_grid2d(36, 36);
  if (ncon > 1) apply_type_s_weights(g, ncon, 12, 0, 7, 2);
  return g;
}

Options base_options(Algorithm algo, idx_t k, std::uint64_t seed) {
  Options o;
  o.algorithm = algo;
  o.nparts = k;
  o.seed = seed;
  return o;
}

class ParallelDeterminism
    : public ::testing::TestWithParam<std::tuple<Algorithm, int>> {};

TEST_P(ParallelDeterminism, PartitionIdenticalAcrossThreadCounts) {
  const auto [algo, ncon] = GetParam();
  const Graph g = make_graph(ncon);
  for (const idx_t k : {7, 16}) {
    Options o = base_options(algo, k, /*seed=*/42);
    o.num_threads = 1;
    const PartitionResult serial = partition(g, o);
    ASSERT_TRUE(validate_partition(g, serial.part, k).empty());

    for (const int threads : {2, 4, 8}) {
      o.num_threads = threads;
      const PartitionResult parallel = partition(g, o);
      EXPECT_EQ(parallel.part, serial.part)
          << "k=" << k << " threads=" << threads;
      EXPECT_EQ(parallel.cut, serial.cut);
    }
  }
}

TEST_P(ParallelDeterminism, SeedStillSelectsDistinctPartitions) {
  const auto [algo, ncon] = GetParam();
  const Graph g = make_graph(ncon);
  Options a = base_options(algo, 8, 1);
  Options b = base_options(algo, 8, 2);
  a.num_threads = b.num_threads = 4;
  const PartitionResult ra = partition(g, a);
  const PartitionResult rb = partition(g, b);
  // Different seeds should explore different partitions (equality here
  // would suggest the seed is being ignored).
  EXPECT_NE(ra.part, rb.part);
}

INSTANTIATE_TEST_SUITE_P(
    Drivers, ParallelDeterminism,
    ::testing::Combine(::testing::Values(Algorithm::kRecursiveBisection,
                                         Algorithm::kKWay),
                       ::testing::Values(1, 3)),
    [](const ::testing::TestParamInfo<std::tuple<Algorithm, int>>& pinfo) {
      std::string name = std::get<0>(pinfo.param) ==
                                 Algorithm::kRecursiveBisection
                             ? "rb"
                             : "kway";
      name += "_ncon" + std::to_string(std::get<1>(pinfo.param));
      return name;
    });

// The in-node data-parallel phases only engage above their size
// thresholds (handshake matching needs >= kHandshakeMinVtxs vertices,
// chunked contraction a coarse graph bigger than its chunk), so the
// bit-identity contract needs a graph big enough to cross them: a 101x101
// triangulated grid (10201 vertices) coarsens through several levels with
// the handshake + chunked paths active. MC-KW additionally drives the
// colored sweep on every level. Runs fully observed — boundary audits,
// trace, flight recorder, and profiler attached — because observers must
// never perturb the partition either.
TEST(ParallelDeterminismLarge, KWayParallelPhasesBitIdenticalUnderObservers) {
  for (const int ncon : {1, 3}) {
    Graph g = tri_grid2d(101, 101);
    if (ncon > 1) apply_type_s_weights(g, ncon, 12, 0, 7, 2);

    std::vector<idx_t> reference;
    sum_t reference_cut = 0;
    for (const int threads : {1, 2, 4, 8}) {
      TraceRecorder trace;
      FlightRecorder flight;
      Profiler profile;
      Options o = base_options(Algorithm::kKWay, 16, /*seed=*/99);
      o.num_threads = threads;
      o.audit_level = AuditLevel::kBoundaries;
      o.trace = &trace;
      o.flight = &flight;
      o.profile = &profile;
      const PartitionResult r = partition(g, o);
      ASSERT_TRUE(validate_partition(g, r.part, 16).empty())
          << "ncon=" << ncon << " threads=" << threads;
      if (threads == 1) {
        reference = r.part;
        reference_cut = r.cut;
      } else {
        EXPECT_EQ(r.part, reference)
            << "ncon=" << ncon << " threads=" << threads;
        EXPECT_EQ(r.cut, reference_cut);
      }
    }
  }
}

// Tight instance (64 parts on a 13x13 grid, ~2.6 vertices per part): the
// refiner's balancer exits overloaded and the serial rebalancer engages.
// It runs after all parallel phases on a thread-invariant `where`, so the
// bit-identity contract must survive it — and the repaired partition must
// actually be feasible, or the case would not be exercising the path.
TEST(ParallelDeterminismTight, RebalancerEngagedStaysBitIdentical) {
  for (const int ncon : {1, 3}) {
    Graph g = grid2d(13, 13, ncon);
    if (ncon > 1) apply_type_s_weights(g, ncon, 16, 0, 19, 1003);
    for (const Algorithm alg :
         {Algorithm::kKWay, Algorithm::kRecursiveBisection}) {
      Options o = base_options(alg, 64, /*seed=*/3);
      o.num_threads = 1;  // ncon=1: empty ubvec clamps to the provable
                          // bound; ncon=3 needs 1.25 (joint packing
                          // threshold, see test_rebalance.cpp)
      if (ncon > 1) o.ubvec.assign(to_size(ncon), 1.25);
      const PartitionResult serial = partition(g, o);
      ASSERT_TRUE(validate_partition(g, serial.part, 64).empty());
      EXPECT_TRUE(serial.feasible) << "ncon=" << ncon;
      for (const int threads : {2, 8}) {
        o.num_threads = threads;
        const PartitionResult parallel = partition(g, o);
        EXPECT_EQ(parallel.part, serial.part)
            << "ncon=" << ncon << " threads=" << threads;
        EXPECT_EQ(parallel.cut, serial.cut);
      }
    }
  }
}

TEST(ParallelPartition, MultithreadedRunIsValidAndBalanced) {
  Graph g = make_graph(3);
  Options o = base_options(Algorithm::kRecursiveBisection, 12, 7);
  o.num_threads = 8;
  const PartitionResult r = partition(g, o);
  EXPECT_TRUE(validate_partition(g, r.part, 12).empty());
  EXPECT_LE(r.max_imbalance, 1.25);  // loose: nested bisection tolerance
}

TEST(ParallelPartition, TraceStaysWellFormedUnderThreads) {
  Graph g = make_graph(1);
  TraceRecorder tr;
  Options o = base_options(Algorithm::kRecursiveBisection, 16, 5);
  o.num_threads = 8;
  o.trace = &tr;
  const PartitionResult r = partition(g, o);
  ASSERT_TRUE(validate_partition(g, r.part, 16).empty());

  EXPECT_EQ(tr.depth(), 0);  // home-thread spans all closed

  std::ostringstream out;
  tr.write_chrome_trace(out);
  const auto doc = testing::parse_json(out.str());
  ASSERT_TRUE(doc.has_value()) << "chrome trace is not valid JSON";
  const testing::JsonValue* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  EXPECT_FALSE(events->array.empty());

  // Per-tid begin/end streams must be balanced and properly nested.
  std::map<double, int> open_per_tid;
  for (const testing::JsonValue& ev : events->array) {
    const testing::JsonValue* ph = ev.find("ph");
    const testing::JsonValue* tid = ev.find("tid");
    ASSERT_NE(ph, nullptr);
    ASSERT_NE(tid, nullptr);
    if (ph->str == "B") {
      ++open_per_tid[tid->number];
    } else if (ph->str == "E") {
      --open_per_tid[tid->number];
      EXPECT_GE(open_per_tid[tid->number], 0) << "unmatched E on a tid";
    }
  }
  for (const auto& [tid, open] : open_per_tid) {
    EXPECT_EQ(open, 0) << "unbalanced spans on tid " << tid;
  }

  // Merged counters see the work done on worker threads.
  const CounterRegistry merged = tr.merged_counters();
  EXPECT_GT(merged.get("initpart.trials"), 0);
}

}  // namespace
}  // namespace mcgp
