#include "core/balance2way.hpp"

#include <gtest/gtest.h>

#include "gen/mesh_gen.hpp"
#include "gen/weight_gen.hpp"

namespace mcgp {
namespace {

BisectionTargets even_targets(int ncon, real_t ub = 1.05) {
  BisectionTargets t;
  t.f0 = 0.5;
  t.ub.assign(to_size(ncon), ub);
  return t;
}

TEST(Balance2Way, NoopWhenFeasible) {
  Graph g = grid2d(10, 10);
  std::vector<idx_t> where(100);
  for (idx_t v = 0; v < 100; ++v) where[to_size(v)] = v < 50 ? 0 : 1;
  const std::vector<idx_t> before = where;
  Rng rng(1);
  EXPECT_TRUE(balance_2way(g, where, even_targets(1), rng));
  EXPECT_EQ(where, before);
}

TEST(Balance2Way, FixesGrossSingleConstraintImbalance) {
  Graph g = grid2d(16, 16);
  std::vector<idx_t> where(256, 0);
  where[0] = 1;  // 255 vs 1
  Rng rng(2);
  const BisectionTargets t = even_targets(1);
  EXPECT_TRUE(balance_2way(g, where, t, rng));
  BisectionBalance b;
  b.init(g, where, t);
  EXPECT_LE(b.potential(), 1.0 + 1e-9);
}

TEST(Balance2Way, FixesMultiConstraintImbalance) {
  Graph g = random_geometric(600, 0, 4, 3);
  apply_type_s_weights(g, 3, 8, 0, 19, 9);
  std::vector<idx_t> where(to_size(g.nvtxs), 0);
  for (idx_t v = 0; v < g.nvtxs / 4; ++v) where[to_size(v)] = 1;
  Rng rng(3);
  const BisectionTargets t = even_targets(3, 1.10);
  balance_2way(g, where, t, rng);
  BisectionBalance b;
  b.init(g, where, t);
  // A generous tolerance must be reachable from a 75/25 start.
  EXPECT_LE(b.potential(), 1.05);
}

TEST(Balance2Way, NeverWorsensPotential) {
  Graph g = grid2d(14, 14, 2);
  apply_type_s_weights(g, 2, 4, 0, 9, 5);
  std::vector<idx_t> where(to_size(g.nvtxs));
  Rng seedr(4);
  for (auto& s : where) s = static_cast<idx_t>(seedr.next_below(2));
  const BisectionTargets t = even_targets(2, 1.02);
  BisectionBalance b;
  b.init(g, where, t);
  const real_t before = b.potential();
  Rng rng(5);
  balance_2way(g, where, t, rng);
  b.init(g, where, t);
  EXPECT_LE(b.potential(), before + 1e-9);
}

TEST(Balance2Way, UnevenTargets) {
  Graph g = grid2d(20, 20);
  BisectionTargets t = even_targets(1);
  t.f0 = 0.3;
  // Start 50/50: side 0 overloaded relative to 0.3 target.
  std::vector<idx_t> where(400);
  for (idx_t v = 0; v < 400; ++v) where[to_size(v)] = v < 200 ? 0 : 1;
  Rng rng(6);
  EXPECT_TRUE(balance_2way(g, where, t, rng));
  idx_t c0 = 0;
  for (const idx_t s : where) c0 += s == 0 ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(c0) / 400, 0.3, 0.02);
}

TEST(Balance2Way, ZeroWeightVerticesCannotRelieve) {
  // Side 0 overloaded in constraint 1, but only vertices with zero weight
  // in constraint 1 are movable candidates -> must pick the weighted ones.
  GraphBuilder bld(8, 2);
  for (idx_t v = 0; v + 1 < 8; ++v) bld.add_edge(v, v + 1);
  for (idx_t v = 0; v < 8; ++v) {
    bld.set_weights(v, v < 4 ? std::vector<wgt_t>{1, 2}
                             : std::vector<wgt_t>{1, 0});
  }
  Graph g = bld.build();
  std::vector<idx_t> where = {0, 0, 0, 0, 1, 1, 1, 1};  // all c1 weight on side 0
  Rng rng(7);
  const BisectionTargets t = even_targets(2, 1.10);
  balance_2way(g, where, t, rng);
  BisectionBalance b;
  b.init(g, where, t);
  EXPECT_LT(b.nload(0, 1), 2.0);  // moved at least one (1,2) vertex across
}

}  // namespace
}  // namespace mcgp
