// Public refine_partition() API: flat refinement of an existing
// decomposition after the weights changed (the adaptive use case), plus
// the repartitioning metrics that support it.
#include <gtest/gtest.h>

#include "core/partitioner.hpp"
#include "gen/mesh_gen.hpp"
#include "gen/weight_gen.hpp"
#include "graph/metrics.hpp"
#include "support/random.hpp"

namespace mcgp {
namespace {

TEST(MovedVertices, CountsDifferences) {
  EXPECT_EQ(moved_vertices({0, 1, 2}, {0, 1, 2}), 0);
  EXPECT_EQ(moved_vertices({0, 1, 2}, {0, 2, 1}), 2);
  EXPECT_EQ(moved_vertices({}, {}), 0);
}

TEST(PartComponents, ContiguousStripes) {
  Graph g = grid2d(8, 8);
  std::vector<idx_t> part(64);
  for (idx_t v = 0; v < 64; ++v) part[to_size(v)] = v < 32 ? 0 : 1;
  EXPECT_EQ(count_part_components(g, part, 2), 2);
}

TEST(PartComponents, DetectsFragmentation) {
  Graph g = grid2d(8, 8);
  std::vector<idx_t> part(64, 0);
  part[0] = 1;   // corner island
  part[63] = 1;  // opposite corner island
  EXPECT_EQ(count_part_components(g, part, 2), 3);
}

TEST(RefinePartition, ImprovesAfterWeightDrift) {
  // Partition for one weight pattern, drift the weights, refine in place.
  Graph g = grid2d(40, 40);
  apply_type_s_weights(g, 3, 16, 0, 19, 1);
  Options o;
  o.nparts = 8;
  const PartitionResult initial = partition(g, o);

  // Drift: re-roll the region weights (new seed).
  apply_type_s_weights(g, 3, 16, 0, 19, 2);
  const real_t stale_imb = max_imbalance(g, initial.part, 8);

  const PartitionResult refined = refine_partition(g, initial.part, o);
  EXPECT_LE(refined.max_imbalance, stale_imb + 1e-9);
  EXPECT_LE(refined.max_imbalance, 1.20);  // usually back under tolerance
  EXPECT_TRUE(validate_partition(g, refined.part, 8, true).empty());

  // Migration should be modest compared to a from-scratch repartition.
  const PartitionResult scratch = partition(g, o);
  const idx_t migrated_refine = moved_vertices(initial.part, refined.part);
  const idx_t migrated_scratch = moved_vertices(initial.part, scratch.part);
  EXPECT_LT(migrated_refine, migrated_scratch);
}

TEST(RefinePartition, NoopOnGoodPartition) {
  Graph g = grid2d(24, 24);
  Options o;
  o.nparts = 4;
  const PartitionResult r = partition(g, o);
  const PartitionResult refined = refine_partition(g, r.part, o);
  EXPECT_LE(refined.cut, r.cut);
  EXPECT_LE(refined.max_imbalance, 1.05 + 1e-9);
}

TEST(RefinePartition, WorksWithPriorityQueueScheme) {
  Graph g = grid2d(20, 20);
  std::vector<idx_t> part(400);
  Rng rng(3);
  for (auto& p : part) p = static_cast<idx_t>(rng.next_below(4));
  const sum_t before = edge_cut(g, part);
  Options o;
  o.nparts = 4;
  o.kway_scheme = KWayRefineScheme::kPriorityQueue;
  const PartitionResult r = refine_partition(g, part, o);
  EXPECT_LT(r.cut, before);
  EXPECT_LE(r.max_imbalance, 1.05 + 1e-9);
}

TEST(RefinePartition, RejectsInvalidInput) {
  Graph g = grid2d(4, 4);
  Options o;
  o.nparts = 2;
  EXPECT_THROW(refine_partition(g, {0, 1}, o), std::invalid_argument);
  EXPECT_THROW(refine_partition(g, std::vector<idx_t>(16, 5), o),
               std::invalid_argument);
}

TEST(RefinePartition, RespectsTpwgts) {
  Graph g = grid2d(30, 30);
  Options o;
  o.nparts = 3;
  o.tpwgts = {0.5, 0.3, 0.2};
  const PartitionResult r = partition(g, o);
  const PartitionResult refined = refine_partition(g, r.part, o);
  EXPECT_LE(refined.max_imbalance, 1.05 + 0.02);
}

}  // namespace
}  // namespace mcgp
