#include "core/bisection.hpp"

#include <gtest/gtest.h>

#include "gen/mesh_gen.hpp"

namespace mcgp {
namespace {

Graph two_group_graph() {
  // 4 vertices, 2 constraints with known weights.
  GraphBuilder b(4, 2);
  b.add_edge(0, 1, 3);
  b.add_edge(1, 2, 1);
  b.add_edge(2, 3, 2);
  b.set_weights(0, {4, 0});
  b.set_weights(1, {2, 2});
  b.set_weights(2, {0, 4});
  b.set_weights(3, {2, 2});
  return b.build();  // totals: (8, 8)
}

BisectionTargets even2(real_t ub = 1.05) {
  BisectionTargets t;
  t.f0 = 0.5;
  t.ub = {ub, ub};
  return t;
}

TEST(BisectionTargets, FractionAccessor) {
  BisectionTargets t;
  t.f0 = 0.3;
  EXPECT_DOUBLE_EQ(t.fraction(0), 0.3);
  EXPECT_DOUBLE_EQ(t.fraction(1), 0.7);
}

TEST(BisectionBalance, SideWeightsAndNload) {
  Graph g = two_group_graph();
  const BisectionTargets t = even2();
  BisectionBalance b;
  b.init(g, {0, 0, 1, 1}, t);
  EXPECT_EQ(b.side_weight(0, 0), 6);
  EXPECT_EQ(b.side_weight(0, 1), 2);
  EXPECT_EQ(b.side_weight(1, 0), 2);
  EXPECT_EQ(b.side_weight(1, 1), 6);
  // nload = w / total / f = 6/8/0.5 = 1.5
  EXPECT_DOUBLE_EQ(b.nload(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(b.nload(1, 1), 1.5);
  EXPECT_DOUBLE_EQ(b.nload(0, 1), 0.5);
}

TEST(BisectionBalance, PotentialAndFeasibility) {
  Graph g = two_group_graph();
  const BisectionTargets t = even2(1.05);
  BisectionBalance b;
  b.init(g, {0, 0, 1, 1}, t);
  EXPECT_NEAR(b.potential(), 1.5 / 1.05, 1e-12);
  EXPECT_FALSE(b.feasible());
  // Perfectly balanced split: {0,2} vs {1,3} -> (4,4)/(4,4).
  b.init(g, {0, 1, 0, 1}, t);
  EXPECT_NEAR(b.potential(), 1.0 / 1.05, 1e-12);
  EXPECT_TRUE(b.feasible());
}

TEST(BisectionBalance, ApplyMoveMatchesReinit) {
  Graph g = two_group_graph();
  const BisectionTargets t = even2();
  std::vector<idx_t> where = {0, 0, 1, 1};
  BisectionBalance b;
  b.init(g, where, t);
  b.apply_move(1, 0);
  where[1] = 1;
  BisectionBalance fresh;
  fresh.init(g, where, t);
  for (int s = 0; s < 2; ++s) {
    for (int i = 0; i < 2; ++i) {
      EXPECT_EQ(b.side_weight(s, i), fresh.side_weight(s, i));
    }
  }
  EXPECT_DOUBLE_EQ(b.potential(), fresh.potential());
}

TEST(BisectionBalance, PotentialAfterIsHypothetical) {
  Graph g = two_group_graph();
  const BisectionTargets t = even2();
  BisectionBalance b;
  // side0 = (4,0), side1 = (4,8): constraint 1 at nload 2.0 on side 1.
  b.init(g, {0, 1, 1, 1}, t);
  const real_t before = b.potential();
  // Moving vertex 2 (0,4) off side 1 equalizes constraint 1 -> (4,4)/(4,4).
  const real_t hypothetical = b.potential_after(2, 1);
  EXPECT_LT(hypothetical, before);
  // State unchanged by the hypothetical query.
  EXPECT_DOUBLE_EQ(b.potential(), before);
  // Committing matches the prediction.
  b.apply_move(2, 1);
  EXPECT_DOUBLE_EQ(b.potential(), hypothetical);
}

TEST(BisectionBalance, WorstConstraintAndHeavySide) {
  Graph g = two_group_graph();
  const BisectionTargets t = even2();
  BisectionBalance b;
  // {0} vs rest: side0 = (4,0), side1 = (4,8) -> constraint 1 worst.
  b.init(g, {0, 1, 1, 1}, t);
  EXPECT_EQ(b.worst_constraint(), 1);
  EXPECT_EQ(b.heavy_side(1), 1);
  EXPECT_EQ(b.heavy_side(0), 0);  // tie 4/4 -> nload equal -> side 0
}

TEST(BisectionBalance, ZeroTotalConstraintIgnored) {
  GraphBuilder bld(2, 2);
  bld.add_edge(0, 1);
  bld.set_weights(0, {1, 0});
  bld.set_weights(1, {1, 0});
  Graph g = bld.build();
  BisectionTargets t = even2();
  BisectionBalance b;
  b.init(g, {0, 1}, t);
  EXPECT_DOUBLE_EQ(b.constraint_potential(1), 0.0);
  EXPECT_TRUE(b.feasible());
}

TEST(ComputeCut2Way, MatchesMetric) {
  Graph g = grid2d(8, 8);
  std::vector<idx_t> where(64);
  for (idx_t v = 0; v < 64; ++v) where[to_size(v)] = (v / 8) % 2;
  // Alternating 1-wide row stripes: 7 boundaries of 8 edges each.
  EXPECT_EQ(compute_cut_2way(g, where), 7 * 8);
}

TEST(PerBisectionUb, RootOfOverallTolerance) {
  const auto ub = per_bisection_ub({1.05, 1.1025}, 2);
  EXPECT_NEAR(ub[0], std::sqrt(1.05), 1e-12);
  EXPECT_NEAR(ub[1], 1.05, 1e-12);
}

TEST(PerBisectionUb, FloorApplies) {
  const auto ub = per_bisection_ub({1.05}, 50);
  EXPECT_DOUBLE_EQ(ub[0], 1.004);
  // Degenerate depth clamps to 1.
  const auto ub0 = per_bisection_ub({1.05}, 0);
  EXPECT_DOUBLE_EQ(ub0[0], 1.05);
}

}  // namespace
}  // namespace mcgp
