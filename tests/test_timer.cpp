#include "support/timer.hpp"

#include <gtest/gtest.h>

namespace mcgp {
namespace {

TEST(WallTimer, NonNegativeAndMonotone) {
  WallTimer t;
  const double a = t.seconds();
  const double b = t.seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST(WallTimer, RestartResets) {
  WallTimer t;
  double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += static_cast<double>(i);
  volatile double keep = sink;
  (void)keep;
  t.restart();
  EXPECT_LT(t.seconds(), 1.0);
}

TEST(PhaseTimes, AccumulatesByName) {
  PhaseTimes pt;
  pt.add("coarsen", 1.0);
  pt.add("refine", 2.0);
  pt.add("coarsen", 0.5);
  EXPECT_DOUBLE_EQ(pt.get("coarsen"), 1.5);
  EXPECT_DOUBLE_EQ(pt.get("refine"), 2.0);
  EXPECT_DOUBLE_EQ(pt.get("missing"), 0.0);
  ASSERT_EQ(pt.entries().size(), 2u);
  EXPECT_EQ(pt.entries()[0].first, "coarsen");
}

TEST(PhaseTimes, ClearEmpties) {
  PhaseTimes pt;
  pt.add("x", 1.0);
  pt.clear();
  EXPECT_TRUE(pt.entries().empty());
  EXPECT_DOUBLE_EQ(pt.get("x"), 0.0);
}

TEST(ScopedPhase, RecordsElapsed) {
  PhaseTimes pt;
  {
    ScopedPhase sp(pt, "work");
    double sink = 0;
    for (int i = 0; i < 10000; ++i) sink += static_cast<double>(i);
    volatile double keep = sink;
    (void)keep;
  }
  EXPECT_GT(pt.get("work"), 0.0);
  EXPECT_LT(pt.get("work"), 5.0);
}

}  // namespace
}  // namespace mcgp
