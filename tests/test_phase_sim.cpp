#include "gen/phase_sim.hpp"

#include <gtest/gtest.h>

#include "gen/mesh_gen.hpp"
#include "support/check.hpp"

namespace mcgp {
namespace {

TEST(PhaseSim, PerfectBalanceHasUnitSlowdown) {
  GraphBuilder b(4, 2);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  for (idx_t v = 0; v < 4; ++v) b.set_weights(v, {1, 1});
  Graph g = b.build();
  const PhaseSimResult r = simulate_phases(g, {0, 1, 0, 1}, 2);
  EXPECT_EQ(r.total_makespan, r.total_ideal);
  EXPECT_DOUBLE_EQ(r.slowdown(), 1.0);
}

TEST(PhaseSim, DetectsPerPhaseImbalance) {
  // Two phases, four vertices: vertices 0,1 active in phase 0 only;
  // vertices 2,3 active in phase 1 only. The partition {0,1 | 2,3}
  // balances the SUM perfectly but each phase runs on one processor.
  GraphBuilder b(4, 2);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  b.set_weights(0, {1, 0});
  b.set_weights(1, {1, 0});
  b.set_weights(2, {0, 1});
  b.set_weights(3, {0, 1});
  Graph g = b.build();

  const PhaseSimResult bad = simulate_phases(g, {0, 0, 1, 1}, 2);
  EXPECT_EQ(bad.phase_makespan[0], 2);
  EXPECT_EQ(bad.phase_makespan[1], 2);
  EXPECT_EQ(bad.total_ideal, 2);
  EXPECT_DOUBLE_EQ(bad.slowdown(), 2.0);

  const PhaseSimResult good = simulate_phases(g, {0, 1, 0, 1}, 2);
  EXPECT_DOUBLE_EQ(good.slowdown(), 1.0);
}

TEST(PhaseSim, IdealRoundsUp) {
  GraphBuilder b(3, 1);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  Graph g = b.build();
  const PhaseSimResult r = simulate_phases(g, {0, 0, 1}, 2);
  EXPECT_EQ(r.phase_ideal[0], 2);  // ceil(3/2)
  EXPECT_EQ(r.phase_makespan[0], 2);
}

TEST(PhaseSim, MatchesTypePGenerator) {
  Graph g = grid2d(12, 12);
  apply_type_p_weights(g, 3, 16, 5);
  std::vector<idx_t> part(to_size(g.nvtxs));
  for (idx_t v = 0; v < g.nvtxs; ++v) part[to_size(v)] = v % 4;
  const PhaseSimResult r = simulate_phases(g, part, 4);
  ASSERT_EQ(r.phase_makespan.size(), 3u);
  EXPECT_GE(r.slowdown(), 1.0);
  sum_t total = 0;
  for (const sum_t m : r.phase_makespan) total = checked_add(total, m);
  EXPECT_EQ(total, r.total_makespan);
}

}  // namespace
}  // namespace mcgp
