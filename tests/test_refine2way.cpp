#include "core/refine2way.hpp"

#include <gtest/gtest.h>

#include "core/balance2way.hpp"
#include "gen/mesh_gen.hpp"
#include "gen/weight_gen.hpp"
#include "support/random.hpp"

namespace mcgp {
namespace {

BisectionTargets even_targets(int ncon, real_t ub = 1.05) {
  BisectionTargets t;
  t.f0 = 0.5;
  t.ub.assign(to_size(ncon), ub);
  return t;
}

/// A balanced but deliberately jagged bisection of a grid (stripes).
std::vector<idx_t> jagged_bisection(idx_t nx, idx_t ny) {
  std::vector<idx_t> where(to_size(nx) * to_size(ny));
  for (idx_t x = 0; x < nx; ++x) {
    for (idx_t y = 0; y < ny; ++y) {
      // Checker-ish split that keeps counts even but cuts many edges.
      where[to_size(x * ny + y)] = (x + 2 * y) % 4 < 2 ? 0 : 1;
    }
  }
  return where;
}

TEST(DominantConstraint, PicksLargestNormalized) {
  GraphBuilder b(2, 3);
  b.add_edge(0, 1);
  b.set_weights(0, {10, 1, 1});
  b.set_weights(1, {1, 1, 10});
  Graph g = b.build();
  EXPECT_EQ(dominant_constraint(g, 0), 0);
  EXPECT_EQ(dominant_constraint(g, 1), 2);
}

TEST(DominantConstraint, NormalizationMatters) {
  // Constraint totals differ wildly: raw weight 5 of a small-total
  // constraint dominates raw weight 50 of a large-total one.
  GraphBuilder b(3, 2);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.set_weights(0, {50, 5});
  b.set_weights(1, {1000, 1});
  b.set_weights(2, {1000, 1});
  Graph g = b.build();
  // For vertex 0: 50/2050 < 5/7.
  EXPECT_EQ(dominant_constraint(g, 0), 1);
}

class RefinePolicies : public testing::TestWithParam<QueuePolicy> {};

TEST_P(RefinePolicies, NeverWorsensCut) {
  Graph g = grid2d(20, 20);
  std::vector<idx_t> where = jagged_bisection(20, 20);
  const sum_t before = compute_cut_2way(g, where);
  Rng rng(1);
  const sum_t after = refine_2way(g, where, even_targets(1), GetParam(), 8,
                                  0, rng);
  EXPECT_LE(after, before);
  EXPECT_EQ(after, compute_cut_2way(g, where));
}

TEST_P(RefinePolicies, SubstantiallyImprovesJaggedCut) {
  Graph g = grid2d(24, 24);
  std::vector<idx_t> where = jagged_bisection(24, 24);
  const sum_t before = compute_cut_2way(g, where);
  Rng rng(2);
  const sum_t after = refine_2way(g, where, even_targets(1), GetParam(), 8,
                                  0, rng);
  EXPECT_LT(after, before / 2) << "policy failed to clean up stripes";
}

TEST_P(RefinePolicies, PreservesFeasibility) {
  Graph g = random_geometric(800, 0, 3, 3);
  apply_type_s_weights(g, 3, 8, 0, 19, 5);
  const BisectionTargets t = even_targets(3, 1.10);
  // Start from a feasible balanced-ish split via balance helper.
  std::vector<idx_t> where(to_size(g.nvtxs));
  Rng seedr(3);
  for (auto& s : where) s = static_cast<idx_t>(seedr.next_below(2));
  balance_2way(g, where, t, seedr);
  BisectionBalance b;
  b.init(g, where, t);
  const real_t pot_before = b.potential();

  Rng rng(4);
  refine_2way(g, where, t, GetParam(), 8, 0, rng);
  b.init(g, where, t);
  // The pass must not end in a worse balance state than it started.
  EXPECT_LE(b.potential(), std::max(pot_before, 1.0) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, RefinePolicies,
                         testing::Values(QueuePolicy::kMostImbalanced,
                                         QueuePolicy::kRoundRobin,
                                         QueuePolicy::kSingleQueue));

TEST(Refine2Way, GridBisectionNearOptimal) {
  // 32x32 grid: the optimal bisection cut is 32. A random balanced start
  // refined by FM should land within a small factor.
  Graph g = grid2d(32, 32);
  std::vector<idx_t> where(1024);
  Rng seedr(5);
  idx_t c0 = 0;
  for (auto& s : where) {
    s = static_cast<idx_t>(seedr.next_below(2));
    c0 += s == 0 ? 1 : 0;
  }
  const BisectionTargets t = even_targets(1);
  Rng rng(6);
  balance_2way(g, where, t, rng);
  const sum_t cut = refine_2way(g, where, t, QueuePolicy::kMostImbalanced,
                                12, 0, rng);
  // From a random start FM will not reach 32, but must do far better than
  // the ~1500 expected of a random bisection.
  EXPECT_LT(cut, 400);
}

TEST(Refine2Way, RepairsModestImbalance) {
  Graph g = grid2d(20, 20);
  const BisectionTargets t = even_targets(1, 1.05);
  // 70/30 split: infeasible.
  std::vector<idx_t> where(400);
  for (idx_t v = 0; v < 400; ++v) where[to_size(v)] = v < 280 ? 0 : 1;
  Rng rng(7);
  refine_2way(g, where, t, QueuePolicy::kMostImbalanced, 10, 0, rng);
  BisectionBalance b;
  b.init(g, where, t);
  EXPECT_LE(b.potential(), 1.0 + 1e-9) << "FM failed to restore balance";
}

TEST(Refine2Way, RespectsUnevenTargets) {
  Graph g = grid2d(18, 18);
  BisectionTargets t = even_targets(1, 1.05);
  t.f0 = 0.25;
  std::vector<idx_t> where(324);
  for (idx_t v = 0; v < 324; ++v) where[to_size(v)] = v < 81 ? 0 : 1;
  Rng rng(8);
  const sum_t before = compute_cut_2way(g, where);
  refine_2way(g, where, t, QueuePolicy::kMostImbalanced, 8, 0, rng);
  BisectionBalance b;
  b.init(g, where, t);
  EXPECT_LE(b.potential(), 1.0 + 1e-9);
  EXPECT_LE(compute_cut_2way(g, where), before);
}

TEST(Refine2Way, StatsAreConsistent) {
  Graph g = grid2d(16, 16);
  std::vector<idx_t> where = jagged_bisection(16, 16);
  Refine2WayStats stats;
  Rng rng(9);
  const sum_t cut = refine_2way(g, where, even_targets(1),
                                QueuePolicy::kMostImbalanced, 8, 0, rng,
                                &stats);
  EXPECT_EQ(stats.final_cut, cut);
  EXPECT_GE(stats.initial_cut, stats.final_cut);
  EXPECT_GT(stats.passes, 0);
  EXPECT_GT(stats.moves, 0);
}

TEST(Refine2Way, NoopOnPerfectBisection) {
  Graph g = grid2d(16, 16);
  std::vector<idx_t> where(256);
  for (idx_t v = 0; v < 256; ++v) where[to_size(v)] = v < 128 ? 0 : 1;
  const sum_t before = compute_cut_2way(g, where);
  EXPECT_EQ(before, 16);
  Rng rng(10);
  const sum_t after = refine_2way(g, where, even_targets(1),
                                  QueuePolicy::kMostImbalanced, 8, 0, rng);
  EXPECT_EQ(after, 16);
}

TEST(Refine2Way, MultiConstraintSwapEscape) {
  // Sides peak in different constraints: only swap sequences (through the
  // exploration envelope) can equalize both. Build two vertex populations
  // with complementary vectors placed adversarially.
  GraphBuilder bld(80, 2);
  for (idx_t v = 0; v + 1 < 80; ++v) bld.add_edge(v, v + 1);
  for (idx_t v = 0; v < 80; ++v) {
    bld.set_weights(v, v % 2 == 0 ? std::vector<wgt_t>{4, 1}
                                  : std::vector<wgt_t>{1, 4});
  }
  Graph g = bld.build();
  // Put all even (4,1)-vertices on side 0, odd on side 1: constraint 0
  // peaks on side 0, constraint 1 on side 1 — balanced counts, imbalanced
  // constraints.
  std::vector<idx_t> where(80);
  for (idx_t v = 0; v < 80; ++v) where[to_size(v)] = v % 2;
  const BisectionTargets t = even_targets(2, 1.05);
  BisectionBalance b;
  b.init(g, where, t);
  ASSERT_GT(b.potential(), 1.2);  // genuinely imbalanced start

  Rng rng(11);
  for (int i = 0; i < 3; ++i) {
    balance_2way(g, where, t, rng);
    refine_2way(g, where, t, QueuePolicy::kMostImbalanced, 10, 0, rng);
  }
  b.init(g, where, t);
  EXPECT_LE(b.potential(), 1.0 + 1e-9) << "swap escape failed";
}

}  // namespace
}  // namespace mcgp
