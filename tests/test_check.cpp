// Boundary tests for the checked sum_t arithmetic in support/check.hpp:
// exact behavior at the INT64 rails and the checked_narrow range gates.
// The audit layer leans on these primitives to recompute invariants over
// adversarial inputs, so "throws exactly when the mathematical result
// leaves [INT64_MIN, INT64_MAX]" is itself an invariant worth pinning.
#include "support/check.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

namespace mcgp {
namespace {

constexpr sum_t kMax = std::numeric_limits<sum_t>::max();
constexpr sum_t kMin = std::numeric_limits<sum_t>::min();

TEST(CheckedAdd, ExactAtUpperRail) {
  EXPECT_EQ(checked_add(checked_sub(kMax, 1), 1), kMax);
  EXPECT_EQ(checked_add(kMax, 0), kMax);
  EXPECT_EQ(checked_add(0, kMax), kMax);
  EXPECT_THROW(checked_add(kMax, 1), AuditFailure);
  EXPECT_THROW(checked_add(1, kMax), AuditFailure);
  EXPECT_THROW(checked_add(checked_add(kMax / 2, 1), checked_add(kMax / 2, 1)),
               AuditFailure);
}

TEST(CheckedAdd, ExactAtLowerRail) {
  EXPECT_EQ(checked_add(checked_add(kMin, 1), -1), kMin);
  EXPECT_EQ(checked_add(kMin, 0), kMin);
  EXPECT_THROW(checked_add(kMin, -1), AuditFailure);
  EXPECT_THROW(checked_add(-1, kMin), AuditFailure);
}

TEST(CheckedAdd, MixedSignsNeverOverflow) {
  EXPECT_EQ(checked_add(kMax, kMin), -1);
  EXPECT_EQ(checked_add(kMin, kMax), -1);
}

TEST(CheckedSub, ExactAtRails) {
  EXPECT_EQ(checked_sub(kMax, 0), kMax);
  EXPECT_EQ(checked_sub(kMin, 0), kMin);
  EXPECT_EQ(checked_sub(checked_add(kMin, 1), 1), kMin);
  EXPECT_EQ(checked_sub(-1, kMax), kMin);
  EXPECT_THROW(checked_sub(kMin, 1), AuditFailure);
  EXPECT_THROW(checked_sub(kMax, -1), AuditFailure);
  // -kMin does not exist in two's complement.
  EXPECT_THROW(checked_sub(0, kMin), AuditFailure);
  EXPECT_EQ(checked_sub(0, kMax), checked_add(kMin, 1));
}

TEST(CheckedMul, ExactAtRails) {
  EXPECT_EQ(checked_mul(kMax, 1), kMax);
  EXPECT_EQ(checked_mul(kMin, 1), kMin);
  EXPECT_EQ(checked_mul(kMax / 2, 2), checked_sub(kMax, 1));
  EXPECT_THROW(checked_mul(checked_add(kMax / 2, 1), 2), AuditFailure);
  EXPECT_THROW(checked_mul(kMax, 2), AuditFailure);
  // kMin * -1 == kMax + 1: the one asymmetric two's-complement case.
  EXPECT_THROW(checked_mul(kMin, -1), AuditFailure);
  EXPECT_EQ(checked_mul(kMin / 2, 2), kMin);
  EXPECT_THROW(checked_mul(checked_sub(kMin / 2, 1), 2), AuditFailure);
}

TEST(CheckedMul, ZeroAndSigns) {
  EXPECT_EQ(checked_mul(kMax, 0), 0);
  EXPECT_EQ(checked_mul(kMin, 0), 0);
  EXPECT_EQ(checked_mul(-3, 7), -21);
  EXPECT_EQ(checked_mul(-3, -7), 21);
}

TEST(CheckedNarrow, Wgt32Rails) {
  constexpr sum_t lo = std::numeric_limits<wgt_t>::min();
  constexpr sum_t hi = std::numeric_limits<wgt_t>::max();
  EXPECT_EQ(checked_narrow<wgt_t>(hi), std::numeric_limits<wgt_t>::max());
  EXPECT_EQ(checked_narrow<wgt_t>(lo), std::numeric_limits<wgt_t>::min());
  EXPECT_EQ(checked_narrow<wgt_t>(0), 0);
  EXPECT_EQ(checked_narrow<wgt_t>(-1), -1);
  EXPECT_THROW(checked_narrow<wgt_t>(checked_add(hi, 1)), AuditFailure);
  EXPECT_THROW(checked_narrow<wgt_t>(checked_sub(lo, 1)), AuditFailure);
  EXPECT_THROW(checked_narrow<wgt_t>(kMax), AuditFailure);
  EXPECT_THROW(checked_narrow<wgt_t>(kMin), AuditFailure);
}

TEST(CheckedNarrow, Idx32Rails) {
  constexpr sum_t hi = std::numeric_limits<idx_t>::max();
  EXPECT_EQ(checked_narrow<idx_t>(hi), std::numeric_limits<idx_t>::max());
  EXPECT_THROW(checked_narrow<idx_t>(checked_add(hi, 1)), AuditFailure);
}

TEST(CheckedNarrow, NarrowerTypes) {
  EXPECT_EQ(checked_narrow<std::int16_t>(32767), 32767);
  EXPECT_THROW(checked_narrow<std::int16_t>(32768), AuditFailure);
  EXPECT_EQ(checked_narrow<std::uint8_t>(255), 255);
  EXPECT_THROW(checked_narrow<std::uint8_t>(256), AuditFailure);
  // Unsigned targets reject negatives outright.
  EXPECT_THROW(checked_narrow<std::uint8_t>(-1), AuditFailure);
}

TEST(CheckedOps, ErrorMessagesCarryOperands) {
  try {
    checked_add(kMax, 25);
    FAIL() << "checked_add(kMax, 25) must throw";
  } catch (const AuditFailure& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("checked_add"), std::string::npos);
    EXPECT_NE(msg.find("25"), std::string::npos);
  }
  try {
    checked_narrow<wgt_t>(kMax);
    FAIL() << "checked_narrow(kMax) must throw";
  } catch (const AuditFailure& e) {
    EXPECT_NE(std::string(e.what()).find("checked_narrow"),
              std::string::npos);
  }
}

// The audit layer treats AuditFailure as "bug in the partitioner", not
// "bad input" — pin the exception taxonomy the fuzz harnesses rely on.
TEST(CheckedOps, AuditFailureIsLogicError) {
  EXPECT_THROW(checked_add(kMax, 1), std::logic_error);
  static_assert(std::is_base_of_v<std::logic_error, AuditFailure>);
}

}  // namespace
}  // namespace mcgp
