#include "support/random.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

namespace mcgp {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, ReseedResetsStream) {
  Rng a(7);
  const std::uint64_t first = a.next_u64();
  a.next_u64();
  a.reseed(7);
  EXPECT_EQ(a.next_u64(), first);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.next_below(1), 0u);
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextBelowRoughlyUniform) {
  Rng rng(11);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.next_below(kBuckets)];
  for (const int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Rng, NextInInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const idx_t x = rng.next_in(-3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
    saw_lo = saw_lo || x == -3;
    saw_hi = saw_hi || x == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextRealInUnitInterval) {
  Rng rng(13);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_real();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, NextBoolProbability) {
  Rng rng(17);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.next_bool(0.3) ? 1 : 0;
  EXPECT_NEAR(heads, 3000, 300);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(21);
  Rng child = a.split();
  // The child stream should not be identical to the parent's continuation.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == child.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RandomPermutation, IsAPermutation) {
  Rng rng(1);
  std::vector<idx_t> perm;
  random_permutation(100, perm, rng);
  ASSERT_EQ(perm.size(), 100u);
  std::vector<idx_t> sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  for (idx_t i = 0; i < 100; ++i) EXPECT_EQ(sorted[to_size(i)], i);
}

TEST(RandomPermutation, EmptyAndSingleton) {
  Rng rng(1);
  std::vector<idx_t> perm;
  random_permutation(0, perm, rng);
  EXPECT_TRUE(perm.empty());
  random_permutation(1, perm, rng);
  ASSERT_EQ(perm.size(), 1u);
  EXPECT_EQ(perm[0], 0);
}

TEST(RandomPermutation, ActuallyShuffles) {
  Rng rng(2);
  std::vector<idx_t> perm;
  random_permutation(50, perm, rng);
  std::vector<idx_t> identity(50);
  std::iota(identity.begin(), identity.end(), 0);
  EXPECT_NE(perm, identity);
}

TEST(Shuffle, PreservesElements) {
  Rng rng(4);
  std::vector<idx_t> v = {5, 5, 7, 9, 1};
  std::vector<idx_t> orig = v;
  shuffle(v, rng);
  std::sort(v.begin(), v.end());
  std::sort(orig.begin(), orig.end());
  EXPECT_EQ(v, orig);
}

}  // namespace
}  // namespace mcgp
