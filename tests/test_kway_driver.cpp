#include "core/kway_driver.hpp"

#include <gtest/gtest.h>

#include "gen/mesh_gen.hpp"
#include "gen/weight_gen.hpp"
#include "graph/metrics.hpp"

namespace mcgp {
namespace {

Options kw_options(idx_t k, std::uint64_t seed = 1) {
  Options o;
  o.nparts = k;
  o.algorithm = Algorithm::kKWay;
  o.seed = seed;
  return o;
}

TEST(PartitionKWay, ValidForVariousK) {
  Graph g = grid2d(20, 20);
  for (const idx_t k : {1, 2, 5, 8, 16}) {
    Rng rng(1);
    const auto part = partition_kway(g, kw_options(k), rng);
    EXPECT_TRUE(validate_partition(g, part, k, k <= g.nvtxs).empty())
        << "k=" << k;
  }
}

TEST(PartitionKWay, SingleConstraintBalancedAndReasonable) {
  Graph g = grid2d(40, 40);
  Rng rng(2);
  const auto part = partition_kway(g, kw_options(8), rng);
  EXPECT_LE(max_imbalance(g, part, 8), 1.05 + 1e-9);
  // A 40x40 grid cut into 8 pieces: sane cuts are well under 600.
  EXPECT_LT(edge_cut(g, part), 600);
  EXPECT_GT(edge_cut(g, part), 0);
}

TEST(PartitionKWay, MultiConstraintFeasible) {
  Graph g = random_geometric(4000, 0, 11, 3);
  apply_type_s_weights(g, 3, 16, 0, 19, 13);
  Rng rng(3);
  const auto part = partition_kway(g, kw_options(16), rng);
  for (const real_t lb : imbalance(g, part, 16)) {
    EXPECT_LE(lb, 1.05 + 0.02);
  }
  EXPECT_TRUE(validate_partition(g, part, 16, true).empty());
}

TEST(PartitionKWay, DeterministicPerSeed) {
  Graph g = tri_grid2d(22, 22);
  Rng a(5), b(5);
  EXPECT_EQ(partition_kway(g, kw_options(6), a),
            partition_kway(g, kw_options(6), b));
}

TEST(PartitionKWay, K1Trivial) {
  Graph g = grid2d(5, 5);
  Rng rng(6);
  const auto part = partition_kway(g, kw_options(1), rng);
  for (const idx_t p : part) EXPECT_EQ(p, 0);
}

TEST(PartitionKWay, StatsPopulated) {
  Graph g = grid2d(60, 60);
  Rng rng(7);
  KWayDriverStats stats;
  PhaseTimes phases;
  partition_kway(g, kw_options(8), rng, &phases, &stats);
  EXPECT_GT(stats.levels, 0);
  EXPECT_GT(stats.coarsest_nvtxs, 0);
  EXPECT_LT(stats.coarsest_nvtxs, 3600);
  EXPECT_GT(phases.get("refine"), 0.0);
}

TEST(PartitionKWay, RespectsExplicitCoarsenTo) {
  Graph g = grid2d(50, 50);
  Options o = kw_options(4);
  o.coarsen_to = 800;
  Rng rng(8);
  KWayDriverStats stats;
  partition_kway(g, o, rng, nullptr, &stats);
  EXPECT_GE(stats.coarsest_nvtxs, 700);
  EXPECT_LE(stats.coarsest_nvtxs, 1700);
}

TEST(PartitionKWay, DisconnectedGraph) {
  GraphBuilder b(300, 1);
  for (idx_t v = 0; v < 149; ++v) b.add_edge(v, v + 1);
  for (idx_t v = 150; v < 299; ++v) b.add_edge(v, v + 1);
  Graph g = b.build();
  Rng rng(9);
  const auto part = partition_kway(g, kw_options(4), rng);
  EXPECT_TRUE(validate_partition(g, part, 4, true).empty());
  EXPECT_LE(max_imbalance(g, part, 4), 1.10);
}

TEST(PartitionKWay, TighterToleranceHonored) {
  Graph g = grid2d(40, 40);
  Options o = kw_options(4);
  o.ubvec = {1.02};
  Rng rng(10);
  const auto part = partition_kway(g, o, rng);
  EXPECT_LE(max_imbalance(g, part, 4), 1.02 + 1e-9);
}

}  // namespace
}  // namespace mcgp
