#include "core/coarsen.hpp"

#include <gtest/gtest.h>

#include "gen/mesh_gen.hpp"
#include "gen/weight_gen.hpp"
#include "graph/metrics.hpp"
#include "support/check.hpp"
#include "support/thread_pool.hpp"

namespace mcgp {
namespace {

TEST(ContractGraph, PairContractionByHand) {
  // Path 0-1-2-3; contract {0,1} and {2,3}.
  GraphBuilder b(4, 1);
  b.add_edge(0, 1, 2);
  b.add_edge(1, 2, 3);
  b.add_edge(2, 3, 4);
  Graph g = b.build();
  Graph c = contract_graph(g, {0, 0, 1, 1}, 2);
  EXPECT_EQ(c.nvtxs, 2);
  EXPECT_EQ(c.nedges(), 1);
  EXPECT_EQ(c.adjwgt[to_size(c.xadj[0])], 3);  // only the 1-2 edge survives
  EXPECT_EQ(c.weight(0, 0), 2);
  EXPECT_EQ(c.weight(1, 0), 2);
  EXPECT_TRUE(c.validate().empty());
}

TEST(ContractGraph, MergesParallelCoarseEdges) {
  // Square 0-1-2-3-0; contract {0,1} and {2,3}: two parallel edges merge.
  GraphBuilder b(4, 1);
  b.add_edge(0, 1);
  b.add_edge(1, 2, 5);
  b.add_edge(2, 3);
  b.add_edge(3, 0, 7);
  Graph g = b.build();
  Graph c = contract_graph(g, {0, 0, 1, 1}, 2);
  EXPECT_EQ(c.nedges(), 1);
  EXPECT_EQ(c.adjwgt[to_size(c.xadj[0])], 12);
}

TEST(ContractGraph, PreservesWeightVectorTotals) {
  Graph g = random_geometric(500, 0, 9, 3);
  apply_type_s_weights(g, 3, 8, 0, 19, 4);
  Rng rng(1);
  const auto match = compute_matching(g, MatchScheme::kHeavyEdgeBalanced, rng);
  std::vector<idx_t> cmap;
  const idx_t nc = build_coarse_map(g, match, cmap);
  Graph c = contract_graph(g, cmap, nc);
  ASSERT_EQ(c.ncon, 3);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(c.tvwgt[to_size(i)], g.tvwgt[to_size(i)]);
  }
  EXPECT_TRUE(c.validate().empty());
}

TEST(ContractGraph, EdgeWeightConservation) {
  // Total edge weight = surviving coarse edge weight + collapsed weight.
  Graph g = grid2d(12, 12);
  Rng rng(2);
  const auto match = compute_matching(g, MatchScheme::kHeavyEdge, rng);
  std::vector<idx_t> cmap;
  const idx_t nc = build_coarse_map(g, match, cmap);
  Graph c = contract_graph(g, cmap, nc);

  sum_t fine_total = 0, collapsed = 0;
  for (idx_t v = 0; v < g.nvtxs; ++v) {
    for (idx_t e = g.xadj[to_size(v)]; e < g.xadj[to_size(v + 1)]; ++e) {
      fine_total = checked_add(fine_total, g.adjwgt[to_size(e)]);
      if (cmap[to_size(v)] ==
          cmap[to_size(g.adjncy[to_size(e)])]) {
        collapsed = checked_add(collapsed, g.adjwgt[to_size(e)]);
      }
    }
  }
  sum_t coarse_total = 0;
  for (const wgt_t w : c.adjwgt) coarse_total = checked_add(coarse_total, w);
  EXPECT_EQ(coarse_total, checked_sub(fine_total, collapsed));
}

// The chunked parallel contraction path (pool attached, coarse graph
// larger than one chunk) must reproduce the serial output bit for bit:
// same xadj, same adjacency order within every row, same weights.
TEST(ContractGraph, ChunkedParallelPathBitIdenticalToSerial) {
  Graph g = grid2d(120, 120);  // 14400 vertices -> ~7200 coarse > one chunk
  apply_type_s_weights(g, 2, 10, 0, 9, 3);
  Rng rng(3);
  const auto match = compute_matching(g, MatchScheme::kHeavyEdge, rng);
  std::vector<idx_t> cmap;
  const idx_t nc = build_coarse_map(g, match, cmap);
  ASSERT_GT(nc, 4096) << "coarse graph too small to exercise chunking";

  const Graph serial = contract_graph(g, cmap, nc);

  ThreadPool pool(4);
  WorkspacePool wspool;
  ContractExec exec;
  exec.pool = &pool;
  exec.wspool = &wspool;
  Workspace ws;
  const Graph chunked = contract_graph(g, cmap, nc, &ws, &exec);

  EXPECT_EQ(chunked.xadj, serial.xadj);
  EXPECT_EQ(chunked.adjncy, serial.adjncy);
  EXPECT_EQ(chunked.adjwgt, serial.adjwgt);
  EXPECT_EQ(chunked.vwgt, serial.vwgt);
  EXPECT_TRUE(chunked.validate().empty());
  // The chunk tasks leased their scratch from the pool, so the pool's
  // footprint accounting must have seen them.
  EXPECT_GT(wspool.size(), 0);
  EXPECT_GT(wspool.footprint_bytes(), 0);
}

TEST(CoarsenGraph, ReachesTarget) {
  Graph g = grid2d(40, 40);
  CoarsenParams params;
  params.coarsen_to = 100;
  Rng rng(3);
  Hierarchy h = coarsen_graph(g, params, rng);
  EXPECT_GT(h.num_levels(), 2);
  EXPECT_LE(h.coarsest().nvtxs, 200);  // within a factor of the target
  // Strictly decreasing level sizes.
  for (int l = 1; l <= h.num_levels(); ++l) {
    EXPECT_LT(h.graph_at(l).nvtxs, h.graph_at(l - 1).nvtxs);
  }
}

TEST(CoarsenGraph, CmapsComposeToValidMaps) {
  Graph g = tri_grid2d(25, 25);
  CoarsenParams params;
  params.coarsen_to = 60;
  Rng rng(4);
  Hierarchy h = coarsen_graph(g, params, rng);
  for (int l = 0; l < h.num_levels(); ++l) {
    const Graph& fine = h.graph_at(l);
    const Graph& coarse = h.graph_at(l + 1);
    const auto& cmap = h.levels[to_size(l)].cmap;
    ASSERT_EQ(cmap.size(), to_size(fine.nvtxs));
    for (const idx_t cv : cmap) {
      ASSERT_GE(cv, 0);
      ASSERT_LT(cv, coarse.nvtxs);
    }
  }
}

TEST(CoarsenGraph, AllLevelsValidAndTotalsPreserved) {
  Graph g = random_geometric(1500, 0, 5, 2);
  apply_type_s_weights(g, 2, 8, 1, 9, 6);
  CoarsenParams params;
  params.coarsen_to = 80;
  Rng rng(5);
  Hierarchy h = coarsen_graph(g, params, rng);
  for (int l = 0; l <= h.num_levels(); ++l) {
    const Graph& cur = h.graph_at(l);
    EXPECT_TRUE(cur.validate().empty()) << "level " << l;
    for (int i = 0; i < 2; ++i) {
      EXPECT_EQ(cur.tvwgt[to_size(i)], g.tvwgt[to_size(i)]);
    }
  }
}

TEST(CoarsenGraph, NoCoarseningWhenAlreadySmall) {
  Graph g = grid2d(5, 5);
  CoarsenParams params;
  params.coarsen_to = 100;
  Rng rng(6);
  Hierarchy h = coarsen_graph(g, params, rng);
  EXPECT_EQ(h.num_levels(), 0);
  EXPECT_EQ(&h.coarsest(), &g);
}

TEST(CoarsenGraph, StallsGracefullyOnStarGraph) {
  // A star matches only one pair per level from the hub; the reduction
  // test must kick in rather than looping forever.
  GraphBuilder b(500, 1);
  for (idx_t v = 1; v < 500; ++v) b.add_edge(0, v);
  Graph g = b.build();
  CoarsenParams params;
  params.coarsen_to = 10;
  Rng rng(7);
  Hierarchy h = coarsen_graph(g, params, rng);
  EXPECT_GT(h.coarsest().nvtxs, 10);  // stopped early
  EXPECT_LE(h.num_levels(), params.max_levels);
}

TEST(CoarsenGraph, ProjectionIdentityOnCut) {
  // A cut computed on a coarse partition equals the cut of its projection
  // (no edges change sides when a pair is wholly on one side).
  Graph g = grid2d(20, 20);
  CoarsenParams params;
  params.coarsen_to = 50;
  Rng rng(8);
  Hierarchy h = coarsen_graph(g, params, rng);
  const Graph& c = h.coarsest();
  std::vector<idx_t> cpart(to_size(c.nvtxs));
  for (idx_t v = 0; v < c.nvtxs; ++v) cpart[to_size(v)] = v % 2;
  // Project down through all levels.
  std::vector<idx_t> part = cpart;
  for (int l = h.num_levels() - 1; l >= 0; --l) {
    const auto& cmap = h.levels[to_size(l)].cmap;
    std::vector<idx_t> fine(cmap.size());
    for (std::size_t v = 0; v < cmap.size(); ++v) {
      fine[v] = part[to_size(cmap[v])];
    }
    part = std::move(fine);
  }
  EXPECT_EQ(edge_cut(g, part), edge_cut(c, cpart));
}

}  // namespace
}  // namespace mcgp
