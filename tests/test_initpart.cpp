#include "core/initpart.hpp"

#include <gtest/gtest.h>

#include "gen/mesh_gen.hpp"
#include "gen/weight_gen.hpp"

namespace mcgp {
namespace {

BisectionTargets even_targets(int ncon, real_t ub = 1.05) {
  BisectionTargets t;
  t.f0 = 0.5;
  t.ub.assign(to_size(ncon), ub);
  return t;
}

TEST(GrowBisection, ProducesTwoSides) {
  Graph g = grid2d(12, 12);
  Rng rng(1);
  std::vector<idx_t> where;
  grow_bisection(g, where, even_targets(1), rng);
  idx_t c0 = 0;
  for (const idx_t s : where) c0 += s == 0 ? 1 : 0;
  EXPECT_GT(c0, 0);
  EXPECT_LT(c0, g.nvtxs);
}

TEST(GrowBisection, RespectsTargetOverflowBound) {
  Graph g = grid2d(14, 14);
  Rng rng(2);
  std::vector<idx_t> where;
  const BisectionTargets t = even_targets(1, 1.05);
  grow_bisection(g, where, t, rng);
  BisectionBalance b;
  b.init(g, where, t);
  // Side 0 never exceeds its allowance (growth is admission-checked).
  EXPECT_LE(b.nload(0, 0), 1.05 + 1e-9);
}

TEST(GrowBisection, UnevenTargets) {
  Graph g = grid2d(16, 16);
  Rng rng(3);
  std::vector<idx_t> where;
  BisectionTargets t = even_targets(1);
  t.f0 = 0.25;
  grow_bisection(g, where, t, rng);
  idx_t c0 = 0;
  for (const idx_t s : where) c0 += s == 0 ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(c0) / g.nvtxs, 0.25, 0.08);
}

TEST(GrowBisection, HandlesDisconnected) {
  GraphBuilder b(40, 1);
  for (idx_t v = 0; v < 19; ++v) b.add_edge(v, v + 1);
  for (idx_t v = 20; v < 39; ++v) b.add_edge(v, v + 1);
  Graph g = b.build();
  Rng rng(4);
  std::vector<idx_t> where;
  grow_bisection(g, where, even_targets(1), rng);
  idx_t c0 = 0;
  for (const idx_t s : where) c0 += s == 0 ? 1 : 0;
  EXPECT_GT(c0, 5);
  EXPECT_LT(c0, 35);
}

TEST(BinpackBisection, NearPerfectBalanceSingleConstraint) {
  Graph g = grid2d(10, 10);
  Rng rng(5);
  std::vector<idx_t> where;
  const BisectionTargets t = even_targets(1);
  binpack_bisection(g, where, t, rng);
  BisectionBalance b;
  b.init(g, where, t);
  EXPECT_LE(b.potential(), 1.0 + 1e-9);  // unit weights: trivially balanced
}

TEST(BinpackBisection, BalancesAllConstraints) {
  Graph g = random_geometric(600, 0, 6, 4);
  apply_type_s_weights(g, 4, 8, 0, 19, 7);
  Rng rng(6);
  std::vector<idx_t> where;
  const BisectionTargets t = even_targets(4, 1.05);
  binpack_bisection(g, where, t, rng);
  BisectionBalance b;
  b.init(g, where, t);
  for (int i = 0; i < 4; ++i) {
    EXPECT_LE(std::max(b.nload(0, i), b.nload(1, i)), 1.06)
        << "constraint " << i;
  }
}

TEST(BinpackBisection, SkewedVectorsStillBalance) {
  // Half the vertices weigh only in constraint 0, half only in 1.
  GraphBuilder bld(100, 2);
  for (idx_t v = 0; v + 1 < 100; ++v) bld.add_edge(v, v + 1);
  for (idx_t v = 0; v < 100; ++v) {
    bld.set_weights(v, v < 50 ? std::vector<wgt_t>{3, 0}
                              : std::vector<wgt_t>{0, 3});
  }
  Graph g = bld.build();
  Rng rng(7);
  std::vector<idx_t> where;
  const BisectionTargets t = even_targets(2);
  binpack_bisection(g, where, t, rng);
  BisectionBalance b;
  b.init(g, where, t);
  EXPECT_LE(b.potential(), 1.0 + 0.05);
}

class InitBisection
    : public testing::TestWithParam<std::tuple<InitScheme, int>> {};

TEST_P(InitBisection, FeasibleAndNonTrivialOnStructuredWeights) {
  const auto [scheme, ncon] = GetParam();
  Graph g = grid2d(20, 20);
  if (ncon > 1) apply_type_s_weights(g, ncon, 8, 0, 19, 11);
  Rng rng(8);
  std::vector<idx_t> where;
  const BisectionTargets t = even_targets(ncon, 1.10);
  const sum_t cut = init_bisection(g, where, t, scheme, 8,
                                   QueuePolicy::kMostImbalanced, rng);
  ASSERT_EQ(where.size(), to_size(g.nvtxs));
  EXPECT_EQ(cut, compute_cut_2way(g, where));
  EXPECT_GT(cut, 0);
  BisectionBalance b;
  b.init(g, where, t);
  EXPECT_LE(b.potential(), 1.0 + 0.02) << "scheme/ncon " << ncon;
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndArities, InitBisection,
    testing::Combine(testing::Values(InitScheme::kMixed,
                                     InitScheme::kGreedyGrow,
                                     InitScheme::kBinPack),
                     testing::Values(1, 2, 3, 5)));

TEST(InitBisectionQuality, GrowBeatsBinpackOnCut) {
  // On a plain grid the edge-aware construction should usually produce a
  // lower cut than pure bin packing.
  Graph g = grid2d(24, 24);
  Rng r1(9), r2(9);
  std::vector<idx_t> wg, wb;
  const BisectionTargets t = even_targets(1);
  const sum_t cg = init_bisection(g, wg, t, InitScheme::kGreedyGrow, 6,
                                  QueuePolicy::kMostImbalanced, r1);
  const sum_t cb = init_bisection(g, wb, t, InitScheme::kBinPack, 6,
                                  QueuePolicy::kMostImbalanced, r2);
  EXPECT_LE(cg, cb);
}

TEST(InitBisection, TinyGraphs) {
  GraphBuilder bld(2, 1);
  bld.add_edge(0, 1);
  Graph g = bld.build();
  Rng rng(10);
  std::vector<idx_t> where;
  init_bisection(g, where, even_targets(1, 1.5), InitScheme::kMixed, 4,
                 QueuePolicy::kMostImbalanced, rng);
  ASSERT_EQ(where.size(), 2u);
}

}  // namespace
}  // namespace mcgp
