#include "graph/graph_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "gen/mesh_gen.hpp"
#include "gen/weight_gen.hpp"

namespace mcgp {
namespace {

TEST(GraphIo, ParsesPlainGraph) {
  // The 7-vertex example from the METIS manual (unweighted).
  std::istringstream in(
      "7 11\n"
      "5 3 2\n"
      "1 3 4\n"
      "5 4 2 1\n"
      "2 3 6 7\n"
      "1 3 6\n"
      "5 4 7\n"
      "6 4\n");
  Graph g = read_metis_graph(in);
  EXPECT_EQ(g.nvtxs, 7);
  EXPECT_EQ(g.nedges(), 11);
  EXPECT_EQ(g.ncon, 1);
  EXPECT_TRUE(g.validate().empty());
}

TEST(GraphIo, ParsesCommentsAndBlankLines) {
  std::istringstream in(
      "% a comment\n"
      "\n"
      "2 1\n"
      "% another\n"
      "2\n"
      "1\n");
  Graph g = read_metis_graph(in);
  EXPECT_EQ(g.nvtxs, 2);
  EXPECT_EQ(g.nedges(), 1);
}

TEST(GraphIo, ParsesEdgeWeights) {
  std::istringstream in(
      "3 2 001\n"
      "2 7\n"
      "1 7 3 2\n"
      "2 2\n");
  Graph g = read_metis_graph(in);
  EXPECT_EQ(g.adjwgt[to_size(g.xadj[0])], 7);
  EXPECT_TRUE(g.validate().empty());
}

TEST(GraphIo, ParsesVertexWeightsMultiConstraint) {
  std::istringstream in(
      "2 1 010 3\n"
      "1 2 3 2\n"
      "4 5 6 1\n");
  Graph g = read_metis_graph(in);
  EXPECT_EQ(g.ncon, 3);
  EXPECT_EQ(g.weight(0, 1), 2);
  EXPECT_EQ(g.weight(1, 2), 6);
}

TEST(GraphIo, ParsesVertexSizesFlagIgnored) {
  std::istringstream in(
      "2 1 100\n"
      "9 2\n"
      "4 1\n");
  Graph g = read_metis_graph(in);
  EXPECT_EQ(g.nedges(), 1);
}

TEST(GraphIo, ErrorsOnBadHeader) {
  std::istringstream in("x y\n");
  EXPECT_THROW(read_metis_graph(in), std::runtime_error);
}

TEST(GraphIo, ErrorsOnMissingLines) {
  std::istringstream in("3 2\n2\n");
  EXPECT_THROW(read_metis_graph(in), std::runtime_error);
}

TEST(GraphIo, ErrorsOnNeighborOutOfRange) {
  std::istringstream in("2 1\n3\n1\n");
  EXPECT_THROW(read_metis_graph(in), std::runtime_error);
}

TEST(GraphIo, ErrorsOnEdgeCountMismatch) {
  std::istringstream in("3 5\n2\n1 3\n2\n");
  EXPECT_THROW(read_metis_graph(in), std::runtime_error);
}

TEST(GraphIo, ErrorsOnAsymmetricInput) {
  std::istringstream in("2 1\n2\n\n");
  // vertex 1 lists vertex 2, but vertex 2's line is empty -> asymmetric.
  EXPECT_THROW(read_metis_graph(in), std::runtime_error);
}

TEST(GraphIo, ErrorsOnMissingEdgeWeight) {
  std::istringstream in("2 1 001\n2\n1 5\n");
  EXPECT_THROW(read_metis_graph(in), std::runtime_error);
}

TEST(GraphIo, ErrorsOnZeroOrNegativeEdgeWeight) {
  std::istringstream zero("2 1 001\n2 0\n1 0\n");
  EXPECT_THROW(read_metis_graph(zero), std::runtime_error);
  std::istringstream negative("2 1 001\n2 -3\n1 -3\n");
  EXPECT_THROW(read_metis_graph(negative), std::runtime_error);
}

TEST(GraphIo, ErrorsOnMalformedFmtToken) {
  // fmt must be at most three characters, each 0 or 1.
  std::istringstream bad_char("2 1 012\n2\n1\n");
  EXPECT_THROW(read_metis_graph(bad_char), std::runtime_error);
  std::istringstream alpha("2 1 abc\n2\n1\n");
  EXPECT_THROW(read_metis_graph(alpha), std::runtime_error);
  std::istringstream too_long("2 1 0011\n2\n1\n");
  EXPECT_THROW(read_metis_graph(too_long), std::runtime_error);
}

TEST(GraphIo, ErrorsOnNegativeHeaderCounts) {
  std::istringstream in("-2 1\n");
  EXPECT_THROW(read_metis_graph(in), std::runtime_error);
}

TEST(GraphIo, ErrorsOnNconOutOfRange) {
  std::istringstream in("2 1 010 99\n1 2\n1 1\n");
  EXPECT_THROW(read_metis_graph(in), std::runtime_error);
}

TEST(GraphIo, EdgeCountMismatchMessageUsesIntegers) {
  // 3 directed entries against a header promising 2 edges (4 entries):
  // the old message printed "1.5 (directed/2)"; it must now report whole
  // directed-entry counts and the signed delta.
  std::istringstream in("3 2\n2\n1\n2\n");
  try {
    read_metis_graph(in);
    FAIL() << "expected edge count mismatch";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_EQ(msg.find("1.5"), std::string::npos) << msg;
    EXPECT_NE(msg.find("4 directed entries"), std::string::npos) << msg;
    EXPECT_NE(msg.find("3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("-1"), std::string::npos) << msg;
  }
}

TEST(GraphIo, ErrorsOnNegativeVertexSize) {
  std::istringstream in("2 1 100\n-1 2\n4 1\n");
  EXPECT_THROW(read_metis_graph(in), std::runtime_error);
}

TEST(GraphIo, VsizeGraphRoundTripsThroughWriter) {
  // A graph whose file carries vertex sizes parses to the same structure
  // as its writer output (which never emits the vsize column).
  std::istringstream in(
      "3 2 110 1\n"
      "9 2 2\n"
      "4 1 1 3\n"
      "7 3 2\n");
  Graph g = read_metis_graph(in);
  EXPECT_EQ(g.nvtxs, 3);
  EXPECT_EQ(g.nedges(), 2);
  EXPECT_EQ(g.weight(0, 0), 2);
  std::ostringstream out;
  write_metis_graph(out, g);
  std::istringstream in2(out.str());
  Graph h = read_metis_graph(in2);
  EXPECT_EQ(h.vwgt, g.vwgt);
  EXPECT_EQ(h.adjncy, g.adjncy);
  EXPECT_EQ(h.adjwgt, g.adjwgt);
}

TEST(GraphIo, RoundTripPlain) {
  Graph g = grid2d(5, 7);
  std::ostringstream out;
  write_metis_graph(out, g);
  std::istringstream in(out.str());
  Graph h = read_metis_graph(in);
  EXPECT_EQ(h.nvtxs, g.nvtxs);
  EXPECT_EQ(h.nedges(), g.nedges());
  EXPECT_EQ(h.xadj, g.xadj);
  EXPECT_EQ(h.adjncy, g.adjncy);
}

TEST(GraphIo, RoundTripMultiConstraintWeighted) {
  Graph g = grid2d(6, 6);
  apply_type_p_weights(g, 3, 8, 7);
  std::ostringstream out;
  write_metis_graph(out, g);
  std::istringstream in(out.str());
  Graph h = read_metis_graph(in);
  EXPECT_EQ(h.ncon, 3);
  EXPECT_EQ(h.vwgt, g.vwgt);
  EXPECT_EQ(h.adjwgt, g.adjwgt);
  EXPECT_EQ(h.adjncy, g.adjncy);
}

TEST(GraphIo, FileRoundTrip) {
  Graph g = tri_grid2d(4, 4);
  const std::string path = testing::TempDir() + "/mcgp_io_test.graph";
  write_metis_graph_file(path, g);
  Graph h = read_metis_graph_file(path);
  EXPECT_EQ(h.adjncy, g.adjncy);
}

TEST(GraphIo, MissingFileThrows) {
  EXPECT_THROW(read_metis_graph_file("/nonexistent/path.graph"),
               std::runtime_error);
}

TEST(PartitionIo, RoundTrip) {
  const std::vector<idx_t> part = {0, 3, 1, 2, 2, 0};
  std::ostringstream out;
  write_partition(out, part);
  std::istringstream in(out.str());
  EXPECT_EQ(read_partition(in), part);
}

TEST(PartitionIo, FileRoundTrip) {
  const std::vector<idx_t> part = {1, 0, 1};
  const std::string path = testing::TempDir() + "/mcgp_part_test.part";
  write_partition_file(path, part);
  EXPECT_EQ(read_partition_file(path), part);
}

TEST(PartitionIo, ValidatingReadAcceptsGoodPartition) {
  std::istringstream in("0\n2\n1\n2\n");
  const std::vector<idx_t> part = read_partition(in, /*nvtxs=*/4,
                                                 /*nparts=*/3);
  EXPECT_EQ(part, (std::vector<idx_t>{0, 2, 1, 2}));
}

TEST(PartitionIo, ValidatingReadRejectsSizeMismatch) {
  std::istringstream too_few("0\n1\n");
  EXPECT_THROW(read_partition(too_few, 4, 2), std::runtime_error);
  std::istringstream too_many("0\n1\n0\n1\n0\n");
  EXPECT_THROW(read_partition(too_many, 4, 2), std::runtime_error);
}

TEST(PartitionIo, ValidatingReadRejectsOutOfRangeIds) {
  std::istringstream negative("0\n-1\n1\n");
  EXPECT_THROW(read_partition(negative, 3, 2), std::runtime_error);
  std::istringstream too_big("0\n1\n2\n");
  EXPECT_THROW(read_partition(too_big, 3, 2), std::runtime_error);
}

TEST(PartitionIo, ValidatingFileReadRejectsBadFile) {
  const std::vector<idx_t> part = {1, 0, 5};
  const std::string path = testing::TempDir() + "/mcgp_part_bad.part";
  write_partition_file(path, part);
  EXPECT_THROW(read_partition_file(path, 3, 4), std::runtime_error);
  EXPECT_EQ(read_partition_file(path, 3, 6), part);
}

}  // namespace
}  // namespace mcgp
