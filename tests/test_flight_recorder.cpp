#include "support/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "core/audit.hpp"
#include "core/partitioner.hpp"
#include "gen/mesh_gen.hpp"
#include "gen/weight_gen.hpp"
#include "graph/part_report.hpp"
#include "json_test_util.hpp"
#include "support/schema.hpp"

namespace mcgp {
namespace {

FlightSample make_sample(FlightSample::Stage stage, idx_t nvtxs) {
  FlightSample s;
  s.stage = stage;
  s.nvtxs = nvtxs;
  s.nedges = 2 * nvtxs;
  return s;
}

TEST(FlightRecorder, RecordsInOrderBelowCapacity) {
  FlightRecorder fr(16);
  for (idx_t i = 0; i < 5; ++i) {
    fr.record(make_sample(FlightSample::Stage::kCoarsenLevel, i));
  }
  EXPECT_EQ(fr.total_recorded(), 5u);
  EXPECT_EQ(fr.dropped(), 0u);
  const std::vector<FlightSample> got = fr.snapshot();
  ASSERT_EQ(got.size(), 5u);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].seq, i);
    EXPECT_EQ(got[i].nvtxs, static_cast<idx_t>(i));
    EXPECT_GE(got[i].ts_ns, i > 0 ? got[i - 1].ts_ns : 0);
  }
}

TEST(FlightRecorder, RingWrapsKeepingNewestWindow) {
  FlightRecorder fr(8);
  for (idx_t i = 0; i < 20; ++i) {
    fr.record(make_sample(FlightSample::Stage::kFmPass, i));
  }
  EXPECT_EQ(fr.total_recorded(), 20u);
  EXPECT_EQ(fr.dropped(), 12u);
  const std::vector<FlightSample> got = fr.snapshot();
  ASSERT_EQ(got.size(), 8u);
  // The retained window is exactly the newest 8, oldest first.
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].seq, 12 + i);
    EXPECT_EQ(got[i].nvtxs, static_cast<idx_t>(12 + i));
  }
}

TEST(FlightRecorder, CapacityFloorIsOne) {
  FlightRecorder fr(0);
  EXPECT_EQ(fr.capacity(), 1u);
  fr.record(make_sample(FlightSample::Stage::kFinal, 1));
  fr.record(make_sample(FlightSample::Stage::kFinal, 2));
  const std::vector<FlightSample> got = fr.snapshot();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].nvtxs, 2);
}

TEST(FlightRecorder, NullSafeHelpersAndClear) {
  flight_record(nullptr, FlightSample{});  // must be a no-op, not a crash
  flight_sample_memory(nullptr);

  FlightRecorder fr(4);
  fr.record(make_sample(FlightSample::Stage::kFinal, 1));
  fr.note_workspace(1024, 2);
  EXPECT_EQ(fr.workspace_bytes(), 1024);
  EXPECT_EQ(fr.workspace_count(), 2);
  fr.note_workspace(512, 1);  // smaller observation must not lower the mark
  EXPECT_EQ(fr.workspace_bytes(), 1024);
  fr.clear();
  EXPECT_EQ(fr.total_recorded(), 0u);
  EXPECT_TRUE(fr.snapshot().empty());
  EXPECT_EQ(fr.workspace_bytes(), -1);
}

TEST(FlightRecorder, ConcurrentRecordersMergeAllSamples) {
  FlightRecorder fr(1 << 14);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&fr, t] {
      for (int i = 0; i < kPerThread; ++i) {
        fr.record(make_sample(FlightSample::Stage::kKWayPass,
                              static_cast<idx_t>(t)));
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(fr.total_recorded(),
            static_cast<std::uint64_t>(kThreads * kPerThread));
  const std::vector<FlightSample> got = fr.snapshot();
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kThreads * kPerThread));
  std::vector<int> per_thread(kThreads, 0);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].seq, i);  // seq is gap-free across threads
    ++per_thread[to_size(got[i].nvtxs)];
  }
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(per_thread[to_size(t)], kPerThread);
}

TEST(FlightRecorder, JsonRoundTripCarriesSchemaAndSamples) {
  FlightRecorder fr(32);
  FlightSample s = make_sample(FlightSample::Stage::kUncoarsen2Way, 100);
  s.level = 2;
  s.ncon = 2;
  s.cut = 42;
  s.imbalance[0] = 1.01;
  s.imbalance[1] = 1.04;
  s.worst_imbalance = 1.04;
  fr.record(s);
  fr.sample_memory();
  fr.record(make_sample(FlightSample::Stage::kFinal, 100));

  std::ostringstream out;
  fr.write_json(out);
  const auto doc = testing::parse_json(out.str());
  ASSERT_TRUE(doc.has_value());
  const auto* schema = doc->find("schema_version");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->number, static_cast<double>(kMcgpSchemaVersion));
  const auto* samples = doc->find("samples");
  ASSERT_NE(samples, nullptr);
  ASSERT_TRUE(samples->is_array());
  ASSERT_EQ(samples->array.size(), 2u);
  const auto& first = samples->array[0];
  EXPECT_EQ(first.find("stage")->str, "uncoarsen_2way");
  EXPECT_EQ(first.find("level")->number, 2.0);
  EXPECT_EQ(first.find("cut")->number, 42.0);
  ASSERT_NE(first.find("imbalance"), nullptr);
  EXPECT_EQ(first.find("imbalance")->array.size(), 2u);
  ASSERT_NE(doc->find("memory"), nullptr);
  EXPECT_NE(doc->find("memory")->find("peak_rss_bytes"), nullptr);
}

TEST(FlightRecorder, StageNamesAreStable) {
  EXPECT_STREQ(flight_stage_name(FlightSample::Stage::kCoarsenLevel),
               "coarsen_level");
  EXPECT_STREQ(flight_stage_name(FlightSample::Stage::kUncoarsen2Way),
               "uncoarsen_2way");
  EXPECT_STREQ(flight_stage_name(FlightSample::Stage::kUncoarsenKWay),
               "uncoarsen_kway");
  EXPECT_STREQ(flight_stage_name(FlightSample::Stage::kFmPass), "fm_pass");
  EXPECT_STREQ(flight_stage_name(FlightSample::Stage::kKWayPass),
               "kway_pass");
  EXPECT_STREQ(flight_stage_name(FlightSample::Stage::kFinal), "final");
}

Graph make_pipeline_graph() {
  Graph g = tri_grid2d(40, 40);
  apply_type_s_weights(g, /*m=*/2, /*nregions=*/8, 0, 19, 7);
  return g;
}

int count_stage(const std::vector<FlightSample>& samples,
                FlightSample::Stage stage) {
  int n = 0;
  for (const FlightSample& s : samples) {
    if (s.stage == stage) ++n;
  }
  return n;
}

TEST(FlightPipeline, RbRunProducesPerLevelTimeline) {
  const Graph g = make_pipeline_graph();
  FlightRecorder fr;
  Options o;
  o.nparts = 8;
  o.algorithm = Algorithm::kRecursiveBisection;
  o.flight = &fr;
  const PartitionResult r = partition(g, o);

  const std::vector<FlightSample> samples = fr.snapshot();
  EXPECT_GT(count_stage(samples, FlightSample::Stage::kCoarsenLevel), 0);
  EXPECT_GT(count_stage(samples, FlightSample::Stage::kUncoarsen2Way), 0);
  EXPECT_GT(count_stage(samples, FlightSample::Stage::kFmPass), 0);
  ASSERT_EQ(count_stage(samples, FlightSample::Stage::kFinal), 1);
  const FlightSample& fin = samples.back();
  EXPECT_EQ(fin.stage, FlightSample::Stage::kFinal);
  EXPECT_EQ(fin.cut, r.cut);
  EXPECT_EQ(fin.ncon, g.ncon);
  EXPECT_DOUBLE_EQ(fin.worst_imbalance, r.max_imbalance);
  // RB leaves its workspace-pool high-water mark behind.
  EXPECT_GT(fr.workspace_bytes(), 0);
  EXPECT_GE(fr.workspace_count(), 1);
}

TEST(FlightPipeline, KWayRunProducesPerLevelTimeline) {
  const Graph g = make_pipeline_graph();
  FlightRecorder fr;
  Options o;
  o.nparts = 8;
  o.algorithm = Algorithm::kKWay;
  o.flight = &fr;
  const PartitionResult r = partition(g, o);

  const std::vector<FlightSample> samples = fr.snapshot();
  EXPECT_GT(count_stage(samples, FlightSample::Stage::kCoarsenLevel), 0);
  EXPECT_GT(count_stage(samples, FlightSample::Stage::kUncoarsenKWay), 0);
  EXPECT_GT(count_stage(samples, FlightSample::Stage::kKWayPass), 0);
  ASSERT_EQ(count_stage(samples, FlightSample::Stage::kFinal), 1);
  EXPECT_EQ(samples.back().cut, r.cut);
  // Every uncoarsening-level sample carries the per-constraint imbalances.
  for (const FlightSample& s : samples) {
    if (s.stage == FlightSample::Stage::kUncoarsenKWay) {
      EXPECT_EQ(s.ncon, g.ncon);
      EXPECT_GE(s.worst_imbalance, 1.0);
      EXPECT_GE(s.cut, 0);
    }
  }
}

TEST(FlightPipeline, AttachingRecorderNeverChangesThePartition) {
  const Graph g = make_pipeline_graph();
  for (const auto alg :
       {Algorithm::kRecursiveBisection, Algorithm::kKWay}) {
    Options plain;
    plain.nparts = 12;
    plain.algorithm = alg;
    plain.seed = 5;
    const PartitionResult bare = partition(g, plain);

    for (const int threads : {1, 2, 8}) {
      FlightRecorder fr;
      Options o = plain;
      o.num_threads = threads;
      o.flight = &fr;
      const PartitionResult observed = partition(g, o);
      EXPECT_EQ(observed.part, bare.part)
          << "algorithm=" << static_cast<int>(alg) << " threads=" << threads;
      EXPECT_GT(fr.total_recorded(), 0u);
    }
  }
}

TEST(FlightPipeline, AuditFailureDumpsPostmortem) {
  const Graph g = make_pipeline_graph();
  const std::string dump_path =
      ::testing::TempDir() + "mcgp_flight_dump_test.json";
  std::remove(dump_path.c_str());

  FlightRecorder fr;
  fr.set_dump_path(dump_path);
  InvariantAuditor auditor(AuditLevel::kBoundaries);
  // Let a handful of checks pass so the ring holds real samples, then
  // force the next one to throw mid-uncoarsening.
  auditor.set_trip_after(5);

  Options o;
  o.nparts = 8;
  o.flight = &fr;
  o.audit = &auditor;
  EXPECT_THROW(partition(g, o), AuditFailure);

  std::ifstream in(dump_path);
  ASSERT_TRUE(in.good()) << "no postmortem at " << dump_path;
  std::stringstream buf;
  buf << in.rdbuf();
  const auto doc = testing::parse_json(buf.str());
  ASSERT_TRUE(doc.has_value());
  const auto* error = doc->find("error");
  ASSERT_NE(error, nullptr);
  EXPECT_NE(error->str.find("injected audit failure"), std::string::npos);
  const auto* flight = doc->find("flight");
  ASSERT_NE(flight, nullptr);
  const auto* samples = flight->find("samples");
  ASSERT_NE(samples, nullptr);
  EXPECT_FALSE(samples->array.empty());
  std::remove(dump_path.c_str());
}

TEST(FlightRecorder, PostmortemDirEnvRedirectsRelativeDumpPaths) {
  FlightRecorder fr;
  // Default path is relative, so it follows the environment override.
  ASSERT_NE(fr.dump_path().front(), '/');
  std::string dir = ::testing::TempDir();  // ends with '/'
  if (!dir.empty() && dir.back() == '/') dir.pop_back();
  ::setenv("MCGP_POSTMORTEM_DIR", dir.c_str(), 1);
  EXPECT_EQ(fr.resolved_dump_path(), dir + "/" + fr.dump_path());

  // The dump itself must land in the redirected location.
  fr.record(make_sample(FlightSample::Stage::kFinal, 3));
  ASSERT_TRUE(fr.dump_on_failure("redirect test"));
  const std::string expected = dir + "/" + fr.dump_path();
  std::ifstream in(expected);
  ASSERT_TRUE(in.good()) << "no postmortem at " << expected;
  std::stringstream buf;
  buf << in.rdbuf();
  const auto doc = testing::parse_json(buf.str());
  ASSERT_TRUE(doc.has_value());
  EXPECT_NE(doc->find("error"), nullptr);
  std::remove(expected.c_str());

  // Absolute paths are explicit choices and ignore the override.
  const std::string abs = ::testing::TempDir() + "mcgp_abs_dump_test.json";
  fr.set_dump_path(abs);
  ::setenv("MCGP_POSTMORTEM_DIR", "/nonexistent-dir", 1);
  EXPECT_EQ(fr.resolved_dump_path(), abs);

  // Unset (and empty) environment falls back to the path as given.
  fr.set_dump_path("relative_dump.json");
  ::setenv("MCGP_POSTMORTEM_DIR", "", 1);
  EXPECT_EQ(fr.resolved_dump_path(), "relative_dump.json");
  ::unsetenv("MCGP_POSTMORTEM_DIR");
  EXPECT_EQ(fr.resolved_dump_path(), "relative_dump.json");
}

TEST(FlightPipeline, ReportJsonEmbedsTimeline) {
  const Graph g = make_pipeline_graph();
  FlightRecorder fr;
  Options o;
  o.nparts = 4;
  o.flight = &fr;
  const PartitionResult r = partition(g, o);

  const std::string text =
      report_to_json(analyze_partition(g, r.part, o.nparts), &fr);
  const auto doc = testing::parse_json(text);
  ASSERT_TRUE(doc.has_value());
  ASSERT_NE(doc->find("schema_version"), nullptr);
  EXPECT_EQ(doc->find("schema_version")->number,
            static_cast<double>(kMcgpSchemaVersion));
  const auto* timeline = doc->find("timeline");
  ASSERT_NE(timeline, nullptr);
  ASSERT_TRUE(timeline->is_object());
  EXPECT_EQ(timeline->find("schema_version")->number,
            static_cast<double>(kMcgpSchemaVersion));
  EXPECT_FALSE(timeline->find("samples")->array.empty());

  // Without a recorder the report stays timeline-free.
  const auto bare =
      testing::parse_json(report_to_json(analyze_partition(g, r.part, o.nparts)));
  ASSERT_TRUE(bare.has_value());
  EXPECT_EQ(bare->find("timeline"), nullptr);
}

}  // namespace
}  // namespace mcgp
