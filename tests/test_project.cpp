#include "core/project.hpp"

#include <gtest/gtest.h>

#include "core/coarsen.hpp"
#include "gen/mesh_gen.hpp"
#include "graph/metrics.hpp"

namespace mcgp {
namespace {

TEST(ProjectPartition, ByHand) {
  const std::vector<idx_t> cmap = {0, 0, 1, 2, 1};
  const std::vector<idx_t> coarse = {5, 7, 9};
  std::vector<idx_t> fine;
  project_partition(cmap, coarse, fine);
  EXPECT_EQ(fine, (std::vector<idx_t>{5, 5, 7, 9, 7}));
}

TEST(ProjectPartition, EmptyCmap) {
  std::vector<idx_t> fine;
  project_partition({}, {1, 2}, fine);
  EXPECT_TRUE(fine.empty());
}

TEST(ProjectPartition, PreservesCutAndWeights) {
  Graph g = grid2d(16, 16);
  CoarsenParams params;
  params.coarsen_to = 40;
  Rng rng(1);
  Hierarchy h = coarsen_graph(g, params, rng);
  ASSERT_GT(h.num_levels(), 0);

  // Arbitrary partition of the coarsest graph.
  const Graph& c = h.coarsest();
  std::vector<idx_t> part(to_size(c.nvtxs));
  for (idx_t v = 0; v < c.nvtxs; ++v) part[to_size(v)] = v % 3;

  const sum_t coarse_cut = edge_cut(c, part);
  const auto coarse_pw = part_weights(c, part, 3);

  for (int l = h.num_levels() - 1; l >= 0; --l) {
    std::vector<idx_t> fine;
    project_partition(h.levels[to_size(l)].cmap, part, fine);
    part = std::move(fine);
  }
  EXPECT_EQ(edge_cut(g, part), coarse_cut);
  EXPECT_EQ(part_weights(g, part, 3), coarse_pw);
}

}  // namespace
}  // namespace mcgp
