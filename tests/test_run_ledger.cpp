#include "support/run_ledger.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/partitioner.hpp"
#include "gen/mesh_gen.hpp"
#include "json_test_util.hpp"
#include "support/memory.hpp"
#include "support/perf_counters.hpp"
#include "support/schema.hpp"
#include "support/sysinfo.hpp"

namespace mcgp {
namespace {

TEST(Memory, RssCountersAreCoherent) {
  const std::int64_t cur = current_rss_bytes();
  const std::int64_t peak = peak_rss_bytes();
#if defined(__linux__)
  // /proc/self/status is always there on Linux; a test process has at
  // least a megabyte resident.
  ASSERT_GT(cur, 1 << 20);
  ASSERT_GT(peak, 1 << 20);
  EXPECT_GE(peak, cur);
#else
  // Portable contract: -1 (unavailable) or a positive byte count.
  EXPECT_TRUE(cur == -1 || cur > 0);
  EXPECT_TRUE(peak == -1 || peak > 0);
#endif
}

TEST(RunLedger, RecordCarriesRunIdentityAndMetrics) {
  Graph g = grid2d(30, 30);
  Options o;
  o.nparts = 4;
  o.seed = 9;
  o.num_threads = 2;
  o.algorithm = Algorithm::kRecursiveBisection;
  const PartitionResult r = partition(g, o);

  const RunRecord rec = make_run_record("unit", "grid-30x30", g, o, r);
  EXPECT_EQ(rec.experiment, "unit");
  EXPECT_EQ(rec.graph, "grid-30x30");
  EXPECT_EQ(rec.algorithm, std::string(algorithm_ledger_name(o)));
  EXPECT_EQ(rec.nparts, 4);
  EXPECT_EQ(rec.ncon, g.ncon);
  EXPECT_EQ(rec.threads, 2);
  EXPECT_EQ(rec.seed, 9u);
  EXPECT_EQ(rec.cut, r.cut);
  EXPECT_EQ(rec.imbalance.size(), to_size(g.ncon));
  EXPECT_DOUBLE_EQ(rec.max_imbalance, r.max_imbalance);
  EXPECT_GT(rec.seconds, 0.0);
  EXPECT_FALSE(rec.phases.empty());
#if defined(__linux__)
  EXPECT_GT(rec.peak_rss_bytes, 0);
#endif

  // Machine identity (from support/sysinfo) rides along on every record.
  const HostInfo& hi = host_info();
  EXPECT_EQ(rec.host, hi.hostname);
  EXPECT_EQ(rec.cpu, hi.cpu_model);
  EXPECT_EQ(rec.cores, hi.cores);
#if defined(__linux__)
  EXPECT_FALSE(rec.host.empty());
  EXPECT_GT(rec.cores, 0);
#endif
  // Without a profiler the record carries no profile section.
  EXPECT_FALSE(rec.profile_attached);
}

TEST(HostInfo, IsStableAcrossCalls) {
  const HostInfo& a = host_info();
  const HostInfo& b = host_info();
  EXPECT_EQ(&a, &b);  // cached once per process
  EXPECT_GE(a.cores, 0);
}

TEST(RunLedger, WrittenLineIsParsableJson) {
  Graph g = grid2d(20, 20);
  Options o;
  o.nparts = 2;
  const PartitionResult r = partition(g, o);
  const RunRecord rec = make_run_record("unit", "g", g, o, r);

  std::ostringstream out;
  write_run_record(out, rec);
  const std::string line = out.str();
  EXPECT_EQ(line.back(), '\n');

  const auto doc = testing::parse_json(line);
  ASSERT_TRUE(doc.has_value());
  ASSERT_NE(doc->find("schema_version"), nullptr);
  EXPECT_EQ(doc->find("schema_version")->number,
            static_cast<double>(kMcgpSchemaVersion));
  ASSERT_NE(doc->find("git"), nullptr);
  EXPECT_FALSE(doc->find("git")->str.empty());
  EXPECT_EQ(doc->find("experiment")->str, "unit");
  EXPECT_EQ(doc->find("nparts")->number, 2.0);
  EXPECT_EQ(doc->find("cut")->number, static_cast<double>(r.cut));
  ASSERT_NE(doc->find("phases"), nullptr);
  EXPECT_TRUE(doc->find("phases")->is_object());
  ASSERT_NE(doc->find("imbalance"), nullptr);
  EXPECT_EQ(doc->find("imbalance")->array.size(), to_size(g.ncon));
#if defined(__linux__)
  ASSERT_NE(doc->find("host"), nullptr);
  EXPECT_EQ(doc->find("host")->str, host_info().hostname);
  ASSERT_NE(doc->find("cores"), nullptr);
  EXPECT_EQ(doc->find("cores")->number,
            static_cast<double>(host_info().cores));
#endif
  // No profiler attached -> no "profile" member in the line.
  EXPECT_EQ(doc->find("profile"), nullptr);
}

TEST(RunLedger, ProfiledRecordCarriesHeadlineCounters) {
  Graph g = grid2d(20, 20);
  Options o;
  o.nparts = 2;
  Profiler prof;
  o.profile = &prof;
  const PartitionResult r = partition(g, o);
  const RunRecord rec = make_run_record("unit", "g", g, o, r, &prof);

  EXPECT_TRUE(rec.profile_attached);
  EXPECT_EQ(rec.profile_available, prof.counters_available());
  EXPECT_EQ(rec.profile_status, prof.status());

  std::ostringstream out;
  write_run_record(out, rec);
  const auto doc = testing::parse_json(out.str());
  ASSERT_TRUE(doc.has_value()) << out.str();
  const auto* profile = doc->find("profile");
  ASSERT_NE(profile, nullptr);
  ASSERT_TRUE(profile->is_object());
  ASSERT_NE(profile->find("available"), nullptr);
  ASSERT_NE(profile->find("status"), nullptr);
  if (prof.counters_available()) {
    EXPECT_TRUE(profile->find("available")->boolean);
    EXPECT_FALSE(rec.profile_counters.empty());
    // Every headline counter is a member of the profile object, its
    // value matching the profiler's whole-run bucket.
    const ProfBucket run = prof.phase_total("run");
    for (int c = 0; c < kNumPerfCounters; ++c) {
      const auto pc = static_cast<PerfCounter>(c);
      if (!prof.counter_open(pc)) continue;
      const auto* member = profile->find(perf_counter_name(pc));
      ASSERT_NE(member, nullptr) << perf_counter_name(pc);
      EXPECT_EQ(member->number, static_cast<double>(run.counters[c]))
          << perf_counter_name(pc);
    }
  } else {
    EXPECT_FALSE(profile->find("available")->boolean);
    EXPECT_FALSE(profile->find("status")->str.empty());
  }
}

TEST(RunLedger, AppendAccumulatesOneLinePerRun) {
  const std::string path = ::testing::TempDir() + "mcgp_ledger_test.jsonl";
  std::remove(path.c_str());

  Graph g = grid2d(20, 20);
  Options o;
  o.nparts = 2;
  const PartitionResult r = partition(g, o);
  ASSERT_TRUE(append_run_record(path, make_run_record("unit", "g", g, o, r)));
  ASSERT_TRUE(append_run_record(path, make_run_record("unit", "g", g, o, r)));

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  int lines = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    EXPECT_TRUE(testing::parse_json(line).has_value()) << line;
  }
  EXPECT_EQ(lines, 2);
  std::remove(path.c_str());
}

TEST(RunLedger, AppendToUnwritablePathFailsSoftly) {
  Graph g = grid2d(10, 10);
  Options o;
  o.nparts = 2;
  const PartitionResult r = partition(g, o);
  // Telemetry must never fail the run: bad path returns false, no throw.
  EXPECT_FALSE(append_run_record("/nonexistent-dir/ledger.jsonl",
                                 make_run_record("unit", "g", g, o, r)));
}

}  // namespace
}  // namespace mcgp
