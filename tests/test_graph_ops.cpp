#include "graph/graph_ops.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "gen/mesh_gen.hpp"
#include "graph/metrics.hpp"
#include "support/random.hpp"

namespace mcgp {
namespace {

TEST(BfsDistances, PathGraph) {
  Graph g = grid2d(5, 1);  // path of 5 vertices
  const auto dist = bfs_distances(g, 0);
  for (idx_t v = 0; v < 5; ++v) EXPECT_EQ(dist[to_size(v)], v);
}

TEST(BfsDistances, GridManhattan) {
  Graph g = grid2d(4, 4);
  const auto dist = bfs_distances(g, 0);  // vertex (0,0)
  // 4-point grid: BFS distance == Manhattan distance from the corner.
  for (idx_t x = 0; x < 4; ++x) {
    for (idx_t y = 0; y < 4; ++y) {
      EXPECT_EQ(dist[to_size(x * 4 + y)], x + y);
    }
  }
}

TEST(BfsDistances, UnreachableIsMinusOne) {
  GraphBuilder b(3, 1);
  b.add_edge(0, 1);
  Graph g = b.build();
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[2], -1);
}

TEST(ConnectedComponents, SingleComponent) {
  Graph g = grid2d(6, 6);
  EXPECT_EQ(count_components(g), 1);
}

TEST(ConnectedComponents, DisjointUnion) {
  GraphBuilder b(7, 1);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(3, 4);
  // 5 and 6 isolated
  Graph g = b.build();
  std::vector<idx_t> comp;
  EXPECT_EQ(connected_components(g, comp), 4);
  EXPECT_EQ(comp[0], comp[2]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[3]);
  EXPECT_NE(comp[5], comp[6]);
}

TEST(InducedSubgraph, ExtractsHalfGrid) {
  Graph g = grid2d(4, 4);
  std::vector<char> select(16, 0);
  for (idx_t v = 0; v < 8; ++v) select[to_size(v)] = 1;  // x in {0,1}
  std::vector<idx_t> l2g;
  Graph s = induced_subgraph(g, select, l2g);
  EXPECT_EQ(s.nvtxs, 8);
  EXPECT_EQ(s.nedges(), 10);  // 2x4 grid has 4+6 edges
  EXPECT_TRUE(s.validate().empty());
  for (idx_t lv = 0; lv < 8; ++lv) EXPECT_EQ(l2g[to_size(lv)], lv);
}

TEST(InducedSubgraph, PreservesWeights) {
  Graph g = grid2d(3, 3, 2);
  for (idx_t v = 0; v < 9; ++v) {
    g.vwgt[to_size(v) * 2] = v;
    g.vwgt[to_size(v) * 2 + 1] = 2 * v;
  }
  g.finalize();
  std::vector<char> select(9, 0);
  select[4] = select[5] = 1;
  std::vector<idx_t> l2g;
  Graph s = induced_subgraph(g, select, l2g);
  ASSERT_EQ(s.nvtxs, 2);
  EXPECT_EQ(s.weight(0, 0), 4);
  EXPECT_EQ(s.weight(1, 1), 10);
}

TEST(InducedSubgraph, EmptySelection) {
  Graph g = grid2d(3, 3);
  std::vector<char> select(9, 0);
  std::vector<idx_t> l2g;
  Graph s = induced_subgraph(g, select, l2g);
  EXPECT_EQ(s.nvtxs, 0);
  EXPECT_TRUE(l2g.empty());
}

TEST(InducedSubgraph, SizeMismatchThrows) {
  Graph g = grid2d(3, 3);
  std::vector<char> select(4, 1);
  std::vector<idx_t> l2g;
  EXPECT_THROW(induced_subgraph(g, select, l2g), std::invalid_argument);
}

TEST(PermuteGraph, PreservesStructure) {
  Graph g = tri_grid2d(5, 5);
  Rng rng(3);
  std::vector<idx_t> perm;
  random_permutation(g.nvtxs, perm, rng);
  Graph p = permute_graph(g, perm);
  EXPECT_EQ(p.nvtxs, g.nvtxs);
  EXPECT_EQ(p.nedges(), g.nedges());
  EXPECT_TRUE(p.validate().empty());
  // Degree multiset preserved.
  std::vector<idx_t> dg, dp;
  for (idx_t v = 0; v < g.nvtxs; ++v) {
    dg.push_back(g.degree(v));
    dp.push_back(p.degree(perm[to_size(v)]));
  }
  EXPECT_EQ(dg, dp);
}

TEST(PermuteGraph, RejectsNonPermutation) {
  Graph g = grid2d(2, 2);
  EXPECT_THROW(permute_graph(g, {0, 0, 1, 2}), std::invalid_argument);
  EXPECT_THROW(permute_graph(g, {0, 1}), std::invalid_argument);
}

TEST(GrowRegions, CoversAllVertices) {
  Graph g = grid2d(10, 10);
  const auto label = grow_regions(g, 4, 7);
  for (const idx_t l : label) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, 4);
  }
  std::set<idx_t> used(label.begin(), label.end());
  EXPECT_EQ(used.size(), 4u);
}

TEST(GrowRegions, RegionsAreContiguous) {
  Graph g = grid2d(12, 12);
  const idx_t nregions = 6;
  const auto label = grow_regions(g, nregions, 11);
  // Each region, viewed as an induced subgraph, must be connected.
  for (idx_t r = 0; r < nregions; ++r) {
    std::vector<char> select(to_size(g.nvtxs), 0);
    idx_t count = 0;
    for (idx_t v = 0; v < g.nvtxs; ++v) {
      if (label[to_size(v)] == r) {
        select[to_size(v)] = 1;
        ++count;
      }
    }
    ASSERT_GT(count, 0);
    std::vector<idx_t> l2g;
    Graph s = induced_subgraph(g, select, l2g);
    EXPECT_EQ(count_components(s), 1) << "region " << r << " not contiguous";
  }
}

TEST(GrowRegions, RoughlyBalancedOnGrid) {
  Graph g = grid2d(20, 20);
  const auto label = grow_regions(g, 8, 5);
  std::vector<idx_t> count(8, 0);
  for (const idx_t l : label) ++count[to_size(l)];
  for (const idx_t c : count) {
    EXPECT_GT(c, 400 / 8 / 4);  // no region absurdly small
  }
}

TEST(GrowRegions, HandlesDisconnectedGraph) {
  GraphBuilder b(10, 1);
  for (idx_t v = 0; v < 4; ++v) b.add_edge(v, (v + 1) % 5);
  // vertices 5..9 isolated
  Graph g = b.build();
  const auto label = grow_regions(g, 3, 1);
  for (const idx_t l : label) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, 3);
  }
}

TEST(GrowRegions, MoreRegionsThanVertices) {
  Graph g = grid2d(2, 2);
  const auto label = grow_regions(g, 100, 1);
  for (const idx_t l : label) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, 4);
  }
}

}  // namespace
}  // namespace mcgp
