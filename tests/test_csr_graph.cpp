#include "graph/csr_graph.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace mcgp {
namespace {

Graph triangle() {
  GraphBuilder b(3, 1);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  return b.build();
}

TEST(GraphBuilder, TriangleBasics) {
  Graph g = triangle();
  EXPECT_EQ(g.nvtxs, 3);
  EXPECT_EQ(g.nedges(), 3);
  for (idx_t v = 0; v < 3; ++v) EXPECT_EQ(g.degree(v), 2);
  EXPECT_TRUE(g.validate().empty()) << g.validate();
}

TEST(GraphBuilder, SelfLoopsDropped) {
  GraphBuilder b(2, 1);
  b.add_edge(0, 0);
  b.add_edge(0, 1);
  Graph g = b.build();
  EXPECT_EQ(g.nedges(), 1);
  EXPECT_TRUE(g.validate().empty());
}

TEST(GraphBuilder, ParallelEdgesMergedBySummingWeights) {
  GraphBuilder b(2, 1);
  b.add_edge(0, 1, 3);
  b.add_edge(1, 0, 4);
  Graph g = b.build();
  EXPECT_EQ(g.nedges(), 1);
  EXPECT_EQ(g.adjwgt[to_size(g.xadj[0])], 7);
  EXPECT_TRUE(g.validate().empty());
}

TEST(GraphBuilder, VertexWeightsDefaultToOne) {
  Graph g = triangle();
  for (idx_t v = 0; v < 3; ++v) EXPECT_EQ(g.weight(v, 0), 1);
  EXPECT_EQ(g.tvwgt[0], 3);
}

TEST(GraphBuilder, MultiConstraintWeights) {
  GraphBuilder b(2, 3);
  b.add_edge(0, 1);
  b.set_weights(0, {1, 2, 3});
  b.set_weight(1, 2, 9);
  Graph g = b.build();
  EXPECT_EQ(g.ncon, 3);
  EXPECT_EQ(g.weight(0, 0), 1);
  EXPECT_EQ(g.weight(0, 1), 2);
  EXPECT_EQ(g.weight(0, 2), 3);
  EXPECT_EQ(g.weight(1, 0), 1);  // default
  EXPECT_EQ(g.weight(1, 2), 9);
  EXPECT_EQ(g.tvwgt[2], 12);
  EXPECT_DOUBLE_EQ(g.invtvwgt[2], 1.0 / 12.0);
}

TEST(GraphBuilder, RejectsBadArguments) {
  EXPECT_THROW(GraphBuilder(-1, 1), std::invalid_argument);
  EXPECT_THROW(GraphBuilder(1, 0), std::invalid_argument);
  EXPECT_THROW(GraphBuilder(1, kMaxNcon + 1), std::invalid_argument);
  GraphBuilder b(2, 2);
  EXPECT_THROW(b.add_edge(0, 5), std::out_of_range);
  EXPECT_THROW(b.add_edge(-1, 0), std::out_of_range);
  EXPECT_THROW(b.set_weights(0, {1}), std::invalid_argument);
  EXPECT_THROW(b.set_weight(5, 0, 1), std::out_of_range);
  EXPECT_THROW(b.set_weight(0, 3, 1), std::out_of_range);
}

TEST(GraphBuilder, IsolatedVertices) {
  GraphBuilder b(4, 1);
  b.add_edge(0, 1);
  Graph g = b.build();
  EXPECT_EQ(g.degree(2), 0);
  EXPECT_EQ(g.degree(3), 0);
  EXPECT_TRUE(g.validate().empty());
}

TEST(GraphBuilder, EmptyGraph) {
  GraphBuilder b(0, 1);
  Graph g = b.build();
  EXPECT_EQ(g.nvtxs, 0);
  EXPECT_EQ(g.nedges(), 0);
  EXPECT_TRUE(g.validate().empty());
}

TEST(Graph, WeightedDegree) {
  GraphBuilder b(3, 1);
  b.add_edge(0, 1, 3);
  b.add_edge(0, 2, 4);
  Graph g = b.build();
  EXPECT_EQ(g.weighted_degree(0), 7);
  EXPECT_EQ(g.weighted_degree(1), 3);
}

TEST(Graph, FinalizeHandlesZeroTotal) {
  GraphBuilder b(2, 2);
  b.add_edge(0, 1);
  b.set_weights(0, {1, 0});
  b.set_weights(1, {1, 0});
  Graph g = b.build();
  EXPECT_EQ(g.tvwgt[1], 0);
  EXPECT_DOUBLE_EQ(g.invtvwgt[1], 0.0);
}

TEST(MakeGraph, FillsDefaults) {
  // Path 0-1-2 given directly in CSR form.
  Graph g = make_graph(3, 1, {0, 1, 3, 4}, {1, 0, 2, 1});
  EXPECT_EQ(g.nedges(), 2);
  EXPECT_EQ(g.adjwgt.size(), 4u);
  EXPECT_EQ(g.vwgt.size(), 3u);
  EXPECT_TRUE(g.validate().empty());
}

TEST(Validate, CatchesAsymmetry) {
  Graph g;
  g.nvtxs = 2;
  g.ncon = 1;
  g.xadj = {0, 1, 1};
  g.adjncy = {1};
  g.adjwgt = {1};
  g.vwgt = {1, 1};
  g.finalize();
  EXPECT_NE(g.validate().find("asymmetric"), std::string::npos);
}

TEST(Validate, CatchesSelfLoop) {
  Graph g = make_graph(2, 1, {0, 2, 3}, {0, 1, 0});
  EXPECT_NE(g.validate().find("self loop"), std::string::npos);
}

TEST(Validate, CatchesOutOfRangeTarget) {
  Graph g;
  g.nvtxs = 2;
  g.ncon = 1;
  g.xadj = {0, 1, 2};
  g.adjncy = {5, 0};
  g.adjwgt = {1, 1};
  g.vwgt = {1, 1};
  g.finalize();
  EXPECT_NE(g.validate().find("out of range"), std::string::npos);
}

TEST(Validate, CatchesWeightMismatch) {
  Graph g;
  g.nvtxs = 2;
  g.ncon = 1;
  g.xadj = {0, 1, 2};
  g.adjncy = {1, 0};
  g.adjwgt = {1, 2};  // asymmetric weights
  g.vwgt = {1, 1};
  g.finalize();
  EXPECT_FALSE(g.validate().empty());
}

TEST(Validate, CatchesSizeErrors) {
  Graph g = make_graph(2, 1, {0, 1, 2}, {1, 0});
  g.vwgt.pop_back();
  EXPECT_NE(g.validate().find("vwgt"), std::string::npos);
}

}  // namespace
}  // namespace mcgp
