#include "support/union_find.hpp"

#include <gtest/gtest.h>

#include "support/check.hpp"
#include "support/random.hpp"

namespace mcgp {
namespace {

TEST(UnionFind, InitiallyAllSingletons) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_sets(), 5);
  for (idx_t i = 0; i < 5; ++i) {
    EXPECT_EQ(uf.find(i), i);
    EXPECT_EQ(uf.set_size(i), 1);
  }
  EXPECT_FALSE(uf.same(0, 1));
}

TEST(UnionFind, UniteMergesAndCounts) {
  UnionFind uf(4);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.same(0, 1));
  EXPECT_EQ(uf.num_sets(), 3);
  EXPECT_EQ(uf.set_size(1), 2);
  EXPECT_FALSE(uf.unite(1, 0));  // already united
  EXPECT_EQ(uf.num_sets(), 3);
}

TEST(UnionFind, TransitiveUnion) {
  UnionFind uf(6);
  uf.unite(0, 1);
  uf.unite(2, 3);
  uf.unite(1, 2);
  EXPECT_TRUE(uf.same(0, 3));
  EXPECT_EQ(uf.set_size(0), 4);
  EXPECT_FALSE(uf.same(0, 4));
  EXPECT_EQ(uf.num_sets(), 3);
}

TEST(UnionFind, ChainUnion) {
  constexpr idx_t kN = 1000;
  UnionFind uf(kN);
  for (idx_t i = 0; i + 1 < kN; ++i) uf.unite(i, i + 1);
  EXPECT_EQ(uf.num_sets(), 1);
  EXPECT_EQ(uf.set_size(0), kN);
  EXPECT_TRUE(uf.same(0, kN - 1));
}

TEST(UnionFind, RandomizedSizesConsistent) {
  constexpr idx_t kN = 300;
  UnionFind uf(kN);
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    uf.unite(static_cast<idx_t>(rng.next_below(kN)),
             static_cast<idx_t>(rng.next_below(kN)));
  }
  // Sum of distinct-root set sizes must equal n.
  sum_t total = 0;
  for (idx_t v = 0; v < kN; ++v) {
    if (uf.find(v) == v) total = checked_add(total, uf.set_size(v));
  }
  EXPECT_EQ(total, kN);
}

TEST(UnionFind, ResetRestores) {
  UnionFind uf(3);
  uf.unite(0, 2);
  uf.reset(3);
  EXPECT_EQ(uf.num_sets(), 3);
  EXPECT_FALSE(uf.same(0, 2));
}

}  // namespace
}  // namespace mcgp
