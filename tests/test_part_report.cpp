#include "graph/part_report.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/partitioner.hpp"
#include "gen/mesh_gen.hpp"
#include "gen/weight_gen.hpp"
#include "graph/metrics.hpp"
#include "json_test_util.hpp"
#include "support/check.hpp"
#include "support/schema.hpp"

namespace mcgp {
namespace {

TEST(PartReport, ByHandOnPath) {
  GraphBuilder b(4, 1);
  b.add_edge(0, 1, 2);
  b.add_edge(1, 2, 3);
  b.add_edge(2, 3, 5);
  Graph g = b.build();
  const PartitionReport rep = analyze_partition(g, {0, 0, 1, 1}, 2);
  EXPECT_EQ(rep.edge_cut, 3);
  EXPECT_EQ(rep.nparts, 2);
  EXPECT_EQ(rep.max_adjacent_parts, 1);
  ASSERT_EQ(rep.parts.size(), 2u);
  EXPECT_EQ(rep.parts[0].vertices, 2);
  EXPECT_EQ(rep.parts[0].boundary_vertices, 1);   // vertex 1
  EXPECT_EQ(rep.parts[0].external_edge_weight, 3);
  EXPECT_EQ(rep.parts[1].external_edge_weight, 3);
  EXPECT_DOUBLE_EQ(rep.parts[0].shares[0], 0.5);
}

TEST(PartReport, ConsistentWithMetrics) {
  Graph g = random_geometric(1200, 0, 3, 2);
  apply_type_s_weights(g, 2, 8, 0, 9, 7);
  Options o;
  o.nparts = 6;
  const PartitionResult r = partition(g, o);
  const PartitionReport rep = analyze_partition(g, r.part, 6);
  EXPECT_EQ(rep.edge_cut, r.cut);
  EXPECT_EQ(rep.communication_volume, communication_volume(g, r.part, 6));
  ASSERT_EQ(rep.imbalance.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_DOUBLE_EQ(rep.imbalance[i], r.imbalance[i]);
  }
  // Vertex and weight totals add up.
  idx_t nv = 0;
  sum_t w0 = 0;
  idx_t boundary_total = 0;
  for (const auto& ps : rep.parts) {
    nv += ps.vertices;
    w0 = checked_add(w0, ps.weights[0]);
    boundary_total += ps.boundary_vertices;
    EXPECT_LE(ps.adjacent_parts, 5);
  }
  EXPECT_EQ(nv, g.nvtxs);
  EXPECT_EQ(w0, g.tvwgt[0]);
  EXPECT_EQ(boundary_total, boundary_vertices(g, r.part));
  EXPECT_GE(rep.max_adjacent_parts, 1);
}

TEST(PartReport, SinglePart) {
  Graph g = grid2d(5, 5);
  const PartitionReport rep = analyze_partition(g, std::vector<idx_t>(25, 0), 1);
  EXPECT_EQ(rep.edge_cut, 0);
  EXPECT_EQ(rep.max_adjacent_parts, 0);
  EXPECT_EQ(rep.parts[0].boundary_vertices, 0);
}

TEST(PartReport, PrintsSomethingSane) {
  Graph g = grid2d(8, 8);
  Options o;
  o.nparts = 4;
  const PartitionResult r = partition(g, o);
  std::ostringstream out;
  print_report(out, analyze_partition(g, r.part, 4));
  const std::string text = out.str();
  EXPECT_NE(text.find("edge-cut"), std::string::npos);
  EXPECT_NE(text.find("imbalance"), std::string::npos);
  // One line per part plus headers.
  EXPECT_GT(std::count(text.begin(), text.end(), '\n'), 5);
}

TEST(PartReport, JsonMatchesAnalyzedFields) {
  Graph g = random_geometric(900, 0, 3, 2);
  apply_type_s_weights(g, 2, 8, 0, 9, 11);
  Options o;
  o.nparts = 5;
  const PartitionResult r = partition(g, o);
  const PartitionReport rep = analyze_partition(g, r.part, 5);

  const auto doc = testing::parse_json(report_to_json(rep));
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_object());
  ASSERT_NE(doc->find("schema_version"), nullptr);
  EXPECT_DOUBLE_EQ(doc->find("schema_version")->number,
                   static_cast<double>(kMcgpSchemaVersion));
  EXPECT_DOUBLE_EQ(doc->find("nparts")->number, 5.0);
  EXPECT_DOUBLE_EQ(doc->find("edge_cut")->number,
                   static_cast<double>(rep.edge_cut));
  EXPECT_DOUBLE_EQ(doc->find("communication_volume")->number,
                   static_cast<double>(rep.communication_volume));
  EXPECT_DOUBLE_EQ(doc->find("max_adjacent_parts")->number,
                   static_cast<double>(rep.max_adjacent_parts));

  const testing::JsonValue* imb = doc->find("imbalance");
  ASSERT_NE(imb, nullptr);
  ASSERT_EQ(imb->array.size(), rep.imbalance.size());
  for (std::size_t i = 0; i < rep.imbalance.size(); ++i) {
    EXPECT_NEAR(imb->array[i].number, rep.imbalance[i], 1e-6);
  }

  const testing::JsonValue* parts = doc->find("parts");
  ASSERT_NE(parts, nullptr);
  ASSERT_EQ(parts->array.size(), rep.parts.size());
  for (std::size_t p = 0; p < rep.parts.size(); ++p) {
    const testing::JsonValue& jp = parts->array[p];
    const PartStats& ps = rep.parts[p];
    EXPECT_DOUBLE_EQ(jp.find("vertices")->number,
                     static_cast<double>(ps.vertices));
    EXPECT_DOUBLE_EQ(jp.find("boundary_vertices")->number,
                     static_cast<double>(ps.boundary_vertices));
    EXPECT_DOUBLE_EQ(jp.find("adjacent_parts")->number,
                     static_cast<double>(ps.adjacent_parts));
    EXPECT_DOUBLE_EQ(jp.find("external_edge_weight")->number,
                     static_cast<double>(ps.external_edge_weight));
    ASSERT_EQ(jp.find("weights")->array.size(), ps.weights.size());
    for (std::size_t i = 0; i < ps.weights.size(); ++i) {
      EXPECT_DOUBLE_EQ(jp.find("weights")->array[i].number,
                       static_cast<double>(ps.weights[i]));
    }
    ASSERT_EQ(jp.find("shares")->array.size(), ps.shares.size());
    for (std::size_t i = 0; i < ps.shares.size(); ++i) {
      EXPECT_NEAR(jp.find("shares")->array[i].number, ps.shares[i], 1e-6);
    }
  }
}

}  // namespace
}  // namespace mcgp
