#include "mesh/mesh.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "gen/mesh_gen.hpp"
#include "graph/graph_ops.hpp"

namespace mcgp {
namespace {

TEST(Mesh, QuadMeshSizes) {
  Mesh m = quad_mesh(3, 2);
  EXPECT_EQ(m.nelems, 6);
  EXPECT_EQ(m.nnodes, 12);
  for (idx_t e = 0; e < m.nelems; ++e) EXPECT_EQ(m.element_size(e), 4);
  EXPECT_TRUE(m.validate().empty()) << m.validate();
}

TEST(Mesh, TriMeshSizes) {
  Mesh m = tri_mesh(3, 3);
  EXPECT_EQ(m.nelems, 18);
  EXPECT_EQ(m.nnodes, 16);
  for (idx_t e = 0; e < m.nelems; ++e) EXPECT_EQ(m.element_size(e), 3);
  EXPECT_TRUE(m.validate().empty());
}

TEST(Mesh, HexMeshSizes) {
  Mesh m = hex_mesh(2, 2, 2);
  EXPECT_EQ(m.nelems, 8);
  EXPECT_EQ(m.nnodes, 27);
  for (idx_t e = 0; e < m.nelems; ++e) EXPECT_EQ(m.element_size(e), 8);
  EXPECT_TRUE(m.validate().empty());
}

TEST(Mesh, ValidateCatchesProblems) {
  Mesh m = quad_mesh(2, 2);
  m.eind[0] = 999;
  EXPECT_NE(m.validate().find("out of range"), std::string::npos);
  m = quad_mesh(2, 2);
  m.eind[1] = m.eind[0];
  EXPECT_NE(m.validate().find("duplicate"), std::string::npos);
}

TEST(MeshIo, RoundTrip) {
  Mesh m = tri_mesh(4, 3);
  std::ostringstream out;
  write_metis_mesh(out, m);
  std::istringstream in(out.str());
  Mesh r = read_metis_mesh(in);
  EXPECT_EQ(r.nelems, m.nelems);
  EXPECT_EQ(r.nnodes, m.nnodes);
  EXPECT_EQ(r.eptr, m.eptr);
  EXPECT_EQ(r.eind, m.eind);
}

TEST(MeshIo, InfersNodeCount) {
  std::istringstream in("2\n1 2 3\n2 3 4\n");
  Mesh m = read_metis_mesh(in);
  EXPECT_EQ(m.nelems, 2);
  EXPECT_EQ(m.nnodes, 4);
}

TEST(MeshIo, CommentsSkipped) {
  std::istringstream in("% header comment\n1 3\n% body\n1 2 3\n");
  Mesh m = read_metis_mesh(in);
  EXPECT_EQ(m.nelems, 1);
  EXPECT_EQ(m.nnodes, 3);
}

TEST(MeshIo, Errors) {
  {
    std::istringstream in("");
    EXPECT_THROW(read_metis_mesh(in), std::runtime_error);
  }
  {
    std::istringstream in("3\n1 2\n");
    EXPECT_THROW(read_metis_mesh(in), std::runtime_error);  // missing lines
  }
  {
    std::istringstream in("1\n0 1\n");
    EXPECT_THROW(read_metis_mesh(in), std::runtime_error);  // 0-based id
  }
  {
    std::istringstream in("1 2\n1 5\n");
    EXPECT_THROW(read_metis_mesh(in), std::runtime_error);  // id > nnodes
  }
  EXPECT_THROW(read_metis_mesh_file("/nonexistent.mesh"), std::runtime_error);
}

TEST(MeshToDual, QuadDualIsGrid) {
  // The dual of an nx x ny quad mesh with ncommon=2 (shared edge) is
  // exactly the nx x ny 4-point grid graph.
  Mesh m = quad_mesh(5, 4);
  Graph dual = mesh_to_dual(m, 2);
  Graph grid = grid2d(5, 4);
  EXPECT_EQ(dual.nvtxs, grid.nvtxs);
  EXPECT_EQ(dual.nedges(), grid.nedges());
  EXPECT_TRUE(dual.validate().empty());
  // Degree sequences match position-wise up to the element numbering,
  // which matches grid2d's row-major layout.
  for (idx_t v = 0; v < dual.nvtxs; ++v) {
    EXPECT_EQ(dual.degree(v), grid.degree(v)) << "element " << v;
  }
}

TEST(MeshToDual, HexDualIsGrid3d) {
  Mesh m = hex_mesh(3, 3, 3);
  Graph dual = mesh_to_dual(m, 4);  // shared face = 4 common nodes
  Graph grid = grid3d(3, 3, 3);
  EXPECT_EQ(dual.nvtxs, grid.nvtxs);
  EXPECT_EQ(dual.nedges(), grid.nedges());
}

TEST(MeshToDual, NcommonControlsAdjacency) {
  Mesh m = quad_mesh(4, 4);
  // ncommon=1: corner-sharing quads also become adjacent (8-point stencil
  // interior -> more edges than the 4-point dual).
  Graph corner = mesh_to_dual(m, 1);
  Graph edge = mesh_to_dual(m, 2);
  EXPECT_GT(corner.nedges(), edge.nedges());
  EXPECT_EQ(count_components(corner), 1);
}

TEST(MeshToDual, TriDualConnected) {
  Mesh m = tri_mesh(6, 6);
  Graph dual = mesh_to_dual(m, 2);
  EXPECT_EQ(dual.nvtxs, m.nelems);
  EXPECT_EQ(count_components(dual), 1);
  // A triangle has at most 3 edge-neighbors.
  for (idx_t v = 0; v < dual.nvtxs; ++v) EXPECT_LE(dual.degree(v), 3);
}

TEST(MeshToNodal, QuadNodalStructure) {
  Mesh m = quad_mesh(2, 2);
  Graph nodal = mesh_to_nodal(m);
  EXPECT_EQ(nodal.nvtxs, m.nnodes);
  EXPECT_TRUE(nodal.validate().empty());
  EXPECT_EQ(count_components(nodal), 1);
  // The center node of a 2x2 quad mesh touches all four elements and thus
  // all 8 other nodes.
  idx_t max_deg = 0;
  for (idx_t v = 0; v < nodal.nvtxs; ++v) max_deg = std::max(max_deg, nodal.degree(v));
  EXPECT_EQ(max_deg, 8);
}

TEST(MeshToDual, RejectsBadInput) {
  Mesh m = quad_mesh(2, 2);
  EXPECT_THROW(mesh_to_dual(m, 0), std::invalid_argument);
  m.eind[0] = 999;
  EXPECT_THROW(mesh_to_dual(m, 2), std::invalid_argument);
  EXPECT_THROW(mesh_to_nodal(m), std::invalid_argument);
}

}  // namespace
}  // namespace mcgp
