#include "support/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/partitioner.hpp"
#include "gen/mesh_gen.hpp"
#include "gen/weight_gen.hpp"
#include "json_test_util.hpp"
#include "support/check.hpp"
#include "support/schema.hpp"

namespace mcgp {
namespace {

TEST(MetricsHistogram, BucketBoundaries) {
  // Bucket 0 absorbs everything <= 1, including the zero and negative
  // values instrumentation never produces but a caller bug might.
  EXPECT_EQ(hist_bucket_index(-5), 0);
  EXPECT_EQ(hist_bucket_index(0), 0);
  EXPECT_EQ(hist_bucket_index(1), 0);
  EXPECT_EQ(hist_bucket_index(2), 1);
  EXPECT_EQ(hist_bucket_index(3), 2);
  EXPECT_EQ(hist_bucket_index(4), 2);
  EXPECT_EQ(hist_bucket_index(5), 3);
  // Every power of two is the inclusive upper bound of its own bucket;
  // one past it spills into the next.
  for (int b = 1; b <= 62; ++b) {
    const std::int64_t pow2 = std::int64_t{1} << b;
    EXPECT_EQ(hist_bucket_index(pow2), b) << "2^" << b;
    EXPECT_EQ(hist_bucket_index(pow2 + 1), std::min(b + 1, kHistBuckets - 1))
        << "2^" << b << "+1";
  }
  // The whole int64 range lands somewhere; the top values overflow into
  // the +Inf bucket.
  EXPECT_EQ(hist_bucket_index(std::numeric_limits<std::int64_t>::max()),
            kHistBuckets - 1);
  EXPECT_EQ(hist_bucket_le(0), 1);
  EXPECT_EQ(hist_bucket_le(1), 2);
  EXPECT_EQ(hist_bucket_le(62), std::int64_t{1} << 62);
  EXPECT_EQ(hist_bucket_le(kHistBuckets - 1),
            std::numeric_limits<std::int64_t>::max());
}

TEST(MetricsHistogram, ObserveAndConservativeQuantiles) {
  HistogramData h;
  EXPECT_EQ(h.quantile(0.5), 0.0);  // empty histogram
  h.observe(1);
  h.observe(2);
  h.observe(4);
  h.observe(8);
  EXPECT_EQ(h.count, 4);
  EXPECT_EQ(h.sum, 15);
  EXPECT_FALSE(h.saturated);
  // Conservative upper bounds: the le of the first bucket whose
  // cumulative count reaches q*count.
  EXPECT_EQ(h.quantile(0.5), 2.0);
  EXPECT_EQ(h.quantile(0.75), 4.0);
  EXPECT_EQ(h.quantile(1.0), 8.0);
}

TEST(MetricsHistogram, SaturatesAtTheRailsWithoutThrowing) {
  const std::int64_t max = std::numeric_limits<std::int64_t>::max();
  HistogramData h;
  h.observe(max);
  EXPECT_EQ(h.count, 1);
  EXPECT_EQ(h.sum, max);
  EXPECT_FALSE(h.saturated);
  // The second max-value observation would overflow the sum; telemetry
  // clamps at the rail and records the fact instead of aborting the run.
  h.observe(max);
  EXPECT_EQ(h.count, 2);
  EXPECT_EQ(h.sum, max);
  EXPECT_TRUE(h.saturated);
  EXPECT_EQ(h.buckets[kHistBuckets - 1], 2u);

  MetricsRegistry reg;
  reg.counter_add("sat_total", {}, max);
  reg.counter_add("sat_total", {}, max);
  const MetricsSnapshot snap = reg.snapshot();
  const MetricFamily* fam = snap.find("sat_total");
  ASSERT_NE(fam, nullptr);
  const MetricPoint* p = fam->find({});
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->counter, max);
  EXPECT_TRUE(p->saturated);
}

TEST(MetricsRegistry, CountersGaugesAndSnapshotDelta) {
  MetricsRegistry reg;
  reg.counter_add("mcgp_partitions", {"kway"}, 2);
  reg.gauge_set("mcgp_last_cut", {"kway"}, 42.0);
  reg.observe("mcgp_run_ns", {"kway"}, 1000);
  const MetricsSnapshot before = reg.snapshot();

  reg.counter_add("mcgp_partitions", {"kway"}, 3);
  reg.gauge_set("mcgp_last_cut", {"kway"}, 17.0);
  reg.observe("mcgp_run_ns", {"kway"}, 3000);
  reg.observe("mcgp_run_ns", {"kway"}, 5000);
  const MetricsSnapshot after = reg.snapshot();

  const MetricPoint* p = after.find("mcgp_partitions")->find({"kway"});
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->counter, 5);

  // The delta of two snapshots is exactly what happened in between:
  // counters and histogram buckets subtract, gauges keep their current
  // value.
  const MetricsSnapshot delta = after.delta_since(before);
  EXPECT_EQ(delta.find("mcgp_partitions")->find({"kway"})->counter, 3);
  EXPECT_EQ(delta.find("mcgp_run_ns")->find({"kway"})->hist.count, 2);
  EXPECT_EQ(delta.find("mcgp_run_ns")->find({"kway"})->hist.sum, 8000);
  EXPECT_EQ(delta.find("mcgp_last_cut")->find({"kway"})->gauge, 17.0);
}

TEST(MetricsRegistry, InstrumentationErrorsSurfaceAsCounters) {
  MetricsRegistry reg;
  // Wrong kind, wrong label arity, and a negative counter delta must
  // never throw into the observed run; each surfaces as a scrapable
  // error counter instead.
  reg.counter_add("mcgp_last_cut", {"kway"});       // declared as a gauge
  reg.counter_add("mcgp_partitions", {});           // declared arity is 1
  reg.counter_add("mcgp_partitions", {"kway"}, -1);
  const MetricsSnapshot snap = reg.snapshot();
  const MetricFamily* errs = snap.find("mcgp_metrics_errors");
  ASSERT_NE(errs, nullptr);
  EXPECT_EQ(errs->find({"kind_mismatch"})->counter, 1);
  EXPECT_EQ(errs->find({"label_arity"})->counter, 1);
  EXPECT_EQ(errs->find({"negative_delta"})->counter, 1);
  // The rejected mutations left no trace on their targets.
  EXPECT_EQ(snap.find("mcgp_partitions")->series.size(), 0u);
}

TEST(MetricsRegistry, AutoDeclaresUnknownFamilies) {
  MetricsRegistry reg;
  reg.observe("adhoc_ns", {"x"}, 5);
  const MetricsSnapshot snap = reg.snapshot();
  const MetricFamily* fam = snap.find("adhoc_ns");
  ASSERT_NE(fam, nullptr);
  EXPECT_EQ(fam->kind, MetricKind::kHistogram);
  ASSERT_EQ(fam->label_keys.size(), 1u);
  EXPECT_EQ(fam->label_keys[0], "l0");  // synthesized key
  EXPECT_EQ(fam->find({"x"})->hist.count, 1);
}

Graph make_metrics_graph() {
  Graph g = tri_grid2d(24, 24);
  apply_type_s_weights(g, 2, 16, 0, 19, 7);
  return g;
}

// Acceptance: one registry aggregates across repeated partition() calls —
// the cross-run view no per-run observer can produce.
TEST(MetricsPipeline, AggregatesAcrossRuns) {
  const Graph g = make_metrics_graph();
  MetricsRegistry reg;
  Options o;
  o.nparts = 4;
  o.algorithm = Algorithm::kKWay;
  o.metrics = &reg;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    o.seed = seed;
    partition(g, o);
  }
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.find("mcgp_partitions")->find({"kway"})->counter, 3);
  const MetricPoint* run = snap.find("mcgp_run_ns")->find({"kway"});
  ASSERT_NE(run, nullptr);
  EXPECT_EQ(run->hist.count, 3);
  EXPECT_GT(run->hist.sum, 0);
  // Per-phase histograms observed once per run.
  const MetricFamily* phases = snap.find("mcgp_phase_ns");
  ASSERT_NE(phases, nullptr);
  EXPECT_FALSE(phases->series.empty());
  for (const auto& [labels, point] : phases->series) {
    EXPECT_EQ(point.hist.count, 3) << labels[0];
  }
  // The auto-attached flight recorder kept the heartbeat alive.
  EXPECT_GT(reg.progress_seq(), 0u);
  EXPECT_GT(reg.last_progress_ns(), 0);
  EXPECT_EQ(reg.runs_inflight(), 0);
  // Quality gauges reflect the last completed run.
  EXPECT_GT(snap.find("mcgp_last_cut")->find({"kway"})->gauge, 0.0);
}

// The zero-cost contract's second half: attaching a registry never
// changes partitions, at any thread count, for either algorithm.
TEST(MetricsPipeline, AttachedRegistryNeverChangesPartitions) {
  const Graph g = make_metrics_graph();
  for (const Algorithm alg :
       {Algorithm::kRecursiveBisection, Algorithm::kKWay}) {
    for (const int threads : {1, 8}) {
      Options o;
      o.nparts = 8;
      o.algorithm = alg;
      o.num_threads = threads;
      o.seed = 11;
      const PartitionResult plain = partition(g, o);
      MetricsRegistry reg;
      o.metrics = &reg;
      const PartitionResult observed = partition(g, o);
      EXPECT_EQ(plain.part, observed.part)
          << "alg=" << (alg == Algorithm::kKWay ? "kway" : "rb")
          << " threads=" << threads;
      EXPECT_EQ(plain.cut, observed.cut);
    }
  }
}

// Named to match the TSan job's -R 'Parallel' ctest filter.
TEST(MetricsRegistryParallel, ConcurrentMutationsAndConsistentSnapshots) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg, t] {
      for (int i = 0; i < kIters; ++i) {
        reg.counter_add("par_events", {std::to_string(t % 2)});
        reg.observe("par_ns", {}, i + 1);
        if (i % 256 == 0) reg.note_progress("test");
      }
    });
  }
  // Scrape concurrently: every snapshot must be internally consistent
  // (bucket sum == count under the one-lock copy) and counters monotone.
  sum_t last_seen = 0;
  for (int s = 0; s < 50; ++s) {
    const MetricsSnapshot snap = reg.snapshot();
    const MetricFamily* hist = snap.find("par_ns");
    if (hist != nullptr && !hist->series.empty()) {
      const MetricPoint& p = hist->series.begin()->second;
      std::uint64_t bucket_sum = 0;
      for (const std::uint64_t b : p.hist.buckets) bucket_sum += b;
      EXPECT_EQ(bucket_sum, static_cast<std::uint64_t>(p.hist.count));
    }
    const MetricFamily* ctr = snap.find("par_events");
    if (ctr != nullptr) {
      sum_t total = 0;
      for (const auto& [labels, point] : ctr->series) {
        total = saturating_add(total, point.counter);
      }
      EXPECT_GE(total, last_seen);
      last_seen = total;
    }
  }
  for (std::thread& w : workers) w.join();
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.find("par_events")->find({"0"})->counter,
            static_cast<sum_t>(kThreads / 2 * kIters));
  EXPECT_EQ(snap.find("par_events")->find({"1"})->counter,
            static_cast<sum_t>(kThreads / 2 * kIters));
  EXPECT_EQ(snap.find("par_ns")->find({})->hist.count,
            static_cast<sum_t>(kThreads * kIters));
}

TEST(MetricsFlusher, StallDetectorFiresOnFreezeAndRecovers) {
  std::string dir = ::testing::TempDir();
  if (!dir.empty() && dir.back() == '/') dir.pop_back();
  ::setenv("MCGP_POSTMORTEM_DIR", dir.c_str(), 1);
  const std::string postmortem = dir + "/metrics_stall_test.json";
  std::remove(postmortem.c_str());

  MetricsRegistry reg;
  reg.run_begin();  // a run enters the pipeline ...
  MetricsFlusher::Config cfg;
  cfg.stall_timeout_s = 0.03;
  cfg.postmortem_path = "metrics_stall_test.json";  // relative: redirected
  MetricsFlusher flusher(reg, cfg);
  // ... and then freezes: no note_progress for well past the timeout.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  flusher.poll_now();
  EXPECT_TRUE(flusher.stalled());
  EXPECT_GE(flusher.stall_events(), 1u);
  EXPECT_TRUE(reg.stalled());

  // The heartbeat dumped a postmortem from outside the frozen run.
  std::ifstream in(postmortem);
  ASSERT_TRUE(in.good()) << "no postmortem at " << postmortem;
  std::stringstream buf;
  buf << in.rdbuf();
  const auto doc = testing::parse_json(buf.str());
  ASSERT_TRUE(doc.has_value());
  const auto* error = doc->find("error");
  ASSERT_NE(error, nullptr);
  EXPECT_NE(error->str.find("stall"), std::string::npos);
  const auto* metrics = doc->find("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_NE(metrics->find("kind"), nullptr);
  EXPECT_EQ(metrics->find("kind")->str, "mcgp_metrics");

  // Progress resuming clears the latch and the gauge.
  reg.note_progress("test");
  flusher.poll_now();
  EXPECT_FALSE(flusher.stalled());
  EXPECT_FALSE(reg.stalled());

  reg.run_end();
  flusher.stop();
  std::remove(postmortem.c_str());
  ::unsetenv("MCGP_POSTMORTEM_DIR");
}

TEST(MetricsFlusher, SilentOnAHealthyRun) {
  std::string dir = ::testing::TempDir();
  if (!dir.empty() && dir.back() == '/') dir.pop_back();
  const std::string postmortem = dir + "/metrics_no_stall_test.json";
  std::remove(postmortem.c_str());

  MetricsRegistry reg;
  MetricsFlusher::Config cfg;
  cfg.stall_timeout_s = 30.0;
  cfg.postmortem_path = postmortem;  // absolute: used as-is
  MetricsFlusher flusher(reg, cfg);

  const Graph g = make_metrics_graph();
  Options o;
  o.nparts = 4;
  o.metrics = &reg;
  partition(g, o);
  flusher.poll_now();
  EXPECT_FALSE(flusher.stalled());
  EXPECT_EQ(flusher.stall_events(), 0u);
  EXPECT_FALSE(std::ifstream(postmortem).good());
  flusher.stop();
}

TEST(MetricsFlusher, PeriodicFlushAndFinalSnapshot) {
  const std::string prom = ::testing::TempDir() + "mcgp_flush_test.prom";
  const std::string json = ::testing::TempDir() + "mcgp_flush_test.json";
  std::remove(prom.c_str());
  std::remove(json.c_str());

  MetricsRegistry reg;
  reg.counter_add("mcgp_partitions", {"kway"}, 2);
  {
    MetricsFlusher::Config cfg;
    cfg.out_path = prom;
    cfg.interval_s = 0;  // rewrite on every tick
    MetricsFlusher flusher(reg, cfg);
    flusher.poll_now();
    EXPECT_GE(flusher.flushes(), 1u);
    std::ifstream in(prom);
    ASSERT_TRUE(in.good());
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    EXPECT_NE(text.find("mcgp_partitions_total{alg=\"kway\"} 2"),
              std::string::npos);
    EXPECT_NE(text.find("# EOF\n"), std::string::npos);
  }

  // A long interval writes nothing periodically, but stop() (here via
  // the destructor) still delivers the final end-of-process snapshot.
  {
    MetricsFlusher::Config cfg;
    cfg.out_path = json;
    cfg.interval_s = 3600.0;
    MetricsFlusher flusher(reg, cfg);
  }
  std::ifstream in(json);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const auto doc = testing::parse_json(buf.str());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("kind")->str, "mcgp_metrics");
  std::remove(prom.c_str());
  std::remove(json.c_str());
}

TEST(MetricsExposition, OpenMetricsTextIsWellFormed) {
  MetricsRegistry reg;
  reg.counter_add("mcgp_partitions", {"kway"}, 3);
  reg.observe("mcgp_run_ns", {"kway"}, 1000);
  reg.observe("mcgp_run_ns", {"kway"}, 3000000);
  reg.gauge_set("esc", {R"(a"b\c)"}, 1.0);  // label needing escapes
  std::ostringstream out;
  reg.write_openmetrics(out);
  const std::string text = out.str();

  // Terminator, counter suffix, histogram structure.
  EXPECT_EQ(text.rfind("# EOF\n"), text.size() - 6);
  EXPECT_NE(text.find("# TYPE mcgp_partitions counter"), std::string::npos);
  EXPECT_NE(text.find("mcgp_partitions_total{alg=\"kway\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("# UNIT mcgp_run_ns ns"), std::string::npos);
  // Cumulative buckets: 1000 -> le=1024, 3000000 -> le=4194304; the
  // mandatory +Inf closing bucket equals _count.
  EXPECT_NE(text.find("mcgp_run_ns_bucket{alg=\"kway\",le=\"1024\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("mcgp_run_ns_bucket{alg=\"kway\",le=\"4194304\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("mcgp_run_ns_bucket{alg=\"kway\",le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("mcgp_run_ns_count{alg=\"kway\"} 2"),
            std::string::npos);
  // Backslash and quote escaped per the OpenMetrics ABNF.
  EXPECT_NE(text.find(R"(esc{l0="a\"b\\c"} 1)"), std::string::npos);
  // Families with no series yet (most of the pre-declared set) are
  // omitted entirely rather than emitted as bare metadata.
  EXPECT_EQ(text.find("mcgp_phase_cycles"), std::string::npos);
}

TEST(MetricsExposition, JsonRoundTripsThroughParser) {
  MetricsRegistry reg;
  reg.counter_add("mcgp_partitions", {"kway"}, 2);
  reg.observe("mcgp_run_ns", {"kway"}, 1500);
  std::ostringstream out;
  reg.write_json(out);
  const auto doc = testing::parse_json(out.str());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("schema_version")->number, kMcgpSchemaVersion);
  EXPECT_EQ(doc->find("kind")->str, "mcgp_metrics");
  const auto* families = doc->find("families");
  ASSERT_NE(families, nullptr);
  ASSERT_TRUE(families->is_array());
  const testing::JsonValue* run_ns = nullptr;
  for (const auto& fam : families->array) {
    if (fam.find("name") != nullptr && fam.find("name")->str == "mcgp_run_ns")
      run_ns = &fam;
  }
  ASSERT_NE(run_ns, nullptr);
  EXPECT_EQ(run_ns->find("kind")->str, "histogram");
  EXPECT_EQ(run_ns->find("unit")->str, "ns");
  const auto& series = run_ns->find("series")->array;
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(series[0].find("count")->number, 1.0);
  EXPECT_EQ(series[0].find("sum")->number, 1500.0);
  // Sparse buckets: one [index, own_count] pair for the 1500 -> 2^11
  // observation.
  const auto& buckets = series[0].find("buckets")->array;
  ASSERT_EQ(buckets.size(), 1u);
  EXPECT_EQ(buckets[0].array[0].number, 11.0);
  EXPECT_EQ(buckets[0].array[1].number, 1.0);
}

}  // namespace
}  // namespace mcgp
