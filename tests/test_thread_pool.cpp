#include "support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <stdexcept>
#include <vector>

#include "support/types.hpp"

namespace mcgp {
namespace {

TEST(TaskGroup, NullPoolRunsInlineInSubmissionOrder) {
  std::vector<int> order;
  TaskGroup group(nullptr);
  for (int i = 0; i < 8; ++i) {
    group.run([&order, i] { order.push_back(i); });
  }
  group.wait();
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[to_size(i)], i);
}

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);

  constexpr int kTasks = 200;
  std::vector<std::atomic<int>> runs(kTasks);
  for (auto& r : runs) r.store(0);

  TaskGroup group(&pool);
  for (int i = 0; i < kTasks; ++i) {
    group.run([&runs, i] { runs[to_size(i)].fetch_add(1); });
  }
  group.wait();
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(runs[to_size(i)].load(), 1) << "task " << i;
  }
}

TEST(ThreadPool, SingleThreadPoolStillCompletesWork) {
  ThreadPool pool(1);  // no workers: wait() executes everything
  EXPECT_EQ(pool.num_threads(), 1);
  std::atomic<int> done{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 16; ++i) {
    group.run([&done] { done.fetch_add(1); });
  }
  group.wait();
  EXPECT_EQ(done.load(), 16);
}

TEST(ThreadPool, NestedSubmissionDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> leaves{0};
  // Binary fork/join recursion, the shape the RB driver produces.
  std::function<void(int)> recurse = [&](int depth) {
    if (depth == 0) {
      leaves.fetch_add(1);
      return;
    }
    TaskGroup inner(&pool);
    inner.run([&recurse, depth] { recurse(depth - 1); });
    recurse(depth - 1);
    inner.wait();
  };
  TaskGroup group(&pool);
  group.run([&recurse] { recurse(6); });
  group.wait();
  EXPECT_EQ(leaves.load(), 64);
}

TEST(ThreadPool, ExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(2);
  {
    TaskGroup group(&pool);
    group.run([] { throw std::runtime_error("boom"); });
    EXPECT_THROW(group.wait(), std::runtime_error);
  }
  // The pool stays usable after a failed group.
  std::atomic<int> done{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 8; ++i) group.run([&done] { done.fetch_add(1); });
  group.wait();
  EXPECT_EQ(done.load(), 8);
}

TEST(TaskGroup, NullPoolExceptionSurfacesAtWait) {
  TaskGroup group(nullptr);
  group.run([] { throw std::runtime_error("serial boom"); });
  group.run([] {});  // later tasks still run; first error wins
  EXPECT_THROW(group.wait(), std::runtime_error);
  group.wait();  // error consumed; a second wait is clean
}

TEST(TaskGroup, WaitIsReusableWithinOneGroup) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  TaskGroup group(&pool);
  group.run([&done] { done.fetch_add(1); });
  group.wait();
  EXPECT_EQ(done.load(), 1);
  group.run([&done] { done.fetch_add(1); });
  group.wait();
  EXPECT_EQ(done.load(), 2);
}

}  // namespace
}  // namespace mcgp
