// InvariantAuditor: the checks must fire on deliberately corrupted state
// (negative tests — an auditor that cannot detect corruption is worse
// than none) and stay silent across healthy end-to-end runs at every
// level and thread count.
#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "core/audit.hpp"
#include "core/bisection.hpp"
#include "core/coarsen.hpp"
#include "core/partitioner.hpp"
#include "gen/mesh_gen.hpp"
#include "gen/weight_gen.hpp"
#include "graph/metrics.hpp"
#include "support/check.hpp"
#include "support/workspace.hpp"

namespace mcgp {
namespace {

Graph test_graph() { return grid2d(8, 8); }

TEST(CheckedArithmetic, PassesThroughInRangeValues) {
  EXPECT_EQ(checked_add(2, 3), 5);
  EXPECT_EQ(checked_sub(2, 5), -3);
  EXPECT_EQ(checked_mul(-4, 6), -24);
}

TEST(CheckedArithmetic, ThrowsOnOverflow) {
  const sum_t big = std::numeric_limits<sum_t>::max();
  const sum_t small = std::numeric_limits<sum_t>::min();
  EXPECT_THROW(checked_add(big, 1), AuditFailure);
  EXPECT_THROW(checked_sub(small, 1), AuditFailure);
  EXPECT_THROW(checked_mul(big, 2), AuditFailure);
}

TEST(AuditMacro, NullAuditorIsANoop) {
  InvariantAuditor* aud = nullptr;
  MCGP_AUDIT(aud, false);  // must not dereference or throw
}

TEST(AuditMacro, FailureMessageCarriesContext) {
  InvariantAuditor aud(AuditLevel::kBoundaries);
  try {
    MCGP_AUDIT_MSG(&aud, 1 == 2, "site: value ", 42);
    FAIL() << "expected AuditFailure";
  } catch (const AuditFailure& f) {
    const std::string what = f.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos) << what;
    EXPECT_NE(what.find("42"), std::string::npos) << what;
  }
}

TEST(InvariantAuditor, LevelsGateBoundariesAndParanoid) {
  EXPECT_FALSE(InvariantAuditor(AuditLevel::kOff).boundaries());
  EXPECT_TRUE(InvariantAuditor(AuditLevel::kBoundaries).boundaries());
  EXPECT_FALSE(InvariantAuditor(AuditLevel::kBoundaries).paranoid());
  EXPECT_TRUE(InvariantAuditor(AuditLevel::kParanoid).boundaries());
  EXPECT_TRUE(InvariantAuditor(AuditLevel::kParanoid).paranoid());
}

TEST(InvariantAuditor, ParseAuditLevelRoundTrips) {
  AuditLevel lvl = AuditLevel::kOff;
  EXPECT_TRUE(parse_audit_level("boundaries", lvl));
  EXPECT_EQ(lvl, AuditLevel::kBoundaries);
  EXPECT_TRUE(parse_audit_level("2", lvl));
  EXPECT_EQ(lvl, AuditLevel::kParanoid);
  EXPECT_TRUE(parse_audit_level("off", lvl));
  EXPECT_EQ(lvl, AuditLevel::kOff);
  EXPECT_FALSE(parse_audit_level("verbose", lvl));
  EXPECT_EQ(lvl, AuditLevel::kOff);  // untouched on failure
}

TEST(InvariantAuditor, DetectsCorruptedCoarseVertexWeight) {
  const Graph fine = test_graph();
  Rng rng(7);
  Workspace ws;
  CoarsenParams cp;
  cp.coarsen_to = 20;
  Hierarchy h = coarsen_graph(fine, cp, rng, &ws);
  ASSERT_GE(h.num_levels(), 1);
  Graph& coarse = h.levels[0].graph;
  const std::vector<idx_t>& cmap = h.levels[0].cmap;

  InvariantAuditor aud(AuditLevel::kBoundaries);
  aud.check_coarse_level(fine, coarse, cmap, "test");  // healthy: no throw
  EXPECT_EQ(aud.count(AuditCheck::kCoarseLevel), 1u);

  coarse.vwgt[0] += 1;  // silently corrupt one coarse weight
  EXPECT_THROW(aud.check_coarse_level(fine, coarse, cmap, "test"),
               AuditFailure);
}

TEST(InvariantAuditor, DetectsCorruptedProjection) {
  const Graph fine = test_graph();
  Rng rng(7);
  Workspace ws;
  CoarsenParams cp;
  cp.coarsen_to = 20;
  const Hierarchy h = coarsen_graph(fine, cp, rng, &ws);
  ASSERT_GE(h.num_levels(), 1);
  const Graph& coarse = h.levels[0].graph;
  const std::vector<idx_t>& cmap = h.levels[0].cmap;

  std::vector<idx_t> cpart(to_size(coarse.nvtxs));
  for (idx_t v = 0; v < coarse.nvtxs; ++v) {
    cpart[to_size(v)] = v % 2;
  }
  std::vector<idx_t> fpart(to_size(fine.nvtxs));
  for (idx_t v = 0; v < fine.nvtxs; ++v) {
    fpart[to_size(v)] =
        cpart[to_size(cmap[to_size(v)])];
  }

  InvariantAuditor aud(AuditLevel::kBoundaries);
  aud.check_projection(fine, coarse, cmap, cpart, fpart, "test");

  fpart[3] = 1 - fpart[3];  // one vertex lands on the wrong side
  EXPECT_THROW(aud.check_projection(fine, coarse, cmap, cpart, fpart, "test"),
               AuditFailure);
}

TEST(InvariantAuditor, DetectsDriftedBisectionWeights) {
  const Graph g = test_graph();
  std::vector<idx_t> where(to_size(g.nvtxs));
  for (idx_t v = 0; v < g.nvtxs; ++v) {
    where[to_size(v)] = v % 2;
  }
  BisectionTargets targets;
  targets.ub.assign(to_size(g.ncon), 1.5);
  BisectionBalance bal;
  bal.init(g, where, targets);

  InvariantAuditor aud(AuditLevel::kBoundaries);
  aud.check_bisection_weights(g, where, bal, "test");

  // Simulate a missed apply_move: where changes, bookkeeping does not.
  where[0] = 1 - where[0];
  EXPECT_THROW(aud.check_bisection_weights(g, where, bal, "test"),
               AuditFailure);
}

TEST(InvariantAuditor, DetectsWrongClaimedCut) {
  const Graph g = test_graph();
  std::vector<idx_t> where(to_size(g.nvtxs));
  for (idx_t v = 0; v < g.nvtxs; ++v) {
    where[to_size(v)] = v % 2;
  }
  const sum_t cut = compute_cut_2way(g, where);

  InvariantAuditor aud(AuditLevel::kBoundaries);
  aud.check_bisection_cut(g, where, cut, "test");
  EXPECT_THROW(aud.check_bisection_cut(g, where, checked_add(cut, 1), "test"),
               AuditFailure);
}

TEST(InvariantAuditor, DetectsDriftedKWayState) {
  const Graph g = test_graph();
  const idx_t nparts = 4;
  std::vector<idx_t> where(to_size(g.nvtxs));
  for (idx_t v = 0; v < g.nvtxs; ++v) {
    where[to_size(v)] = v % nparts;
  }
  std::vector<sum_t> pwgts(to_size(nparts) * to_size(g.ncon), 0);
  std::vector<idx_t> vcount(to_size(nparts), 0);
  for (idx_t v = 0; v < g.nvtxs; ++v) {
    const idx_t p = where[to_size(v)];
    ++vcount[to_size(p)];
    for (int i = 0; i < g.ncon; ++i) {
      const std::size_t s = to_size(p) * to_size(g.ncon) + to_size(i);
      pwgts[s] = checked_add(pwgts[s], g.weight(v, i));
    }
  }

  InvariantAuditor aud(AuditLevel::kBoundaries);
  aud.check_kway_state(g, where, nparts, pwgts, &vcount, "test");

  pwgts[1] = checked_add(pwgts[1], 2);  // drifted part weight
  EXPECT_THROW(aud.check_kway_state(g, where, nparts, pwgts, &vcount, "test"),
               AuditFailure);
  pwgts[1] = checked_sub(pwgts[1], 2);
  vcount[2] -= 1;  // drifted vertex count
  EXPECT_THROW(aud.check_kway_state(g, where, nparts, pwgts, &vcount, "test"),
               AuditFailure);
}

TEST(InvariantAuditor, DetectsStaleGainAndCutDelta) {
  const Graph g = test_graph();
  std::vector<idx_t> where(to_size(g.nvtxs));
  for (idx_t v = 0; v < g.nvtxs; ++v) {
    where[to_size(v)] = v % 2;
  }
  sum_t idw = 0, edw = 0;
  for (idx_t e = g.xadj[0]; e < g.xadj[1]; ++e) {
    if (where[to_size(g.adjncy[to_size(e)])] == where[0]) {
      idw = checked_add(idw, g.adjwgt[to_size(e)]);
    } else {
      edw = checked_add(edw, g.adjwgt[to_size(e)]);
    }
  }
  InvariantAuditor aud(AuditLevel::kParanoid);
  aud.check_gain(g, where, 0, checked_sub(edw, idw), "test");
  EXPECT_THROW(
      aud.check_gain(g, where, 0, checked_add(checked_sub(edw, idw), 1),
                     "test"),
      AuditFailure);

  aud.check_cut_delta(10, 4, 6, "test");
  EXPECT_THROW(aud.check_cut_delta(10, 4, 7, "test"), AuditFailure);
}

TEST(InvariantAuditor, DetectsInvalidFinalPartition) {
  const Graph g = test_graph();
  std::vector<idx_t> part(to_size(g.nvtxs));
  for (idx_t v = 0; v < g.nvtxs; ++v) {
    part[to_size(v)] = v % 3;
  }
  InvariantAuditor aud(AuditLevel::kBoundaries);
  aud.check_final_partition(g, part, 3, edge_cut(g, part), "test");
  EXPECT_THROW(aud.check_final_partition(g, part, 2, edge_cut(g, part), "t"),
               AuditFailure);
  part[0] = -1;
  EXPECT_THROW(aud.check_final_partition(g, part, 3, 0, "t"), AuditFailure);
}

/// End-to-end: both algorithms, both audit levels, serial and threaded —
/// healthy pipelines must pass every seam check, and the counters must
/// show the seams were actually visited.
class AuditedPipeline
    : public testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(AuditedPipeline, FullRunPassesAllChecks) {
  const auto [alg, level, threads] = GetParam();
  Graph g = grid2d(24, 24);
  apply_type_s_weights(g, /*m=*/3, /*nregions=*/12, 0, 19, 42);

  InvariantAuditor audit(static_cast<AuditLevel>(level));
  Options opts;
  opts.nparts = 6;
  opts.num_threads = threads;
  opts.audit = &audit;
  opts.algorithm = alg == 0 ? Algorithm::kRecursiveBisection
                            : Algorithm::kKWay;

  const PartitionResult r = partition(g, opts);
  EXPECT_TRUE(validate_partition(g, r.part, opts.nparts).empty());
  EXPECT_GT(audit.count(AuditCheck::kCoarseLevel), 0u) << audit.summary();
  EXPECT_GT(audit.count(AuditCheck::kProjection), 0u) << audit.summary();
  EXPECT_GT(audit.count(AuditCheck::kBisectionState), 0u) << audit.summary();
  EXPECT_GT(audit.count(AuditCheck::kFinalPartition), 0u) << audit.summary();
  if (opts.algorithm == Algorithm::kKWay) {
    EXPECT_GT(audit.count(AuditCheck::kKWayState), 0u) << audit.summary();
  }
  if (static_cast<AuditLevel>(level) == AuditLevel::kParanoid) {
    EXPECT_GT(audit.count(AuditCheck::kGainSample), 0u) << audit.summary();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AlgLevelThreads, AuditedPipeline,
    testing::Combine(testing::Values(0, 1),  // rb, kway
                     testing::Values(1, 2),  // boundaries, paranoid
                     testing::Values(1, 8)));

TEST(AuditedPipeline, AuditLevelOptionCreatesInternalAuditor) {
  Graph g = grid2d(12, 12);
  Options opts;
  opts.nparts = 4;
  opts.audit_level = AuditLevel::kBoundaries;
  // No external auditor: partition() builds its own. The observable
  // contract is simply that the audited run completes and validates.
  const PartitionResult r = partition(g, opts);
  EXPECT_TRUE(validate_partition(g, r.part, opts.nparts).empty());
}

TEST(AuditedPipeline, RefinePartitionHonorsAuditor) {
  Graph g = grid2d(16, 16);
  std::vector<idx_t> part(to_size(g.nvtxs));
  for (idx_t v = 0; v < g.nvtxs; ++v) {
    part[to_size(v)] = (v / 64) % 4;
  }
  InvariantAuditor audit(AuditLevel::kParanoid);
  Options opts;
  opts.nparts = 4;
  opts.audit = &audit;
  const PartitionResult r = refine_partition(g, part, opts);
  EXPECT_TRUE(validate_partition(g, r.part, opts.nparts).empty());
  EXPECT_GT(audit.count(AuditCheck::kKWayState), 0u) << audit.summary();
  EXPECT_GT(audit.count(AuditCheck::kFinalPartition), 0u) << audit.summary();
}

TEST(AuditOptions, OutOfRangeAuditLevelRejected) {
  Graph g = grid2d(4, 4);
  Options opts;
  opts.nparts = 2;
  opts.audit_level = static_cast<AuditLevel>(7);
  EXPECT_THROW(partition(g, opts), std::invalid_argument);
}

TEST(AuditOptions, NonFiniteToleranceRejected) {
  Graph g = grid2d(4, 4);
  Options opts;
  opts.nparts = 2;
  opts.ubvec = {std::numeric_limits<real_t>::infinity()};
  EXPECT_THROW(partition(g, opts), std::invalid_argument);
  opts.ubvec = {std::numeric_limits<real_t>::quiet_NaN()};
  EXPECT_THROW(partition(g, opts), std::invalid_argument);
  opts.ubvec = {0.9};
  EXPECT_THROW(partition(g, opts), std::invalid_argument);
}

}  // namespace
}  // namespace mcgp
