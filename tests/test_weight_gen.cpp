#include "gen/weight_gen.hpp"

#include <gtest/gtest.h>

#include <set>

#include "gen/mesh_gen.hpp"
#include "support/check.hpp"

namespace mcgp {
namespace {

TEST(TypeR, RangeAndArity) {
  Graph g = grid2d(10, 10);
  apply_type_r_weights(g, 4, 0, 19, 1);
  EXPECT_EQ(g.ncon, 4);
  ASSERT_EQ(g.vwgt.size(), 400u);
  for (const wgt_t w : g.vwgt) {
    EXPECT_GE(w, 0);
    EXPECT_LE(w, 19);
  }
  for (int i = 0; i < 4; ++i) EXPECT_GT(g.tvwgt[to_size(i)], 0);
}

TEST(TypeR, Deterministic) {
  Graph a = grid2d(8, 8), b = grid2d(8, 8);
  apply_type_r_weights(a, 3, 0, 9, 7);
  apply_type_r_weights(b, 3, 0, 9, 7);
  EXPECT_EQ(a.vwgt, b.vwgt);
  apply_type_r_weights(b, 3, 0, 9, 8);
  EXPECT_NE(a.vwgt, b.vwgt);
}

TEST(TypeR, RejectsBadArgs) {
  Graph g = grid2d(3, 3);
  EXPECT_THROW(apply_type_r_weights(g, 0, 0, 9, 1), std::invalid_argument);
  EXPECT_THROW(apply_type_r_weights(g, 9, 0, 9, 1), std::invalid_argument);
  EXPECT_THROW(apply_type_r_weights(g, 2, 5, 2, 1), std::invalid_argument);
}

TEST(TypeS, ConstantVectorPerRegion) {
  Graph g = grid2d(16, 16);
  const auto region = apply_type_s_weights(g, 3, 8, 0, 19, 11);
  ASSERT_EQ(region.size(), 256u);
  // All vertices in the same region share the same weight vector.
  std::vector<std::vector<wgt_t>> region_vec(8);
  for (idx_t v = 0; v < g.nvtxs; ++v) {
    const idx_t r = region[to_size(v)];
    std::vector<wgt_t> w(g.weights(v), g.weights(v) + 3);
    if (region_vec[to_size(r)].empty()) {
      region_vec[to_size(r)] = w;
    } else {
      EXPECT_EQ(region_vec[to_size(r)], w);
    }
  }
  // Not all regions share one vector (overwhelmingly likely).
  std::set<std::vector<wgt_t>> distinct(region_vec.begin(), region_vec.end());
  EXPECT_GT(distinct.size(), 1u);
}

TEST(TypeS, PositiveTotals) {
  Graph g = grid2d(12, 12);
  apply_type_s_weights(g, 5, 16, 0, 19, 3);
  for (int i = 0; i < 5; ++i) EXPECT_GT(g.tvwgt[to_size(i)], 0);
}

TEST(TypeS, Deterministic) {
  Graph a = grid2d(10, 10), b = grid2d(10, 10);
  apply_type_s_weights(a, 2, 16, 0, 19, 5);
  apply_type_s_weights(b, 2, 16, 0, 19, 5);
  EXPECT_EQ(a.vwgt, b.vwgt);
}

TEST(DefaultPhaseSchedule, MatchesPaperShape) {
  const auto s5 = default_phase_schedule(5);
  const std::vector<double> expect = {1.0, 0.75, 0.5, 0.5, 0.25};
  EXPECT_EQ(s5, expect);
  const auto s2 = default_phase_schedule(2);
  EXPECT_EQ(s2, (std::vector<double>{1.0, 0.75}));
  const auto s7 = default_phase_schedule(7);
  EXPECT_DOUBLE_EQ(s7[6], 0.25);
}

TEST(TypeP, ZeroOneWeightsAndFullFirstPhase) {
  Graph g = grid2d(20, 20);
  const PhaseActivity pa = apply_type_p_weights(g, 4, 32, 9);
  EXPECT_EQ(pa.nphases, 4);
  EXPECT_DOUBLE_EQ(pa.fraction[0], 1.0);
  for (idx_t v = 0; v < g.nvtxs; ++v) {
    EXPECT_EQ(g.weight(v, 0), 1);  // phase 0 fully active
    for (int p = 0; p < 4; ++p) {
      const wgt_t w = g.weight(v, p);
      EXPECT_TRUE(w == 0 || w == 1);
      EXPECT_EQ(w == 1, pa.is_active(p, v, g.nvtxs));
    }
  }
}

TEST(TypeP, ActiveFractionsTrackSchedule) {
  Graph g = grid2d(40, 40);
  const PhaseActivity pa = apply_type_p_weights(g, 5, 32, 21);
  const auto sched = default_phase_schedule(5);
  for (int p = 0; p < 5; ++p) {
    sum_t active = g.tvwgt[to_size(p)];
    const double frac = static_cast<double>(active) / g.nvtxs;
    // Regions are only approximately equal-sized; allow slack.
    EXPECT_NEAR(frac, sched[to_size(p)], 0.2)
        << "phase " << p;
  }
}

TEST(TypeP, EdgeWeightsEqualCoActivityFlooredAtOne) {
  Graph g = grid2d(15, 15);
  const PhaseActivity pa = apply_type_p_weights(g, 3, 16, 33);
  for (idx_t v = 0; v < g.nvtxs; ++v) {
    for (idx_t e = g.xadj[to_size(v)]; e < g.xadj[to_size(v + 1)]; ++e) {
      const idx_t u = g.adjncy[to_size(e)];
      wgt_t co = 0;
      for (int p = 0; p < 3; ++p) {
        if (pa.is_active(p, v, g.nvtxs) && pa.is_active(p, u, g.nvtxs)) ++co;
      }
      EXPECT_EQ(g.adjwgt[to_size(e)], std::max<wgt_t>(co, 1));
    }
  }
}

TEST(TypeP, CustomSchedule) {
  Graph g = grid2d(10, 10);
  const PhaseActivity pa = apply_type_p_weights(g, 2, 8, 3, {0.3, 0.5});
  // Phase 0 is forced to 1.0 regardless of the requested value.
  EXPECT_DOUBLE_EQ(pa.fraction[0], 1.0);
  EXPECT_NEAR(pa.fraction[1], 0.5, 0.01);
  EXPECT_THROW(apply_type_p_weights(g, 2, 8, 3, {0.5}), std::invalid_argument);
}

TEST(SumCollapse, SumsComponents) {
  Graph g = grid2d(6, 6);
  apply_type_s_weights(g, 3, 4, 1, 5, 13);
  Graph c = sum_collapse_constraints(g);
  EXPECT_EQ(c.ncon, 1);
  for (idx_t v = 0; v < g.nvtxs; ++v) {
    EXPECT_EQ(c.weight(v, 0),
              g.weight(v, 0) + g.weight(v, 1) + g.weight(v, 2));
  }
  EXPECT_EQ(c.tvwgt[0],
            checked_add(checked_add(g.tvwgt[0], g.tvwgt[1]), g.tvwgt[2]));
  // Structure untouched.
  EXPECT_EQ(c.adjncy, g.adjncy);
}

}  // namespace
}  // namespace mcgp
