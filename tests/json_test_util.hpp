// Minimal recursive-descent JSON parser used by the exporter round-trip
// tests. Intentionally strict (no trailing commas, no comments); parse
// failure returns nullopt so tests can assert the writers emit valid JSON
// without pulling in an external library.
#pragma once

#include <cctype>
#include <cstdlib>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace mcgp::testing {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;  // insertion order

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }

  /// First member with `key`, or nullptr.
  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  /// Parse a full document; nullopt on any syntax error or trailing junk.
  std::optional<JsonValue> parse() {
    JsonValue v;
    if (!value(v)) return std::nullopt;
    skip_ws();
    if (pos_ != s_.size()) return std::nullopt;
    return v;
  }

 private:
  bool value(JsonValue& out) {
    skip_ws();
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object(out);
      case '[': return array(out);
      case '"':
        out.kind = JsonValue::Kind::kString;
        return string(out.str);
      case 't':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = true;
        return literal("true");
      case 'f':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = false;
        return literal("false");
      case 'n':
        out.kind = JsonValue::Kind::kNull;
        return literal("null");
      default: return number(out);
    }
  }

  bool object(JsonValue& out) {
    out.kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!string(key)) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      JsonValue v;
      if (!value(v)) return false;
      out.object.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool array(JsonValue& out) {
    out.kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue v;
      if (!value(v)) return false;
      out.array.push_back(std::move(v));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool string(std::string& out) {
    if (peek() != '"') return false;
    ++pos_;
    out.clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;  // bare control
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) return false;
      const char esc = s_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            if (!std::isxdigit(static_cast<unsigned char>(h))) return false;
            code = code * 16 +
                   static_cast<unsigned>(
                       h <= '9' ? h - '0' : (h | 0x20) - 'a' + 10);
          }
          // Tests only use ASCII; anything else keeps a placeholder.
          out.push_back(code < 0x80 ? static_cast<char>(code) : '?');
          break;
        }
        default: return false;
      }
    }
    return false;  // unterminated
  }

  bool number(JsonValue& out) {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!std::isdigit(static_cast<unsigned char>(peek()))) return false;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    out.kind = JsonValue::Kind::kNumber;
    out.number = std::strtod(s_.c_str() + start, nullptr);
    return true;
  }

  bool literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (pos_ >= s_.size() || s_[pos_] != *p) return false;
      ++pos_;
    }
    return true;
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  const std::string& s_;
  std::size_t pos_ = 0;
};

inline std::optional<JsonValue> parse_json(const std::string& text) {
  return JsonParser(text).parse();
}

}  // namespace mcgp::testing
