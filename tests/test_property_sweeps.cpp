// Parameterized property sweeps across the full pipeline: every
// combination of (graph family, #constraints, k, algorithm) must produce a
// structurally valid, tolerably balanced partition with a sane cut.
#include <gtest/gtest.h>

#include <tuple>

#include "core/partitioner.hpp"
#include "gen/mesh_gen.hpp"
#include "gen/weight_gen.hpp"
#include "graph/metrics.hpp"
#include "support/check.hpp"

namespace mcgp {
namespace {

enum class Family { kGrid2d, kTriGrid, kGrid3d, kGeometric, kFeMesh };

Graph make_family(Family f, int ncon) {
  switch (f) {
    case Family::kGrid2d:
      return grid2d(36, 36, ncon);
    case Family::kTriGrid:
      return tri_grid2d(30, 30, ncon);
    case Family::kGrid3d:
      return grid3d(11, 11, 11, ncon);
    case Family::kGeometric:
      return random_geometric(1300, 0, 77, ncon);
    case Family::kFeMesh:
      return fe_mesh(1300, 78, ncon);
  }
  return grid2d(4, 4);
}

const char* family_name(Family f) {
  switch (f) {
    case Family::kGrid2d: return "grid2d";
    case Family::kTriGrid: return "trigrid";
    case Family::kGrid3d: return "grid3d";
    case Family::kGeometric: return "geometric";
    case Family::kFeMesh: return "femesh";
  }
  return "?";
}

using SweepParam = std::tuple<Family, int, idx_t, Algorithm>;

class PipelineSweep : public testing::TestWithParam<SweepParam> {};

TEST_P(PipelineSweep, ValidBalancedNonTrivial) {
  const auto [family, ncon, k, alg] = GetParam();
  Graph g = make_family(family, ncon);
  if (ncon > 1) apply_type_s_weights(g, ncon, 16, 0, 19, 1234);

  Options o;
  o.nparts = k;
  o.algorithm = alg;
  o.seed = 7;
  const PartitionResult r = partition(g, o);

  // Structural validity with non-empty parts.
  EXPECT_TRUE(validate_partition(g, r.part, k, true).empty())
      << family_name(family);

  // Balance: 5% tolerance with slack that grows with the difficulty of
  // the instance (the paper documents degradation at high m).
  const real_t slack = ncon <= 3 ? 0.02 : 0.06;
  for (const real_t lb : r.imbalance) {
    EXPECT_LE(lb, 1.05 + slack)
        << family_name(family) << " ncon=" << ncon << " k=" << k;
  }

  // Cut sanity: positive (k > 1 on connected-ish graphs) and far below
  // the total edge weight (a random partition would cut ~ (1-1/k) of it).
  sum_t total_ew = 0;
  for (const wgt_t w : g.adjwgt) total_ew = checked_add(total_ew, w);
  total_ew /= 2;
  EXPECT_GT(r.cut, 0);
  EXPECT_LT(r.cut, total_ew / 2);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombinations, PipelineSweep,
    testing::Combine(testing::Values(Family::kGrid2d, Family::kTriGrid,
                                     Family::kGrid3d, Family::kGeometric,
                                     Family::kFeMesh),
                     testing::Values(1, 2, 4),
                     testing::Values<idx_t>(2, 7, 16),
                     testing::Values(Algorithm::kRecursiveBisection,
                                     Algorithm::kKWay)),
    [](const testing::TestParamInfo<SweepParam>& pinfo) {
      std::string name = family_name(std::get<0>(pinfo.param));
      name += "_m" + std::to_string(std::get<1>(pinfo.param));
      name += "_k" + std::to_string(std::get<2>(pinfo.param));
      name += std::get<3>(pinfo.param) == Algorithm::kKWay ? "_kw" : "_rb";
      return name;
    });

/// Type-P (multi-phase) weights across both algorithms.
class TypePSweep
    : public testing::TestWithParam<std::tuple<int, Algorithm>> {};

TEST_P(TypePSweep, FeasibleOnPhaseWeights) {
  const auto [m, alg] = GetParam();
  Graph g = grid2d(40, 40, m);
  apply_type_p_weights(g, m, 32, 99);
  Options o;
  o.nparts = 8;
  o.algorithm = alg;
  const PartitionResult r = partition(g, o);
  EXPECT_TRUE(validate_partition(g, r.part, 8, true).empty());
  const real_t slack = m <= 3 ? 0.03 : 0.08;
  for (const real_t lb : r.imbalance) EXPECT_LE(lb, 1.05 + slack);
}

INSTANTIATE_TEST_SUITE_P(
    Phases, TypePSweep,
    testing::Combine(testing::Values(2, 3, 4, 5),
                     testing::Values(Algorithm::kRecursiveBisection,
                                     Algorithm::kKWay)),
    [](const testing::TestParamInfo<std::tuple<int, Algorithm>>& pinfo) {
      return "m" + std::to_string(std::get<0>(pinfo.param)) +
             (std::get<1>(pinfo.param) == Algorithm::kKWay
                  ? std::string("_kw")
                  : std::string("_rb"));
    });

/// Determinism across the whole matrix: same options -> same partition.
class DeterminismSweep : public testing::TestWithParam<Algorithm> {};

TEST_P(DeterminismSweep, SameSeedSamePartition) {
  Graph g = random_geometric(900, 0, 5, 3);
  apply_type_s_weights(g, 3, 8, 0, 19, 55);
  Options o;
  o.nparts = 9;
  o.algorithm = GetParam();
  o.seed = 31337;
  const PartitionResult a = partition(g, o);
  const PartitionResult b = partition(g, o);
  EXPECT_EQ(a.part, b.part);
  EXPECT_EQ(a.cut, b.cut);
}

INSTANTIATE_TEST_SUITE_P(BothAlgorithms, DeterminismSweep,
                         testing::Values(Algorithm::kRecursiveBisection,
                                         Algorithm::kKWay),
                         [](const testing::TestParamInfo<Algorithm>& pinfo) {
                           return pinfo.param == Algorithm::kKWay ? "kway"
                                                                 : "rb";
                         });

}  // namespace
}  // namespace mcgp
