// Robustness sweep: degenerate graphs, extreme options, and adversarial
// weight patterns that the pipeline must survive without crashing or
// producing invalid partitions.
#include <gtest/gtest.h>

#include "core/partitioner.hpp"
#include "gen/mesh_gen.hpp"
#include "gen/weight_gen.hpp"
#include "graph/metrics.hpp"

namespace mcgp {
namespace {

Options both(Algorithm alg, idx_t k) {
  Options o;
  o.algorithm = alg;
  o.nparts = k;
  return o;
}

class EdgeCases : public testing::TestWithParam<Algorithm> {};

TEST_P(EdgeCases, SingleVertex) {
  Graph g = make_graph(1, 1, {0, 0}, {});
  const PartitionResult r = partition(g, both(GetParam(), 4));
  ASSERT_EQ(r.part.size(), 1u);
  EXPECT_EQ(r.cut, 0);
}

TEST_P(EdgeCases, TwoVerticesTwoParts) {
  GraphBuilder b(2, 1);
  b.add_edge(0, 1);
  Graph g = b.build();
  const PartitionResult r = partition(g, both(GetParam(), 2));
  EXPECT_NE(r.part[0], r.part[1]);
  EXPECT_EQ(r.cut, 1);
}

TEST_P(EdgeCases, EdgelessGraph) {
  Graph g = make_graph(50, 1, std::vector<idx_t>(51, 0), {});
  const PartitionResult r = partition(g, both(GetParam(), 5));
  EXPECT_TRUE(validate_partition(g, r.part, 5, true).empty());
  EXPECT_EQ(r.cut, 0);
  EXPECT_LE(r.max_imbalance, 1.05 + 1e-9);
}

TEST_P(EdgeCases, ManyIsolatedPlusOneClique) {
  GraphBuilder b(60, 1);
  for (idx_t u = 0; u < 10; ++u) {
    for (idx_t v = u + 1; v < 10; ++v) b.add_edge(u, v);
  }
  Graph g = b.build();
  const PartitionResult r = partition(g, both(GetParam(), 4));
  EXPECT_TRUE(validate_partition(g, r.part, 4, true).empty());
  EXPECT_LE(r.max_imbalance, 1.10);
}

TEST_P(EdgeCases, MaximumConstraints) {
  Graph g = grid2d(24, 24, kMaxNcon);
  apply_type_s_weights(g, kMaxNcon, 16, 0, 19, 3);
  const PartitionResult r = partition(g, both(GetParam(), 4));
  EXPECT_TRUE(validate_partition(g, r.part, 4, true).empty());
  ASSERT_EQ(r.imbalance.size(), to_size(kMaxNcon));
  // m = 8 is beyond the paper's quality regime; only sanity-bound it.
  EXPECT_LE(r.max_imbalance, 1.5);
}

TEST_P(EdgeCases, HugeVertexWeights) {
  Graph g = grid2d(16, 16, 2);
  for (idx_t v = 0; v < g.nvtxs; ++v) {
    g.vwgt[to_size(v) * 2] = 1000000;
    g.vwgt[to_size(v) * 2 + 1] = 1 + v % 7;
  }
  g.finalize();
  const PartitionResult r = partition(g, both(GetParam(), 4));
  EXPECT_TRUE(validate_partition(g, r.part, 4, true).empty());
  EXPECT_LE(r.max_imbalance, 1.06);
}

TEST_P(EdgeCases, ZeroWeightConstraintEverywhere) {
  Graph g = grid2d(12, 12, 3);
  for (idx_t v = 0; v < g.nvtxs; ++v) {
    g.vwgt[to_size(v) * 3 + 0] = 1;
    g.vwgt[to_size(v) * 3 + 1] = 0;  // dead constraint
    g.vwgt[to_size(v) * 3 + 2] = 2;
  }
  g.finalize();
  const PartitionResult r = partition(g, both(GetParam(), 4));
  EXPECT_TRUE(validate_partition(g, r.part, 4, true).empty());
  EXPECT_DOUBLE_EQ(r.imbalance[1], 1.0);  // trivially balanced
  EXPECT_LE(r.imbalance[0], 1.06);
}

TEST_P(EdgeCases, SingleHeavyVertex) {
  // One vertex holds half the total weight: no partition can balance, but
  // the result must stay valid and the heavy vertex isolated-ish.
  Graph g = grid2d(10, 10);
  g.vwgt[0] = 99;
  g.finalize();
  const PartitionResult r = partition(g, both(GetParam(), 4));
  EXPECT_TRUE(validate_partition(g, r.part, 4, true).empty());
  // Best possible: heavy vertex's part has ~99+, avg ~49.5 -> lb ~2.0.
  EXPECT_LE(r.max_imbalance, 2.2);
}

TEST_P(EdgeCases, LongPathGraph) {
  Graph g = grid2d(500, 1);
  const PartitionResult r = partition(g, both(GetParam(), 8));
  EXPECT_TRUE(validate_partition(g, r.part, 8, true).empty());
  EXPECT_LE(r.max_imbalance, 1.06);
  // Optimal path cut for 8 parts is 7.
  EXPECT_LE(r.cut, 25);
}

TEST_P(EdgeCases, StarGraph) {
  GraphBuilder b(201, 1);
  for (idx_t v = 1; v < 201; ++v) b.add_edge(0, v);
  Graph g = b.build();
  const PartitionResult r = partition(g, both(GetParam(), 4));
  EXPECT_TRUE(validate_partition(g, r.part, 4, true).empty());
  EXPECT_LE(r.max_imbalance, 1.10);
}

TEST_P(EdgeCases, TightTolerance) {
  Graph g = grid2d(40, 40);
  Options o = both(GetParam(), 4);
  o.ubvec = {1.001};
  const PartitionResult r = partition(g, o);
  EXPECT_TRUE(validate_partition(g, r.part, 4, true).empty());
  // Unit weights: near-exact balance is achievable.
  EXPECT_LE(r.max_imbalance, 1.01);
}

TEST_P(EdgeCases, VeryLooseTolerance) {
  Graph g = grid2d(20, 20, 2);
  apply_type_s_weights(g, 2, 8, 0, 9, 5);
  Options o = both(GetParam(), 4);
  o.ubvec = {2.0, 2.0};
  const PartitionResult r = partition(g, o);
  EXPECT_TRUE(validate_partition(g, r.part, 4, true).empty());
  EXPECT_LE(r.max_imbalance, 2.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(BothAlgorithms, EdgeCases,
                         testing::Values(Algorithm::kRecursiveBisection,
                                         Algorithm::kKWay),
                         [](const testing::TestParamInfo<Algorithm>& pinfo) {
                           return pinfo.param == Algorithm::kKWay ? "kway"
                                                                 : "rb";
                         });

}  // namespace
}  // namespace mcgp
