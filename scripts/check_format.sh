#!/usr/bin/env bash
# Format gate: clang-format (style in .clang-format) over the C++ files
# changed relative to a base ref, or over the whole tree with --all.
#
# Usage:
#   scripts/check_format.sh [--all] [--fix] [BASE_REF]
#
#   BASE_REF   diff base for the changed-file set (default: origin/main,
#              falling back to HEAD~1 when the remote ref is absent).
#   --all      check every tracked C++ file instead of the changed set.
#   --fix      rewrite files in place instead of failing on drift.
#
# Exits 0 when everything is formatted (or when clang-format is not
# installed — the gate degrades to a skip with a notice so local GCC-only
# environments are not blocked; CI installs clang-format and enforces).
set -euo pipefail

cd "$(git rev-parse --show-toplevel)"

ALL=0
FIX=0
BASE=""
for arg in "$@"; do
  case "$arg" in
    --all) ALL=1 ;;
    --fix) FIX=1 ;;
    -h|--help) sed -n '2,16p' "$0" | sed 's/^# \{0,1\}//'; exit 0 ;;
    *) BASE="$arg" ;;
  esac
done

if ! command -v clang-format >/dev/null 2>&1; then
  echo "check_format: clang-format not installed — skipping (CI enforces)."
  exit 0
fi

# The formatted surface: first-party C++ only.
PATHSPEC=(src tests bench examples tools)
FILTER='\.(cpp|cc|cxx|hpp|hh|h)$'

if [[ "$ALL" == 1 ]]; then
  mapfile -t files < <(git ls-files -- "${PATHSPEC[@]}" | grep -E "$FILTER" || true)
else
  if [[ -z "$BASE" ]]; then
    if git rev-parse --verify -q origin/main >/dev/null; then
      BASE=origin/main
    else
      BASE=HEAD~1
    fi
  fi
  # Changed = committed diff vs base + any uncommitted edits.
  mapfile -t files < <(
    { git diff --name-only --diff-filter=d "$BASE" -- "${PATHSPEC[@]}";
      git diff --name-only --diff-filter=d -- "${PATHSPEC[@]}";
      git diff --name-only --diff-filter=d --cached -- "${PATHSPEC[@]}"; } |
    sort -u | grep -E "$FILTER" || true)
fi

if [[ ${#files[@]} -eq 0 ]]; then
  echo "check_format: no C++ files to check."
  exit 0
fi

if [[ "$FIX" == 1 ]]; then
  clang-format -i --style=file "${files[@]}"
  echo "check_format: formatted ${#files[@]} file(s)."
  exit 0
fi

bad=0
for f in "${files[@]}"; do
  if ! clang-format --style=file --dry-run -Werror "$f" >/dev/null 2>&1; then
    echo "needs formatting: $f"
    bad=1
  fi
done

if [[ "$bad" != 0 ]]; then
  echo "check_format: run scripts/check_format.sh --fix" >&2
  exit 1
fi
echo "check_format: OK (${#files[@]} file(s))."
