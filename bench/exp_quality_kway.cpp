// E2: quality of multilevel k-way (MC-KW) multi-constraint partitionings,
// normalized by the single-constraint baseline.
#include "quality_experiment.hpp"

int main(int argc, char** argv) {
  using namespace mcgp;
  using namespace mcgp::bench;
  const Args args = parse_args(argc, argv);
  run_quality_experiment(Algorithm::kKWay,
                         "E2: MC-KW multi-constraint quality", args);
  return 0;
}
