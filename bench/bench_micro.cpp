// M1: google-benchmark microbenchmarks of the hot kernels: matching,
// contraction, 2-way FM refinement, k-way refinement, and the end-to-end
// partitioners.
#include <benchmark/benchmark.h>

#include <memory>

#include "core/coarsen.hpp"
#include "core/kway_refine.hpp"
#include "core/matching.hpp"
#include "core/partitioner.hpp"
#include "core/refine2way.hpp"
#include "gen/mesh_gen.hpp"
#include "gen/weight_gen.hpp"
#include "graph/graph_ops.hpp"
#include "support/flight_recorder.hpp"
#include "support/metrics.hpp"
#include "support/perf_counters.hpp"
#include "support/thread_pool.hpp"
#include "support/workspace.hpp"

namespace {

using namespace mcgp;

Graph make_bench_graph(idx_t side, int m) {
  Graph g = grid2d(side, side);
  if (m > 1) apply_type_s_weights(g, m, 16, 0, 19, 42);
  return g;
}

void BM_Matching(benchmark::State& state) {
  const Graph g = make_bench_graph(static_cast<idx_t>(state.range(0)),
                                   static_cast<int>(state.range(1)));
  Rng rng(1);
  for (auto _ : state) {
    auto match = compute_matching(g, MatchScheme::kHeavyEdgeBalanced, rng);
    benchmark::DoNotOptimize(match.data());
  }
  state.SetItemsProcessed(state.iterations() * g.nvtxs);
}
BENCHMARK(BM_Matching)->Args({200, 1})->Args({200, 3})->Args({400, 3});

void BM_MatchingWorkspace(benchmark::State& state) {
  const Graph g = make_bench_graph(static_cast<idx_t>(state.range(0)),
                                   static_cast<int>(state.range(1)));
  Rng rng(1);
  Workspace ws;
  std::vector<idx_t> match;
  for (auto _ : state) {
    compute_matching_into(g, MatchScheme::kHeavyEdgeBalanced, rng, match,
                          nullptr, &ws);
    benchmark::DoNotOptimize(match.data());
  }
  state.SetItemsProcessed(state.iterations() * g.nvtxs);
}
BENCHMARK(BM_MatchingWorkspace)->Args({200, 1})->Args({200, 3})->Args({400, 3});

void BM_Contract(benchmark::State& state) {
  const Graph g = make_bench_graph(static_cast<idx_t>(state.range(0)), 3);
  Rng rng(1);
  const auto match = compute_matching(g, MatchScheme::kHeavyEdge, rng);
  std::vector<idx_t> cmap;
  const idx_t nc = build_coarse_map(g, match, cmap);
  for (auto _ : state) {
    Graph c = contract_graph(g, cmap, nc);
    benchmark::DoNotOptimize(c.adjncy.data());
  }
  state.SetItemsProcessed(state.iterations() * g.nedges());
}
BENCHMARK(BM_Contract)->Arg(200)->Arg(400);

void BM_ContractWorkspace(benchmark::State& state) {
  const Graph g = make_bench_graph(static_cast<idx_t>(state.range(0)), 3);
  Rng rng(1);
  const auto match = compute_matching(g, MatchScheme::kHeavyEdge, rng);
  std::vector<idx_t> cmap;
  const idx_t nc = build_coarse_map(g, match, cmap);
  Workspace ws;
  for (auto _ : state) {
    Graph c = contract_graph(g, cmap, nc, &ws);
    benchmark::DoNotOptimize(c.adjncy.data());
  }
  state.SetItemsProcessed(state.iterations() * g.nedges());
}
BENCHMARK(BM_ContractWorkspace)->Arg(200)->Arg(400);

// Parallel handshake matching at t threads (t=1 runs the identical
// algorithm inline — the honest baseline, since the algorithm is selected
// by graph size, never by thread count). side=200 -> 40000 vertices, well
// above kHandshakeMinVtxs.
void BM_MatchingParallel(benchmark::State& state) {
  const Graph g = make_bench_graph(static_cast<idx_t>(state.range(0)), 3);
  const int threads = static_cast<int>(state.range(1));
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
  MatchingExec exec;
  exec.pool = pool.get();
  Rng rng(1);
  Workspace ws;
  std::vector<idx_t> match;
  for (auto _ : state) {
    compute_matching_into(g, MatchScheme::kHeavyEdgeBalanced, rng, match,
                          nullptr, &ws, &exec);
    benchmark::DoNotOptimize(match.data());
  }
  state.SetItemsProcessed(state.iterations() * g.nvtxs);
}
BENCHMARK(BM_MatchingParallel)->Args({200, 1})->Args({200, 8});

// Chunked parallel contraction at t threads against the same-output
// serial row builder (t=1 -> null pool -> serial path).
void BM_ContractParallel(benchmark::State& state) {
  const Graph g = make_bench_graph(static_cast<idx_t>(state.range(0)), 3);
  const int threads = static_cast<int>(state.range(1));
  Rng rng(1);
  const auto match = compute_matching(g, MatchScheme::kHeavyEdge, rng);
  std::vector<idx_t> cmap;
  const idx_t nc = build_coarse_map(g, match, cmap);
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
  WorkspacePool wspool;
  ContractExec exec;
  exec.pool = pool.get();
  exec.wspool = &wspool;
  Workspace ws;
  for (auto _ : state) {
    Graph c = contract_graph(g, cmap, nc, &ws, &exec);
    benchmark::DoNotOptimize(c.adjncy.data());
  }
  state.SetItemsProcessed(state.iterations() * g.nedges());
}
BENCHMARK(BM_ContractParallel)->Args({200, 1})->Args({200, 8});

// Colored k-way sweep at t threads: the propose phases fan out per color
// class; commit stays serial. Same algorithm at every t.
void BM_KWaySweepParallel(benchmark::State& state) {
  const idx_t side = static_cast<idx_t>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  const Graph g = make_bench_graph(side, 3);
  const idx_t k = 16;
  std::vector<real_t> ub(3, 1.05);
  Rng seedr(3);
  std::vector<idx_t> start(to_size(g.nvtxs));
  for (auto& p : start) p = static_cast<idx_t>(seedr.next_below(k));
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
  WorkspacePool wspool;
  KWayExec exec;
  exec.pool = pool.get();
  exec.wspool = &wspool;
  Rng rng(1);
  for (auto _ : state) {
    std::vector<idx_t> where = start;
    const sum_t cut = kway_refine(g, k, where, ub, 2, rng, nullptr, nullptr,
                                  nullptr, nullptr, nullptr, &exec);
    benchmark::DoNotOptimize(cut);
  }
  state.SetItemsProcessed(state.iterations() * g.nvtxs);
}
BENCHMARK(BM_KWaySweepParallel)->Args({200, 1})->Args({200, 8});

void BM_InducedSubgraph(benchmark::State& state) {
  const Graph g = make_bench_graph(static_cast<idx_t>(state.range(0)), 1);
  const bool use_ws = state.range(1) != 0;
  // Halve along a jagged diagonal so the extraction walks real adjacency.
  std::vector<char> select(to_size(g.nvtxs));
  const idx_t side = static_cast<idx_t>(state.range(0));
  for (idx_t v = 0; v < g.nvtxs; ++v) {
    select[to_size(v)] = (v / side + v % side) % 2 == 0;
  }
  Workspace ws;
  std::vector<idx_t> l2g;
  for (auto _ : state) {
    Graph s = induced_subgraph(g, select, l2g, use_ws ? &ws : nullptr);
    benchmark::DoNotOptimize(s.adjncy.data());
  }
  state.SetItemsProcessed(state.iterations() * g.nvtxs);
}
BENCHMARK(BM_InducedSubgraph)->Args({400, 0})->Args({400, 1});

void BM_Refine2Way(benchmark::State& state) {
  const idx_t side = static_cast<idx_t>(state.range(0));
  const int m = static_cast<int>(state.range(1));
  const Graph g = make_bench_graph(side, m);
  BisectionTargets t;
  t.f0 = 0.5;
  t.ub.assign(to_size(m), 1.05);
  // Jagged start so the refiner has real work every iteration.
  std::vector<idx_t> start(to_size(g.nvtxs));
  for (idx_t v = 0; v < g.nvtxs; ++v) {
    start[to_size(v)] = ((v / side) + 2 * (v % side)) % 4 < 2 ? 0 : 1;
  }
  Rng rng(1);
  for (auto _ : state) {
    std::vector<idx_t> where = start;
    const sum_t cut = refine_2way(g, where, t, QueuePolicy::kMostImbalanced,
                                  4, 0, rng);
    benchmark::DoNotOptimize(cut);
  }
  state.SetItemsProcessed(state.iterations() * g.nvtxs);
}
BENCHMARK(BM_Refine2Way)->Args({200, 1})->Args({200, 3});

void BM_KWayRefine(benchmark::State& state) {
  const idx_t side = static_cast<idx_t>(state.range(0));
  const int m = static_cast<int>(state.range(1));
  const Graph g = make_bench_graph(side, m);
  const idx_t k = 16;
  std::vector<real_t> ub(to_size(m), 1.05);
  Rng seedr(3);
  std::vector<idx_t> start(to_size(g.nvtxs));
  for (auto& p : start) p = static_cast<idx_t>(seedr.next_below(k));
  Rng rng(1);
  for (auto _ : state) {
    std::vector<idx_t> where = start;
    const sum_t cut = kway_refine(g, k, where, ub, 2, rng);
    benchmark::DoNotOptimize(cut);
  }
  state.SetItemsProcessed(state.iterations() * g.nvtxs);
}
BENCHMARK(BM_KWayRefine)->Args({200, 1})->Args({200, 3});

void BM_PartitionEndToEnd(benchmark::State& state) {
  const Graph g = make_bench_graph(static_cast<idx_t>(state.range(0)),
                                   static_cast<int>(state.range(1)));
  Options o;
  o.nparts = 32;
  o.algorithm = state.range(2) == 0 ? Algorithm::kRecursiveBisection
                                    : Algorithm::kKWay;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    o.seed = seed++;
    const PartitionResult r = partition(g, o);
    benchmark::DoNotOptimize(r.cut);
  }
  state.SetItemsProcessed(state.iterations() * g.nvtxs);
}
BENCHMARK(BM_PartitionEndToEnd)
    ->Args({150, 1, 0})
    ->Args({150, 3, 0})
    ->Args({150, 1, 1})
    ->Args({150, 3, 1});

// Cost of the invariant-audit layer per level: off must be free (a
// pointer test per audit point), boundaries/paranoid quantify what a
// fully audited debug run pays.
void BM_PartitionAudited(benchmark::State& state) {
  const Graph g = make_bench_graph(150, 3);
  Options o;
  o.nparts = 32;
  o.algorithm = state.range(0) == 0 ? Algorithm::kRecursiveBisection
                                    : Algorithm::kKWay;
  o.audit_level = static_cast<AuditLevel>(state.range(1));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    o.seed = seed++;
    const PartitionResult r = partition(g, o);
    benchmark::DoNotOptimize(r.cut);
  }
  state.SetItemsProcessed(state.iterations() * g.nvtxs);
}
BENCHMARK(BM_PartitionAudited)
    ->Args({0, 0})
    ->Args({0, 1})
    ->Args({0, 2})
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({1, 2});

// Cost of the flight recorder per partition call: detached (the default,
// every hook is one null-pointer test) must be within noise of the
// attached run, which pays one sample struct per level plus a /proc read.
void BM_PartitionFlightRecorder(benchmark::State& state) {
  const Graph g = make_bench_graph(150, 3);
  Options o;
  o.nparts = 32;
  o.algorithm = state.range(0) == 0 ? Algorithm::kRecursiveBisection
                                    : Algorithm::kKWay;
  FlightRecorder flight;
  o.flight = state.range(1) != 0 ? &flight : nullptr;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    o.seed = seed++;
    flight.clear();
    const PartitionResult r = partition(g, o);
    benchmark::DoNotOptimize(r.cut);
  }
  state.SetItemsProcessed(state.iterations() * g.nvtxs);
}
BENCHMARK(BM_PartitionFlightRecorder)
    ->Args({0, 0})
    ->Args({0, 1})
    ->Args({1, 0})
    ->Args({1, 1});

// Cost of the hardware-counter profiler per partition call: detached
// (null Options::profile, one pointer test per scope) must be within
// noise of no profiler at all — the PR's 1%-overhead gate; attached pays
// two counter-group reads plus one mutex-guarded fold per scope.
void BM_PartitionProfiled(benchmark::State& state) {
  const Graph g = make_bench_graph(150, 3);
  Options o;
  o.nparts = 32;
  o.algorithm = state.range(0) == 0 ? Algorithm::kRecursiveBisection
                                    : Algorithm::kKWay;
  Profiler prof;
  o.profile = state.range(1) != 0 ? &prof : nullptr;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    o.seed = seed++;
    prof.clear();
    const PartitionResult r = partition(g, o);
    benchmark::DoNotOptimize(r.cut);
  }
  state.SetItemsProcessed(state.iterations() * g.nvtxs);
}
BENCHMARK(BM_PartitionProfiled)
    ->Args({0, 0})
    ->Args({0, 1})
    ->Args({1, 0})
    ->Args({1, 1});

// Cost of the metrics registry per partition call: detached (null
// Options::metrics, one pointer test per instrumentation point) must be
// within 1% of no registry at all — this PR's overhead gate; attached
// pays the run bracket, progress stamps, and one fold of histograms and
// gauges at run end.
void BM_PartitionMetrics(benchmark::State& state) {
  const Graph g = make_bench_graph(150, 3);
  Options o;
  o.nparts = 32;
  o.algorithm = state.range(0) == 0 ? Algorithm::kRecursiveBisection
                                    : Algorithm::kKWay;
  MetricsRegistry metrics;
  o.metrics = state.range(1) != 0 ? &metrics : nullptr;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    o.seed = seed++;
    const PartitionResult r = partition(g, o);
    benchmark::DoNotOptimize(r.cut);
  }
  state.SetItemsProcessed(state.iterations() * g.nvtxs);
}
BENCHMARK(BM_PartitionMetrics)
    ->Args({0, 0})
    ->Args({0, 1})
    ->Args({1, 0})
    ->Args({1, 1});

}  // namespace
