// Table 1: characteristics of the benchmark graph suite (the reproduction's
// analogue of the paper's test-mesh table).
#include <cstdio>

#include "bench_common.hpp"
#include "graph/graph_ops.hpp"

int main(int argc, char** argv) {
  using namespace mcgp;
  using namespace mcgp::bench;
  const Args args = parse_args(argc, argv);

  std::printf("Table 1: benchmark graph suite (scale=%.2f)\n", args.scale);
  std::printf(
      "Substitute for the paper's FE meshes: same class (well-shaped,\n"
      "bounded-degree 2D/3D meshes), laptop-scale sizes.\n\n");

  Table t({"graph", "vertices", "edges", "avg deg", "max deg", "components"});
  for (const auto& [name, g] : make_suite(args.scale)) {
    idx_t max_deg = 0;
    for (idx_t v = 0; v < g.nvtxs; ++v) max_deg = std::max(max_deg, g.degree(v));
    t.add_row({name, std::to_string(g.nvtxs), std::to_string(g.nedges()),
               Table::fmt(2.0 * g.nedges() / std::max<idx_t>(g.nvtxs, 1), 2),
               std::to_string(max_deg), std::to_string(count_components(g))});
  }
  t.print();
  return 0;
}
