// E5 (motivation figure): bulk-synchronous multi-phase makespan under a
// traditional single-constraint decomposition of the SUMMED phase work vs
// the multi-constraint decomposition. The paper's introduction argues the
// sum can be perfectly balanced while individual phases are not; the
// multi-constraint formulation fixes exactly this.
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "gen/mesh_gen.hpp"
#include "gen/phase_sim.hpp"
#include "gen/weight_gen.hpp"
#include "graph/metrics.hpp"

int main(int argc, char** argv) {
  using namespace mcgp;
  using namespace mcgp::bench;
  const Args args = parse_args(argc, argv);

  const idx_t k = 16;
  const idx_t side = static_cast<idx_t>(220 * std::sqrt(args.scale));
  std::printf(
      "E5: multi-phase makespan, %dx%d mesh, k=%d (slowdown = makespan /\n"
      "perfectly-balanced ideal; cut in multiples of the m=1 cut)\n\n",
      side, side, k);

  Graph bare = grid2d(side, side);
  Options base_opts;
  base_opts.nparts = k;
  const RunSummary base = run_average(bare, base_opts, args.reps);

  Table t({"phases", "slowdown (sum-collapsed)", "slowdown (multi-constraint)",
           "cut ratio (sum)", "cut ratio (multi)"});

  const std::vector<int> ms =
      args.quick ? std::vector<int>{3} : std::vector<int>{2, 3, 4, 5};
  for (const int m : ms) {
    Graph g = grid2d(side, side);
    apply_type_p_weights(g, m, 32, static_cast<std::uint64_t>(4000 + m));

    // Traditional: single constraint on summed weights.
    Graph collapsed = sum_collapse_constraints(g);
    Options so;
    so.nparts = k;
    so.seed = 1;
    const PartitionResult rs = partition(collapsed, so);
    const PhaseSimResult sim_s = simulate_phases(g, rs.part, k);

    // Multi-constraint.
    Options mo;
    mo.nparts = k;
    mo.seed = 1;
    const PartitionResult rm = partition(g, mo);
    const PhaseSimResult sim_m = simulate_phases(g, rm.part, k);

    t.add_row({std::to_string(m), Table::fmt(sim_s.slowdown(), 3),
               Table::fmt(sim_m.slowdown(), 3),
               Table::fmt(base.cut > 0 ? static_cast<double>(rs.cut) /
                              static_cast<double>(base.cut)
                        : 0,
           2),
               Table::fmt(base.cut > 0 ? static_cast<double>(rm.cut) /
                              static_cast<double>(base.cut)
                        : 0,
           2)});
  }
  t.print();
  std::printf(
      "\nShape check: multi-constraint slowdown stays near 1.0; the\n"
      "sum-collapsed decomposition pays an increasing per-phase sync\n"
      "penalty as the number of phases grows.\n");
  return 0;
}
