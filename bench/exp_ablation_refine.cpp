// A3: refinement-policy ablation — the SC'98 queue selection (m queues per
// side, pop from the most imbalanced constraint) vs a round-robin
// constraint order vs a single gain-only queue per side (the
// single-constraint relaxation that ignores which KIND of weight moves).
#include <cstdio>

#include "bench_common.hpp"
#include "gen/mesh_gen.hpp"
#include "gen/weight_gen.hpp"

int main(int argc, char** argv) {
  using namespace mcgp;
  using namespace mcgp::bench;
  const Args args = parse_args(argc, argv);

  const idx_t k = 32;
  std::printf("A3: 2-way refinement queue-policy ablation (MC-RB, k=%d, reps=%d)\n\n",
              k, args.reps);

  const std::vector<int> ms =
      args.quick ? std::vector<int>{3} : std::vector<int>{3, 5};

  Table t({"graph", "m", "policy", "cut", "lb", "time(s)"});
  for (auto& [name, base] : make_suite(args.scale)) {
    for (const int m : ms) {
      Graph g = base;
      apply_type_s_weights(g, m, 16, 0, 19, static_cast<std::uint64_t>(7000 + m));
      for (const auto& [pname, policy] :
           {std::pair<const char*, QueuePolicy>{"most-imbalanced",
                                                QueuePolicy::kMostImbalanced},
            {"round-robin", QueuePolicy::kRoundRobin},
            {"single-queue", QueuePolicy::kSingleQueue}}) {
        Options o;
        o.nparts = k;
        o.algorithm = Algorithm::kRecursiveBisection;
        o.queue_policy = policy;
        const RunSummary s = run_average(g, o, args.reps);
        t.add_row({name, std::to_string(m), pname, Table::fmt(s.cut, 0),
                   Table::fmt(s.max_imbalance, 3), Table::fmt(s.seconds, 3)});
      }
    }
  }
  t.print();
  std::printf(
      "\nShape check: the paper's most-imbalanced selection should achieve\n"
      "the best balance at equal or better cut; the single-queue relaxation\n"
      "loses balance control as m grows.\n");
  return 0;
}
