#include "bench_common.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>

#include "gen/mesh_gen.hpp"
#include "graph/part_report.hpp"
#include "support/flight_recorder.hpp"
#include "support/metrics.hpp"
#include "support/perf_counters.hpp"
#include "support/run_ledger.hpp"
#include "support/trace.hpp"

namespace mcgp::bench {

namespace {
bool g_profile_requested = false;

std::string metrics_sidecar_path(const std::string& ledger_path) {
  return ledger_path + ".metrics.json";
}
}  // namespace

bool profile_requested() { return g_profile_requested; }

MetricsRegistry& bench_metrics() {
  static MetricsRegistry registry;
  return registry;
}

bool write_metrics_sidecar(const std::string& ledger_path) {
  if (ledger_path.empty()) return false;
  const std::string path = metrics_sidecar_path(ledger_path);
  std::ofstream out(path);
  if (out) bench_metrics().write_json(out);
  if (!out) {
    std::cerr << "warning: could not write metrics snapshot to " << path
              << "\n";
    return false;
  }
  std::printf("wrote metrics snapshot to %s\n", path.c_str());
  return true;
}

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--scale=", 0) == 0) {
      args.scale = std::atof(a.c_str() + 8);
      if (args.scale <= 0) args.scale = 1.0;
    } else if (a.rfind("--reps=", 0) == 0) {
      args.reps = std::max(1, std::atoi(a.c_str() + 7));
    } else if (a == "--quick") {
      args.quick = true;
    } else if (a.rfind("--threads=", 0) == 0) {
      args.threads.clear();
      std::string list = a.substr(10);
      for (std::size_t start = 0; start <= list.size();) {
        std::size_t comma = list.find(',', start);
        if (comma == std::string::npos) comma = list.size();
        const int n = std::atoi(list.substr(start, comma - start).c_str());
        if (n >= 1) args.threads.push_back(n);
        start = comma + 1;
      }
      if (args.threads.empty()) args.threads.push_back(1);
    } else if (a.rfind("--json=", 0) == 0) {
      args.json_path = a.substr(7);
    } else if (a.rfind("--trace-dir=", 0) == 0) {
      args.trace_dir = a.substr(12);
    } else if (a.rfind("--ledger=", 0) == 0) {
      args.ledger_path = a.substr(9);
      if (args.ledger_path.empty()) args.ledger_path = "none";
    } else if (a == "--profile") {
      args.profile = true;
      g_profile_requested = true;
    } else if (a == "--help" || a == "-h") {
      std::cout << "usage: " << argv[0]
                << " [--scale=<f>] [--reps=<n>] [--quick]"
                << " [--threads=<a,b,...>] [--json=<path>]"
                << " [--trace-dir=<dir>] [--ledger=<path|none>]"
                << " [--profile]\n";
      std::exit(0);
    } else {
      std::cerr << "unknown argument: " << a << "\n";
      std::exit(2);
    }
  }
  return args;
}

std::vector<SuiteGraph> make_suite(double scale) {
  const double s2 = std::sqrt(scale);
  const double s3 = std::cbrt(scale);
  std::vector<SuiteGraph> suite;
  suite.push_back({"mgen1-grid2d",
                   grid2d(static_cast<idx_t>(175 * s2),
                          static_cast<idx_t>(175 * s2))});
  suite.push_back({"mgen2-tri2d",
                   tri_grid2d(static_cast<idx_t>(200 * s2),
                              static_cast<idx_t>(200 * s2))});
  suite.push_back({"mgen3-grid3d",
                   grid3d(static_cast<idx_t>(35 * s3), static_cast<idx_t>(35 * s3),
                          static_cast<idx_t>(35 * s3))});
  suite.push_back({"mgen4-geom",
                   random_geometric(static_cast<idx_t>(50000 * scale), 0, 91)});
  return suite;
}

std::vector<SuiteGraph> make_ladder(double scale) {
  std::vector<SuiteGraph> ladder;
  const idx_t sides[] = {60, 120, 240, 480};
  for (const idx_t side : sides) {
    const idx_t n = static_cast<idx_t>(side * std::sqrt(scale));
    ladder.push_back({"grid-" + std::to_string(n) + "x" + std::to_string(n),
                      grid2d(n, n)});
  }
  return ladder;
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void Table::print() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::printf("%-*s", static_cast<int>(width[c] + 2), row[c].c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  std::size_t total = 0;
  for (const std::size_t w : width) total += w + 2;
  std::printf("%s\n", std::string(total, '-').c_str());
  for (const auto& row : rows_) print_row(row);
}

std::string Table::fmt(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

std::string Table::fmt(sum_t v) { return std::to_string(v); }

std::string ledger_file(const Args& args, const std::string& bench_default) {
  if (args.ledger_path == "none") return {};
  return args.ledger_path.empty() ? bench_default : args.ledger_path;
}

RunSummary run_average(const Graph& g, Options opts, int reps,
                       const LedgerSink* sink,
                       const std::string& graph_name) {
  RunSummary s;
  // One process-lifetime registry across every rep and configuration: its
  // end-of-bench sidecar is the cross-run aggregate view.
  opts.metrics = &bench_metrics();
  for (int r = 0; r < reps; ++r) {
    opts.seed = static_cast<std::uint64_t>(r + 1);
    // One profiler per rep so each ledger record carries that rep's own
    // counters rather than a running sum across seeds.
    std::optional<Profiler> prof;
    if (profile_requested()) {
      prof.emplace();
      opts.profile = &*prof;
    }
    const PartitionResult res = partition(g, opts);
    s.cut += static_cast<double>(res.cut);
    s.max_imbalance += res.max_imbalance;
    s.feasible_rate += res.feasible ? 1.0 : 0.0;
    s.seconds += res.seconds;
    if (sink != nullptr && !sink->path.empty()) {
      RunRecord rec = make_run_record(sink->experiment, graph_name, g, opts,
                                      res, opts.profile);
      // The sidecar is written once at bench exit; records point at it so
      // ledger consumers can find the aggregate without globbing.
      rec.metrics_snapshot = metrics_sidecar_path(sink->path);
      append_run_record(sink->path, rec);
    }
    opts.profile = nullptr;
  }
  s.cut /= reps;
  s.max_imbalance /= reps;
  s.feasible_rate /= reps;
  s.seconds /= reps;
  return s;
}

bool emit_trace_artifacts(const Args& args, const std::string& name,
                          const Graph& g, Options opts) {
  if (args.trace_dir.empty()) return false;
  std::error_code ec;
  std::filesystem::create_directories(args.trace_dir, ec);

  TraceRecorder recorder;
  FlightRecorder flight;
  opts.trace = &recorder;
  opts.flight = &flight;
  opts.metrics = &bench_metrics();
  std::optional<Profiler> prof;
  if (args.profile || profile_requested()) {
    prof.emplace();
    opts.profile = &*prof;
  }
  const PartitionResult res = partition(g, opts);

  const std::string base = args.trace_dir + "/" + name;
  bool ok = recorder.save_chrome_trace(base + ".trace.json");
  ok = recorder.save_jsonl(base + ".events.jsonl") && ok;

  std::ofstream report(base + ".report.json");
  if (report) {
    PartitionReport rep = analyze_partition(g, res.part, opts.nparts);
    rep.feasible = res.feasible ? 1 : 0;
    rep.ubvec_used = res.ubvec_used;
    write_report_json(report, rep, &flight, opts.profile);
  }
  ok = static_cast<bool>(report) && ok;

  std::ofstream counters(base + ".counters.json");
  if (counters) res.counters.write_json(counters);
  ok = static_cast<bool>(counters) && ok;

  if (!ok) {
    std::cerr << "warning: failed writing trace artifacts under "
              << args.trace_dir << "\n";
  }
  return ok;
}

}  // namespace mcgp::bench
